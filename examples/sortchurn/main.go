// sortchurn compares scheduling and data policies side by side on the same
// churn: stock Hadoop (three TrackerExpiry settings), MOON, and MOON-Hybrid
// run the paper's sort workload at increasing machine-unavailability rates.
// This is a compact interactive version of Figures 4 and 7.
//
//	go run ./examples/sortchurn [-scale 4] [-rate 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/workload"
)

func main() {
	scale := flag.Int("scale", 4, "workload scale divisor (1 = paper size)")
	flag.Parse()

	type variant struct {
		name  string
		build func(cs core.ClusterSpec) core.Options
	}
	variants := []variant{
		{"Hadoop-10min", func(cs core.ClusterSpec) core.Options {
			o := core.HadoopPreset(cs, 600)
			o.DFS = dfs.DefaultConfig(dfs.ModeMOON)
			return o
		}},
		{"Hadoop-1min", func(cs core.ClusterSpec) core.Options {
			o := core.HadoopPreset(cs, 60)
			o.DFS = dfs.DefaultConfig(dfs.ModeMOON)
			return o
		}},
		{"MOON", func(cs core.ClusterSpec) core.Options { return core.MOONPreset(cs, false) }},
		{"MOON-Hybrid", func(cs core.ClusterSpec) core.Options { return core.MOONPreset(cs, true) }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "unavail\tpolicy\tmakespan(s)\tduplicates\tkilled maps")
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		for _, v := range variants {
			cs := core.ClusterSpec{
				VolatileNodes:      30,
				DedicatedNodes:     3,
				UnavailabilityRate: rate,
				Seed:               7,
			}
			w := workload.Scale(workload.SleepApp(workload.Sort(2*33)), *scale)
			s, err := core.NewForWorkload(v.build(cs), w)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.RunWorkload(w)
			if err != nil {
				log.Fatal(err)
			}
			p := res.Profile
			fmt.Fprintf(tw, "%.1f\t%s\t%.0f\t%d\t%d\n",
				rate, v.name, p.Makespan, p.DuplicatedTasks, p.KilledMaps)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
