// Multijob: submit a staggered stream of jobs to one simulated MOON
// cluster and compare FIFO against fair-share slot arbitration — the
// multi-tenant scenario real opportunistic clusters serve.
//
//	go run ./examples/multijob
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/workload"
)

func main() {
	// Three quarter-scale sort jobs entering the cluster two minutes
	// apart, so each submission lands while its predecessor still runs.
	base := workload.Scale(workload.Sort(2*27), 4)
	stream := workload.Staggered(base, 3, 120)

	for _, policy := range []mapred.SchedPolicy{mapred.FIFO(), mapred.FairShare()} {
		cs := core.ClusterSpec{
			VolatileNodes:      24,
			DedicatedNodes:     3,
			UnavailabilityRate: 0.3,
			Seed:               2026,
		}
		opts := core.MOONPreset(cs, true /* hybrid-aware scheduling */)
		opts.Sched.JobPolicy = policy

		s, err := core.NewForMultiWorkload(opts, stream)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunMultiWorkload(stream)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("policy %-5s  completed %d/%d  span %.0fs  throughput %.1f jobs/h\n",
			policy.Name(), res.Completed, len(res.Jobs), res.Span, res.Throughput)
		for i, jr := range res.Jobs {
			marker := ""
			if jr.HitHorizon {
				marker = "  (hit horizon)"
			}
			fmt.Printf("  job %d %-10s makespan %6.0fs  dup=%d killedM=%d%s\n",
				i, jr.Profile.Job, jr.Profile.Makespan, jr.Profile.DuplicatedTasks,
				jr.Profile.KilledMaps, marker)
		}
		fmt.Println()
	}
}
