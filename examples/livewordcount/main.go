// livewordcount runs a real word count on the live goroutine engine while
// volunteer workers are being suspended and resumed underneath it — the
// MOON failure model executed for real, not simulated. The output counts
// are exact despite the churn.
//
//	go run ./examples/livewordcount
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/rng"
)

func main() {
	cfg := engine.DefaultConfig()
	cfg.VolatileWorkers = 5
	cfg.DedicatedWorkers = 1
	cluster, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Deterministic synthetic corpus: 16 splits of repeated vocabulary.
	vocab := strings.Fields("moon map reduce shuffle volunteer dedicated churn hibernate straggler homestretch")
	r := rng.New(42)
	inputs := make([]string, 16)
	expected := map[string]int{}
	for i := range inputs {
		var b strings.Builder
		for j := 0; j < 2000; j++ {
			w := vocab[r.Intn(len(vocab))]
			b.WriteString(w)
			b.WriteByte(' ')
			expected[w]++
		}
		inputs[i] = b.String()
	}

	job := engine.Job{
		Name:    "livewordcount",
		Inputs:  inputs,
		Reduces: 3,
		Map: func(input string, emit func(k, v string)) {
			for _, w := range strings.Fields(input) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string) string {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				total += n
			}
			return strconv.Itoa(total)
		},
	}

	// Churn injector: every 20 ms suspend a random volatile worker for
	// 60 ms — a compressed version of the paper's availability traces.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		cr := rng.New(7)
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				w := cr.Intn(cfg.VolatileWorkers)
				if err := cluster.Suspend(w); err == nil {
					go func(w int) {
						time.Sleep(60 * time.Millisecond)
						_ = cluster.Resume(w)
					}(w)
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	results, stats, err := cluster.Run(ctx, job)
	if err != nil {
		log.Fatal(err)
	}

	words := make([]string, 0, len(results))
	for w := range results {
		words = append(words, w)
	}
	sort.Strings(words)
	ok := true
	for _, w := range words {
		want := strconv.Itoa(expected[w])
		marker := ""
		if results[w] != want {
			marker, ok = "  <-- WRONG", false
		}
		fmt.Printf("%-12s %s%s\n", w, results[w], marker)
	}
	fmt.Printf("\ncompleted in %v under churn\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("map attempts %d (tasks %d), reduce attempts %d (tasks %d)\n",
		stats.MapAttempts, len(inputs), stats.ReduceAttempts, job.Reduces)
	fmt.Printf("frozen-task backups %d, map re-executions %d, fetch failures %d\n",
		stats.BackupCopies, stats.MapReexecs, stats.FetchFailures)
	if ok {
		fmt.Println("all counts exact: churn did not corrupt the computation")
	} else {
		fmt.Println("MISMATCH — this should never happen")
	}
}
