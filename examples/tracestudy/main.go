// tracestudy reproduces the availability analysis that motivates MOON's
// design (Sections I and III): it generates the paper's synthetic
// availability traces, renders a Figure 1-style diurnal unavailability
// profile, and tabulates the replication-degree arithmetic — how many
// volatile replicas 99.99% availability costs with and without a dedicated
// copy.
//
//	go run ./examples/tracestudy
package main

import (
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	// Part 1: Figure 1-style diurnal study.
	fmt.Println("== Diurnal unavailability (cf. paper Figure 1) ==")
	days := trace.GenerateFig1(rng.New(1), trace.DefaultFig1Config())
	sum, n := 0.0, 0
	for _, d := range days {
		lo, hi := 1.0, 0.0
		for _, v := range d.Series {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			sum += v
			n++
		}
		fmt.Printf("DAY%d: %2.0f%%..%2.0f%% unavailable\n", d.Day, lo*100, hi*100)
	}
	fmt.Printf("average unavailability %.2f (paper reports ~0.4)\n\n", sum/float64(n))

	// Part 2: trace generator fidelity at the paper's sweep rates.
	fmt.Println("== Synthetic 8-hour traces (mean outage 409 s) ==")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "target rate\tmeasured\tmean outage(s)\toutages/node")
	for _, rate := range []float64{0.1, 0.3, 0.4, 0.5} {
		traces, err := trace.GenerateFleet(rng.New(2), trace.DefaultOutageConfig(rate), 8*3600, 60)
		if err != nil {
			panic(err)
		}
		frac, mean, count := 0.0, 0.0, 0
		for i := range traces {
			frac += traces[i].UnavailableFraction()
			mean += traces[i].MeanOutage()
			count += len(traces[i].Outages)
		}
		fmt.Fprintf(tw, "%.1f\t%.3f\t%.0f\t%.1f\n",
			rate, frac/60, mean/60, float64(count)/60)
	}
	tw.Flush()
	fmt.Println()

	// Part 3: the replication-cost argument for the hybrid architecture
	// (Section III): volatile copies needed for 99.99% availability.
	fmt.Println("== Replicas for 99.99% availability (cf. Section I/III) ==")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node unavail p\tvolatile-only copies\twith 1 dedicated copy (p_d=0.001)")
	for _, p := range []float64{0.1, 0.3, 0.4, 0.5} {
		const target = 0.9999
		vOnly := int(math.Ceil(math.Log(1-target) / math.Log(p)))
		// With a dedicated copy: 1 - p_d * p^v >= target.
		const pd = 0.001
		vHybrid := int(math.Ceil(math.Log((1-target)/pd) / math.Log(p)))
		if vHybrid < 0 {
			vHybrid = 0
		}
		fmt.Fprintf(tw, "%.1f\t%d\t%d\n", p, vOnly, vHybrid)
	}
	tw.Flush()
	fmt.Println("\nAt p=0.4 volatile-only needs 11 copies; one dedicated copy plus 3")
	fmt.Println("volatile copies achieves the same availability — the paper's case")
	fmt.Println("for the hybrid architecture.")
}
