// Quickstart: run one sort job on a simulated opportunistic cluster with
// the full MOON stack and print its execution profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// 24 volatile PCs churning at a 0.4 unavailability rate (the paper's
	// production-trace average), anchored by 3 dedicated nodes.
	cs := core.ClusterSpec{
		VolatileNodes:      24,
		DedicatedNodes:     3,
		UnavailabilityRate: 0.4,
		Seed:               2026,
	}
	opts := core.MOONPreset(cs, true /* hybrid-aware scheduling */)

	// A quarter-scale sort workload (Table I divided by 4) keeps the run
	// instant; workload.Sort(slots) is the paper's full configuration.
	w := workload.Scale(workload.Sort(2*(cs.VolatileNodes+cs.DedicatedNodes)), 4)

	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		log.Fatal(err)
	}

	p := res.Profile
	fmt.Printf("%-22s %v\n", "job", p.Job)
	fmt.Printf("%-22s %v\n", "state", p.State)
	fmt.Printf("%-22s %.0f s\n", "makespan", p.Makespan)
	fmt.Printf("%-22s %.1f s\n", "avg map time", p.AvgMapTime)
	fmt.Printf("%-22s %.1f s\n", "avg shuffle time", p.AvgShuffleTime)
	fmt.Printf("%-22s %.1f s\n", "avg reduce time", p.AvgReduceTime)
	fmt.Printf("%-22s %d\n", "duplicated tasks", p.DuplicatedTasks)
	fmt.Printf("%-22s %d\n", "killed maps", p.KilledMaps)
	fmt.Printf("%-22s %d hibernations, %d re-replications (%.2f GB)\n",
		"dfs churn handling", res.DFS.Hibernations, res.DFS.ReplicationsIssued,
		res.DFS.ReplicationBytes/1e9)
}
