// serviceclient embeds the moonbenchd service in-process, then drives it
// the way an external client would: submit a word-count job over HTTP,
// follow the /v1/events stream while it runs, poll its status, and fetch
// the finished moon-metrics/v1 report.
//
//	go run ./examples/serviceclient
//
// Point the same client code at a standalone daemon (`go run
// ./cmd/moonbenchd`) by replacing the embedded listener with its address.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/sched"
	"repro/internal/service"
)

func main() {
	// The server side: one persistent live-engine master behind HTTP.
	srv, err := service.New(service.Config{
		VolatileWorkers:  4,
		DedicatedWorkers: 1,
		Quota:            sched.QuotaConfig{MaxConcurrent: 2, MaxQueued: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("service at", base)

	// Follow the event stream in the background.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan string, 64)
	go streamEvents(ctx, base, events)

	// Submit one job as tenant "demo".
	body := `{"name": "demo-count", "splits": 6, "words_per_split": 200, "reduces": 2}`
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("X-Moon-Tenant", "demo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (%s)\n", st.ID, st.State)

	// Poll until terminal, printing a few streamed frames along the way.
	for st.State != "done" && st.State != "failed" {
		select {
		case ev := <-events:
			fmt.Println("  event:", ev)
		case <-time.After(5 * time.Millisecond):
		}
		r2, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			log.Fatal(err)
		}
		raw, _ = io.ReadAll(r2.Body)
		r2.Body.Close()
		if err := json.Unmarshal(raw, &st); err != nil {
			log.Fatal(err)
		}
	}
	if st.State == "failed" {
		log.Fatalf("job failed: %s", st.Error)
	}

	// The finished report is a moon-metrics/v1 document.
	r3, err := http.Get(base + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		log.Fatal(err)
	}
	report, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	var doc struct {
		Schema      string `json:"schema"`
		Experiments []struct {
			Variant string `json:"variant"`
			Gauges  []struct {
				Name  string  `json:"name"`
				Scope string  `json:"scope"`
				Value float64 `json:"value"`
			} `json:"gauges"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(report, &doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: schema=%s (%d bytes)\n", doc.Schema, len(report))
	for _, e := range doc.Experiments {
		for _, g := range e.Gauges {
			fmt.Printf("  %s{%s} = %.3f\n", g.Name, g.Scope, g.Value)
		}
	}
}

// streamEvents forwards compacted /v1/events frames to ch (drops when the
// main loop is busy, like any live dashboard would).
func streamEvents(ctx context.Context, base string, ch chan<- string) {
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	kind := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			select {
			case ch <- kind + " " + strings.TrimPrefix(line, "data: "):
			default:
			}
		}
	}
}
