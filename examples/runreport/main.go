// Command runreport demonstrates the cross-layer metrics subsystem: it
// runs one sort job on the MOON-Hybrid stack with a metrics.Collector
// attached, then prints a compact run report — slot utilization over time,
// cluster availability, replication traffic and speculative outcomes —
// straight from the collector's snapshot.
//
// The same snapshot is what `moonbench -metrics out.json` aggregates
// across sweep cells and exports with a versioned schema.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	col := metrics.New(60) // 1-minute buckets: the scaled job is short

	opts := core.MOONPreset(core.ClusterSpec{
		VolatileNodes: 60, DedicatedNodes: 6,
		UnavailabilityRate: 0.3, Seed: 1,
	}, true)
	opts.Metrics = col

	w := workload.Scale(workload.Sort(2*66), 8)
	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		fatal(err)
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("job %s finished in %.0f s (state %v)\n\n", res.Profile.Job, res.Profile.Makespan, res.Profile.State)

	snap := col.Snapshot()

	fmt.Println("slot occupancy over time (mapred/slot_occupancy):")
	for _, sd := range snap.Series {
		if sd.Layer != string(metrics.LayerMapred) || sd.Name != "slot_occupancy" {
			continue
		}
		for _, pt := range sd.Points {
			bar := int(pt.Value * 40)
			fmt.Printf("  t=%5.0fs %5.1f%% %s\n", pt.T, 100*pt.Value, bars(bar))
		}
	}

	fmt.Println("\ncounters:")
	for _, p := range snap.Counters {
		if p.Value == 0 {
			continue
		}
		fmt.Printf("  %-8s %-24s %.6g\n", p.Layer, p.Name, p.Value)
	}
}

func bars(n int) string {
	const full = "########################################"
	if n < 0 {
		n = 0
	}
	if n > len(full) {
		n = len(full)
	}
	return full[:n]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runreport:", err)
	os.Exit(1)
}
