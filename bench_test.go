// Benchmarks regenerating the paper's tables and figures, one benchmark
// per experiment. Each iteration runs a bounded version of the experiment
// (single seed, highest-churn rate, sometimes a reduced workload scale) so
// `go test -bench=.` finishes in minutes; `cmd/moonbench` runs the full
// sweeps and prints the paper-layout tables.
//
// The interesting output is the custom metrics: each benchmark reports the
// headline comparison of its figure (e.g. the MOON-vs-Hadoop speedup) so a
// benchmark run doubles as a shape check against the paper.
package repro

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/trace"
)

// benchConfig bounds an experiment for benchmarking. Parallelism 0 lets the
// harness worker pool use every core; results are identical to a serial run.
func benchConfig(scale int, rates ...float64) harness.Config {
	cfg := harness.DefaultConfig()
	cfg.Seeds = []uint64{1}
	cfg.Scale = scale
	cfg.Rates = rates
	cfg.Parallelism = 0
	return cfg
}

// BenchmarkFig1Trace regenerates the 7-day diurnal availability study.
func BenchmarkFig1Trace(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		days := trace.GenerateFig1(rng.New(uint64(i+1)), trace.DefaultFig1Config())
		sum, n := 0.0, 0
		for _, d := range days {
			for _, v := range d.Series {
				sum += v
				n++
			}
		}
		avg = sum / float64(n)
	}
	b.ReportMetric(avg, "meanUnavail")
}

// BenchmarkFig4SchedulingSort runs the scheduling-policy comparison on the
// sort-shaped sleep app at the paper's full task counts, 0.5 unavailability.
// Reported metric: Hadoop1Min / MOON-Hybrid makespan ratio (paper: ~1.9).
func BenchmarkFig4SchedulingSort(b *testing.B) {
	benchFig4(b, "sort")
}

// BenchmarkFig4SchedulingWordCount is Figure 4(b).
func BenchmarkFig4SchedulingWordCount(b *testing.B) {
	benchFig4(b, "wordcount")
}

func benchFig4(b *testing.B, app string) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sw, err := benchConfig(1, 0.5).Fig4(app)
		if err != nil {
			b.Fatal(err)
		}
		ratio = sw.Get("Hadoop1Min", 0.5).Makespan / sw.Get("MOON-Hybrid", 0.5).Makespan
	}
	b.ReportMetric(ratio, "hadoop1min/moonHybrid")
}

// BenchmarkFig4MultiSeedSweep runs the MOON-Hybrid Fig4 cell across eight
// churn seeds at quarter scale — the embarrassingly parallel sweep shape the
// harness worker pool targets. Compare against the Serial twin below for the
// parallel speedup on a multi-core box.
func BenchmarkFig4MultiSeedSweep(b *testing.B) {
	benchMultiSeed(b, 0)
}

// BenchmarkFig4MultiSeedSweepSerial is the single-worker baseline of the
// same sweep.
func BenchmarkFig4MultiSeedSweepSerial(b *testing.B) {
	benchMultiSeed(b, 1)
}

func benchMultiSeed(b *testing.B, parallelism int) {
	cfg := benchConfig(4, 0.5)
	cfg.Seeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	cfg.Parallelism = parallelism
	variants := harness.SchedulingVariants("sort")[4:5] // MOON-Hybrid
	var makespan float64
	for i := 0; i < b.N; i++ {
		sw, err := cfg.RunSweep("multi-seed", variants)
		if err != nil {
			b.Fatal(err)
		}
		makespan = sw.Get("MOON-Hybrid", 0.5).Makespan
	}
	b.ReportMetric(makespan, "meanMakespan")
}

// BenchmarkFig5DuplicatedTasks reports the duplicated-task reduction of the
// same sweep (paper: MOON issues ~44% fewer duplicates than Hadoop1Min at
// 0.5 for sort).
func BenchmarkFig5DuplicatedTasks(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		sw, err := benchConfig(1, 0.5).Fig4("sort")
		if err != nil {
			b.Fatal(err)
		}
		h := sw.Get("Hadoop1Min", 0.5).Duplicated
		m := sw.Get("MOON", 0.5).Duplicated
		reduction = 1 - m/h
	}
	b.ReportMetric(reduction, "dupReductionVsHadoop1Min")
}

// BenchmarkFig6IntermediateReplicationSort compares volatile-only and
// hybrid-aware intermediate replication at 0.5 unavailability on a
// half-scale sort (paper: HA-V1 beats the best VO configuration).
func BenchmarkFig6IntermediateReplicationSort(b *testing.B) {
	benchFig6(b, "sort")
}

// BenchmarkFig6IntermediateReplicationWordCount is Figure 6(b).
func BenchmarkFig6IntermediateReplicationWordCount(b *testing.B) {
	benchFig6(b, "wordcount")
}

func benchFig6(b *testing.B, app string) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sw, err := benchConfig(2, 0.5).Fig6(app)
		if err != nil {
			b.Fatal(err)
		}
		_, bestVO := sw.Best("VO", 0.5)
		ratio = bestVO.Makespan / sw.Get("HA-V1", 0.5).Makespan
	}
	b.ReportMetric(ratio, "bestVO/haV1")
}

// BenchmarkTable2Profile regenerates the execution-profile table at 0.5
// unavailability and reports its most diagnostic cell: killed maps under
// VO-V1 versus HA-V1 (paper: 1389 vs 18.75 — a ~74x collapse).
func BenchmarkTable2Profile(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sw, err := benchConfig(2, 0.5).Fig6("sort")
		if err != nil {
			b.Fatal(err)
		}
		vo := sw.Get("VO-V1", 0.5).KilledMaps
		ha := sw.Get("HA-V1", 0.5).KilledMaps
		if ha > 0 {
			ratio = vo / ha
		}
	}
	b.ReportMetric(ratio, "killedMapsVO1/HA1")
}

// BenchmarkFig7OverallSort runs the headline comparison: augmented Hadoop
// (Hadoop-VO) against MOON-Hybrid with 6 dedicated nodes at 0.5
// unavailability (paper: MOON wins ~3x for sort).
func BenchmarkFig7OverallSort(b *testing.B) {
	benchFig7(b, "sort")
}

// BenchmarkFig7OverallWordCount is Figure 7(b) (paper: ~1.5x).
func BenchmarkFig7OverallWordCount(b *testing.B) {
	benchFig7(b, "wordcount")
}

func benchFig7(b *testing.B, app string) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		sw, err := benchConfig(2, 0.5).Fig7(app)
		if err != nil {
			b.Fatal(err)
		}
		speedup = sw.Get("Hadoop-VO", 0.5).Makespan / sw.Get("MOON-HybridD6", 0.5).Makespan
	}
	b.ReportMetric(speedup, "moonSpeedup")
}
