package cluster

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkFleetTransitions measures churn-event processing for the
// paper's 60-node fleet over a full 8-hour trace at 0.5 unavailability.
func BenchmarkFleetTransitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		traces, err := trace.GenerateFleet(rng.New(uint64(i+1)), trace.DefaultOutageConfig(0.5), 8*3600, 60)
		if err != nil {
			b.Fatal(err)
		}
		s := sim.New()
		c := New(s, Config{VolatileTraces: traces, DedicatedNodes: 6})
		transitions := 0
		for _, n := range c.Nodes {
			n.Watch(func(*Node, bool) { transitions++ })
		}
		b.StartTimer()
		s.RunUntil(8 * 3600)
		if transitions == 0 {
			b.Fatal("no transitions fired")
		}
	}
}
