// Package cluster models the machines of an opportunistic MapReduce system:
// a pool of volatile volunteer PCs whose availability follows per-node
// traces, optionally supplemented (MOON's hybrid architecture) by a small
// set of dedicated nodes that never go away.
//
// A suspended node makes no compute progress, serves no data, and emits no
// heartbeats, but keeps its disk contents — exactly the semantics the paper
// assumes for a volunteer PC reclaimed by its owner (e.g. a paused virtual
// machine). Subsystems subscribe to availability transitions with Watch.
package cluster

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NodeType distinguishes volunteer PCs from MOON's dedicated anchors.
type NodeType int

const (
	// Volatile nodes follow an availability trace.
	Volatile NodeType = iota
	// Dedicated nodes are always available.
	Dedicated
)

func (t NodeType) String() string {
	switch t {
	case Volatile:
		return "volatile"
	case Dedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Watcher observes a node availability transition.
type Watcher func(n *Node, available bool)

// Node is one machine. All state changes happen on the simulation thread.
type Node struct {
	ID   int
	Type NodeType

	sim       *sim.Simulation
	trace     trace.Trace
	available bool
	watchers  []Watcher

	// Statistics.
	suspensions   int
	lastDownAt    float64
	totalDownTime float64
}

// Available reports whether the node is currently up.
func (n *Node) Available() bool { return n.available }

// IsDedicated is a readability helper for scheduling policies.
func (n *Node) IsDedicated() bool { return n.Type == Dedicated }

// Suspensions returns how many times the node has gone down so far.
func (n *Node) Suspensions() int { return n.suspensions }

// DownTime returns accumulated unavailable seconds (through the last
// completed outage).
func (n *Node) DownTime() float64 { return n.totalDownTime }

// Watch registers fn to run on every availability transition of this node.
// Watchers run in registration order, synchronously at the transition
// instant.
func (n *Node) Watch(fn Watcher) { n.watchers = append(n.watchers, fn) }

func (n *Node) setAvailable(av bool) {
	if n.available == av {
		return
	}
	n.available = av
	if !av {
		n.suspensions++
		n.lastDownAt = n.sim.Now()
	} else {
		n.totalDownTime += n.sim.Now() - n.lastDownAt
	}
	for _, w := range n.watchers {
		w(n, av)
	}
}

// scheduleTransitions walks the node's trace, scheduling suspend/resume
// events.
func (n *Node) scheduleTransitions() {
	if n.Type == Dedicated || len(n.trace.Outages) == 0 {
		return
	}
	for _, iv := range n.trace.Outages {
		iv := iv
		n.sim.Schedule(iv.Start, "node.suspend", func() { n.setAvailable(false) })
		n.sim.Schedule(iv.End, "node.resume", func() { n.setAvailable(true) })
	}
}

// Config describes a cluster to build.
type Config struct {
	// VolatileTraces supplies one availability trace per volatile node;
	// the fleet size is len(VolatileTraces).
	VolatileTraces []trace.Trace
	// DedicatedNodes is the number of always-on nodes (paper: 3, 4 or 6).
	DedicatedNodes int
}

// Cluster is the full machine fleet.
type Cluster struct {
	Sim       *sim.Simulation
	Nodes     []*Node
	Volatile  []*Node
	Dedicated []*Node

	// Availability tallies, maintained incrementally by a first-registered
	// watcher per node so AvailableCount and VolatileUnavailableFraction
	// are O(1) reads instead of O(nodes) scans — at 100k nodes the scans
	// turned every churn transition quadratic once anything subscribed to
	// them (the metrics timeline does, per transition).
	availCount   int
	volatileDown int
}

// New builds a cluster on s per cfg and schedules all availability
// transitions. Volatile nodes get IDs 0..V-1; dedicated nodes follow.
func New(s *sim.Simulation, cfg Config) *Cluster {
	c := &Cluster{Sim: s}
	for i, tr := range cfg.VolatileTraces {
		n := &Node{ID: i, Type: Volatile, sim: s, trace: tr, available: tr.AvailableAt(0)}
		n.scheduleTransitions()
		// A trace may start inside an outage; reflect that without firing
		// watchers (none are registered yet).
		c.Nodes = append(c.Nodes, n)
		c.Volatile = append(c.Volatile, n)
	}
	for d := 0; d < cfg.DedicatedNodes; d++ {
		n := &Node{ID: len(cfg.VolatileTraces) + d, Type: Dedicated, sim: s, available: true}
		c.Nodes = append(c.Nodes, n)
		c.Dedicated = append(c.Dedicated, n)
	}
	// Tally watchers register before any subsystem's, so every later
	// watcher (and the transition's own callback) reads counts that
	// already reflect the flip — exactly what the scans reported.
	for _, n := range c.Nodes {
		if n.available {
			c.availCount++
		} else if n.Type == Volatile {
			c.volatileDown++
		}
		vol := n.Type == Volatile
		n.Watch(func(_ *Node, up bool) {
			if up {
				c.availCount++
				if vol {
					c.volatileDown--
				}
			} else {
				c.availCount--
				if vol {
					c.volatileDown++
				}
			}
		})
	}
	return c
}

// NewAllVolatile builds the Hadoop baseline fleet: the same machines as New
// (volatile + physically-dedicated ones), but every node is typed Volatile
// and churned by a trace; extraTraces supplies traces for the would-be
// dedicated machines. This mirrors the paper's Hadoop-VO runs where Hadoop
// "cannot differentiate between volatile and dedicated".
func NewAllVolatile(s *sim.Simulation, volatileTraces, extraTraces []trace.Trace) *Cluster {
	all := make([]trace.Trace, 0, len(volatileTraces)+len(extraTraces))
	all = append(all, volatileTraces...)
	all = append(all, extraTraces...)
	return New(s, Config{VolatileTraces: all})
}

// Instrument registers churn observability on c: fleet shape gauges, a
// sampled available-node and volatile-unavailability timeline, and
// suspension/down-time counters (the realized availability, to compare
// against the configured target rate). It registers one passive watcher per
// node; watchers only read node state, so instrumented and uninstrumented
// clusters evolve identically.
func (c *Cluster) Instrument(mc *metrics.Collector) {
	if mc == nil {
		return
	}
	mc.Gauge(metrics.LayerCluster, "volatile_nodes", "").Set(float64(len(c.Volatile)))
	mc.Gauge(metrics.LayerCluster, "dedicated_nodes", "").Set(float64(len(c.Dedicated)))
	avail := mc.SampleSeries(metrics.LayerCluster, "available_nodes", "")
	frac := mc.SampleSeries(metrics.LayerCluster, "volatile_unavail_frac", "")
	susp := mc.TimedCounter(metrics.LayerCluster, "suspensions", "")
	resumes := mc.TimedCounter(metrics.LayerCluster, "resumes", "")
	downSec := mc.Counter(metrics.LayerCluster, "down_seconds", "")
	spanGauge := mc.Gauge(metrics.LayerCluster, "down_span_seconds", "")
	now := c.Sim.Now()
	avail.Observe(now, float64(c.AvailableCount()))
	frac.Observe(now, c.VolatileUnavailableFraction())
	for _, n := range c.Nodes {
		node := n
		n.Watch(func(_ *Node, up bool) {
			t := c.Sim.Now()
			avail.Observe(t, float64(c.AvailableCount()))
			frac.Observe(t, c.VolatileUnavailableFraction())
			if !up {
				susp.IncAt(t)
				return
			}
			resumes.IncAt(t)
			span := t - node.lastDownAt
			downSec.Add(span)
			spanGauge.Set(span)
		})
	}
}

// AvailableCount returns how many nodes are currently up (an O(1) read of
// the maintained tally).
func (c *Cluster) AvailableCount() int { return c.availCount }

// VolatileUnavailableFraction returns the instantaneous fraction of volatile
// nodes that are down — the quantity the MOON NameNode monitors to estimate
// the node-unavailability rate p. O(1) via the maintained tally.
func (c *Cluster) VolatileUnavailableFraction() float64 {
	if len(c.Volatile) == 0 {
		return 0
	}
	return float64(c.volatileDown) / float64(len(c.Volatile))
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.Nodes) {
		return nil
	}
	return c.Nodes[id]
}
