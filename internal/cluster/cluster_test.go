package cluster

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

func twoNodeCluster(t *testing.T) (*sim.Simulation, *Cluster) {
	t.Helper()
	s := sim.New()
	traces := []trace.Trace{
		{Duration: 1000, Outages: []trace.Interval{{Start: 100, End: 200}, {Start: 500, End: 700}}},
		{Duration: 1000},
	}
	return s, New(s, Config{VolatileTraces: traces, DedicatedNodes: 1})
}

func TestTopology(t *testing.T) {
	_, c := twoNodeCluster(t)
	if len(c.Nodes) != 3 || len(c.Volatile) != 2 || len(c.Dedicated) != 1 {
		t.Fatalf("topology %d/%d/%d", len(c.Nodes), len(c.Volatile), len(c.Dedicated))
	}
	if c.Volatile[0].ID != 0 || c.Dedicated[0].ID != 2 {
		t.Fatalf("IDs misassigned: %d, %d", c.Volatile[0].ID, c.Dedicated[0].ID)
	}
	if c.Dedicated[0].Type != Dedicated || !c.Dedicated[0].IsDedicated() {
		t.Fatal("dedicated node mistyped")
	}
	if c.Node(2) != c.Dedicated[0] || c.Node(-1) != nil || c.Node(99) != nil {
		t.Fatal("Node lookup broken")
	}
}

func TestTraceDrivenTransitions(t *testing.T) {
	s, c := twoNodeCluster(t)
	n := c.Volatile[0]
	var log []float64
	n.Watch(func(_ *Node, av bool) { log = append(log, s.Now()) })

	s.RunUntil(1000)
	want := []float64{100, 200, 500, 700}
	if len(log) != len(want) {
		t.Fatalf("transitions at %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("transition %d at %v, want %v", i, log[i], want[i])
		}
	}
	if n.Suspensions() != 2 {
		t.Fatalf("suspensions = %d, want 2", n.Suspensions())
	}
	if n.DownTime() != 300 {
		t.Fatalf("downtime = %v, want 300", n.DownTime())
	}
}

func TestAvailabilityDuringRun(t *testing.T) {
	s, c := twoNodeCluster(t)
	n := c.Volatile[0]
	s.Schedule(150, "probe", func() {
		if n.Available() {
			t.Error("node 0 should be down at t=150")
		}
		if c.AvailableCount() != 2 {
			t.Errorf("AvailableCount = %d at t=150, want 2", c.AvailableCount())
		}
		if got := c.VolatileUnavailableFraction(); got != 0.5 {
			t.Errorf("VolatileUnavailableFraction = %v, want 0.5", got)
		}
	})
	s.Schedule(300, "probe2", func() {
		if !n.Available() {
			t.Error("node 0 should be up at t=300")
		}
	})
	s.RunUntil(1000)
}

func TestDedicatedNeverSuspends(t *testing.T) {
	s, c := twoNodeCluster(t)
	d := c.Dedicated[0]
	d.Watch(func(*Node, bool) { t.Error("dedicated node transitioned") })
	s.RunUntil(1000)
	if !d.Available() || d.Suspensions() != 0 {
		t.Fatal("dedicated node went down")
	}
}

func TestWatcherOrderAndIdempotentSet(t *testing.T) {
	s := sim.New()
	c := New(s, Config{VolatileTraces: []trace.Trace{{Duration: 10}}})
	n := c.Volatile[0]
	var order []int
	n.Watch(func(*Node, bool) { order = append(order, 1) })
	n.Watch(func(*Node, bool) { order = append(order, 2) })
	n.setAvailable(false)
	n.setAvailable(false) // no-op
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("watcher order %v", order)
	}
}

func TestTraceStartingUnavailable(t *testing.T) {
	s := sim.New()
	tr := trace.Trace{Duration: 100, Outages: []trace.Interval{{Start: 0, End: 10}}}
	c := New(s, Config{VolatileTraces: []trace.Trace{tr}})
	if c.Volatile[0].Available() {
		t.Fatal("node should start unavailable")
	}
	s.RunUntil(100)
	if !c.Volatile[0].Available() {
		t.Fatal("node should have resumed")
	}
}

func TestNewAllVolatile(t *testing.T) {
	s := sim.New()
	vt, err := trace.GenerateFleet(rng.New(1), trace.DefaultOutageConfig(0.4), 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	et, err := trace.GenerateFleet(rng.New(2), trace.DefaultOutageConfig(0.4), 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewAllVolatile(s, vt, et)
	if len(c.Nodes) != 6 || len(c.Dedicated) != 0 || len(c.Volatile) != 6 {
		t.Fatalf("all-volatile topology %d/%d/%d", len(c.Nodes), len(c.Volatile), len(c.Dedicated))
	}
}

func TestFleetStatisticsMatchTraceRate(t *testing.T) {
	s := sim.New()
	const horizon = 8 * 3600
	traces, err := trace.GenerateFleet(rng.New(3), trace.DefaultOutageConfig(0.5), horizon, 30)
	if err != nil {
		t.Fatal(err)
	}
	c := New(s, Config{VolatileTraces: traces})
	// Sample the fleet every 10 minutes; average fraction down ~0.5.
	sum, samples := 0.0, 0
	stop := s.Ticker(600, "sample", func() {
		sum += c.VolatileUnavailableFraction()
		samples++
	})
	s.RunUntil(horizon)
	stop()
	avg := sum / float64(samples)
	if avg < 0.4 || avg > 0.6 {
		t.Fatalf("sampled unavailability %v, want ~0.5", avg)
	}
}
