package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// deliverySchedule sends 200 numbered messages through a freshly seeded
// flaky transport and returns exactly what arrived, in order — the
// observable fault schedule.
func deliverySchedule(t *testing.T, seed uint64) string {
	t.Helper()
	f, err := NewFlaky(NewLoopback(), FaultConfig{Seed: seed, DropRate: 0.3, DupRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := f.Dial("cli", "srv", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := lis.Accept(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := conn.Send(i, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var got []any
	for {
		m, err := srv.Recv(0)
		if err != nil {
			break
		}
		got = append(got, m)
	}
	return fmt.Sprint(got)
}

// TestFlakyDeterministicSchedule is the reproducibility contract: the same
// fault seed over the same traffic yields a byte-identical delivery
// schedule; a different seed yields a different one.
func TestFlakyDeterministicSchedule(t *testing.T) {
	a, b := deliverySchedule(t, 7), deliverySchedule(t, 7)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if c := deliverySchedule(t, 8); a == c {
		t.Fatal("different seeds produced the identical schedule")
	}
	// The configured rates must actually bite: with DropRate 0.3 a
	// 200-message run cannot arrive complete.
	if a == fmt.Sprint(seqInts(200)) {
		t.Fatal("no faults injected at DropRate 0.3")
	}
}

func seqInts(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFlakyZeroConfigIsTransparent(t *testing.T) {
	f, err := NewFlaky(NewLoopback(), FaultConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lis, _ := f.Listen("srv")
	conn, _ := f.Dial("cli", "srv", time.Second)
	srv, _ := lis.Accept(time.Second)
	for i := 0; i < 50; i++ {
		if err := conn.Send(i, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		m, err := srv.Recv(time.Second)
		if err != nil || m != i {
			t.Fatalf("message %d: got %v, %v", i, m, err)
		}
	}
	st := f.Stats()
	if st.Drops+st.Dups+st.Delays+st.Resets != 0 {
		t.Fatalf("zero-rate config injected faults: %+v", st)
	}
}

func TestFlakyResetKillsConnection(t *testing.T) {
	f, err := NewFlaky(NewLoopback(), FaultConfig{Seed: 3, ResetRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	lis, _ := f.Listen("srv")
	conn, _ := f.Dial("cli", "srv", time.Second)
	if _, err := lis.Accept(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send("doomed", time.Second); !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
	if err := conn.Send("after", 5*time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after reset: %v", err)
	}
	if f.Stats().Resets != 1 {
		t.Fatalf("stats %+v", f.Stats())
	}
}

func TestFlakyPartitionWindow(t *testing.T) {
	f, err := NewFlaky(NewLoopback(), FaultConfig{
		Seed:       1,
		Partitions: []Partition{{Start: 0, Duration: 50 * time.Millisecond, Addrs: []string{"cli"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, _ := f.Listen("srv")
	conn, _ := f.Dial("cli", "srv", time.Second)
	srv, _ := lis.Accept(time.Second)

	// Inside the window: the send "succeeds" but nothing arrives — and a
	// link not touching the partitioned address is unaffected.
	if err := conn.Send("lost", time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(5 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned message arrived: %v", err)
	}
	other, _ := f.Dial("other", "srv", time.Second)
	srv2, _ := lis.Accept(time.Second)
	if err := other.Send("through", time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err := srv2.Recv(time.Second); err != nil || m != "through" {
		t.Fatalf("unpartitioned link blocked: %v, %v", m, err)
	}

	// After the window closes the original link heals.
	time.Sleep(60 * time.Millisecond)
	if err := conn.Send("healed", time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(time.Second); err != nil || m != "healed" {
		t.Fatalf("post-window delivery: %v, %v", m, err)
	}
	if f.Stats().Drops != 1 {
		t.Fatalf("stats %+v", f.Stats())
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{DropRate: 1.5},
		{DupRate: -0.1},
		{ResetRate: 2},
		{DelayRate: 0.5}, // needs Delay > 0
		{Delay: -time.Millisecond},
		{Partitions: []Partition{{Start: -time.Second, Duration: time.Second}}},
		{Partitions: []Partition{{Start: 0, Duration: 0}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	ok := FaultConfig{Seed: 9, DropRate: 0.1, DupRate: 0.1, DelayRate: 0.1, Delay: time.Millisecond,
		ResetRate: 0.01, Partitions: []Partition{{Start: time.Millisecond, Duration: time.Millisecond}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
