package transport

import (
	"errors"
	"testing"
	"time"
)

func TestLoopbackSendRecv(t *testing.T) {
	tr := NewLoopback()
	lis, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tr.Dial("cli", "srv", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := lis.Accept(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if conn.LocalAddr() != "cli" || conn.RemoteAddr() != "srv" {
		t.Fatalf("dialer addrs %q→%q", conn.LocalAddr(), conn.RemoteAddr())
	}
	if srv.LocalAddr() != "srv" || srv.RemoteAddr() != "cli" {
		t.Fatalf("acceptee addrs %q→%q", srv.LocalAddr(), srv.RemoteAddr())
	}

	if err := conn.Send("ping", time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := srv.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m != "ping" {
		t.Fatalf("got %v", m)
	}
	if err := srv.Send("pong", time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err = conn.Recv(time.Second); err != nil || m != "pong" {
		t.Fatalf("reply %v, %v", m, err)
	}

	st := tr.Stats()
	if st.Dials != 1 || st.Sends != 2 || st.Drops != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLoopbackTimeoutsAndClose(t *testing.T) {
	tr := NewLoopback()
	lis, _ := tr.Listen("srv")

	if _, err := tr.Dial("cli", "nowhere", 10*time.Millisecond); !errors.Is(err, ErrNoListener) {
		t.Fatalf("dial to nowhere: %v", err)
	}
	if _, err := lis.Accept(5 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("accept on idle listener: %v", err)
	}

	conn, _ := tr.Dial("cli", "srv", time.Second)
	srv, _ := lis.Accept(time.Second)
	if _, err := srv.Recv(5 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv on empty conn: %v", err)
	}

	// A buffered message survives the peer's close; afterwards the conn
	// reports closed both ways.
	if err := conn.Send("last", time.Second); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if m, err := srv.Recv(time.Second); err != nil || m != "last" {
		t.Fatalf("drain after close: %v, %v", m, err)
	}
	if _, err := srv.Recv(5 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
	if err := srv.Send("x", 5*time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}

	lis.Close()
	if _, err := tr.Dial("cli", "srv", 5*time.Millisecond); !errors.Is(err, ErrNoListener) {
		t.Fatalf("dial to closed listener: %v", err)
	}
}

func TestLoopbackRejectsDuplicateListen(t *testing.T) {
	tr := NewLoopback()
	if _, err := tr.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("a"); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

func TestLinkConfigValidate(t *testing.T) {
	if err := DefaultLinkConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}

	l := DefaultLinkConfig()
	l.HeartbeatInterval = l.LeaseDuration
	if err := l.Validate(); err == nil {
		t.Fatal("heartbeat >= lease accepted")
	}

	l = DefaultLinkConfig()
	l.SendTimeout = 0
	if err := l.Validate(); err == nil {
		t.Fatal("zero SendTimeout accepted")
	}

	l = DefaultLinkConfig()
	l.SessionExpiry = l.LeaseDuration / 2
	if err := l.Validate(); err == nil {
		t.Fatal("SessionExpiry < LeaseDuration accepted")
	}

	l = DefaultLinkConfig()
	l.MaxRetries = -1
	if err := l.Validate(); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
}
