// Package transport is the message layer under the live engine's
// master↔worker protocol: a small, connection-oriented interface with
// per-operation deadlines, plus two implementations. Loopback is the
// zero-fault default — buffered in-process channels, so an engine built on
// it behaves exactly like one wired with bare channels. Flaky wraps any
// transport with deterministic, seeded fault injection (message drops,
// delays, duplication, connection resets, timed partition windows) so
// failure-handling code can be exercised reproducibly under -race.
//
// Payloads are passed as Go values, not bytes: the package models an
// unreliable message fabric, not a wire format. Serialization (and real
// sockets) is the remaining half of the distributed-engine roadmap item.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// The transport error vocabulary. Callers branch on these with errors.Is:
// timeouts are retryable, closes and resets end the connection, and a
// missing listener means the peer has not (re)started yet.
var (
	ErrTimeout    = errors.New("transport: operation timed out")
	ErrClosed     = errors.New("transport: connection closed")
	ErrReset      = errors.New("transport: connection reset by fault injection")
	ErrNoListener = errors.New("transport: no listener at address")
)

// Conn is one bidirectional message connection. Send and Recv take
// per-operation deadlines; a zero or negative timeout fails immediately
// with ErrTimeout unless the operation can complete without blocking.
// Conns are safe for one sender and one receiver goroutine per direction.
type Conn interface {
	Send(payload any, timeout time.Duration) error
	Recv(timeout time.Duration) (any, error)
	LocalAddr() string
	RemoteAddr() string
	Close() error
}

// Listener accepts inbound connections at one address.
type Listener interface {
	Accept(timeout time.Duration) (Conn, error)
	Addr() string
	Close() error
}

// Transport creates listeners and dials connections. Dial carries the
// caller's own address (loopback has no ambient identity), which is also
// what partition windows match against.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(from, to string, timeout time.Duration) (Conn, error)
	// Stats returns a snapshot of the transport's traffic counters.
	Stats() Stats
}

// Stats counts a transport's traffic and injected faults. Loopback only
// moves Dials and Sends; the fault counters belong to Flaky.
type Stats struct {
	Dials  int64 // connections dialed
	Sends  int64 // messages submitted for delivery
	Drops  int64 // messages silently discarded (drop rate or partition)
	Dups   int64 // messages delivered twice
	Delays int64 // messages delivered late
	Resets int64 // connections killed mid-flight
}

// stats is the shared atomic backing of Stats snapshots.
type stats struct {
	dials, sends, drops, dups, delays, resets atomic.Int64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Dials:  s.dials.Load(),
		Sends:  s.sends.Load(),
		Drops:  s.drops.Load(),
		Dups:   s.dups.Load(),
		Delays: s.delays.Load(),
		Resets: s.resets.Load(),
	}
}

// LinkConfig gathers every knob of the engine's failure-handling protocol,
// in the style of the paper's CLUSTER_LINK_* / COORDINATOR_* family. The
// zero value is not valid; start from DefaultLinkConfig.
type LinkConfig struct {
	// ConnectTimeout bounds one dial (including the hello/welcome
	// handshake's per-message operations).
	ConnectTimeout time.Duration
	// SendTimeout / RecvTimeout bound one message send / receive.
	SendTimeout time.Duration
	RecvTimeout time.Duration
	// HeartbeatInterval is the worker's lease-refresh period.
	HeartbeatInterval time.Duration
	// LeaseDuration is how long a heartbeat keeps a volatile worker's
	// lease fresh; a worker silent longer is treated as suspended and its
	// tasks become eligible for backup copies.
	LeaseDuration time.Duration
	// MaxRetries bounds the resends of one unacknowledged message (0
	// keeps the default; retries back off exponentially from
	// RetryBackoff). A message still unacknowledged after the last resend
	// is abandoned: the master force-retires the attempt, the worker
	// reconnects under a fresh session.
	MaxRetries int
	// RetryBackoff is the initial resend backoff; it doubles per retry.
	RetryBackoff time.Duration
	// SessionExpiry evicts a session silent this long: the connection is
	// closed and the worker must rejoin under a new session ID, its
	// in-flight results discarded. Zero disables expiry (a returning
	// worker resumes its session, the pre-transport behavior).
	SessionExpiry time.Duration
}

// DefaultLinkConfig mirrors the engine's millisecond-scale defaults:
// heartbeats at 10 ms against a 50 ms lease, 50 ms per-operation
// deadlines, three retries from a 2 ms backoff, and no session expiry.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		ConnectTimeout:    50 * time.Millisecond,
		SendTimeout:       50 * time.Millisecond,
		RecvTimeout:       50 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		LeaseDuration:     50 * time.Millisecond,
		MaxRetries:        3,
		RetryBackoff:      2 * time.Millisecond,
	}
}

// Validate rejects configurations under which the protocol cannot work: a
// heartbeat period at or beyond the lease makes every fresh lease expire
// before its next refresh, and a session expiry shorter than the lease
// would evict workers the lease still trusts.
func (l LinkConfig) Validate() error {
	// Ordered so the reported knob is deterministic when several are
	// invalid (detrange-pinned).
	for _, p := range []struct {
		name string
		d    time.Duration
	}{
		{"ConnectTimeout", l.ConnectTimeout},
		{"SendTimeout", l.SendTimeout},
		{"RecvTimeout", l.RecvTimeout},
		{"HeartbeatInterval", l.HeartbeatInterval},
		{"LeaseDuration", l.LeaseDuration},
		{"RetryBackoff", l.RetryBackoff},
	} {
		if p.d <= 0 {
			return fmt.Errorf("transport: %s must be positive (got %v)", p.name, p.d)
		}
	}
	if l.MaxRetries < 0 {
		return fmt.Errorf("transport: MaxRetries must be >= 0 (got %d)", l.MaxRetries)
	}
	if l.HeartbeatInterval >= l.LeaseDuration {
		return fmt.Errorf("transport: HeartbeatInterval %v >= LeaseDuration %v (a fresh lease would expire before its next refresh)",
			l.HeartbeatInterval, l.LeaseDuration)
	}
	if l.SessionExpiry < 0 {
		return fmt.Errorf("transport: SessionExpiry must be >= 0 (got %v)", l.SessionExpiry)
	}
	if l.SessionExpiry > 0 && l.SessionExpiry < l.LeaseDuration {
		return fmt.Errorf("transport: SessionExpiry %v < LeaseDuration %v (sessions would expire while their lease is still trusted)",
			l.SessionExpiry, l.LeaseDuration)
	}
	return nil
}
