package transport

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Partition is one timed partition window, relative to the transport's
// creation: while active, every message on a link touching one of Addrs
// (either end; empty means all links) is silently dropped — both
// directions, like a real network cut. Connections stay up; the messages
// just vanish.
type Partition struct {
	Start    time.Duration
	Duration time.Duration
	// Addrs lists the affected endpoint addresses; empty partitions
	// everything.
	Addrs []string
}

// FaultConfig parameterizes deterministic fault injection. Every
// per-message decision is a pure function of (Seed, connection, message
// sequence number), so the same seed over the same traffic yields the
// identical fault schedule — chaos runs are reproducible.
type FaultConfig struct {
	// Seed selects the fault schedule.
	Seed uint64
	// DropRate / DupRate / DelayRate / ResetRate are per-message
	// probabilities in [0, 1].
	DropRate  float64
	DupRate   float64
	DelayRate float64
	// Delay is how late a delay-selected message is delivered.
	Delay time.Duration
	// ResetRate kills the connection instead of sending: the send fails
	// with ErrReset and the conn is closed (both directions).
	ResetRate float64
	// Partitions are the timed windows during which matching links drop
	// every message.
	Partitions []Partition
}

// Validate rejects out-of-range rates and malformed windows.
func (f FaultConfig) Validate() error {
	// Ordered so the reported rate is deterministic when several are
	// invalid (detrange-pinned).
	for _, p := range []struct {
		name string
		r    float64
	}{
		{"DropRate", f.DropRate}, {"DupRate", f.DupRate},
		{"DelayRate", f.DelayRate}, {"ResetRate", f.ResetRate},
	} {
		if p.r < 0 || p.r > 1 || math.IsNaN(p.r) {
			return fmt.Errorf("transport: %s %v outside [0, 1]", p.name, p.r)
		}
	}
	if f.Delay < 0 {
		return fmt.Errorf("transport: Delay must be >= 0 (got %v)", f.Delay)
	}
	if f.DelayRate > 0 && f.Delay == 0 {
		return fmt.Errorf("transport: DelayRate %v needs Delay > 0", f.DelayRate)
	}
	for i, p := range f.Partitions {
		if p.Start < 0 || p.Duration <= 0 {
			return fmt.Errorf("transport: partition %d window [start %v, duration %v] (want start >= 0, duration > 0)",
				i, p.Start, p.Duration)
		}
	}
	return nil
}

// Flaky wraps a transport with seeded fault injection on every Send. The
// wrapped transport's own counters keep counting; engine metrics read the
// outermost Stats.
type Flaky struct {
	inner Transport
	cfg   FaultConfig
	start time.Time
	st    stats

	// dialSeq numbers the connections of each (from, to) pair so a redial
	// gets a fresh, still-deterministic fault stream.
	mu      sync.Mutex
	dialSeq map[string]uint64
}

// NewFlaky wraps inner with the validated fault configuration. Partition
// windows start counting at this call.
func NewFlaky(inner Transport, cfg FaultConfig) (*Flaky, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Flaky{
		inner:   inner,
		cfg:     cfg,
		start:   time.Now(),
		dialSeq: make(map[string]uint64),
	}, nil
}

// Listen wraps the inner listener so accepted connections inject faults on
// their sends too (faults are injected sender-side, per direction).
func (f *Flaky) Listen(addr string) (Listener, error) {
	l, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{f: f, inner: l}, nil
}

// Dial dials through the inner transport and wraps the connection.
func (f *Flaky) Dial(from, to string, timeout time.Duration) (Conn, error) {
	c, err := f.inner.Dial(from, to, timeout)
	if err != nil {
		return nil, err
	}
	f.st.dials.Add(1)
	return &flakyConn{f: f, inner: c, id: f.connID("dial", from, to)}, nil
}

// Stats snapshots the injection counters (Sends counts attempted sends,
// including the dropped ones).
func (f *Flaky) Stats() Stats { return f.st.snapshot() }

// connID derives the deterministic fault-stream identity of one wrapped
// connection from its direction, endpoints, and per-pair dial count.
func (f *Flaky) connID(side, local, remote string) uint64 {
	key := side + "|" + local + "|" + remote
	f.mu.Lock()
	n := f.dialSeq[key]
	f.dialSeq[key] = n + 1
	f.mu.Unlock()
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(f.cfg.Seed ^ h.Sum64() ^ n*0x9e3779b97f4a7c15)
}

// partitioned reports whether a link touching (a, b) is inside an active
// partition window.
func (f *Flaky) partitioned(a, b string) bool {
	if len(f.cfg.Partitions) == 0 {
		return false
	}
	now := time.Since(f.start)
	for _, p := range f.cfg.Partitions {
		if now < p.Start || now >= p.Start+p.Duration {
			continue
		}
		if len(p.Addrs) == 0 {
			return true
		}
		for _, addr := range p.Addrs {
			if addr == a || addr == b {
				return true
			}
		}
	}
	return false
}

type flakyListener struct {
	f     *Flaky
	inner Listener
}

func (l *flakyListener) Addr() string { return l.inner.Addr() }
func (l *flakyListener) Close() error { return l.inner.Close() }

func (l *flakyListener) Accept(timeout time.Duration) (Conn, error) {
	c, err := l.inner.Accept(timeout)
	if err != nil {
		return nil, err
	}
	return &flakyConn{f: l.f, inner: c, id: l.f.connID("accept", c.LocalAddr(), c.RemoteAddr())}, nil
}

type flakyConn struct {
	f      *Flaky
	inner  Conn
	id     uint64
	seq    atomic.Uint64
	closed atomic.Bool
}

func (c *flakyConn) LocalAddr() string  { return c.inner.LocalAddr() }
func (c *flakyConn) RemoteAddr() string { return c.inner.RemoteAddr() }

func (c *flakyConn) Close() error {
	c.closed.Store(true)
	return c.inner.Close()
}

func (c *flakyConn) Recv(timeout time.Duration) (any, error) {
	return c.inner.Recv(timeout)
}

// Send rolls the message's fate from (conn id, seq): partition and drop
// vanish it, reset kills the connection, delay delivers late, dup delivers
// twice. The decision order is fixed, so a schedule is one deterministic
// sequence per connection.
func (c *flakyConn) Send(payload any, timeout time.Duration) error {
	if c.closed.Load() {
		return ErrClosed
	}
	f := c.f
	f.st.sends.Add(1)
	seq := c.seq.Add(1)

	if f.partitioned(c.LocalAddr(), c.RemoteAddr()) {
		f.st.drops.Add(1)
		return nil // vanished; the sender cannot tell
	}

	base := c.id ^ seq*0x9e3779b97f4a7c15
	if unit(mix64(base+1)) < f.cfg.ResetRate {
		f.st.resets.Add(1)
		c.closed.Store(true)
		_ = c.inner.Close()
		return ErrReset
	}
	if unit(mix64(base+2)) < f.cfg.DropRate {
		f.st.drops.Add(1)
		return nil
	}
	dup := unit(mix64(base+3)) < f.cfg.DupRate
	if unit(mix64(base+4)) < f.cfg.DelayRate {
		f.st.delays.Add(1)
		if dup {
			f.st.dups.Add(1)
		}
		// Fire-and-forget late delivery; a conn closed in the meantime
		// just swallows it, like any in-flight packet at teardown.
		time.AfterFunc(f.cfg.Delay, func() {
			_ = c.inner.Send(payload, timeout)
			if dup {
				_ = c.inner.Send(payload, timeout)
			}
		})
		return nil
	}
	if err := c.inner.Send(payload, timeout); err != nil {
		return err
	}
	if dup {
		f.st.dups.Add(1)
		_ = c.inner.Send(payload, timeout)
	}
	return nil
}

// mix64 is the splitmix64 finalizer (same mixer as internal/rng's seeding
// path): a stateless uniform hash, the source of every fault decision.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1) with 53-bit precision.
func unit(v uint64) float64 { return float64(v>>11) / (1 << 53) }
