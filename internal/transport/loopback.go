package transport

import (
	"fmt"
	"sync"
	"time"
)

// Loopback is the in-process, zero-fault transport: buffered channels
// under the Conn interface. Messages are never lost, duplicated or
// reordered, so an engine wired through it behaves exactly like one wired
// with bare channels — the default that keeps every quiet-cluster golden
// byte-identical.
type Loopback struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
	st        stats
}

// NewLoopback returns an empty loopback fabric. Addresses are arbitrary
// strings scoped to this instance.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopListener)}
}

// Listen claims an address.
func (t *Loopback) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already has a listener", addr)
	}
	l := &loopListener{
		t:       t,
		addr:    addr,
		accepts: make(chan Conn, 64),
		done:    make(chan struct{}),
	}
	t.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address; the from address is the caller's
// identity (fault injection matches partitions against both ends).
func (t *Loopback) Dial(from, to string, timeout time.Duration) (Conn, error) {
	t.mu.Lock()
	l := t.listeners[to]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoListener, to)
	}

	fwd, bwd := newPipe(), newPipe()
	dialer := &loopConn{local: from, remote: to, in: bwd, out: fwd, st: &t.st}
	acceptee := &loopConn{local: to, remote: from, in: fwd, out: bwd, st: &t.st}

	select {
	case l.accepts <- acceptee:
	case <-l.done:
		return nil, fmt.Errorf("%w: %q", ErrNoListener, to)
	default:
		// Accept queue full: wait out the timeout like a SYN backlog.
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case l.accepts <- acceptee:
		case <-l.done:
			return nil, fmt.Errorf("%w: %q", ErrNoListener, to)
		case <-timer.C:
			return nil, ErrTimeout
		}
	}
	t.st.dials.Add(1)
	return dialer, nil
}

// Stats snapshots the fabric's counters (loopback only moves Dials and
// Sends).
func (t *Loopback) Stats() Stats { return t.st.snapshot() }

type loopListener struct {
	t       *Loopback
	addr    string
	accepts chan Conn
	done    chan struct{}
	once    sync.Once
}

func (l *loopListener) Addr() string { return l.addr }

func (l *loopListener) Accept(timeout time.Duration) (Conn, error) {
	select {
	case c := <-l.accepts:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	default:
	}
	if timeout <= 0 {
		return nil, ErrTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c := <-l.accepts:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	case <-timer.C:
		return nil, ErrTimeout
	}
}

func (l *loopListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

// pipe is one direction of a loopback connection. done covers the whole
// connection (either endpoint closing kills both directions), but buffered
// messages stay readable after close so an in-flight reply is not lost to
// a racing Close.
type pipe struct {
	ch   chan any
	done chan struct{}
	once sync.Once
}

func newPipe() *pipe {
	return &pipe{ch: make(chan any, 256), done: make(chan struct{})}
}

func (p *pipe) close() { p.once.Do(func() { close(p.done) }) }

type loopConn struct {
	local, remote string
	in, out       *pipe
	st            *stats
}

func (c *loopConn) LocalAddr() string  { return c.local }
func (c *loopConn) RemoteAddr() string { return c.remote }

func (c *loopConn) Close() error {
	c.in.close()
	c.out.close()
	return nil
}

func (c *loopConn) Send(payload any, timeout time.Duration) error {
	c.st.sends.Add(1)
	select {
	case <-c.out.done:
		return ErrClosed
	default:
	}
	select {
	case c.out.ch <- payload:
		return nil
	default:
	}
	if timeout <= 0 {
		return ErrTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c.out.ch <- payload:
		return nil
	case <-c.out.done:
		return ErrClosed
	case <-timer.C:
		return ErrTimeout
	}
}

func (c *loopConn) Recv(timeout time.Duration) (any, error) {
	select {
	case m := <-c.in.ch:
		return m, nil
	default:
	}
	select {
	case <-c.in.done:
		return nil, ErrClosed
	default:
	}
	if timeout <= 0 {
		return nil, ErrTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-c.in.ch:
		return m, nil
	case <-c.in.done:
		// Drain any message that raced the close.
		select {
		case m := <-c.in.ch:
			return m, nil
		default:
		}
		return nil, ErrClosed
	case <-timer.C:
		return nil, ErrTimeout
	}
}
