// Package core is the public façade of the MOON reproduction: it wires the
// discrete-event simulator, the churn-driven cluster, the network model,
// the MOON/Hadoop DFS and the MOON/Hadoop MapReduce runtime into a single
// Simulation value, and provides the policy presets used throughout the
// paper's evaluation.
//
// A typical use:
//
//	opts := core.MOONPreset(core.ClusterSpec{
//		VolatileNodes: 60, DedicatedNodes: 6,
//		UnavailabilityRate: 0.5, Seed: 1,
//	}, true /* hybrid */)
//	s, _ := core.NewSimulation(opts)
//	profile, _ := s.RunWorkload(workload.Sort(s.ReduceSlots()))
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ClusterSpec describes the emulated fleet and its churn.
type ClusterSpec struct {
	VolatileNodes  int
	DedicatedNodes int

	// UnavailabilityRate is the target fraction of time each volatile
	// node is away (the paper sweeps 0.1, 0.3, 0.5).
	UnavailabilityRate float64

	// TreatAllVolatile types every machine volatile and churns the
	// dedicated ones too — the paper's Hadoop baseline, which "cannot
	// differentiate between volatile and dedicated".
	TreatAllVolatile bool

	// Seed drives trace generation; distinct seeds give independent
	// churn realizations.
	Seed uint64

	// Horizon is the trace length in seconds (default: 8 hours, the
	// paper's trace length).
	Horizon float64

	// Outage overrides the outage model (default: the paper's
	// mean-409 s truncated normal).
	Outage *trace.OutageConfig

	// Correlated, when set, layers group-correlated lab-session outages
	// (paper Section III) on top of the independent churn; it overrides
	// Outage/UnavailabilityRate for volatile-trace generation.
	Correlated *trace.CorrelatedConfig
}

func (c ClusterSpec) withDefaults() ClusterSpec {
	if c.Horizon == 0 {
		c.Horizon = 8 * 3600
	}
	return c
}

// Options assembles a full simulation configuration.
type Options struct {
	Cluster ClusterSpec
	Net     netmodel.Config
	DFS     dfs.Config
	Sched   mapred.SchedConfig

	// Metrics, when non-nil, receives cross-layer instrumentation from
	// every subsystem (sim, cluster, net, dfs, mapred). Collection is
	// strictly passive: a run with a collector is bit-identical to the
	// same run without one, and a nil collector leaves every hot path
	// allocation-free.
	Metrics *metrics.Collector

	// ShardWorkers bounds the intra-run worker pool that parallel phases
	// (trace generation, netmodel settle sweeps, heartbeat slot scans) fan
	// across. 0 means one worker per available CPU; 1 forces serial.
	// Every worker count produces byte-identical results — the knob only
	// trades wall-clock for cores.
	ShardWorkers int
}

// HadoopPreset configures stock Hadoop with the given TrackerExpiryInterval
// (the paper sweeps 600, 300 and 60 seconds).
func HadoopPreset(cs ClusterSpec, trackerExpiry float64) Options {
	sched := mapred.DefaultSchedConfig(mapred.PolicyHadoop)
	sched.TrackerExpiry = trackerExpiry
	return Options{
		Cluster: cs,
		Net:     netmodel.DefaultConfig(),
		DFS:     dfs.DefaultConfig(dfs.ModeHadoop),
		Sched:   sched,
	}
}

// MOONPreset configures the full MOON stack; hybrid selects the
// hybrid-aware scheduler variant (MOON-Hybrid in the figures).
func MOONPreset(cs ClusterSpec, hybrid bool) Options {
	sched := mapred.DefaultSchedConfig(mapred.PolicyMOON)
	sched.Hybrid = hybrid
	return Options{
		Cluster: cs,
		Net:     netmodel.DefaultConfig(),
		DFS:     dfs.DefaultConfig(dfs.ModeMOON),
		Sched:   sched,
	}
}

// Simulation is one fully wired instance of the system.
type Simulation struct {
	Sim     *sim.Simulation
	Cluster *cluster.Cluster
	Net     *netmodel.Network
	FS      *dfs.FileSystem
	JT      *mapred.JobTracker

	opts Options
}

// NewSimulation builds the whole stack: traces, cluster, network, DFS and
// JobTracker.
func NewSimulation(opts Options) (*Simulation, error) {
	cs := opts.Cluster.withDefaults()
	opts.Cluster = cs
	if cs.VolatileNodes < 0 || cs.VolatileNodes+cs.DedicatedNodes == 0 {
		return nil, fmt.Errorf("core: cluster needs nodes (got %d volatile, %d dedicated)",
			cs.VolatileNodes, cs.DedicatedNodes)
	}
	ocfg := trace.DefaultOutageConfig(cs.UnavailabilityRate)
	if cs.Outage != nil {
		ocfg = *cs.Outage
	}
	r := rng.New(cs.Seed)
	s := sim.New()
	s.SetShardWorkers(opts.ShardWorkers)
	s.Instrument(opts.Metrics)

	genFleet := func(n int) ([]trace.Trace, error) {
		if cs.Correlated != nil {
			return trace.GenerateCorrelatedFleetOn(s.Shards(), r, *cs.Correlated, cs.Horizon, n)
		}
		return trace.GenerateFleetOn(s.Shards(), r, ocfg, cs.Horizon, n)
	}
	volTraces, err := genFleet(cs.VolatileNodes)
	if err != nil {
		return nil, err
	}
	var cl *cluster.Cluster
	if cs.TreatAllVolatile {
		extra, err := genFleet(cs.DedicatedNodes)
		if err != nil {
			return nil, err
		}
		cl = cluster.NewAllVolatile(s, volTraces, extra)
	} else {
		cl = cluster.New(s, cluster.Config{VolatileTraces: volTraces, DedicatedNodes: cs.DedicatedNodes})
	}

	cl.Instrument(opts.Metrics)
	// The target churn rate, for comparing realized availability against.
	opts.Metrics.Gauge(metrics.LayerCluster, "unavail_rate_target", "").Set(cs.UnavailabilityRate)

	net := netmodel.New(s, cl, opts.Net)
	net.Instrument(opts.Metrics)
	fsys, err := dfs.New(s, cl, net, opts.DFS)
	if err != nil {
		return nil, err
	}
	fsys.Instrument(opts.Metrics)
	jt, err := mapred.NewJobTracker(s, cl, fsys, net, opts.Sched)
	if err != nil {
		return nil, err
	}
	jt.Instrument(opts.Metrics)
	return &Simulation{Sim: s, Cluster: cl, Net: net, FS: fsys, JT: jt, opts: opts}, nil
}

// ReduceSlots returns the cluster's total reduce slots, the paper's basis
// for sort's "0.9 × AvailSlots" reduce count.
func (s *Simulation) ReduceSlots() int {
	return len(s.Cluster.Nodes) * s.opts.Sched.ReduceSlotsPerNode
}

// StageInput materializes a job input file (no simulated cost), as the
// paper does before each measured run.
func (s *Simulation) StageInput(name string, size float64, factor dfs.Factor) error {
	_, err := s.FS.CreateStaged(name, size, dfs.Reliable, factor)
	return err
}

// Result is the outcome of one job run: the runtime profile plus DFS-level
// metrics accumulated during the run.
type Result struct {
	Profile mapred.Profile
	DFS     dfs.Metrics
	// Horizon reports whether the run hit the simulation horizon before
	// the job finished (the paper's "unable to finish" cases).
	HitHorizon bool
}

// RunWorkload stages the workload's input and runs its job to completion
// (or to the trace horizon). The input file is staged with exactly one
// block per map: the DFS block size must equal InputSize / NumMaps, which
// NewForWorkload arranges.
func (s *Simulation) RunWorkload(w workload.Spec) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := s.StageInput(w.Job.InputFile, w.InputSize, w.InputFactor); err != nil {
		return Result{}, err
	}
	var finished *mapred.Job
	job, err := s.JT.Submit(w.Job, func(j *mapred.Job) {
		finished = j
		s.Sim.Stop() // nothing after the job matters to the experiment
	})
	if err != nil {
		return Result{}, err
	}
	s.Sim.RunUntil(s.opts.Cluster.Horizon)
	res := Result{DFS: s.FS.Metrics}
	if finished == nil {
		res.HitHorizon = true
		res.Profile = job.Profile()
		res.Profile.Makespan = s.opts.Cluster.Horizon
		return res, nil
	}
	res.Profile = finished.Profile()
	return res, nil
}

// NewForWorkload builds a simulation whose DFS block size matches the
// workload's input split (so map i reads input block i, as in Hadoop).
func NewForWorkload(opts Options, w workload.Spec) (*Simulation, error) {
	if w.Job.NumMaps > 0 {
		opts.DFS.BlockSize = w.InputSize / float64(w.Job.NumMaps)
	}
	return NewSimulation(opts)
}
