package core

import (
	"testing"

	"repro/internal/mapred"
	"repro/internal/workload"
)

func TestRunMultiWorkloadEndToEnd(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 10, DedicatedNodes: 2, UnavailabilityRate: 0.3, Seed: 3}
	m := workload.Staggered(smallSpec(), 3, 120)
	for _, pol := range []mapred.SchedPolicy{mapred.FIFO(), mapred.FairShare()} {
		opts := MOONPreset(cs, true)
		opts.Sched.JobPolicy = pol
		s, err := NewForMultiWorkload(opts, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunMultiWorkload(m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != len(m.Jobs) {
			t.Fatalf("%s: %d/%d jobs completed", pol.Name(), res.Completed, len(m.Jobs))
		}
		if res.Span <= 0 || res.Throughput <= 0 {
			t.Fatalf("%s: span %v throughput %v", pol.Name(), res.Span, res.Throughput)
		}
		for i, jr := range res.Jobs {
			if jr.HitHorizon || jr.Profile.State != mapred.JobSucceeded {
				t.Fatalf("%s: job %d result %+v", pol.Name(), i, jr)
			}
			if jr.Profile.Makespan <= 0 {
				t.Fatalf("%s: job %d makespan %v", pol.Name(), i, jr.Profile.Makespan)
			}
		}
	}
}

// TestRunMultiWorkloadHorizonCaps: jobs that cannot finish (or even
// submit) before the trace horizon report submission→horizon makespans
// and a horizon-bounded span.
func TestRunMultiWorkloadHorizonCaps(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 10, DedicatedNodes: 2, UnavailabilityRate: 0.3,
		Seed: 3, Horizon: 600}
	m := workload.Staggered(smallSpec(), 3, 500) // job 2 submits at t=1000 > horizon
	s, err := NewForMultiWorkload(MOONPreset(cs, true), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunMultiWorkload(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Span != 600 {
		t.Fatalf("span %v, want the 600s horizon", res.Span)
	}
	last := res.Jobs[2]
	if !last.HitHorizon {
		t.Fatal("never-submitted job not marked capped")
	}
	if last.Profile.Makespan != 0 {
		t.Fatalf("never-submitted job makespan %v, want 0 (offset ≥ horizon)", last.Profile.Makespan)
	}
	mid := res.Jobs[1] // submitted at t=500, cannot finish in 100s
	if !mid.HitHorizon || mid.Profile.Makespan != 100 {
		t.Fatalf("mid job capped=%v makespan=%v, want capped with 100s", mid.HitHorizon, mid.Profile.Makespan)
	}
}

// TestRunMultiWorkloadSingleMatchesRunWorkload: a one-job multi run under
// FIFO reproduces the single-job path's profile exactly.
func TestRunMultiWorkloadSingleMatchesRunWorkload(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 10, DedicatedNodes: 2, UnavailabilityRate: 0.3, Seed: 7}
	w := smallSpec()

	single, err := NewForWorkload(MOONPreset(cs, true), w)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}

	m := workload.MultiSpec{Name: "single", Jobs: []workload.MultiJob{{Spec: w}}}
	multi, err := NewForMultiWorkload(MOONPreset(cs, true), m)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := multi.RunMultiWorkload(m)
	if err != nil {
		t.Fatal(err)
	}

	mp := mres.Jobs[0].Profile
	mp.Job = sres.Profile.Job // names differ only by harness labeling
	sp := sres.Profile
	mp.Job, sp.Job = "", ""
	if mp != sp {
		t.Fatalf("single-job multi run diverged:\nmulti:  %+v\nsingle: %+v", mp, sp)
	}
}
