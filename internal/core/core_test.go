package core

import (
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/workload"
)

func smallSpec() workload.Spec {
	return workload.Scale(workload.SleepApp(workload.Sort(2*12)), 8)
}

func TestNewSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(Options{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	cs := ClusterSpec{VolatileNodes: -1}
	if _, err := NewSimulation(MOONPreset(cs, true)); err == nil {
		t.Fatal("negative volatile count accepted")
	}
}

func TestPresets(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 4, DedicatedNodes: 1, UnavailabilityRate: 0.2, Seed: 1}
	h := HadoopPreset(cs, 60)
	if h.Sched.Policy != mapred.PolicyHadoop || h.Sched.TrackerExpiry != 60 {
		t.Fatalf("hadoop preset sched %+v", h.Sched)
	}
	if h.DFS.Mode != dfs.ModeHadoop {
		t.Fatal("hadoop preset dfs mode")
	}
	m := MOONPreset(cs, true)
	if m.Sched.Policy != mapred.PolicyMOON || !m.Sched.Hybrid {
		t.Fatalf("moon preset sched %+v", m.Sched)
	}
	if m.DFS.Mode != dfs.ModeMOON {
		t.Fatal("moon preset dfs mode")
	}
	if MOONPreset(cs, false).Sched.Hybrid {
		t.Fatal("non-hybrid preset has Hybrid set")
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 10, DedicatedNodes: 2, UnavailabilityRate: 0.3, Seed: 3}
	w := smallSpec()
	s, err := NewForWorkload(MOONPreset(cs, true), w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.State != mapred.JobSucceeded {
		t.Fatalf("state %v", res.Profile.State)
	}
	if res.HitHorizon {
		t.Fatal("tiny job hit the 8-hour horizon")
	}
	if res.Profile.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
}

func TestNewForWorkloadSetsBlockSize(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 4, DedicatedNodes: 1, Seed: 1}
	w := smallSpec()
	s, err := NewForWorkload(MOONPreset(cs, true), w)
	if err != nil {
		t.Fatal(err)
	}
	want := w.InputSize / float64(w.Job.NumMaps)
	if got := s.FS.Config().BlockSize; got != want {
		t.Fatalf("block size %v, want %v", got, want)
	}
	// Staged input must therefore have exactly one block per map.
	if err := s.StageInput(w.Job.InputFile, w.InputSize, w.InputFactor); err != nil {
		t.Fatal(err)
	}
	if got := len(s.FS.File(w.Job.InputFile).Blocks); got != w.Job.NumMaps {
		t.Fatalf("input blocks %d, want %d", got, w.Job.NumMaps)
	}
}

func TestTreatAllVolatile(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 6, DedicatedNodes: 2, UnavailabilityRate: 0.3,
		TreatAllVolatile: true, Seed: 5}
	s, err := NewSimulation(HadoopPreset(cs, 600))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cluster.Dedicated) != 0 {
		t.Fatal("TreatAllVolatile kept dedicated nodes")
	}
	if len(s.Cluster.Volatile) != 8 {
		t.Fatalf("volatile count %d, want 8", len(s.Cluster.Volatile))
	}
}

func TestReduceSlots(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 60, DedicatedNodes: 6, Seed: 1}
	s, err := NewSimulation(MOONPreset(cs, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReduceSlots(); got != 132 {
		t.Fatalf("reduce slots %d, want 132", got)
	}
}

func TestRunWorkloadRejectsBadSpec(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 4, DedicatedNodes: 1, Seed: 1}
	s, err := NewSimulation(MOONPreset(cs, true))
	if err != nil {
		t.Fatal(err)
	}
	w := smallSpec()
	w.InputSize = -1
	if _, err := s.RunWorkload(w); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestDeterministicAcrossConstructions(t *testing.T) {
	run := func() float64 {
		cs := ClusterSpec{VolatileNodes: 8, DedicatedNodes: 2, UnavailabilityRate: 0.4, Seed: 11}
		w := smallSpec()
		s, err := NewForWorkload(MOONPreset(cs, true), w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestDistinctSeedsDistinctChurn(t *testing.T) {
	mk := func(seed uint64) float64 {
		cs := ClusterSpec{VolatileNodes: 8, DedicatedNodes: 2, UnavailabilityRate: 0.4, Seed: seed}
		w := smallSpec()
		s, err := NewForWorkload(MOONPreset(cs, true), w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.Makespan
	}
	if mk(1) == mk(2) && mk(3) == mk(4) && mk(5) == mk(6) {
		t.Fatal("all seed pairs identical; churn not seed-driven")
	}
}

func TestHorizonCap(t *testing.T) {
	// A tiny horizon forces HitHorizon.
	cs := ClusterSpec{VolatileNodes: 4, DedicatedNodes: 1, Seed: 1, Horizon: 5}
	w := smallSpec()
	s, err := NewForWorkload(MOONPreset(cs, true), w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitHorizon {
		t.Fatal("job claimed completion within a 5-second horizon")
	}
	if res.Profile.Makespan != 5 {
		t.Fatalf("capped makespan %v, want horizon 5", res.Profile.Makespan)
	}
}

func TestStageInputDuplicate(t *testing.T) {
	cs := ClusterSpec{VolatileNodes: 4, DedicatedNodes: 1, Seed: 1}
	s, err := NewSimulation(MOONPreset(cs, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StageInput("x", 1e6, dfs.Factor{D: 1, V: 1}); err != nil {
		t.Fatal(err)
	}
	err = s.StageInput("x", 1e6, dfs.Factor{D: 1, V: 1})
	if err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate staging: %v", err)
	}
}
