package core

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/workload"
)

// JobResult is the outcome of one job of a multi-job run.
type JobResult struct {
	Profile mapred.Profile
	// HitHorizon marks a job still unfinished at the trace horizon; its
	// Makespan is then the time from submission to the horizon.
	HitHorizon bool
}

// MultiResult aggregates a multi-job run.
type MultiResult struct {
	// Jobs lists per-job outcomes in submission order.
	Jobs []JobResult
	DFS  dfs.Metrics
	// Span is run start → last job completion (the horizon when capped);
	// the denominator of Throughput.
	Span float64
	// Completed counts jobs that succeeded.
	Completed int
	// Throughput is completed jobs per hour of span.
	Throughput float64
}

// NewForMultiWorkload builds a simulation whose DFS block size matches the
// workload's common input split (jobs that skip input reads impose no
// constraint; MultiSpec.Validate enforces that the rest agree).
func NewForMultiWorkload(opts Options, m workload.MultiSpec) (*Simulation, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if split := m.SplitSize(); split > 0 {
		opts.DFS.BlockSize = split
	}
	return NewSimulation(opts)
}

// RunMultiWorkload stages every job's input up front, submits each job at
// its offset (relative to the simulation clock at call time), and runs
// until all jobs finish or the trace horizon ends. Job arbitration
// follows the scheduler's configured JobPolicy.
func (s *Simulation) RunMultiWorkload(m workload.MultiSpec) (MultiResult, error) {
	if err := m.Validate(); err != nil {
		return MultiResult{}, err
	}
	origin := s.Sim.Now()
	for _, mj := range m.Jobs {
		if err := s.StageInput(mj.Spec.Job.InputFile, mj.Spec.InputSize, mj.Spec.InputFactor); err != nil {
			return MultiResult{}, err
		}
	}

	jobs := make([]*mapred.Job, len(m.Jobs))
	var submitErr error
	remaining := len(m.Jobs)
	onDone := func(*mapred.Job) {
		remaining--
		if remaining == 0 {
			s.Sim.Stop() // nothing after the last job matters to the experiment
		}
	}
	for i, mj := range m.Jobs {
		i, mj := i, mj
		submit := func() {
			j, err := s.JT.Submit(mj.Spec.Job, onDone)
			if err != nil {
				submitErr = fmt.Errorf("core: submit %s at t=%v: %w", mj.Spec.Job.Name, mj.Offset, err)
				s.Sim.Stop()
				return
			}
			jobs[i] = j
		}
		if mj.Offset == 0 {
			submit()
		} else {
			s.Sim.Schedule(origin+mj.Offset, "core.submit", submit)
		}
		if submitErr != nil {
			return MultiResult{}, submitErr
		}
	}

	horizon := s.opts.Cluster.Horizon
	s.Sim.RunUntil(horizon)
	if submitErr != nil {
		return MultiResult{}, submitErr
	}

	res := MultiResult{DFS: s.FS.Metrics}
	anyUnfinished := false
	for i, j := range jobs {
		if j == nil {
			// The horizon ended before this job's submission offset; like
			// any capped job it reports submission → horizon (zero here).
			mk := horizon - (origin + m.Jobs[i].Offset)
			if mk < 0 {
				mk = 0
			}
			res.Jobs = append(res.Jobs, JobResult{HitHorizon: true,
				Profile: mapred.Profile{Job: m.Jobs[i].Spec.Job.Name, Makespan: mk}})
			anyUnfinished = true
			continue
		}
		jr := JobResult{Profile: j.Profile()}
		if !j.Done() {
			jr.HitHorizon = true
			jr.Profile.Makespan = horizon - j.SubmittedAt()
			anyUnfinished = true
		} else if sp := j.FinishedAt() - origin; sp > res.Span {
			// Failed jobs end the run's activity too; only jobs still
			// unfinished at the horizon stretch the span to it.
			res.Span = sp
		}
		res.Jobs = append(res.Jobs, jr)
		if j.State() == mapred.JobSucceeded {
			res.Completed++
		}
	}
	if anyUnfinished {
		res.Span = horizon - origin
	}
	if res.Span > 0 {
		res.Throughput = float64(res.Completed) / (res.Span / 3600)
	}
	return res, nil
}
