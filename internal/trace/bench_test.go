package trace

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// BenchmarkGenerate8h measures one node's 8-hour trace at the paper's 0.4
// rate.
func BenchmarkGenerate8h(b *testing.B) {
	r := rng.New(1)
	cfg := DefaultOutageConfig(0.4)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(r, cfg, 8*3600); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetGenWorkers is the shard-scaling headline: a 4096-node,
// 24-hour fleet generated on pools of growing width. Generation is the
// dominant setup cost of the scale-100k scenario and is embarrassingly
// parallel (pre-split streams), so on a multi-core runner ns/op should
// fall near-linearly with workers; CI gates workers=4 at >= 1.5x over
// workers=1. Every width produces byte-identical fleets (pinned by
// TestGenerateFleetOnWidthsIdentical).
func BenchmarkFleetGenWorkers(b *testing.B) {
	const nodes = 4096
	cfg := DefaultOutageConfig(0.3)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := sim.NewShardPool(w)
			for i := 0; i < b.N; i++ {
				if _, err := GenerateFleetOn(pool, rng.New(1), cfg, 24*3600, nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAvailableAt measures the hot availability lookup.
func BenchmarkAvailableAt(b *testing.B) {
	tr, err := Generate(rng.New(1), DefaultOutageConfig(0.4), 8*3600)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.AvailableAt(float64(i % 28800))
	}
}
