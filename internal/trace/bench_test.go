package trace

import (
	"testing"

	"repro/internal/rng"
)

// BenchmarkGenerate8h measures one node's 8-hour trace at the paper's 0.4
// rate.
func BenchmarkGenerate8h(b *testing.B) {
	r := rng.New(1)
	cfg := DefaultOutageConfig(0.4)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(r, cfg, 8*3600); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailableAt measures the hot availability lookup.
func BenchmarkAvailableAt(b *testing.B) {
	tr, err := Generate(rng.New(1), DefaultOutageConfig(0.4), 8*3600)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.AvailableAt(float64(i % 28800))
	}
}
