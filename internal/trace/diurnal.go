package trace

import (
	"math"

	"repro/internal/rng"
)

// Profile maps a time (seconds from trace start) to a target instantaneous
// unavailability rate in [0, 1).
type Profile func(at float64) float64

// ConstantProfile returns a profile pinned at rate.
func ConstantProfile(rate float64) Profile {
	return func(float64) float64 { return rate }
}

// WorkdayProfile models the SDSC production volunteer-computing trace from
// the paper's Figure 1: measurements run 9:00AM-5:00PM, unavailability
// averages around 0.4 across days, dips mid-morning and late afternoon and
// peaks around lunchtime lab sessions, with substantial day-to-day offsets.
//
// dayBase is the day's average unavailability; amplitude scales the diurnal
// swing. horizon is the length of one measured day in seconds (8 h).
func WorkdayProfile(dayBase, amplitude, horizon float64) Profile {
	return func(at float64) float64 {
		x := at / horizon // 0..1 across the 9AM-5PM window
		// One broad midday bump plus a secondary late bump, echoing the
		// lab-session pattern in Figure 1.
		v := dayBase +
			amplitude*0.8*math.Sin(math.Pi*x)*math.Sin(math.Pi*x) +
			amplitude*0.2*math.Sin(2*math.Pi*x+1.0)
		return clampRate(v)
	}
}

func clampRate(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.97 {
		return 0.97
	}
	return v
}

// GenerateMarkov builds a trace from a two-state Markov process whose
// stationary unavailability tracks profile. Outage (down) durations are
// exponential with the given mean; available (up) durations are exponential
// with mean chosen so that down/(up+down) equals the profile rate at the
// moment the up period begins.
func GenerateMarkov(r *rng.Rand, profile Profile, meanOutage, duration float64) Trace {
	t := Trace{Duration: duration}
	now := 0.0
	// Start in the up state with probability 1-p(0).
	if r.Float64() < profile(0) {
		d := r.Exponential(meanOutage)
		if d > duration {
			d = duration
		}
		t.Outages = append(t.Outages, Interval{Start: 0, End: d})
		now = d
	}
	for now < duration {
		p := profile(now)
		if p <= 0 {
			break
		}
		meanUp := meanOutage * (1 - p) / p
		up := r.Exponential(meanUp)
		start := now + up
		if start >= duration {
			break
		}
		down := r.Exponential(meanOutage)
		end := start + down
		if end > duration {
			end = duration
		}
		t.Outages = append(t.Outages, Interval{Start: start, End: end})
		now = end
	}
	return t
}

// Fig1Day is one day's aggregated unavailability series.
type Fig1Day struct {
	Day    int
	Base   float64   // the day's base unavailability
	Series []float64 // fraction unavailable per 10-minute bucket
}

// Fig1Config parameterizes the Figure 1 reproduction.
type Fig1Config struct {
	Nodes      int     // fleet size (paper's SDSC system; we default to 60)
	Days       int     // number of measured days (7 in the paper)
	DaySeconds float64 // measured window per day (8 h = 28800 s)
	Bucket     float64 // sampling interval (10 min = 600 s)
	MeanOutage float64 // mean outage duration (409 s)
	Amplitude  float64 // diurnal swing amplitude
}

// DefaultFig1Config mirrors the paper's measurement setup.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{
		Nodes:      60,
		Days:       7,
		DaySeconds: 8 * 3600,
		Bucket:     600,
		MeanOutage: 409,
		Amplitude:  0.35,
	}
}

// GenerateFig1 produces the per-day aggregated unavailability series of the
// paper's Figure 1 from the diurnal Markov model. Day bases are spread
// around 0.4 so the across-trace average matches the paper's reported
// average unavailability.
func GenerateFig1(r *rng.Rand, cfg Fig1Config) []Fig1Day {
	// Base rates roughly centered on 0.4 with day-to-day spread, echoing
	// the visibly different day curves in Figure 1.
	days := make([]Fig1Day, cfg.Days)
	for d := range days {
		base := 0.15 + 0.26*r.Float64() // 0.15..0.41; plus the diurnal
		// bump this yields a fleet average near the paper's ~0.4
		profile := WorkdayProfile(base, cfg.Amplitude, cfg.DaySeconds)
		traces := make([]Trace, cfg.Nodes)
		for i := range traces {
			traces[i] = GenerateMarkov(r.Split(), profile, cfg.MeanOutage, cfg.DaySeconds)
		}
		days[d] = Fig1Day{
			Day:    d + 1,
			Base:   base,
			Series: AggregateUnavailability(traces, cfg.Bucket, cfg.DaySeconds),
		}
	}
	return days
}
