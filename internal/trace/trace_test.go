package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustGenerate(t *testing.T, seed uint64, rate, duration float64) Trace {
	t.Helper()
	tr, err := Generate(rng.New(seed), DefaultOutageConfig(rate), duration)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func TestGenerateHitsTargetRate(t *testing.T) {
	for _, rate := range []float64{0.1, 0.3, 0.4, 0.5} {
		tr := mustGenerate(t, 1, rate, 8*3600)
		got := tr.UnavailableFraction()
		if math.Abs(got-rate) > 0.01 {
			t.Fatalf("rate %v: measured %v", rate, got)
		}
	}
}

func TestGenerateInvariantsHold(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		tr := mustGenerate(t, seed, 0.5, 8*3600)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateZeroRate(t *testing.T) {
	tr := mustGenerate(t, 2, 0, 8*3600)
	if len(tr.Outages) != 0 {
		t.Fatalf("zero rate produced %d outages", len(tr.Outages))
	}
	if !tr.AvailableAt(100) {
		t.Fatal("zero-rate trace unavailable")
	}
}

func TestGenerateMeanOutageNearConfig(t *testing.T) {
	tr := mustGenerate(t, 3, 0.4, 40*3600) // long horizon for many samples
	mean := tr.MeanOutage()
	if mean < 300 || mean > 520 {
		t.Fatalf("mean outage %v far from configured 409", mean)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	r := rng.New(1)
	if _, err := Generate(r, DefaultOutageConfig(1.5), 100); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := Generate(r, DefaultOutageConfig(-0.1), 100); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := Generate(r, DefaultOutageConfig(0.3), -5); err == nil {
		t.Fatal("negative duration accepted")
	}
	cfg := DefaultOutageConfig(0.3)
	cfg.MeanOutage = 0
	if _, err := Generate(r, cfg, 100); err == nil {
		t.Fatal("zero mean outage accepted")
	}
	cfg = DefaultOutageConfig(0.3)
	cfg.MinOutage, cfg.MaxOutage = 100, 50
	if _, err := Generate(r, cfg, 100); err == nil {
		t.Fatal("inverted clamp accepted")
	}
}

func TestAvailableAt(t *testing.T) {
	tr := Trace{Duration: 100, Outages: []Interval{{10, 20}, {50, 60}}}
	cases := []struct {
		at   float64
		want bool
	}{
		{0, true}, {9.99, true}, {10, false}, {15, false}, {19.99, false},
		{20, true}, {49, true}, {55, false}, {60, true}, {99, true}, {150, true},
	}
	for _, c := range cases {
		if got := tr.AvailableAt(c.at); got != c.want {
			t.Fatalf("AvailableAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNextTransition(t *testing.T) {
	tr := Trace{Duration: 100, Outages: []Interval{{10, 20}, {50, 60}}}
	if when, avail, ok := tr.NextTransition(0); !ok || when != 10 || avail {
		t.Fatalf("NextTransition(0) = %v,%v,%v", when, avail, ok)
	}
	if when, avail, ok := tr.NextTransition(15); !ok || when != 20 || !avail {
		t.Fatalf("NextTransition(15) = %v,%v,%v", when, avail, ok)
	}
	if when, avail, ok := tr.NextTransition(20); !ok || when != 50 || avail {
		t.Fatalf("NextTransition(20) = %v,%v,%v", when, avail, ok)
	}
	if _, _, ok := tr.NextTransition(60); ok {
		t.Fatal("NextTransition past last outage should report !ok")
	}
}

func TestGenerateFleetIndependent(t *testing.T) {
	traces, err := GenerateFleet(rng.New(7), DefaultOutageConfig(0.4), 8*3600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 10 {
		t.Fatalf("fleet size %d", len(traces))
	}
	// Two nodes must not share identical outage schedules.
	for i := 1; i < len(traces); i++ {
		if len(traces[i].Outages) == len(traces[0].Outages) {
			same := true
			for j := range traces[i].Outages {
				if traces[i].Outages[j] != traces[0].Outages[j] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("nodes 0 and %d share an identical trace", i)
			}
		}
	}
}

func TestAggregateUnavailability(t *testing.T) {
	traces := []Trace{
		{Duration: 100, Outages: []Interval{{0, 50}}},
		{Duration: 100, Outages: []Interval{{50, 100}}},
	}
	agg := AggregateUnavailability(traces, 50, 100)
	if len(agg) != 2 {
		t.Fatalf("got %d buckets", len(agg))
	}
	if agg[0] != 0.5 || agg[1] != 0.5 {
		t.Fatalf("agg = %v, want [0.5 0.5]", agg)
	}
	if AggregateUnavailability(nil, 50, 100) != nil {
		t.Fatal("empty fleet should aggregate to nil")
	}
}

func TestGenerateMarkovRateTracksProfile(t *testing.T) {
	r := rng.New(11)
	const horizon = 200 * 3600 // long horizon to converge
	tr := GenerateMarkov(r, ConstantProfile(0.4), 409, horizon)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.UnavailableFraction()
	if math.Abs(got-0.4) > 0.05 {
		t.Fatalf("markov stationary rate %v, want ~0.4", got)
	}
}

func TestGenerateFig1ResemblesPaper(t *testing.T) {
	days := GenerateFig1(rng.New(2026), DefaultFig1Config())
	if len(days) != 7 {
		t.Fatalf("got %d days", len(days))
	}
	sum, n := 0.0, 0
	for _, d := range days {
		if len(d.Series) != 48 { // 8h / 10min
			t.Fatalf("day %d has %d buckets", d.Day, len(d.Series))
		}
		for _, v := range d.Series {
			if v < 0 || v > 1 {
				t.Fatalf("impossible unavailability %v", v)
			}
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	// Paper: "individual node unavailability rates average around 0.4".
	if avg < 0.3 || avg < 0.2 || avg > 0.6 {
		t.Fatalf("fleet-average unavailability %v outside the paper's regime", avg)
	}
}

func TestRoundTripIO(t *testing.T) {
	tr := mustGenerate(t, 5, 0.3, 8*3600)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration != tr.Duration || len(back.Outages) != len(tr.Outages) {
		t.Fatalf("round trip changed shape: %d vs %d outages", len(back.Outages), len(tr.Outages))
	}
	for i := range back.Outages {
		if math.Abs(back.Outages[i].Start-tr.Outages[i].Start) > 1e-5 ||
			math.Abs(back.Outages[i].End-tr.Outages[i].End) > 1e-5 {
			t.Fatalf("outage %d changed: %+v vs %+v", i, back.Outages[i], tr.Outages[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                                     // empty
		"duration 100\n1 2\n",                  // missing header
		"# moon-trace v1\n1 2\n",               // missing duration
		"# moon-trace v1\nduration 100\nx y\n", // bad floats
		"# moon-trace v1\nduration 100\n5 4\n", // inverted interval
		"# moon-trace v1\nduration 100\n1 2 3\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted: %q", i, c)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	tr := Trace{Duration: 100, Outages: []Interval{{10, 30}, {20, 40}}}
	if tr.Validate() == nil {
		t.Fatal("overlapping outages validated")
	}
	tr = Trace{Duration: 100, Outages: []Interval{{10, 200}}}
	if tr.Validate() == nil {
		t.Fatal("outage past horizon validated")
	}
}

// Property: generated traces always validate and never exceed the requested
// rate by more than a clamp-width tolerance.
func TestQuickGenerate(t *testing.T) {
	cfgGen := func(seed uint64, ratePct uint8) bool {
		rate := float64(ratePct%90) / 100
		tr, err := Generate(rng.New(seed), DefaultOutageConfig(rate), 8*3600)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		return math.Abs(tr.UnavailableFraction()-rate) < 0.02
	}
	if err := quick.Check(cfgGen, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
