package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCorrelatedFleetInvariants(t *testing.T) {
	traces, err := GenerateCorrelatedFleet(rng.New(1), DefaultCorrelatedConfig(), 8*3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 60 {
		t.Fatalf("fleet size %d", len(traces))
	}
	for i := range traces {
		if err := traces[i].Validate(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

func TestCorrelatedSessionsRaisePeak(t *testing.T) {
	const horizon = 8 * 3600
	indep, err := GenerateFleet(rng.New(2), DefaultOutageConfig(0.1), horizon, 60)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := GenerateCorrelatedFleet(rng.New(2), DefaultCorrelatedConfig(), horizon, 60)
	if err != nil {
		t.Fatal(err)
	}
	pi := PeakUnavailability(indep, 600, horizon)
	pc := PeakUnavailability(corr, 600, horizon)
	if pc <= pi {
		t.Fatalf("correlated peak %.2f not above independent peak %.2f", pc, pi)
	}
	// Lab sessions capture ~9 of each 10-node group; the peak should be
	// session-scale, not base-churn scale.
	if pc < 0.2 {
		t.Fatalf("correlated peak %.2f implausibly low", pc)
	}
}

func TestCorrelatedGroupGoesDownTogether(t *testing.T) {
	cfg := DefaultCorrelatedConfig()
	cfg.Base.TargetRate = 0 // isolate the correlated component
	cfg.Participation = 1
	cfg.SessionsPerGroup = 1
	traces, err := GenerateCorrelatedFleet(rng.New(3), cfg, 8*3600, 10) // one group
	if err != nil {
		t.Fatal(err)
	}
	// All ten nodes share exactly one outage window.
	first := traces[0].Outages
	if len(first) != 1 {
		t.Fatalf("node 0 has %d outages, want 1", len(first))
	}
	for i := 1; i < 10; i++ {
		if len(traces[i].Outages) != 1 || traces[i].Outages[0] != first[0] {
			t.Fatalf("node %d session %v differs from node 0's %v", i, traces[i].Outages, first)
		}
	}
}

func TestCorrelatedValidation(t *testing.T) {
	bad := DefaultCorrelatedConfig()
	bad.GroupSize = 0
	if _, err := GenerateCorrelatedFleet(rng.New(1), bad, 100, 10); err == nil {
		t.Fatal("zero group size accepted")
	}
	bad = DefaultCorrelatedConfig()
	bad.Participation = 1.5
	if _, err := GenerateCorrelatedFleet(rng.New(1), bad, 100, 10); err == nil {
		t.Fatal("participation > 1 accepted")
	}
	bad = DefaultCorrelatedConfig()
	bad.SessionMean = 0
	if _, err := GenerateCorrelatedFleet(rng.New(1), bad, 100, 10); err == nil {
		t.Fatal("zero session mean accepted")
	}
}

func TestMergeOutage(t *testing.T) {
	base := Trace{Duration: 100, Outages: []Interval{{Start: 10, End: 20}, {Start: 50, End: 60}}}
	// Overlapping merge.
	got := mergeOutage(base, Interval{Start: 15, End: 55})
	if len(got.Outages) != 1 || got.Outages[0] != (Interval{Start: 10, End: 60}) {
		t.Fatalf("merge = %v", got.Outages)
	}
	// Disjoint insert.
	got = mergeOutage(base, Interval{Start: 70, End: 80})
	if len(got.Outages) != 3 {
		t.Fatalf("insert = %v", got.Outages)
	}
	// Past-horizon clamp.
	got = mergeOutage(base, Interval{Start: 90, End: 200})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degenerate after clamp.
	got = mergeOutage(base, Interval{Start: 100, End: 100})
	if len(got.Outages) != 2 {
		t.Fatal("degenerate interval changed the trace")
	}
}

// Property: merging any interval preserves trace invariants.
func TestQuickMergeOutage(t *testing.T) {
	if err := quick.Check(func(seed uint64, s16, l16 uint16) bool {
		tr, err := Generate(rng.New(seed), DefaultOutageConfig(0.3), 8*3600)
		if err != nil {
			return false
		}
		start := float64(s16 % (8 * 3600))
		iv := Interval{Start: start, End: start + float64(l16%7200)}
		merged := mergeOutage(tr, iv)
		return merged.Validate() == nil
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
