package trace

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestGenerateFleetOnWidthsIdentical is the live path's differential
// gate: fleet generation fanned over any shard-pool width must equal the
// serial fleet exactly — the pre-split streams make each node's trace a
// pure function of its index. Fleet sizes straddle fleetShardMin so both
// the inline and the fanned branch are compared.
func TestGenerateFleetOnWidthsIdentical(t *testing.T) {
	const horizon = 24 * 3600
	for _, nodes := range []int{fleetShardMin - 1, fleetShardMin, 600} {
		for _, seed := range []uint64{1, 2, 3} {
			cfg := DefaultOutageConfig(0.3)
			want, err := GenerateFleet(rng.New(seed), cfg, horizon, nodes)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 4, 8} {
				got, err := GenerateFleetOn(sim.NewShardPool(w), rng.New(seed), cfg, horizon, nodes)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("nodes=%d seed=%d workers=%d: fleet diverged from serial", nodes, seed, w)
				}
			}
		}
	}
}

// TestGenerateCorrelatedFleetOnWidthsIdentical pins the correlated
// overlay the same way: per-group session streams are split serially, so
// the group overlay is a pure function of the group index at any width.
func TestGenerateCorrelatedFleetOnWidthsIdentical(t *testing.T) {
	const horizon = 8 * 3600
	for _, seed := range []uint64{1, 2, 3} {
		want, err := GenerateCorrelatedFleet(rng.New(seed), DefaultCorrelatedConfig(), horizon, 300)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			got, err := GenerateCorrelatedFleetOn(sim.NewShardPool(w), rng.New(seed), DefaultCorrelatedConfig(), horizon, 300)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed=%d workers=%d: correlated fleet diverged from serial", seed, w)
			}
		}
	}
}
