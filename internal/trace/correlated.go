package trace

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// CorrelatedConfig models the paper's Section III observation that
// "large-scale, correlated resource inaccessibility can be normal — many
// machines in a computer lab will be occupied simultaneously during a lab
// session": on top of independent per-node churn, whole groups of nodes go
// away together for session-length intervals.
type CorrelatedConfig struct {
	// Base is the independent per-node outage model applied to every
	// node (set Base.TargetRate to 0 for purely correlated churn).
	Base OutageConfig
	// GroupSize is how many consecutive node indices share a lab.
	GroupSize int
	// SessionsPerGroup is how many correlated sessions hit each group
	// over the horizon.
	SessionsPerGroup int
	// SessionMean/SessionStddev parameterize the session length
	// (seconds); sessions are truncated-normal like base outages.
	SessionMean, SessionStddev float64
	// Participation is the probability that a given group member is
	// captured by a session (owners who skip the lab keep computing).
	Participation float64
}

// DefaultCorrelatedConfig composes light independent churn with hour-long
// lab sessions capturing 90% of each 10-node group.
func DefaultCorrelatedConfig() CorrelatedConfig {
	return CorrelatedConfig{
		Base:             DefaultOutageConfig(0.1),
		GroupSize:        10,
		SessionsPerGroup: 2,
		SessionMean:      3600,
		SessionStddev:    600,
		Participation:    0.9,
	}
}

// Validate rejects impossible configurations.
func (c CorrelatedConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.GroupSize < 1 {
		return fmt.Errorf("trace: group size %d", c.GroupSize)
	}
	if c.SessionsPerGroup < 0 {
		return fmt.Errorf("trace: sessions per group %d", c.SessionsPerGroup)
	}
	if c.SessionMean <= 0 && c.SessionsPerGroup > 0 {
		return fmt.Errorf("trace: session mean %v", c.SessionMean)
	}
	if c.Participation < 0 || c.Participation > 1 {
		return fmt.Errorf("trace: participation %v", c.Participation)
	}
	return nil
}

// GenerateCorrelatedFleet builds per-node traces with both independent and
// group-correlated outages.
func GenerateCorrelatedFleet(r *rng.Rand, cfg CorrelatedConfig, duration float64, nodes int) ([]Trace, error) {
	return GenerateCorrelatedFleetOn(nil, r, cfg, duration, nodes)
}

// GenerateCorrelatedFleetOn is GenerateCorrelatedFleet fanned over a shard
// pool: the base fleet parallelizes per node and the session overlay per
// group. Groups cover disjoint consecutive node ranges and each group's
// sessions come from its own serially-split stream, so the overlay is a
// pure function of the group index — any pool width is byte-identical.
func GenerateCorrelatedFleetOn(pool Runner, r *rng.Rand, cfg CorrelatedConfig, duration float64, nodes int) ([]Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	traces, err := GenerateFleetOn(pool, r, cfg.Base, duration, nodes)
	if err != nil {
		return nil, err
	}
	groups := (nodes + cfg.GroupSize - 1) / cfg.GroupSize
	applyGroup := func(g int, gr *rng.Rand) {
		for s := 0; s < cfg.SessionsPerGroup; s++ {
			length := gr.TruncNormal(cfg.SessionMean, cfg.SessionStddev, 300, duration)
			if length >= duration {
				length = duration - 1
			}
			start := gr.Float64() * (duration - length)
			session := Interval{Start: start, End: start + length}
			for i := g * cfg.GroupSize; i < (g+1)*cfg.GroupSize && i < nodes; i++ {
				if gr.Float64() > cfg.Participation {
					continue
				}
				traces[i] = mergeOutage(traces[i], session)
			}
		}
	}
	if pool == nil || pool.Workers() == 1 || nodes < fleetShardMin {
		for g := 0; g < groups; g++ {
			applyGroup(g, r.Split())
		}
		return traces, nil
	}
	streams := make([]*rng.Rand, groups)
	for g := range streams {
		streams[g] = r.Split()
	}
	pool.Run(groups, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			applyGroup(g, streams[g])
		}
	})
	return traces, nil
}

// mergeOutage inserts an interval into a trace, coalescing overlaps so the
// trace invariants (sorted, non-overlapping) hold.
func mergeOutage(t Trace, iv Interval) Trace {
	if iv.End > t.Duration {
		iv.End = t.Duration
	}
	if iv.Duration() <= 0 {
		return t
	}
	all := append(append([]Interval(nil), t.Outages...), iv)
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	var merged []Interval
	for _, cur := range all {
		if n := len(merged); n > 0 && cur.Start <= merged[n-1].End {
			if cur.End > merged[n-1].End {
				merged[n-1].End = cur.End
			}
			continue
		}
		merged = append(merged, cur)
	}
	t.Outages = merged
	return t
}

// PeakUnavailability returns the maximum fraction of nodes simultaneously
// unavailable over the horizon, sampled at the given interval — the
// quantity the paper bounds at "as many as 90%".
func PeakUnavailability(traces []Trace, bucket, duration float64) float64 {
	peak := 0.0
	for _, v := range AggregateUnavailability(traces, bucket, duration) {
		if v > peak {
			peak = v
		}
	}
	return peak
}
