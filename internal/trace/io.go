package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serializes the trace in a line-oriented text format:
//
//	# moon-trace v1
//	duration <seconds>
//	<start> <end>
//	...
//
// The format is stable and human-inspectable so traces can be archived with
// experiment results and replayed byte-identically.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "# moon-trace v1\nduration %.6f\n", t.Duration)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, iv := range t.Outages {
		c, err = fmt.Fprintf(bw, "%.6f %.6f\n", iv.Start, iv.End)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a trace produced by WriteTo and validates its invariants.
func Read(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var t Trace
	line := 0
	sawHeader, sawDuration := false, false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if line == 1 && strings.Contains(text, "moon-trace") {
				sawHeader = true
			}
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "duration":
			if len(fields) != 2 {
				return Trace{}, fmt.Errorf("trace: line %d: malformed duration", line)
			}
			d, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return Trace{}, fmt.Errorf("trace: line %d: %v", line, err)
			}
			t.Duration = d
			sawDuration = true
		case len(fields) == 2:
			s, err1 := strconv.ParseFloat(fields[0], 64)
			e, err2 := strconv.ParseFloat(fields[1], 64)
			if err1 != nil || err2 != nil {
				return Trace{}, fmt.Errorf("trace: line %d: malformed interval %q", line, text)
			}
			t.Outages = append(t.Outages, Interval{Start: s, End: e})
		default:
			return Trace{}, fmt.Errorf("trace: line %d: unrecognized %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if !sawHeader {
		return Trace{}, fmt.Errorf("trace: missing '# moon-trace v1' header")
	}
	if !sawDuration {
		return Trace{}, fmt.Errorf("trace: missing duration line")
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
