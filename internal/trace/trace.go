// Package trace generates and manipulates node-availability traces.
//
// The MOON paper emulates a volunteer computing system with synthetic
// availability traces: unavailable-interval durations are drawn from a
// normal distribution whose mean (409 s) comes from the Entropia/SDSC
// desktop-grid trace, and the intervals are inserted into 8-hour traces by
// a Poisson-like process so that each trace's unavailable fraction equals a
// target machine-unavailability rate. This package reproduces that recipe
// exactly, and additionally provides a diurnal Markov-modulated generator
// that resembles the production trace in the paper's Figure 1.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Interval is a half-open span [Start, End) of simulated seconds during
// which a node is unavailable.
type Interval struct {
	Start, End float64
}

// Duration returns the interval length.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Trace is one node's availability schedule over [0, Duration). Outages are
// sorted, non-overlapping, and contained in the trace horizon. A node is
// available at any instant not covered by an outage.
type Trace struct {
	Duration float64
	Outages  []Interval
}

// OutageConfig parameterizes the paper's synthetic outage model.
type OutageConfig struct {
	// MeanOutage is the mean unavailable-interval duration in seconds
	// (409 s in the paper, from the Entropia trace).
	MeanOutage float64
	// StddevOutage is the standard deviation of outage durations.
	StddevOutage float64
	// MinOutage and MaxOutage clamp individual outage durations.
	MinOutage, MaxOutage float64
	// TargetRate is the fraction of trace time the node is unavailable.
	TargetRate float64
}

// DefaultOutageConfig returns the paper's settings for a given
// machine-unavailability rate.
func DefaultOutageConfig(rate float64) OutageConfig {
	return OutageConfig{
		MeanOutage:   409,
		StddevOutage: 200,
		MinOutage:    30,
		MaxOutage:    3600,
		TargetRate:   rate,
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c OutageConfig) Validate() error {
	if c.TargetRate < 0 || c.TargetRate >= 1 {
		return fmt.Errorf("trace: target rate %v outside [0,1)", c.TargetRate)
	}
	if c.TargetRate > 0 && c.MeanOutage <= 0 {
		return fmt.Errorf("trace: mean outage %v must be positive", c.MeanOutage)
	}
	if c.MinOutage < 0 || (c.MaxOutage > 0 && c.MaxOutage < c.MinOutage) {
		return fmt.Errorf("trace: bad outage clamp [%v,%v]", c.MinOutage, c.MaxOutage)
	}
	return nil
}

// Generate builds one node trace of the given duration. Outage durations are
// truncated-normal draws; placement distributes the free time between
// outages as normalized exponential gaps, which makes outage starts follow a
// Poisson-like process while guaranteeing the unavailable fraction equals
// TargetRate exactly (up to the resolution of one clamped draw).
func Generate(r *rng.Rand, cfg OutageConfig, duration float64) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return Trace{}, err
	}
	if duration <= 0 {
		return Trace{}, fmt.Errorf("trace: duration %v must be positive", duration)
	}
	t := Trace{Duration: duration}
	budget := cfg.TargetRate * duration
	if budget <= 0 {
		return t, nil
	}
	var durs []float64
	total := 0.0
	for total < budget {
		d := r.TruncNormal(cfg.MeanOutage, cfg.StddevOutage, cfg.MinOutage, cfg.MaxOutage)
		if total+d > budget {
			d = budget - total
			if d < 1 { // ignore sub-second remainder
				break
			}
		}
		durs = append(durs, d)
		total += d
	}
	free := duration - total
	if free < 0 {
		return Trace{}, fmt.Errorf("trace: rate %v leaves no available time", cfg.TargetRate)
	}
	// Split the free time into len(durs)+1 gaps with a normalized
	// exponential (Dirichlet(1,...,1)) draw: uniform random placement.
	gaps := make([]float64, len(durs)+1)
	sum := 0.0
	for i := range gaps {
		gaps[i] = r.ExpFloat64()
		sum += gaps[i]
	}
	pos := 0.0
	for i, d := range durs {
		pos += gaps[i] / sum * free
		t.Outages = append(t.Outages, Interval{Start: pos, End: pos + d})
		pos += d
	}
	return t, nil
}

// Runner is the slice of the shard-pool API trace generation needs (it is
// satisfied by *sim.ShardPool without importing sim): Run fans fn over
// contiguous spans of [0, n), one per worker, and returns when all spans
// complete. A nil Runner means serial.
type Runner interface {
	Workers() int
	Run(n int, fn func(worker, lo, hi int))
}

// fleetShardMin is the fleet size below which GenerateFleetOn stays
// serial: spawning workers costs more than generating a few dozen traces.
const fleetShardMin = 256

// GenerateFleet builds one trace per node, each from a split RNG stream so
// node outages are mutually independent (the paper's assumption).
func GenerateFleet(r *rng.Rand, cfg OutageConfig, duration float64, nodes int) ([]Trace, error) {
	return GenerateFleetOn(nil, r, cfg, duration, nodes)
}

// GenerateFleetOn is GenerateFleet fanned over a shard pool. The per-node
// streams are split from r serially — exactly the draws the serial loop
// makes — and each node's trace is then a pure function of its own stream,
// so generation parallelizes embarrassingly: any pool width, nil included,
// yields byte-identical fleets. At 100k nodes this is the dominant setup
// cost (millions of truncated-normal and exponential draws).
func GenerateFleetOn(pool Runner, r *rng.Rand, cfg OutageConfig, duration float64, nodes int) ([]Trace, error) {
	traces := make([]Trace, nodes)
	if pool == nil || pool.Workers() == 1 || nodes < fleetShardMin {
		for i := range traces {
			tr, err := Generate(r.Split(), cfg, duration)
			if err != nil {
				return nil, err
			}
			traces[i] = tr
		}
		return traces, nil
	}
	streams := make([]*rng.Rand, nodes)
	for i := range streams {
		streams[i] = r.Split()
	}
	errs := make([]error, nodes)
	pool.Run(nodes, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			traces[i], errs[i] = Generate(streams[i], cfg, duration)
		}
	})
	// Serial merge in index order: the first failing node decides the
	// error, exactly as the serial loop would have.
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return traces, nil
}

// AvailableAt reports whether the node is available at time at. Times at or
// beyond the trace horizon are treated as available (the node model repeats
// or extends traces explicitly when needed).
func (t *Trace) AvailableAt(at float64) bool {
	i := sort.Search(len(t.Outages), func(i int) bool { return t.Outages[i].End > at })
	if i == len(t.Outages) {
		return true
	}
	return at < t.Outages[i].Start
}

// NextTransition returns the first time strictly after at when availability
// changes, and the availability state that begins then. ok is false when no
// transition remains before the horizon.
func (t *Trace) NextTransition(at float64) (when float64, availableAfter bool, ok bool) {
	i := sort.Search(len(t.Outages), func(i int) bool { return t.Outages[i].End > at })
	if i == len(t.Outages) {
		return 0, true, false
	}
	if at < t.Outages[i].Start {
		return t.Outages[i].Start, false, true
	}
	return t.Outages[i].End, true, true
}

// UnavailableFraction returns the fraction of the horizon covered by
// outages.
func (t *Trace) UnavailableFraction() float64 {
	if t.Duration <= 0 {
		return 0
	}
	sum := 0.0
	for _, iv := range t.Outages {
		sum += iv.Duration()
	}
	return sum / t.Duration
}

// MeanOutage returns the average outage duration, or 0 with no outages.
func (t *Trace) MeanOutage() float64 {
	if len(t.Outages) == 0 {
		return 0
	}
	sum := 0.0
	for _, iv := range t.Outages {
		sum += iv.Duration()
	}
	return sum / float64(len(t.Outages))
}

// Validate checks the trace's structural invariants: sorted, non-overlapping
// outages with positive length inside [0, Duration].
func (t *Trace) Validate() error {
	prev := 0.0
	for i, iv := range t.Outages {
		if iv.Start < prev {
			return fmt.Errorf("trace: outage %d overlaps or is unsorted (start %v < %v)", i, iv.Start, prev)
		}
		if iv.End <= iv.Start {
			return fmt.Errorf("trace: outage %d non-positive (%v..%v)", i, iv.Start, iv.End)
		}
		if iv.End > t.Duration+1e-9 {
			return fmt.Errorf("trace: outage %d ends %v past horizon %v", i, iv.End, t.Duration)
		}
		prev = iv.End
	}
	return nil
}

// AggregateUnavailability samples the fleet at fixed intervals and returns,
// for each bucket midpoint, the fraction of nodes unavailable. This is the
// measurement behind the paper's Figure 1.
func AggregateUnavailability(traces []Trace, bucket, duration float64) []float64 {
	if bucket <= 0 || duration <= 0 || len(traces) == 0 {
		return nil
	}
	n := int(duration / bucket)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		mid := (float64(i) + 0.5) * bucket
		down := 0
		for j := range traces {
			if !traces[j].AvailableAt(mid) {
				down++
			}
		}
		out = append(out, float64(down)/float64(len(traces)))
	}
	return out
}
