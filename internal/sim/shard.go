package sim

import (
	"runtime"
	"sync"
)

// CacheLine is the assumed cache-line size for shard arenas. Per-worker
// state padded to this granularity cannot false-share with its neighbors.
const CacheLine = 64

// Padded wraps one worker's arena in trailing cache-line padding so that
// adjacent arenas in a []Padded[T] never share a line. Clients allocate one
// slice of these per pool — `make([]sim.Padded[myScratch], pool.Workers())`
// — and worker w touches only element w during a phase.
type Padded[T any] struct {
	V T
	_ [CacheLine]byte
}

// ShardPool fans the independent per-item work of a single simulation
// instant across a bounded set of workers — the intra-run counterpart of
// the harness's per-cell sweep pool.
//
// The determinism contract is the byte-identical-at-any-Parallelism bar
// from internal/harness, applied inside one run: a phase is a pure "map"
// step. The callback may read any shared model state but must write only
// (a) per-index result slots that are a function of the index alone, and
// (b) the scratch arena of the worker running it. All shared-state
// mutation — float accumulation, event scheduling (which consumes (at,
// seq) numbers), metric observations — happens after Run returns, applied
// serially in index order by the caller. Under that contract any worker
// count, including 1, produces bit-identical simulations.
//
// Workers are spawned per phase rather than parked on channels, so an
// abandoned Simulation never leaks goroutines; clients amortize the
// spawn by gating phases on a batch-size threshold.
type ShardPool struct {
	workers int
}

// NewShardPool returns a pool of the given width. A non-positive width
// selects GOMAXPROCS — "use the machine" — matching the sweep pool's
// Parallelism convention.
func NewShardPool(workers int) *ShardPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ShardPool{workers: workers}
}

// Workers returns the pool width (always >= 1). Clients size their arena
// slices with it.
func (p *ShardPool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Serial reports whether phases run inline on the caller's goroutine.
func (p *ShardPool) Serial() bool { return p.Workers() == 1 }

// Run executes one parallel phase over the index range [0, n): the range
// is cut into one contiguous span per worker and fn(worker, lo, hi) is
// invoked once per non-empty span, concurrently. Run returns when every
// span is done. With one worker (or n < 2) fn runs inline — the serial
// path and the fanned path are interchangeable by the phase contract
// above, which is what keeps any worker count byte-identical.
func (p *ShardPool) Run(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		lo := k * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(k, lo, hi)
	}
	// The caller's goroutine is worker 0; running its span inline saves a
	// spawn and keeps the single-span case allocation-free.
	fn(0, 0, min(chunk, n))
	wg.Wait()
}

// SumInt is the exact parallel reduction for integer per-item metrics
// (slot counts, availability scans): fn returns each span's partial sum
// and SumInt folds the partials in span order. Integer addition is
// associative, so the result equals the serial left-to-right sum for any
// worker count — the reduction shape float sums must never use.
func (p *ShardPool) SumInt(n int, fn func(lo, hi int) int) int {
	w := p.Workers()
	if n <= 0 {
		return 0
	}
	if w == 1 || n < 2 {
		return fn(0, n)
	}
	if w > n {
		w = n
	}
	partials := make([]Padded[int], w)
	p.Run(n, func(worker, lo, hi int) {
		partials[worker].V = fn(lo, hi)
	})
	total := 0
	for i := range partials {
		total += partials[i].V
	}
	return total
}

// SetShardWorkers configures the simulation's intra-run worker pool:
// 0 = GOMAXPROCS, 1 = serial, n = exactly n workers. Any value yields
// bit-identical runs; the knob trades cores for wall-clock only.
func (s *Simulation) SetShardWorkers(workers int) {
	s.shards = NewShardPool(workers)
}

// Shards returns the simulation's shard pool, defaulting to a
// GOMAXPROCS-wide pool on first use. Model layers (netmodel settling,
// trace generation, the mapred heartbeat) fan their per-node phases
// through it.
func (s *Simulation) Shards() *ShardPool {
	if s.shards == nil {
		s.shards = NewShardPool(0)
	}
	return s.shards
}
