package sim

import "testing"

// TestStaleHandleCannotCancelRecycledEvent is the safety property of the
// event free list: a handle kept past its event's lifetime must never
// affect a later event that happens to reuse the same storage.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	s := New()
	stale := s.Schedule(1, "first", func() {})
	s.Run() // fires and retires "first"; its node returns to the pool

	fired := false
	fresh := s.Schedule(2, "second", func() { fired = true })
	if fresh.n != stale.n {
		t.Skip("pool did not reuse the node; nothing to check")
	}
	s.Cancel(stale) // must not touch "second"
	if fresh.Canceled() {
		t.Fatal("stale handle canceled a recycled event")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if stale.Pending() {
		t.Fatal("stale handle reports pending")
	}
}

// TestFreeListReuse verifies fired events actually return to the pool.
func TestFreeListReuse(t *testing.T) {
	s := New()
	e := s.Schedule(1, "a", func() {})
	s.Run()
	reused := s.Schedule(2, "b", func() {})
	if reused.n != e.n {
		t.Fatal("fired event's storage was not recycled")
	}
	if reused.gen == e.gen {
		t.Fatal("recycled node kept its generation")
	}
}

// TestLazyCancelDrainCounts checks the Canceled counter and that canceled
// events drained by Step and RunUntil are reclaimed identically.
func TestLazyCancelDrainCounts(t *testing.T) {
	s := New()
	var evs []Event
	for i := 0; i < 10; i++ {
		evs = append(evs, s.Schedule(float64(i+1), "e", func() {}))
	}
	for _, e := range evs[:4] {
		s.Cancel(e)
	}
	if s.Canceled() != 4 {
		t.Fatalf("Canceled() = %d, want 4", s.Canceled())
	}
	if s.Pending() != 6 {
		t.Fatalf("Pending() = %d, want 6", s.Pending())
	}
	s.RunUntil(5) // fires events 5; drains canceled 1..4 lazily
	if s.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1 (events 1-4 canceled, event 5 fired)", s.Fired())
	}
	s.Run()
	if s.Fired() != 6 {
		t.Fatalf("Fired() = %d, want 6", s.Fired())
	}
	if s.Pending() != 0 || s.cal.len() != 0 {
		t.Fatalf("queue not drained: Pending=%d len=%d", s.Pending(), s.cal.len())
	}
}

// TestCancelCompaction verifies mass cancellation does not leave the heap
// full of corpses.
func TestCancelCompaction(t *testing.T) {
	s := New()
	var evs []Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, s.Schedule(float64(i+1), "e", func() {}))
	}
	for _, e := range evs[:999] {
		s.Cancel(e)
	}
	if s.cal.len() >= 1000 {
		t.Fatalf("queue did not compact: %d slots for 1 live event", s.cal.len())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	fired := 0
	for s.Step() {
		fired++
	}
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
}

// TestCancelDuringOwnCallback: canceling the handle of the currently
// executing event must be a no-op and must not corrupt the counters.
func TestCancelDuringOwnCallback(t *testing.T) {
	s := New()
	var self Event
	self = s.Schedule(1, "self", func() { s.Cancel(self) })
	s.Run()
	if s.Fired() != 1 || s.Canceled() != 0 {
		t.Fatalf("Fired=%d Canceled=%d, want 1/0", s.Fired(), s.Canceled())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

// TestRescheduleCanceledEvent: a canceled-but-undrained event still carries
// its callback, so Reschedule revives it; a stale handle returns zero.
func TestRescheduleCanceledEvent(t *testing.T) {
	s := New()
	fired := 0
	e := s.Schedule(1, "x", func() { fired++ })
	s.Cancel(e)
	e2 := s.Reschedule(e, 3)
	if !e2.Pending() {
		t.Fatal("rescheduled canceled event not pending")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if got := s.Reschedule(e2, 5); got.Pending() {
		t.Fatal("rescheduling a fired (stale) handle produced a pending event")
	}
}
