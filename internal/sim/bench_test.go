package sim

import "testing"

// BenchmarkEventThroughput measures raw schedule+fire cost — the
// simulator's fundamental currency.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(float64(i), "e", fn)
		s.Step()
	}
}

// BenchmarkTickerChain measures self-rescheduling tickers, the pattern all
// periodic services (scans, heartbeats, samplers) use.
func BenchmarkTickerChain(b *testing.B) {
	s := New()
	n := 0
	stop := s.Ticker(1, "t", func() { n++ })
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	_ = n
}

// BenchmarkCancelHeavy measures schedule/cancel churn (flow reschedules
// cancel and re-create completion events constantly).
func BenchmarkCancelHeavy(b *testing.B) {
	s := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(float64(i)+1e6, "e", fn)
		s.Cancel(e)
	}
}
