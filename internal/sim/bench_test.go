package sim

import (
	"fmt"
	"testing"
)

// backlogSizes are the pending-event populations the throughput benchmarks
// sweep: the calendar queue's schedule+fire cost must stay flat as the
// backlog grows, where a binary heap pays an extra log(pending) sift on
// every operation.
var backlogSizes = []int{0, 1000, 10000, 100000}

// BenchmarkEventThroughput measures raw schedule+fire cost — the
// simulator's fundamental currency — against a standing backlog of
// far-future events. With the free list and the calendar's O(1) hold-slot
// pop this runs allocation-free at steady state, at every backlog size.
func BenchmarkEventThroughput(b *testing.B) {
	for _, pending := range backlogSizes {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			s := New()
			fn := func() {}
			for i := 0; i < pending; i++ {
				s.Schedule(1e6+float64(i)*0.25, "bg", fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(float64(i)*1e-3, "e", fn)
				s.Step()
			}
		})
	}
}

// BenchmarkEventThroughputHeap is the baseline the calendar replaced: the
// same schedule+fire pattern driven through a reference binary heap
// (refHeap, shared with the differential test). The node is reused so the
// comparison isolates queue discipline, not allocation.
func BenchmarkEventThroughputHeap(b *testing.B) {
	for _, pending := range backlogSizes {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			h := &refHeap{}
			fn := func() {}
			var seq uint64
			for i := 0; i < pending; i++ {
				h.push(&node{at: 1e6 + float64(i)*0.25, seq: seq, fn: fn})
				seq++
			}
			n := &node{fn: fn}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.at = float64(i) * 1e-3
				n.seq = seq
				seq++
				h.push(n)
				m := h.pop()
				m.fn()
			}
		})
	}
}

// BenchmarkTickerChain measures self-rescheduling tickers, the pattern all
// periodic services (scans, heartbeats, samplers) use.
func BenchmarkTickerChain(b *testing.B) {
	s := New()
	n := 0
	stop := s.Ticker(1, "t", func() { n++ })
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	_ = n
}

// BenchmarkScheduleCancel measures the schedule+cancel cycle in isolation:
// lazy invalidation plus the free list make it allocation-free and
// amortized O(1) per cycle (compaction bounds the heap).
func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(float64(i)+1e6, "e", fn)
		s.Cancel(e)
	}
}

// BenchmarkCancelHeavy interleaves cancellation with firing, the pattern of
// flow reschedules (cancel completion, schedule a new one, occasionally
// fire).
func BenchmarkCancelHeavy(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := float64(i)
		e := s.Schedule(at+2, "victim", fn)
		s.Schedule(at+1, "keeper", fn)
		s.Cancel(e)
		s.Step()
	}
}
