package sim

import "testing"

// BenchmarkEventThroughput measures raw schedule+fire cost — the
// simulator's fundamental currency. With the free list this runs
// allocation-free at steady state.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(float64(i), "e", fn)
		s.Step()
	}
}

// BenchmarkTickerChain measures self-rescheduling tickers, the pattern all
// periodic services (scans, heartbeats, samplers) use.
func BenchmarkTickerChain(b *testing.B) {
	s := New()
	n := 0
	stop := s.Ticker(1, "t", func() { n++ })
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	_ = n
}

// BenchmarkScheduleCancel measures the schedule+cancel cycle in isolation:
// lazy invalidation plus the free list make it allocation-free and
// amortized O(1) per cycle (compaction bounds the heap).
func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(float64(i)+1e6, "e", fn)
		s.Cancel(e)
	}
}

// BenchmarkCancelHeavy interleaves cancellation with firing, the pattern of
// flow reschedules (cancel completion, schedule a new one, occasionally
// fire).
func BenchmarkCancelHeavy(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := float64(i)
		e := s.Schedule(at+2, "victim", fn)
		s.Schedule(at+1, "keeper", fn)
		s.Cancel(e)
		s.Step()
	}
}
