package sim

import (
	"fmt"
	"testing"
)

// backlogSizes are the pending-event populations the throughput benchmarks
// sweep: the calendar queue's schedule+fire cost must stay flat as the
// backlog grows, where a binary heap pays an extra log(pending) sift on
// every operation.
var backlogSizes = []int{0, 1000, 10000, 100000}

// BenchmarkEventThroughput measures raw schedule+fire cost — the
// simulator's fundamental currency — against a standing backlog of
// far-future events. With the free list and the calendar's O(1) hold-slot
// pop this runs allocation-free at steady state, at every backlog size.
func BenchmarkEventThroughput(b *testing.B) {
	for _, pending := range backlogSizes {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			s := New()
			fn := func() {}
			for i := 0; i < pending; i++ {
				s.Schedule(1e6+float64(i)*0.25, "bg", fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(float64(i)*1e-3, "e", fn)
				s.Step()
			}
		})
	}
}

// BenchmarkEventThroughputHeap is the baseline the calendar replaced: the
// same schedule+fire pattern driven through a reference binary heap
// (refHeap, shared with the differential test). The node is reused so the
// comparison isolates queue discipline, not allocation.
func BenchmarkEventThroughputHeap(b *testing.B) {
	for _, pending := range backlogSizes {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			h := &refHeap{}
			fn := func() {}
			var seq uint64
			for i := 0; i < pending; i++ {
				h.push(&node{at: 1e6 + float64(i)*0.25, seq: seq, fn: fn})
				seq++
			}
			n := &node{fn: fn}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.at = float64(i) * 1e-3
				n.seq = seq
				seq++
				h.push(n)
				m := h.pop()
				m.fn()
			}
		})
	}
}

// BenchmarkTickerChain measures self-rescheduling tickers, the pattern all
// periodic services (scans, heartbeats, samplers) use.
func BenchmarkTickerChain(b *testing.B) {
	s := New()
	n := 0
	stop := s.Ticker(1, "t", func() { n++ })
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	_ = n
}

// BenchmarkScheduleCancel measures the schedule+cancel cycle in isolation:
// lazy invalidation plus the free list make it allocation-free and
// amortized O(1) per cycle (compaction bounds the heap).
func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(float64(i)+1e6, "e", fn)
		s.Cancel(e)
	}
}

// BenchmarkCancelHeavy interleaves cancellation with firing, the pattern of
// flow reschedules (cancel completion, schedule a new one, occasionally
// fire).
func BenchmarkCancelHeavy(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := float64(i)
		e := s.Schedule(at+2, "victim", fn)
		s.Schedule(at+1, "keeper", fn)
		s.Cancel(e)
		s.Step()
	}
}

// BenchmarkShardPhase measures the parallel-phase hot path per ITEM: one
// op is one index of a fanned span (a synthetic per-node compute kernel
// writing a per-index slot and a per-worker padded partial — the contract
// every real phase follows). The caller-owned partials make the per-item
// path allocation-free; the only allocations in a phase are the w-1
// goroutine spawns, amortized over the span, so allocs/op must report 0
// at EVERY width — CI gates exactly that. On a multi-core runner ns/op
// falls with width; on one core it shows the fan's overhead ceiling.
func BenchmarkShardPhase(b *testing.B) {
	const span = 1 << 16
	out := make([]uint64, span)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := NewShardPool(w)
			partials := make([]Padded[uint64], pool.Workers())
			b.ReportAllocs()
			b.ResetTimer()
			for n := b.N; n > 0; n -= span {
				m := span
				if n < m {
					m = n
				}
				for i := range partials {
					partials[i].V = 0
				}
				pool.Run(m, func(worker, lo, hi int) {
					var sum uint64
					for i := lo; i < hi; i++ {
						// A splitmix-style round stands in for the per-node
						// draws/scans real phases do.
						x := (uint64(i) + 1) * 0x9e3779b97f4a7c15
						x ^= x >> 30
						x *= 0xbf58476d1ce4e5b9
						x ^= x >> 27
						out[i] = x
						sum += x
					}
					partials[worker].V = sum
				})
				var total uint64
				for i := range partials {
					total += partials[i].V
				}
				if total == 0 {
					b.Fatal("phase produced nothing")
				}
			}
		})
	}
}
