package sim

import (
	"testing"

	"repro/internal/rng"
)

// refHeap is a plain binary min-heap over the queue's (at, seq) total order.
// It is the reference implementation the calendar queue replaced: any correct
// priority queue pops the same strict sequence, so driving both with one
// operation stream and comparing orders checks the calendar end to end —
// slot hashing, sorted-run maintenance, year-scan fallback, hold caching and
// lazy cancellation.
type refHeap struct {
	ns []*node
}

func (h *refHeap) len() int { return len(h.ns) }

func (h *refHeap) push(n *node) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(h.ns[i], h.ns[p]) {
			break
		}
		h.ns[i], h.ns[p] = h.ns[p], h.ns[i]
		i = p
	}
}

func (h *refHeap) pop() *node {
	n := h.ns[0]
	last := len(h.ns) - 1
	h.ns[0] = h.ns[last]
	h.ns[last] = nil
	h.ns = h.ns[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.ns) && less(h.ns[l], h.ns[m]) {
			m = l
		}
		if r < len(h.ns) && less(h.ns[r], h.ns[m]) {
			m = r
		}
		if m == i {
			return n
		}
		h.ns[i], h.ns[m] = h.ns[m], h.ns[i]
		i = m
	}
}

// TestCalendarMatchesHeapReference drives the simulation and a shadow binary
// heap with one randomized schedule/cancel/fire stream and requires the
// identical fire order. Delays are quantized so many events collide on the
// same instant (exercising the seq tie-break) with occasional far-future
// outliers (exercising the sparse direct-search fallback and cursor rewind).
func TestCalendarMatchesHeapReference(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		s := New()
		h := &refHeap{}

		type pair struct {
			ev Event
			hn *node
		}
		var live []pair
		var fired []uint64
		nextID := uint64(0)

		for op := 0; op < 20000; op++ {
			switch k := r.Float64(); {
			case k < 0.55 || len(live) == 0:
				var d float64
				switch r.Intn(10) {
				case 0:
					d = 0 // same instant
				case 1:
					d = r.Float64() * 1e7 // far future
				default:
					d = float64(r.Intn(64)) * 0.25 // dense collisions
				}
				id := nextID
				nextID++
				ev := s.After(d, "diff", func() { fired = append(fired, id) })
				hn := &node{at: s.Now() + d, seq: id}
				h.push(hn)
				live = append(live, pair{ev, hn})
			case k < 0.75 && len(live) > 0:
				i := r.Intn(len(live))
				p := live[i]
				if p.ev.Pending() {
					s.Cancel(p.ev)
					p.hn.canceled = true
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				s.Step()
			}
		}
		for s.Step() {
		}

		var want []uint64
		for h.len() > 0 {
			if n := h.pop(); !n.canceled {
				want = append(want, n.seq)
			}
		}
		if len(fired) != len(want) {
			t.Fatalf("seed %d: fired %d events, heap reference expects %d", seed, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: fire order diverges at %d: calendar popped %d, heap reference %d",
					seed, i, fired[i], want[i])
			}
		}
	}
}

// TestCompactionAt100kPending verifies corpse management at scale: with 100k
// events queued and 99% canceled, the bulk compaction must sweep the corpses
// (bounding storage near the live count) and every survivor must still fire,
// in order.
func TestCompactionAt100kPending(t *testing.T) {
	const total = 100000
	s := New()
	var fired int
	lastAt := -1.0
	fn := func() {
		if s.Now() < lastAt {
			t.Fatalf("fire order regressed: %v after %v", s.Now(), lastAt)
		}
		lastAt = s.Now()
		fired++
	}
	evs := make([]Event, 0, total)
	for i := 0; i < total; i++ {
		evs = append(evs, s.Schedule(float64(i%9973)+1, "e", fn))
	}
	kept := 0
	for i, e := range evs {
		if i%100 == 0 {
			kept++
			continue
		}
		s.Cancel(e)
	}
	// Cancel compacts once corpses outnumber live events; after canceling
	// 99% the queue must hold roughly the survivors, not 100k corpses.
	if got := s.cal.len(); got > 2*kept {
		t.Fatalf("compaction left %d stored events for %d live ones", got, kept)
	}
	if got := s.Pending(); got != kept {
		t.Fatalf("Pending() = %d, want %d", got, kept)
	}
	s.Run()
	if fired != kept {
		t.Fatalf("fired %d events, want %d", fired, kept)
	}
	if got := s.cal.len(); got != 0 {
		t.Fatalf("queue not empty after run: %d stored", got)
	}
}
