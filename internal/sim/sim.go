// Package sim implements the discrete-event simulation core used by the
// MOON reproduction.
//
// A Simulation owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in schedule order, which together with
// the deterministic rng package makes every run bit-reproducible for a given
// seed. All model time is in simulated seconds (float64).
//
// The event queue is allocation-lean: event storage is pooled in a
// per-Simulation free list and recycled after an event fires, so the hot
// schedule→fire→reschedule cycle of tickers, heartbeats and flow-completion
// events runs without per-event allocation at steady state. Cancel is lazy —
// it marks the event and the queue skips it at pop time instead of paying an
// O(log n) heap removal; when canceled events pile up the queue compacts in
// one O(n) pass, so cancel-heavy churn (flow reschedules) stays amortized
// O(1) and the heap never fills with corpses.
package sim

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Time is a point in simulated time, in seconds since the simulation epoch.
type Time = float64

// Forever is a time later than any event the simulator will reach.
const Forever Time = math.MaxFloat64

// node is the pooled storage behind one scheduled callback. After the event
// fires or its cancellation is drained, gen is bumped and the node returns
// to the free list, invalidating every outstanding handle to it.
type node struct {
	at       Time
	fn       func()
	seq      uint64
	gen      uint64
	canceled bool
	queued   bool
	name     string
}

// Event is a generation-checked handle for a scheduled callback. The zero
// Event references nothing and behaves like an event that already ended:
// Cancel is a no-op, Pending reports false. Handles stay safe after the
// underlying storage is recycled — a stale handle can never cancel or
// observe an unrelated later event.
type Event struct {
	n   *node
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (e Event) live() bool { return e.n != nil && e.n.gen == e.gen }

// Canceled reports whether the event is dead: canceled, or already fired
// and its storage retired. It returns false for a pending event and for an
// event currently executing its callback.
func (e Event) Canceled() bool { return !e.live() || e.n.canceled }

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool { return e.live() && e.n.queued && !e.n.canceled }

// Simulation is a discrete-event scheduler. It is not safe for concurrent
// use; the whole model runs single-threaded over virtual time. Independent
// Simulations share nothing and may run on different goroutines.
type Simulation struct {
	now     Time
	queue   []*node // binary heap ordered by (at, seq)
	free    []*node // retired nodes awaiting reuse
	nextSeq uint64
	// fired counts events executed, for diagnostics and livelock guards.
	fired uint64
	// canceled counts events killed via Cancel before they could fire.
	canceled uint64
	// dead counts canceled nodes still occupying queue slots.
	dead    int
	stopped bool

	// Instrument handles (nil without a collector; nil handles no-op, so
	// the hot path stays allocation-free when metrics are off).
	mFired       *metrics.Counter
	mCanceled    *metrics.Counter
	mCompactions *metrics.Counter
	mQueueDepth  *metrics.Series
}

// Instrument registers the event core's instruments on c: event throughput
// and cancellations as time-bucketed counters, heap compactions (the corpse
// drain), and a sampled queue-depth series. A nil collector (or never
// calling Instrument) leaves the simulation exactly as before — the pinned
// microbenchmarks stay at 0 allocs/op.
func (s *Simulation) Instrument(c *metrics.Collector) {
	if c == nil {
		return
	}
	s.mFired = c.TimedCounter(metrics.LayerSim, "events_fired", "")
	s.mCanceled = c.TimedCounter(metrics.LayerSim, "events_canceled", "")
	s.mCompactions = c.Counter(metrics.LayerSim, "queue_compactions", "")
	s.mQueueDepth = c.SampleSeries(metrics.LayerSim, "queue_depth", "")
}

// New returns an empty simulation at time 0.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulation) Fired() uint64 { return s.fired }

// Canceled returns the number of events canceled before firing.
func (s *Simulation) Canceled() uint64 { return s.canceled }

// Pending returns the number of events currently queued to fire (canceled
// events awaiting lazy removal are not counted).
func (s *Simulation) Pending() int { return len(s.queue) - s.dead }

// --- heap ------------------------------------------------------------------

func (s *Simulation) less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulation) push(n *node) {
	s.queue = append(s.queue, n)
	i := len(s.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.queue[i], s.queue[parent]) {
			break
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

// popMin removes and returns the heap head; the queue must be non-empty.
func (s *Simulation) popMin() *node {
	q := s.queue
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	s.queue = q[:last]
	s.siftDown(0)
	return top
}

func (s *Simulation) siftDown(i int) {
	q := s.queue
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && s.less(q[right], q[left]) {
			min = right
		}
		if !s.less(q[min], q[i]) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// --- node pool -------------------------------------------------------------

func (s *Simulation) alloc() *node {
	if k := len(s.free); k > 0 {
		n := s.free[k-1]
		s.free = s.free[:k-1]
		return n
	}
	return &node{}
}

// retire invalidates all handles to the node and returns it to the pool.
func (s *Simulation) retire(n *node) {
	n.gen++
	n.fn = nil
	n.queued = false
	s.free = append(s.free, n)
}

// --- scheduling ------------------------------------------------------------

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a model bug.
func (s *Simulation) Schedule(at Time, name string, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, s.now))
	}
	n := s.alloc()
	n.at = at
	n.fn = fn
	n.name = name
	n.seq = s.nextSeq
	n.canceled = false
	n.queued = true
	s.nextSeq++
	s.push(n)
	return Event{n: n, gen: n.gen}
}

// After queues fn to run delay seconds from now. A non-positive delay runs
// at the current instant, after events already queued for this instant.
func (s *Simulation) After(delay Time, name string, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, name, fn)
}

// Cancel prevents a pending event from firing. Canceling a zero, stale,
// fired, or already-canceled event is a no-op. The queue slot is reclaimed
// lazily: at pop time, or in a bulk compaction once canceled events
// outnumber live ones.
func (s *Simulation) Cancel(e Event) {
	if !e.live() || e.n.canceled || !e.n.queued {
		return
	}
	e.n.canceled = true
	s.canceled++
	s.dead++
	s.mCanceled.IncAt(s.now)
	if s.dead > 64 && s.dead > len(s.queue)/2 {
		s.compact()
	}
}

// compact rebuilds the heap without canceled nodes, retiring their storage.
func (s *Simulation) compact() {
	live := s.queue[:0]
	for _, n := range s.queue {
		if n.canceled {
			s.retire(n)
		} else {
			live = append(live, n)
		}
	}
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	for i := len(live)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	s.dead = 0
	s.mCompactions.Inc()
}

// Reschedule moves a pending event to a new time, preserving its callback.
// If the event was canceled but not yet reclaimed, a fresh event with the
// same callback is scheduled. A zero or stale handle (the event already
// fired) returns the zero Event: the callback is gone.
func (s *Simulation) Reschedule(e Event, at Time) Event {
	if !e.live() || e.n.fn == nil {
		return Event{}
	}
	fn, name := e.n.fn, e.n.name
	s.Cancel(e)
	return s.Schedule(at, name, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// peek drains canceled events from the head of the queue — recycling their
// storage — and returns the earliest live node, or nil if the queue is
// empty. Step and RunUntil share this single draining path.
func (s *Simulation) peek() *node {
	for len(s.queue) > 0 {
		n := s.queue[0]
		if !n.canceled {
			return n
		}
		s.popMin()
		s.dead--
		s.retire(n)
	}
	return nil
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Simulation) Step() bool {
	n := s.peek()
	if n == nil {
		return false
	}
	s.popMin()
	if n.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v (%s)", s.now, n.at, n.name))
	}
	s.now = n.at
	s.fired++
	n.queued = false
	s.mFired.IncAt(n.at)
	s.mQueueDepth.Observe(n.at, float64(len(s.queue)-s.dead))
	n.fn()
	// Retire only after the callback: a handle held by the callback itself
	// (or by code it calls synchronously) stays valid while it runs.
	s.retire(n)
	return true
}

// RunUntil executes events until the queue is empty, Stop is called, or the
// next event would fire after deadline. The clock is left at the time of the
// last executed event (or advanced to deadline if it is reached with events
// still pending).
func (s *Simulation) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		next := s.peek()
		if next == nil {
			return
		}
		if next.at > deadline {
			s.now = deadline
			return
		}
		s.Step()
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() { s.RunUntil(Forever) }

// Ticker repeatedly invokes fn every interval seconds until canceled via the
// returned stop function. The first tick fires one interval from now. The
// tick chain is allocation-free at steady state: each fired tick's storage
// is recycled by the free list into the next tick's Schedule.
func (s *Simulation) Ticker(interval Time, name string, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Ticker interval must be positive")
	}
	var ev Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.After(interval, name, tick)
		}
	}
	ev = s.After(interval, name, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
