// Package sim implements the discrete-event simulation core used by the
// MOON reproduction.
//
// A Simulation owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in schedule order, which together with
// the deterministic rng package makes every run bit-reproducible for a given
// seed. All model time is in simulated seconds (float64).
//
// The event queue is a bucketed calendar queue (Brown, CACM 1988): pending
// events hash into time buckets of adaptive width, so the steady-state
// schedule→fire cycle is O(1) instead of the O(log n) a binary heap pays —
// the difference between minutes and hours at 100k-node scale, where n is in
// the millions. Buckets are lazily sorted: inserts append to an unsorted
// tail and the tail is only folded in when the bucket is actually examined
// for a minimum, so burst scheduling (100k heartbeats for the same instant)
// stays O(1) per event. Events scheduled for exactly the current instant —
// same-instant cascades, the dominant pattern under barriers and completion
// chains — bypass the calendar through a FIFO now-queue (append order is
// (at, seq) order there by construction), so draining an instant never
// churns the bucket being popped. The ordering contract is unchanged from
// the heap: events pop in exact (at, seq) order.
//
// The queue is also allocation-lean: event storage is pooled in a
// per-Simulation free list and recycled after an event fires, so the hot
// schedule→fire→reschedule cycle of tickers, heartbeats and flow-completion
// events runs without per-event allocation at steady state. Cancel is lazy —
// it marks the event and the queue skips it at pop time instead of paying an
// eager removal; when canceled events pile up the queue compacts in one O(n)
// pass, so cancel-heavy churn (flow reschedules) stays amortized O(1) and
// the buckets never fill with corpses.
package sim

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/metrics"
)

// Time is a point in simulated time, in seconds since the simulation epoch.
type Time = float64

// Forever is a time later than any event the simulator will reach.
const Forever Time = math.MaxFloat64

// node is the pooled storage behind one scheduled callback. After the event
// fires or its cancellation is drained, gen is bumped and the node returns
// to the free list, invalidating every outstanding handle to it.
type node struct {
	at       Time
	fn       func()
	seq      uint64
	gen      uint64
	canceled bool
	queued   bool
	name     string
}

// less is the queue's total order: by time, then by schedule order. seq is
// unique, so the order is strict — any correct priority queue pops the same
// sequence, which is what keeps run output independent of queue internals.
func less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Event is a generation-checked handle for a scheduled callback. The zero
// Event references nothing and behaves like an event that already ended:
// Cancel is a no-op, Pending reports false. Handles stay safe after the
// underlying storage is recycled — a stale handle can never cancel or
// observe an unrelated later event.
type Event struct {
	n   *node
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (e Event) live() bool { return e.n != nil && e.n.gen == e.gen }

// Canceled reports whether the event is dead: canceled, or already fired
// and its storage retired. It returns false for a pending event and for an
// event currently executing its callback.
func (e Event) Canceled() bool { return !e.live() || e.n.canceled }

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool { return e.live() && e.n.queued && !e.n.canceled }

// --- calendar queue ---------------------------------------------------------

const (
	// minBuckets is the smallest bucket array; always a power of two so the
	// slot→bucket map is a mask.
	minBuckets = 16
	// tailMax bounds the unsorted tail scanned linearly when a bucket is
	// examined; longer tails are folded into the sorted run first.
	tailMax = 32
	// maxSlot caps slot arithmetic so events in the astronomically far
	// future (at/width beyond int64) stay representable; they are found by
	// the direct-search fallback rather than the year scan.
	maxSlot = int64(1) << 62
)

// calendar is the bucketed calendar queue. Each bucket holds the events of
// the time slots hashing onto it (slot = floor(at/width), bucket =
// slot&mask) as a descending-sorted run [0,sorted) — minimum at the end,
// popped in O(1) — followed by an unsorted append tail [sorted,len). curSlot
// is the cursor of the "year scan": popping walks one slot per bucket from
// there and falls back to a direct minimum search when a whole year comes up
// empty (sparse regions), jumping the cursor forward. hold caches the
// current minimum outside the buckets so peeking is O(1).
type calendar struct {
	buckets [][]*node
	sorted  []int // per-bucket watermark: len of the descending-sorted run
	// tmin is the index of each bucket's unsorted-tail minimum, valid
	// whenever the tail [sorted,len) is non-empty. Maintained on push and
	// removal, it makes examining a bucket O(1) regardless of tail
	// length, so tails only pay a sort when one of their own elements is
	// actually removed — a bucket accumulating a large future batch is
	// never re-sorted just because the year scan walked past it.
	tmin    []int
	mask    int64
	width   float64
	curSlot int64
	stored  int   // events in buckets (hold not counted)
	hold    *node // cached minimum, removed from its bucket

	scratch []*node // reusable collection buffer for resize
}

func (c *calendar) init() {
	c.buckets = make([][]*node, minBuckets)
	c.sorted = make([]int, minBuckets)
	c.tmin = make([]int, minBuckets)
	c.mask = minBuckets - 1
	c.width = 1
}

// len returns the number of stored events, canceled corpses included.
func (c *calendar) len() int {
	if c.hold != nil {
		return c.stored + 1
	}
	return c.stored
}

func (c *calendar) slotOf(at Time) int64 {
	s := at / c.width
	if s >= float64(maxSlot) {
		return maxSlot
	}
	return int64(s)
}

func (c *calendar) push(n *node) {
	if c.buckets == nil {
		c.init()
	}
	// Keep hold the true minimum: a smaller push displaces it.
	if c.hold != nil && less(n, c.hold) {
		n, c.hold = c.hold, n
	}
	slot := c.slotOf(n.at)
	if slot < c.curSlot {
		// Pushing behind the scan cursor (possible after a far-future jump
		// followed by a barrier scheduling for the current instant): rewind
		// so the year scan still starts at or before the minimum.
		c.curSlot = slot
	}
	bi := int(slot & c.mask)
	b := c.buckets[bi]
	if len(b) == c.sorted[bi] || less(n, b[c.tmin[bi]]) {
		c.tmin[bi] = len(b)
	}
	c.buckets[bi] = append(b, n)
	c.stored++
	if c.stored > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// min returns the earliest event without removing it, or nil when empty.
func (c *calendar) min() *node {
	if c.hold == nil {
		c.hold = c.take()
	}
	return c.hold
}

// pop removes and returns the earliest event, or nil when empty.
func (c *calendar) pop() *node {
	n := c.min()
	if n == nil {
		return nil
	}
	c.hold = nil
	if len(c.buckets) > minBuckets && c.stored < len(c.buckets)/8 {
		c.resize(len(c.buckets) / 2)
	}
	return n
}

// take removes the earliest event from the buckets.
func (c *calendar) take() *node {
	if c.stored == 0 {
		return nil
	}
	// Year scan: one slot per bucket starting at the cursor. An event is
	// eligible only if it belongs to the scanned slot itself, not a later
	// wrap of the same bucket.
	nb := int64(len(c.buckets))
	for i := int64(0); i < nb; i++ {
		slot := c.curSlot + i
		bi := int(slot & c.mask)
		if len(c.buckets[bi]) == 0 {
			continue
		}
		idx, n := c.bucketMin(bi)
		if c.slotOf(n.at) == slot {
			c.removeAt(bi, c.prepareRemove(bi, idx))
			c.curSlot = slot
			c.stored--
			return n
		}
	}
	// Sparse region: nothing within a year of the cursor. Direct minimum
	// search over all buckets, then jump the cursor to it.
	bbi, bidx := -1, -1
	var best *node
	for i := range c.buckets {
		if len(c.buckets[i]) == 0 {
			continue
		}
		idx, n := c.bucketMin(i)
		if best == nil || less(n, best) {
			best, bbi, bidx = n, i, idx
		}
	}
	c.removeAt(bbi, c.prepareRemove(bbi, bidx))
	c.curSlot = c.slotOf(best.at)
	c.stored--
	return best
}

// bucketMin locates the minimum of a non-empty bucket in O(1): the end of
// the descending run versus the tracked tail minimum. It never mutates the
// bucket, so the year scan can examine arbitrarily many buckets (and the
// sparse-region fallback all of them) without triggering sorts.
func (c *calendar) bucketMin(bi int) (int, *node) {
	b := c.buckets[bi]
	s := c.sorted[bi]
	if s == len(b) {
		return s - 1, b[s-1]
	}
	t := c.tmin[bi]
	if s > 0 && less(b[s-1], b[t]) {
		return s - 1, b[s-1]
	}
	return t, b[t]
}

// prepareRemove readies the removal of bucket bi's minimum at idx: pulling
// an element out of a long unsorted tail would leave an O(tail) rescan for
// the new tail minimum, so such tails are folded into the run first (one
// sort per drained batch — bursts pay it when they actually start popping,
// not while they accumulate). Returns the minimum's possibly-moved index.
func (c *calendar) prepareRemove(bi, idx int) int {
	if idx < c.sorted[bi] || len(c.buckets[bi])-c.sorted[bi] <= tailMax {
		return idx
	}
	c.sortBucket(bi)
	return len(c.buckets[bi]) - 1
}

// sortBucket folds the unsorted tail into the descending run: the tail is
// sorted on its own and merged with the run, so the run — which can hold a
// large drained-in-place batch — is only ever copied, never re-sorted.
func (c *calendar) sortBucket(bi int) {
	b := c.buckets[bi]
	s := c.sorted[bi]
	tail := b[s:]
	slices.SortFunc(tail, func(a, x *node) int {
		if less(a, x) {
			return 1
		}
		return -1
	})
	if s > 0 && len(tail) > 0 {
		// Merge the two descending runs through scratch, larger first.
		m := c.scratch[:0]
		i, j := 0, s
		for i < s && j < len(b) {
			if less(b[i], b[j]) {
				m = append(m, b[j])
				j++
			} else {
				m = append(m, b[i])
				i++
			}
		}
		m = append(m, b[i:s]...)
		m = append(m, b[j:]...)
		copy(b, m)
		for k := range m {
			m[k] = nil
		}
		c.scratch = m[:0]
	}
	c.sorted[bi] = len(b)
}

// removeAt removes the bucket minimum (as located by bucketMin, after
// prepareRemove). The element is either the end of the sorted run or the
// tail minimum of a short tail; the last element backfills its position,
// landing in (or becoming) the tail.
func (c *calendar) removeAt(bi, idx int) {
	b := c.buckets[bi]
	fromTail := idx >= c.sorted[bi]
	if idx < c.sorted[bi] {
		c.sorted[bi] = idx
	}
	last := len(b) - 1
	b[idx] = b[last]
	b[last] = nil
	c.buckets[bi] = b[:last]
	if c.sorted[bi] > last {
		c.sorted[bi] = last
	}
	s := c.sorted[bi]
	if s >= last {
		return // tail empty, tmin unused
	}
	if fromTail {
		// The tail minimum left; rescan the (tailMax-bounded) remainder.
		t := s
		for j := s + 1; j < last; j++ {
			if less(b[j], b[t]) {
				t = j
			}
		}
		c.tmin[bi] = t
	} else if c.tmin[bi] == last {
		// The backfilled element was the tail minimum; it now sits at idx.
		c.tmin[bi] = idx
	}
}

// resize rebuilds the calendar with nb buckets and a width re-derived from
// the stored population: ~3 average gaps per bucket across the whole span
// (Brown's rule of thumb applied globally). A global estimate is deliberate:
// a front-density EWMA collapses under bursts of near-coincident events
// (epsilon-spaced completions), shrinking buckets until the year scan walks
// thousands of empty slots per pop. Span-based width keeps nb*width at or
// above the occupied horizon — dense clusters simply land in shared buckets,
// which bucketMin/sortBucket handle in O(1)/amortized-O(log) — so the scan
// stays short. O(n log n), but only triggered by 2x occupancy crossings, so
// amortized O(1) per event.
func (c *calendar) resize(nb int) {
	if nb < minBuckets {
		nb = minBuckets
	}
	all := c.scratch[:0]
	for i := range c.buckets {
		all = append(all, c.buckets[i]...)
	}
	slices.SortFunc(all, func(a, x *node) int {
		if less(a, x) {
			return -1
		}
		return 1
	})
	w := c.width
	if len(all) > 1 {
		if span := all[len(all)-1].at - all[0].at; span > 0 {
			w = 3 * span / float64(len(all))
		}
	}
	if !(w > 1e-12) || math.IsInf(w, 1) {
		w = 1
	}
	c.buckets = make([][]*node, nb)
	c.sorted = make([]int, nb)
	c.tmin = make([]int, nb)
	c.mask = int64(nb - 1)
	c.width = w
	// Distribute in descending order so every bucket lands fully sorted.
	for i := len(all) - 1; i >= 0; i-- {
		bi := int(c.slotOf(all[i].at) & c.mask)
		c.buckets[bi] = append(c.buckets[bi], all[i])
	}
	for i := range c.buckets {
		c.sorted[i] = len(c.buckets[i])
	}
	if len(all) > 0 {
		c.curSlot = c.slotOf(all[0].at)
	} else {
		c.curSlot = 0
	}
	for i := range all {
		all[i] = nil
	}
	c.scratch = all[:0]
}

// --- simulation -------------------------------------------------------------

// Simulation is a discrete-event scheduler. It is not safe for concurrent
// use; the whole model runs single-threaded over virtual time. Independent
// Simulations share nothing and may run on different goroutines.
type Simulation struct {
	now     Time
	cal     calendar
	free    []*node // retired nodes awaiting reuse
	nextSeq uint64
	// nowq holds events scheduled for exactly the current instant, FIFO.
	// Same-instant cascades — a callback scheduling follow-up work at
	// now, barriers flushing deferred settles, completion chains — are
	// the simulator's hottest scheduling pattern, and their order needs
	// no priority queue at all: every such event ties on at and carries
	// a seq greater than any equal-time event already queued (those were
	// pushed before the clock reached this instant), so append order IS
	// (at, seq) order. Routing them here keeps the calendar's buckets
	// free of the push-while-draining churn that forced repeated
	// re-sorts of long sorted runs. nowq drains fully before the clock
	// can advance, so it never holds events from a past instant.
	nowq     []*node
	nowqHead int
	// fired counts events executed, for diagnostics and livelock guards.
	fired uint64
	// canceled counts events killed via Cancel before they could fire.
	canceled uint64
	// dead counts canceled nodes still occupying queue slots.
	dead    int
	stopped bool

	// barriers run when the simulation is about to leave the current
	// instant (see Barrier).
	barriers []func() bool

	// shards is the intra-run worker pool for parallel phases (see
	// Shards); nil until first use or SetShardWorkers.
	shards *ShardPool

	// Instrument handles (nil without a collector; nil handles no-op, so
	// the hot path stays allocation-free when metrics are off).
	mFired       *metrics.Counter
	mCanceled    *metrics.Counter
	mCompactions *metrics.Counter
	mQueueDepth  *metrics.Series
}

// Instrument registers the event core's instruments on c: event throughput
// and cancellations as time-bucketed counters, queue compactions (the corpse
// drain), and a sampled queue-depth series. A nil collector (or never
// calling Instrument) leaves the simulation exactly as before — the pinned
// microbenchmarks stay at 0 allocs/op.
func (s *Simulation) Instrument(c *metrics.Collector) {
	if c == nil {
		return
	}
	s.mFired = c.TimedCounter(metrics.LayerSim, "events_fired", "")
	s.mCanceled = c.TimedCounter(metrics.LayerSim, "events_canceled", "")
	s.mCompactions = c.Counter(metrics.LayerSim, "queue_compactions", "")
	s.mQueueDepth = c.SampleSeries(metrics.LayerSim, "queue_depth", "")
}

// New returns an empty simulation at time 0.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulation) Fired() uint64 { return s.fired }

// Canceled returns the number of events canceled before firing.
func (s *Simulation) Canceled() uint64 { return s.canceled }

// queueLen counts stored events across the calendar and the now-queue,
// canceled corpses included.
func (s *Simulation) queueLen() int { return s.cal.len() + len(s.nowq) - s.nowqHead }

// Pending returns the number of events currently queued to fire (canceled
// events awaiting lazy removal are not counted).
func (s *Simulation) Pending() int { return s.queueLen() - s.dead }

// --- node pool -------------------------------------------------------------

func (s *Simulation) alloc() *node {
	if k := len(s.free); k > 0 {
		n := s.free[k-1]
		s.free = s.free[:k-1]
		return n
	}
	return &node{}
}

// retire invalidates all handles to the node and returns it to the pool.
func (s *Simulation) retire(n *node) {
	n.gen++
	n.fn = nil
	n.queued = false
	s.free = append(s.free, n)
}

// --- scheduling ------------------------------------------------------------

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a model bug.
func (s *Simulation) Schedule(at Time, name string, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, s.now))
	}
	n := s.alloc()
	n.at = at
	n.fn = fn
	n.name = name
	n.seq = s.nextSeq
	n.canceled = false
	n.queued = true
	s.nextSeq++
	if at == s.now {
		s.nowq = append(s.nowq, n)
	} else {
		s.cal.push(n)
	}
	return Event{n: n, gen: n.gen}
}

// After queues fn to run delay seconds from now. A non-positive delay runs
// at the current instant, after events already queued for this instant.
func (s *Simulation) After(delay Time, name string, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, name, fn)
}

// Cancel prevents a pending event from firing. Canceling a zero, stale,
// fired, or already-canceled event is a no-op. The queue slot is reclaimed
// lazily: at pop time, or in a bulk compaction once canceled events
// outnumber live ones.
func (s *Simulation) Cancel(e Event) {
	if !e.live() || e.n.canceled || !e.n.queued {
		return
	}
	e.n.canceled = true
	s.canceled++
	s.dead++
	s.mCanceled.IncAt(s.now)
	if s.dead > 64 && s.dead > s.queueLen()/2 {
		s.compact()
	}
}

// compact sweeps canceled nodes out of the calendar, retiring their storage.
// In-place filtering preserves each bucket's sorted run, so no re-sort is
// needed.
func (s *Simulation) compact() {
	c := &s.cal
	if c.hold != nil && c.hold.canceled {
		s.retire(c.hold)
		c.hold = nil
	}
	for i := range c.buckets {
		b := c.buckets[i]
		live := b[:0]
		deadSorted := 0
		for j, n := range b {
			if n.canceled {
				if j < c.sorted[i] {
					deadSorted++
				}
				s.retire(n)
				c.stored--
			} else {
				live = append(live, n)
			}
		}
		for j := len(live); j < len(b); j++ {
			b[j] = nil
		}
		c.buckets[i] = live
		c.sorted[i] -= deadSorted
		// Filtering shifted tail indices; re-derive the tail minimum.
		if s := c.sorted[i]; s < len(live) {
			t := s
			for j := s + 1; j < len(live); j++ {
				if less(live[j], live[t]) {
					t = j
				}
			}
			c.tmin[i] = t
		}
	}
	// The now-queue can hold corpses too; filtering in place preserves
	// its FIFO order.
	liveNow := s.nowq[:0]
	for j := s.nowqHead; j < len(s.nowq); j++ {
		if n := s.nowq[j]; n.canceled {
			s.retire(n)
		} else {
			liveNow = append(liveNow, n)
		}
	}
	for j := len(liveNow); j < len(s.nowq); j++ {
		s.nowq[j] = nil
	}
	s.nowq = liveNow
	s.nowqHead = 0
	s.dead = 0
	s.mCompactions.Inc()
}

// Reschedule moves a pending event to a new time, preserving its callback.
// If the event was canceled but not yet reclaimed, a fresh event with the
// same callback is scheduled. A zero or stale handle (the event already
// fired) returns the zero Event: the callback is gone.
func (s *Simulation) Reschedule(e Event, at Time) Event {
	if !e.live() || e.n.fn == nil {
		return Event{}
	}
	fn, name := e.n.fn, e.n.name
	s.Cancel(e)
	return s.Schedule(at, name, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Barrier registers fn to run between event callbacks: before the next
// event fires, before the clock advances to a later event, and before Step
// or RunUntil return with the queue drained or the deadline reached. fn
// reports whether it did any work; barriers are re-run until every
// registered fn reports an idle pass, so events a barrier schedules for the
// current instant still fire within it. A barrier that always reports work
// livelocks the simulation — fn must be idempotent at a given instant.
//
// This is the hook for models that batch per-callback work (the netmodel
// rate settling): they accumulate changes while a callback executes and
// reconcile once when it returns, instead of once per change. Running
// between callbacks — not merely at instant exit — keeps deferred work
// ordered exactly as an eager schedule would have run it: no other model
// code executes between the end of the triggering callback and the flush.
func (s *Simulation) Barrier(fn func() bool) {
	s.barriers = append(s.barriers, fn)
}

func (s *Simulation) runBarriers() bool {
	did := false
	for _, fn := range s.barriers {
		if fn() {
			did = true
		}
	}
	return did
}

// nowFront drains canceled events from the head of the now-queue —
// recycling their storage — and returns its earliest live node, or nil.
func (s *Simulation) nowFront() *node {
	for s.nowqHead < len(s.nowq) {
		n := s.nowq[s.nowqHead]
		if !n.canceled {
			return n
		}
		s.nowq[s.nowqHead] = nil
		s.nowqHead++
		s.dead--
		s.retire(n)
	}
	s.nowq = s.nowq[:0]
	s.nowqHead = 0
	return nil
}

// peek drains canceled events from the head of the queue — recycling their
// storage — and returns the earliest live node, or nil if the queue is
// empty. Step and RunUntil share this single draining path. Current-instant
// events in the now-queue win ties against the calendar only by seq: an
// equal-time calendar event predates the clock's arrival at this instant
// and so always carries the smaller seq.
func (s *Simulation) peek() *node {
	var cn *node
	for {
		cn = s.cal.min()
		if cn == nil || !cn.canceled {
			break
		}
		s.cal.pop()
		s.dead--
		s.retire(cn)
	}
	nn := s.nowFront()
	if nn == nil {
		return cn
	}
	if cn == nil || less(nn, cn) {
		return nn
	}
	return cn
}

// nextLive resolves the next event to fire, letting barriers flush deferred
// work before every callback and before the simulation leaves the current
// instant. The flush may cancel the apparent head or schedule ahead of it,
// so the queue is re-examined until a barrier pass is idle. It returns the
// earliest live node once no barrier has more work, or nil if the queue is
// empty.
func (s *Simulation) nextLive() *node {
	if len(s.barriers) == 0 {
		return s.peek()
	}
	for {
		did := s.runBarriers()
		n := s.peek()
		if !did {
			return n
		}
	}
}

// fire pops n (which must be the queue head, as returned by peek) and
// executes it.
func (s *Simulation) fire(n *node) {
	if s.nowqHead < len(s.nowq) && s.nowq[s.nowqHead] == n {
		s.nowq[s.nowqHead] = nil
		s.nowqHead++
		if s.nowqHead == len(s.nowq) {
			s.nowq = s.nowq[:0]
			s.nowqHead = 0
		}
	} else {
		s.cal.pop()
	}
	if n.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v (%s)", s.now, n.at, n.name))
	}
	s.now = n.at
	s.fired++
	n.queued = false
	s.mFired.IncAt(n.at)
	s.mQueueDepth.Observe(n.at, float64(s.queueLen()-s.dead))
	n.fn()
	// Retire only after the callback: a handle held by the callback itself
	// (or by code it calls synchronously) stays valid while it runs.
	s.retire(n)
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty (after giving barriers a final pass).
func (s *Simulation) Step() bool {
	n := s.nextLive()
	if n == nil {
		return false
	}
	s.fire(n)
	return true
}

// RunUntil executes events until the queue is empty, Stop is called, or the
// next event would fire after deadline. The clock is left at the time of the
// last executed event (or advanced to deadline if it is reached with events
// still pending).
func (s *Simulation) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		n := s.nextLive()
		if n == nil {
			return
		}
		if n.at > deadline {
			s.now = deadline
			return
		}
		s.fire(n)
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() { s.RunUntil(Forever) }

// Ticker repeatedly invokes fn every interval seconds until canceled via the
// returned stop function. The first tick fires one interval from now. The
// tick chain is allocation-free at steady state: each fired tick's storage
// is recycled by the free list into the next tick's Schedule.
func (s *Simulation) Ticker(interval Time, name string, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Ticker interval must be positive")
	}
	var ev Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.After(interval, name, tick)
		}
	}
	ev = s.After(interval, name, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
