// Package sim implements the discrete-event simulation core used by the
// MOON reproduction.
//
// A Simulation owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in schedule order, which together with
// the deterministic rng package makes every run bit-reproducible for a given
// seed. All model time is in simulated seconds (float64).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the simulation epoch.
type Time = float64

// Forever is a time later than any event the simulator will reach.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. The zero value is invalid; events are
// created through Simulation.Schedule and friends.
type Event struct {
	At       Time
	fn       func()
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	name     string
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e == nil || e.canceled }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && !e.canceled && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulation is a discrete-event scheduler. It is not safe for concurrent
// use; the whole model runs single-threaded over virtual time.
type Simulation struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	// Fired counts events executed, for diagnostics and livelock guards.
	fired   uint64
	stopped bool
}

// New returns an empty simulation at time 0.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulation) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued.
func (s *Simulation) Pending() int { return len(s.queue) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a model bug.
func (s *Simulation) Schedule(at Time, name string, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, s.now))
	}
	e := &Event{At: at, fn: fn, seq: s.nextSeq, name: name}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// After queues fn to run delay seconds from now. A non-positive delay runs
// at the current instant, after events already queued for this instant.
func (s *Simulation) After(delay Time, name string, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, name, fn)
}

// Cancel prevents a pending event from firing. Canceling a nil, fired, or
// already-canceled event is a no-op.
func (s *Simulation) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Reschedule moves a pending event to a new time, preserving its callback.
// If the event already fired or was canceled, a fresh event is scheduled.
func (s *Simulation) Reschedule(e *Event, at Time) *Event {
	if e == nil {
		return nil
	}
	fn, name := e.fn, e.name
	s.Cancel(e)
	return s.Schedule(at, name, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Simulation) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.At < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v (%s)", s.now, e.At, e.name))
		}
		s.now = e.At
		s.fired++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty, Stop is called, or the
// next event would fire after deadline. The clock is left at the time of the
// last executed event (or advanced to deadline if it is reached with events
// still pending).
func (s *Simulation) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		// Peek without firing so the deadline is honored exactly.
		var next *Event
		for len(s.queue) > 0 {
			if s.queue[0].canceled {
				heap.Pop(&s.queue)
				continue
			}
			next = s.queue[0]
			break
		}
		if next == nil {
			return
		}
		if next.At > deadline {
			s.now = deadline
			return
		}
		s.Step()
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() { s.RunUntil(Forever) }

// Ticker repeatedly invokes fn every interval seconds until canceled via the
// returned stop function. The first tick fires one interval from now.
func (s *Simulation) Ticker(interval Time, name string, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Ticker interval must be positive")
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.After(interval, name, tick)
		}
	}
	ev = s.After(interval, name, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
