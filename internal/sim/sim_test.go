package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		s.Schedule(at, "e", func() { got = append(got, at) })
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(10, "setup", func() {
		s.After(-5, "neg", func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %v, want 10", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, "later", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(5, "past", func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, "x", func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Cancel of the zero handle and double cancel are no-ops.
	s.Cancel(Event{})
	s.Cancel(e)
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	fired := false
	var victim Event
	victim = s.Schedule(2, "victim", func() { fired = true })
	s.Schedule(1, "killer", func() { s.Cancel(victim) })
	s.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var at float64
	e := s.Schedule(1, "move", func() { at = s.Now() })
	s.Reschedule(e, 7)
	s.Run()
	if at != 7 {
		t.Fatalf("rescheduled event fired at %v, want 7", at)
	}
}

func TestRunUntilDeadline(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10, 20} {
		at := at
		s.Schedule(at, "e", func() { fired = append(fired, at) })
	}
	s.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before deadline, want 3", len(fired))
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want advanced to deadline 5", s.Now())
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), "e", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the run: fired %d", count)
	}
	// Run resumes after Stop.
	s.Run()
	if count != 10 {
		t.Fatalf("resumed run fired %d total, want 10", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(1, "r", recurse)
		}
	}
	s.After(1, "r", recurse)
	s.Run()
	if depth != 5 {
		t.Fatalf("recursive scheduling depth = %d, want 5", depth)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := New()
	ticks := 0
	var stop func()
	stop = s.Ticker(10, "hb", func() {
		ticks++
		if ticks == 4 {
			stop()
		}
	})
	s.RunUntil(1000)
	if ticks != 4 {
		t.Fatalf("ticker fired %d times, want 4", ticks)
	}
	if s.Now() < 40 {
		t.Fatalf("clock = %v, want >= 40", s.Now())
	}
}

func TestTickerStopBeforeFirstTick(t *testing.T) {
	s := New()
	ticks := 0
	stop := s.Ticker(10, "hb", func() { ticks++ })
	stop()
	s.Run()
	if ticks != 0 {
		t.Fatalf("stopped ticker fired %d times", ticks)
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-interval ticker did not panic")
		}
	}()
	New().Ticker(0, "bad", func() {})
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(float64(i), "e", func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestPendingCount(t *testing.T) {
	s := New()
	e := s.Schedule(1, "a", func() {})
	s.Schedule(2, "b", func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Cancel(e)
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d after cancel, want 1", s.Pending())
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation of the input.
func TestQuickOrdering(t *testing.T) {
	if err := quick.Check(func(times []uint16) bool {
		s := New()
		var got []float64
		for _, u := range times {
			at := float64(u)
			s.Schedule(at, "q", func() { got = append(got, at) })
		}
		s.Run()
		if len(got) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(got)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
