package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestShardPoolCoversEveryIndexOnce pins Run's span arithmetic: for any
// (n, workers) the index range is covered exactly once by contiguous
// spans, worker ids stay in [0, Workers()), and worker 0 owns the first
// span (it runs inline on the caller's goroutine).
func TestShardPoolCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 64, 1000, 1023} {
			p := NewShardPool(workers)
			hits := make([]int32, n)
			firstWorker := int32(-1)
			p.Run(n, func(worker, lo, hi int) {
				if worker < 0 || worker >= p.Workers() {
					t.Errorf("w=%d n=%d: worker id %d out of range", workers, n, worker)
				}
				if lo == 0 {
					atomic.StoreInt32(&firstWorker, int32(worker))
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("w=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
			if n > 0 && firstWorker != 0 {
				t.Errorf("w=%d n=%d: first span ran on worker %d, want 0", workers, n, firstWorker)
			}
		}
	}
}

// TestSumIntMatchesSerial pins the exact-reduction property: integer
// partial sums folded in span order equal the serial left-to-right sum at
// every worker count.
func TestSumIntMatchesSerial(t *testing.T) {
	const n = 4097
	vals := make([]int, n)
	for i := range vals {
		vals[i] = (i*2654435761 + 17) % 1000
	}
	want := 0
	for _, v := range vals {
		want += v
	}
	for _, workers := range []int{1, 2, 4, 8, 13} {
		got := NewShardPool(workers).SumInt(n, func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		})
		if got != want {
			t.Errorf("workers=%d: SumInt = %d, want %d", workers, got, want)
		}
	}
}

// TestShardPoolWidths pins the width conventions: non-positive selects
// GOMAXPROCS, a nil pool is serial, and Serial() means exactly one worker.
func TestShardPoolWidths(t *testing.T) {
	if got, want := NewShardPool(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("NewShardPool(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := NewShardPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewShardPool(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	var nilPool *ShardPool
	if !nilPool.Serial() || nilPool.Workers() != 1 {
		t.Error("nil pool must behave as a serial single worker")
	}
	if NewShardPool(1).Serial() != true || NewShardPool(2).Serial() != false {
		t.Error("Serial() must report Workers() == 1")
	}
}

// TestSimulationShardKnob pins the Simulation-level wiring: Shards()
// defaults to a machine-wide pool and SetShardWorkers replaces it.
func TestSimulationShardKnob(t *testing.T) {
	s := New()
	if s.Shards() == nil {
		t.Fatal("Shards() returned nil")
	}
	s.SetShardWorkers(3)
	if got := s.Shards().Workers(); got != 3 {
		t.Errorf("after SetShardWorkers(3): Workers() = %d", got)
	}
	s.SetShardWorkers(1)
	if !s.Shards().Serial() {
		t.Error("SetShardWorkers(1) must force the serial path")
	}
}

// TestPaddedSeparatesLines pins the arena padding: adjacent []Padded[T]
// elements can never share a cache line.
func TestPaddedSeparatesLines(t *testing.T) {
	if sz := unsafe.Sizeof(Padded[int]{}); sz < CacheLine {
		t.Errorf("Padded[int] is %d bytes, want >= %d", sz, CacheLine)
	}
	if sz := unsafe.Sizeof(Padded[[3]float64]{}); sz < CacheLine {
		t.Errorf("Padded[[3]float64] is %d bytes, want >= %d", sz, CacheLine)
	}
}

// TestShardPoolRaced hammers the phase contract under the race detector:
// many repeated phases where workers write disjoint per-index slots and
// their own padded partials, with the fold on the caller. Any violation of
// the disjoint-writes contract inside ShardPool itself shows up as a race
// report when this runs with -race (CI does).
func TestShardPoolRaced(t *testing.T) {
	const n = 10000
	p := NewShardPool(8)
	out := make([]int, n)
	partials := make([]Padded[int], p.Workers())
	for round := 0; round < 50; round++ {
		for i := range partials {
			partials[i].V = 0
		}
		p.Run(n, func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i + round
				partials[worker].V += i
			}
		})
		total := 0
		for i := range partials {
			total += partials[i].V
		}
		if want := n * (n - 1) / 2; total != want {
			t.Fatalf("round %d: partial fold = %d, want %d", round, total, want)
		}
		if out[n-1] != n-1+round {
			t.Fatalf("round %d: per-index slot not written", round)
		}
	}
}
