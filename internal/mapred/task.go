package mapred

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// TaskType distinguishes Map from Reduce tasks.
type TaskType int

const (
	MapTask TaskType = iota
	ReduceTask
)

func (t TaskType) String() string {
	if t == ReduceTask {
		return "reduce"
	}
	return "map"
}

// Task is one logical unit of job work; it may be attempted by several
// Instances (the original plus speculative or re-executed copies).
type Task struct {
	Type  TaskType
	Index int

	job *Job

	// instances holds the *live* attempts only; finished ones are pruned
	// so scheduler scans stay O(running), not O(history). attempts and
	// specLaunches preserve the historical counts for metrics.
	instances    []*Instance
	attempts     int
	specLaunches int

	completed   bool
	completedAt float64
	// output is the DFS file written by the winning attempt
	// (intermediate data for maps, final output for reduces).
	output string

	// invalidations counts times a completed map's output was declared
	// lost, forcing re-execution.
	invalidations int

	// scheduledOrder is the order of first launch, used by Hadoop's
	// speculative selection.
	scheduledOrder int
}

// ID renders a stable task name.
func (t *Task) ID() string { return fmt.Sprintf("%s-%s%d", t.job.cfg.Name, t.Type, t.Index) }

// Completed reports whether the task has a surviving successful attempt.
func (t *Task) Completed() bool { return t.completed }

// Output returns the DFS file name of the winning attempt, or "".
func (t *Task) Output() string { return t.output }

// pruneInstance removes a finished attempt from the live list.
func (t *Task) pruneInstance(in *Instance) {
	for i, x := range t.instances {
		if x == in {
			t.instances = append(t.instances[:i], t.instances[i+1:]...)
			return
		}
	}
}

// activeInstances counts attempts that are running and not inactive.
func (t *Task) activeInstances() int {
	n := 0
	for _, in := range t.instances {
		if in.running() && !in.inactive {
			n++
		}
	}
	return n
}

// runningInstances counts attempts that are running (even if inactive).
func (t *Task) runningInstances() int {
	n := 0
	for _, in := range t.instances {
		if in.running() {
			n++
		}
	}
	return n
}

// frozen reports whether the task has attempts but every one of them is
// inactive — MOON's "all copies simultaneously inactive" condition.
func (t *Task) frozen() bool {
	return !t.completed && t.runningInstances() > 0 && t.activeInstances() == 0
}

// hasActiveDedicatedCopy reports whether some active attempt runs on a
// dedicated node.
func (t *Task) hasActiveDedicatedCopy() bool {
	for _, in := range t.instances {
		if in.running() && !in.inactive && in.node.IsDedicated() {
			return true
		}
	}
	return false
}

// progress returns the task's best attempt progress in [0,1]; completed
// tasks report 1.
func (t *Task) progress(now float64) float64 {
	if t.completed {
		return 1
	}
	best := 0.0
	for _, in := range t.instances {
		if p := in.progress(now); p > best && in.running() {
			best = p
		}
	}
	return best
}

// instancePhase tracks where an attempt is in its lifecycle.
type instancePhase int

const (
	phaseRead    instancePhase = iota // map: fetching a non-local input block
	phaseShuffle                      // reduce: copying map outputs
	phaseCompute                      // both: CPU
	phaseWrite                        // both: writing output through the DFS
	phaseDone
	phaseKilled
)

// Instance is one attempt of a task on one node.
type Instance struct {
	task    *Task
	node    *cluster.Node
	tracker *TaskTracker
	attempt int

	phase     instancePhase
	startedAt float64

	// inactive marks the MOON "suspended but not killed" state.
	inactive bool

	// Compute bookkeeping: cpuLeft seconds remain; while actively
	// computing, runningSince records when the current burst began and
	// computeEv is the completion event.
	cpuTotal     float64
	cpuLeft      float64
	runningSince float64
	computing    bool
	computeEv    sim.Event

	// I/O handles, canceled on kill.
	readFlow *netmodel.Flow
	writeOp  *dfs.WriteOp
	shuffle  *shuffleState

	outputFile  string
	speculative bool

	// computeStartedAt marks the end of the copy/sort phases, for the
	// Table II "reduce time" metric (reduce phase only).
	computeStartedAt float64
}

// ID renders the attempt name (also used as its DFS output file name).
func (in *Instance) ID() string {
	return fmt.Sprintf("%s-a%d", in.task.ID(), in.attempt)
}

func (in *Instance) running() bool {
	return in.phase != phaseDone && in.phase != phaseKilled
}

// progress implements Hadoop's progress score: maps report the fraction of
// input processed; reduces weight shuffle, sort and reduce each 1/3 (sort
// is instantaneous in the model, so it merges into the compute start).
func (in *Instance) progress(now float64) float64 {
	switch in.phase {
	case phaseRead:
		return 0
	case phaseShuffle:
		if in.shuffle == nil || in.task.job.cfg.NumMaps == 0 {
			return 0
		}
		return float64(in.shuffle.fetched) / float64(in.task.job.cfg.NumMaps) / 3
	case phaseCompute, phaseWrite:
		f := 1.0
		if in.cpuTotal > 0 {
			left := in.cpuLeft
			if in.computing {
				left -= now - in.runningSince
			}
			if left < 0 {
				left = 0
			}
			f = 1 - left/in.cpuTotal
		}
		if in.task.Type == ReduceTask {
			return 2.0/3 + f/3
		}
		return f
	case phaseDone:
		return 1
	default:
		return 0
	}
}

// elapsed returns how long the attempt has existed.
func (in *Instance) elapsed(now float64) float64 { return now - in.startedAt }

// InstanceDetails summarizes the task's running attempts for diagnostics:
// one "phase[/inactive]" string per live attempt.
func (t *Task) InstanceDetails(now float64) []string {
	var out []string
	for _, in := range t.instances {
		if !in.running() {
			continue
		}
		d := ""
		switch in.phase {
		case phaseRead:
			d = "read"
		case phaseShuffle:
			d = fmt.Sprintf("shuffle(%d/%d)", in.shuffle.fetched, len(in.shuffle.state))
		case phaseCompute:
			d = "compute"
		case phaseWrite:
			d = "write"
		}
		if in.inactive {
			d += "/inactive"
		}
		out = append(out, d)
	}
	return out
}
