package mapred

import "repro/internal/sim"

// Tick-scoped caching and the heartbeat's parallel slot-evaluation phase.
//
// Between beginTick and endTick the event queue is silent: no sim event can
// fire, so tracker availability, expiry and suspension are frozen, and the
// only task-state mutations are the heartbeat's own launches plus the rare
// synchronous failure paths a launch can trip (an input read with no live
// replica, an output create error, a first shuffle fetch that invalidates a
// map output). Launches move state in one direction only — pending tasks
// gain a running instance, speculative counts grow, candidate sets shrink —
// so caches of "no work left" and monotone counters stay exact across them.
// The synchronous failure paths can move state the other way (a task can
// become pending again mid-tick), so every direction-sensitive cache records
// jt.tickMut when filled and is discarded the moment a detach or map-output
// invalidation bumps it. Correctness therefore never depends on those paths
// being rare; the caches just stop helping when they fire.
//
// countAvailableSlots and observeOccupancy additionally fan their
// O(trackers) scans across the simulation's shard pool. Both are parallel
// phases in the sim.ShardPool sense: workers only read tracker state (frozen
// for the whole tick) and write disjoint per-worker partial tallies, which
// the caller folds serially in worker order. Integer sums are associative,
// so any worker count — including 1 — produces identical results.

// tickShardMinTrackers is the fleet size below which the heartbeat's slot
// scans stay serial; spawning workers costs more than scanning a few
// thousand trackers.
const tickShardMinTrackers = 2048

// occTally is one worker's slot-occupancy partial sum.
type occTally struct {
	total, used int
}

// beginTick opens a heartbeat: all tick-scoped caches start invalid.
func (jt *JobTracker) beginTick() {
	jt.inTick = true
	jt.slotsCached = false
	jt.specCached = false
	jt.noPending = [2]bool{}
	jt.noSpec = [2]bool{}
}

// endTick closes the heartbeat; caches are dead until the next beginTick.
func (jt *JobTracker) endTick() { jt.inTick = false }

// taskStateChanged records a task-state mutation that may run mid-tick in a
// cache-hostile direction (an attempt detached, a completed map invalidated).
// Bumping the generation invalidates every mut-guarded tick cache.
func (jt *JobTracker) taskStateChanged() { jt.tickMut++ }

// pendingExhausted reports whether this tick already proved no job has a
// pending task of the type (valid only while no mutation intervened).
func (jt *JobTracker) pendingExhausted(typ TaskType) bool {
	return jt.noPending[typ] && jt.noPendingMut[typ] == jt.tickMut
}

func (jt *JobTracker) markPendingExhausted(typ TaskType) {
	jt.noPending[typ] = true
	jt.noPendingMut[typ] = jt.tickMut
}

// specExhausted reports whether this tick already proved no tracker can
// receive a speculative copy of the type. It is only set when every job's
// nil pick was tracker-independent (cap hit, precondition failed, or empty
// candidate bases) — a nil caused by a tracker-local filter never sets it.
func (jt *JobTracker) specExhausted(typ TaskType) bool {
	return jt.noSpec[typ] && jt.noSpecMut[typ] == jt.tickMut
}

func (jt *JobTracker) markSpecExhausted(typ TaskType) {
	jt.noSpec[typ] = true
	jt.noSpecMut[typ] = jt.tickMut
}

// countAvailableSlots scans the fleet for live execution slots, fanning the
// scan across the shard pool on large fleets. Pure reads of tracker state;
// each worker writes only its own padded partial.
func (jt *JobTracker) countAvailableSlots() int {
	pool := jt.sim.Shards()
	n := len(jt.trackers)
	if pool.Serial() || n < tickShardMinTrackers {
		total := 0
		for _, tt := range jt.trackers {
			if tt.node.Available() && !tt.expired {
				total += tt.mapSlots + tt.reduceSlots
			}
		}
		return total
	}
	w := pool.Workers()
	if len(jt.slotParts) < w {
		jt.slotParts = make([]sim.Padded[int], w)
	}
	for i := range jt.slotParts {
		jt.slotParts[i].V = 0
	}
	pool.Run(n, func(worker, lo, hi int) {
		t := 0
		for _, tt := range jt.trackers[lo:hi] {
			if tt.node.Available() && !tt.expired {
				t += tt.mapSlots + tt.reduceSlots
			}
		}
		jt.slotParts[worker].V = t
	})
	total := 0
	for i := range jt.slotParts {
		total += jt.slotParts[i].V
	}
	return total
}

// countOccupancy returns (total, used) slots over live trackers, sharded
// like countAvailableSlots. used counts running attempts, matching the
// serial occupancy scan exactly.
func (jt *JobTracker) countOccupancy() (int, int) {
	pool := jt.sim.Shards()
	n := len(jt.trackers)
	if pool.Serial() || n < tickShardMinTrackers {
		total, used := 0, 0
		for _, tt := range jt.trackers {
			if !tt.node.Available() || tt.expired {
				continue
			}
			total += tt.mapSlots + tt.reduceSlots
			used += len(tt.running)
		}
		return total, used
	}
	w := pool.Workers()
	if len(jt.occParts) < w {
		jt.occParts = make([]sim.Padded[occTally], w)
	}
	for i := range jt.occParts {
		jt.occParts[i].V = occTally{}
	}
	pool.Run(n, func(worker, lo, hi int) {
		var t occTally
		for _, tt := range jt.trackers[lo:hi] {
			if !tt.node.Available() || tt.expired {
				continue
			}
			t.total += tt.mapSlots + tt.reduceSlots
			t.used += len(tt.running)
		}
		jt.occParts[worker].V = t
	})
	total, used := 0, 0
	for i := range jt.occParts {
		total += jt.occParts[i].V.total
		used += jt.occParts[i].V.used
	}
	return total, used
}
