// Package mapred implements the MapReduce execution layer of the
// reproduction: a Hadoop-0.17-style JobTracker/TaskTracker runtime with
// progress scores, speculative execution, fetch-failure handling and task
// kill/re-execution — plus the MOON scheduling extensions (frozen/slow
// straggler separation, suspension detection with inactive instances, a
// global speculative cap, two-phase homestretch replication, and
// hybrid-aware placement on dedicated nodes).
//
// The JobTracker is multi-tenant: Submit enqueues jobs rather than
// rejecting concurrent submissions, and a pluggable SchedPolicy (FIFO,
// fair-share, weighted-fair or strict-priority — the shared
// internal/sched policy family, see policy.go) arbitrates every free
// execution slot between the running jobs. Per-job state — tasks,
// fetch-failure reporters, the schedule sequence, commit polling — lives
// on the Job, so concurrent jobs are fully independent and a single job
// under FIFO behaves exactly like the historical one-job-at-a-time
// tracker.
//
// Tasks are resource models, not user code: a map is "read an input block,
// compute for S seconds, write I bytes of intermediate data through the
// DFS"; a reduce is "shuffle partitions from every map, compute, write
// output". That is precisely the granularity at which the paper's
// evaluation operates (its scheduling experiments even use the sleep app
// with calibrated durations). The live goroutine engine in internal/engine
// runs real user Map/Reduce functions with the same policies.
package mapred

import (
	"fmt"

	"repro/internal/dfs"
)

// Policy selects the scheduling algorithm.
type Policy int

const (
	// PolicyHadoop is stock Hadoop 0.17 speculative scheduling.
	PolicyHadoop Policy = iota
	// PolicyMOON is the paper's two-phase, volatility-aware scheduler.
	PolicyMOON
)

func (p Policy) String() string {
	if p == PolicyMOON {
		return "moon"
	}
	return "hadoop"
}

// SchedConfig parameterizes the JobTracker.
type SchedConfig struct {
	Policy Policy

	// JobPolicy arbitrates execution slots across concurrently running
	// jobs; nil selects FIFO. It is orthogonal to Policy, which governs
	// speculative execution *within* each job.
	JobPolicy SchedPolicy
	// Hybrid enables MOON's awareness of dedicated nodes: speculative
	// and homestretch copies prefer dedicated slots, and tasks that
	// already have an active dedicated copy get the lowest replication
	// priority and skip the homestretch.
	Hybrid bool

	MapSlotsPerNode    int // Hadoop default M = 2
	ReduceSlotsPerNode int // Hadoop default R = 2

	// HeartbeatInterval is the TaskTracker heartbeat / scheduling tick.
	HeartbeatInterval float64

	// TrackerExpiry: a TaskTracker silent this long is declared dead and
	// its task instances are killed (Hadoop default 10 min; the paper
	// sweeps 1/5/10 min for Hadoop and uses 30 min for MOON).
	TrackerExpiry float64

	// SuspensionInterval (MOON): a TaskTracker silent this long is
	// *suspended* — instances become inactive (triggering frozen-task
	// handling) but are not killed.
	SuspensionInterval float64

	// SpeculativeCap is the per-task cap on speculative copies beyond
	// the original (Hadoop default 1). Frozen tasks under MOON ignore it.
	SpeculativeCap int

	// SpecSlotFraction (MOON): cap on concurrent speculative instances,
	// as a fraction of currently available execution slots (paper: 20%).
	// The budget is fleet-wide: concurrently running jobs share it in
	// policy order instead of each claiming a full budget.
	SpecSlotFraction float64

	// HomestretchH and HomestretchR (MOON): the homestretch phase begins
	// when remaining tasks < H% of available slots; each remaining task
	// is then kept at >= R active copies (paper: H=20, R=2).
	HomestretchH float64
	HomestretchR int

	// Straggler criteria (Hadoop): running longer than
	// StragglerMinRuntime with progress at least StragglerGap behind the
	// average.
	StragglerMinRuntime float64
	StragglerGap        float64

	// ReduceSlowstart launches reduces once this fraction of maps
	// finished.
	ReduceSlowstart float64

	// ParallelCopies is the reducer's concurrent fetch limit (Hadoop 5).
	ParallelCopies int

	// FetchRetryInterval is the pause before a reducer retries a failed
	// fetch.
	FetchRetryInterval float64

	// FetchReportThreshold: a reducer notifies the JobTracker about a
	// map output only after this many failed fetch attempts of its own
	// (Hadoop reducers penalize and retry a host several times before
	// sending a fetch-failure notification).
	FetchReportThreshold int

	// HadoopFetchFailureFraction: re-execute a map when more than this
	// fraction of running reducers report fetch failures against it.
	HadoopFetchFailureFraction float64

	// MoonFetchFailureCount: after this many fetch failures for one map
	// output, MOON queries the DFS for live replicas and re-executes the
	// map immediately if none exist.
	MoonFetchFailureCount int

	// FastFetchReaction applies the MOON query rule above even under the
	// Hadoop policy. The paper found stock Hadoop's >50%-of-reducers
	// rule so slow that "a typical job runs for hours" and patched the
	// same remedy into its augmented Hadoop baseline (Section VI-B); the
	// Hadoop-VO runs of Figure 7 use this flag.
	FastFetchReaction bool

	// InputReadRetries bounds how many times a map attempt re-polls the
	// DFS for its input block during churn before the attempt fails.
	InputReadRetries int

	// MaxTaskAttempts aborts the job when any single task fails this
	// many times (Hadoop kills a job after 4 failed attempts of a task).
	MaxTaskAttempts int
}

// DefaultSchedConfig returns the paper's settings for each policy.
func DefaultSchedConfig(p Policy) SchedConfig {
	cfg := SchedConfig{
		Policy:                     p,
		MapSlotsPerNode:            2,
		ReduceSlotsPerNode:         2,
		HeartbeatInterval:          3,
		TrackerExpiry:              600, // Hadoop default: 10 min
		SuspensionInterval:         0,
		SpeculativeCap:             1,
		SpecSlotFraction:           0.2,
		HomestretchH:               20,
		HomestretchR:               2,
		StragglerMinRuntime:        60,
		StragglerGap:               0.2,
		ReduceSlowstart:            0.05,
		ParallelCopies:             5,
		FetchRetryInterval:         15,
		FetchReportThreshold:       3,
		HadoopFetchFailureFraction: 0.5,
		InputReadRetries:           40,
		MoonFetchFailureCount:      3,
		MaxTaskAttempts:            12,
	}
	if p == PolicyMOON {
		cfg.TrackerExpiry = 1800 // 30 min
		cfg.SuspensionInterval = 60
	}
	return cfg
}

// Validate rejects incoherent scheduler configurations.
func (c SchedConfig) Validate() error {
	if c.MapSlotsPerNode <= 0 || c.ReduceSlotsPerNode <= 0 {
		return fmt.Errorf("mapred: slots per node must be positive")
	}
	if c.Policy == PolicyMOON && c.SuspensionInterval >= c.TrackerExpiry {
		return fmt.Errorf("mapred: suspension interval %v must be < tracker expiry %v",
			c.SuspensionInterval, c.TrackerExpiry)
	}
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("mapred: heartbeat interval must be positive")
	}
	if c.MaxTaskAttempts < 1 {
		return fmt.Errorf("mapred: max task attempts must be >= 1")
	}
	return nil
}

// JobConfig describes one MapReduce job as a resource model.
type JobConfig struct {
	Name string

	// Priority is the job's strict-priority rank (higher wins every slot
	// offer under the StrictPriority policy; other policies ignore it).
	// Zero is the default rank, so unprioritized jobs tie and fall back
	// to submission order.
	Priority int

	NumMaps    int
	NumReduces int

	// InputFile is the staged DFS input; map i reads block i.
	InputFile string

	// MapCPU / ReduceCPU are per-task compute seconds (excluding all
	// I/O, which is simulated through the DFS and network).
	MapCPU    float64
	ReduceCPU float64

	// IntermediatePerMap is each map's output size in bytes, written to
	// the DFS with IntermediateClass/IntermediateFactor. Every reducer
	// fetches 1/NumReduces of it during shuffle.
	IntermediatePerMap float64
	IntermediateClass  dfs.FileClass
	IntermediateFactor dfs.Factor

	// OutputPerReduce is each reduce's output size in bytes. Under MOON
	// it is written opportunistic and committed (converted to reliable
	// and topped up) at job end; under Hadoop it is written directly at
	// OutputFactor.
	OutputPerReduce float64
	OutputFactor    dfs.Factor

	// SkipInputRead makes maps start computing without reading an input
	// block — the sleep app's behaviour (its splits are synthetic, so
	// the paper's scheduling experiments exercise no input I/O).
	SkipInputRead bool
}

// Validate rejects impossible job descriptions.
func (c JobConfig) Validate() error {
	if c.NumMaps <= 0 || c.NumReduces < 0 {
		return fmt.Errorf("mapred: job %q needs maps > 0, reduces >= 0", c.Name)
	}
	if c.MapCPU < 0 || c.ReduceCPU < 0 {
		return fmt.Errorf("mapred: job %q has negative compute time", c.Name)
	}
	if c.IntermediatePerMap < 0 || c.OutputPerReduce < 0 {
		return fmt.Errorf("mapred: job %q has negative data sizes", c.Name)
	}
	if err := c.IntermediateFactor.Validate(); err != nil && c.IntermediatePerMap > 0 {
		return err
	}
	if err := c.OutputFactor.Validate(); err != nil && c.OutputPerReduce > 0 && c.NumReduces > 0 {
		return err
	}
	return nil
}
