package mapred

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// JobTracker is the master: it owns the task trackers, assigns tasks on
// heartbeats, detects suspended and dead trackers, drives speculative
// execution under the configured policy, and reacts to fetch failures.
//
// The tracker schedules a queue of concurrently running jobs: Submit
// enqueues (it never rejects a job because another is running), and the
// configured SchedPolicy — FIFO, fair-share, weighted-fair or
// strict-priority — arbitrates every free slot between the running jobs.
// Queueing and arbitration are delegated to the backend-agnostic
// scheduling core (internal/sched), the same code the live goroutine
// engine schedules with. All per-job bookkeeping (tasks, fetch-failure
// reporters, schedule sequence, commit polling) lives on the Job, so jobs
// are fully independent; with a single submitted job the tracker behaves
// exactly like the paper's one-job-at-a-time evaluation harness.
type JobTracker struct {
	sim *sim.Simulation
	cl  *cluster.Cluster
	fs  *dfs.FileSystem
	net *netmodel.Network
	cfg SchedConfig

	trackers []*TaskTracker
	// hybridOrder lists trackers dedicated-first, precomputed once (the
	// fleet is fixed) so the heartbeat's speculative pass never allocates.
	hybridOrder []*TaskTracker

	// queue holds every submitted job in submission order (terminal jobs
	// included, so callers can read profiles after completion) and
	// computes the policy's slot-offer order with reused scratch.
	// Policies receive runnable jobs in submission order, so "tie-break
	// by submission order" falls out of sort stability.
	queue *sched.Queue[*Job]

	collector *metrics.Collector
	inst      jtInstruments

	// Tick-scoped caches (see tickcache.go). Valid only between beginTick
	// and endTick; mut-guarded entries are additionally discarded when
	// tickMut moves (a detach or map-output invalidation ran mid-tick).
	inTick       bool
	tickMut      uint64
	slotsCached  bool
	cachedSlots  int
	specCached   bool
	specMut      uint64
	cachedSpec   int
	noPending    [2]bool // per TaskType: no job has a pending task
	noPendingMut [2]uint64
	noSpec       [2]bool // per TaskType: no tracker can get a backup copy
	noSpecMut    [2]uint64
	// Padded per-worker partials for the heartbeat's sharded slot scans,
	// reused across ticks so the heartbeat never allocates.
	slotParts []sim.Padded[int]
	occParts  []sim.Padded[occTally]
}

// jtInstruments are the scheduler's metric handles: slot occupancy per
// heartbeat, launch/speculation timelines, and speculative-outcome
// counters. Per-job instruments (queue wait, makespan) are created at
// Submit, scoped by job name. Nil handles no-op.
type jtInstruments struct {
	slotOcc      *metrics.Series
	runningJobs  *metrics.Series
	launches     *metrics.Counter
	specIssued   *metrics.Counter
	specWon      *metrics.Counter
	specWasted   *metrics.Counter
	kills        *metrics.Counter
	invalidated  *metrics.Counter
	fetchReports *metrics.Counter
	// Task-duration distributions (launch → success of each winning
	// attempt), one histogram per task type — the simulated counterpart
	// of the live engine's task_duration_seconds.
	mapDur    *metrics.Histogram
	reduceDur *metrics.Histogram
}

// Instrument registers MapReduce-layer observability on c: a sampled
// slot-occupancy series (fraction of live execution slots in use, observed
// every heartbeat — the paper's slot-utilization-under-churn view), running
// job counts, task-launch and speculative timelines, speculative outcomes
// (won vs wasted), kills, map-output invalidations and fetch-failure
// reports, plus per-job queue-wait and makespan gauges. Collection is
// passive: scheduling decisions never read an instrument.
func (jt *JobTracker) Instrument(c *metrics.Collector) {
	if c == nil {
		return
	}
	jt.collector = c
	jt.inst = jtInstruments{
		slotOcc:      c.SampleSeries(metrics.LayerMapred, "slot_occupancy", ""),
		runningJobs:  c.SampleSeries(metrics.LayerMapred, "running_jobs", ""),
		launches:     c.TimedCounter(metrics.LayerMapred, "task_launches", ""),
		specIssued:   c.TimedCounter(metrics.LayerMapred, "speculative_issued", ""),
		specWon:      c.Counter(metrics.LayerMapred, "speculative_won", ""),
		specWasted:   c.Counter(metrics.LayerMapred, "speculative_wasted", ""),
		kills:        c.Counter(metrics.LayerMapred, "attempts_killed", ""),
		invalidated:  c.Counter(metrics.LayerMapred, "map_output_invalidations", ""),
		fetchReports: c.TimedCounter(metrics.LayerMapred, "fetch_failure_reports", ""),
		mapDur:       c.Histogram(metrics.LayerMapred, "task_duration_seconds", "map"),
		reduceDur:    c.Histogram(metrics.LayerMapred, "task_duration_seconds", "reduce"),
	}
}

// NewJobTracker wires the runtime to the cluster, DFS and network.
func NewJobTracker(s *sim.Simulation, cl *cluster.Cluster, fs *dfs.FileSystem, net *netmodel.Network, cfg SchedConfig) (*JobTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	jt := &JobTracker{sim: s, cl: cl, fs: fs, net: net, cfg: cfg}
	// The queue arbitrates with the configured policy (nil = FIFO); only
	// running jobs receive slots (committing jobs occupy no slots).
	jt.queue = sched.NewQueue(cfg.JobPolicy, func(j *Job) bool { return j.state == JobRunning })
	for _, n := range cl.Nodes {
		tt := &TaskTracker{node: n, mapSlots: cfg.MapSlotsPerNode, reduceSlots: cfg.ReduceSlotsPerNode}
		jt.trackers = append(jt.trackers, tt)
		node := n
		n.Watch(func(_ *cluster.Node, available bool) { jt.trackerChanged(node, available) })
	}
	jt.hybridOrder = append(jt.hybridOrder, jt.dedicatedTrackers()...)
	jt.hybridOrder = append(jt.hybridOrder, jt.volatileTrackers()...)
	s.Ticker(cfg.HeartbeatInterval, "jt.heartbeat", jt.tick)
	return jt, nil
}

// Submit validates and enqueues a job; it competes for slots immediately
// and on every subsequent heartbeat. Concurrently running jobs share the
// cluster under the tracker's SchedPolicy. onDone fires when the job
// succeeds or fails.
func (jt *JobTracker) Submit(cfg JobConfig, onDone func(*Job)) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !jt.fs.Exists(cfg.InputFile) {
		return nil, fmt.Errorf("mapred: input file %q not staged", cfg.InputFile)
	}
	j := &Job{cfg: cfg, submittedAt: jt.sim.Now(), onDone: onDone}
	if jt.collector != nil {
		j.mQueueWait = jt.collector.Gauge(metrics.LayerMapred, "queue_wait_seconds", cfg.Name)
		j.mMakespan = jt.collector.Gauge(metrics.LayerMapred, "makespan_seconds", cfg.Name)
	}
	for i := 0; i < cfg.NumMaps; i++ {
		j.maps = append(j.maps, &Task{Type: MapTask, Index: i, job: j})
	}
	for i := 0; i < cfg.NumReduces; i++ {
		j.reduces = append(j.reduces, &Task{Type: ReduceTask, Index: i, job: j})
	}
	j.fetchReporters = make([]map[int]bool, cfg.NumMaps)
	if err := jt.queue.Submit(j); err != nil {
		// Attempt output files are named after the job, so two live jobs
		// with one name would collide in the DFS.
		return nil, fmt.Errorf("mapred: %w", err)
	}
	jt.tick() // assign immediately rather than waiting a heartbeat
	return j, nil
}

// Job returns the most recently submitted job (may be finished), or nil
// before the first submission.
func (jt *JobTracker) Job() *Job {
	j, ok := jt.queue.Latest()
	if !ok {
		return nil
	}
	return j
}

// Jobs returns every submitted job in submission order, terminal jobs
// included (read-only view).
func (jt *JobTracker) Jobs() []*Job { return jt.queue.Jobs() }

// RunningJobs counts jobs that have not reached a terminal state.
func (jt *JobTracker) RunningJobs() int { return jt.queue.Running() }

// Policy returns the active slot-arbitration policy.
func (jt *JobTracker) Policy() SchedPolicy { return jt.queue.Policy() }

// --- tracker liveness -------------------------------------------------------

func (jt *JobTracker) trackerChanged(n *cluster.Node, available bool) {
	tt := jt.trackers[n.ID]
	if !available {
		// Physical effect: compute on the node freezes immediately.
		for _, in := range tt.running {
			jt.pauseCompute(in)
		}
		// Master-side detection, driven by missing heartbeats.
		if jt.cfg.SuspensionInterval > 0 {
			tt.suspendEv = jt.sim.After(jt.cfg.SuspensionInterval, "jt.suspect", func() {
				tt.suspected = true
				for _, in := range tt.running {
					if !in.inactive {
						in.inactive = true
						in.task.job.attempts.Inactive++
					}
				}
			})
		}
		tt.expireEv = jt.sim.After(jt.cfg.TrackerExpiry, "jt.expire", func() {
			tt.expired = true
			tt.suspected = false
			for _, in := range append([]*Instance(nil), tt.running...) {
				jt.killInstance(in, "tracker expired")
			}
		})
		return
	}
	jt.sim.Cancel(tt.suspendEv)
	jt.sim.Cancel(tt.expireEv)
	tt.suspendEv, tt.expireEv = sim.Event{}, sim.Event{}
	tt.expired = false
	tt.suspected = false
	for _, in := range tt.running {
		if in.inactive {
			in.inactive = false
			in.task.job.attempts.Inactive--
		}
		jt.resumeCompute(in)
		if in.shuffle != nil && in.phase == phaseShuffle {
			in.shuffle.pump()
		}
	}
}

// availableSlots counts execution slots on live trackers (map + reduce),
// the paper's base for both the speculative cap and the homestretch
// threshold. Within a tick the count is computed once — availability and
// expiry only change through sim events, which never fire mid-tick — and
// the scan itself fans across the shard pool on large fleets.
func (jt *JobTracker) availableSlots() int {
	if jt.inTick && jt.slotsCached {
		return jt.cachedSlots
	}
	n := jt.countAvailableSlots()
	if jt.inTick {
		jt.cachedSlots, jt.slotsCached = n, true
	}
	return n
}

// speculativeActive counts running, *active* speculative attempts of one
// job. Inactive copies (stranded on suspended trackers) do not consume the
// speculative budget — otherwise frozen speculative copies would wedge the
// cap and block exactly the backups that frozen-task handling exists to
// issue.
func (jt *JobTracker) speculativeActive(j *Job) int {
	n := 0
	for _, tasks := range [2][]*Task{j.maps, j.reduces} {
		for _, t := range tasks {
			for _, in := range t.instances {
				if in.running() && in.speculative && !in.inactive {
					n++
				}
			}
		}
	}
	return n
}

// speculativeActiveTotal sums active speculative attempts across every
// live job: MOON's SpecSlotFraction budget bounds the *fleet's* backup
// capacity, so concurrent jobs share it rather than multiplying it. With
// one job this equals speculativeActive of that job.
//
// Within a tick the scan runs once and the count is then maintained
// incrementally: launch bumps it for each speculative start (the only way
// it grows mid-tick), and any detach invalidates it via tickMut (the only
// way it shrinks mid-tick).
func (jt *JobTracker) speculativeActiveTotal() int {
	if jt.inTick && jt.specCached && jt.specMut == jt.tickMut {
		return jt.cachedSpec
	}
	n := 0
	for _, j := range jt.queue.Jobs() {
		if !j.Done() {
			n += jt.speculativeActive(j)
		}
	}
	if jt.inTick {
		jt.cachedSpec, jt.specCached, jt.specMut = n, true, jt.tickMut
	}
	return n
}

// --- assignment --------------------------------------------------------------

// jobOrder returns the schedulable jobs in the policy's slot-offer order.
// It is recomputed on every offer: fair-share ranks by live attempts,
// which change with each launch, and a job may fail or start committing
// mid-tick. The queue reuses its scratch, so the heartbeat never
// allocates per offer.
func (jt *JobTracker) jobOrder() []*Job { return jt.queue.Order() }

// tick is the heartbeat: fill free slots with pending work, then with
// speculative copies per policy, across every running job.
//
// Both passes short-circuit through the tick caches: once a pick proves no
// further launch of its kind is possible on any tracker (a fact that stays
// true until a mutation bumps tickMut), the remaining trackers are skipped.
// The skipped iterations would have launched nothing and have no side
// effects, so the short-circuit is unobservable — it just turns the idle
// part of the heartbeat from O(trackers × tasks) into O(1).
func (jt *JobTracker) tick() {
	jt.beginTick()
	defer jt.endTick()
	jt.observeOccupancy()
	if len(jt.jobOrder()) == 0 {
		return
	}
	// Pass 1: pending (never-running) tasks, volatile and dedicated
	// trackers alike, in node order; each free slot is offered to the
	// jobs in policy order.
	for _, tt := range jt.trackers {
		if jt.pendingExhausted(MapTask) && jt.pendingExhausted(ReduceTask) {
			break
		}
		for !jt.pendingExhausted(MapTask) && tt.freeSlots(MapTask) > 0 {
			t := jt.pickPendingMapAny(tt)
			if t == nil {
				jt.markPendingExhausted(MapTask)
				break
			}
			jt.launch(t, tt, false)
		}
		for !jt.pendingExhausted(ReduceTask) && tt.freeSlots(ReduceTask) > 0 {
			t := jt.pickPendingReduceAny()
			if t == nil {
				jt.markPendingExhausted(ReduceTask)
				break
			}
			jt.launch(t, tt, false)
		}
	}
	// Pass 2: speculative copies. Under MOON-Hybrid dedicated slots are
	// offered first so backup copies land on reliable machines.
	order := jt.trackers
	if jt.cfg.Policy == PolicyMOON && jt.cfg.Hybrid {
		order = jt.hybridOrder
	}
	for _, tt := range order {
		if jt.specExhausted(MapTask) && jt.specExhausted(ReduceTask) {
			break
		}
		for !jt.specExhausted(MapTask) && tt.freeSlots(MapTask) > 0 {
			t := jt.pickSpeculativeAny(MapTask, tt)
			if t == nil {
				break
			}
			jt.launch(t, tt, true)
		}
		for !jt.specExhausted(ReduceTask) && tt.freeSlots(ReduceTask) > 0 {
			t := jt.pickSpeculativeAny(ReduceTask, tt)
			if t == nil {
				break
			}
			jt.launch(t, tt, true)
		}
	}
}

// observeOccupancy samples slot occupancy and the running-job count into
// the metrics bus once per heartbeat. It is a pure read of tracker state,
// skipped entirely when no collector is attached; the scan itself is the
// heartbeat's sharded slot-evaluation phase (see countOccupancy).
func (jt *JobTracker) observeOccupancy() {
	if jt.inst.slotOcc == nil {
		return
	}
	total, used := jt.countOccupancy()
	now := jt.sim.Now()
	if total > 0 {
		jt.inst.slotOcc.Observe(now, float64(used)/float64(total))
	}
	jt.inst.runningJobs.Observe(now, float64(jt.RunningJobs()))
}

// pickPendingMapAny offers a free map slot to each job in policy order.
func (jt *JobTracker) pickPendingMapAny(tt *TaskTracker) *Task {
	for _, j := range jt.jobOrder() {
		if t := jt.pickPendingMap(j, tt); t != nil {
			return t
		}
	}
	return nil
}

// pickPendingReduceAny offers a free reduce slot to each job in policy
// order.
func (jt *JobTracker) pickPendingReduceAny() *Task {
	for _, j := range jt.jobOrder() {
		if t := jt.pickPendingReduce(j); t != nil {
			return t
		}
	}
	return nil
}

// pickSpeculativeAny offers a speculative slot to each job in policy
// order. The fleet-wide speculative count is computed once per offer (it
// only changes when a launch ends the offer) rather than once per job.
//
// When every job declines for tracker-independent reasons (global cap hit,
// precondition failed, empty candidate bases), the nil is recorded in the
// tick cache: launches only shrink candidate sets within a tick, so no
// later tracker could have received a copy either, and the rest of pass 2
// short-circuits. A nil caused by a tracker-local filter (the task already
// runs here) is never recorded — another tracker may still qualify.
func (jt *JobTracker) pickSpeculativeAny(typ TaskType, tt *TaskTracker) *Task {
	specActive := -1
	if jt.cfg.Policy != PolicyHadoop {
		specActive = jt.speculativeActiveTotal()
	}
	certain := true
	for _, j := range jt.jobOrder() {
		t, c := jt.pickSpeculative(j, typ, tt, specActive)
		if t != nil {
			return t
		}
		certain = certain && c
	}
	if certain {
		jt.markSpecExhausted(typ)
	}
	return nil
}

func (jt *JobTracker) dedicatedTrackers() []*TaskTracker {
	var out []*TaskTracker
	for _, tt := range jt.trackers {
		if tt.node.IsDedicated() {
			out = append(out, tt)
		}
	}
	return out
}

func (jt *JobTracker) volatileTrackers() []*TaskTracker {
	var out []*TaskTracker
	for _, tt := range jt.trackers {
		if !tt.node.IsDedicated() {
			out = append(out, tt)
		}
	}
	return out
}

// pickPendingMap returns the job's next never-running (or fully killed)
// map, preferring input-local tasks for the requesting tracker.
func (jt *JobTracker) pickPendingMap(j *Job, tt *TaskTracker) *Task {
	var firstAny *Task
	for _, t := range j.maps {
		if t.completed || t.runningInstances() > 0 {
			continue
		}
		if jt.isInputLocal(t, tt.node) {
			return t
		}
		if firstAny == nil {
			firstAny = t
		}
	}
	return firstAny
}

func (jt *JobTracker) isInputLocal(t *Task, n *cluster.Node) bool {
	return jt.fs.HasReplicaOn(dfs.BlockID{File: t.job.cfg.InputFile, Index: t.Index}, n.ID)
}

// pickPendingReduce returns the job's next never-running reduce once the
// slowstart threshold of completed maps is met.
func (jt *JobTracker) pickPendingReduce(j *Job) *Task {
	need := int(math.Ceil(jt.cfg.ReduceSlowstart * float64(j.cfg.NumMaps)))
	if j.mapsCompleted < need {
		return nil
	}
	for _, t := range j.reduces {
		if !t.completed && t.runningInstances() == 0 {
			return t
		}
	}
	return nil
}

// pickSpeculative selects a task of the job for a backup copy under the
// active policy. specActive is the precomputed fleet-wide active
// speculative count (unused under Hadoop). The second result reports, for
// a nil pick, whether the refusal was tracker-independent — i.e. whether
// offering any other tracker this tick would also come up empty.
func (jt *JobTracker) pickSpeculative(j *Job, typ TaskType, tt *TaskTracker, specActive int) (*Task, bool) {
	if jt.cfg.Policy == PolicyHadoop {
		return jt.pickSpeculativeHadoop(j, typ, tt)
	}
	return jt.pickSpeculativeMOON(j, typ, tt, specActive)
}

// tasksOf returns the job's task list of the given type.
func (jt *JobTracker) tasksOf(j *Job, typ TaskType) []*Task {
	if typ == MapTask {
		return j.maps
	}
	return j.reduces
}

// avgProgress is the mean progress over all of a job's tasks of a type
// (completed tasks count as 1) — Hadoop's straggler baseline.
func (jt *JobTracker) avgProgress(j *Job, typ TaskType) float64 {
	tasks := jt.tasksOf(j, typ)
	if len(tasks) == 0 {
		return 0
	}
	now := jt.sim.Now()
	sum := 0.0
	for _, t := range tasks {
		sum += t.progress(now)
	}
	return sum / float64(len(tasks))
}

// isStraggler applies Hadoop's two conditions: the task has been running
// for over a minute and lags the average progress by 0.2 or more.
func (jt *JobTracker) isStraggler(t *Task, avg float64) bool {
	if t.completed || t.runningInstances() == 0 {
		return false
	}
	now := jt.sim.Now()
	oldest := math.MaxFloat64
	for _, in := range t.instances {
		if in.running() && in.startedAt < oldest {
			oldest = in.startedAt
		}
	}
	if now-oldest < jt.cfg.StragglerMinRuntime {
		return false
	}
	return t.progress(now) < avg-jt.cfg.StragglerGap
}

// pickSpeculativeHadoop: stragglers in original scheduling order, one
// backup copy per task, maps preferring local input. Neither the
// precondition nor the candidate filter reads the offering tracker (input
// locality is only a preference), so a nil here is always
// tracker-independent.
func (jt *JobTracker) pickSpeculativeHadoop(j *Job, typ TaskType, tt *TaskTracker) (*Task, bool) {
	// Hadoop only speculates once every task of the type has been
	// scheduled.
	for _, t := range jt.tasksOf(j, typ) {
		if !t.completed && t.attempts == 0 {
			return nil, true
		}
	}
	avg := jt.avgProgress(j, typ)
	var candidates []*Task
	for _, t := range jt.tasksOf(j, typ) {
		if jt.isStraggler(t, avg) && t.runningInstances() < 1+jt.cfg.SpeculativeCap {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return nil, true
	}
	sort.SliceStable(candidates, func(a, b int) bool {
		return candidates[a].scheduledOrder < candidates[b].scheduledOrder
	})
	if typ == MapTask {
		for _, t := range candidates {
			if jt.isInputLocal(t, tt.node) {
				return t, true
			}
		}
	}
	return candidates[0], true
}

// pickSpeculativeMOON: frozen tasks first (any number of copies), then slow
// tasks (respecting the per-task cap), then homestretch replication — all
// subject to the global cap of SpecSlotFraction × available slots, which
// is shared by every running job (concurrent jobs compete for the backup
// budget in policy order rather than each claiming a full budget). Under
// Hybrid, tasks that already have an active dedicated copy sort last and
// skip the homestretch.
func (jt *JobTracker) pickSpeculativeMOON(j *Job, typ TaskType, tt *TaskTracker, specActive int) (*Task, bool) {
	if float64(specActive) >= jt.cfg.SpecSlotFraction*float64(jt.availableSlots()) {
		return nil, true // the global cap binds every tracker alike
	}
	// blocked records a candidate that passed every tracker-independent
	// predicate but already runs on this tracker: a nil pick is then not
	// evidence that other trackers would also come up empty.
	blocked := false
	now := jt.sim.Now()
	runningOnTT := func(t *Task) bool {
		for _, in := range t.instances {
			if in.running() && in.tracker == tt {
				return true
			}
		}
		return false
	}
	rank := func(t *Task) (int, float64) {
		ded := 0
		if jt.cfg.Hybrid && t.hasActiveDedicatedCopy() {
			ded = 1
		}
		return ded, t.progress(now)
	}
	pickBest := func(cands []*Task) *Task {
		var best *Task
		var bestDed int
		var bestProg float64
		for _, t := range cands {
			d, p := rank(t)
			if best == nil || d < bestDed || (d == bestDed && p < bestProg) {
				best, bestDed, bestProg = t, d, p
			}
		}
		return best
	}

	// 1) Frozen tasks: every copy inactive; replicate regardless of copy
	// count so progress can always be made.
	var frozen []*Task
	for _, t := range jt.tasksOf(j, typ) {
		if !t.frozen() {
			continue
		}
		if runningOnTT(t) {
			blocked = true
			continue
		}
		frozen = append(frozen, t)
	}
	if t := pickBest(frozen); t != nil {
		return t, true
	}

	// 2) Slow tasks: Hadoop's criteria with the per-task cap.
	avg := jt.avgProgress(j, typ)
	var slow []*Task
	for _, t := range jt.tasksOf(j, typ) {
		if !jt.isStraggler(t, avg) || t.frozen() ||
			t.runningInstances() >= 1+jt.cfg.SpeculativeCap {
			continue
		}
		if runningOnTT(t) {
			blocked = true
			continue
		}
		slow = append(slow, t)
	}
	if t := pickBest(slow); t != nil {
		return t, true
	}

	// 3) Homestretch: near job completion, keep >= R active copies of
	// every remaining task.
	if float64(j.remainingTasks()) < jt.cfg.HomestretchH/100*float64(jt.availableSlots()) {
		var hs []*Task
		for _, t := range jt.tasksOf(j, typ) {
			if t.completed || t.runningInstances() == 0 {
				continue
			}
			if jt.cfg.Hybrid && t.hasActiveDedicatedCopy() {
				continue
			}
			if t.activeInstances() >= jt.cfg.HomestretchR {
				continue
			}
			if runningOnTT(t) {
				blocked = true
				continue
			}
			hs = append(hs, t)
		}
		if t := pickBest(hs); t != nil {
			return t, true
		}
	}
	return nil, !blocked
}
