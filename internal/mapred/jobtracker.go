package mapred

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// JobTracker is the master: it owns the task trackers, assigns tasks on
// heartbeats, detects suspended and dead trackers, drives speculative
// execution under the configured policy, and reacts to fetch failures.
//
// Like the paper's evaluation, it runs one job at a time.
type JobTracker struct {
	sim *sim.Simulation
	cl  *cluster.Cluster
	fs  *dfs.FileSystem
	net *netmodel.Network
	cfg SchedConfig

	trackers []*TaskTracker
	// hybridOrder lists trackers dedicated-first, precomputed once (the
	// fleet is fixed) so the heartbeat's speculative pass never allocates.
	hybridOrder []*TaskTracker
	job         *Job

	scheduleSeq int

	// hadoopFetchReporters tracks, per map index, the distinct reduce
	// tasks reporting fetch failures (Hadoop's >50% rule).
	hadoopFetchReporters []map[int]bool

	commitTicker func()
}

// NewJobTracker wires the runtime to the cluster, DFS and network.
func NewJobTracker(s *sim.Simulation, cl *cluster.Cluster, fs *dfs.FileSystem, net *netmodel.Network, cfg SchedConfig) (*JobTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	jt := &JobTracker{sim: s, cl: cl, fs: fs, net: net, cfg: cfg}
	for _, n := range cl.Nodes {
		tt := &TaskTracker{node: n, mapSlots: cfg.MapSlotsPerNode, reduceSlots: cfg.ReduceSlotsPerNode}
		jt.trackers = append(jt.trackers, tt)
		node := n
		n.Watch(func(_ *cluster.Node, available bool) { jt.trackerChanged(node, available) })
	}
	jt.hybridOrder = append(jt.hybridOrder, jt.dedicatedTrackers()...)
	jt.hybridOrder = append(jt.hybridOrder, jt.volatileTrackers()...)
	s.Ticker(cfg.HeartbeatInterval, "jt.heartbeat", jt.tick)
	return jt, nil
}

// Submit starts a job; onDone fires when it succeeds or fails.
func (jt *JobTracker) Submit(cfg JobConfig, onDone func(*Job)) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if jt.job != nil && !jt.job.Done() {
		return nil, fmt.Errorf("mapred: a job is already running")
	}
	if !jt.fs.Exists(cfg.InputFile) {
		return nil, fmt.Errorf("mapred: input file %q not staged", cfg.InputFile)
	}
	j := &Job{cfg: cfg, submittedAt: jt.sim.Now(), onDone: onDone}
	for i := 0; i < cfg.NumMaps; i++ {
		j.maps = append(j.maps, &Task{Type: MapTask, Index: i, job: j})
	}
	for i := 0; i < cfg.NumReduces; i++ {
		j.reduces = append(j.reduces, &Task{Type: ReduceTask, Index: i, job: j})
	}
	jt.job = j
	jt.hadoopFetchReporters = make([]map[int]bool, cfg.NumMaps)
	jt.tick() // assign immediately rather than waiting a heartbeat
	return j, nil
}

// Job returns the current job (may be finished).
func (jt *JobTracker) Job() *Job { return jt.job }

// --- tracker liveness -------------------------------------------------------

func (jt *JobTracker) trackerChanged(n *cluster.Node, available bool) {
	tt := jt.trackers[n.ID]
	if !available {
		// Physical effect: compute on the node freezes immediately.
		for _, in := range tt.running {
			jt.pauseCompute(in)
		}
		// Master-side detection, driven by missing heartbeats.
		if jt.cfg.SuspensionInterval > 0 {
			tt.suspendEv = jt.sim.After(jt.cfg.SuspensionInterval, "jt.suspect", func() {
				tt.suspected = true
				for _, in := range tt.running {
					in.inactive = true
				}
			})
		}
		tt.expireEv = jt.sim.After(jt.cfg.TrackerExpiry, "jt.expire", func() {
			tt.expired = true
			tt.suspected = false
			for _, in := range append([]*Instance(nil), tt.running...) {
				jt.killInstance(in, "tracker expired")
			}
		})
		return
	}
	jt.sim.Cancel(tt.suspendEv)
	jt.sim.Cancel(tt.expireEv)
	tt.suspendEv, tt.expireEv = sim.Event{}, sim.Event{}
	tt.expired = false
	tt.suspected = false
	for _, in := range tt.running {
		in.inactive = false
		jt.resumeCompute(in)
		if in.shuffle != nil && in.phase == phaseShuffle {
			in.shuffle.pump()
		}
	}
}

// availableSlots counts execution slots on live trackers (map + reduce),
// the paper's base for both the speculative cap and the homestretch
// threshold.
func (jt *JobTracker) availableSlots() int {
	n := 0
	for _, tt := range jt.trackers {
		if tt.node.Available() && !tt.expired {
			n += tt.mapSlots + tt.reduceSlots
		}
	}
	return n
}

// speculativeActive counts running, *active* speculative attempts of the
// job. Inactive copies (stranded on suspended trackers) do not consume the
// speculative budget — otherwise frozen speculative copies would wedge the
// cap and block exactly the backups that frozen-task handling exists to
// issue.
func (jt *JobTracker) speculativeActive() int {
	if jt.job == nil {
		return 0
	}
	n := 0
	for _, tasks := range [2][]*Task{jt.job.maps, jt.job.reduces} {
		for _, t := range tasks {
			for _, in := range t.instances {
				if in.running() && in.speculative && !in.inactive {
					n++
				}
			}
		}
	}
	return n
}

// --- assignment --------------------------------------------------------------

// tick is the heartbeat: fill free slots with pending work, then with
// speculative copies per policy, then check job completion progress.
func (jt *JobTracker) tick() {
	j := jt.job
	if j == nil || j.Done() || j.state == JobCommitting {
		return
	}
	// Pass 1: pending (never-running) tasks, volatile and dedicated
	// trackers alike, in node order.
	for _, tt := range jt.trackers {
		for tt.freeSlots(MapTask) > 0 {
			t := jt.pickPendingMap(tt)
			if t == nil {
				break
			}
			jt.launch(t, tt, false)
		}
		for tt.freeSlots(ReduceTask) > 0 {
			t := jt.pickPendingReduce()
			if t == nil {
				break
			}
			jt.launch(t, tt, false)
		}
	}
	// Pass 2: speculative copies. Under MOON-Hybrid dedicated slots are
	// offered first so backup copies land on reliable machines.
	order := jt.trackers
	if jt.cfg.Policy == PolicyMOON && jt.cfg.Hybrid {
		order = jt.hybridOrder
	}
	for _, tt := range order {
		for tt.freeSlots(MapTask) > 0 {
			t := jt.pickSpeculative(MapTask, tt)
			if t == nil {
				break
			}
			jt.launch(t, tt, true)
		}
		for tt.freeSlots(ReduceTask) > 0 {
			t := jt.pickSpeculative(ReduceTask, tt)
			if t == nil {
				break
			}
			jt.launch(t, tt, true)
		}
	}
}

func (jt *JobTracker) dedicatedTrackers() []*TaskTracker {
	var out []*TaskTracker
	for _, tt := range jt.trackers {
		if tt.node.IsDedicated() {
			out = append(out, tt)
		}
	}
	return out
}

func (jt *JobTracker) volatileTrackers() []*TaskTracker {
	var out []*TaskTracker
	for _, tt := range jt.trackers {
		if !tt.node.IsDedicated() {
			out = append(out, tt)
		}
	}
	return out
}

// pickPendingMap returns the next never-running (or fully killed) map,
// preferring input-local tasks for the requesting tracker.
func (jt *JobTracker) pickPendingMap(tt *TaskTracker) *Task {
	var firstAny *Task
	for _, t := range jt.job.maps {
		if t.completed || t.runningInstances() > 0 {
			continue
		}
		if jt.isInputLocal(t, tt.node) {
			return t
		}
		if firstAny == nil {
			firstAny = t
		}
	}
	return firstAny
}

func (jt *JobTracker) isInputLocal(t *Task, n *cluster.Node) bool {
	return jt.fs.HasReplicaOn(dfs.BlockID{File: t.job.cfg.InputFile, Index: t.Index}, n.ID)
}

// pickPendingReduce returns the next never-running reduce once the
// slowstart threshold of completed maps is met.
func (jt *JobTracker) pickPendingReduce() *Task {
	j := jt.job
	need := int(math.Ceil(jt.cfg.ReduceSlowstart * float64(j.cfg.NumMaps)))
	if j.mapsCompleted < need {
		return nil
	}
	for _, t := range j.reduces {
		if !t.completed && t.runningInstances() == 0 {
			return t
		}
	}
	return nil
}

// pickSpeculative selects a task for a backup copy under the active policy.
func (jt *JobTracker) pickSpeculative(typ TaskType, tt *TaskTracker) *Task {
	if jt.cfg.Policy == PolicyHadoop {
		return jt.pickSpeculativeHadoop(typ, tt)
	}
	return jt.pickSpeculativeMOON(typ, tt)
}

// tasksOf returns the job's task list of the given type.
func (jt *JobTracker) tasksOf(typ TaskType) []*Task {
	if typ == MapTask {
		return jt.job.maps
	}
	return jt.job.reduces
}

// avgProgress is the mean progress over all tasks of a type (completed
// tasks count as 1) — Hadoop's straggler baseline.
func (jt *JobTracker) avgProgress(typ TaskType) float64 {
	tasks := jt.tasksOf(typ)
	if len(tasks) == 0 {
		return 0
	}
	now := jt.sim.Now()
	sum := 0.0
	for _, t := range tasks {
		sum += t.progress(now)
	}
	return sum / float64(len(tasks))
}

// isStraggler applies Hadoop's two conditions: the task has been running
// for over a minute and lags the average progress by 0.2 or more.
func (jt *JobTracker) isStraggler(t *Task, avg float64) bool {
	if t.completed || t.runningInstances() == 0 {
		return false
	}
	now := jt.sim.Now()
	oldest := math.MaxFloat64
	for _, in := range t.instances {
		if in.running() && in.startedAt < oldest {
			oldest = in.startedAt
		}
	}
	if now-oldest < jt.cfg.StragglerMinRuntime {
		return false
	}
	return t.progress(now) < avg-jt.cfg.StragglerGap
}

// pickSpeculativeHadoop: stragglers in original scheduling order, one
// backup copy per task, maps preferring local input.
func (jt *JobTracker) pickSpeculativeHadoop(typ TaskType, tt *TaskTracker) *Task {
	// Hadoop only speculates once every task of the type has been
	// scheduled.
	for _, t := range jt.tasksOf(typ) {
		if !t.completed && t.attempts == 0 {
			return nil
		}
	}
	avg := jt.avgProgress(typ)
	var candidates []*Task
	for _, t := range jt.tasksOf(typ) {
		if jt.isStraggler(t, avg) && t.runningInstances() < 1+jt.cfg.SpeculativeCap {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.SliceStable(candidates, func(a, b int) bool {
		return candidates[a].scheduledOrder < candidates[b].scheduledOrder
	})
	if typ == MapTask {
		for _, t := range candidates {
			if jt.isInputLocal(t, tt.node) {
				return t
			}
		}
	}
	return candidates[0]
}

// pickSpeculativeMOON: frozen tasks first (any number of copies), then slow
// tasks (respecting the per-task cap), then homestretch replication — all
// subject to the global cap of SpecSlotFraction × available slots. Under
// Hybrid, tasks that already have an active dedicated copy sort last and
// skip the homestretch.
func (jt *JobTracker) pickSpeculativeMOON(typ TaskType, tt *TaskTracker) *Task {
	if float64(jt.speculativeActive()) >= jt.cfg.SpecSlotFraction*float64(jt.availableSlots()) {
		return nil
	}
	now := jt.sim.Now()
	runningOnTT := func(t *Task) bool {
		for _, in := range t.instances {
			if in.running() && in.tracker == tt {
				return true
			}
		}
		return false
	}
	rank := func(t *Task) (int, float64) {
		ded := 0
		if jt.cfg.Hybrid && t.hasActiveDedicatedCopy() {
			ded = 1
		}
		return ded, t.progress(now)
	}
	pickBest := func(cands []*Task) *Task {
		var best *Task
		var bestDed int
		var bestProg float64
		for _, t := range cands {
			d, p := rank(t)
			if best == nil || d < bestDed || (d == bestDed && p < bestProg) {
				best, bestDed, bestProg = t, d, p
			}
		}
		return best
	}

	// 1) Frozen tasks: every copy inactive; replicate regardless of copy
	// count so progress can always be made.
	var frozen []*Task
	for _, t := range jt.tasksOf(typ) {
		if t.frozen() && !runningOnTT(t) {
			frozen = append(frozen, t)
		}
	}
	if t := pickBest(frozen); t != nil {
		return t
	}

	// 2) Slow tasks: Hadoop's criteria with the per-task cap.
	avg := jt.avgProgress(typ)
	var slow []*Task
	for _, t := range jt.tasksOf(typ) {
		if jt.isStraggler(t, avg) && !t.frozen() &&
			t.runningInstances() < 1+jt.cfg.SpeculativeCap && !runningOnTT(t) {
			slow = append(slow, t)
		}
	}
	if t := pickBest(slow); t != nil {
		return t
	}

	// 3) Homestretch: near job completion, keep >= R active copies of
	// every remaining task.
	if float64(jt.job.remainingTasks()) < jt.cfg.HomestretchH/100*float64(jt.availableSlots()) {
		var hs []*Task
		for _, t := range jt.tasksOf(typ) {
			if t.completed || t.runningInstances() == 0 || runningOnTT(t) {
				continue
			}
			if jt.cfg.Hybrid && t.hasActiveDedicatedCopy() {
				continue
			}
			if t.activeInstances() < jt.cfg.HomestretchR {
				hs = append(hs, t)
			}
		}
		if t := pickBest(hs); t != nil {
			return t
		}
	}
	return nil
}
