package mapred

import (
	"testing"

	"repro/internal/dfs"
	"repro/internal/trace"
)

// TestWordCountShapedJobUnderChurn runs a wordcount-shaped job (many maps,
// few reduces, small intermediate) under real churn on the MOON stack.
func TestWordCountShapedJobUnderChurn(t *testing.T) {
	outages := map[int][]trace.Interval{
		0: {{Start: 30, End: 300}, {Start: 700, End: 1000}},
		2: {{Start: 100, End: 450}},
		4: {{Start: 10, End: 120}, {Start: 500, End: 900}},
	}
	r := newRig(t, rigOpts{volatiles: 8, dedicated: 2, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON), outages: outages})
	cfg := JobConfig{
		Name:               "wcshape",
		NumMaps:            16,
		NumReduces:         3,
		InputFile:          "wc-in",
		MapCPU:             25,
		ReduceCPU:          10,
		IntermediatePerMap: 5e4,
		IntermediateClass:  dfs.Opportunistic,
		IntermediateFactor: dfs.Factor{D: 1, V: 1},
		OutputPerReduce:    1e5,
		OutputFactor:       dfs.Factor{D: 1, V: 2},
	}
	r.stage(t, cfg, dfs.Factor{D: 1, V: 3})
	j := r.runJob(t, cfg, 2e5)
	if j.State() != JobSucceeded {
		t.Fatalf("state %v: %s", j.State(), j.FailReason())
	}
	for _, rt := range j.reduces {
		if !r.fs.FileFullyReplicated(rt.Output()) {
			t.Fatalf("output %s under-replicated at success", rt.Output())
		}
	}
}

// TestCommitPhaseWaitsForReplication verifies the MOON job-completion rule:
// the job stays in committing state until every output block reaches its
// factor.
func TestCommitPhaseWaitsForReplication(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 2, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON)})
	// Force dedicated declines during the run so outputs lack their
	// dedicated copy at reduce completion and the commit has work to do.
	r.s.Schedule(0.5, "throttle", func() {
		r.fs.SetThrottledForTest(4, true)
		r.fs.SetThrottledForTest(5, true)
	})
	cfg := smallJob("commit1")
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	var sawCommitting bool
	j, err := r.jt.Submit(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := r.s.Ticker(1, "watch", func() {
		if j.State() == JobCommitting {
			sawCommitting = true
			// Release the dedicated tier so the top-up can proceed.
			r.fs.SetThrottledForTest(4, false)
			r.fs.SetThrottledForTest(5, false)
		}
	})
	r.s.RunUntil(1e5)
	stop()
	if j.State() != JobSucceeded {
		t.Fatalf("state %v: %s", j.State(), j.FailReason())
	}
	if !sawCommitting {
		t.Skip("outputs met their factor immediately; commit was instantaneous")
	}
}

// TestHadoopStragglerSpeculation: a task crawling on a suspended node while
// its siblings finish must receive exactly one backup copy under Hadoop.
func TestHadoopStragglerSpeculation(t *testing.T) {
	sched := DefaultSchedConfig(PolicyHadoop)
	sched.TrackerExpiry = 3000 // expiry must not beat speculation
	r := newRig(t, rigOpts{volatiles: 6, dedicated: 0, dfsMode: dfs.ModeHadoop, sched: sched,
		outages: map[int][]trace.Interval{0: {{Start: 5, End: 2500}}}})
	cfg := smallJob("strag")
	cfg.NumMaps = 12 // two waves over 12 slots; node 0's maps strand
	cfg.MapCPU = 100
	cfg.OutputFactor = dfs.Factor{V: 2}
	r.stage(t, cfg, dfs.Factor{V: 3})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(600)
	spec := 0
	for _, mt := range r.jt.Job().maps {
		spec += mt.specLaunches
	}
	if spec == 0 {
		t.Fatal("no speculative copy for stranded maps")
	}
	r.s.RunUntil(1e5)
	if r.jt.Job().State() != JobSucceeded {
		t.Fatalf("job state %v", r.jt.Job().State())
	}
}

// TestAvailableSlotsTracksChurn: slots on down trackers don't count.
func TestAvailableSlotsTracksChurn(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON),
		outages: map[int][]trace.Interval{
			0: {{Start: 10, End: 100}},
			1: {{Start: 10, End: 100}},
		}})
	if got := r.jt.availableSlots(); got != 5*4 {
		t.Fatalf("initial slots %d, want 20", got)
	}
	r.s.RunUntil(50)
	if got := r.jt.availableSlots(); got != 3*4 {
		t.Fatalf("slots during outage %d, want 12", got)
	}
	r.s.RunUntil(200)
	if got := r.jt.availableSlots(); got != 5*4 {
		t.Fatalf("slots after resume %d, want 20", got)
	}
}

// TestReduceProgressThirds: the reduce progress score passes through the
// Hadoop thirds (shuffle ≤ 1/3, compute in (2/3, 1)).
func TestReduceProgressThirds(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON)})
	cfg := smallJob("prog")
	cfg.ReduceCPU = 50
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	sawShuffle, sawCompute := false, false
	stop := r.s.Ticker(1, "probe", func() {
		for _, rt := range r.jt.Job().reduces {
			for _, in := range rt.instances {
				if !in.running() {
					continue
				}
				p := in.progress(r.s.Now())
				switch in.phase {
				case phaseShuffle:
					sawShuffle = true
					if p > 1.0/3+1e-9 {
						t.Errorf("shuffle progress %v > 1/3", p)
					}
				case phaseCompute:
					sawCompute = true
					if p < 2.0/3-1e-9 || p > 1+1e-9 {
						t.Errorf("compute progress %v outside (2/3,1]", p)
					}
				}
			}
		}
	})
	r.s.RunUntil(1e5)
	stop()
	if !sawShuffle || !sawCompute {
		t.Fatalf("phases not observed: shuffle=%v compute=%v", sawShuffle, sawCompute)
	}
}

// TestNumReducesZero: a map-only job succeeds when maps complete.
func TestNumReducesZero(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON)})
	cfg := smallJob("maponly")
	cfg.NumReduces = 0
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	j := r.runJob(t, cfg, 1e5)
	if j.State() != JobSucceeded {
		t.Fatalf("map-only job state %v", j.State())
	}
}
