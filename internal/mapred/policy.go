package mapred

import "repro/internal/sched"

// SchedPolicy arbitrates execution slots across concurrently running jobs.
// It is the shared scheduling core's policy family (internal/sched)
// instantiated with the simulator's job type: on every free-slot offer the
// JobTracker asks the policy to order the runnable jobs, and the first job
// in the order with an eligible task wins the slot. The order is
// recomputed per offer, so policies that rank by live usage (fair-share,
// weighted-fair) react to every launch within a heartbeat.
//
// Task selection *within* a job is unchanged by the policy: pending tasks
// prefer input-local placement, speculative copies follow the configured
// Hadoop/MOON rules, and under MOON-Hybrid the dedicated-first tracker
// ordering is preserved per job.
type SchedPolicy = sched.Policy[*Job]

// FIFO offers every free slot to the earliest-submitted running job first.
// A later job only receives slots the earlier jobs cannot use (the policy
// is work-conserving), so saturating jobs execute essentially serially in
// submission order.
func FIFO() SchedPolicy { return sched.FIFO[*Job]() }

// FairShare splits slots evenly between running jobs: every free slot is
// offered to the job with the fewest *active* task attempts (attempts
// stranded on suspended trackers don't count against a job, mirroring how
// the MOON speculative budget ignores inactive copies), breaking ties by
// submission order. Concurrent jobs therefore make interleaved progress
// instead of queueing behind the first submission.
func FairShare() SchedPolicy { return sched.FairShare[*Job]() }

// WeightedFair splits slots in proportion to per-job weights: every free
// slot is offered to the running job with the smallest active-attempts to
// weight ratio, so a weight-3 job holds three times the slots of a
// weight-1 competitor at steady state. Ties break by submission order,
// and weights are looked up by job name — a job without an entry (or with
// a non-positive weight) runs at weight 1, so WeightedFair(nil)
// degenerates to plain fair-share.
func WeightedFair(weights map[string]float64) SchedPolicy {
	return sched.WeightedFair[*Job](weights)
}

// StrictPriority offers every free slot to the highest-priority running
// job first (JobConfig.Priority, higher wins), with submission order
// breaking ties. There is no preemption: a lower-priority job keeps the
// attempts it already holds, a higher-priority arrival merely wins every
// subsequent offer.
func StrictPriority() SchedPolicy { return sched.StrictPriority[*Job]() }

// JobPolicyNames lists the canonical JobPolicyByName spellings, for flag
// help and `moonbench -list`.
func JobPolicyNames() []string { return sched.PolicyNames() }

// JobPolicyByName resolves a policy flag value ("fifo", "fair", "weighted"
// or "priority"; flag-configured weighted fair runs with uniform weights —
// per-job weights are a programmatic API). Unknown names are a hard error
// at every entry point; nothing falls back to a default silently.
func JobPolicyByName(name string) (SchedPolicy, error) {
	return sched.PolicyByName[*Job](name)
}
