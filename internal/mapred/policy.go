package mapred

import "fmt"

// SchedPolicy arbitrates execution slots across concurrently running jobs.
// On every free-slot offer the JobTracker asks the policy to order the
// runnable jobs; the first job in the order with an eligible task wins the
// slot. The order is recomputed per offer, so policies that rank by live
// usage (fair-share) react to every launch within a heartbeat.
//
// Task selection *within* a job is unchanged by the policy: pending tasks
// prefer input-local placement, speculative copies follow the configured
// Hadoop/MOON rules, and under MOON-Hybrid the dedicated-first tracker
// ordering is preserved per job.
type SchedPolicy interface {
	// Name is the policy's flag/label spelling ("fifo", "fair").
	Name() string
	// Order appends the jobs of running (given in submission order) to
	// dst in slot-offer order and returns dst. Implementations must not
	// retain either slice.
	Order(dst, running []*Job) []*Job
}

// FIFO offers every free slot to the earliest-submitted running job first.
// A later job only receives slots the earlier jobs cannot use (the policy
// is work-conserving), so saturating jobs execute essentially serially in
// submission order.
func FIFO() SchedPolicy { return fifoPolicy{} }

type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Order(dst, running []*Job) []*Job { return append(dst, running...) }

// FairShare splits slots evenly between running jobs: every free slot is
// offered to the job with the fewest *active* task attempts (attempts
// stranded on suspended trackers don't count against a job, mirroring how
// the MOON speculative budget ignores inactive copies), breaking ties by
// submission order. Concurrent jobs therefore make interleaved progress
// instead of queueing behind the first submission.
func FairShare() SchedPolicy { return fairSharePolicy{} }

type fairSharePolicy struct{}

func (fairSharePolicy) Name() string { return "fair" }

func (fairSharePolicy) Order(dst, running []*Job) []*Job {
	dst = append(dst, running...)
	// Insertion sort: the job count is small and the order barely changes
	// between consecutive offers. Stability keeps submission order for
	// ties, which keeps scheduling deterministic.
	for i := 1; i < len(dst); i++ {
		j := dst[i]
		k := i - 1
		for k >= 0 && dst[k].activeAttempts() > j.activeAttempts() {
			dst[k+1] = dst[k]
			k--
		}
		dst[k+1] = j
	}
	return dst
}

// WeightedFair splits slots in proportion to per-job weights: every free
// slot is offered to the running job with the smallest active-attempts to
// weight ratio, so a weight-3 job holds three times the slots of a
// weight-1 competitor at steady state. Ties break by submission order
// (sort stability), and weights are looked up by job name — a job without
// an entry (or with a non-positive weight) runs at weight 1, so
// WeightedFair(nil) degenerates to plain fair-share. Like fair-share, the
// ratio counts only *active* attempts, so a churn-stalled job is not
// deprioritized for the backup copies that would unfreeze it.
func WeightedFair(weights map[string]float64) SchedPolicy {
	return &weightedFairPolicy{weights: weights}
}

type weightedFairPolicy struct {
	weights map[string]float64
}

func (p *weightedFairPolicy) Name() string { return "weighted" }

func (p *weightedFairPolicy) weight(j *Job) float64 {
	if w, ok := p.weights[j.cfg.Name]; ok && w > 0 {
		return w
	}
	return 1
}

func (p *weightedFairPolicy) Order(dst, running []*Job) []*Job {
	dst = append(dst, running...)
	// Stable insertion sort, like FairShare: small job counts, near-sorted
	// input between consecutive offers, and stability gives the
	// submission-order tie-break.
	for i := 1; i < len(dst); i++ {
		j := dst[i]
		kj := float64(j.activeAttempts()) / p.weight(j)
		k := i - 1
		for k >= 0 && float64(dst[k].activeAttempts())/p.weight(dst[k]) > kj {
			dst[k+1] = dst[k]
			k--
		}
		dst[k+1] = j
	}
	return dst
}

// JobPolicyNames lists the canonical JobPolicyByName spellings, for flag
// help and `moonbench -list`.
func JobPolicyNames() []string { return []string{"fifo", "fair", "weighted"} }

// JobPolicyByName resolves a policy flag value ("fifo", "fair" or
// "weighted"; flag-configured weighted fair runs with uniform weights —
// per-job weights are a programmatic API).
func JobPolicyByName(name string) (SchedPolicy, error) {
	switch name {
	case "fifo":
		return FIFO(), nil
	case "fair", "fairshare", "fair-share":
		return FairShare(), nil
	case "weighted", "wfair", "weighted-fair":
		return WeightedFair(nil), nil
	}
	return nil, fmt.Errorf("mapred: unknown job policy %q (want fifo, fair or weighted)", name)
}
