package mapred

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// TaskTracker is the per-node worker agent: it owns the node's execution
// slots. Suspension/expiry detection lives in the JobTracker (it observes
// missing heartbeats); the tracker only tracks occupancy.
type TaskTracker struct {
	node *cluster.Node

	mapSlots    int
	reduceSlots int

	running []*Instance

	// JobTracker-side detection events, armed when heartbeats stop.
	suspendEv sim.Event
	expireEv  sim.Event

	// suspected marks a tracker whose instances were flagged inactive
	// (MOON suspension detection).
	suspected bool
	// expired marks a tracker declared dead; it rejoins on next
	// heartbeat after the node returns.
	expired bool
}

// usedSlots counts running instances of the given type.
func (tt *TaskTracker) usedSlots(typ TaskType) int {
	n := 0
	for _, in := range tt.running {
		if in.task.Type == typ {
			n++
		}
	}
	return n
}

// freeSlots returns open slots of the given type; an unavailable or expired
// tracker offers none.
func (tt *TaskTracker) freeSlots(typ TaskType) int {
	if !tt.node.Available() || tt.expired {
		return 0
	}
	if typ == MapTask {
		return tt.mapSlots - tt.usedSlots(MapTask)
	}
	return tt.reduceSlots - tt.usedSlots(ReduceTask)
}

func (tt *TaskTracker) remove(in *Instance) {
	for i, x := range tt.running {
		if x == in {
			tt.running = append(tt.running[:i], tt.running[i+1:]...)
			return
		}
	}
}
