package mapred

import (
	"testing"

	"repro/internal/dfs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// submitAt schedules a job submission at a simulation time and returns a
// pointer that is filled once the submission happens.
func (r *rig) submitAt(t *testing.T, at float64, cfg JobConfig) **Job {
	t.Helper()
	slot := new(*Job)
	r.s.Schedule(at, "test.submit", func() {
		j, err := r.jt.Submit(cfg, nil)
		if err != nil {
			t.Errorf("submit %s at t=%v: %v", cfg.Name, at, err)
			return
		}
		*slot = j
	})
	return slot
}

// TestTwoOverlappingJobsCompleteUnderChurn: two jobs submitted 50 s apart
// on a churning cluster must both finish under FIFO and under fair-share.
func TestTwoOverlappingJobsCompleteUnderChurn(t *testing.T) {
	outages := map[int][]trace.Interval{
		0: {{Start: 30, End: 300}, {Start: 700, End: 1000}},
		2: {{Start: 100, End: 450}},
		4: {{Start: 10, End: 120}, {Start: 500, End: 900}},
	}
	for _, pol := range []SchedPolicy{FIFO(), FairShare()} {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			sched := DefaultSchedConfig(PolicyMOON)
			sched.JobPolicy = pol
			r := newRig(t, rigOpts{volatiles: 6, dedicated: 2, dfsMode: dfs.ModeMOON,
				sched: sched, outages: outages})
			cfgA, cfgB := smallJob("churn-a"), smallJob("churn-b")
			cfgA.NumMaps, cfgB.NumMaps = 8, 8
			r.stage(t, cfgA, dfs.Factor{D: 1, V: 2})
			r.stage(t, cfgB, dfs.Factor{D: 1, V: 2})

			ja, err := r.jt.Submit(cfgA, nil)
			if err != nil {
				t.Fatal(err)
			}
			jb := r.submitAt(t, 50, cfgB)
			r.s.RunUntil(2e5)

			if *jb == nil {
				t.Fatal("second job never submitted")
			}
			for _, j := range []*Job{ja, *jb} {
				if j.State() != JobSucceeded {
					t.Fatalf("%s: job %s state %v: %s", pol.Name(), j.Config().Name, j.State(), j.FailReason())
				}
				if !j.attempts.Balanced() {
					t.Fatalf("%s: job %s leaked attempts %+v", pol.Name(), j.Config().Name, j.attempts)
				}
				if p := j.Profile(); p.Makespan <= 0 {
					t.Fatalf("%s: job %s makespan %v", pol.Name(), j.Config().Name, p.Makespan)
				}
			}
			if got := r.jt.RunningJobs(); got != 0 {
				t.Fatalf("%d jobs still running after completion", got)
			}
		})
	}
}

// saturatingJob is a map-heavy job spanning three full waves of the test
// cluster's 12 map slots, so two concurrent copies contend for every slot.
func saturatingJob(name string) JobConfig {
	cfg := smallJob(name)
	cfg.NumMaps = 36
	cfg.NumReduces = 2
	cfg.MapCPU = 10
	cfg.SkipInputRead = true
	return cfg
}

// runContendingPair runs two identical saturating jobs submitted together
// under the given policy on a stable 6-node cluster and reports how many
// maps job 2 had completed at the instant job 1 finished its map phase,
// plus both finished jobs.
func runContendingPair(t *testing.T, pol SchedPolicy) (j2MapsAtJ1MapsDone int, j1, j2 *Job) {
	t.Helper()
	sched := DefaultSchedConfig(PolicyMOON)
	sched.JobPolicy = pol
	r := newRig(t, rigOpts{volatiles: 5, dedicated: 1, dfsMode: dfs.ModeMOON, sched: sched})
	cfgA, cfgB := saturatingJob("pair-a"), saturatingJob("pair-b")
	r.stage(t, cfgA, dfs.Factor{D: 1, V: 2})
	r.stage(t, cfgB, dfs.Factor{D: 1, V: 2})
	ja, err := r.jt.Submit(cfgA, nil)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := r.jt.Submit(cfgB, nil)
	if err != nil {
		t.Fatal(err)
	}
	captured := false
	stop := r.s.Ticker(1, "probe", func() {
		if !captured && ja.MapsCompleted() == cfgA.NumMaps {
			j2MapsAtJ1MapsDone = jb.MapsCompleted()
			captured = true
		}
	})
	r.s.RunUntil(1e5)
	stop()
	if ja.State() != JobSucceeded || jb.State() != JobSucceeded {
		t.Fatalf("%s: jobs not both done: %v / %v", pol.Name(), ja.State(), jb.State())
	}
	if !captured {
		t.Fatalf("%s: job 1 map phase never completed", pol.Name())
	}
	return j2MapsAtJ1MapsDone, ja, jb
}

// TestFairShareInterleavesFIFOSerializes: under FIFO the first job owns
// the cluster until its maps run out, so the second job has made almost no
// progress when job 1's map phase ends; under fair-share the two jobs
// split the slots and advance together.
func TestFairShareInterleavesFIFOSerializes(t *testing.T) {
	fifoJ2, fifoJ1, fifoJ2Job := runContendingPair(t, FIFO())
	fairJ2, fairJ1, fairJ2Job := runContendingPair(t, FairShare())

	// FIFO: job 2 starved during job 1's map phase, and job 1 finishes
	// well before job 2.
	if fifoJ2 > 4 {
		t.Errorf("FIFO: job 2 completed %d maps before job 1's map phase ended (want near-none)", fifoJ2)
	}
	if fifoJ1.FinishedAt() >= fifoJ2Job.FinishedAt() {
		t.Errorf("FIFO: job 1 finished at %v, after job 2 at %v",
			fifoJ1.FinishedAt(), fifoJ2Job.FinishedAt())
	}

	// Fair-share: job 2 advances alongside job 1...
	if fairJ2 < 12 {
		t.Errorf("fair-share: job 2 completed only %d maps before job 1's map phase ended (want interleaving)", fairJ2)
	}
	// ...which costs job 1 throughput relative to its FIFO run.
	if fairJ1.Profile().Makespan <= fifoJ1.Profile().Makespan {
		t.Errorf("fair-share job 1 makespan %v not above FIFO job 1 makespan %v",
			fairJ1.Profile().Makespan, fifoJ1.Profile().Makespan)
	}
	_ = fairJ2Job
}

// TestMultiJobDeterminism: a two-job fair-share run under churn is
// bit-reproducible.
func TestMultiJobDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		sched := DefaultSchedConfig(PolicyMOON)
		sched.JobPolicy = FairShare()
		r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON, sched: sched,
			outages: map[int][]trace.Interval{
				0: {{Start: 30, End: 200}},
				2: {{Start: 55, End: 400}},
			}})
		cfgA, cfgB := smallJob("det-a"), smallJob("det-b")
		r.stage(t, cfgA, dfs.Factor{D: 1, V: 2})
		r.stage(t, cfgB, dfs.Factor{D: 1, V: 2})
		ja, err := r.jt.Submit(cfgA, nil)
		if err != nil {
			t.Fatal(err)
		}
		jb := r.submitAt(t, 20, cfgB)
		r.s.RunUntil(1e5)
		if ja.State() != JobSucceeded || *jb == nil || (*jb).State() != JobSucceeded {
			t.Fatal("jobs did not finish")
		}
		return ja.Profile().Makespan, (*jb).Profile().Makespan
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("non-deterministic multi-job run: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

// TestWeightedFairProportionalSlots: with weights 3:1 the heavy job holds
// most of the cluster, so the light job trails it — starved harder than
// plain fair-share would starve it, but (unlike FIFO) never fully shut out
// while the heavy job still has pending work.
func TestWeightedFairProportionalSlots(t *testing.T) {
	weighted, heavyJob, lightJob := runContendingPair(t,
		WeightedFair(map[string]float64{"pair-a": 3, "pair-b": 1}))
	fair, _, _ := runContendingPair(t, FairShare())

	if weighted >= fair {
		t.Errorf("weighted 3:1: light job completed %d maps before the heavy job's map phase ended; want fewer than fair-share's %d",
			weighted, fair)
	}
	if weighted == 0 {
		t.Error("weighted 3:1: light job completely starved (weighted fair must stay work-conserving)")
	}
	if heavyJob.State() != JobSucceeded || lightJob.State() != JobSucceeded {
		t.Fatalf("jobs not both done: %v / %v", heavyJob.State(), lightJob.State())
	}
	if heavyJob.FinishedAt() >= lightJob.FinishedAt() {
		t.Errorf("weighted 3:1: heavy job finished at %v, after the light job at %v",
			heavyJob.FinishedAt(), lightJob.FinishedAt())
	}
}

// TestWeightedFairOrder: ranking is active-attempts/weight, ties by
// submission order; missing weights default to 1, so WeightedFair(nil)
// orders exactly like FairShare.
func TestWeightedFairOrder(t *testing.T) {
	a := &Job{cfg: JobConfig{Name: "a"}, attempts: sched.Attempts{Live: 6}}
	b := &Job{cfg: JobConfig{Name: "b"}, attempts: sched.Attempts{Live: 3}}
	c := &Job{cfg: JobConfig{Name: "c"}, attempts: sched.Attempts{Live: 3}}
	running := []*Job{a, b, c}

	// a runs 6 attempts at weight 3 (ratio 2), b and c run 3 at weight 1
	// (ratio 3): a ranks first, then b before c by submission order.
	got := WeightedFair(map[string]float64{"a": 3}).Order(nil, running)
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("weighted order wrong: %v", got)
	}
	if running[0] != a || running[1] != b || running[2] != c {
		t.Fatal("input slice mutated")
	}

	uniform := WeightedFair(nil).Order(nil, running)
	fair := FairShare().Order(nil, running)
	for i := range fair {
		if uniform[i] != fair[i] {
			t.Fatalf("WeightedFair(nil) order %v, want fair-share order %v", uniform, fair)
		}
	}
}

// TestStrictPriorityStarvesLowUntilHighDrains: under strict priority a
// high-priority job submitted alongside a low-priority one owns every
// slot offer until its pending work runs out, so the low job makes almost
// no map progress while the high job's map phase runs — regardless of
// submission order. Zero-priority ties degenerate to FIFO.
func TestStrictPriorityStarvesLowUntilHighDrains(t *testing.T) {
	sched := DefaultSchedConfig(PolicyMOON)
	sched.JobPolicy = StrictPriority()
	r := newRig(t, rigOpts{volatiles: 5, dedicated: 1, dfsMode: dfs.ModeMOON, sched: sched})
	// The *low*-priority job is submitted first: FIFO would hand it the
	// cluster, strict priority must not.
	cfgLow, cfgHigh := saturatingJob("prio-low"), saturatingJob("prio-high")
	cfgHigh.Priority = 5
	r.stage(t, cfgLow, dfs.Factor{D: 1, V: 2})
	r.stage(t, cfgHigh, dfs.Factor{D: 1, V: 2})
	jLow, err := r.jt.Submit(cfgLow, nil)
	if err != nil {
		t.Fatal(err)
	}
	jHigh, err := r.jt.Submit(cfgHigh, nil)
	if err != nil {
		t.Fatal(err)
	}
	lowMapsAtHighDone := -1
	stop := r.s.Ticker(1, "probe", func() {
		if lowMapsAtHighDone < 0 && jHigh.MapsCompleted() == cfgHigh.NumMaps {
			lowMapsAtHighDone = jLow.MapsCompleted()
		}
	})
	r.s.RunUntil(1e5)
	stop()
	if jLow.State() != JobSucceeded || jHigh.State() != JobSucceeded {
		t.Fatalf("jobs not both done: %v / %v", jLow.State(), jHigh.State())
	}
	if lowMapsAtHighDone < 0 {
		t.Fatal("high-priority job's map phase never completed")
	}
	// The low job holds the slots it won before the high job arrived (no
	// preemption), but wins no offers afterwards: near-zero progress.
	if lowMapsAtHighDone > 12 {
		t.Errorf("low-priority job completed %d maps before the high-priority map phase ended (want starvation)", lowMapsAtHighDone)
	}
	if jHigh.FinishedAt() >= jLow.FinishedAt() {
		t.Errorf("high-priority job finished at %v, after the low-priority job at %v",
			jHigh.FinishedAt(), jLow.FinishedAt())
	}
}

// TestJobPolicyByName covers the flag-value parser.
func TestJobPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"fifo": "fifo", "fair": "fair", "fairshare": "fair", "fair-share": "fair",
		"weighted": "weighted", "wfair": "weighted", "weighted-fair": "weighted",
		"priority": "priority", "strict-priority": "priority",
	} {
		p, err := JobPolicyByName(name)
		if err != nil || p.Name() != want {
			t.Fatalf("JobPolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := JobPolicyByName("lottery"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestFairShareOrder: the policy ranks by live attempts with submission
// order breaking ties, without touching the input slice.
func TestFairShareOrder(t *testing.T) {
	a := &Job{attempts: sched.Attempts{Live: 3}}
	b := &Job{attempts: sched.Attempts{Live: 1}}
	c := &Job{attempts: sched.Attempts{Live: 1}}
	running := []*Job{a, b, c}
	got := FairShare().Order(nil, running)
	if len(got) != 3 || got[0] != b || got[1] != c || got[2] != a {
		t.Fatalf("fair-share order wrong: %v", got)
	}
	if running[0] != a || running[1] != b || running[2] != c {
		t.Fatal("input slice mutated")
	}
	fifo := FIFO().Order(nil, running)
	if fifo[0] != a || fifo[1] != b || fifo[2] != c {
		t.Fatal("fifo order not submission order")
	}
}
