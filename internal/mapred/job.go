package mapred

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// JobState tracks the lifecycle of a submitted job.
type JobState int

const (
	JobRunning JobState = iota
	JobCommitting
	JobSucceeded
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobRunning:
		return "running"
	case JobCommitting:
		return "committing"
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one submitted MapReduce job. All per-job scheduler bookkeeping
// lives here, so the JobTracker can run any number of jobs concurrently.
type Job struct {
	cfg JobConfig

	maps    []*Task
	reduces []*Task

	state       JobState
	submittedAt float64
	finishedAt  float64
	failReason  string

	// attempts is the shared live-attempt accounting (maintained
	// incrementally): Live counts the job's currently running task
	// instances, Inactive the subset stranded on suspended trackers.
	// Fair-share ranks jobs by the active difference, so a churn-stalled
	// job is not deprioritized for the backup copies that would unfreeze
	// it.
	attempts sched.Attempts

	// scheduleSeq numbers first launches of the job's tasks, used by
	// Hadoop's speculative selection.
	scheduleSeq int

	// fetchReporters tracks, per map index, the distinct reduce tasks
	// reporting fetch failures (Hadoop's >50% rule).
	fetchReporters []map[int]bool

	// commitTicker polls output replication during the MOON commit phase.
	commitTicker func()

	mapsCompleted    int
	reducesCompleted int

	// Profile accumulators.
	mapTimeSum       float64 // successful map attempt durations
	mapTimeCount     int
	shuffleTimeSum   float64 // reduce start → shuffle complete
	shuffleTimeCount int
	reduceTimeSum    float64 // compute start → attempt success
	reduceTimeCount  int

	killedMaps    int // map attempts terminated without success + invalidated outputs
	killedReduces int // reduce attempts terminated without success

	// Per-job instruments, scoped by job name (nil without a collector):
	// queue wait is submission → first task launch, makespan is set when
	// the job reaches a terminal state.
	mQueueWait *metrics.Gauge
	mMakespan  *metrics.Gauge

	onDone func(*Job)
}

// Config returns the job's configuration.
func (j *Job) Config() JobConfig { return j.cfg }

// State returns the job's current state.
func (j *Job) State() JobState { return j.state }

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.state == JobSucceeded || j.state == JobFailed }

// FailReason describes why a failed job failed.
func (j *Job) FailReason() string { return j.failReason }

// SubmittedAt returns the simulation time the job was submitted.
func (j *Job) SubmittedAt() float64 { return j.submittedAt }

// FinishedAt returns the simulation time the job reached a terminal state
// (zero while the job is still running).
func (j *Job) FinishedAt() float64 { return j.finishedAt }

// Profile is the per-job execution profile — the columns of the paper's
// Table II plus the duplicated-task count of Figure 5 and the makespan of
// Figures 4, 6 and 7.
type Profile struct {
	Job      string
	State    JobState
	Makespan float64 // submit → success (or failure)

	AvgMapTime     float64
	AvgShuffleTime float64
	AvgReduceTime  float64

	KilledMaps    int
	KilledReduces int

	// DuplicatedTasks counts every attempt beyond each task's first —
	// speculative copies plus kill/loss re-executions.
	DuplicatedTasks int

	MapInvalidations int // completed map outputs declared lost
}

// Profile summarizes the job after it finishes.
func (j *Job) Profile() Profile {
	p := Profile{
		Job:           j.cfg.Name,
		State:         j.state,
		Makespan:      j.finishedAt - j.submittedAt,
		KilledMaps:    j.killedMaps,
		KilledReduces: j.killedReduces,
	}
	if j.mapTimeCount > 0 {
		p.AvgMapTime = j.mapTimeSum / float64(j.mapTimeCount)
	}
	if j.shuffleTimeCount > 0 {
		p.AvgShuffleTime = j.shuffleTimeSum / float64(j.shuffleTimeCount)
	}
	if j.reduceTimeCount > 0 {
		p.AvgReduceTime = j.reduceTimeSum / float64(j.reduceTimeCount)
	}
	for _, t := range j.maps {
		p.DuplicatedTasks += t.attempts - 1
		p.MapInvalidations += t.invalidations
	}
	for _, t := range j.reduces {
		p.DuplicatedTasks += t.attempts - 1
	}
	return p
}

// Name returns the job's name — the identity the shared scheduling core
// (internal/sched) keys duplicate rejection and weight lookups on.
func (j *Job) Name() string { return j.cfg.Name }

// ActiveAttempts counts running attempts not stranded on suspended
// trackers — the fair-share ranking key of sched.Policy implementations.
func (j *Job) ActiveAttempts() int { return j.attempts.Active() }

// Priority is the job's strict-priority rank (JobConfig.Priority); only
// the sched.StrictPriority policy reads it.
func (j *Job) Priority() int { return j.cfg.Priority }

// remainingTasks counts incomplete tasks of the job.
func (j *Job) remainingTasks() int {
	return len(j.maps) - j.mapsCompleted + len(j.reduces) - j.reducesCompleted
}

// MapsCompleted returns the number of completed (and not invalidated) maps.
func (j *Job) MapsCompleted() int { return j.mapsCompleted }

// ReducesCompleted returns the number of completed reduces.
func (j *Job) ReducesCompleted() int { return j.reducesCompleted }

// Tasks returns the job's map and reduce task lists (read-only view for
// monitoring and tests).
func (j *Job) Tasks() (maps, reduces []*Task) { return j.maps, j.reduces }

// AttemptsOf exposes a task's historical attempt count (diagnostics).
func AttemptsOf(t *Task) int { return t.attempts }
