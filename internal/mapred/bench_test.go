package mapred

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkSmallJobUnderChurn measures an end-to-end MOON job (16 maps,
// 4 reduces, 10 volatile + 2 dedicated nodes, 0.4 unavailability) through
// the full simulated stack.
func BenchmarkSmallJobUnderChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := sim.New()
		traces, err := trace.GenerateFleet(rng.New(uint64(i+1)), trace.DefaultOutageConfig(0.4), 1e5, 10)
		if err != nil {
			b.Fatal(err)
		}
		c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 2})
		net := netmodel.New(s, c, netmodel.Config{NodeBandwidth: 1e6, DiskBandwidth: 4e6, StallTimeout: 30})
		dcfg := dfs.DefaultConfig(dfs.ModeMOON)
		dcfg.BlockSize = 1e6
		f, err := dfs.New(s, c, net, dcfg)
		if err != nil {
			b.Fatal(err)
		}
		jt, err := NewJobTracker(s, c, f, net, DefaultSchedConfig(PolicyMOON))
		if err != nil {
			b.Fatal(err)
		}
		cfg := JobConfig{
			Name: "bench", NumMaps: 16, NumReduces: 4, InputFile: "in",
			MapCPU: 20, ReduceCPU: 10,
			IntermediatePerMap: 2e5, IntermediateClass: dfs.Opportunistic,
			IntermediateFactor: dfs.Factor{D: 1, V: 1},
			OutputPerReduce:    2e5, OutputFactor: dfs.Factor{D: 1, V: 2},
		}
		if _, err := f.CreateStaged("in", 16e6, dfs.Reliable, dfs.Factor{D: 1, V: 2}); err != nil {
			b.Fatal(err)
		}
		done := false
		if _, err := jt.Submit(cfg, func(*Job) { done = true; s.Stop() }); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s.RunUntil(1e5)
		if !done {
			b.Fatal("job did not finish")
		}
	}
}

// BenchmarkHeartbeatScanWorkers measures the heartbeat's fanned
// slot-availability scan — the per-tick parallel phase — over a fleet
// well above tickShardMinTrackers, at growing pool widths. The partials
// live on the JobTracker, so the workers=1 row must report 0 allocs/op
// (CI gates it); wider rows add only the per-phase goroutine spawns.
// Every width returns the identical count (the differential suite pins
// the full-run consequence of that).
func BenchmarkHeartbeatScanWorkers(b *testing.B) {
	const volatiles = 4096
	s := sim.New()
	traces, err := trace.GenerateFleetOn(sim.NewShardPool(0), rng.New(1),
		trace.DefaultOutageConfig(0.3), 1e5, volatiles)
	if err != nil {
		b.Fatal(err)
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 64})
	net := netmodel.New(s, c, netmodel.Config{NodeBandwidth: 1e6, DiskBandwidth: 4e6, StallTimeout: 30})
	f, err := dfs.New(s, c, net, dfs.DefaultConfig(dfs.ModeMOON))
	if err != nil {
		b.Fatal(err)
	}
	jt, err := NewJobTracker(s, c, f, net, DefaultSchedConfig(PolicyMOON))
	if err != nil {
		b.Fatal(err)
	}
	sink := 0
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s.SetShardWorkers(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += jt.countAvailableSlots()
			}
		})
	}
	if sink == 0 {
		b.Fatal("no slots counted")
	}
}
