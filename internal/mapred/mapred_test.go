package mapred

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rig assembles a full stack: cluster + network + DFS + JobTracker.
type rig struct {
	s   *sim.Simulation
	c   *cluster.Cluster
	net *netmodel.Network
	fs  *dfs.FileSystem
	jt  *JobTracker
}

type rigOpts struct {
	volatiles int
	dedicated int
	outages   map[int][]trace.Interval
	dfsMode   dfs.Mode
	sched     SchedConfig
	horizon   float64
	netCfg    netmodel.Config
}

func newRig(t *testing.T, o rigOpts) *rig {
	t.Helper()
	if o.horizon == 0 {
		o.horizon = 1e6
	}
	if o.netCfg.NodeBandwidth == 0 {
		o.netCfg = netmodel.Config{NodeBandwidth: 1e6, DiskBandwidth: 4e6, StallTimeout: 60}
	}
	s := sim.New()
	traces := make([]trace.Trace, o.volatiles)
	for i := range traces {
		traces[i] = trace.Trace{Duration: o.horizon, Outages: o.outages[i]}
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: o.dedicated})
	net := netmodel.New(s, c, o.netCfg)
	dcfg := dfs.DefaultConfig(o.dfsMode)
	dcfg.BlockSize = 1e6
	f, err := dfs.New(s, c, net, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	jt, err := NewJobTracker(s, c, f, net, o.sched)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{s: s, c: c, net: net, fs: f, jt: jt}
}

// smallJob: 4 maps, 2 reduces, short compute, 1 MB blocks.
func smallJob(name string) JobConfig {
	return JobConfig{
		Name:               name,
		NumMaps:            4,
		NumReduces:         2,
		InputFile:          "input-" + name,
		MapCPU:             10,
		ReduceCPU:          10,
		IntermediatePerMap: 2e5,
		IntermediateClass:  dfs.Opportunistic,
		IntermediateFactor: dfs.Factor{V: 1},
		OutputPerReduce:    2e5,
		OutputFactor:       dfs.Factor{D: 1, V: 1},
	}
}

func (r *rig) stage(t *testing.T, cfg JobConfig, factor dfs.Factor) {
	t.Helper()
	if _, err := r.fs.CreateStaged(cfg.InputFile, float64(cfg.NumMaps)*1e6, dfs.Reliable, factor); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) runJob(t *testing.T, cfg JobConfig, horizon float64) *Job {
	t.Helper()
	var done *Job
	j, err := r.jt.Submit(cfg, func(j *Job) { done = j })
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(horizon)
	if done == nil {
		t.Fatalf("job did not finish by t=%v (state %v, maps %d/%d, reduces %d/%d)",
			horizon, j.state, j.mapsCompleted, len(j.maps), j.reducesCompleted, len(j.reduces))
	}
	return done
}

func TestJobCompletesOnStableCluster(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 2, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON)})
	cfg := smallJob("j1")
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	j := r.runJob(t, cfg, 1e5)
	if j.State() != JobSucceeded {
		t.Fatalf("job state %v: %s", j.State(), j.FailReason())
	}
	p := j.Profile()
	if p.Makespan <= 0 {
		t.Fatalf("makespan %v", p.Makespan)
	}
	if p.AvgMapTime < 10 {
		t.Fatalf("avg map time %v < compute time 10", p.AvgMapTime)
	}
	// Output files committed and fully replicated.
	for _, rt := range j.reduces {
		if rt.Output() == "" {
			t.Fatal("reduce has no output")
		}
		if !r.fs.FileFullyReplicated(rt.Output()) {
			t.Fatalf("output %s not fully replicated", rt.Output())
		}
		if r.fs.File(rt.Output()).Class != dfs.Reliable {
			t.Fatal("output not committed to reliable")
		}
	}
}

func TestJobCompletesUnderHadoopPolicy(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 6, dedicated: 0, dfsMode: dfs.ModeHadoop,
		sched: DefaultSchedConfig(PolicyHadoop)})
	cfg := smallJob("h1")
	cfg.IntermediateFactor = dfs.Factor{V: 1}
	cfg.OutputFactor = dfs.Factor{V: 2}
	r.stage(t, cfg, dfs.Factor{V: 2})
	j := r.runJob(t, cfg, 1e5)
	if j.State() != JobSucceeded {
		t.Fatalf("job state %v: %s", j.State(), j.FailReason())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON,
			sched: DefaultSchedConfig(PolicyMOON),
			outages: map[int][]trace.Interval{
				0: {{Start: 30, End: 200}},
				2: {{Start: 55, End: 400}},
			}})
		cfg := smallJob("d1")
		r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
		return r.runJob(t, cfg, 1e5).Profile().Makespan
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic makespans: %v vs %v", a, b)
	}
}

func TestSubmitValidation(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 2, dedicated: 1, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON)})
	cfg := smallJob("v1")
	if _, err := r.jt.Submit(cfg, nil); err == nil || !strings.Contains(err.Error(), "not staged") {
		t.Fatalf("unstaged input accepted: %v", err)
	}
	r.stage(t, cfg, dfs.Factor{D: 1, V: 1})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	// A concurrent job with the same name would collide in the DFS
	// (attempt outputs are named after the job) and is rejected.
	if _, err := r.jt.Submit(cfg, nil); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Fatalf("duplicate-name concurrent job: %v", err)
	}
	// A distinct concurrent job enqueues and competes for slots.
	cfg2 := smallJob("v2")
	r.stage(t, cfg2, dfs.Factor{D: 1, V: 1})
	if _, err := r.jt.Submit(cfg2, nil); err != nil {
		t.Fatalf("concurrent submission rejected: %v", err)
	}
	if got := r.jt.RunningJobs(); got != 2 {
		t.Fatalf("running jobs %d, want 2", got)
	}
	bad := cfg
	bad.NumMaps = 0
	if _, err := r.jt.Submit(bad, nil); err == nil {
		t.Fatal("zero-map job accepted")
	}
}

func TestTrackerExpiryKillsAndReschedules(t *testing.T) {
	// Node 0 suspends shortly after the job starts and stays away past
	// the tracker expiry; its tasks must be killed and re-run elsewhere.
	sched := DefaultSchedConfig(PolicyHadoop)
	sched.TrackerExpiry = 60
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 0, dfsMode: dfs.ModeHadoop, sched: sched,
		outages: map[int][]trace.Interval{0: {{Start: 5, End: 9e5}}}})
	cfg := smallJob("e1")
	cfg.MapCPU = 30
	cfg.OutputFactor = dfs.Factor{V: 2}
	r.stage(t, cfg, dfs.Factor{V: 3})
	j := r.runJob(t, cfg, 1e5)
	if j.State() != JobSucceeded {
		t.Fatalf("job state %v: %s", j.State(), j.FailReason())
	}
	p := j.Profile()
	if p.KilledMaps == 0 && p.KilledReduces == 0 {
		t.Fatal("expiry killed nothing despite a permanent outage")
	}
}

func TestMOONSuspensionMarksInactiveWithoutKilling(t *testing.T) {
	sched := DefaultSchedConfig(PolicyMOON)
	r := newRig(t, rigOpts{volatiles: 3, dedicated: 1, dfsMode: dfs.ModeMOON, sched: sched,
		outages: map[int][]trace.Interval{0: {{Start: 5, End: 300}}}})
	cfg := smallJob("s1")
	cfg.MapCPU = 600 // long enough that the outage hits mid-map
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	// After suspension detection (5 + 60) instances on node 0 are
	// inactive but alive.
	r.s.RunUntil(100)
	tt := r.jt.trackers[0]
	if !tt.suspected {
		t.Fatal("tracker not suspected after SuspensionInterval")
	}
	inactive := 0
	for _, in := range tt.running {
		if in.inactive {
			inactive++
		}
	}
	if inactive == 0 {
		t.Fatal("no instance marked inactive")
	}
	if r.jt.Job().killedMaps > 0 {
		t.Fatal("suspension killed instances")
	}
	// After the node resumes, instances reactivate.
	r.s.RunUntil(400)
	if tt.suspected {
		t.Fatal("tracker still suspected after resume")
	}
	for _, in := range tt.running {
		if in.inactive {
			t.Fatal("instance still inactive after resume")
		}
	}
}

func TestFrozenTaskGetsSpeculativeCopy(t *testing.T) {
	// MOON: a map whose only copy is suspended must receive a backup
	// copy even though Hadoop's progress criteria would not fire.
	sched := DefaultSchedConfig(PolicyMOON)
	r := newRig(t, rigOpts{volatiles: 3, dedicated: 1, dfsMode: dfs.ModeMOON, sched: sched,
		outages: map[int][]trace.Interval{0: {{Start: 5, End: 2000}}}})
	cfg := smallJob("f1")
	cfg.NumMaps = 6
	cfg.MapCPU = 300
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(200) // suspension detected at ~65; backup issued at next tick
	// The tasks stranded on node 0 must have been unfrozen by speculative
	// copies: an inactive instance plus at least one active one.
	var stranded []*Task
	for _, mt := range r.jt.Job().maps {
		for _, in := range mt.instances {
			if in.tracker == r.jt.trackers[0] && in.inactive {
				stranded = append(stranded, mt)
				break
			}
		}
	}
	if len(stranded) == 0 {
		t.Fatal("no task stranded on the suspended tracker")
	}
	for _, mt := range stranded {
		if mt.completed {
			continue
		}
		if mt.frozen() {
			t.Fatalf("task %s still frozen: no backup copy issued", mt.ID())
		}
		if mt.activeInstances() == 0 {
			t.Fatalf("stranded task %s has no active copy", mt.ID())
		}
	}
	spec := 0
	for _, mt := range stranded {
		spec += mt.specLaunches
	}
	if spec == 0 {
		t.Fatal("no speculative copy issued for frozen tasks")
	}
}

// lossJob sets up the map-output-loss scenario: maps finish by ~t=8 with
// single-copy intermediate data (some of it on node 0), node 0 dies forever
// at t=10, and the 30-second heartbeat delays reduce launches until t=30 —
// so every fetch against node 0's outputs fails and the runtime must
// re-execute those maps.
func lossJob(name string) JobConfig {
	cfg := smallJob(name)
	cfg.MapCPU = 5
	cfg.ReduceCPU = 5
	cfg.NumMaps = 4
	cfg.IntermediateFactor = dfs.Factor{V: 1} // volatile-only, single copy
	return cfg
}

func TestMapOutputLossTriggersReexecutionMOON(t *testing.T) {
	sched := DefaultSchedConfig(PolicyMOON)
	sched.FetchRetryInterval = 5
	sched.HeartbeatInterval = 30
	sched.ReduceSlowstart = 1.0
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON, sched: sched,
		outages: map[int][]trace.Interval{0: {{Start: 10, End: 9e5}}}})
	cfg := lossJob("m1")
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	j := r.runJob(t, cfg, 2e5)
	if j.State() != JobSucceeded {
		t.Fatalf("job state %v: %s", j.State(), j.FailReason())
	}
	p := j.Profile()
	if p.MapInvalidations == 0 {
		t.Fatal("lost map outputs never invalidated")
	}
	if p.DuplicatedTasks == 0 {
		t.Fatal("re-execution not reflected in duplicated tasks")
	}
}

func TestMapOutputLossTriggersReexecutionHadoop(t *testing.T) {
	sched := DefaultSchedConfig(PolicyHadoop)
	sched.FetchRetryInterval = 5
	sched.HeartbeatInterval = 30
	sched.ReduceSlowstart = 1.0
	sched.TrackerExpiry = 3000 // keep expiry out of the picture
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 0, dfsMode: dfs.ModeHadoop, sched: sched,
		outages: map[int][]trace.Interval{0: {{Start: 10, End: 9e5}}}})
	cfg := lossJob("m2")
	cfg.OutputFactor = dfs.Factor{V: 2}
	r.stage(t, cfg, dfs.Factor{V: 3})
	j := r.runJob(t, cfg, 2e5)
	if j.State() != JobSucceeded {
		t.Fatalf("job state %v: %s", j.State(), j.FailReason())
	}
	if j.Profile().MapInvalidations == 0 {
		t.Fatal("lost map outputs never invalidated under the >50% reporter rule")
	}
}

func TestHomestretchIssuesBackupCopies(t *testing.T) {
	// A tiny job (remaining tasks < 20% of slots) should replicate every
	// remaining task to R=2 active copies under MOON.
	sched := DefaultSchedConfig(PolicyMOON)
	r := newRig(t, rigOpts{volatiles: 6, dedicated: 2, dfsMode: dfs.ModeMOON, sched: sched})
	cfg := smallJob("hs1")
	cfg.NumMaps = 2
	cfg.NumReduces = 1
	cfg.MapCPU = 200
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(100)
	for _, mt := range r.jt.Job().maps {
		if mt.completed {
			continue
		}
		if mt.activeInstances() < 2 && !mt.hasActiveDedicatedCopy() {
			t.Fatalf("map %s has %d active copies in homestretch", mt.ID(), mt.activeInstances())
		}
	}
}

func TestHybridPrefersDedicatedForSpeculation(t *testing.T) {
	sched := DefaultSchedConfig(PolicyMOON)
	sched.Hybrid = true
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 2, dfsMode: dfs.ModeMOON, sched: sched})
	cfg := smallJob("hy1")
	cfg.NumMaps = 2
	cfg.NumReduces = 1
	cfg.MapCPU = 200
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(100)
	// In homestretch from the start; with Hybrid, speculative copies go
	// to dedicated trackers first.
	spec := 0
	for _, mt := range r.jt.Job().maps {
		for _, in := range mt.instances {
			if in.speculative && in.running() && in.node.IsDedicated() {
				spec++
			}
		}
	}
	if spec == 0 {
		t.Fatal("no speculative copy on a dedicated node under Hybrid")
	}
	// Tasks with an active dedicated copy must not receive further
	// homestretch copies.
	for _, mt := range r.jt.Job().maps {
		if mt.hasActiveDedicatedCopy() && mt.activeInstances() > 2 {
			t.Fatalf("dedicated-backed task %s over-replicated: %d copies", mt.ID(), mt.activeInstances())
		}
	}
}

func TestSpeculativeCapHadoop(t *testing.T) {
	// Hadoop never runs more than 1 + SpeculativeCap copies of a task.
	sched := DefaultSchedConfig(PolicyHadoop)
	r := newRig(t, rigOpts{volatiles: 8, dedicated: 0, dfsMode: dfs.ModeHadoop, sched: sched,
		outages: map[int][]trace.Interval{
			0: {{Start: 20, End: 9e5}},
			1: {{Start: 20, End: 9e5}},
		}})
	cfg := smallJob("c1")
	cfg.MapCPU = 120
	cfg.OutputFactor = dfs.Factor{V: 2}
	r.stage(t, cfg, dfs.Factor{V: 3})
	if _, err := r.jt.Submit(cfg, nil); err != nil {
		t.Fatal(err)
	}
	probe := func() {
		for _, mt := range r.jt.Job().maps {
			if mt.runningInstances() > 1+sched.SpeculativeCap {
				t.Errorf("map %s has %d running copies (cap %d)", mt.ID(),
					mt.runningInstances(), 1+sched.SpeculativeCap)
			}
		}
	}
	for _, at := range []float64{100, 200, 400, 700} {
		at := at
		r.s.Schedule(at, "probe", probe)
	}
	r.s.RunUntil(1000)
}

func TestProfileCounters(t *testing.T) {
	r := newRig(t, rigOpts{volatiles: 4, dedicated: 1, dfsMode: dfs.ModeMOON,
		sched: DefaultSchedConfig(PolicyMOON)})
	cfg := smallJob("p1")
	r.stage(t, cfg, dfs.Factor{D: 1, V: 2})
	j := r.runJob(t, cfg, 1e5)
	p := j.Profile()
	if p.Job != "p1" || p.State != JobSucceeded {
		t.Fatalf("profile header %+v", p)
	}
	if p.AvgShuffleTime <= 0 || p.AvgReduceTime <= 0 {
		t.Fatalf("profile times %+v", p)
	}
	// A quiet cluster needs no failure-driven duplicates; MOON's
	// homestretch may still proactively copy tail tasks (up to R-1 extra
	// copies of each remaining task).
	maxHomestretch := (DefaultSchedConfig(PolicyMOON).HomestretchR - 1) *
		(cfg.NumMaps + cfg.NumReduces)
	if p.DuplicatedTasks > maxHomestretch {
		t.Fatalf("duplicated tasks %d exceed homestretch budget %d", p.DuplicatedTasks, maxHomestretch)
	}
	if p.MapInvalidations != 0 {
		t.Fatalf("map invalidations on a stable cluster: %d", p.MapInvalidations)
	}
}

func TestTaskTypeAndStateStrings(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Fatal("TaskType strings")
	}
	if PolicyMOON.String() != "moon" || PolicyHadoop.String() != "hadoop" {
		t.Fatal("Policy strings")
	}
	for s, want := range map[JobState]string{
		JobRunning: "running", JobCommitting: "committing",
		JobSucceeded: "succeeded", JobFailed: "failed",
	} {
		if s.String() != want {
			t.Fatalf("JobState(%d) = %q", int(s), s.String())
		}
	}
}

func TestSchedConfigValidate(t *testing.T) {
	good := DefaultSchedConfig(PolicyMOON)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SuspensionInterval = bad.TrackerExpiry
	if bad.Validate() == nil {
		t.Fatal("suspension >= expiry accepted")
	}
	bad = good
	bad.MapSlotsPerNode = 0
	if bad.Validate() == nil {
		t.Fatal("zero slots accepted")
	}
}
