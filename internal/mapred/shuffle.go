package mapred

import (
	"repro/internal/dfs"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// fetchState is a reducer's view of one map's output.
type fetchState int

const (
	fetchPending fetchState = iota
	fetchInflight
	fetchDone
	fetchBackoff
)

// shuffleState drives one reduce attempt's copy phase: it fetches this
// reducer's partition from every completed map, at most ParallelCopies at a
// time, retrying failed fetches after a backoff and reporting fetch
// failures to the JobTracker (which decides on map re-execution).
type shuffleState struct {
	in *Instance
	jt *JobTracker

	state     []fetchState
	backoffAt []float64
	failedSrc [][]int // per map: replica holders that already failed
	failCount []int   // per map: failures observed by THIS attempt (MOON rule)
	flows     []*netmodel.Flow

	fetched  int
	inflight int
	retryEv  sim.Event
	finished bool
}

func newShuffle(jt *JobTracker, in *Instance) *shuffleState {
	n := in.task.job.cfg.NumMaps
	return &shuffleState{
		in:        in,
		jt:        jt,
		state:     make([]fetchState, n),
		backoffAt: make([]float64, n),
		failedSrc: make([][]int, n),
		failCount: make([]int, n),
		flows:     make([]*netmodel.Flow, n),
	}
}

// partitionBytes is the share of one map output this reducer copies.
func (sh *shuffleState) partitionBytes() float64 {
	cfg := sh.in.task.job.cfg
	if cfg.NumReduces == 0 {
		return 0
	}
	return cfg.IntermediatePerMap / float64(cfg.NumReduces)
}

// pump starts fetches up to the parallel-copy limit. It is called on
// launch, on every map completion, on fetch completion, and on retry
// timers.
func (sh *shuffleState) pump() {
	if sh.finished || sh.in.phase != phaseShuffle || !sh.in.node.Available() {
		return
	}
	now := sh.jt.sim.Now()
	job := sh.in.task.job
	for m := 0; m < len(sh.state) && sh.inflight < sh.jt.cfg.ParallelCopies; m++ {
		st := sh.state[m]
		if st == fetchDone || st == fetchInflight {
			continue
		}
		if st == fetchBackoff {
			if now < sh.backoffAt[m] {
				sh.armRetry(sh.backoffAt[m] - now)
				continue
			}
			sh.state[m] = fetchPending
		}
		mt := job.maps[m]
		if !mt.completed || mt.output == "" {
			continue
		}
		sh.startFetch(m, mt)
	}
	if sh.fetched == len(sh.state) {
		sh.complete()
	}
}

func (sh *shuffleState) startFetch(m int, mt *Task) {
	bytes := sh.partitionBytes()
	block := dfs.BlockID{File: mt.output, Index: 0}
	outputAtFetch := mt.output
	flow, err := sh.jt.fs.ReadBlock(sh.in.node, block, bytes, sh.failedSrc[m], func(src int, err error) {
		sh.fetchDone(m, src, outputAtFetch, err)
	})
	if err != nil {
		// No live replica right now: immediate fetch failure.
		sh.fail(m, -1)
		return
	}
	sh.state[m] = fetchInflight
	sh.flows[m] = flow
	sh.inflight++
}

// fetchDone handles one fetch completion or failure.
func (sh *shuffleState) fetchDone(m, src int, fetchedFrom string, err error) {
	if sh.finished {
		return
	}
	if sh.state[m] != fetchInflight {
		return // canceled and superseded
	}
	sh.state[m] = fetchPending
	sh.flows[m] = nil
	sh.inflight--
	if err != nil {
		if src >= 0 {
			sh.failedSrc[m] = append(sh.failedSrc[m], src)
		}
		sh.fail(m, src)
		sh.pump()
		return
	}
	// The data arrived. Even if the map was re-executed meanwhile, a
	// fully copied partition is valid (it is the same map output).
	_ = fetchedFrom
	sh.state[m] = fetchDone
	sh.fetched++
	sh.pump()
}

// fail records a fetch failure, reports it, and backs the map off.
func (sh *shuffleState) fail(m, src int) {
	sh.failCount[m]++
	sh.state[m] = fetchBackoff
	sh.backoffAt[m] = sh.jt.sim.Now() + sh.jt.cfg.FetchRetryInterval
	sh.jt.reportFetchFailure(sh.in, m, sh.failCount[m])
	sh.armRetry(sh.jt.cfg.FetchRetryInterval)
}

// mapInvalidated clears per-map retry state so the new attempt's output is
// fetched fresh (already-fetched partitions stay valid).
func (sh *shuffleState) mapInvalidated(m int) {
	if sh.finished || sh.state[m] == fetchDone {
		return
	}
	if sh.state[m] == fetchInflight {
		// Detach before canceling so the cancel callback (which fires
		// synchronously) sees a non-inflight state and returns without
		// recording a spurious failure.
		f := sh.flows[m]
		sh.flows[m] = nil
		sh.state[m] = fetchPending
		sh.inflight--
		if f != nil {
			sh.jt.net.Cancel(f)
		}
	}
	sh.state[m] = fetchPending
	sh.backoffAt[m] = 0
	sh.failedSrc[m] = nil
	sh.failCount[m] = 0
}

func (sh *shuffleState) armRetry(delay float64) {
	if sh.retryEv.Pending() {
		return
	}
	sh.retryEv = sh.jt.sim.After(delay, "shuffle.retry", func() {
		sh.retryEv = sim.Event{}
		sh.pump()
	})
}

// complete finishes the copy phase and hands the attempt to compute.
func (sh *shuffleState) complete() {
	if sh.finished {
		return
	}
	sh.finished = true
	sh.jt.shuffleCompleted(sh.in)
}

// cancel aborts all in-flight fetches (attempt killed).
func (sh *shuffleState) cancel() {
	sh.finished = true
	sh.jt.sim.Cancel(sh.retryEv)
	sh.retryEv = sim.Event{}
	for m, f := range sh.flows {
		if f != nil {
			sh.flows[m] = nil
			sh.jt.net.Cancel(f)
		}
	}
}
