package mapred

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// launch starts a new attempt of t on tt.
func (jt *JobTracker) launch(t *Task, tt *TaskTracker, speculative bool) *Instance {
	t.attempts++
	if t.attempts == 1 {
		t.job.scheduleSeq++
		t.scheduledOrder = t.job.scheduleSeq
		if t.job.scheduleSeq == 1 {
			// First launch of the whole job: the queue wait ends here.
			t.job.mQueueWait.Set(jt.sim.Now() - t.job.submittedAt)
		}
	}
	t.job.attempts.Live++
	jt.inst.launches.IncAt(jt.sim.Now())
	if speculative {
		t.specLaunches++
		jt.inst.specIssued.IncAt(jt.sim.Now())
		// Keep the tick's fleet-wide speculative count exact: the new
		// attempt starts active (the tracker is live to receive it).
		if jt.inTick && jt.specCached && jt.specMut == jt.tickMut {
			jt.cachedSpec++
		}
	}
	in := &Instance{
		task:        t,
		node:        tt.node,
		tracker:     tt,
		attempt:     t.attempts,
		startedAt:   jt.sim.Now(),
		speculative: speculative,
	}
	t.instances = append(t.instances, in)
	tt.running = append(tt.running, in)

	if t.Type == MapTask {
		jt.startMap(in)
	} else {
		jt.startReduce(in)
	}
	return in
}

// startMap reads the input block (free when a replica is local, a network
// fetch otherwise) and then computes. Like the Hadoop DFS client, the read
// fails over across replicas, blacklisting sources that stalled; the
// attempt only fails once every known replica has been tried.
func (jt *JobTracker) startMap(in *Instance) {
	cfg := in.task.job.cfg
	block := dfs.BlockID{File: cfg.InputFile, Index: in.task.Index}
	if cfg.SkipInputRead || jt.isInputLocal(in.task, in.node) {
		jt.startCompute(in, cfg.MapCPU)
		return
	}
	in.phase = phaseRead
	var blacklist []int
	retries := 0
	var attempt func()
	attempt = func() {
		flow, err := jt.fs.ReadBlock(in.node, block, 0, blacklist, func(src int, err error) {
			in.readFlow = nil
			if in.phase != phaseRead {
				return
			}
			if err != nil {
				blacklist = append(blacklist, src)
				attempt()
				return
			}
			jt.startCompute(in, cfg.MapCPU)
		})
		if err != nil {
			// Every known replica failed or none is believed live. Like
			// the DFS client, wait out the churn and retry with a fresh
			// replica list before giving up on the attempt.
			retries++
			if retries > jt.cfg.InputReadRetries {
				jt.failInstance(in, fmt.Sprintf("input unavailable: %v", err))
				return
			}
			blacklist = blacklist[:0]
			jt.sim.After(jt.cfg.FetchRetryInterval, "map.inputRetry", func() {
				if in.phase == phaseRead {
					attempt()
				}
			})
			return
		}
		in.readFlow = flow
	}
	attempt()
}

// startReduce begins the shuffle phase.
func (jt *JobTracker) startReduce(in *Instance) {
	in.phase = phaseShuffle
	in.shuffle = newShuffle(jt, in)
	in.shuffle.pump()
}

// shuffleCompleted moves a reduce attempt from copy to compute (the model's
// sort phase is instantaneous).
func (jt *JobTracker) shuffleCompleted(in *Instance) {
	if in.phase != phaseShuffle {
		return
	}
	j := in.task.job
	j.shuffleTimeSum += jt.sim.Now() - in.startedAt
	j.shuffleTimeCount++
	jt.startCompute(in, j.cfg.ReduceCPU)
}

// startCompute begins the CPU burst (paused and resumed with node
// availability).
func (jt *JobTracker) startCompute(in *Instance, cpu float64) {
	in.phase = phaseCompute
	in.cpuTotal = cpu
	in.cpuLeft = cpu
	in.computeStartedAt = jt.sim.Now()
	jt.resumeCompute(in)
}

func (jt *JobTracker) resumeCompute(in *Instance) {
	if in.phase != phaseCompute || in.computing || !in.node.Available() {
		return
	}
	in.computing = true
	in.runningSince = jt.sim.Now()
	in.computeEv = jt.sim.After(in.cpuLeft, "task.compute", func() {
		in.computing = false
		in.cpuLeft = 0
		in.computeEv = sim.Event{}
		jt.startWrite(in)
	})
}

func (jt *JobTracker) pauseCompute(in *Instance) {
	if !in.computing {
		return
	}
	in.cpuLeft -= jt.sim.Now() - in.runningSince
	if in.cpuLeft < 0 {
		in.cpuLeft = 0
	}
	in.computing = false
	jt.sim.Cancel(in.computeEv)
	in.computeEv = sim.Event{}
}

// startWrite writes the attempt's output through the DFS.
func (jt *JobTracker) startWrite(in *Instance) {
	in.phase = phaseWrite
	cfg := in.task.job.cfg
	var size float64
	var class dfs.FileClass
	var factor dfs.Factor
	if in.task.Type == MapTask {
		size, class, factor = cfg.IntermediatePerMap, cfg.IntermediateClass, cfg.IntermediateFactor
	} else {
		size, class, factor = cfg.OutputPerReduce, dfs.Opportunistic, cfg.OutputFactor
		if jt.cfg.Policy == PolicyHadoop {
			// Stock Hadoop writes output at full factor directly.
			class = dfs.Reliable
		}
	}
	if size <= 0 {
		jt.completeInstance(in)
		return
	}
	in.outputFile = in.ID()
	op, err := jt.fs.Write(in.node, in.outputFile, size, class, factor, func(err error) {
		in.writeOp = nil
		if in.phase != phaseWrite {
			return
		}
		if err == netmodel.ErrCanceled {
			return
		}
		if err != nil {
			jt.fs.Delete(in.outputFile)
			in.outputFile = ""
			jt.failInstance(in, fmt.Sprintf("output write: %v", err))
			return
		}
		jt.completeInstance(in)
	})
	if err != nil {
		jt.failInstance(in, fmt.Sprintf("output create: %v", err))
		return
	}
	in.writeOp = op
}

// detach removes a no-longer-running attempt from its tracker, its task's
// live list, and the job's live-attempt count. Detaching can re-pend a
// task and shrink speculative counts, so it invalidates the tick caches
// when it runs inside a heartbeat (via a launch's synchronous failure
// paths).
func (jt *JobTracker) detach(in *Instance) {
	jt.taskStateChanged()
	in.tracker.remove(in)
	in.task.pruneInstance(in)
	in.task.job.attempts.Live--
	if in.inactive {
		in.task.job.attempts.Inactive--
	}
}

// completeInstance records a successful attempt; the first wins the task.
func (jt *JobTracker) completeInstance(in *Instance) {
	in.phase = phaseDone
	jt.detach(in)
	t := in.task
	j := t.job
	now := jt.sim.Now()

	if t.completed {
		// A sibling already won; this attempt's output is discarded.
		if in.outputFile != "" {
			jt.fs.Delete(in.outputFile)
			in.outputFile = ""
		}
		jt.countKill(t)
		if in.speculative {
			jt.inst.specWasted.Inc()
		}
		return
	}
	if in.speculative {
		jt.inst.specWon.Inc()
	}
	t.completed = true
	t.completedAt = now
	t.output = in.outputFile
	if t.Type == MapTask {
		j.mapsCompleted++
		j.mapTimeSum += now - in.startedAt
		j.mapTimeCount++
		jt.inst.mapDur.Observe(now - in.startedAt)
		j.fetchReporters[t.Index] = nil
		jt.notifyShuffles(j)
	} else {
		j.reducesCompleted++
		j.reduceTimeSum += now - in.computeStartedAt
		j.reduceTimeCount++
		jt.inst.reduceDur.Observe(now - in.startedAt)
	}
	// Kill the losing attempts (copy the slice: killing prunes it).
	for _, other := range append([]*Instance(nil), t.instances...) {
		if other != in && other.running() {
			jt.killInstance(other, "task completed elsewhere")
		}
	}
	jt.maybeFinishJob(j)
}

// killInstance terminates an attempt (tracker expiry, lost race, job end).
// The phase changes before teardown so that cancellation callbacks firing
// synchronously see a dead attempt and do nothing.
func (jt *JobTracker) killInstance(in *Instance, reason string) {
	if !in.running() {
		return
	}
	in.phase = phaseKilled
	jt.teardown(in)
	jt.detach(in)
	jt.countKill(in.task)
	if in.speculative {
		jt.inst.specWasted.Inc()
	}
	_ = reason
}

// failInstance terminates an attempt that hit an unrecoverable error and
// counts it against the task's attempt budget.
func (jt *JobTracker) failInstance(in *Instance, reason string) {
	if !in.running() {
		return
	}
	in.phase = phaseKilled
	jt.teardown(in)
	jt.detach(in)
	jt.countKill(in.task)
	if in.speculative {
		jt.inst.specWasted.Inc()
	}
	if in.task.attempts >= jt.cfg.MaxTaskAttempts && !in.task.completed {
		jt.failJob(in.task.job, fmt.Sprintf("task %s failed %d attempts (last: %s)",
			in.task.ID(), in.task.attempts, reason))
	}
}

// teardown cancels an attempt's outstanding I/O and compute.
func (jt *JobTracker) teardown(in *Instance) {
	jt.pauseCompute(in)
	if in.readFlow != nil {
		f := in.readFlow
		in.readFlow = nil
		// Mark the phase first so the cancel callback is a no-op.
		jt.net.Cancel(f)
	}
	if in.shuffle != nil {
		in.shuffle.cancel()
	}
	if in.writeOp != nil {
		op := in.writeOp
		in.writeOp = nil
		op.Cancel()
	}
	if in.outputFile != "" && (in.task.output != in.outputFile || !in.task.completed) {
		jt.fs.Delete(in.outputFile)
		in.outputFile = ""
	}
}

func (jt *JobTracker) countKill(t *Task) {
	jt.inst.kills.Inc()
	if t.Type == MapTask {
		t.job.killedMaps++
	} else {
		t.job.killedReduces++
	}
}

// notifyShuffles pumps the job's running reduce attempts after one of its
// maps completes.
func (jt *JobTracker) notifyShuffles(j *Job) {
	for _, t := range j.reduces {
		for _, in := range t.instances {
			if in.running() && in.phase == phaseShuffle && in.shuffle != nil {
				in.shuffle.pump()
			}
		}
	}
}

// --- fetch failures ----------------------------------------------------------

// reportFetchFailure is called by a reducer's shuffle when a map output
// fetch fails. attemptFails is that attempt's failure count for this map.
func (jt *JobTracker) reportFetchFailure(in *Instance, mapIndex, attemptFails int) {
	j := in.task.job
	if j.Done() {
		return
	}
	mt := j.maps[mapIndex]
	if !mt.completed {
		return // already being re-executed
	}
	if attemptFails < jt.cfg.FetchReportThreshold {
		return // the reducer keeps retrying before notifying the master
	}
	jt.inst.fetchReports.IncAt(jt.sim.Now())
	if jt.cfg.Policy == PolicyMOON || jt.cfg.FastFetchReaction {
		// After MoonFetchFailureCount failures, ask the DFS whether any
		// replica is actually alive; if not, re-execute immediately.
		if attemptFails >= jt.cfg.MoonFetchFailureCount {
			block := dfs.BlockID{File: mt.output, Index: 0}
			if !jt.fs.HasLiveReplica(block) {
				jt.invalidateMapOutput(mt)
			}
		}
		return
	}
	// Hadoop: re-execute once more than half the running reducers report
	// failures for this map.
	if j.fetchReporters[mapIndex] == nil {
		j.fetchReporters[mapIndex] = make(map[int]bool)
	}
	j.fetchReporters[mapIndex][in.task.Index] = true
	running := 0
	for _, t := range j.reduces {
		if t.runningInstances() > 0 && !t.completed {
			running++
		}
	}
	if running > 0 && float64(len(j.fetchReporters[mapIndex])) > jt.cfg.HadoopFetchFailureFraction*float64(running) {
		jt.invalidateMapOutput(mt)
	}
}

// invalidateMapOutput declares a completed map's output lost: the file is
// removed, the task returns to pending, and reducers fetch the re-executed
// attempt's output when it lands.
func (jt *JobTracker) invalidateMapOutput(mt *Task) {
	if !mt.completed {
		return
	}
	jt.taskStateChanged() // the map re-pends: tick caches are stale
	j := mt.job
	mt.completed = false
	mt.invalidations++
	jt.inst.invalidated.Inc()
	j.mapsCompleted--
	j.killedMaps++
	if mt.output != "" {
		jt.fs.Delete(mt.output)
		mt.output = ""
	}
	j.fetchReporters[mt.Index] = nil
	for _, rt := range j.reduces {
		for _, in := range rt.instances {
			if in.running() && in.shuffle != nil {
				in.shuffle.mapInvalidated(mt.Index)
			}
		}
	}
}

// --- job completion ----------------------------------------------------------

func (jt *JobTracker) maybeFinishJob(j *Job) {
	if j.Done() || j.state == JobCommitting {
		return
	}
	if j.mapsCompleted < len(j.maps) || j.reducesCompleted < len(j.reduces) {
		return
	}
	if jt.cfg.Policy == PolicyHadoop {
		jt.succeedJob(j)
		return
	}
	// MOON: convert output files to reliable and wait until every block
	// meets its replication factor before declaring success.
	j.state = JobCommitting
	for _, t := range j.reduces {
		if t.output != "" {
			if err := jt.fs.Commit(t.output); err != nil {
				jt.failJob(j, fmt.Sprintf("commit %s: %v", t.output, err))
				return
			}
		}
	}
	j.commitTicker = jt.sim.Ticker(jt.cfg.HeartbeatInterval, "jt.commitPoll", func() {
		for _, t := range j.reduces {
			if t.output != "" && !jt.fs.FileFullyReplicated(t.output) {
				return
			}
		}
		j.commitTicker()
		j.commitTicker = nil
		jt.succeedJob(j)
	})
}

func (jt *JobTracker) succeedJob(j *Job) {
	j.state = JobSucceeded
	j.finishedAt = jt.sim.Now()
	j.mMakespan.Set(j.finishedAt - j.submittedAt)
	jt.cleanupJob(j)
	if j.onDone != nil {
		j.onDone(j)
	}
}

func (jt *JobTracker) failJob(j *Job, reason string) {
	if j.Done() {
		return
	}
	j.state = JobFailed
	j.failReason = reason
	j.finishedAt = jt.sim.Now()
	j.mMakespan.Set(j.finishedAt - j.submittedAt)
	jt.cleanupJob(j)
	if j.onDone != nil {
		j.onDone(j)
	}
}

// cleanupJob kills every still-running attempt of the job.
func (jt *JobTracker) cleanupJob(j *Job) {
	if j.commitTicker != nil {
		j.commitTicker()
		j.commitTicker = nil
	}
	for _, t := range append(append([]*Task(nil), j.maps...), j.reduces...) {
		for _, in := range append([]*Instance(nil), t.instances...) {
			if in.running() {
				in.phase = phaseKilled
				jt.teardown(in)
				jt.detach(in)
			}
		}
	}
}
