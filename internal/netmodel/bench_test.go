package netmodel

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkTransferChurn measures flow setup/teardown with fair-share
// recomputation on a 66-node fleet — the shuffle's hot path.
func BenchmarkTransferChurn(b *testing.B) {
	s := sim.New()
	traces := make([]trace.Trace, 60)
	for i := range traces {
		traces[i] = trace.Trace{Duration: 1e12}
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 6})
	n := New(s, c, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := c.Node(i % 60)
		dst := c.Node((i + 7) % 60)
		n.Transfer(src, dst, 530e3, func(error) {}) // one shuffle segment
		s.RunUntil(s.Now() + 0.05)
	}
}
