package netmodel

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkTransferChurn measures flow setup/teardown with fair-share
// recomputation on a 66-node fleet — the shuffle's hot path.
func BenchmarkTransferChurn(b *testing.B) {
	s := sim.New()
	traces := make([]trace.Trace, 60)
	for i := range traces {
		traces[i] = trace.Trace{Duration: 1e12}
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 6})
	n := New(s, c, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := c.Node(i % 60)
		dst := c.Node((i + 7) % 60)
		n.Transfer(src, dst, 530e3, func(error) {}) // one shuffle segment
		s.RunUntil(s.Now() + 0.05)
	}
}

// BenchmarkFanIn measures the arrival side of a fan-in burst: F transfers
// into one sink started within a single event callback, then the settle pass
// that recomputes rates for the instant. With batched settling each affected
// flow is refreshed once per instant, so cost grows linearly in F; the eager
// per-change recompute resettled the sink's whole flow list on every arrival,
// growing quadratically. Setup (fresh simulation and cluster) and flow
// teardown are untimed.
func BenchmarkFanIn(b *testing.B) {
	for _, F := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("flows=%d", F), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := sim.New()
				c := cluster.New(s, cluster.Config{DedicatedNodes: F + 1})
				n := New(s, c, DefaultConfig())
				sink := c.Node(0)
				s.After(0, "burst", func() {
					for j := 0; j < F; j++ {
						n.Transfer(c.Node(j+1), sink, 1e12, func(error) {})
					}
				})
				b.StartTimer()
				s.Step()           // fire the burst: F Transfers mark their endpoints
				_ = n.TotalBytes() // settle pass: one refresh per affected flow
			}
		})
	}
}
