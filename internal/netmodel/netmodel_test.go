package netmodel

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testbed builds a 4-node cluster (3 volatile, 1 dedicated) with the given
// outage schedule on volatile node 0.
func testbed(outages []trace.Interval, cfg Config) (*sim.Simulation, *cluster.Cluster, *Network) {
	s := sim.New()
	traces := []trace.Trace{
		{Duration: 1e6, Outages: outages},
		{Duration: 1e6},
		{Duration: 1e6},
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 1})
	return s, c, New(s, c, cfg)
}

func simpleCfg() Config {
	return Config{NodeBandwidth: 100, DiskBandwidth: 50, StallTimeout: 60}
}

func TestSingleTransferTime(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	var doneAt float64 = -1
	n.Transfer(c.Node(1), c.Node(2), 1000, func(err error) {
		if err != nil {
			t.Errorf("transfer failed: %v", err)
		}
		doneAt = s.Now()
	})
	s.Run()
	// 1000 bytes at 100 B/s = 10 s.
	if math.Abs(doneAt-10) > 1e-9 {
		t.Fatalf("transfer finished at %v, want 10", doneAt)
	}
	if n.TotalBytes() != 1000 {
		t.Fatalf("TotalBytes = %v", n.TotalBytes())
	}
	if n.Consumed(1) != 1000 || n.Consumed(2) != 1000 {
		t.Fatalf("consumed = %v/%v, want 1000/1000", n.Consumed(1), n.Consumed(2))
	}
}

func TestFairSharingAtSource(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	var t1, t2 float64
	n.Transfer(c.Node(1), c.Node(2), 1000, func(error) { t1 = s.Now() })
	n.Transfer(c.Node(1), c.Node(3), 1000, func(error) { t2 = s.Now() })
	s.Run()
	// Two flows share the 100 B/s source NIC: both take ~20 s.
	if math.Abs(t1-20) > 1e-6 || math.Abs(t2-20) > 1e-6 {
		t.Fatalf("completions at %v and %v, want 20", t1, t2)
	}
}

func TestRateRecoversWhenContenderFinishes(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	var tBig float64
	n.Transfer(c.Node(1), c.Node(2), 500, func(error) {}) // shares until t=10
	n.Transfer(c.Node(1), c.Node(3), 1500, func(error) { tBig = s.Now() })
	s.Run()
	// Big flow: 10 s at 50 B/s (500 B), then 1000 B at 100 B/s => t=20.
	if math.Abs(tBig-20) > 1e-6 {
		t.Fatalf("big flow finished at %v, want 20", tBig)
	}
}

func TestLocalCopyUsesDisk(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	var doneAt float64
	n.Transfer(c.Node(1), c.Node(1), 500, func(error) { doneAt = s.Now() })
	s.Run()
	// 500 bytes at 50 B/s disk = 10 s.
	if math.Abs(doneAt-10) > 1e-9 {
		t.Fatalf("local copy finished at %v, want 10", doneAt)
	}
}

func TestZeroByteTransferCompletesImmediately(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	done := false
	var errGot error
	n.Transfer(c.Node(1), c.Node(2), 0, func(err error) { done, errGot = true, err })
	s.Run()
	if !done || errGot != nil {
		t.Fatalf("zero-byte transfer done=%v err=%v", done, errGot)
	}
	if s.Now() != 0 {
		t.Fatalf("zero-byte transfer advanced clock to %v", s.Now())
	}
}

func TestOutagePausesTransfer(t *testing.T) {
	// Node 0 down during [5, 20): a 1000-byte flow from node 0 pauses and
	// resumes (outage 15 s < stall timeout 60 s).
	s, c, n := testbed([]trace.Interval{{Start: 5, End: 20}}, simpleCfg())
	var doneAt float64
	var errGot error
	n.Transfer(c.Node(0), c.Node(1), 1000, func(err error) { doneAt, errGot = s.Now(), err })
	s.Run()
	if errGot != nil {
		t.Fatalf("transfer failed: %v", errGot)
	}
	// 5 s at 100 B/s = 500 B, pause 15 s, then 500 B more: t = 25.
	if math.Abs(doneAt-25) > 1e-6 {
		t.Fatalf("paused transfer finished at %v, want 25", doneAt)
	}
}

func TestLongOutageStallsTransfer(t *testing.T) {
	s, c, n := testbed([]trace.Interval{{Start: 5, End: 500}}, simpleCfg())
	var errGot error
	var failAt float64
	n.Transfer(c.Node(0), c.Node(1), 1000, func(err error) { errGot, failAt = err, s.Now() })
	s.RunUntil(1000)
	if errGot != ErrStalled {
		t.Fatalf("err = %v, want ErrStalled", errGot)
	}
	// Stall timer arms at suspension (t=5), fires 60 s later.
	if math.Abs(failAt-65) > 1e-6 {
		t.Fatalf("stall failure at %v, want 65", failAt)
	}
}

func TestTransferToInitiallyDownNodeStalls(t *testing.T) {
	s, c, n := testbed([]trace.Interval{{Start: 0, End: 500}}, simpleCfg())
	var errGot error
	n.Transfer(c.Node(1), c.Node(0), 1000, func(err error) { errGot = err })
	s.RunUntil(1000)
	if errGot != ErrStalled {
		t.Fatalf("err = %v, want ErrStalled", errGot)
	}
}

func TestStallDisarmedOnResume(t *testing.T) {
	// Outage shorter than the stall timeout: flow must not fail even
	// though it was down at the deadline-less boundary.
	s, c, n := testbed([]trace.Interval{{Start: 1, End: 50}}, simpleCfg())
	var errGot error
	done := false
	n.Transfer(c.Node(0), c.Node(1), 100, func(err error) { errGot, done = err, true })
	s.RunUntil(1000)
	if !done || errGot != nil {
		t.Fatalf("done=%v err=%v, want clean completion", done, errGot)
	}
}

func TestCancel(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	var errGot error
	f := n.Transfer(c.Node(1), c.Node(2), 1e9, func(err error) { errGot = err })
	s.Schedule(5, "cancel", func() { n.Cancel(f) })
	s.RunUntil(100)
	if errGot != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", errGot)
	}
	// Partial progress is still accounted.
	if n.Consumed(1) != 500 {
		t.Fatalf("consumed = %v, want 500 (5 s at 100 B/s)", n.Consumed(1))
	}
	// Double cancel is a no-op.
	n.Cancel(f)
}

func TestCallbackErrorExactlyOnce(t *testing.T) {
	s, c, n := testbed([]trace.Interval{{Start: 0, End: 1e5}}, simpleCfg())
	calls := 0
	f := n.Transfer(c.Node(0), c.Node(1), 100, func(error) { calls++ })
	s.RunUntil(1000)
	n.Cancel(f) // already failed via stall; must not double-fire
	s.RunUntil(2000)
	if calls != 1 {
		t.Fatalf("callback fired %d times", calls)
	}
}

func TestConcurrentFlowConservation(t *testing.T) {
	// Many flows into one destination: aggregate completion respects the
	// destination NIC capacity.
	s, c, n := testbed(nil, simpleCfg())
	const flows = 5
	var last float64
	for i := 0; i < flows; i++ {
		src := c.Node(1 + i%3)
		n.Transfer(src, c.Node(0), 200, func(error) {
			if s.Now() > last {
				last = s.Now()
			}
		})
	}
	s.Run()
	// 1000 bytes total through a 100 B/s NIC >= 10 s; sources also cap.
	if last < 10-1e-6 {
		t.Fatalf("flows finished at %v, violating capacity (min 10)", last)
	}
	if math.Abs(n.Consumed(0)-1000) > 1e-6 {
		t.Fatalf("dst consumed %v, want 1000", n.Consumed(0))
	}
}

func TestActiveFlowsBookkeeping(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	n.Transfer(c.Node(1), c.Node(2), 1000, func(error) {})
	if n.ActiveFlows(1) != 1 || n.ActiveFlows(2) != 1 {
		t.Fatalf("active flows %d/%d, want 1/1", n.ActiveFlows(1), n.ActiveFlows(2))
	}
	s.Run()
	if n.ActiveFlows(1) != 0 || n.ActiveFlows(2) != 0 {
		t.Fatal("flows not removed after completion")
	}
	if n.ActiveFlows(-1) != 0 || n.ActiveFlows(99) != 0 {
		t.Fatal("out-of-range node IDs should report 0 flows")
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	_ = s
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer did not panic")
		}
	}()
	n.Transfer(c.Node(1), c.Node(2), -1, func(error) {})
}

// TestMidInstantReadsSeeSettledState pins the observable contract of
// batched settling: endpoint changes only mark nodes dirty, but every read
// accessor flushes first, so state seen from inside an event callback is
// indistinguishable from the old settle-on-every-change schedule.
func TestMidInstantReadsSeeSettledState(t *testing.T) {
	s, c, n := testbed(nil, simpleCfg())
	n.Transfer(c.Node(1), c.Node(2), 1000, func(error) {})
	s.After(5, "probe", func() {
		// Progress is charged at settle points, never speculatively:
		// with nothing marked dirty since t=0, the half-finished flow
		// has no settled bytes yet (matching the old per-change
		// schedule, which also only settled on changes).
		if got := n.Consumed(1); got != 0 {
			t.Errorf("Consumed(src) before any change = %v, want 0", got)
		}
		// A new transfer marks node 1 dirty. Reads issued before the
		// end-of-instant flush must still observe it: the flush charges
		// flow 1's elapsed 500 B and re-shares the NIC.
		n.Transfer(c.Node(1), c.Node(3), 1000, func(error) {})
		if got := n.ActiveFlows(1); got != 2 {
			t.Errorf("ActiveFlows(src) after second transfer = %d, want 2", got)
		}
		if got := n.Consumed(1); math.Abs(got-500) > 1e-6 {
			t.Errorf("Consumed(src) after second transfer = %v, want 500", got)
		}
		if got := n.TotalBytes(); math.Abs(got-500) > 1e-6 {
			t.Errorf("TotalBytes mid-instant = %v, want 500", got)
		}
	})
	s.Run()
	// Flow 1: 500 B at full rate, then 500 B at half rate (5+10 s).
	// Flow 2: 1000 B, half rate until t=15 (500 B), full rate after (+5 s).
	if got := n.Consumed(1); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("Consumed(src) final = %v, want 2000", got)
	}
	if got := n.TotalBytes(); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("TotalBytes final = %v, want 2000", got)
	}
	if s.Now() != 20 {
		t.Fatalf("simulation ended at %v, want 20", s.Now())
	}
}
