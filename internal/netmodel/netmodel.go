// Package netmodel simulates the cluster interconnect and node disks as
// shared-capacity resources.
//
// Every data movement (block replication, shuffle fetch, DFS read/write) is
// a Flow between two nodes. A remote flow's rate is the min of its fair
// shares at both NICs (rate = min(C/src_flows, C/dst_flows)); flows between
// a node and itself model local disk copies and share the node's disk
// bandwidth. Rates are recomputed whenever a flow starts or finishes at an
// endpoint or an endpoint changes availability, so transfer times respond
// to contention — this is what saturates MOON's small dedicated set at low
// volatile-to-dedicated ratios (the paper's one regression case) and what
// the Algorithm 1 throttler measures.
//
// Rate settling is batched per simulation instant: an endpoint change marks
// the node dirty, and one settle pass — run by a sim.Barrier before the
// clock leaves the instant — recomputes rates once per affected flow
// instead of once per change. Under fan-in (k flows starting at one node in
// one instant) that is O(k) settles instead of the O(k²) the eager
// per-change recompute paid. Zero simulated time passes between the change
// and the flush, so no intermediate rate is ever observable; dirty nodes
// are processed in first-marked order and flows in list order, which keeps
// the floating-point accumulation order of settled bytes — and therefore
// every run byte-identical to the eager schedule. Reads (Consumed,
// TotalBytes, ActiveFlows) and flow completion flush first, so observers
// never see a half-settled instant.
//
// A flow with an unavailable endpoint makes no progress; if the outage lasts
// longer than the configured stall timeout the flow fails with ErrStalled,
// modeling the client-side timeouts the paper describes for I/O against
// "dead" DataNodes.
package netmodel

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Errors reported to Flow completion callbacks.
var (
	// ErrStalled means an endpoint stayed unavailable past the stall
	// timeout.
	ErrStalled = errors.New("netmodel: transfer stalled by node outage")
	// ErrCanceled means the initiator canceled the flow.
	ErrCanceled = errors.New("netmodel: transfer canceled")
)

// Config sets the physical resource capacities.
type Config struct {
	// NodeBandwidth is each node's NIC capacity in bytes/second
	// (shared by all remote flows touching the node, both directions —
	// a deliberate simplification of 1 GbE full duplex).
	NodeBandwidth float64
	// DiskBandwidth is each node's local disk copy bandwidth in
	// bytes/second, shared by local flows.
	DiskBandwidth float64
	// StallTimeout is how long a flow survives an endpoint outage before
	// failing with ErrStalled.
	StallTimeout float64
}

// DefaultConfig models the paper's testbed fabric: 1 Gb/s Ethernet
// (~117 MB/s payload), commodity disks, and Hadoop-era client timeouts.
func DefaultConfig() Config {
	return Config{
		NodeBandwidth: 117e6,
		DiskBandwidth: 60e6,
		StallTimeout:  30,
	}
}

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst *cluster.Node
	id       uint64

	remaining  float64
	rate       float64
	lastUpdate float64

	done       func(error)
	completion sim.Event
	stall      sim.Event
	finished   bool

	// completionAt/dueIdx locate the flow in the network's completion-time
	// index while a completion event is scheduled; dueIdx is -1 otherwise.
	completionAt float64
	dueIdx       int
}

// Remaining returns the bytes not yet transferred (settled to the last rate
// change, not the current instant).
func (f *Flow) Remaining() float64 { return f.remaining }

// nodeState tracks the flows touching one node.
type nodeState struct {
	remote []*Flow
	local  []*Flow
	// consumed accumulates bytes moved through this node (both
	// directions), for bandwidth measurement.
	consumed float64
}

// Network simulates all transfers for a cluster.
type Network struct {
	sim    *sim.Simulation
	cfg    Config
	nodes  []*nodeState
	nextID uint64

	// scratch is a stack of reusable flow buffers for settle iteration
	// (refresh can re-enter the settle pass via finish, so one buffer is
	// not enough; a stack keeps nesting safe without per-event allocation).
	scratch [][]*Flow

	// dirty queues nodes whose flow sets or availability changed this
	// instant, in first-marked order; inDirty dedups membership. flush
	// drains it once per instant (or on read / at flow completion).
	dirty    []int
	inDirty  []bool
	flushing bool

	// flowsAt indexes live flows by the exact time of their scheduled
	// completion event. At each instant, flows whose completion falls
	// exactly now ("due" flows) are the one case where a deferred settle
	// is unsafe: the eager per-change recompute would discover them at
	// zero remaining inside the very call that changed their endpoint and
	// cascade-finish them mid-callback. dueCount[node] counts due flows
	// per endpoint for the current instant (curInstant); dueTouched lists
	// the nonzero entries for O(touched) reset at the next instant.
	flowsAt    map[float64][]*Flow
	dueCount   []int
	dueTouched []int
	curInstant float64

	// listEpoch counts every mutation that can invalidate a precomputed
	// fair-share rate: flow-list membership changes and mid-pass endpoint
	// marks. The sharded settle phase snapshots it before fanning out and
	// falls back to live rate computation for any flow refreshed after it
	// moves — see maybeShardSettle.
	listEpoch uint64

	// Reusable buffers for the sharded settle phase (see maybeShardSettle).
	shardIDs   []int
	shardOff   []int
	shardRates []float64

	// settleDepth counts settleNode frames on the stack. An endpoint
	// change made while a pass is in progress (a done callback starting a
	// replacement transfer mid-cascade) cannot defer: the enclosing pass
	// will refresh the same flows again after it returns, so a deferred
	// reschedule would land after reschedules the eager per-change
	// recompute issued before it — permuting event seq order among flows
	// that complete at the same future instant.
	settleDepth int

	// TotalBytes counts every byte delivered by completed or partial
	// flows, fleet-wide.
	totalBytes float64

	// Instrument handles (nil without a collector).
	mFlows  *metrics.Counter
	mBytes  *metrics.Counter
	mStalls *metrics.Counter
}

// Instrument registers fabric observability on c: flows started, bytes
// delivered (settled, so partial progress of failed flows counts, matching
// TotalBytes) and stall failures, all time-bucketed.
func (n *Network) Instrument(c *metrics.Collector) {
	if c == nil {
		return
	}
	n.mFlows = c.TimedCounter(metrics.LayerNet, "flows_started", "")
	n.mBytes = c.TimedCounter(metrics.LayerNet, "bytes_delivered", "")
	n.mStalls = c.TimedCounter(metrics.LayerNet, "flow_stalls", "")
}

// New attaches a network to the cluster and subscribes to availability
// transitions of every node. The network registers a simulation barrier so
// the deferred settle pass runs before the clock leaves any instant.
func New(s *sim.Simulation, c *cluster.Cluster, cfg Config) *Network {
	n := &Network{
		sim:      s,
		cfg:      cfg,
		nodes:    make([]*nodeState, len(c.Nodes)),
		inDirty:  make([]bool, len(c.Nodes)),
		flowsAt:  make(map[float64][]*Flow),
		dueCount: make([]int, len(c.Nodes)),
	}
	for i := range n.nodes {
		n.nodes[i] = &nodeState{}
	}
	for _, node := range c.Nodes {
		node.Watch(func(nd *cluster.Node, _ bool) { n.nodeChanged(nd) })
	}
	s.Barrier(n.flush)
	return n
}

// Consumed returns total bytes moved through the node so far (settled).
func (n *Network) Consumed(nodeID int) float64 {
	if nodeID < 0 || nodeID >= len(n.nodes) {
		return 0
	}
	n.syncRead()
	return n.nodes[nodeID].consumed
}

// TotalBytes returns the fleet-wide settled byte count.
func (n *Network) TotalBytes() float64 {
	n.syncRead()
	return n.totalBytes
}

// ActiveFlows returns the number of remote flows currently touching the
// node.
func (n *Network) ActiveFlows(nodeID int) int {
	if nodeID < 0 || nodeID >= len(n.nodes) {
		return 0
	}
	n.syncRead()
	return len(n.nodes[nodeID].remote)
}

// syncRead settles everything an observer must not see pending. Outside a
// settle pass that is a full flush. Inside one (a completion callback
// reading the network mid-pass) the remaining marks are drained in the same
// first-marked order the pass would have used, so the read sees exactly the
// state the eager per-change schedule would have shown at this point —
// including flows that reached zero earlier in the instant, which must
// already be finished and gone from the load counts.
func (n *Network) syncRead() {
	if n.flushing {
		n.drainDirty()
		return
	}
	n.flush()
}

// drainDirty processes pending marks in first-marked order. Entries cleared
// by a nested drain are skipped; marks appended while the drain runs are
// picked up by the same loop. Callers must hold flushing == true.
func (n *Network) drainDirty() {
	for i := 0; i < len(n.dirty); i++ {
		id := n.dirty[i]
		if !n.inDirty[id] {
			continue
		}
		n.inDirty[id] = false
		n.settleNode(id)
	}
}

// Transfer starts moving bytes from src to dst and invokes done exactly once
// with nil on completion or an error on failure. src == dst models a local
// disk copy. Zero-byte transfers complete at the current instant.
func (n *Network) Transfer(src, dst *cluster.Node, bytes float64, done func(error)) *Flow {
	if src == nil || dst == nil {
		panic("netmodel: Transfer with nil endpoint")
	}
	if bytes < 0 {
		panic(fmt.Sprintf("netmodel: negative transfer size %v", bytes))
	}
	f := &Flow{Src: src, Dst: dst, id: n.nextID, remaining: bytes, done: done, lastUpdate: n.sim.Now(), dueIdx: -1}
	n.nextID++
	n.mFlows.IncAt(f.lastUpdate)
	if bytes == 0 {
		f.finished = true
		n.sim.After(0, "net.done0", func() { done(nil) })
		return f
	}
	n.listEpoch++
	if f.local() {
		n.nodes[src.ID].local = append(n.nodes[src.ID].local, f)
		n.markDirty(src.ID)
	} else {
		n.nodes[src.ID].remote = append(n.nodes[src.ID].remote, f)
		n.nodes[dst.ID].remote = append(n.nodes[dst.ID].remote, f)
		n.markDirty(src.ID)
		n.markDirty(dst.ID)
	}
	n.checkStall(f)
	return f
}

// Cancel aborts the flow; done receives ErrCanceled at the current instant.
// Canceling a finished flow is a no-op.
func (n *Network) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	n.finish(f, ErrCanceled)
}

func (f *Flow) local() bool { return f.Src.ID == f.Dst.ID }

// settle charges progress made at the current rate since the last update.
func (n *Network) settle(f *Flow) {
	now := n.sim.Now()
	if f.rate > 0 {
		delta := f.rate * (now - f.lastUpdate)
		if delta > f.remaining {
			delta = f.remaining
		}
		f.remaining -= delta
		n.totalBytes += delta
		n.mBytes.AddAt(now, delta)
		n.nodes[f.Src.ID].consumed += delta
		if !f.local() {
			n.nodes[f.Dst.ID].consumed += delta
		}
	}
	f.lastUpdate = now
}

// currentRate computes the flow's fair-share rate from endpoint load and
// availability.
func (n *Network) currentRate(f *Flow) float64 {
	if !f.Src.Available() || !f.Dst.Available() {
		return 0
	}
	if f.local() {
		cnt := len(n.nodes[f.Src.ID].local)
		if cnt == 0 {
			return 0
		}
		return n.cfg.DiskBandwidth / float64(cnt)
	}
	sc := len(n.nodes[f.Src.ID].remote)
	dc := len(n.nodes[f.Dst.ID].remote)
	if sc == 0 || dc == 0 {
		return 0
	}
	srcShare := n.cfg.NodeBandwidth / float64(sc)
	dstShare := n.cfg.NodeBandwidth / float64(dc)
	if srcShare < dstShare {
		return srcShare
	}
	return dstShare
}

// takeScratch pops a reusable flow buffer (snapshotting a node's flow lists
// before iteration, since refresh/finish mutate them).
func (n *Network) takeScratch() []*Flow {
	if k := len(n.scratch); k > 0 {
		b := n.scratch[k-1]
		n.scratch = n.scratch[:k-1]
		return b[:0]
	}
	return nil
}

func (n *Network) putScratch(b []*Flow) {
	for i := range b {
		b[i] = nil
	}
	n.scratch = append(n.scratch, b)
}

// indexCompletion records the exact time of f's scheduled completion event.
// The absolute time passed in must be computed as sim.Now()+delay with the
// identical delay handed to sim.After, so map lookups by the current clock
// hit the bucket bit-for-bit.
func (n *Network) indexCompletion(f *Flow, at float64) {
	b := n.flowsAt[at]
	f.completionAt = at
	f.dueIdx = len(b)
	n.flowsAt[at] = append(b, f)
}

// unindexCompletion removes f from the completion-time index (O(1)
// swap-remove; bucket order is immaterial — only counts are derived from
// it). If f was registered as due at the current instant its endpoint
// counts are released too.
func (n *Network) unindexCompletion(f *Flow) {
	if f.dueIdx < 0 {
		return
	}
	b := n.flowsAt[f.completionAt]
	last := len(b) - 1
	moved := b[last]
	b[f.dueIdx] = moved
	moved.dueIdx = f.dueIdx
	b[last] = nil
	if last == 0 {
		delete(n.flowsAt, f.completionAt)
	} else {
		n.flowsAt[f.completionAt] = b[:last]
	}
	f.dueIdx = -1
	if f.completionAt == n.curInstant && n.curInstant == n.sim.Now() {
		n.dueCount[f.Src.ID]--
		if !f.local() {
			n.dueCount[f.Dst.ID]--
		}
	}
}

// syncInstant rebuilds the per-node due-flow counts when the clock has moved
// since they were last built. Cost is O(flows completing at this exact
// instant), almost always zero.
func (n *Network) syncInstant() {
	now := n.sim.Now()
	if now == n.curInstant {
		return
	}
	for _, id := range n.dueTouched {
		n.dueCount[id] = 0
	}
	n.dueTouched = n.dueTouched[:0]
	n.curInstant = now
	for _, f := range n.flowsAt[now] {
		n.addDue(f.Src.ID)
		if !f.local() {
			n.addDue(f.Dst.ID)
		}
	}
}

func (n *Network) addDue(id int) {
	if n.dueCount[id] == 0 {
		n.dueTouched = append(n.dueTouched, id)
	}
	n.dueCount[id]++
}

// markDirty queues the node for the next settle pass. Marks keep their
// first-come order — the same order the eager per-change recompute would
// have first touched each node — so the flush replays the identical
// floating-point accumulation sequence.
//
// One case must not defer: a node carrying a flow whose completion event is
// scheduled at this very instant. The eager recompute would have found that
// flow at zero remaining inside this call and cascade-finished it before the
// caller's next statement — canceling its pending event, delivering its done
// callback, and freeing whatever the caller tracks through plain state (a
// shuffle's in-flight slot, say) with no intervening read to trigger a
// flush. For those nodes the pending marks drain first (keeping earlier
// deferred work in accumulation order) and the node settles eagerly, exactly
// as the per-change schedule would have.
func (n *Network) markDirty(nodeID int) {
	n.listEpoch++
	n.syncInstant()
	if n.settleDepth > 0 {
		// Mid-pass change: the eager schedule ran its recompute right
		// here, between the enclosing pass's refreshes. Settle inline at
		// the same point. A mark the node may still hold stays queued —
		// the eager schedule also refreshed these flows again at that
		// later touch.
		n.settleNode(nodeID)
		return
	}
	if n.dueCount[nodeID] > 0 {
		// See the comment above the function: a flow on this node
		// completes at this very instant and must cascade-finish inside
		// this call. Earlier deferred work drains first to keep its place
		// in the accumulation order.
		n.flush()
		n.settleNode(nodeID)
		return
	}
	if n.inDirty[nodeID] {
		return
	}
	n.inDirty[nodeID] = true
	n.dirty = append(n.dirty, nodeID)
}

// flush drains the dirty queue: one settle pass per marked node at the
// current instant. Nodes marked while the pass runs (flow completions
// cascading into endpoint changes) are appended and drained by the same
// loop. flush reports whether it did any work, which is the contract the
// sim.Barrier uses to re-poll until the instant is quiescent. Re-entrant
// calls (a done callback reading Consumed mid-pass) are no-ops.
func (n *Network) flush() bool {
	if n.flushing || len(n.dirty) == 0 {
		return false
	}
	n.flushing = true
	n.maybeShardSettle()
	n.drainDirty()
	n.dirty = n.dirty[:0]
	n.flushing = false
	return true
}

// Shard-phase thresholds: below these the spawn cost of a parallel phase
// exceeds the rate arithmetic it saves, so small instants stay serial
// (which is byte-identical anyway).
const (
	settleShardMinNodes = 64
	settleShardMinFlows = 256
)

// maybeShardSettle runs the parallel half of a large settle pass: for every
// node marked dirty at flush entry it precomputes each touching flow's
// candidate fair-share rate across the shard pool, then applies the pass
// serially in first-marked order. The phase is a pure read — rates are a
// function of flow-list lengths and endpoint availability, neither of which
// changes while it runs — and all mutation (settled-byte accumulation,
// completion-event cancel/reschedule, metric observations) happens in the
// serial apply, in exactly the order drainDirty uses. Precomputed rates are
// trusted only while listEpoch is unmoved; any mid-apply cascade (a finish,
// a new transfer from a done callback, an endpoint mark) bumps the epoch
// and later refreshes fall back to live currentRate — the same pure
// function — so the fanned pass is byte-identical to the serial one at any
// worker count. Nodes the apply skips stay for drainDirty, which the caller
// runs right after.
func (n *Network) maybeShardSettle() {
	pool := n.sim.Shards()
	if pool.Serial() || len(n.dirty) < settleShardMinNodes {
		return
	}
	// Size the batch: marked nodes at flush entry, and one rate slot per
	// flow touching them (remote then local, the settleNode order).
	ids := n.shardIDs[:0]
	off := n.shardOff[:0]
	flows := 0
	for _, id := range n.dirty {
		if !n.inDirty[id] {
			continue
		}
		st := n.nodes[id]
		ids = append(ids, id)
		off = append(off, flows)
		flows += len(st.remote) + len(st.local)
	}
	n.shardIDs, n.shardOff = ids, off
	if flows < settleShardMinFlows {
		return
	}
	if cap(n.shardRates) < flows {
		n.shardRates = make([]float64, flows)
	}
	rates := n.shardRates[:flows]
	epoch := n.listEpoch
	pool.Run(len(ids), func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			st := n.nodes[ids[k]]
			idx := off[k]
			for _, f := range st.remote {
				rates[idx] = n.currentRate(f)
				idx++
			}
			for _, f := range st.local {
				rates[idx] = n.currentRate(f)
				idx++
			}
		}
	})
	// Serial apply in first-marked order, flows in list order — the exact
	// accumulation and (at, seq) consumption sequence of the serial drain.
	for k, id := range ids {
		if !n.inDirty[id] {
			continue
		}
		n.inDirty[id] = false
		n.settleNodeRated(id, rates[off[k]:], epoch)
	}
}

// settleNodeRated is settleNode with precomputed candidate rates, valid
// while the network's listEpoch still equals epoch. A stale epoch at entry
// means the node's flow lists no longer match the rate layout, so the plain
// live path runs instead.
func (n *Network) settleNodeRated(nodeID int, rates []float64, epoch uint64) {
	if n.listEpoch != epoch {
		n.settleNode(nodeID)
		return
	}
	st := n.nodes[nodeID]
	buf := n.takeScratch()
	buf = append(buf, st.remote...)
	buf = append(buf, st.local...)
	n.settleDepth++
	for j, f := range buf {
		if n.listEpoch == epoch {
			n.refreshRated(f, rates[j])
		} else {
			// A cascade invalidated the precomputed rates; the snapshot
			// still matches the phase-time lists, so positions stay
			// aligned, but the values must be recomputed live.
			n.refresh(f)
		}
	}
	n.settleDepth--
	n.putScratch(buf)
}

// settleNode resettles and reschedules every flow touching the node.
func (n *Network) settleNode(nodeID int) {
	st := n.nodes[nodeID]
	buf := n.takeScratch()
	buf = append(buf, st.remote...)
	buf = append(buf, st.local...)
	n.settleDepth++
	for _, f := range buf {
		n.refresh(f)
	}
	n.settleDepth--
	n.putScratch(buf)
}

// refresh recomputes one flow's rate and completion time.
func (n *Network) refresh(f *Flow) {
	if f.finished {
		return
	}
	n.settle(f)
	f.rate = n.currentRate(f)
	n.sim.Cancel(f.completion)
	f.completion = sim.Event{}
	n.unindexCompletion(f)
	if f.remaining <= 1e-6 {
		n.finish(f, nil)
		return
	}
	if f.rate > 0 {
		d := f.remaining / f.rate
		f.completion = n.sim.After(d, "net.complete", func() {
			n.finish(f, nil)
		})
		n.indexCompletion(f, n.sim.Now()+d)
	}
}

// refreshRated is refresh with the rate supplied by the parallel phase
// instead of recomputed; the caller guarantees rate == currentRate(f) (the
// listEpoch guard). Everything else — the settle, the cancel/reschedule and
// its (at, seq) consumption, the completion indexing — is the serial path.
func (n *Network) refreshRated(f *Flow, rate float64) {
	if f.finished {
		return
	}
	n.settle(f)
	f.rate = rate
	n.sim.Cancel(f.completion)
	f.completion = sim.Event{}
	n.unindexCompletion(f)
	if f.remaining <= 1e-6 {
		n.finish(f, nil)
		return
	}
	if f.rate > 0 {
		d := f.remaining / f.rate
		f.completion = n.sim.After(d, "net.complete", func() {
			n.finish(f, nil)
		})
		n.indexCompletion(f, n.sim.Now()+d)
	}
}

// checkStall arms or disarms the stall-failure timer according to endpoint
// availability.
func (n *Network) checkStall(f *Flow) {
	if f.finished {
		return
	}
	down := !f.Src.Available() || !f.Dst.Available()
	if down && !f.stall.Pending() {
		f.stall = n.sim.After(n.cfg.StallTimeout, "net.stall", func() {
			f.stall = sim.Event{}
			n.finish(f, ErrStalled)
		})
	} else if !down && f.stall.Pending() {
		n.sim.Cancel(f.stall)
		f.stall = sim.Event{}
	}
}

// finish removes the flow and fires its callback. Pending marks flush
// first: any settling the eager schedule would have done before this point
// lands before the flow's own final settle, keeping the accumulation order
// (and possibly finishing f itself — a flow that reached zero earlier this
// instant completes in the flush, exactly as it would have eagerly).
//
// Completion is the one endpoint change that settles eagerly rather than
// marking dirty: sibling flows that hit zero at the same instant must
// cascade-finish inside this call — their completion events canceled before
// they fire, their callbacks delivered before this flow's — to replay the
// exact callback order of the per-change schedule. Deferring the cascade to
// the barrier would fire the siblings' completion events as separate sim
// events and reorder same-instant callbacks.
func (n *Network) finish(f *Flow, err error) {
	if f.finished {
		return
	}
	n.flush()
	if f.finished {
		return
	}
	n.settle(f)
	n.listEpoch++
	f.finished = true
	if err == ErrStalled {
		n.mStalls.IncAt(n.sim.Now())
	}
	n.sim.Cancel(f.completion)
	n.sim.Cancel(f.stall)
	f.completion, f.stall = sim.Event{}, sim.Event{}
	n.unindexCompletion(f)
	if f.local() {
		removeFlow(&n.nodes[f.Src.ID].local, f)
		n.settleNode(f.Src.ID)
	} else {
		removeFlow(&n.nodes[f.Src.ID].remote, f)
		removeFlow(&n.nodes[f.Dst.ID].remote, f)
		n.settleNode(f.Src.ID)
		n.settleNode(f.Dst.ID)
	}
	if f.done != nil {
		f.done(err)
	}
}

// nodeChanged reacts to an availability transition: rates collapse to zero
// or recover (settled at the barrier), and stall timers arm/disarm
// immediately. checkStall only reads availability and arms sim events — it
// never mutates the flow lists — so no snapshot is needed.
func (n *Network) nodeChanged(node *cluster.Node) {
	n.markDirty(node.ID)
	st := n.nodes[node.ID]
	for _, f := range st.remote {
		n.checkStall(f)
	}
	for _, f := range st.local {
		n.checkStall(f)
	}
}

func removeFlow(s *[]*Flow, f *Flow) {
	for i, x := range *s {
		if x == f {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}
