// Package netmodel simulates the cluster interconnect and node disks as
// shared-capacity resources.
//
// Every data movement (block replication, shuffle fetch, DFS read/write) is
// a Flow between two nodes. A remote flow's rate is the min of its fair
// shares at both NICs (rate = min(C/src_flows, C/dst_flows)); flows between
// a node and itself model local disk copies and share the node's disk
// bandwidth. Rates are recomputed whenever a flow starts or finishes at an
// endpoint or an endpoint changes availability, so transfer times respond
// to contention — this is what saturates MOON's small dedicated set at low
// volatile-to-dedicated ratios (the paper's one regression case) and what
// the Algorithm 1 throttler measures.
//
// A flow with an unavailable endpoint makes no progress; if the outage lasts
// longer than the configured stall timeout the flow fails with ErrStalled,
// modeling the client-side timeouts the paper describes for I/O against
// "dead" DataNodes.
package netmodel

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Errors reported to Flow completion callbacks.
var (
	// ErrStalled means an endpoint stayed unavailable past the stall
	// timeout.
	ErrStalled = errors.New("netmodel: transfer stalled by node outage")
	// ErrCanceled means the initiator canceled the flow.
	ErrCanceled = errors.New("netmodel: transfer canceled")
)

// Config sets the physical resource capacities.
type Config struct {
	// NodeBandwidth is each node's NIC capacity in bytes/second
	// (shared by all remote flows touching the node, both directions —
	// a deliberate simplification of 1 GbE full duplex).
	NodeBandwidth float64
	// DiskBandwidth is each node's local disk copy bandwidth in
	// bytes/second, shared by local flows.
	DiskBandwidth float64
	// StallTimeout is how long a flow survives an endpoint outage before
	// failing with ErrStalled.
	StallTimeout float64
}

// DefaultConfig models the paper's testbed fabric: 1 Gb/s Ethernet
// (~117 MB/s payload), commodity disks, and Hadoop-era client timeouts.
func DefaultConfig() Config {
	return Config{
		NodeBandwidth: 117e6,
		DiskBandwidth: 60e6,
		StallTimeout:  30,
	}
}

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst *cluster.Node
	id       uint64

	remaining  float64
	rate       float64
	lastUpdate float64

	done       func(error)
	completion sim.Event
	stall      sim.Event
	finished   bool
}

// Remaining returns the bytes not yet transferred (settled to the last rate
// change, not the current instant).
func (f *Flow) Remaining() float64 { return f.remaining }

// nodeState tracks the flows touching one node.
type nodeState struct {
	remote []*Flow
	local  []*Flow
	// consumed accumulates bytes moved through this node (both
	// directions), for bandwidth measurement.
	consumed float64
}

// Network simulates all transfers for a cluster.
type Network struct {
	sim    *sim.Simulation
	cfg    Config
	nodes  []*nodeState
	nextID uint64

	// scratch is a stack of reusable flow buffers for update iteration
	// (refresh can re-enter updateNode via finish, so one buffer is not
	// enough; a stack keeps nesting safe without per-event allocation).
	scratch [][]*Flow

	// TotalBytes counts every byte delivered by completed or partial
	// flows, fleet-wide.
	totalBytes float64

	// Instrument handles (nil without a collector).
	mFlows  *metrics.Counter
	mBytes  *metrics.Counter
	mStalls *metrics.Counter
}

// Instrument registers fabric observability on c: flows started, bytes
// delivered (settled, so partial progress of failed flows counts, matching
// TotalBytes) and stall failures, all time-bucketed.
func (n *Network) Instrument(c *metrics.Collector) {
	if c == nil {
		return
	}
	n.mFlows = c.TimedCounter(metrics.LayerNet, "flows_started", "")
	n.mBytes = c.TimedCounter(metrics.LayerNet, "bytes_delivered", "")
	n.mStalls = c.TimedCounter(metrics.LayerNet, "flow_stalls", "")
}

// New attaches a network to the cluster and subscribes to availability
// transitions of every node.
func New(s *sim.Simulation, c *cluster.Cluster, cfg Config) *Network {
	n := &Network{sim: s, cfg: cfg, nodes: make([]*nodeState, len(c.Nodes))}
	for i := range n.nodes {
		n.nodes[i] = &nodeState{}
	}
	for _, node := range c.Nodes {
		node.Watch(func(nd *cluster.Node, _ bool) { n.nodeChanged(nd) })
	}
	return n
}

// Consumed returns total bytes moved through the node so far (settled).
func (n *Network) Consumed(nodeID int) float64 {
	if nodeID < 0 || nodeID >= len(n.nodes) {
		return 0
	}
	return n.nodes[nodeID].consumed
}

// TotalBytes returns the fleet-wide settled byte count.
func (n *Network) TotalBytes() float64 { return n.totalBytes }

// ActiveFlows returns the number of remote flows currently touching the
// node.
func (n *Network) ActiveFlows(nodeID int) int {
	if nodeID < 0 || nodeID >= len(n.nodes) {
		return 0
	}
	return len(n.nodes[nodeID].remote)
}

// Transfer starts moving bytes from src to dst and invokes done exactly once
// with nil on completion or an error on failure. src == dst models a local
// disk copy. Zero-byte transfers complete at the current instant.
func (n *Network) Transfer(src, dst *cluster.Node, bytes float64, done func(error)) *Flow {
	if src == nil || dst == nil {
		panic("netmodel: Transfer with nil endpoint")
	}
	if bytes < 0 {
		panic(fmt.Sprintf("netmodel: negative transfer size %v", bytes))
	}
	f := &Flow{Src: src, Dst: dst, id: n.nextID, remaining: bytes, done: done, lastUpdate: n.sim.Now()}
	n.nextID++
	n.mFlows.IncAt(f.lastUpdate)
	if bytes == 0 {
		f.finished = true
		n.sim.After(0, "net.done0", func() { done(nil) })
		return f
	}
	if f.local() {
		n.nodes[src.ID].local = append(n.nodes[src.ID].local, f)
		n.updateNode(src.ID)
	} else {
		n.nodes[src.ID].remote = append(n.nodes[src.ID].remote, f)
		n.nodes[dst.ID].remote = append(n.nodes[dst.ID].remote, f)
		n.updateNode(src.ID)
		n.updateNode(dst.ID)
	}
	n.checkStall(f)
	return f
}

// Cancel aborts the flow; done receives ErrCanceled at the current instant.
// Canceling a finished flow is a no-op.
func (n *Network) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	n.finish(f, ErrCanceled)
}

func (f *Flow) local() bool { return f.Src.ID == f.Dst.ID }

// settle charges progress made at the current rate since the last update.
func (n *Network) settle(f *Flow) {
	now := n.sim.Now()
	if f.rate > 0 {
		delta := f.rate * (now - f.lastUpdate)
		if delta > f.remaining {
			delta = f.remaining
		}
		f.remaining -= delta
		n.totalBytes += delta
		n.mBytes.AddAt(now, delta)
		n.nodes[f.Src.ID].consumed += delta
		if !f.local() {
			n.nodes[f.Dst.ID].consumed += delta
		}
	}
	f.lastUpdate = now
}

// currentRate computes the flow's fair-share rate from endpoint load and
// availability.
func (n *Network) currentRate(f *Flow) float64 {
	if !f.Src.Available() || !f.Dst.Available() {
		return 0
	}
	if f.local() {
		cnt := len(n.nodes[f.Src.ID].local)
		if cnt == 0 {
			return 0
		}
		return n.cfg.DiskBandwidth / float64(cnt)
	}
	sc := len(n.nodes[f.Src.ID].remote)
	dc := len(n.nodes[f.Dst.ID].remote)
	if sc == 0 || dc == 0 {
		return 0
	}
	srcShare := n.cfg.NodeBandwidth / float64(sc)
	dstShare := n.cfg.NodeBandwidth / float64(dc)
	if srcShare < dstShare {
		return srcShare
	}
	return dstShare
}

// takeScratch pops a reusable flow buffer (snapshotting a node's flow lists
// before iteration, since refresh/finish mutate them).
func (n *Network) takeScratch() []*Flow {
	if k := len(n.scratch); k > 0 {
		b := n.scratch[k-1]
		n.scratch = n.scratch[:k-1]
		return b[:0]
	}
	return nil
}

func (n *Network) putScratch(b []*Flow) {
	for i := range b {
		b[i] = nil
	}
	n.scratch = append(n.scratch, b)
}

// updateNode resettles and reschedules every flow touching the node.
func (n *Network) updateNode(nodeID int) {
	st := n.nodes[nodeID]
	buf := n.takeScratch()
	buf = append(buf, st.remote...)
	buf = append(buf, st.local...)
	for _, f := range buf {
		n.refresh(f)
	}
	n.putScratch(buf)
}

// refresh recomputes one flow's rate and completion time.
func (n *Network) refresh(f *Flow) {
	if f.finished {
		return
	}
	n.settle(f)
	f.rate = n.currentRate(f)
	n.sim.Cancel(f.completion)
	f.completion = sim.Event{}
	if f.remaining <= 1e-6 {
		n.finish(f, nil)
		return
	}
	if f.rate > 0 {
		f.completion = n.sim.After(f.remaining/f.rate, "net.complete", func() {
			n.settle(f)
			n.finish(f, nil)
		})
	}
}

// checkStall arms or disarms the stall-failure timer according to endpoint
// availability.
func (n *Network) checkStall(f *Flow) {
	if f.finished {
		return
	}
	down := !f.Src.Available() || !f.Dst.Available()
	if down && !f.stall.Pending() {
		f.stall = n.sim.After(n.cfg.StallTimeout, "net.stall", func() {
			f.stall = sim.Event{}
			n.finish(f, ErrStalled)
		})
	} else if !down && f.stall.Pending() {
		n.sim.Cancel(f.stall)
		f.stall = sim.Event{}
	}
}

// finish removes the flow and fires its callback.
func (n *Network) finish(f *Flow, err error) {
	if f.finished {
		return
	}
	n.settle(f)
	f.finished = true
	if err == ErrStalled {
		n.mStalls.IncAt(n.sim.Now())
	}
	n.sim.Cancel(f.completion)
	n.sim.Cancel(f.stall)
	f.completion, f.stall = sim.Event{}, sim.Event{}
	if f.local() {
		removeFlow(&n.nodes[f.Src.ID].local, f)
		n.updateNode(f.Src.ID)
	} else {
		removeFlow(&n.nodes[f.Src.ID].remote, f)
		removeFlow(&n.nodes[f.Dst.ID].remote, f)
		n.updateNode(f.Src.ID)
		n.updateNode(f.Dst.ID)
	}
	if f.done != nil {
		f.done(err)
	}
}

// nodeChanged reacts to an availability transition: rates collapse to zero
// or recover, and stall timers arm/disarm.
func (n *Network) nodeChanged(node *cluster.Node) {
	st := n.nodes[node.ID]
	buf := n.takeScratch()
	buf = append(buf, st.remote...)
	buf = append(buf, st.local...)
	for _, f := range buf {
		n.refresh(f)
	}
	for _, f := range buf {
		n.checkStall(f)
	}
	n.putScratch(buf)
}

func removeFlow(s *[]*Flow, f *Flow) {
	for i, x := range *s {
		if x == f {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}
