package workload

import (
	"strings"
	"testing"
)

func TestStaggered(t *testing.T) {
	base := SleepApp(Sort(132))
	m := Staggered(base, 3, 600)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 3 {
		t.Fatalf("jobs %d, want 3", len(m.Jobs))
	}
	for i, mj := range m.Jobs {
		if want := float64(i) * 600; mj.Offset != want {
			t.Fatalf("job %d offset %v, want %v", i, mj.Offset, want)
		}
		if !strings.HasSuffix(mj.Spec.Job.Name, "-j"+string(rune('0'+i))) {
			t.Fatalf("job %d name %q not suffixed", i, mj.Spec.Job.Name)
		}
		if mj.Spec.Job.NumMaps != base.Job.NumMaps {
			t.Fatalf("job %d maps %d, want %d", i, mj.Spec.Job.NumMaps, base.Job.NumMaps)
		}
	}
}

func TestMixedSizes(t *testing.T) {
	base := Sort(132)
	m := MixedSizes(base, 4, 300, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Jobs[0].Spec.Job.NumMaps != base.Job.NumMaps {
		t.Fatal("even slots should be full size")
	}
	if got, want := m.Jobs[1].Spec.Job.NumMaps, base.Job.NumMaps/4; got != want {
		t.Fatalf("odd slot maps %d, want %d", got, want)
	}
	// Full and scaled sort share the split, so one DFS block size fits all.
	if m.SplitSize() <= 0 {
		t.Fatal("no split size for an input-reading workload")
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	base := SleepApp(Sort(132))
	a := PoissonArrivals(base, 5, 600, 7)
	b := PoissonArrivals(base, 5, 600, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 5 || a.Jobs[0].Offset != 0 {
		t.Fatalf("jobs %d, first offset %v (want 5 jobs starting at 0)", len(a.Jobs), a.Jobs[0].Offset)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Offset != b.Jobs[i].Offset {
			t.Fatalf("same seed diverged at job %d: %v vs %v", i, a.Jobs[i].Offset, b.Jobs[i].Offset)
		}
		if i > 0 && a.Jobs[i].Offset <= a.Jobs[i-1].Offset {
			t.Fatalf("offsets not increasing: job %d at %v after %v", i, a.Jobs[i].Offset, a.Jobs[i-1].Offset)
		}
	}
	c := PoissonArrivals(base, 5, 600, 8)
	same := true
	for i := 1; i < len(a.Jobs); i++ {
		if a.Jobs[i].Offset != c.Jobs[i].Offset {
			same = false
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical arrival schedules")
	}
	// The draws must survive scaling (offsets preserved) like Staggered.
	sc := ScaleMulti(a, 4)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Jobs[3].Offset != a.Jobs[3].Offset {
		t.Fatal("ScaleMulti changed poisson offsets")
	}
}

func TestMultiSpecValidate(t *testing.T) {
	base := SleepApp(WordCount())
	good := Staggered(base, 2, 60)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	if err := (MultiSpec{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty multi-spec accepted")
	}

	dup := good
	dup.Jobs = []MultiJob{good.Jobs[0], good.Jobs[0]}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Fatalf("duplicate names accepted: %v", err)
	}

	back := Staggered(base, 2, 60)
	back.Jobs[1].Offset = -5
	if err := back.Validate(); err == nil {
		t.Fatal("negative offset accepted")
	}

	// Two input-reading jobs with different splits cannot share one DFS.
	a, b := Sort(132), WordCount()
	mixed := MultiSpec{Name: "bad-split", Jobs: []MultiJob{{Spec: a}, {Spec: b}}}
	if a.InputSize/float64(a.Job.NumMaps) != b.InputSize/float64(b.Job.NumMaps) {
		if err := mixed.Validate(); err == nil || !strings.Contains(err.Error(), "split") {
			t.Fatalf("mismatched splits accepted: %v", err)
		}
	}
}

func TestMixedSizesNonDividingScale(t *testing.T) {
	// 5 does not divide sort's 384 maps; the small jobs' input must be
	// re-derived from the common split or Validate rejects the stream.
	m := MixedSizes(Sort(132), 4, 300, 5)
	if err := m.Validate(); err != nil {
		t.Fatalf("generated workload rejected: %v", err)
	}
	if got, want := m.Jobs[1].Spec.Job.NumMaps, 384/5; got != want {
		t.Fatalf("small job maps %d, want %d", got, want)
	}
	sc := ScaleMulti(Staggered(Sort(132), 2, 60), 5)
	if err := sc.Validate(); err != nil {
		t.Fatalf("non-dividing ScaleMulti rejected: %v", err)
	}
}

func TestScaleMulti(t *testing.T) {
	m := Staggered(Sort(132), 2, 120)
	s := ScaleMulti(m, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Jobs[0].Spec.Job.NumMaps != m.Jobs[0].Spec.Job.NumMaps/4 {
		t.Fatal("scale not applied")
	}
	if s.Jobs[1].Offset != 120 {
		t.Fatal("offsets must be preserved")
	}
	if id := ScaleMulti(m, 1); len(id.Jobs) != 2 || id.Jobs[0].Spec.Job.NumMaps != m.Jobs[0].Spec.Job.NumMaps {
		t.Fatal("ScaleMulti(1) is not the identity")
	}
}
