// Package workload encodes the paper's benchmark applications (Table I) as
// resource models for the simulator, plus the sleep app used to isolate
// scheduling effects (Section VI-A).
//
// Calibration: compute times are set so that the baseline profile of
// Table II is approximated at the VO-V1 configuration — sort maps are
// ~20 s of CPU plus a local 62.5 MB spill, word count maps are
// compute-heavy (~100 s) with small intermediate output. Absolute seconds
// on the simulated fabric differ from the authors' Xserve cluster; the
// evaluation compares policies against each other on identical hardware
// models, which is what preserves the paper's shapes.
package workload

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/mapred"
)

// GB and MB express data sizes in bytes.
const (
	MB = 1e6
	GB = 1e9
)

// Spec bundles a job description with its input staging requirements.
type Spec struct {
	Job         mapred.JobConfig
	InputSize   float64
	InputFactor dfs.Factor
}

// Validate checks the job portion of the spec.
func (s Spec) Validate() error {
	if s.InputSize <= 0 {
		return fmt.Errorf("workload: input size %v", s.InputSize)
	}
	return s.Job.Validate()
}

// Sort is the paper's sort application: 24 GB input, 384 maps,
// 0.9 × available reduce slots reduces. Sort shuffles its entire input:
// every map emits its full block as intermediate data, and the reducers
// write the same volume back as output.
//
// reduceSlots is the cluster's total reduce slot count (2 per node in the
// paper), from which NumReduces = 0.9 × slots.
func Sort(reduceSlots int) Spec {
	const (
		inputSize = 24 * GB
		numMaps   = 384
	)
	numReduces := int(0.9 * float64(reduceSlots))
	if numReduces < 1 {
		numReduces = 1
	}
	return Spec{
		InputSize:   inputSize,
		InputFactor: dfs.Factor{D: 1, V: 3},
		Job: mapred.JobConfig{
			Name:               "sort",
			NumMaps:            numMaps,
			NumReduces:         numReduces,
			InputFile:          "sort-input",
			MapCPU:             20,
			ReduceCPU:          15,
			IntermediatePerMap: inputSize / numMaps, // sort shuffles everything
			IntermediateClass:  dfs.Opportunistic,
			IntermediateFactor: dfs.Factor{V: 1},
			OutputPerReduce:    inputSize / float64(numReduces),
			OutputFactor:       dfs.Factor{D: 1, V: 3},
		},
	}
}

// WordCount is the paper's word count application: 20 GB input, 320 maps,
// 20 reduces. Maps are compute-bound and emit small aggregated
// intermediate data; output is small.
func WordCount() Spec {
	const (
		inputSize  = 20 * GB
		numMaps    = 320
		numReduces = 20
	)
	return Spec{
		InputSize:   inputSize,
		InputFactor: dfs.Factor{D: 1, V: 3},
		Job: mapred.JobConfig{
			Name:               "wordcount",
			NumMaps:            numMaps,
			NumReduces:         numReduces,
			InputFile:          "wc-input",
			MapCPU:             99,
			ReduceCPU:          15,
			IntermediatePerMap: 12 * MB,
			IntermediateClass:  dfs.Opportunistic,
			IntermediateFactor: dfs.Factor{V: 1},
			OutputPerReduce:    20 * MB,
			OutputFactor:       dfs.Factor{D: 1, V: 3},
		},
	}
}

// SleepApp mirrors the paper's use of Hadoop's sleep program: it replays an
// application's map/reduce task counts and *measured average execution
// times* (from benchmarking runs of the real application, so they include
// the I/O the real tasks perform) but moves only a trivial amount of
// intermediate data (two integers per record) and no output. The paper
// replicates sleep's intermediate data as reliable {1,1} so data
// management cannot perturb the scheduling comparison.
func SleepApp(from Spec) Spec {
	job := from.Job
	// Measured averages from baseline runs of the real applications
	// (compare the paper's Table II): sort maps ≈ 42 s / reduces ≈ 85 s
	// at its benchmarked replication setting; word count maps ≈ 110 s /
	// reduces ≈ 28 s.
	mapTime, reduceTime := job.MapCPU, job.ReduceCPU
	switch job.Name {
	case "sort":
		mapTime, reduceTime = 42, 85
	case "wordcount":
		mapTime, reduceTime = 110, 28
	}
	return Spec{
		InputSize:   float64(job.NumMaps) * MB, // one tiny block per map
		InputFactor: dfs.Factor{D: 1, V: 3},
		Job: mapred.JobConfig{
			Name:               "sleep-" + job.Name,
			NumMaps:            job.NumMaps,
			NumReduces:         job.NumReduces,
			InputFile:          "sleep-" + job.Name + "-input",
			MapCPU:             mapTime,
			ReduceCPU:          reduceTime,
			IntermediatePerMap: 2e3, // negligible, but exercised end to end
			IntermediateClass:  dfs.Reliable,
			IntermediateFactor: dfs.Factor{D: 1, V: 1},
			OutputPerReduce:    0,
			OutputFactor:       dfs.Factor{D: 1, V: 1},
			SkipInputRead:      true,
		},
	}
}

// Scale shrinks a workload by factor k (maps, reduces and data volumes all
// divided by k, compute times preserved) so large sweeps finish quickly
// while preserving waves-of-tasks structure. Scale(1) is the identity.
func Scale(s Spec, k int) Spec {
	if k <= 1 {
		return s
	}
	out := s
	out.InputSize = s.InputSize / float64(k)
	out.Job.NumMaps = max(1, s.Job.NumMaps/k)
	out.Job.NumReduces = max(1, s.Job.NumReduces/k)
	out.Job.OutputPerReduce = s.Job.OutputPerReduce // per-task sizes preserved
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
