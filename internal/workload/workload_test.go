package workload

import (
	"testing"

	"repro/internal/dfs"
)

func TestSortMatchesTableI(t *testing.T) {
	w := Sort(2 * 66)
	if w.Job.NumMaps != 384 {
		t.Fatalf("sort maps = %d, want 384", w.Job.NumMaps)
	}
	if w.InputSize != 24*GB {
		t.Fatalf("sort input = %v, want 24 GB", w.InputSize)
	}
	// 0.9 × 132 slots = 118 reduces.
	if w.Job.NumReduces != 118 {
		t.Fatalf("sort reduces = %d, want 118", w.Job.NumReduces)
	}
	// Sort shuffles its entire input.
	if got := w.Job.IntermediatePerMap * float64(w.Job.NumMaps); got != w.InputSize {
		t.Fatalf("sort intermediate total = %v, want input size", got)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortMinimumOneReduce(t *testing.T) {
	if got := Sort(0).Job.NumReduces; got != 1 {
		t.Fatalf("reduces = %d, want clamp to 1", got)
	}
}

func TestWordCountMatchesTableI(t *testing.T) {
	w := WordCount()
	if w.Job.NumMaps != 320 || w.Job.NumReduces != 20 {
		t.Fatalf("wordcount %d maps / %d reduces, want 320/20", w.Job.NumMaps, w.Job.NumReduces)
	}
	if w.InputSize != 20*GB {
		t.Fatalf("wordcount input = %v, want 20 GB", w.InputSize)
	}
	// Word count's intermediate data is far smaller than its input.
	if total := w.Job.IntermediatePerMap * float64(w.Job.NumMaps); total >= w.InputSize/2 {
		t.Fatalf("wordcount intermediate %v not small relative to input", total)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepAppProperties(t *testing.T) {
	for _, base := range []Spec{Sort(132), WordCount()} {
		s := SleepApp(base)
		if s.Job.NumMaps != base.Job.NumMaps || s.Job.NumReduces != base.Job.NumReduces {
			t.Fatalf("sleep(%s) changed task counts", base.Job.Name)
		}
		if s.Job.OutputPerReduce != 0 {
			t.Fatalf("sleep(%s) writes output", base.Job.Name)
		}
		if s.Job.IntermediatePerMap > 1e4 {
			t.Fatalf("sleep(%s) intermediate %v not negligible", base.Job.Name, s.Job.IntermediatePerMap)
		}
		if s.Job.IntermediateClass != dfs.Reliable {
			t.Fatalf("sleep(%s) intermediate not reliable", base.Job.Name)
		}
		if s.Job.IntermediateFactor != (dfs.Factor{D: 1, V: 1}) {
			t.Fatalf("sleep(%s) intermediate factor %v, want {1,1}", base.Job.Name, s.Job.IntermediateFactor)
		}
		if !s.Job.SkipInputRead {
			t.Fatalf("sleep(%s) reads input", base.Job.Name)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// The fed-in times are the measured app averages, not raw CPU.
	s := SleepApp(Sort(132))
	if s.Job.MapCPU != 42 || s.Job.ReduceCPU != 85 {
		t.Fatalf("sleep-sort times %v/%v, want 42/85", s.Job.MapCPU, s.Job.ReduceCPU)
	}
}

func TestScale(t *testing.T) {
	w := Sort(132)
	s := Scale(w, 4)
	if s.Job.NumMaps != w.Job.NumMaps/4 {
		t.Fatalf("scaled maps %d", s.Job.NumMaps)
	}
	if s.InputSize != w.InputSize/4 {
		t.Fatalf("scaled input %v", s.InputSize)
	}
	// Per-task sizes are preserved so block size math stays valid.
	if s.InputSize/float64(s.Job.NumMaps) != w.InputSize/float64(w.Job.NumMaps) {
		t.Fatal("scaling changed the input split size")
	}
	if got := Scale(w, 1); got.Job.NumMaps != w.Job.NumMaps {
		t.Fatal("Scale(1) not identity")
	}
	if got := Scale(w, 10000).Job.NumMaps; got != 1 {
		t.Fatalf("extreme scale maps = %d, want clamp to 1", got)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	w := Sort(132)
	w.InputSize = 0
	if w.Validate() == nil {
		t.Fatal("zero input accepted")
	}
	w = Sort(132)
	w.Job.NumMaps = 0
	if w.Validate() == nil {
		t.Fatal("zero maps accepted")
	}
}
