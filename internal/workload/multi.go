package workload

import (
	"fmt"

	"repro/internal/rng"
)

// MultiJob is one entry of a multi-job workload: a job spec plus its
// submission time relative to the run start.
type MultiJob struct {
	Spec   Spec
	Offset float64
}

// MultiSpec describes a multi-job workload — the queued/overlapping job
// streams real opportunistic clusters serve. Jobs are submitted in slice
// order at their offsets and then compete for slots under the tracker's
// SchedPolicy.
type MultiSpec struct {
	Name string
	Jobs []MultiJob
}

// Validate rejects impossible multi-job workloads: every member spec must
// validate, names and input files must be unique (attempt outputs and
// staged inputs are DFS files keyed by them), offsets must be
// non-decreasing and non-negative, and all jobs that read real input must
// share one split size (the DFS has a single block size).
func (m MultiSpec) Validate() error {
	if len(m.Jobs) == 0 {
		return fmt.Errorf("workload: multi-spec %q has no jobs", m.Name)
	}
	names := make(map[string]bool, len(m.Jobs))
	inputs := make(map[string]bool, len(m.Jobs))
	split := 0.0
	prev := 0.0
	for i, mj := range m.Jobs {
		if err := mj.Spec.Validate(); err != nil {
			return fmt.Errorf("workload: multi-spec %q job %d: %w", m.Name, i, err)
		}
		if mj.Offset < 0 || mj.Offset < prev {
			return fmt.Errorf("workload: multi-spec %q job %d offset %v (offsets must be non-decreasing)",
				m.Name, i, mj.Offset)
		}
		prev = mj.Offset
		if names[mj.Spec.Job.Name] {
			return fmt.Errorf("workload: multi-spec %q duplicates job name %q", m.Name, mj.Spec.Job.Name)
		}
		names[mj.Spec.Job.Name] = true
		if inputs[mj.Spec.Job.InputFile] {
			return fmt.Errorf("workload: multi-spec %q duplicates input file %q", m.Name, mj.Spec.Job.InputFile)
		}
		inputs[mj.Spec.Job.InputFile] = true
		if mj.Spec.Job.SkipInputRead {
			continue
		}
		s := mj.Spec.InputSize / float64(mj.Spec.Job.NumMaps)
		if split == 0 {
			split = s
		} else if d := s - split; d > 1e-9*split || d < -1e-9*split {
			// Relative epsilon: equal splits that went through different
			// float expressions (e.g. maps × split vs size ÷ k) may differ
			// by an ulp; a real mismatch is orders of magnitude larger.
			return fmt.Errorf("workload: multi-spec %q job %d split %v differs from %v (one DFS block size)",
				m.Name, i, s, split)
		}
	}
	return nil
}

// SplitSize returns the common input split (block) size of the jobs that
// read real input. When every job skips input reads the block size only
// affects staged-file replication; the first job's split is returned then,
// matching what the single-job path (core.NewForWorkload) would pick.
func (m MultiSpec) SplitSize() float64 {
	for _, mj := range m.Jobs {
		if !mj.Spec.Job.SkipInputRead && mj.Spec.Job.NumMaps > 0 {
			return mj.Spec.InputSize / float64(mj.Spec.Job.NumMaps)
		}
	}
	if len(m.Jobs) > 0 && m.Jobs[0].Spec.Job.NumMaps > 0 {
		return m.Jobs[0].Spec.InputSize / float64(m.Jobs[0].Spec.Job.NumMaps)
	}
	return 0
}

// rename derives a uniquely named copy of a spec for slot i of a multi-job
// workload (job name and staged input file both get the suffix).
func rename(s Spec, i int) Spec {
	out := s
	out.Job.Name = fmt.Sprintf("%s-j%d", s.Job.Name, i)
	out.Job.InputFile = fmt.Sprintf("%s-j%d", s.Job.InputFile, i)
	return out
}

// rescaleInput pins a scaled spec's input size to NumMaps × the original
// split. Scale floors NumMaps but divides InputSize exactly, so when the
// factor does not divide the map count the scaled job's split would drift
// off the stream's common DFS block size; recomputing from the split keeps
// every job's split exactly the original one.
func rescaleInput(orig, scaled Spec) Spec {
	if scaled.Job.SkipInputRead || orig.Job.NumMaps <= 0 {
		return scaled
	}
	scaled.InputSize = float64(scaled.Job.NumMaps) * (orig.InputSize / float64(orig.Job.NumMaps))
	return scaled
}

// Staggered derives a multi-job workload of n copies of base, submitted
// every interval seconds — the queued-arrivals scenario (a stream of
// identical jobs entering a busy cluster).
func Staggered(base Spec, n int, interval float64) MultiSpec {
	m := MultiSpec{Name: fmt.Sprintf("%s-x%d", base.Job.Name, n)}
	for i := 0; i < n; i++ {
		m.Jobs = append(m.Jobs, MultiJob{Spec: rename(base, i), Offset: float64(i) * interval})
	}
	return m
}

// MixedSizes derives a multi-job workload alternating between the full
// base spec and a copy scaled down by k, submitted every interval seconds
// — the heterogeneous mix where small jobs queue behind (FIFO) or overtake
// (fair-share) large ones.
func MixedSizes(base Spec, n int, interval float64, k int) MultiSpec {
	m := MultiSpec{Name: fmt.Sprintf("%s-mix%d", base.Job.Name, n)}
	small := rescaleInput(base, Scale(base, k))
	for i := 0; i < n; i++ {
		s := base
		if i%2 == 1 {
			s = small
		}
		m.Jobs = append(m.Jobs, MultiJob{Spec: rename(s, i), Offset: float64(i) * interval})
	}
	return m
}

// PoissonArrivals derives a multi-job workload of n copies of base whose
// submissions follow a Poisson arrival process: the first job arrives at
// t=0 (like Staggered, so the run starts busy) and each later job follows
// the previous one after an exponential inter-arrival time with the given
// mean (seconds) — the memoryless job stream a shared opportunistic
// cluster actually sees, with the bursts and lulls a fixed stagger hides.
//
// The draw stream is seeded independently of the churn seed, so the same
// (base, n, meanInterval, seed) always yields the same offsets — sweeping
// churn seeds replays one fixed arrival schedule against many churn
// realizations.
func PoissonArrivals(base Spec, n int, meanInterval float64, seed uint64) MultiSpec {
	if meanInterval <= 0 {
		return Staggered(base, n, 0)
	}
	r := rng.New(seed)
	m := MultiSpec{Name: fmt.Sprintf("%s-pois%d", base.Job.Name, n)}
	t := 0.0
	for i := 0; i < n; i++ {
		if i > 0 {
			t += r.Exponential(meanInterval)
		}
		m.Jobs = append(m.Jobs, MultiJob{Spec: rename(base, i), Offset: t})
	}
	return m
}

// WithPriorities returns a copy of the multi-job workload with per-job
// strict-priority ranks applied by job name (jobs of an n-job stream are
// named <base>-j0 .. <base>-j<n-1>). Jobs without an entry keep rank 0.
// Only the StrictPriority arbitration policy reads the ranks.
func WithPriorities(m MultiSpec, priorities map[string]int) MultiSpec {
	if len(priorities) == 0 {
		return m
	}
	out := MultiSpec{Name: m.Name, Jobs: append([]MultiJob(nil), m.Jobs...)}
	for i := range out.Jobs {
		if p, ok := priorities[out.Jobs[i].Spec.Job.Name]; ok {
			out.Jobs[i].Spec.Job.Priority = p
		}
	}
	return out
}

// ScaleMulti shrinks every job of a multi-job workload by factor k
// (offsets preserved); ScaleMulti(m, 1) is the identity.
func ScaleMulti(m MultiSpec, k int) MultiSpec {
	if k <= 1 {
		return m
	}
	out := MultiSpec{Name: m.Name}
	for _, mj := range m.Jobs {
		out.Jobs = append(out.Jobs, MultiJob{Spec: rescaleInput(mj.Spec, Scale(mj.Spec, k)), Offset: mj.Offset})
	}
	return out
}
