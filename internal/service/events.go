package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// event is one Server-Sent Events frame: name becomes the `event:` field,
// data the JSON `data:` payload.
type event struct {
	name string
	data []byte
}

// hub fans events out to /v1/events subscribers. Like the metrics sink,
// delivery never blocks a run: a subscriber that falls behind its buffer
// drops frames.
type hub struct {
	mu     sync.Mutex
	buffer int
	closed bool
	subs   map[chan event]struct{}
}

func newHub(buffer int) *hub {
	if buffer <= 0 {
		buffer = 256
	}
	return &hub{buffer: buffer, subs: make(map[chan event]struct{})}
}

func (h *hub) subscribe() chan event {
	ch := make(chan event, h.buffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
	} else {
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	return ch
}

func (h *hub) unsubscribe(ch chan event) {
	h.mu.Lock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}

// broadcast marshals v once and offers it to every subscriber.
func (h *hub) broadcast(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := event{name: name, data: data}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // subscriber full: drop rather than stall the run
		}
	}
	h.mu.Unlock()
}

// closeAll ends every active stream (server shutdown).
func (h *hub) closeAll() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}

// handleEvents streams metric and job updates as Server-Sent Events:
// `event: metric` frames carry metrics.Update JSON from running work,
// `event: job` frames carry a submission Status at every transition.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "unsupported", "response writer cannot stream")
		return
	}
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial comment line confirms the stream to clients immediately.
	fmt.Fprintf(w, ": moonbenchd event stream\n\n")
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
