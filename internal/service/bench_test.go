package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// BenchmarkServiceSubmitPoll drives the whole service loop — POST
// /v1/jobs, poll GET /v1/jobs/{id} to completion — from concurrent HTTP
// clients against one persistent engine master. It reports end-to-end
// submission throughput (submits/s) and the p99 status-poll latency
// (p99_poll_ms), the BENCH_8.json headline numbers.
func BenchmarkServiceSubmitPoll(b *testing.B) {
	s, err := New(Config{
		VolatileWorkers: 4, DedicatedWorkers: 1,
		Quota: sched.QuotaConfig{MaxConcurrent: -1}, // unlimited: measure the path, not the throttle
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	body := []byte(`{"name": "bench", "splits": 2, "words_per_split": 40}`)
	var mu sync.Mutex
	var pollLatencies []time.Duration

	b.SetParallelism(4) // ~4× GOMAXPROCS concurrent clients
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		var lats []time.Duration
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Errorf("submit: %d %s", resp.StatusCode, raw)
				return
			}
			var st Status
			if err := json.Unmarshal(raw, &st); err != nil {
				b.Error(err)
				return
			}
			for {
				t0 := time.Now()
				resp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID)
				if err != nil {
					b.Error(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lats = append(lats, time.Since(t0))
				var cur Status
				if err := json.Unmarshal(raw, &cur); err != nil {
					b.Error(err)
					return
				}
				if cur.State == subDone {
					break
				}
				if cur.State == subFailed {
					b.Errorf("job failed: %s", cur.Error)
					return
				}
			}
		}
		mu.Lock()
		pollLatencies = append(pollLatencies, lats...)
		mu.Unlock()
	})
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "submits/s")
	if len(pollLatencies) > 0 {
		sort.Slice(pollLatencies, func(i, j int) bool { return pollLatencies[i] < pollLatencies[j] })
		p99 := pollLatencies[len(pollLatencies)*99/100]
		b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99_poll_ms")
	}
}

// BenchmarkServiceStatusPoll isolates the read path: concurrent clients
// polling one finished submission's status (the hot endpoint while a
// dashboard watches a run).
func BenchmarkServiceStatusPoll(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"name": "poll", "splits": 2, "words_per_split": 40}`)))
	if err != nil {
		b.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		b.Fatalf("submit body %q: %v", raw, err)
	}
	for st.State != subDone && st.State != subFailed {
		time.Sleep(time.Millisecond)
		r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			b.Fatal(err)
		}
		raw, _ = io.ReadAll(r2.Body)
		r2.Body.Close()
		if err := json.Unmarshal(raw, &st); err != nil {
			b.Fatal(err)
		}
	}
	url := ts.URL + "/v1/jobs/" + st.ID

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Error(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Error(fmt.Errorf("poll: %d", resp.StatusCode))
				return
			}
		}
	})
}
