package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// newTestServer starts a service on an httptest listener and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func do(t *testing.T, method, url string, body []byte, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func decodeStatus(t *testing.T, raw []byte) Status {
	t.Helper()
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad status body %q: %v", raw, err)
	}
	return st
}

// pollDone polls a submission until it is terminal.
func pollDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, raw := do(t, http.MethodGet, base+"/v1/jobs/"+id, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll %s: %d %s", id, resp.StatusCode, raw)
		}
		st := decodeStatus(t, raw)
		if st.State == subDone || st.State == subFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission %s stuck in %q", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// deterministic simulated scenario, small enough for a test run.
const simSpec = `{
  "schema": "moon-scenario/v1",
  "name": "svc-e2e",
  "sweep": {"seeds": [1], "rates": [0.5], "scale": 32},
  "metrics": {"bucket_seconds": 600},
  "experiments": [
    {"app": "sort", "multi": {"jobs": 2, "interval_seconds": 30, "policies": ["fair"]}}
  ]
}`

// TestScenarioReportMatchesCLIPath is the tentpole acceptance pin: the
// report the service serves for a deterministic spec is byte-identical to
// the document the CLI path produces for the same spec (same Parse →
// Compile → Execute → Export pipeline; cmd/moonbench's own tests pin that
// pipeline against the real binary's flag path).
func TestScenarioReportMatchesCLIPath(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	spec, err := scenario.Parse(strings.NewReader(simSpec))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantOut bytes.Buffer
	want := metrics.NewExport("moonbench")
	want.Scenario = spec.Name
	want.SpecHash = spec.Hash()
	if err := plan.Execute(&wantOut, want); err != nil {
		t.Fatal(err)
	}
	var wantDoc bytes.Buffer
	if err := want.WriteJSON(&wantDoc); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	resp, raw := do(t, http.MethodPost, ts.URL+"/v1/scenarios", []byte(simSpec), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit scenario: %d %s", resp.StatusCode, raw)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, raw).ID)
	if st.State != subDone {
		t.Fatalf("scenario failed: %s", st.Error)
	}
	if st.Output != wantOut.String() {
		t.Errorf("rendered output differs from CLI path:\n--- service ---\n%s\n--- cli ---\n%s", st.Output, wantOut.String())
	}
	resp, got := do(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/report", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, wantDoc.Bytes()) {
		t.Errorf("service report is not byte-identical to the CLI path:\n--- service ---\n%s\n--- cli ---\n%s", got, wantDoc.Bytes())
	}
}

// TestDirectJobLifecycle: submit → poll → report for a direct engine job
// on the persistent cluster.
func TestDirectJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := []byte(`{"name": "count", "splits": 4, "words_per_split": 80, "reduces": 2}`)
	resp, raw := do(t, http.MethodPost, ts.URL+"/v1/jobs", body, map[string]string{"X-Moon-Tenant": "alice"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	st := decodeStatus(t, raw)
	if st.Tenant != "alice" || st.Kind != "job" {
		t.Fatalf("bad submit status: %+v", st)
	}
	final := pollDone(t, ts.URL, st.ID)
	if final.State != subDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.Engine == nil || final.Engine.MapsDone != 4 || final.Engine.ReducesDone != 2 {
		t.Fatalf("engine status not propagated: %+v", final.Engine)
	}
	resp, raw = do(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/report", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d %s", resp.StatusCode, raw)
	}
	for _, want := range []string{`"schema": "moon-metrics/v1"`, `"map_attempts"`, `"makespan_seconds"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("job report missing %s:\n%s", want, raw)
		}
	}
}

// TestQuotaEnforcement pins the admission-control contract: with a quota
// of 1 concurrent + 1 queued, a tenant's second submission parks queued,
// the third bounces with 429 + Retry-After, other tenants are unaffected,
// and the parked submission is promoted when the slot frees.
func TestQuotaEnforcement(t *testing.T) {
	// A volatile-only pool, so the whole cluster can be frozen with
	// Suspend and the first job holds its quota slot for as long as the
	// test needs.
	s, ts := newTestServer(t, Config{
		VolatileWorkers: 2,
		Quota:           sched.QuotaConfig{MaxConcurrent: 1, MaxQueued: 1},
	})
	for w := 0; w < s.cluster.Workers(); w++ {
		if err := s.cluster.Suspend(w); err != nil {
			t.Fatal(err)
		}
	}
	body := []byte(`{"name": "q", "splits": 2, "words_per_split": 40}`)
	alice := map[string]string{"X-Moon-Tenant": "alice"}

	resp, raw := do(t, http.MethodPost, ts.URL+"/v1/jobs", body, alice)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, raw)
	}
	first := decodeStatus(t, raw)
	if first.State != subRunning {
		t.Fatalf("first submission should run immediately, is %q", first.State)
	}

	resp, raw = do(t, http.MethodPost, ts.URL+"/v1/jobs", body, alice)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", resp.StatusCode, raw)
	}
	second := decodeStatus(t, raw)
	if second.State != subQueued {
		t.Fatalf("second submission should queue, is %q", second.State)
	}

	resp, raw = do(t, http.MethodPost, ts.URL+"/v1/jobs", body, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: want 429, got %d %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 is missing Retry-After")
	}
	var apiErr apiError
	if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Code != "quota_exceeded" {
		t.Errorf("429 body is not a structured quota error: %s", raw)
	}

	// Another tenant is not throttled by alice's quota.
	resp, raw = do(t, http.MethodPost, ts.URL+"/v1/jobs", body, map[string]string{"Authorization": "Bearer bob-key"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant submit: %d %s", resp.StatusCode, raw)
	}
	if st := decodeStatus(t, raw); st.Tenant != "bob-key" {
		t.Errorf("Bearer key not used as tenant: %+v", st)
	}

	// Thaw the pool: the running job finishes, the queued one promotes
	// and completes.
	for w := 0; w < s.cluster.Workers(); w++ {
		if err := s.cluster.Resume(w); err != nil {
			t.Fatal(err)
		}
	}
	if st := pollDone(t, ts.URL, first.ID); st.State != subDone {
		t.Fatalf("first job failed: %s", st.Error)
	}
	if st := pollDone(t, ts.URL, second.ID); st.State != subDone {
		t.Fatalf("queued job was not promoted: %+v", st)
	}
}

// TestDrainCompletesInFlight pins satellite 1: during Drain, in-flight
// submissions run to completion while new ones get a structured 503; the
// drained server still serves status and reports.
func TestDrainCompletesInFlight(t *testing.T) {
	// Volatile-only, so Suspend can freeze the in-flight job mid-drain.
	s, ts := newTestServer(t, Config{VolatileWorkers: 2})
	for w := 0; w < s.cluster.Workers(); w++ {
		if err := s.cluster.Suspend(w); err != nil {
			t.Fatal(err)
		}
	}
	body := []byte(`{"name": "inflight", "splits": 3, "words_per_split": 60}`)
	resp, raw := do(t, http.MethodPost, ts.URL+"/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	inflight := decodeStatus(t, raw)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	resp, raw = do(t, http.MethodPost, ts.URL+"/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: want 503, got %d %s", resp.StatusCode, raw)
	}
	var apiErr apiError
	if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Code != "draining" {
		t.Errorf("503 body is not a structured drain error: %s", raw)
	}
	resp, raw = do(t, http.MethodPost, ts.URL+"/v1/scenarios", []byte(simSpec), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("scenario during drain: want 503, got %d %s", resp.StatusCode, raw)
	}

	// The in-flight job is still frozen; Drain must be waiting on it.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned before in-flight work finished: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	for w := 0; w < s.cluster.Workers(); w++ {
		if err := s.cluster.Resume(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := pollDone(t, ts.URL, inflight.ID); st.State != subDone {
		t.Fatalf("in-flight job did not complete through drain: %+v", st)
	}
	resp, raw = do(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"draining"`) {
		t.Errorf("healthz after drain: %d %s", resp.StatusCode, raw)
	}
}

// TestEventsStreamDuringRun pins the streaming tentpole piece: a
// /v1/events subscriber receives `job` transition frames and live
// `metric` frames while a submission runs.
func TestEventsStreamDuringRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type: %s", ct)
	}

	body := []byte(`{"name": "streamed", "splits": 4, "words_per_split": 100, "reduces": 2}`)
	post, raw := do(t, http.MethodPost, ts.URL+"/v1/jobs", body, nil)
	if post.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", post.StatusCode, raw)
	}

	events := make(map[string]int)
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	current := ""
	for sc.Scan() && !sawDone {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events[current]++
			if current == "job" && strings.Contains(line, `"state":"done"`) {
				sawDone = true
			}
		}
	}
	if !sawDone {
		t.Fatalf("stream ended without a done transition (scan err %v); saw %v", sc.Err(), events)
	}
	if events["metric"] == 0 {
		t.Error("no metric frames were streamed during the run")
	}
	if events["job"] < 2 {
		t.Errorf("want at least running+done job frames, got %d", events["job"])
	}
}

// TestStructuredErrors pins satellite 6: every 4xx carries a structured
// JSON body, unknown paths 404, and wrong methods 405 with Allow.
func TestStructuredErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		method, path string
		body         []byte
		status       int
		code         string
		allow        string
	}{
		{http.MethodGet, "/v1/nope", nil, http.StatusNotFound, "not_found", ""},
		{http.MethodGet, "/v1/jobs/999", nil, http.StatusNotFound, "not_found", ""},
		{http.MethodGet, "/v1/jobs/1/bogus", nil, http.StatusNotFound, "not_found", ""},
		{http.MethodDelete, "/v1/jobs", nil, http.StatusMethodNotAllowed, "method_not_allowed", "GET, POST"},
		{http.MethodPost, "/healthz", nil, http.StatusMethodNotAllowed, "method_not_allowed", "GET"},
		{http.MethodGet, "/v1/scenarios", nil, http.StatusMethodNotAllowed, "method_not_allowed", "POST"},
		{http.MethodPost, "/v1/jobs", []byte(`{"name": "x", "bogus": 1}`), http.StatusBadRequest, "bad_request", ""},
		{http.MethodPost, "/v1/jobs", []byte(`{"name": "x"}`), http.StatusBadRequest, "bad_request", ""},
		{http.MethodPost, "/v1/scenarios", []byte(`{"schema": "wrong"}`), http.StatusBadRequest, "bad_request", ""},
	}
	for _, tc := range cases {
		resp, raw := do(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: want %d, got %d %s", tc.method, tc.path, tc.status, resp.StatusCode, raw)
			continue
		}
		var apiErr apiError
		if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Code != tc.code || apiErr.Message == "" {
			t.Errorf("%s %s: body is not a structured %q error: %s", tc.method, tc.path, tc.code, raw)
		}
		if tc.allow != "" && resp.Header.Get("Allow") != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, resp.Header.Get("Allow"), tc.allow)
		}
	}

	// Report before completion: 409 with a structured body.
	resp, raw := do(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(`{"name": "r", "splits": 2, "words_per_split": 30}`), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	id := decodeStatus(t, raw).ID
	resp, raw = do(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/report", nil, nil)
	if resp.StatusCode == http.StatusOK {
		// Tiny jobs can legitimately finish between the two requests.
		t.Skip("job finished before the report race could be observed")
	}
	var apiErr apiError
	if resp.StatusCode != http.StatusConflict || json.Unmarshal(raw, &apiErr) != nil || apiErr.Code != "not_finished" {
		t.Errorf("early report fetch: want structured 409, got %d %s", resp.StatusCode, raw)
	}
}

// TestConcurrentClients hammers the API from N clients at once — run
// under -race in CI: submissions, list polls, status polls and reports
// must all be data-race free and every accepted job must complete.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{
		VolatileWorkers: 4, DedicatedWorkers: 1,
		Quota: sched.QuotaConfig{MaxConcurrent: 2, MaxQueued: 64},
	})
	const clients = 8
	const jobsPerClient = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := map[string]string{"X-Moon-Tenant": fmt.Sprintf("tenant-%d", c)}
			for j := 0; j < jobsPerClient; j++ {
				body := fmt.Sprintf(`{"name": "c%dj%d", "splits": 2, "words_per_split": 40}`, c, j)
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
				for k, v := range tenant {
					req.Header.Set(k, v)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("client %d job %d: %d %s", c, j, resp.StatusCode, raw)
					return
				}
				var st Status
				if err := json.Unmarshal(raw, &st); err != nil {
					errs <- err
					return
				}
				deadline := time.Now().Add(30 * time.Second)
				for {
					r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
					if err != nil {
						errs <- err
						return
					}
					raw2, _ := io.ReadAll(r2.Body)
					r2.Body.Close()
					var cur Status
					if err := json.Unmarshal(raw2, &cur); err != nil {
						errs <- fmt.Errorf("poll %s: %v (%s)", st.ID, err, raw2)
						return
					}
					if cur.State == subDone {
						break
					}
					if cur.State == subFailed {
						errs <- fmt.Errorf("job %s failed: %s", st.ID, cur.Error)
						return
					}
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("job %s stuck in %s", st.ID, cur.State)
						return
					}
					time.Sleep(time.Millisecond)
				}
				if _, err := http.Get(ts.URL + "/v1/jobs"); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
