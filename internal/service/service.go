// Package service wraps the live engine in a long-running multi-tenant
// HTTP/JSON daemon — the paper's many-users story: one persistent master
// serving a stream of submissions while volunteer nodes churn underneath.
//
// The versioned REST surface:
//
//	POST /v1/jobs          submit one word-count job to the shared cluster
//	GET  /v1/jobs          list submissions (newest last)
//	GET  /v1/jobs/{id}     poll one submission's status (lock-free snapshot)
//	GET  /v1/jobs/{id}/report  fetch the finished moon-metrics/v1 report
//	POST /v1/scenarios     submit a strict moon-scenario/v1 spec
//	GET  /v1/events        Server-Sent Events: live metric + job updates
//	GET  /healthz          liveness and drain state
//
// Scenario submissions run the exact CLI execution path (Parse → Compile →
// Plan.Execute → metrics.Export), so a deterministic spec's report is
// byte-identical to a `moonbench -scenario` run of the same spec.
// Admission control sits in front of everything: per-tenant quotas
// (identified by X-Moon-Tenant or an API key) bound concurrent and queued
// submissions through internal/sched, answering 429 with Retry-After when
// exceeded. Every 4xx/5xx body is structured JSON ({"code","message"}).
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Config shapes the daemon: the persistent engine pool serving direct job
// submissions, the default per-tenant quotas, and the streaming buffer.
type Config struct {
	// VolatileWorkers / DedicatedWorkers size the persistent cluster
	// direct job submissions run on (scenario submissions build their own
	// per-cell clusters, exactly like the CLI).
	VolatileWorkers  int
	DedicatedWorkers int
	// JobPolicy arbitrates the persistent cluster's slots between
	// concurrent jobs ("fifo" default, "fair", "weighted", "priority").
	JobPolicy  string
	JobWeights map[string]float64

	// Quota is the default per-tenant admission quota; QuotaOverrides
	// replaces it for named tenants.
	Quota          sched.QuotaConfig
	QuotaOverrides map[string]sched.QuotaConfig

	// MetricsBucket is the series bucket width (seconds) of the
	// persistent cluster's collector and of scenario-run cells.
	MetricsBucket float64
	// EventBuffer bounds the streaming sink and each /v1/events
	// subscriber (updates drop rather than block a run; <= 0 selects
	// 4096).
	EventBuffer int
}

// DefaultConfig mirrors the engine's small hybrid pool with a modest
// default quota: 4 concurrent and 16 queued submissions per tenant.
func DefaultConfig() Config {
	return Config{
		VolatileWorkers:  4,
		DedicatedWorkers: 1,
		Quota:            sched.QuotaConfig{MaxConcurrent: 4, MaxQueued: 16},
		MetricsBucket:    1,
		EventBuffer:      4096,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.VolatileWorkers == 0 && c.DedicatedWorkers == 0 {
		c.VolatileWorkers, c.DedicatedWorkers = d.VolatileWorkers, d.DedicatedWorkers
	}
	if c.Quota == (sched.QuotaConfig{}) {
		c.Quota = d.Quota
	}
	if c.MetricsBucket <= 0 {
		c.MetricsBucket = d.MetricsBucket
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = d.EventBuffer
	}
	return c
}

// Server is the HTTP service: one persistent multi-tenant engine master,
// an admission controller, a submission registry, and the streaming hub.
// Create with New, mount as an http.Handler, Drain then Close to stop.
type Server struct {
	cfg     Config
	cluster *engine.Cluster
	sink    *metrics.StreamSink
	hub     *hub
	adm     *sched.Admission
	reg     *registry

	draining atomic.Bool
	wg       sync.WaitGroup
}

// New starts the persistent engine cluster and the event pump.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	sink := metrics.NewStreamSink(cfg.EventBuffer)
	col := metrics.New(cfg.MetricsBucket)
	col.SetSink(sink)

	ecfg := engine.DefaultConfig()
	ecfg.VolatileWorkers = cfg.VolatileWorkers
	ecfg.DedicatedWorkers = cfg.DedicatedWorkers
	ecfg.JobPolicy = cfg.JobPolicy
	ecfg.JobWeights = cfg.JobWeights
	ecfg.Metrics = col
	cluster, err := engine.New(ecfg)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}

	s := &Server{
		cfg:     cfg,
		cluster: cluster,
		sink:    sink,
		hub:     newHub(cfg.EventBuffer),
		adm:     sched.NewAdmission(cfg.Quota, cfg.QuotaOverrides),
		reg:     newRegistry(),
	}
	s.wg.Add(1)
	go s.pumpEvents()
	return s, nil
}

// Draining reports whether the server has stopped accepting submissions.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops accepting new submissions (503) and blocks until every
// accepted submission — running or queued — reaches a terminal state and
// the engine's last in-flight attempt retires, or ctx ends.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if err := s.reg.waitIdle(ctx); err != nil {
		return err
	}
	return s.cluster.Drain(ctx)
}

// Close stops the engine cluster and the event stream and waits for every
// service goroutine (watchers, scenario runs, the pump) to exit. Undrained
// submissions fail with the cluster closure.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cluster.Close()
	s.sink.Close()
	s.hub.closeAll()
	s.wg.Wait()
}

// pumpEvents fans the metrics sink out to every /v1/events subscriber.
func (s *Server) pumpEvents() {
	defer s.wg.Done()
	for u := range s.sink.Updates() {
		s.hub.broadcast("metric", u)
	}
}

// apiError is the structured body of every 4xx/5xx response.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, apiError{Code: code, Message: message})
}

// methodNotAllowed answers 405 with the canonical Allow header.
func methodNotAllowed(w http.ResponseWriter, allow ...string) {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed",
		fmt.Sprintf("allowed methods: %s", strings.Join(allow, ", ")))
}

// tenantOf identifies the caller: the X-Moon-Tenant header, else a Bearer
// API key, else "anonymous". Quotas are accounted per identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Moon-Tenant"); t != "" {
		return t
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		if key := strings.TrimSpace(strings.TrimPrefix(auth, "Bearer ")); key != "" {
			return key
		}
	}
	return "anonymous"
}

// ServeHTTP routes the versioned API by hand so unknown endpoints and
// methods answer consistent structured errors (404, and 405 with Allow).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.handleHealthz(w)
	case path == "/v1/jobs":
		switch r.Method {
		case http.MethodGet:
			s.handleListJobs(w)
		case http.MethodPost:
			s.handleSubmitJob(w, r)
		default:
			methodNotAllowed(w, http.MethodGet, http.MethodPost)
		}
	case path == "/v1/scenarios":
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		s.handleSubmitScenario(w, r)
	case path == "/v1/events":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.handleEvents(w, r)
	case strings.HasPrefix(path, "/v1/jobs/"):
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		rest := strings.TrimPrefix(path, "/v1/jobs/")
		id, tail, hasTail := strings.Cut(rest, "/")
		switch {
		case !hasTail:
			s.handleJobStatus(w, id)
		case tail == "report":
			s.handleJobReport(w, id)
		default:
			writeErr(w, http.StatusNotFound, "not_found", "unknown endpoint "+path)
		}
	default:
		writeErr(w, http.StatusNotFound, "not_found", "unknown endpoint "+path)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"workers":     s.cluster.Workers(),
		"submissions": s.reg.count(),
	})
}

// admit runs the submission through admission control and either starts
// it, parks it queued, or rejects it (429 with Retry-After). Returns false
// when the request was already answered.
func (s *Server) admit(w http.ResponseWriter, sub *submission) bool {
	run, err := s.adm.TryAcquire(sub.tenant)
	if err != nil {
		s.reg.remove(sub.id)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "quota_exceeded", err.Error())
		return false
	}
	if run {
		sub.start()
	} else {
		s.reg.park(sub)
	}
	return true
}

// release retires one running submission and promotes the tenant's oldest
// parked submission when the quota has room again. The promote decision
// and the pop are not one atomic step, so a racing TryAcquire can briefly
// push a tenant one submission over its cap — bounded, and resolved at
// the next release.
func (s *Server) release(tenant string) {
	if s.adm.Release(tenant) {
		if next := s.reg.popParked(tenant); next != nil {
			s.adm.Promote(tenant)
			next.start()
		}
	}
}

// requireAccepting answers 503 during drain.
func (s *Server) requireAccepting(w http.ResponseWriter) bool {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "draining",
			"the service is draining and accepts no new submissions")
		return false
	}
	return true
}

// waitIdle polls until every accepted submission is terminal.
func (r *registry) waitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if r.idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
