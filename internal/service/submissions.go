package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// Submission states. Queued submissions passed admission but wait for a
// quota slot; done/failed are terminal.
const (
	subQueued  = "queued"
	subRunning = "running"
	subDone    = "done"
	subFailed  = "failed"
)

// submission is one accepted unit of work: a direct engine job or a full
// scenario run. start is armed at creation and fired by admission (now or
// on promotion from the tenant's pending queue).
type submission struct {
	id     string
	kind   string // "job" or "scenario"
	tenant string
	name   string
	start  func()

	mu     sync.Mutex
	state  string
	errMsg string
	handle *engine.JobHandle // kind "job", set once running
	report []byte            // finished moon-metrics/v1 document
	output string            // kind "scenario": the rendered run text
}

func (b *submission) setRunning(h *engine.JobHandle) {
	b.mu.Lock()
	b.state = subRunning
	b.handle = h
	b.mu.Unlock()
}

func (b *submission) finish(err error, report []byte, output string) {
	b.mu.Lock()
	if err != nil {
		b.state = subFailed
		b.errMsg = err.Error()
	} else {
		b.state = subDone
	}
	b.report = report
	b.output = output
	b.mu.Unlock()
}

func (b *submission) terminal() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == subDone || b.state == subFailed
}

// Status is the wire form of one submission, shared by the list, status
// and submit responses. Engine carries the live per-task snapshot for
// direct jobs once they are running.
type Status struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`

	// Output is a finished scenario run's rendered text (the same tables
	// `moonbench -scenario` prints).
	Output string `json:"output,omitempty"`

	Engine *engine.JobStatus `json:"engine,omitempty"`
}

func (b *submission) status() Status {
	b.mu.Lock()
	st := Status{ID: b.id, Kind: b.kind, Tenant: b.tenant, Name: b.name,
		State: b.state, Error: b.errMsg, Output: b.output}
	h := b.handle
	b.mu.Unlock()
	if h != nil {
		es := h.Status()
		st.Engine = &es
	}
	return st
}

// registry tracks every accepted submission plus the per-tenant FIFO
// queues of parked (admitted-but-not-running) submissions.
type registry struct {
	mu      sync.Mutex
	seq     int
	subs    map[string]*submission
	order   []string
	pending map[string][]*submission
}

func newRegistry() *registry {
	return &registry{subs: make(map[string]*submission), pending: make(map[string][]*submission)}
}

func (r *registry) add(kind, tenant, name string) *submission {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	b := &submission{id: strconv.Itoa(r.seq), kind: kind, tenant: tenant, name: name, state: subQueued}
	r.subs[b.id] = b
	r.order = append(r.order, b.id)
	return b
}

func (r *registry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, id)
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

func (r *registry) get(id string) *submission {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subs[id]
}

func (r *registry) list() []Status {
	r.mu.Lock()
	subs := make([]*submission, 0, len(r.order))
	for _, id := range r.order {
		subs = append(subs, r.subs[id])
	}
	r.mu.Unlock()
	out := make([]Status, len(subs))
	for i, b := range subs {
		out[i] = b.status()
	}
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

func (r *registry) park(b *submission) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending[b.tenant] = append(r.pending[b.tenant], b)
}

func (r *registry) popParked(tenant string) *submission {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := r.pending[tenant]
	if len(q) == 0 {
		return nil
	}
	b := q[0]
	r.pending[tenant] = q[1:]
	return b
}

// idle reports whether every accepted submission is terminal.
func (r *registry) idle() bool {
	r.mu.Lock()
	subs := make([]*submission, 0, len(r.subs))
	for _, b := range r.subs {
		//moonvet:allow detrange order-insensitive: idle() reduces the collected set with AND, so collection order is unobservable
		subs = append(subs, b)
	}
	r.mu.Unlock()
	for _, b := range subs {
		if !b.terminal() {
			return false
		}
	}
	return true
}

// JobRequest is the POST /v1/jobs body: a word-count job over explicit
// inputs, or over a deterministic synthetic corpus (splits ×
// words_per_split), run on the shared persistent cluster.
type JobRequest struct {
	Name     string `json:"name"`
	Reduces  int    `json:"reduces,omitempty"`  // default 1
	Priority int    `json:"priority,omitempty"` // read by the "priority" policy

	Inputs        []string `json:"inputs,omitempty"`
	Splits        int      `json:"splits,omitempty"`
	WordsPerSplit int      `json:"words_per_split,omitempty"`
}

// buildJob validates the request and lowers it to an engine job. The
// engine name is prefixed with the submission ID: engine jobs are keyed by
// name, and two tenants may both call theirs "sort".
func buildJob(req JobRequest, subID string) (engine.Job, error) {
	if req.Name == "" {
		return engine.Job{}, errors.New("name is required")
	}
	if req.Reduces == 0 {
		req.Reduces = 1
	}
	if req.Reduces < 1 {
		return engine.Job{}, errors.New("reduces must be >= 1")
	}
	inputs := req.Inputs
	switch {
	case len(inputs) > 0 && req.Splits > 0:
		return engine.Job{}, errors.New("give either inputs or splits, not both")
	case len(inputs) == 0 && req.Splits <= 0:
		return engine.Job{}, errors.New("give inputs (one string per split) or splits > 0")
	case req.Splits > 0:
		words := req.WordsPerSplit
		if words <= 0 {
			words = 100
		}
		inputs = syntheticCorpus(req.Splits, words)
	case req.WordsPerSplit != 0:
		return engine.Job{}, errors.New("words_per_split only applies to synthetic splits")
	}
	return engine.Job{
		Name:     "s" + subID + "." + req.Name,
		Inputs:   inputs,
		Reduces:  req.Reduces,
		Priority: req.Priority,
		Map: func(input string, emit func(k, v string)) {
			for _, w := range strings.Fields(input) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string) string {
			return strconv.Itoa(len(values))
		},
	}, nil
}

// syntheticCorpus generates deterministic word-count input, same scheme as
// the harness's live jobs.
func syntheticCorpus(splits, wordsPerSplit int) []string {
	vocab := []string{"moon", "map", "reduce", "volunteer", "hadoop", "churn", "node", "data",
		"shuffle", "backup", "hybrid", "dedicated"}
	inputs := make([]string, splits)
	for s := range inputs {
		var b strings.Builder
		for w := 0; w < wordsPerSplit; w++ {
			b.WriteString(vocab[(s*31+w*7)%len(vocab)])
			b.WriteByte(' ')
		}
		inputs[s] = b.String()
	}
	return inputs
}

// handleSubmitJob accepts one direct job: decode strictly, admit against
// the tenant quota, submit to the persistent cluster (or park queued).
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if !s.requireAccepting(w) {
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid job body: "+err.Error())
		return
	}
	tenant := tenantOf(r)
	sub := s.reg.add("job", tenant, req.Name)
	job, err := buildJob(req, sub.id)
	if err != nil {
		s.reg.remove(sub.id)
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	sub.start = func() { s.startJob(sub, job) }
	if !s.admit(w, sub) {
		return
	}
	writeJSON(w, http.StatusAccepted, sub.status())
}

// startJob submits to the shared cluster and watches for completion.
func (s *Server) startJob(sub *submission, job engine.Job) {
	h, err := s.cluster.Submit(job)
	if err != nil {
		sub.finish(fmt.Errorf("submit: %w", err), nil, "")
		s.hub.broadcast("job", sub.status())
		s.release(sub.tenant)
		return
	}
	sub.setRunning(h)
	s.hub.broadcast("job", sub.status())
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-h.Done()
		_, prof, err := h.Wait(context.Background())
		var report []byte
		if err == nil {
			report = jobReport(sub, prof, s.cfg.MetricsBucket)
		}
		sub.finish(err, report, "")
		s.hub.broadcast("job", sub.status())
		s.release(sub.tenant)
	}()
}

// jobReport synthesizes a one-experiment moon-metrics/v1 document from a
// finished job's profile, using the same instrument names the engine
// publishes so service reports read like CLI ones.
func jobReport(sub *submission, prof engine.JobProfile, bucket float64) []byte {
	col := metrics.New(bucket)
	col.Counter(metrics.LayerEngine, "map_attempts", "").Add(float64(prof.Stats.MapAttempts))
	col.Counter(metrics.LayerEngine, "reduce_attempts", "").Add(float64(prof.Stats.ReduceAttempts))
	col.Counter(metrics.LayerEngine, "map_reexecs", "").Add(float64(prof.Stats.MapReexecs))
	col.Counter(metrics.LayerEngine, "backup_copies", "").Add(float64(prof.Stats.BackupCopies))
	col.Counter(metrics.LayerEngine, "fetch_failures", "").Add(float64(prof.Stats.FetchFailures))
	col.Gauge(metrics.LayerEngine, "queue_wait_seconds", sub.name).Set(prof.QueueWait.Seconds())
	col.Gauge(metrics.LayerEngine, "makespan_seconds", sub.name).Set(prof.Makespan.Seconds())
	report := metrics.NewExport("moonbenchd")
	report.Scenario = "job:" + sub.name
	report.Add("direct job", sub.name, 0, 1, col.Snapshot())
	var buf bytes.Buffer
	_ = report.WriteJSON(&buf)
	return buf.Bytes()
}

// handleSubmitScenario accepts a strict moon-scenario/v1 spec, compiles
// it, and (once admitted) runs it through the identical Parse → Compile →
// Plan.Execute → Export path as `moonbench -scenario`, so a deterministic
// spec's report is byte-identical to the CLI's.
func (s *Server) handleSubmitScenario(w http.ResponseWriter, r *http.Request) {
	if !s.requireAccepting(w) {
		return
	}
	spec, err := scenario.Parse(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	plan, err := scenario.Compile(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// Stream every cell's instrument updates to /v1/events subscribers.
	plan.Config.MetricsSink = s.sink

	sub := s.reg.add("scenario", tenantOf(r), spec.Name)
	sub.start = func() { s.startScenario(sub, spec, plan) }
	if !s.admit(w, sub) {
		return
	}
	writeJSON(w, http.StatusAccepted, sub.status())
}

// startScenario runs the compiled plan in a service goroutine.
func (s *Server) startScenario(sub *submission, spec *scenario.Spec, plan *scenario.Plan) {
	sub.mu.Lock()
	sub.state = subRunning
	sub.mu.Unlock()
	s.hub.broadcast("job", sub.status())
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var out bytes.Buffer
		report := metrics.NewExport("moonbench")
		report.Scenario = spec.Name
		report.SpecHash = spec.Hash()
		err := plan.Execute(&out, report)
		var doc []byte
		if err == nil {
			var buf bytes.Buffer
			if werr := report.WriteJSON(&buf); werr != nil {
				err = werr
			} else {
				doc = buf.Bytes()
			}
		}
		sub.finish(err, doc, out.String())
		s.hub.broadcast("job", sub.status())
		s.release(sub.tenant)
	}()
}

func (s *Server) handleListJobs(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.reg.list()})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, id string) {
	sub := s.reg.get(id)
	if sub == nil {
		writeErr(w, http.StatusNotFound, "not_found", "no submission "+id)
		return
	}
	writeJSON(w, http.StatusOK, sub.status())
}

// handleJobReport serves the finished moon-metrics/v1 document; 409 until
// the submission is terminal, 502-style failure detail if it failed.
func (s *Server) handleJobReport(w http.ResponseWriter, id string) {
	sub := s.reg.get(id)
	if sub == nil {
		writeErr(w, http.StatusNotFound, "not_found", "no submission "+id)
		return
	}
	sub.mu.Lock()
	state, errMsg, report := sub.state, sub.errMsg, sub.report
	sub.mu.Unlock()
	switch state {
	case subFailed:
		writeErr(w, http.StatusConflict, "failed", "submission failed: "+errMsg)
	case subDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(report)
	default:
		writeErr(w, http.StatusConflict, "not_finished",
			fmt.Sprintf("submission %s is %s; poll /v1/jobs/%s until done", id, state, id))
	}
}
