package sched

import (
	"strings"
	"testing"
)

// fakeJob is a minimal Job for policy/queue tests.
type fakeJob struct {
	name     string
	done     bool
	attempts Attempts
	priority int
}

func (j *fakeJob) Name() string        { return j.name }
func (j *fakeJob) Done() bool          { return j.done }
func (j *fakeJob) ActiveAttempts() int { return j.attempts.Active() }
func (j *fakeJob) Priority() int       { return j.priority }

func names(jobs []*fakeJob) string {
	parts := make([]string, len(jobs))
	for i, j := range jobs {
		parts[i] = j.name
	}
	return strings.Join(parts, ",")
}

func TestFIFOKeepsSubmissionOrder(t *testing.T) {
	a, b, c := &fakeJob{name: "a"}, &fakeJob{name: "b"}, &fakeJob{name: "c"}
	got := FIFO[*fakeJob]().Order(nil, []*fakeJob{a, b, c})
	if names(got) != "a,b,c" {
		t.Fatalf("FIFO order %s", names(got))
	}
}

func TestFairShareRanksByActiveAttempts(t *testing.T) {
	a := &fakeJob{name: "a", attempts: Attempts{Live: 5}}
	b := &fakeJob{name: "b", attempts: Attempts{Live: 1}}
	c := &fakeJob{name: "c", attempts: Attempts{Live: 5, Inactive: 5}} // active 0
	got := FairShare[*fakeJob]().Order(nil, []*fakeJob{a, b, c})
	if names(got) != "c,b,a" {
		t.Fatalf("fair order %s", names(got))
	}
	// Ties break by submission order.
	d := &fakeJob{name: "d", attempts: Attempts{Live: 1}}
	got = FairShare[*fakeJob]().Order(nil, []*fakeJob{b, d})
	if names(got) != "b,d" {
		t.Fatalf("fair tie order %s", names(got))
	}
}

func TestWeightedFairRanksByRatio(t *testing.T) {
	// a holds 3 attempts at weight 3 (ratio 1); b holds 2 at weight 1
	// (ratio 2): a still wins the next slot.
	a := &fakeJob{name: "a", attempts: Attempts{Live: 3}}
	b := &fakeJob{name: "b", attempts: Attempts{Live: 2}}
	p := WeightedFair[*fakeJob](map[string]float64{"a": 3})
	got := p.Order(nil, []*fakeJob{b, a})
	if names(got) != "a,b" {
		t.Fatalf("weighted order %s", names(got))
	}
	// Nil weights degenerate to fair-share.
	got = WeightedFair[*fakeJob](nil).Order(nil, []*fakeJob{a, b})
	if names(got) != "b,a" {
		t.Fatalf("uniform weighted order %s", names(got))
	}
	// Non-positive weights fall back to 1.
	got = WeightedFair[*fakeJob](map[string]float64{"a": -2}).Order(nil, []*fakeJob{a, b})
	if names(got) != "b,a" {
		t.Fatalf("non-positive weight order %s", names(got))
	}
}

func TestStrictPriorityOrdersHighFirstWithSubmissionTies(t *testing.T) {
	low := &fakeJob{name: "low", priority: 1}
	hi := &fakeJob{name: "hi", priority: 9}
	mid1 := &fakeJob{name: "mid1", priority: 5}
	mid2 := &fakeJob{name: "mid2", priority: 5}
	got := StrictPriority[*fakeJob]().Order(nil, []*fakeJob{low, mid1, hi, mid2})
	if names(got) != "hi,mid1,mid2,low" {
		t.Fatalf("priority order %s", names(got))
	}
	// All-zero priorities degenerate to FIFO.
	a, b := &fakeJob{name: "a"}, &fakeJob{name: "b"}
	got = StrictPriority[*fakeJob]().Order(nil, []*fakeJob{a, b})
	if names(got) != "a,b" {
		t.Fatalf("zero-priority order %s", names(got))
	}
}

func TestPolicyByNameResolvesAndHardErrors(t *testing.T) {
	for name, want := range map[string]string{
		"fifo": "fifo", "fair": "fair", "fairshare": "fair", "fair-share": "fair",
		"weighted": "weighted", "wfair": "weighted", "weighted-fair": "weighted",
		"priority": "priority", "strict-priority": "priority",
	} {
		p, err := PolicyByName[*fakeJob](name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("PolicyByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "fifoo", "FIFO", "random", "rr"} {
		if _, err := PolicyByName[*fakeJob](bad); err == nil {
			t.Fatalf("PolicyByName(%q) did not error", bad)
		}
	}
	if len(PolicyNames()) != 4 {
		t.Fatalf("PolicyNames() = %v", PolicyNames())
	}
}

func TestQueueRejectsDuplicateLiveNames(t *testing.T) {
	q := NewQueue[*fakeJob](nil, nil)
	a := &fakeJob{name: "a"}
	if err := q.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(&fakeJob{name: "a"}); err == nil {
		t.Fatal("duplicate live name accepted")
	}
	// A finished job frees its name.
	a.done = true
	if err := q.Submit(&fakeJob{name: "a"}); err != nil {
		t.Fatalf("name of finished job still held: %v", err)
	}
	if q.Len() != 2 || q.Running() != 1 {
		t.Fatalf("len %d running %d", q.Len(), q.Running())
	}
	if latest, ok := q.Latest(); !ok || latest.name != "a" || latest.done {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
}

func TestQueueOrderFiltersRunnableAndReusesScratch(t *testing.T) {
	runnable := func(j *fakeJob) bool { return !j.done && j.priority >= 0 }
	q := NewQueue(FairShare[*fakeJob](), runnable)
	a := &fakeJob{name: "a", attempts: Attempts{Live: 2}}
	b := &fakeJob{name: "b"}
	c := &fakeJob{name: "c", priority: -1} // not runnable
	d := &fakeJob{name: "d", done: true}
	for _, j := range []*fakeJob{a, b, c, d} {
		if err := q.Submit(j); err != nil && !j.done {
			t.Fatal(err)
		}
	}
	if got := names(q.Order()); got != "b,a" {
		t.Fatalf("order %s", got)
	}
	// Order allocates only into queue-owned scratch: repeated calls on a
	// steady queue must not allocate.
	allocs := testing.AllocsPerRun(100, func() { q.Order() })
	if allocs != 0 {
		t.Fatalf("Order allocates %v per call", allocs)
	}
}

func TestQueueLatestEmpty(t *testing.T) {
	q := NewQueue[*fakeJob](nil, nil)
	if _, ok := q.Latest(); ok {
		t.Fatal("Latest on empty queue reported ok")
	}
	if got := q.Order(); len(got) != 0 {
		t.Fatalf("Order on empty queue = %v", got)
	}
}

func TestAttemptsAccounting(t *testing.T) {
	var a Attempts
	if !a.Balanced() {
		t.Fatal("zero Attempts not balanced")
	}
	a.Live = 3
	a.Inactive = 1
	if a.Active() != 2 {
		t.Fatalf("Active = %d", a.Active())
	}
	if a.Balanced() {
		t.Fatal("busy Attempts reported balanced")
	}
}
