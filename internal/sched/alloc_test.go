package sched

import "testing"

func TestRankedPoliciesOrderDoNotAllocate(t *testing.T) {
	jobs := []*fakeJob{
		{name: "a", attempts: Attempts{Live: 3}, priority: 1},
		{name: "b", attempts: Attempts{Live: 1}, priority: 4},
		{name: "c", attempts: Attempts{Live: 2}, priority: 2},
	}
	scratch := make([]*fakeJob, 0, len(jobs))
	for _, p := range []Policy[*fakeJob]{
		FairShare[*fakeJob](),
		WeightedFair[*fakeJob](map[string]float64{"a": 2}),
		StrictPriority[*fakeJob](),
	} {
		p := p
		allocs := testing.AllocsPerRun(100, func() { p.Order(scratch[:0], jobs) })
		if allocs != 0 {
			t.Errorf("%s Order allocates %v per call", p.Name(), allocs)
		}
	}
}
