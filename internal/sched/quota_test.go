package sched

import (
	"errors"
	"sync"
	"testing"
)

func TestAdmissionQuotaFlow(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxConcurrent: 2, MaxQueued: 1}, nil)

	// Two run immediately, the third queues, the fourth is rejected.
	for i := 0; i < 2; i++ {
		run, err := a.TryAcquire("t1")
		if err != nil || !run {
			t.Fatalf("acquire %d: run=%v err=%v", i, run, err)
		}
	}
	run, err := a.TryAcquire("t1")
	if err != nil || run {
		t.Fatalf("third acquire: run=%v err=%v, want queued", run, err)
	}
	_, err = a.TryAcquire("t1")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("fourth acquire err = %v, want QuotaError", err)
	}
	if qe.Tenant != "t1" || qe.Kind != "queued" || qe.Limit != 1 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	if u := a.Use("t1"); u.Running != 2 || u.Queued != 1 {
		t.Fatalf("usage = %+v", u)
	}

	// Releasing one running slot frees room to promote the queued one.
	if !a.Release("t1") {
		t.Fatal("release should report a promotable queued submission")
	}
	a.Promote("t1")
	if u := a.Use("t1"); u.Running != 2 || u.Queued != 0 {
		t.Fatalf("usage after promote = %+v", u)
	}

	// Tenants are independent.
	if run, err := a.TryAcquire("t2"); err != nil || !run {
		t.Fatalf("t2 acquire: run=%v err=%v", run, err)
	}
}

func TestAdmissionZeroQueueRejectsWithConcurrentKind(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxConcurrent: 1}, nil)
	if run, err := a.TryAcquire("t"); err != nil || !run {
		t.Fatalf("first acquire: run=%v err=%v", run, err)
	}
	_, err := a.TryAcquire("t")
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Kind != "concurrent" {
		t.Fatalf("err = %v, want concurrent QuotaError", err)
	}
}

func TestAdmissionUnlimitedAndOverrides(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxConcurrent: 1}, map[string]QuotaConfig{
		"vip": {MaxConcurrent: 0}, // unlimited
	})
	for i := 0; i < 50; i++ {
		if run, err := a.TryAcquire("vip"); err != nil || !run {
			t.Fatalf("vip acquire %d: run=%v err=%v", i, run, err)
		}
	}
	if _, err := a.TryAcquire("vip"); err != nil {
		t.Fatalf("vip must be unlimited, got %v", err)
	}
}

func TestAdmissionConcurrentSafety(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxConcurrent: 4, MaxQueued: 4}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				run, err := a.TryAcquire("t")
				if err != nil {
					continue
				}
				if !run {
					a.Promote("t")
				}
				a.Release("t")
			}
		}()
	}
	wg.Wait()
	if u := a.Use("t"); u.Running != 0 || u.Queued != 0 {
		t.Fatalf("accounting leaked: %+v", u)
	}
}
