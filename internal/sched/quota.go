package sched

import (
	"fmt"
	"sync"
)

// Admission control: per-tenant quotas over the shared scheduling core.
// The queue and policies decide which running job gets the next slot;
// Admission decides whether a tenant may add to the job stream at all —
// how many of its submissions may run concurrently and how many more may
// wait queued behind them. The accounting is backend-agnostic (it counts
// submissions, not task attempts) and concurrency-safe, because admission
// decisions arrive from many client connections at once.

// QuotaConfig bounds one tenant's footprint on the job stream.
type QuotaConfig struct {
	// MaxConcurrent caps the tenant's simultaneously running submissions.
	// <= 0 means unlimited.
	MaxConcurrent int
	// MaxQueued caps submissions held waiting behind the concurrency cap.
	// <= 0 means nothing may queue: past MaxConcurrent, submissions are
	// rejected outright.
	MaxQueued int
}

// QuotaError reports a rejected submission: which tenant hit which limit.
// Callers map it to HTTP 429 with a Retry-After hint.
type QuotaError struct {
	Tenant string
	// Kind is "concurrent" (the run cap with no queue room... MaxQueued 0)
	// or "queued" (the waiting room itself is full).
	Kind  string
	Limit int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: tenant %q exceeded %s quota (%d)", e.Tenant, e.Kind, e.Limit)
}

// Admission tracks per-tenant running/queued submission counts against
// quotas. The zero value is not usable; create with NewAdmission. All
// methods are safe for concurrent use.
type Admission struct {
	mu        sync.Mutex
	def       QuotaConfig
	overrides map[string]QuotaConfig
	use       map[string]*Usage
}

// Usage is one tenant's current admission footprint.
type Usage struct {
	Running int `json:"running"`
	Queued  int `json:"queued"`
}

// NewAdmission returns an admission controller applying def to every
// tenant, with optional per-tenant overrides keyed by tenant name.
func NewAdmission(def QuotaConfig, overrides map[string]QuotaConfig) *Admission {
	a := &Admission{def: def, use: make(map[string]*Usage)}
	if len(overrides) > 0 {
		a.overrides = make(map[string]QuotaConfig, len(overrides))
		for k, v := range overrides {
			a.overrides[k] = v
		}
	}
	return a
}

// Quota returns the config governing the tenant.
func (a *Admission) Quota(tenant string) QuotaConfig {
	if q, ok := a.overrides[tenant]; ok {
		return q
	}
	return a.def
}

func (a *Admission) usage(tenant string) *Usage {
	u := a.use[tenant]
	if u == nil {
		u = &Usage{}
		a.use[tenant] = u
	}
	return u
}

// TryAcquire admits one submission for the tenant. It returns run=true
// when the submission may start immediately (counted running), run=false
// when it was admitted into the wait queue (counted queued; the caller
// parks it and later pairs it with Promote), or a *QuotaError when both
// the concurrency cap and the queue are full.
func (a *Admission) TryAcquire(tenant string) (run bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.Quota(tenant)
	u := a.usage(tenant)
	if q.MaxConcurrent <= 0 || u.Running < q.MaxConcurrent {
		u.Running++
		return true, nil
	}
	if u.Queued < q.MaxQueued {
		u.Queued++
		return false, nil
	}
	kind, limit := "queued", q.MaxQueued
	if q.MaxQueued <= 0 {
		kind, limit = "concurrent", q.MaxConcurrent
	}
	return false, &QuotaError{Tenant: tenant, Kind: kind, Limit: limit}
}

// Promote moves one queued submission to running — the caller decided to
// start a parked submission (normally after Release reported room).
func (a *Admission) Promote(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u := a.usage(tenant)
	if u.Queued > 0 {
		u.Queued--
	}
	u.Running++
}

// Release retires one running submission and reports whether a queued
// submission of the same tenant can now be promoted.
func (a *Admission) Release(tenant string) (promote bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.Quota(tenant)
	u := a.usage(tenant)
	if u.Running > 0 {
		u.Running--
	}
	return u.Queued > 0 && (q.MaxConcurrent <= 0 || u.Running < q.MaxConcurrent)
}

// Use returns a copy of the tenant's current footprint.
func (a *Admission) Use(tenant string) Usage {
	a.mu.Lock()
	defer a.mu.Unlock()
	if u := a.use[tenant]; u != nil {
		return *u
	}
	return Usage{}
}
