// Package sched is the backend-agnostic scheduling core shared by the
// simulator's JobTracker (internal/mapred) and the live goroutine engine
// (internal/engine): a multi-tenant job queue with duplicate-name
// rejection and per-job live-attempt accounting, plus the policy family —
// FIFO, fair-share, weighted-fair, strict-priority — that arbitrates every
// free execution slot between concurrently running jobs.
//
// Both backends present their jobs through the tiny Job constraint and
// instantiate the generic policies with their own job type, so arbitration
// decisions are literally the same code whether the "slot" is a simulated
// TaskTracker slot or a live worker goroutine. Policies are pure ordering
// functions over the runnable jobs: they retain no state, draw no
// randomness, and allocate nothing when called with reused scratch — the
// properties the simulator's byte-identical determinism pins rely on.
package sched

import "fmt"

// Job is the minimal view of a submitted job a scheduling decision needs.
// Implementations are the backends' own job types (the simulator's
// *mapred.Job, the engine's live job record).
type Job interface {
	// Name identifies the job; the queue rejects duplicate live names and
	// the weighted-fair policy looks weights up by it.
	Name() string
	// Done reports whether the job reached a terminal state (terminal
	// jobs stay queued so callers can read their profiles, but no longer
	// occupy a name or receive slots).
	Done() bool
	// ActiveAttempts counts the job's currently running task attempts
	// minus those stranded on suspended workers — the fair-share and
	// weighted-fair ranking key.
	ActiveAttempts() int
	// Priority is the job's strict-priority rank (higher first; only the
	// StrictPriority policy reads it).
	Priority() int
}

// Attempts is the per-job live-attempt accounting both backends maintain:
// Live counts every running task instance of the job, Inactive the subset
// stranded on suspended workers. The difference — Active — is the
// fair-share ranking key: a churn-stalled job is not deprioritized for the
// backup copies that would unfreeze it.
type Attempts struct {
	Live     int
	Inactive int
}

// Active returns the running attempts not stranded on suspended workers.
func (a Attempts) Active() int { return a.Live - a.Inactive }

// Balanced reports whether the accounting has fully drained — no live and
// no inactive attempts. Every job must be balanced after it completes; a
// non-zero residue means a launch/retire pair leaked.
func (a Attempts) Balanced() bool { return a.Live == 0 && a.Inactive == 0 }

// Policy arbitrates execution slots across concurrently running jobs. On
// every free-slot offer the scheduler asks the policy to order the
// runnable jobs; the first job in the order with an eligible task wins the
// slot. The order is recomputed per offer, so policies that rank by live
// usage (fair-share, weighted-fair) react to every launch.
//
// Task selection *within* a job is the backend's business: policies only
// decide which job is offered the slot first.
type Policy[J Job] interface {
	// Name is the policy's flag/label spelling ("fifo", "fair",
	// "weighted", "priority").
	Name() string
	// Order appends the jobs of running (given in submission order) to
	// dst in slot-offer order and returns dst. Implementations must not
	// retain either slice.
	Order(dst, running []J) []J
}

// FIFO offers every free slot to the earliest-submitted running job first.
// A later job only receives slots the earlier jobs cannot use (the policy
// is work-conserving), so saturating jobs execute essentially serially in
// submission order.
func FIFO[J Job]() Policy[J] { return fifoPolicy[J]{} }

type fifoPolicy[J Job] struct{}

func (fifoPolicy[J]) Name() string { return "fifo" }

func (fifoPolicy[J]) Order(dst, running []J) []J { return append(dst, running...) }

// FairShare splits slots evenly between running jobs: every free slot is
// offered to the job with the fewest *active* task attempts (attempts
// stranded on suspended workers don't count against a job, mirroring how
// the MOON speculative budget ignores inactive copies), breaking ties by
// submission order. Concurrent jobs therefore make interleaved progress
// instead of queueing behind the first submission.
func FairShare[J Job]() Policy[J] { return fairSharePolicy[J]{} }

type fairSharePolicy[J Job] struct{}

func (fairSharePolicy[J]) Name() string { return "fair" }

func (fairSharePolicy[J]) Order(dst, running []J) []J {
	dst = append(dst, running...)
	sortStable(dst, func(a, b J) bool { return a.ActiveAttempts() < b.ActiveAttempts() })
	return dst
}

// sortStable orders dst in place by before (a strictly ranks ahead of b),
// keeping equal elements in input order — the submission-order tie-break
// every ranked policy's determinism relies on. Insertion sort: job counts
// are small and the order barely changes between consecutive offers.
func sortStable[J Job](dst []J, before func(a, b J) bool) {
	for i := 1; i < len(dst); i++ {
		j := dst[i]
		k := i - 1
		for k >= 0 && before(j, dst[k]) {
			dst[k+1] = dst[k]
			k--
		}
		dst[k+1] = j
	}
}

// WeightedFair splits slots in proportion to per-job weights: every free
// slot is offered to the running job with the smallest active-attempts to
// weight ratio, so a weight-3 job holds three times the slots of a
// weight-1 competitor at steady state. Ties break by submission order
// (sort stability), and weights are looked up by job name — a job without
// an entry (or with a non-positive weight) runs at weight 1, so
// WeightedFair(nil) degenerates to plain fair-share. Like fair-share, the
// ratio counts only *active* attempts, so a churn-stalled job is not
// deprioritized for the backup copies that would unfreeze it.
func WeightedFair[J Job](weights map[string]float64) Policy[J] {
	return &weightedFairPolicy[J]{weights: weights}
}

type weightedFairPolicy[J Job] struct {
	weights map[string]float64
}

func (p *weightedFairPolicy[J]) Name() string { return "weighted" }

func (p *weightedFairPolicy[J]) weight(j J) float64 {
	if w, ok := p.weights[j.Name()]; ok && w > 0 {
		return w
	}
	return 1
}

func (p *weightedFairPolicy[J]) Order(dst, running []J) []J {
	dst = append(dst, running...)
	sortStable(dst, func(a, b J) bool {
		return float64(a.ActiveAttempts())/p.weight(a) < float64(b.ActiveAttempts())/p.weight(b)
	})
	return dst
}

// StrictPriority offers every free slot to the highest-priority running
// job first; equal priorities tie-break by submission order (sort
// stability), so the zero-priority default degenerates to FIFO. There is
// no preemption: a lower-priority job keeps the attempts it already
// holds, a higher-priority arrival merely wins every subsequent offer.
func StrictPriority[J Job]() Policy[J] { return strictPriorityPolicy[J]{} }

type strictPriorityPolicy[J Job] struct{}

func (strictPriorityPolicy[J]) Name() string { return "priority" }

func (strictPriorityPolicy[J]) Order(dst, running []J) []J {
	dst = append(dst, running...)
	sortStable(dst, func(a, b J) bool { return a.Priority() > b.Priority() })
	return dst
}

// PolicyNames lists the canonical PolicyByName spellings, for flag help
// and `moonbench -list`.
func PolicyNames() []string { return []string{"fifo", "fair", "weighted", "priority"} }

// PolicyByName resolves a policy flag value. Unknown names are a hard
// error at every entry point — flag parsing, scenario validation and
// engine configuration all route through here, so a typo'd policy can
// never silently fall back to a default. Flag-configured weighted fair
// runs with uniform weights; per-job weights are a programmatic API.
func PolicyByName[J Job](name string) (Policy[J], error) {
	switch name {
	case "fifo":
		return FIFO[J](), nil
	case "fair", "fairshare", "fair-share":
		return FairShare[J](), nil
	case "weighted", "wfair", "weighted-fair":
		return WeightedFair[J](nil), nil
	case "priority", "strict-priority":
		return StrictPriority[J](), nil
	}
	return nil, fmt.Errorf("sched: unknown job policy %q (want fifo, fair, weighted or priority)", name)
}
