package sched

import "fmt"

// Queue is the multi-tenant job queue shared by both backends. Submit
// enqueues (duplicate *live* names are rejected — output artifacts are
// keyed by job name on both backends — concurrent jobs are not), jobs stay
// queued after reaching a terminal state so callers can read profiles, and
// Order returns the runnable jobs in the policy's slot-offer order.
//
// The order is recomputed on every offer — fair-share ranks by live
// attempts, which change with each launch, and a job may finish or leave
// the runnable state mid-tick — using two scratch slices reused across
// offers, so a hot scheduling loop allocates nothing.
type Queue[J Job] struct {
	policy   Policy[J]
	runnable func(J) bool
	jobs     []J

	runnableScratch []J
	orderScratch    []J
}

// NewQueue builds a queue arbitrated by policy (nil selects FIFO).
// runnable reports whether a job may receive slots right now; nil treats
// every non-terminal job as runnable.
func NewQueue[J Job](policy Policy[J], runnable func(J) bool) *Queue[J] {
	if policy == nil {
		policy = FIFO[J]()
	}
	if runnable == nil {
		runnable = func(j J) bool { return !j.Done() }
	}
	return &Queue[J]{policy: policy, runnable: runnable}
}

// Submit enqueues a job. A job whose name collides with a still-live job
// is rejected: both backends key output artifacts (DFS files, map-output
// stores) by job name, so two live jobs with one name would collide.
func (q *Queue[J]) Submit(j J) error {
	for _, other := range q.jobs {
		if !other.Done() && other.Name() == j.Name() {
			return fmt.Errorf("sched: job %q is already running", j.Name())
		}
	}
	q.jobs = append(q.jobs, j)
	return nil
}

// Jobs returns every submitted job in submission order, terminal jobs
// included (read-only view).
func (q *Queue[J]) Jobs() []J { return q.jobs }

// Len returns the total number of submitted jobs, terminal included.
func (q *Queue[J]) Len() int { return len(q.jobs) }

// Latest returns the most recently submitted job and true, or the zero J
// and false before the first submission.
func (q *Queue[J]) Latest() (J, bool) {
	if len(q.jobs) == 0 {
		var zero J
		return zero, false
	}
	return q.jobs[len(q.jobs)-1], true
}

// Running counts jobs that have not reached a terminal state.
func (q *Queue[J]) Running() int {
	n := 0
	for _, j := range q.jobs {
		if !j.Done() {
			n++
		}
	}
	return n
}

// Policy returns the active slot-arbitration policy.
func (q *Queue[J]) Policy() Policy[J] { return q.policy }

// Order returns the runnable jobs in the policy's slot-offer order. The
// returned slice is scratch owned by the queue: it is valid until the next
// Order call and must not be retained.
func (q *Queue[J]) Order() []J {
	q.runnableScratch = q.runnableScratch[:0]
	for _, j := range q.jobs {
		if q.runnable(j) {
			q.runnableScratch = append(q.runnableScratch, j)
		}
	}
	q.orderScratch = q.policy.Order(q.orderScratch[:0], q.runnableScratch)
	return q.orderScratch
}
