package metrics

import (
	"sync"
	"sync/atomic"
)

// Streaming sink: the push half of the metrics bus. A Collector stays
// strictly passive and single-threaded, but it can optionally be wired to a
// Sink that observes every instrument write as it happens. This is how the
// long-running service streams live instrument updates to /v1/events
// subscribers while a run is in flight, without changing anything about
// what the collector records: with a nil sink every push site reduces to
// one predictable nil-check branch, snapshots are byte-identical, and the
// metrics-off path (nil collector, nil handles) is untouched.

// Update is one pushed instrument write.
type Update struct {
	Layer Layer  `json:"layer"`
	Name  string `json:"name"`
	Scope string `json:"scope,omitempty"`
	// Kind is "counter", "gauge", "histogram", or the series kind
	// (KindRate / KindSample).
	Kind string `json:"kind"`
	// Time is the instrument timestamp in simulated/run seconds, or -1
	// for untimed writes (plain counter adds, gauge sets, histogram
	// observations).
	Time float64 `json:"t"`
	// Value is the written value: the running total for counters, the
	// set value for gauges, the observation for series and histograms.
	Value float64 `json:"value"`
}

// Sink receives instrument updates. Push must be safe for concurrent use:
// a single sink may be shared by many collectors (one per live cell or
// per service run) pushing from their own goroutines, and it must never
// block — a slow consumer must not stall the run being observed.
type Sink interface {
	Push(Update)
}

// SetSink wires a sink into the collector: every subsequent instrument
// write is pushed to it, including writes through instruments created
// before the call. A nil sink detaches. Nil collectors ignore the call.
func (c *Collector) SetSink(sink Sink) {
	if c == nil {
		return
	}
	c.sink = sink
	for _, ctr := range c.counters {
		ctr.sink = sink
	}
	for _, g := range c.gauges {
		g.sink = sink
	}
	for _, s := range c.series {
		s.sink = sink
	}
	for _, h := range c.histograms {
		h.sink = sink
	}
}

// StreamSink is a channel-backed Sink for live subscribers. Pushes are
// non-blocking: when the buffer is full the update is dropped and counted,
// so a stalled reader can never back-pressure the run. Close the sink when
// the consumer is done; pushes after Close are dropped.
type StreamSink struct {
	mu      sync.RWMutex
	ch      chan Update
	closed  bool
	dropped atomic.Uint64
}

// NewStreamSink returns a sink buffering up to size updates (size <= 0
// selects 1024).
func NewStreamSink(size int) *StreamSink {
	if size <= 0 {
		size = 1024
	}
	return &StreamSink{ch: make(chan Update, size)}
}

// Push enqueues the update, dropping it if the buffer is full or the sink
// is closed. Safe for concurrent use and never blocks.
func (s *StreamSink) Push(u Update) {
	if s == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- u:
	default:
		s.dropped.Add(1)
	}
}

// Updates is the consumer side. The channel is closed by Close once no
// in-flight Push can still be delivering, so ranging over it is safe.
// A nil sink returns a nil channel (which never delivers), keeping the
// whole handle surface nil-safe.
func (s *StreamSink) Updates() <-chan Update {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many updates were discarded because the buffer was
// full or the sink closed (0 for a nil sink).
func (s *StreamSink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close marks the sink closed (subsequent pushes drop) and closes the
// Updates channel after any in-flight Push completes. Idempotent.
func (s *StreamSink) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}
