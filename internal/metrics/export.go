package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema is the versioned identifier of the run-report JSON format. Bump
// the suffix on breaking changes to the layout below.
const Schema = "moon-metrics/v1"

// CounterPoint is one counter's exported total.
type CounterPoint struct {
	Layer string  `json:"layer"`
	Name  string  `json:"name"`
	Scope string  `json:"scope,omitempty"`
	Value float64 `json:"value"`
}

func (p CounterPoint) key() Key { return Key{Layer: Layer(p.Layer), Name: p.Name, Scope: p.Scope} }

// GaugePoint is one gauge's exported state.
type GaugePoint struct {
	Layer string  `json:"layer"`
	Name  string  `json:"name"`
	Scope string  `json:"scope,omitempty"`
	Value float64 `json:"value"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func (p GaugePoint) key() Key { return Key{Layer: Layer(p.Layer), Name: p.Name, Scope: p.Scope} }

// SeriesPoint is one non-empty series bucket. T is the bucket's start time
// in simulated seconds; Value is the bucket sum (rate series) or mean
// (sample series); Count is how many observations landed in the bucket
// (summed across merged runs).
type SeriesPoint struct {
	T     float64 `json:"t"`
	Value float64 `json:"value"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// SeriesData is one exported time series.
type SeriesData struct {
	Layer  string        `json:"layer"`
	Name   string        `json:"name"`
	Scope  string        `json:"scope,omitempty"`
	Kind   string        `json:"kind"`
	Bucket float64       `json:"bucket_seconds"`
	Points []SeriesPoint `json:"points"`
}

func (s SeriesData) key() Key { return Key{Layer: Layer(s.Layer), Name: s.Name, Scope: s.Scope} }

// HistogramBucket is one non-empty histogram bucket: the count of
// observations at or below UpperBound (and above the previous bound).
// Overflow marks the open-ended bucket past the last fixed bound; its
// UpperBound then reports that last bound.
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Overflow   bool    `json:"overflow,omitempty"`
	Count      int64   `json:"count"`
}

// HistogramData is one exported distribution over the fixed log-spaced
// buckets, with its exact sum, count and extremes. Only non-empty buckets
// are exported, in ascending bound order.
type HistogramData struct {
	Layer   string            `json:"layer"`
	Name    string            `json:"name"`
	Scope   string            `json:"scope,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Buckets []HistogramBucket `json:"buckets"`
}

func (h HistogramData) key() Key { return Key{Layer: Layer(h.Layer), Name: h.Name, Scope: h.Scope} }

// Snapshot is one run's (or one merged cell's) full metric state.
type Snapshot struct {
	Bucket     float64         `json:"bucket_seconds"`
	Counters   []CounterPoint  `json:"counters,omitempty"`
	Gauges     []GaugePoint    `json:"gauges,omitempty"`
	Series     []SeriesData    `json:"series,omitempty"`
	Histograms []HistogramData `json:"histograms,omitempty"`
}

// Empty reports whether the snapshot carries no instruments.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Series) == 0 && len(s.Histograms) == 0
}

// Merge folds repeated runs of one configuration (e.g. the seeds of a sweep
// cell) into a seed-averaged snapshot: counter totals, gauge values and
// series bucket values are averaged across the n runs (an instrument absent
// from a run contributes 0), gauge/bucket min and max are the extremes over
// all runs, and bucket counts are summed. Inputs are folded in slice order,
// so the result is deterministic. Merging an empty slice yields the zero
// Snapshot.
func Merge(snaps []Snapshot) Snapshot {
	if len(snaps) == 0 {
		return Snapshot{}
	}
	if len(snaps) == 1 {
		return snaps[0]
	}
	n := float64(len(snaps))
	out := Snapshot{Bucket: snaps[0].Bucket}

	counters := make(map[Key]*CounterPoint)
	var cOrder []Key
	for _, s := range snaps {
		for _, p := range s.Counters {
			k := p.key()
			if cp := counters[k]; cp != nil {
				cp.Value += p.Value
			} else {
				p := p
				counters[k] = &p
				cOrder = append(cOrder, k)
			}
		}
	}
	sort.Slice(cOrder, func(i, j int) bool { return cOrder[i].less(cOrder[j]) })
	for _, k := range cOrder {
		p := *counters[k]
		p.Value /= n
		out.Counters = append(out.Counters, p)
	}

	gauges := make(map[Key]*GaugePoint)
	var gOrder []Key
	for _, s := range snaps {
		for _, p := range s.Gauges {
			k := p.key()
			if gp := gauges[k]; gp != nil {
				gp.Value += p.Value
				if p.Min < gp.Min {
					gp.Min = p.Min
				}
				if p.Max > gp.Max {
					gp.Max = p.Max
				}
			} else {
				p := p
				gauges[k] = &p
				gOrder = append(gOrder, k)
			}
		}
	}
	sort.Slice(gOrder, func(i, j int) bool { return gOrder[i].less(gOrder[j]) })
	for _, k := range gOrder {
		p := *gauges[k]
		p.Value /= n
		out.Gauges = append(out.Gauges, p)
	}

	type seriesAcc struct {
		data    SeriesData
		buckets map[float64]*SeriesPoint
		order   []float64
	}
	series := make(map[Key]*seriesAcc)
	var sOrder []Key
	for _, s := range snaps {
		for _, sd := range s.Series {
			k := sd.key()
			acc := series[k]
			if acc == nil {
				acc = &seriesAcc{
					data:    SeriesData{Layer: sd.Layer, Name: sd.Name, Scope: sd.Scope, Kind: sd.Kind, Bucket: sd.Bucket},
					buckets: make(map[float64]*SeriesPoint),
				}
				series[k] = acc
				sOrder = append(sOrder, k)
			}
			for _, pt := range sd.Points {
				if bp := acc.buckets[pt.T]; bp != nil {
					bp.Value += pt.Value
					bp.Count += pt.Count
					if pt.Min < bp.Min {
						bp.Min = pt.Min
					}
					if pt.Max > bp.Max {
						bp.Max = pt.Max
					}
				} else {
					pt := pt
					acc.buckets[pt.T] = &pt
					acc.order = append(acc.order, pt.T)
				}
			}
		}
	}
	sort.Slice(sOrder, func(i, j int) bool { return sOrder[i].less(sOrder[j]) })
	for _, k := range sOrder {
		acc := series[k]
		sort.Float64s(acc.order)
		for _, t := range acc.order {
			pt := *acc.buckets[t]
			pt.Value /= n
			acc.data.Points = append(acc.data.Points, pt)
		}
		out.Series = append(out.Series, acc.data)
	}

	// Histograms aggregate rather than average: the merged cell reports
	// the distribution over every observation of every run (bucket counts,
	// totals and counts summed; min/max the extremes), because "the task-
	// duration distribution across the cell's seeds" is the question a
	// histogram answers. Bucket layouts are fixed, so merging is exact.
	type histAcc struct {
		data    HistogramData
		buckets map[float64]*HistogramBucket // keyed by bound; overflow keyed separately
		over    *HistogramBucket
		order   []float64
	}
	hists := make(map[Key]*histAcc)
	var hOrder []Key
	for _, s := range snaps {
		for _, hd := range s.Histograms {
			k := hd.key()
			acc := hists[k]
			if acc == nil {
				acc = &histAcc{
					data: HistogramData{Layer: hd.Layer, Name: hd.Name, Scope: hd.Scope,
						Min: hd.Min, Max: hd.Max},
					buckets: make(map[float64]*HistogramBucket),
				}
				hists[k] = acc
				hOrder = append(hOrder, k)
			}
			acc.data.Count += hd.Count
			acc.data.Sum += hd.Sum
			if hd.Min < acc.data.Min {
				acc.data.Min = hd.Min
			}
			if hd.Max > acc.data.Max {
				acc.data.Max = hd.Max
			}
			for _, b := range hd.Buckets {
				if b.Overflow {
					if acc.over == nil {
						b := b
						acc.over = &b
					} else {
						acc.over.Count += b.Count
					}
					continue
				}
				if bp := acc.buckets[b.UpperBound]; bp != nil {
					bp.Count += b.Count
				} else {
					b := b
					acc.buckets[b.UpperBound] = &b
					acc.order = append(acc.order, b.UpperBound)
				}
			}
		}
	}
	sort.Slice(hOrder, func(i, j int) bool { return hOrder[i].less(hOrder[j]) })
	for _, k := range hOrder {
		acc := hists[k]
		sort.Float64s(acc.order)
		for _, ub := range acc.order {
			acc.data.Buckets = append(acc.data.Buckets, *acc.buckets[ub])
		}
		if acc.over != nil {
			acc.data.Buckets = append(acc.data.Buckets, *acc.over)
		}
		out.Histograms = append(out.Histograms, acc.data)
	}
	return out
}

// Experiment is one sweep cell's merged metrics inside an Export: the
// experiment title, the variant line, the churn rate, how many runs (seeds)
// were merged, and the snapshot itself.
type Experiment struct {
	Experiment string  `json:"experiment"`
	Variant    string  `json:"variant"`
	Rate       float64 `json:"rate"`
	Runs       int     `json:"runs"`
	Snapshot
}

// Export is the top-level run report written by `moonbench -metrics`: a
// schema-versioned header plus one Experiment entry per swept cell.
//
// Scenario and SpecHash, when set, record which scenario spec produced the
// report (the spec's name and its content hash), making exported reports
// self-describing: two reports with equal hashes came from byte-identical
// experiment definitions.
type Export struct {
	Schema      string       `json:"schema"`
	Tool        string       `json:"tool,omitempty"`
	Scenario    string       `json:"scenario,omitempty"`
	SpecHash    string       `json:"spec_hash,omitempty"`
	Experiments []Experiment `json:"experiments"`
}

// NewExport returns an empty report for the given tool name.
func NewExport(tool string) *Export {
	return &Export{Schema: Schema, Tool: tool}
}

// Add appends one merged cell to the report.
func (e *Export) Add(experiment, variant string, rate float64, runs int, snap Snapshot) {
	e.Experiments = append(e.Experiments, Experiment{
		Experiment: experiment, Variant: variant, Rate: rate, Runs: runs, Snapshot: snap,
	})
}

// WriteJSON writes the report as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteTimelineCSV writes every series point of every experiment as one CSV
// row — the flat timeline dump plotting tools ingest directly.
func (e *Export) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,variant,rate,layer,name,scope,kind,t,value,count"); err != nil {
		return err
	}
	for _, exp := range e.Experiments {
		for _, sd := range exp.Series {
			for _, pt := range sd.Points {
				if _, err := fmt.Fprintf(w, "%q,%q,%g,%s,%s,%s,%s,%g,%g,%d\n",
					exp.Experiment, exp.Variant, exp.Rate,
					sd.Layer, sd.Name, sd.Scope, sd.Kind, pt.T, pt.Value, pt.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
