package metrics

import "sort"

// Histogram buckets are fixed and log-spaced: bucket i spans
// (bounds[i-1], bounds[i]] with bounds[i] = HistMinBound × 2^i, plus one
// overflow bucket above the last bound. Fixing the layout (rather than
// sizing it per run) keeps snapshots deterministic and makes histograms
// from different runs, seeds and backends mergeable bucket-by-bucket —
// the property Merge relies on.
const (
	// HistMinBound is the first upper bound, in the instrument's unit
	// (seconds for duration histograms): observations at or below 1 ms
	// land in bucket 0.
	HistMinBound = 0.001
	// HistBuckets is the number of bounded buckets; with factor-2 spacing
	// the last bound is ~1.1e9 s, far beyond any task duration, so the
	// overflow bucket only catches pathological values.
	HistBuckets = 41
)

// histBounds is the shared upper-bound table (computed once; len
// HistBuckets).
var histBounds = func() []float64 {
	b := make([]float64, HistBuckets)
	v := HistMinBound
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// HistogramBounds returns a copy of the fixed bucket upper bounds.
func HistogramBounds() []float64 {
	out := make([]float64, len(histBounds))
	copy(out, histBounds)
	return out
}

// Histogram counts observations into the fixed log-spaced buckets and
// tracks the exact sum, count, min and max. Like every instrument,
// methods on a nil histogram are no-ops, so instrumented code runs
// bit-identically and allocation-free with collection off.
type Histogram struct {
	key    Key
	counts []int64 // len HistBuckets+1; last is overflow
	sum    float64
	count  int64
	min    float64
	max    float64
	sink   Sink
}

// Histogram returns the histogram registered under (layer, name, scope),
// creating it on first use. A nil collector returns a nil (no-op)
// histogram.
func (c *Collector) Histogram(layer Layer, name, scope string) *Histogram {
	if c == nil {
		return nil
	}
	k := Key{Layer: layer, Name: name, Scope: scope}
	if h := c.hIndex[k]; h != nil {
		return h
	}
	h := &Histogram{key: k, counts: make([]int64, HistBuckets+1), sink: c.sink}
	c.hIndex[k] = h
	c.histograms = append(c.histograms, h)
	return h
}

// Observe records one value. Negative observations clamp to the first
// bucket (durations cannot be negative; a clock hiccup must not panic).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(histBounds, v)
	h.counts[idx]++ // idx == HistBuckets means overflow
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.sum += v
	h.count++
	if h.sink != nil {
		h.sink.Push(Update{Layer: h.key.Layer, Name: h.key.Name, Scope: h.key.Scope,
			Kind: "histogram", Time: -1, Value: v})
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}
