package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestNilCollectorAndInstrumentsAreNoOps(t *testing.T) {
	var c *Collector
	ctr := c.TimedCounter(LayerSim, "x", "")
	g := c.Gauge(LayerSim, "y", "")
	s := c.SampleSeries(LayerSim, "z", "")
	ctr.Inc()
	ctr.AddAt(10, 5)
	g.Set(3)
	s.Observe(1, 2)
	if v := ctr.Value(); v != 0 {
		t.Fatalf("nil counter value %v", v)
	}
	if v := g.Value(); v != 0 {
		t.Fatalf("nil gauge value %v", v)
	}
	if !c.Snapshot().Empty() {
		t.Fatal("nil collector snapshot not empty")
	}
	if c.Bucket() != 0 {
		t.Fatal("nil collector bucket")
	}
}

func TestInstrumentsAreIdempotentPerKey(t *testing.T) {
	c := New(60)
	a := c.Counter(LayerDFS, "bytes", "")
	b := c.Counter(LayerDFS, "bytes", "")
	if a != b {
		t.Fatal("same key resolved to distinct counters")
	}
	if c.RateSeries(LayerDFS, "bytes", "") != c.RateSeries(LayerDFS, "bytes", "") {
		t.Fatal("same key resolved to distinct series")
	}
	a.Add(2)
	b.Add(3)
	if got := a.Value(); got != 5 {
		t.Fatalf("shared counter total %v, want 5", got)
	}
}

func TestSnapshotDeterministicAcrossRegistrationOrder(t *testing.T) {
	build := func(names []string) Snapshot {
		c := New(100)
		for _, n := range names {
			c.Counter(LayerMapred, n, "").Add(float64(len(n)))
			c.Gauge(LayerCluster, n, "").Set(1)
			c.SampleSeries(LayerSim, n, "").Observe(50, 2)
		}
		return c.Snapshot()
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ by registration order:\n%+v\n%+v", a, b)
	}
}

func TestSeriesBucketing(t *testing.T) {
	c := New(100)
	rate := c.RateSeries(LayerDFS, "rep_bytes", "")
	rate.Add(10, 5)
	rate.Add(90, 7)
	rate.Add(250, 1)
	sample := c.SampleSeries(LayerMapred, "occ", "")
	sample.Observe(10, 0.5)
	sample.Observe(20, 1.5)

	snap := c.Snapshot()
	if len(snap.Series) != 2 {
		t.Fatalf("series count %d", len(snap.Series))
	}
	var rep, occ SeriesData
	for _, sd := range snap.Series {
		switch sd.Name {
		case "rep_bytes":
			rep = sd
		case "occ":
			occ = sd
		}
	}
	if len(rep.Points) != 2 || rep.Points[0].T != 0 || rep.Points[0].Value != 12 ||
		rep.Points[1].T != 200 || rep.Points[1].Value != 1 {
		t.Fatalf("rate series points %+v", rep.Points)
	}
	if len(occ.Points) != 1 || occ.Points[0].Value != 1.0 || occ.Points[0].Count != 2 {
		t.Fatalf("sample series points %+v", occ.Points)
	}
	if occ.Points[0].Min != 0.5 || occ.Points[0].Max != 1.5 {
		t.Fatalf("sample min/max %+v", occ.Points[0])
	}
}

func TestTimedCounterFeedsSeries(t *testing.T) {
	c := New(100)
	ctr := c.TimedCounter(LayerSim, "fired", "")
	ctr.IncAt(10)
	ctr.IncAt(150)
	ctr.Add(5) // untimed: total only
	snap := c.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if len(snap.Series) != 1 || len(snap.Series[0].Points) != 2 {
		t.Fatalf("series %+v", snap.Series)
	}
}

func TestMergeAveragesAcrossRuns(t *testing.T) {
	run := func(v float64) Snapshot {
		c := New(100)
		c.Counter(LayerDFS, "n", "").Add(v)
		c.Gauge(LayerCluster, "g", "").Set(v)
		c.RateSeries(LayerSim, "s", "").Add(50, v)
		return c.Snapshot()
	}
	m := Merge([]Snapshot{run(2), run(4)})
	if m.Counters[0].Value != 3 {
		t.Fatalf("merged counter %v, want 3", m.Counters[0].Value)
	}
	if m.Gauges[0].Value != 3 || m.Gauges[0].Min != 2 || m.Gauges[0].Max != 4 {
		t.Fatalf("merged gauge %+v", m.Gauges[0])
	}
	if m.Series[0].Points[0].Value != 3 || m.Series[0].Points[0].Count != 2 {
		t.Fatalf("merged series %+v", m.Series[0].Points[0])
	}
	// An instrument absent from one run averages against 0.
	c := New(100)
	c.Counter(LayerDFS, "only", "").Add(6)
	m = Merge([]Snapshot{c.Snapshot(), {Bucket: 100}})
	if m.Counters[0].Value != 3 {
		t.Fatalf("partial merge counter %v, want 3", m.Counters[0].Value)
	}
}

func TestExportSchemaAndCSV(t *testing.T) {
	c := New(100)
	c.TimedCounter(LayerDFS, "rep_bytes", "").AddAt(10, 100)
	e := NewExport("test")
	e.Add("fig4", "MOON", 0.3, 2, c.Snapshot())

	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != Schema {
		t.Fatalf("schema %v, want %v", decoded["schema"], Schema)
	}

	var csv bytes.Buffer
	if err := e.WriteTimelineCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines %d: %q", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,variant,rate,layer,name") {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.Contains(lines[1], `"fig4","MOON",0.3,dfs,rep_bytes`) {
		t.Fatalf("csv row %q", lines[1])
	}
}
