// Package metrics is the cross-layer instrumentation bus of the MOON
// reproduction: typed counters, gauges and time-bucketed series keyed by
// (layer, name, scope), collected per simulation run and exportable as a
// schema-versioned run report.
//
// The design is allocation-conscious and strictly passive:
//
//   - Instruments are resolved once, at wiring time, into typed handles
//     (*Counter, *Gauge, *Series). The hot path is a field update behind a
//     nil check — a nil handle (no collector attached) is a no-op, so
//     instrumented code runs bit-identically and allocation-free whether or
//     not metrics are collected.
//   - Collection never touches model state, draws no randomness, and
//     schedules no simulation events, so enabling a collector cannot
//     perturb a run: profiles and run statistics are byte-identical with
//     metrics on or off (pinned by internal/harness/regression_test.go).
//   - Snapshots are deterministic: instruments are exported in sorted
//     (layer, name, scope) order regardless of registration order, and
//     series buckets are indexed by time, so equal runs produce equal
//     reports.
//
// A Collector is single-threaded, like the simulation it observes; in
// parallel sweeps every cell owns its own Collector and the harness merges
// the resulting Snapshots deterministically.
package metrics

import "sort"

// DefaultBucket is the default series bucket width in seconds: 300 s gives
// ~100 buckets over the paper's 8-hour trace horizon.
const DefaultBucket = 300

// Layer identifies the subsystem that owns an instrument.
type Layer string

// The instrumented layers of the stack.
const (
	LayerSim     Layer = "sim"
	LayerCluster Layer = "cluster"
	LayerNet     Layer = "net"
	LayerDFS     Layer = "dfs"
	LayerMapred  Layer = "mapred"
	LayerEngine  Layer = "engine"
	// LayerTransport owns the live engine's message-fabric instruments:
	// traffic and injected-fault counts plus the failure-handling
	// protocol's lease expiries, session resets, retries and
	// duplicate-result discards.
	LayerTransport Layer = "transport"
)

// Key names one instrument: the owning layer, the metric name, and an
// optional scope (a job name, a node label, or "" for fleet-wide).
type Key struct {
	Layer Layer
	Name  string
	Scope string
}

func (k Key) less(o Key) bool {
	if k.Layer != o.Layer {
		return k.Layer < o.Layer
	}
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	return k.Scope < o.Scope
}

// Collector gathers one run's instruments. The zero value is not usable;
// create with New. A nil *Collector is a valid "collection off" value:
// every instrument it returns is nil, and nil instruments no-op.
type Collector struct {
	bucket float64
	sink   Sink // optional push sink (stream.go); nil = no streaming

	counters   []*Counter
	gauges     []*Gauge
	series     []*Series
	histograms []*Histogram

	cIndex map[Key]*Counter
	gIndex map[Key]*Gauge
	sIndex map[Key]*Series
	hIndex map[Key]*Histogram
}

// New returns an empty collector whose series use the given bucket width in
// seconds (<= 0 selects DefaultBucket).
func New(bucket float64) *Collector {
	if bucket <= 0 {
		bucket = DefaultBucket
	}
	return &Collector{
		bucket: bucket,
		cIndex: make(map[Key]*Counter),
		gIndex: make(map[Key]*Gauge),
		sIndex: make(map[Key]*Series),
		hIndex: make(map[Key]*Histogram),
	}
}

// Bucket returns the series bucket width in seconds (0 for a nil collector).
func (c *Collector) Bucket() float64 {
	if c == nil {
		return 0
	}
	return c.bucket
}

// Counter returns the counter registered under (layer, name, scope),
// creating it on first use. A nil collector returns a nil (no-op) counter.
func (c *Collector) Counter(layer Layer, name, scope string) *Counter {
	if c == nil {
		return nil
	}
	k := Key{Layer: layer, Name: name, Scope: scope}
	if ctr := c.cIndex[k]; ctr != nil {
		return ctr
	}
	ctr := &Counter{key: k, sink: c.sink}
	c.cIndex[k] = ctr
	c.counters = append(c.counters, ctr)
	return ctr
}

// TimedCounter returns a counter that also accumulates a rate series (same
// key) bucketed over time, so totals come with a timeline. A nil collector
// returns nil.
func (c *Collector) TimedCounter(layer Layer, name, scope string) *Counter {
	if c == nil {
		return nil
	}
	ctr := c.Counter(layer, name, scope)
	if ctr.series == nil {
		ctr.series = c.RateSeries(layer, name, scope)
	}
	return ctr
}

// Gauge returns the gauge registered under (layer, name, scope), creating
// it on first use. A nil collector returns a nil (no-op) gauge.
func (c *Collector) Gauge(layer Layer, name, scope string) *Gauge {
	if c == nil {
		return nil
	}
	k := Key{Layer: layer, Name: name, Scope: scope}
	if g := c.gIndex[k]; g != nil {
		return g
	}
	g := &Gauge{key: k, sink: c.sink}
	c.gIndex[k] = g
	c.gauges = append(c.gauges, g)
	return g
}

// RateSeries returns a time-bucketed series with sum semantics: Add(t, v)
// accumulates v into t's bucket, and the bucket's exported value is the
// sum (a per-bucket rate, e.g. bytes replicated per bucket).
func (c *Collector) RateSeries(layer Layer, name, scope string) *Series {
	return c.newSeries(layer, name, scope, KindRate)
}

// SampleSeries returns a time-bucketed series with sample semantics:
// Observe(t, v) records v in t's bucket, and the bucket's exported value is
// the mean of its observations (e.g. slot occupancy sampled per heartbeat).
func (c *Collector) SampleSeries(layer Layer, name, scope string) *Series {
	return c.newSeries(layer, name, scope, KindSample)
}

func (c *Collector) newSeries(layer Layer, name, scope, kind string) *Series {
	if c == nil {
		return nil
	}
	k := Key{Layer: layer, Name: name, Scope: scope}
	if s := c.sIndex[k]; s != nil {
		return s
	}
	s := &Series{key: k, kind: kind, width: c.bucket, sink: c.sink}
	c.sIndex[k] = s
	c.series = append(c.series, s)
	return s
}

// Series value semantics.
const (
	// KindRate buckets export the sum of added values.
	KindRate = "rate"
	// KindSample buckets export the mean of observed values.
	KindSample = "sample"
)

// Counter accumulates a monotonically growing total. Methods on a nil
// counter are no-ops, so instrumented code needs no "metrics enabled"
// branches of its own.
type Counter struct {
	key    Key
	total  float64
	series *Series // optional timeline (TimedCounter)
	sink   Sink
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v to the total (untimed: the optional timeline is not fed).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.total += v
	if c.sink != nil {
		c.sink.Push(Update{Layer: c.key.Layer, Name: c.key.Name, Scope: c.key.Scope,
			Kind: "counter", Time: -1, Value: c.total})
	}
}

// AddAt adds v to the total and, for a TimedCounter, to the bucket of time
// t (seconds).
func (c *Counter) AddAt(t, v float64) {
	if c == nil {
		return
	}
	c.total += v
	c.series.add(t, v)
	if c.sink != nil {
		c.sink.Push(Update{Layer: c.key.Layer, Name: c.key.Name, Scope: c.key.Scope,
			Kind: "counter", Time: t, Value: c.total})
	}
}

// IncAt is AddAt(t, 1).
func (c *Counter) IncAt(t float64) { c.AddAt(t, 1) }

// Value returns the accumulated total (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Gauge records a last-written value plus the min/max it has seen.
type Gauge struct {
	key      Key
	v        float64
	min, max float64
	set      bool
	sink     Sink
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if !g.set {
		g.min, g.max = v, v
		g.set = true
	} else {
		if v < g.min {
			g.min = v
		}
		if v > g.max {
			g.max = v
		}
	}
	g.v = v
	if g.sink != nil {
		g.sink.Push(Update{Layer: g.key.Layer, Name: g.key.Name, Scope: g.key.Scope,
			Kind: "gauge", Time: -1, Value: v})
	}
}

// Value returns the last-set value (0 for a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// bucketAgg aggregates one series bucket.
type bucketAgg struct {
	sum      float64
	count    int64
	min, max float64
}

// Series is a time-bucketed sequence of observations. Buckets are dense
// from t=0; bucket i covers [i*width, (i+1)*width). Methods on a nil series
// are no-ops.
type Series struct {
	key     Key
	kind    string
	width   float64
	buckets []bucketAgg
	sink    Sink
}

// Add accumulates v into the bucket of time t (rate semantics).
func (s *Series) Add(t, v float64) {
	if s == nil {
		return
	}
	s.add(t, v)
}

// Observe records sample v at time t (sample semantics).
func (s *Series) Observe(t, v float64) {
	if s == nil {
		return
	}
	s.add(t, v)
}

func (s *Series) add(t, v float64) {
	if s == nil {
		return
	}
	if t < 0 {
		t = 0
	}
	idx := int(t / s.width)
	for idx >= len(s.buckets) {
		s.buckets = append(s.buckets, bucketAgg{})
	}
	b := &s.buckets[idx]
	if b.count == 0 {
		b.min, b.max = v, v
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
	}
	b.sum += v
	b.count++
	if s.sink != nil {
		s.sink.Push(Update{Layer: s.key.Layer, Name: s.key.Name, Scope: s.key.Scope,
			Kind: s.kind, Time: t, Value: v})
	}
}

// Snapshot freezes the collector's state into a deterministic, exportable
// report fragment: instruments sorted by (layer, name, scope), series as
// non-empty buckets only. A nil collector snapshots to the zero Snapshot.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	snap := Snapshot{Bucket: c.bucket}
	for _, ctr := range c.counters {
		snap.Counters = append(snap.Counters, CounterPoint{
			Layer: string(ctr.key.Layer), Name: ctr.key.Name, Scope: ctr.key.Scope,
			Value: ctr.total,
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].key().less(snap.Counters[j].key()) })
	for _, g := range c.gauges {
		if !g.set {
			continue
		}
		snap.Gauges = append(snap.Gauges, GaugePoint{
			Layer: string(g.key.Layer), Name: g.key.Name, Scope: g.key.Scope,
			Value: g.v, Min: g.min, Max: g.max,
		})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].key().less(snap.Gauges[j].key()) })
	for _, s := range c.series {
		sd := SeriesData{
			Layer: string(s.key.Layer), Name: s.key.Name, Scope: s.key.Scope,
			Kind: s.kind, Bucket: s.width,
		}
		for i, b := range s.buckets {
			if b.count == 0 {
				continue
			}
			v := b.sum
			if s.kind == KindSample {
				v = b.sum / float64(b.count)
			}
			sd.Points = append(sd.Points, SeriesPoint{
				T: float64(i) * s.width, Value: v, Count: b.count, Min: b.min, Max: b.max,
			})
		}
		if len(sd.Points) == 0 {
			continue
		}
		snap.Series = append(snap.Series, sd)
	}
	sort.Slice(snap.Series, func(i, j int) bool { return snap.Series[i].key().less(snap.Series[j].key()) })
	for _, h := range c.histograms {
		if h.count == 0 {
			continue
		}
		hd := HistogramData{
			Layer: string(h.key.Layer), Name: h.key.Name, Scope: h.key.Scope,
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		}
		for i, n := range h.counts {
			if n == 0 {
				continue
			}
			ub := histBounds[HistBuckets-1] // overflow reports the last bound
			if i < HistBuckets {
				ub = histBounds[i]
			}
			hd.Buckets = append(hd.Buckets, HistogramBucket{
				UpperBound: ub, Overflow: i == HistBuckets, Count: n,
			})
		}
		snap.Histograms = append(snap.Histograms, hd)
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].key().less(snap.Histograms[j].key()) })
	return snap
}
