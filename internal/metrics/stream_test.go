package metrics

import (
	"reflect"
	"sync"
	"testing"
)

// recSink records pushes synchronously (test-local, single-threaded use).
type recSink struct{ ups []Update }

func (r *recSink) Push(u Update) { r.ups = append(r.ups, u) }

func TestSinkReceivesEveryInstrumentKind(t *testing.T) {
	c := New(10)
	pre := c.Counter(LayerEngine, "pre", "") // created before SetSink
	sink := &recSink{}
	c.SetSink(sink)

	pre.Add(2)
	c.Counter(LayerEngine, "jobs", "j1").IncAt(3)
	c.Gauge(LayerCluster, "nodes", "").Set(7)
	c.RateSeries(LayerNet, "bytes", "").Add(12, 100)
	c.Histogram(LayerMapred, "task", "").Observe(0.5)

	want := []Update{
		{Layer: LayerEngine, Name: "pre", Kind: "counter", Time: -1, Value: 2},
		{Layer: LayerEngine, Name: "jobs", Scope: "j1", Kind: "counter", Time: 3, Value: 1},
		{Layer: LayerCluster, Name: "nodes", Kind: "gauge", Time: -1, Value: 7},
		{Layer: LayerNet, Name: "bytes", Kind: KindRate, Time: 12, Value: 100},
		{Layer: LayerMapred, Name: "task", Kind: "histogram", Time: -1, Value: 0.5},
	}
	if len(sink.ups) != len(want) {
		t.Fatalf("got %d updates, want %d: %+v", len(sink.ups), len(want), sink.ups)
	}
	for i, u := range sink.ups {
		if u != want[i] {
			t.Errorf("update %d: got %+v, want %+v", i, u, want[i])
		}
	}
}

func TestSinkDoesNotChangeSnapshot(t *testing.T) {
	run := func(sink Sink) Snapshot {
		c := New(10)
		c.SetSink(sink)
		c.TimedCounter(LayerEngine, "done", "").IncAt(5)
		c.Gauge(LayerCluster, "nodes", "").Set(3)
		c.Histogram(LayerMapred, "task", "").Observe(1.5)
		return c.Snapshot()
	}
	plain, streamed := run(nil), run(&recSink{})
	if !reflect.DeepEqual(plain, streamed) {
		t.Fatalf("snapshot changed by sink:\nplain    %+v\nstreamed %+v", plain, streamed)
	}
}

func TestStreamSinkDropsWhenFullAndClosesSafely(t *testing.T) {
	s := NewStreamSink(2)
	for i := 0; i < 5; i++ {
		s.Push(Update{Value: float64(i)})
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}

	// Concurrent pushers racing Close must neither panic nor deadlock.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Push(Update{Value: float64(j)})
			}
		}()
	}
	s.Close()
	s.Close() // idempotent
	wg.Wait()

	n := 0
	for range s.Updates() { // closed channel: range terminates
		n++
	}
	if n > 2 {
		t.Fatalf("drained %d updates from a 2-buffer sink", n)
	}
}
