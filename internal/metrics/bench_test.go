package metrics

import "testing"

// BenchmarkNilCounterAdd is the disabled-metrics hot path: a nil handle
// must cost a nil check and nothing else (0 allocs/op).
func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddAt(float64(i), 1)
	}
}

// BenchmarkCounterAdd is the enabled hot path for untimed counters.
func BenchmarkCounterAdd(b *testing.B) {
	col := New(300)
	c := col.Counter(LayerSim, "x", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkTimedCounterAdd measures the bucketed path at steady state: once
// the bucket slice covers the observed time range, AddAt is allocation-free.
func BenchmarkTimedCounterAdd(b *testing.B) {
	col := New(300)
	c := col.TimedCounter(LayerSim, "x", "")
	c.AddAt(8*3600, 0) // pre-grow to the full horizon
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddAt(float64(i%(8*3600)), 1)
	}
}

// BenchmarkSampleSeriesObserve measures gauge-style sampling at steady
// state.
func BenchmarkSampleSeriesObserve(b *testing.B) {
	col := New(300)
	s := col.SampleSeries(LayerMapred, "occ", "")
	s.Observe(8*3600, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%(8*3600)), 0.5)
	}
}
