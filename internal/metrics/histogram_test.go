package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketsObservationsLogSpaced(t *testing.T) {
	c := New(60)
	h := c.Histogram(LayerEngine, "task_duration_seconds", "map")
	// 0.001 lands in bucket 0 (le 0.001); 0.0015 in bucket 1 (le 0.002);
	// 5 between 2^12*0.001=4.096 and 8.192.
	h.Observe(0.001)
	h.Observe(0.0015)
	h.Observe(5)
	h.Observe(5)
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Sum(), 0.001+0.0015+10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum %v, want %v", got, want)
	}

	snap := c.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms in snapshot: %d", len(snap.Histograms))
	}
	hd := snap.Histograms[0]
	if hd.Layer != "engine" || hd.Name != "task_duration_seconds" || hd.Scope != "map" {
		t.Fatalf("histogram key %s/%s/%s", hd.Layer, hd.Name, hd.Scope)
	}
	if hd.Count != 4 || hd.Min != 0.001 || hd.Max != 5 {
		t.Fatalf("histogram stats %+v", hd)
	}
	if len(hd.Buckets) != 3 {
		t.Fatalf("non-empty buckets %d: %+v", len(hd.Buckets), hd.Buckets)
	}
	for i := 1; i < len(hd.Buckets); i++ {
		if hd.Buckets[i].UpperBound <= hd.Buckets[i-1].UpperBound {
			t.Fatal("buckets not in ascending bound order")
		}
	}
	if hd.Buckets[0].UpperBound != 0.001 || hd.Buckets[0].Count != 1 {
		t.Fatalf("first bucket %+v", hd.Buckets[0])
	}
	if hd.Buckets[2].Count != 2 {
		t.Fatalf("5s bucket %+v", hd.Buckets[2])
	}
}

func TestHistogramOverflowAndNegative(t *testing.T) {
	c := New(60)
	h := c.Histogram(LayerSim, "x", "")
	h.Observe(-1)   // clamps into the first bucket
	h.Observe(1e12) // beyond the last bound: overflow
	snap := c.Snapshot()
	hd := snap.Histograms[0]
	if hd.Min != -1 || hd.Max != 1e12 {
		t.Fatalf("extremes %v/%v", hd.Min, hd.Max)
	}
	var sawOverflow bool
	for _, b := range hd.Buckets {
		if b.Overflow {
			sawOverflow = true
			if b.Count != 1 {
				t.Fatalf("overflow count %d", b.Count)
			}
		}
	}
	if !sawOverflow {
		t.Fatal("overflow bucket missing")
	}
	if hd.Buckets[0].UpperBound != HistMinBound || hd.Buckets[0].Count != 1 {
		t.Fatalf("negative observation not in first bucket: %+v", hd.Buckets[0])
	}
}

func TestNilHistogramIsNoOp(t *testing.T) {
	var c *Collector
	h := c.Histogram(LayerEngine, "x", "")
	if h != nil {
		t.Fatal("nil collector returned a histogram")
	}
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram reported observations")
	}
}

func TestHistogramMergeSumsBuckets(t *testing.T) {
	mk := func(vals ...float64) Snapshot {
		c := New(60)
		h := c.Histogram(LayerMapred, "task_duration_seconds", "map")
		for _, v := range vals {
			h.Observe(v)
		}
		return c.Snapshot()
	}
	a := mk(0.001, 5)
	b := mk(5, 1e12)
	merged := Merge([]Snapshot{a, b})
	if len(merged.Histograms) != 1 {
		t.Fatalf("merged histograms %d", len(merged.Histograms))
	}
	hd := merged.Histograms[0]
	// Histograms aggregate (counts summed), unlike averaged counters.
	if hd.Count != 4 {
		t.Fatalf("merged count %d, want 4", hd.Count)
	}
	if hd.Min != 0.001 || hd.Max != 1e12 {
		t.Fatalf("merged extremes %v/%v", hd.Min, hd.Max)
	}
	var fives int64
	for _, bk := range hd.Buckets {
		if !bk.Overflow && bk.UpperBound > 4 && bk.UpperBound < 9 {
			fives = bk.Count
		}
	}
	if fives != 2 {
		t.Fatalf("5s bucket merged count %d, want 2", fives)
	}
	// Merging is deterministic in input order.
	again := Merge([]Snapshot{a, b})
	x, _ := json.Marshal(merged)
	y, _ := json.Marshal(again)
	if string(x) != string(y) {
		t.Fatal("merge not deterministic")
	}
}

func TestHistogramExportJSON(t *testing.T) {
	c := New(60)
	c.Histogram(LayerEngine, "task_duration_seconds", "reduce").Observe(0.5)
	e := NewExport("test")
	e.Add("exp", "v", 0.1, 1, c.Snapshot())
	var sb strings.Builder
	if err := e.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"histograms"`, `"le"`, `"task_duration_seconds"`, Schema} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s:\n%s", want, out)
		}
	}
}

func TestHistogramBoundsFixedAndSorted(t *testing.T) {
	b := HistogramBounds()
	if len(b) != HistBuckets || b[0] != HistMinBound {
		t.Fatalf("bounds %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != b[i-1]*2 {
			t.Fatalf("bounds not factor-2 spaced at %d: %v vs %v", i, b[i], b[i-1])
		}
	}
}
