package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestConcurrentJobsUnderChurn is the live engine's multi-tenancy
// acceptance test: N jobs submitted together on one cluster under
// trace-driven churn must all complete with exact results, populated
// per-job profiles, and balanced queue accounting (no leaked live-attempt
// counts, no retained intermediate stores). Run with -race in CI.
func TestConcurrentJobsUnderChurn(t *testing.T) {
	const jobs = 4
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 4
	cfg.DedicatedWorkers = 2
	cfg.JobPolicy = "fair"
	col := metrics.New(1)
	cfg.Metrics = col
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Trace-driven churn across the volatile workers while the jobs run.
	traces := []trace.Trace{
		{Duration: 400, Outages: []trace.Interval{{Start: 20, End: 90}, {Start: 180, End: 260}}},
		{Duration: 400, Outages: []trace.Interval{{Start: 50, End: 140}}},
		{Duration: 400, Outages: []trace.Interval{{Start: 10, End: 60}, {Start: 220, End: 300}}},
		{Duration: 400, Outages: []trace.Interval{{Start: 100, End: 200}}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	churnDone := make(chan struct{})
	runner := NewChurnRunner(c, time.Millisecond)
	go func() {
		runner.PlayFleet(ctx, traces)
		close(churnDone)
	}()

	type expectation struct {
		h    *JobHandle
		want map[string]string
	}
	var subs []expectation
	for i := 0; i < jobs; i++ {
		job, want := wordCountJob(8+i, 300, 2+i%2)
		job.Name = fmt.Sprintf("churn-job-%d", i)
		h, err := c.Submit(job)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		subs = append(subs, expectation{h: h, want: want})
	}

	for i, s := range subs {
		got, prof, err := s.h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		checkResults(t, got, s.want)
		if prof.Job != fmt.Sprintf("churn-job-%d", i) {
			t.Errorf("job %d profile name %q", i, prof.Job)
		}
		if prof.Makespan <= 0 || prof.Makespan < prof.QueueWait {
			t.Errorf("job %d profile times: makespan %v, queue wait %v", i, prof.Makespan, prof.QueueWait)
		}
		if prof.Stats.MapAttempts < 8+i {
			t.Errorf("job %d map attempts %d < %d inputs", i, prof.Stats.MapAttempts, 8+i)
		}
		if prof.Stats.ReduceAttempts < 2+i%2 {
			t.Errorf("job %d reduce attempts %d", i, prof.Stats.ReduceAttempts)
		}
	}
	<-churnDone
	// Let straggler/backup attempts of decided tasks retire, then stop the
	// master: queue state is safe to audit after Close returns.
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c.Close()

	if got := c.master.queue.Len(); got != jobs {
		t.Fatalf("queue holds %d jobs, want %d", got, jobs)
	}
	for _, j := range c.master.queue.Jobs() {
		if !j.finished {
			t.Errorf("job %s not finished", j.Name())
		}
		if !j.attempts.Balanced() {
			t.Errorf("job %s leaked attempts %+v", j.Name(), j.attempts)
		}
	}
	// Every drained job's intermediate data must have been released.
	for _, w := range c.workers {
		w.storeMu.Lock()
		n := len(w.store)
		w.storeMu.Unlock()
		if n != 0 {
			t.Errorf("worker %d retains %d store entries after all jobs drained", w.id, n)
		}
	}

	// The per-job gauges and the engine task-duration histogram were fed.
	snap := col.Snapshot()
	gauges := map[string]int{}
	for _, g := range snap.Gauges {
		if g.Layer == string(metrics.LayerEngine) {
			gauges[g.Name]++
		}
	}
	if gauges["makespan_seconds"] != jobs || gauges["queue_wait_seconds"] != jobs {
		t.Errorf("per-job gauges: %v (want %d of each)", gauges, jobs)
	}
	var durCount int64
	for _, hd := range snap.Histograms {
		if hd.Layer == string(metrics.LayerEngine) && hd.Name == "task_duration_seconds" {
			durCount += hd.Count
		}
	}
	if durCount == 0 {
		t.Error("task_duration_seconds histogram empty")
	}
}

// TestConcurrentRunsShareOneCluster: the Run convenience wrapper is safe
// to call concurrently — each call is an independent Submit+Wait.
func TestConcurrentRunsShareOneCluster(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			job, want := wordCountJob(6, 150, 2)
			job.Name = fmt.Sprintf("run-%d", i)
			got, _, err := c.Run(ctx, job)
			if err != nil {
				errs <- fmt.Errorf("run %d: %w", i, err)
				return
			}
			for k, v := range want {
				if got[k] != v {
					errs <- fmt.Errorf("run %d key %q = %q, want %q", i, k, got[k], v)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubmitRejectsDuplicateLiveNames: two live jobs cannot share a name;
// a finished job releases it.
func TestSubmitRejectsDuplicateLiveNames(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Suspend all volatile workers? Not needed: submit two immediately —
	// the first cannot finish before the second submit is processed,
	// because both submits are serialized on the master loop ahead of any
	// completion event... not guaranteed; use a slow map to hold the
	// first job live.
	release := make(chan struct{})
	slow := Job{
		Name:    "dup",
		Inputs:  []string{"x"},
		Reduces: 1,
		Map: func(in string, emit func(k, v string)) {
			<-release
			emit(in, "1")
		},
		Reduce: func(k string, vs []string) string { return "1" },
	}
	h1, err := c.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(slow); err == nil {
		t.Fatal("duplicate live name accepted")
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := h1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// The name is free again.
	quick := slow
	quick.Map = func(in string, emit func(k, v string)) { emit(in, "1") }
	h2, err := c.Submit(quick)
	if err != nil {
		t.Fatalf("name of finished job still held: %v", err)
	}
	if _, _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOSerializesWholeJobsAcrossPhases: policy rank dominates across
// task phases — under FIFO on a single worker, job A's *reduces* run
// before job B's maps. (A regression test for the offer() inversion where
// any job's pending maps outranked every job's reduces, starving a
// high-ranked job's reduce phase behind a low-ranked map backlog.)
func TestFIFOSerializesWholeJobsAcrossPhases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 1
	cfg.DedicatedWorkers = 0
	cfg.ReplicateToDedicated = false
	cfg.JobPolicy = "fifo"
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	var order []string
	record := func(ev string) {
		mu.Lock()
		order = append(order, ev)
		mu.Unlock()
	}
	gate := make(chan struct{}) // holds every task until both jobs are queued
	mkJob := func(name string) Job {
		job, _ := wordCountJob(2, 50, 1)
		job.Name = name
		base, baseR := job.Map, job.Reduce
		job.Map = func(in string, emit func(k, v string)) {
			<-gate
			record(name + "-map")
			base(in, emit)
		}
		first := true
		job.Reduce = func(k string, vs []string) string {
			if first {
				record(name + "-reduce")
				first = false
			}
			return baseR(k, vs)
		}
		return job
	}
	hA, err := c.Submit(mkJob("A"))
	if err != nil {
		t.Fatal(err)
	}
	hB, err := c.Submit(mkJob("B"))
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	if _, _, err := hA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := hB.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	got := strings.Join(order, " ")
	mu.Unlock()
	if got != "A-map A-map A-reduce B-map B-map B-reduce" {
		t.Fatalf("FIFO did not serialize whole jobs: %s", got)
	}
}

// TestUnknownJobPolicyRejected: a typo'd Config.JobPolicy is a hard error
// at New — nothing silently falls back to FIFO.
func TestUnknownJobPolicyRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JobPolicy = "round-robin"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown job policy accepted")
	}
	for _, ok := range []string{"", "fifo", "fair", "weighted", "priority"} {
		cfg.JobPolicy = ok
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("policy %q rejected: %v", ok, err)
		}
		c.Close()
	}
}

// TestPriorityPolicyFavorsHighPriorityJob: under the "priority" policy a
// high-priority job submitted after a low-priority one wins the slot
// offers, so it finishes its (identical) workload no later than jobs
// competing at default rank would suggest. We assert the high job's maps
// never queue behind the low job's: the low job makes no map progress
// while high-priority maps are pending.
func TestPriorityPolicyFavorsHighPriorityJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 2
	cfg.DedicatedWorkers = 0
	cfg.ReplicateToDedicated = false
	cfg.JobPolicy = "priority"
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gate := make(chan struct{}) // holds every map until both jobs are queued
	mkJob := func(name string, prio int) (Job, map[string]string) {
		job, want := wordCountJob(6, 100, 1)
		job.Name = name
		job.Priority = prio
		base := job.Map
		job.Map = func(in string, emit func(k, v string)) {
			<-gate
			time.Sleep(2 * time.Millisecond)
			base(in, emit)
		}
		return job, want
	}
	lowJob, lowWant := mkJob("low", 0)
	highJob, highWant := mkJob("high", 3)
	hLow, err := c.Submit(lowJob)
	if err != nil {
		t.Fatal(err)
	}
	hHigh, err := c.Submit(highJob)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	gotHigh, profHigh, err := hHigh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, gotHigh, highWant)
	gotLow, profLow, err := hLow.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, gotLow, lowWant)
	if profHigh.Priority != 3 || profLow.Priority != 0 {
		t.Fatalf("profile priorities %d/%d", profHigh.Priority, profLow.Priority)
	}
	// The high job took over from the low job's initial grab (the low job
	// held at most the 2 slots it won before the high submission) and
	// finished first.
	if profHigh.Makespan > profLow.Makespan {
		t.Errorf("high-priority makespan %v above low-priority %v", profHigh.Makespan, profLow.Makespan)
	}
}

// TestWeightedPolicyUsesConfiguredWeights: the weighted policy reaches the
// engine with its per-job weights attached.
func TestWeightedPolicyUsesConfiguredWeights(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JobPolicy = "weighted"
	cfg.JobWeights = map[string]float64{"heavy": 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, name := range []string{"heavy", "light"} {
		job, want := wordCountJob(5, 100, 2)
		job.Name = name
		got, _, err := c.Run(ctx, job)
		if err != nil {
			t.Fatal(err)
		}
		checkResults(t, got, want)
	}
}
