// Package engine is a live, goroutine-based mini-MapReduce runtime with
// churn injection: real user Map and Reduce functions run on a pool of
// worker goroutines, some of which can be suspended and resumed at any
// moment (a volunteer PC reclaimed by its owner), while a small set of
// dedicated workers never churns — MOON's hybrid architecture in process
// form.
//
// Where internal/mapred *models* task execution to reproduce the paper's
// measurements, engine *executes* it: suspended workers stop mid-task and
// stop serving their map outputs, the master detects silence, issues backup
// copies for frozen tasks, optionally keeps a dedicated replica of all
// intermediate data (the paper's hybrid-aware replication), and re-executes
// maps whose outputs became unreachable. The first completed attempt of a
// task wins; results are exactly-once regardless of churn.
//
// The engine is multi-tenant: Submit enqueues any number of concurrent
// jobs on one persistent master, and the shared scheduling core
// (internal/sched — the same queue and policy family the simulator's
// JobTracker arbitrates with) decides which job each idle worker is
// offered. Every job gets its own result set and JobProfile (queue wait,
// makespan, per-job attempt statistics); Run remains the one-shot
// submit-and-wait convenience wrapper.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/transport"
)

// MapFunc processes one input split, emitting intermediate key/value pairs.
type MapFunc func(input string, emit func(key, value string))

// ReduceFunc folds all values of one key into a final value.
type ReduceFunc func(key string, values []string) string

// Job describes one MapReduce computation.
type Job struct {
	Name    string
	Inputs  []string // one split per map task
	Reduces int
	Map     MapFunc
	Reduce  ReduceFunc

	// Priority is the job's strict-priority rank (higher wins every slot
	// offer under the "priority" policy; other policies ignore it).
	Priority int
}

// Config describes the worker pool and the MOON-style policies.
type Config struct {
	// VolatileWorkers can be suspended/resumed; DedicatedWorkers never
	// churn.
	VolatileWorkers  int
	DedicatedWorkers int

	// SuspensionTimeout is how long a worker may be silent before its
	// running tasks are considered frozen and backup copies are issued.
	SuspensionTimeout time.Duration

	// HeartbeatInterval is the worker heartbeat period.
	HeartbeatInterval time.Duration

	// FetchTimeout bounds one intermediate-data fetch.
	FetchTimeout time.Duration

	// ReplicateToDedicated stores a copy of every map output on a
	// dedicated worker's store (MOON's hybrid-aware intermediate
	// replication). Without it, a suspended map worker makes its output
	// unreachable and the map is re-executed.
	ReplicateToDedicated bool

	// JobPolicy arbitrates execution slots between concurrently submitted
	// jobs: "fifo" (the default when empty), "fair", "weighted" or
	// "priority" — resolved through the shared scheduling core, so the
	// spelling vocabulary (and the hard error on a typo) is exactly the
	// simulator's.
	JobPolicy string

	// JobWeights are the per-job-name weights of the "weighted" policy; a
	// job without an entry runs at weight 1.
	JobWeights map[string]float64

	// Transport is the message fabric carrying all master↔worker traffic
	// (join handshakes, heartbeats, assignments, result events,
	// intermediate-data fetches). Nil selects the in-process loopback:
	// ordered, lossless, effectively instant — the default under which the
	// engine behaves exactly as it did with bare channels.
	Transport transport.Transport

	// Faults, when non-nil, wraps Transport with deterministic seeded
	// fault injection (drops, duplicates, delays, connection resets, timed
	// partition windows) — chaos testing for the failure-handling
	// protocol. See transport.FaultConfig.
	Faults *transport.FaultConfig

	// Link tunes the failure-handling protocol: per-operation timeouts,
	// retry budget and backoff, heartbeat-lease clocks, session expiry.
	// Zero fields default — notably HeartbeatInterval and LeaseDuration
	// inherit the engine's HeartbeatInterval and SuspensionTimeout, so the
	// lease clock is the suspension clock unless tuned apart.
	Link transport.LinkConfig

	// Metrics, when non-nil, receives engine-layer instrumentation
	// (attempt launches, backup copies, frozen-task detections, map
	// re-executions, fetch failures, per-job queue-wait and makespan
	// gauges, task-duration histograms) from the master loop. Series are
	// bucketed by wall-clock seconds since the cluster started. The
	// collector is only touched from the master goroutine; Close the
	// cluster (which waits for the master to exit) before snapshotting.
	Metrics *metrics.Collector
}

// DefaultConfig returns a small hybrid pool with MOON-style replication.
func DefaultConfig() Config {
	return Config{
		VolatileWorkers:      4,
		DedicatedWorkers:     1,
		SuspensionTimeout:    50 * time.Millisecond,
		HeartbeatInterval:    10 * time.Millisecond,
		FetchTimeout:         50 * time.Millisecond,
		ReplicateToDedicated: true,
	}
}

// Validate rejects configurations the protocol cannot run: an empty pool,
// non-positive clocks, a heartbeat period that cannot fit inside the
// suspension timeout (the master would declare every worker frozen between
// beats), an unknown policy, or invalid link/fault settings.
func (c Config) Validate() error {
	if c.VolatileWorkers+c.DedicatedWorkers < 1 {
		return errors.New("engine: need at least one worker")
	}
	if c.SuspensionTimeout <= 0 || c.HeartbeatInterval <= 0 || c.FetchTimeout <= 0 {
		return errors.New("engine: timeouts must be positive")
	}
	if c.HeartbeatInterval >= c.SuspensionTimeout {
		return fmt.Errorf("engine: HeartbeatInterval %v must be shorter than SuspensionTimeout %v (a worker must fit several beats into one lease)",
			c.HeartbeatInterval, c.SuspensionTimeout)
	}
	if c.JobPolicy != "" {
		if _, err := sched.PolicyByName[*liveJob](c.JobPolicy); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	if err := c.link().Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	return nil
}

// link resolves the protocol clocks: explicit Link fields win, zero fields
// fall back to sane defaults, and the heartbeat/lease pair inherits the
// engine's own churn clocks so suspension detection keeps one time base.
func (c Config) link() transport.LinkConfig {
	l := c.Link
	d := transport.DefaultLinkConfig()
	if l.ConnectTimeout == 0 {
		l.ConnectTimeout = d.ConnectTimeout
	}
	if l.SendTimeout == 0 {
		l.SendTimeout = d.SendTimeout
	}
	if l.RecvTimeout == 0 {
		l.RecvTimeout = d.RecvTimeout
	}
	if l.HeartbeatInterval == 0 {
		l.HeartbeatInterval = c.HeartbeatInterval
	}
	if l.LeaseDuration == 0 {
		l.LeaseDuration = c.SuspensionTimeout
	}
	if l.MaxRetries == 0 {
		l.MaxRetries = d.MaxRetries
	}
	if l.RetryBackoff == 0 {
		l.RetryBackoff = d.RetryBackoff
	}
	// SessionExpiry 0 means sessions never expire on silence alone.
	return l
}

// policy resolves the configured arbitration policy (validated in New).
func (c Config) policy() sched.Policy[*liveJob] {
	name := c.JobPolicy
	if name == "" {
		name = "fifo"
	}
	p, err := sched.PolicyByName[*liveJob](name)
	if err != nil {
		// validate() already rejected unknown names.
		panic(err)
	}
	if p.Name() == "weighted" && len(c.JobWeights) > 0 {
		return sched.WeightedFair[*liveJob](c.JobWeights)
	}
	return p
}

// Cluster is a live worker pool with one persistent master. Create with
// New, submit concurrent jobs with Submit (or run one with Run), inject
// churn with Suspend/Resume, and Close when done.
type Cluster struct {
	cfg  Config
	link transport.LinkConfig
	// tr is the message fabric every master↔worker exchange crosses.
	tr transport.Transport
	// retries totals protocol retries made outside the master goroutine
	// (worker resends, master write-loop nudges); folded into the metrics
	// collector at shutdown.
	retries atomic.Int64
	// cleared fences finished jobs' store sweeps against stale attempts.
	cleared *clearedSet

	workers []*worker
	closed  chan struct{}
	once    sync.Once

	submits    chan submitReq
	drains     chan chan struct{}
	masterDone chan struct{}
	// master is owned by the master goroutine while it runs; only read
	// after Close (which waits for the goroutine to exit) — tests audit
	// queue accounting through it.
	master *master
}

// New starts the worker goroutine pool and the master loop, wired through
// Config.Transport (loopback by default, optionally wrapped with fault
// injection).
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:        cfg,
		link:       cfg.link(),
		cleared:    newClearedSet(),
		closed:     make(chan struct{}),
		submits:    make(chan submitReq),
		drains:     make(chan chan struct{}),
		masterDone: make(chan struct{}),
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.NewLoopback()
	}
	if cfg.Faults != nil {
		ftr, err := transport.NewFlaky(tr, *cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		tr = ftr
	}
	c.tr = tr
	masterLis, err := tr.Listen(masterAddr)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	total := cfg.VolatileWorkers + cfg.DedicatedWorkers
	for i := 0; i < total; i++ {
		w := newWorker(i, i >= cfg.VolatileWorkers, cfg, c.link, tr, &c.retries, c.cleared)
		lis, err := tr.Listen(WorkerAddr(i))
		if err != nil {
			masterLis.Close()
			return nil, fmt.Errorf("engine: %w", err)
		}
		w.fetchLis = lis
		c.workers = append(c.workers, w)
	}
	for _, w := range c.workers {
		w.peers = c.workers
	}
	for _, w := range c.workers {
		go w.run(c.closed)
	}
	c.master = newMaster(c, masterLis)
	go c.master.run()
	return c, nil
}

// Close stops the master and all workers and waits for the master loop to
// exit, so a Config.Metrics collector is safe to snapshot afterwards.
// Jobs in flight fail; their handles report the closure.
func (c *Cluster) Close() {
	c.once.Do(func() { close(c.closed) })
	<-c.masterDone
}

// Workers returns the total worker count.
func (c *Cluster) Workers() int { return len(c.workers) }

// Suspend pauses a volatile worker: it stops mid-task (at the next
// checkpoint), stops heartbeating, and stops serving intermediate data.
// Suspending a dedicated worker is rejected.
func (c *Cluster) Suspend(worker int) error {
	if worker < 0 || worker >= len(c.workers) {
		return fmt.Errorf("engine: no worker %d", worker)
	}
	w := c.workers[worker]
	if w.dedicated {
		return fmt.Errorf("engine: worker %d is dedicated and cannot be suspended", worker)
	}
	w.gate.close()
	return nil
}

// Resume un-suspends a worker; its paused work continues.
func (c *Cluster) Resume(worker int) error {
	if worker < 0 || worker >= len(c.workers) {
		return fmt.Errorf("engine: no worker %d", worker)
	}
	c.workers[worker].gate.open()
	return nil
}

// Suspended reports whether the worker is currently suspended.
func (c *Cluster) Suspended(worker int) bool {
	return worker >= 0 && worker < len(c.workers) && c.workers[worker].gate.closedNow()
}

// Stats summarizes one job's execution.
type Stats struct {
	MapAttempts    int // map executions launched (>= len(Inputs))
	ReduceAttempts int // reduce executions launched (>= Reduces)
	MapReexecs     int // maps re-executed because their output was lost
	BackupCopies   int // speculative copies issued for frozen tasks
	FetchFailures  int // intermediate fetches that timed out or missed
}

// JobProfile is the live engine's per-job execution profile — the
// wall-clock counterpart of the simulator's mapred.Profile.
type JobProfile struct {
	Job      string
	Priority int
	// QueueWait is submission → first attempt launch: how long the job
	// waited for its first slot under the arbitration policy.
	QueueWait time.Duration
	// Makespan is submission → completion.
	Makespan time.Duration
	// Stats are the job's own attempt statistics.
	Stats Stats
}

// JobState is the lifecycle phase a job status snapshot reports.
type JobState string

// The job lifecycle: queued (submitted, no attempt launched yet), running,
// done (all reduces committed), failed (the cluster closed under it).
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Terminal reports whether the state is final (done or failed).
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// JobStatus is a point-in-time snapshot of one job's progress, published
// by the master at every transition (submit, first launch, each task
// completion, finish/failure). Reads are lock-free, so status polling —
// the service's hottest endpoint — never contends with the master loop.
type JobStatus struct {
	ID       int      `json:"id"`
	Job      string   `json:"job"`
	Priority int      `json:"priority,omitempty"`
	State    JobState `json:"state"`

	MapsDone     int `json:"maps_done"`
	MapsTotal    int `json:"maps_total"`
	ReducesDone  int `json:"reduces_done"`
	ReducesTotal int `json:"reduces_total"`

	Stats Stats `json:"stats"`

	// QueueWait is meaningful once the job launched; Makespan once it
	// finished.
	QueueWait time.Duration `json:"queue_wait_ns"`
	Makespan  time.Duration `json:"makespan_ns"`

	// Err is set when State is failed.
	Err string `json:"error,omitempty"`
}

// JobHandle tracks one submitted job. Wait blocks until the job completes
// (or ctx ends); Done exposes the completion signal for select loops;
// Status returns the latest progress snapshot without blocking.
type JobHandle struct {
	id   int
	name string
	done chan struct{}

	// status is republished by the master at every transition.
	status atomic.Pointer[JobStatus]

	// Written by the master before done closes; read only after.
	results map[string]string
	profile JobProfile
	err     error
}

// Name returns the job's name.
func (h *JobHandle) Name() string { return h.name }

// ID returns the job's cluster-unique numeric ID.
func (h *JobHandle) ID() int { return h.id }

// Status returns the latest progress snapshot. It never blocks: snapshots
// are published by the master and read atomically.
func (h *JobHandle) Status() JobStatus { return *h.status.Load() }

// Done is closed when the job completes or the cluster closes.
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes and returns its reduce outputs and
// profile. If ctx ends first, the job keeps running (there is no
// preemption) and Wait returns ctx.Err(); Wait again to re-await it.
func (h *JobHandle) Wait(ctx context.Context) (map[string]string, JobProfile, error) {
	select {
	case <-ctx.Done():
		return nil, JobProfile{}, ctx.Err()
	case <-h.done:
		return h.results, h.profile, h.err
	}
}

type submitReq struct {
	job   Job
	reply chan submitResp
}

type submitResp struct {
	h   *JobHandle
	err error
}

// Submit enqueues a job on the master. Concurrent jobs share the worker
// pool under Config.JobPolicy; a job whose name collides with a still-live
// job is rejected (map-output stores and results are keyed by job).
func (c *Cluster) Submit(job Job) (*JobHandle, error) {
	if len(job.Inputs) == 0 || job.Map == nil || job.Reduce == nil || job.Reduces < 1 {
		return nil, errors.New("engine: job needs inputs, Map, Reduce and Reduces >= 1")
	}
	req := submitReq{job: job, reply: make(chan submitResp, 1)}
	select {
	case c.submits <- req:
	case <-c.masterDone:
		return nil, errors.New("engine: cluster closed")
	}
	// The send is a rendezvous: the master has the request and always
	// replies (buffered, so it never blocks) before it can exit, so an
	// accepted job's handle is never lost to a concurrent Close.
	resp := <-req.reply
	return resp.h, resp.err
}

// Drain blocks until every submitted job has finished and its last
// in-flight attempt has retired (straggler and backup copies of a decided
// task keep running to their next checkpoint; results are unaffected, but
// accounting and intermediate stores only settle once they report back).
// Use it before reading a metrics snapshot for a completed workload, or
// before asserting on queue accounting. Returns ctx.Err() if ctx ends
// first, or an error if the cluster closes while draining.
func (c *Cluster) Drain(ctx context.Context) error {
	reply := make(chan struct{})
	select {
	case c.drains <- reply:
	case <-c.masterDone:
		return errors.New("engine: cluster closed")
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-reply:
		return nil
	case <-c.masterDone:
		return errors.New("engine: cluster closed")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run executes one job and returns the reduce outputs keyed by reduce
// output key: Submit + Wait. Concurrent Runs (and Submits) on one cluster
// are fine — that is the point of the multi-tenant master.
func (c *Cluster) Run(ctx context.Context, job Job) (map[string]string, Stats, error) {
	h, err := c.Submit(job)
	if err != nil {
		return nil, Stats{}, err
	}
	res, prof, err := h.Wait(ctx)
	return res, prof.Stats, err
}

// partitionOf routes a key to a reduce partition.
func partitionOf(key string, reduces int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reduces))
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys[M ~map[string][]string](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
