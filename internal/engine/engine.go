// Package engine is a live, goroutine-based mini-MapReduce runtime with
// churn injection: real user Map and Reduce functions run on a pool of
// worker goroutines, some of which can be suspended and resumed at any
// moment (a volunteer PC reclaimed by its owner), while a small set of
// dedicated workers never churns — MOON's hybrid architecture in process
// form.
//
// Where internal/mapred *models* task execution to reproduce the paper's
// measurements, engine *executes* it: suspended workers stop mid-task and
// stop serving their map outputs, the master detects silence, issues backup
// copies for frozen tasks, optionally keeps a dedicated replica of all
// intermediate data (the paper's hybrid-aware replication), and re-executes
// maps whose outputs became unreachable. The first completed attempt of a
// task wins; results are exactly-once regardless of churn.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// MapFunc processes one input split, emitting intermediate key/value pairs.
type MapFunc func(input string, emit func(key, value string))

// ReduceFunc folds all values of one key into a final value.
type ReduceFunc func(key string, values []string) string

// Job describes one MapReduce computation.
type Job struct {
	Name    string
	Inputs  []string // one split per map task
	Reduces int
	Map     MapFunc
	Reduce  ReduceFunc
}

// Config describes the worker pool and the MOON-style policies.
type Config struct {
	// VolatileWorkers can be suspended/resumed; DedicatedWorkers never
	// churn.
	VolatileWorkers  int
	DedicatedWorkers int

	// SuspensionTimeout is how long a worker may be silent before its
	// running tasks are considered frozen and backup copies are issued.
	SuspensionTimeout time.Duration

	// HeartbeatInterval is the worker heartbeat period.
	HeartbeatInterval time.Duration

	// FetchTimeout bounds one intermediate-data fetch.
	FetchTimeout time.Duration

	// ReplicateToDedicated stores a copy of every map output on a
	// dedicated worker's store (MOON's hybrid-aware intermediate
	// replication). Without it, a suspended map worker makes its output
	// unreachable and the map is re-executed.
	ReplicateToDedicated bool

	// Metrics, when non-nil, receives engine-layer instrumentation
	// (attempt launches, backup copies, frozen-task detections, map
	// re-executions, fetch failures) from the master loop. Series are
	// bucketed by wall-clock seconds since Run started. The collector is
	// only touched from the master goroutine, so concurrent Suspend/
	// Resume callers never race on it; snapshot it after Run returns.
	Metrics *metrics.Collector
}

// DefaultConfig returns a small hybrid pool with MOON-style replication.
func DefaultConfig() Config {
	return Config{
		VolatileWorkers:      4,
		DedicatedWorkers:     1,
		SuspensionTimeout:    50 * time.Millisecond,
		HeartbeatInterval:    10 * time.Millisecond,
		FetchTimeout:         50 * time.Millisecond,
		ReplicateToDedicated: true,
	}
}

func (c Config) validate() error {
	if c.VolatileWorkers+c.DedicatedWorkers < 1 {
		return errors.New("engine: need at least one worker")
	}
	if c.SuspensionTimeout <= 0 || c.HeartbeatInterval <= 0 || c.FetchTimeout <= 0 {
		return errors.New("engine: timeouts must be positive")
	}
	return nil
}

// Cluster is a live worker pool. Create with New, run jobs with Run,
// inject churn with Suspend/Resume, and Close when done.
type Cluster struct {
	cfg     Config
	workers []*worker
	closed  chan struct{}
	once    sync.Once
}

// New starts the worker goroutine pool.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, closed: make(chan struct{})}
	total := cfg.VolatileWorkers + cfg.DedicatedWorkers
	for i := 0; i < total; i++ {
		w := newWorker(i, i >= cfg.VolatileWorkers, cfg)
		c.workers = append(c.workers, w)
		go w.run(c.closed)
	}
	return c, nil
}

// Close stops all workers. Jobs in flight fail.
func (c *Cluster) Close() {
	c.once.Do(func() { close(c.closed) })
}

// Workers returns the total worker count.
func (c *Cluster) Workers() int { return len(c.workers) }

// Suspend pauses a volatile worker: it stops mid-task (at the next
// checkpoint), stops heartbeating, and stops serving intermediate data.
// Suspending a dedicated worker is rejected.
func (c *Cluster) Suspend(worker int) error {
	if worker < 0 || worker >= len(c.workers) {
		return fmt.Errorf("engine: no worker %d", worker)
	}
	w := c.workers[worker]
	if w.dedicated {
		return fmt.Errorf("engine: worker %d is dedicated and cannot be suspended", worker)
	}
	w.gate.close()
	return nil
}

// Resume un-suspends a worker; its paused work continues.
func (c *Cluster) Resume(worker int) error {
	if worker < 0 || worker >= len(c.workers) {
		return fmt.Errorf("engine: no worker %d", worker)
	}
	c.workers[worker].gate.open()
	return nil
}

// Suspended reports whether the worker is currently suspended.
func (c *Cluster) Suspended(worker int) bool {
	return worker >= 0 && worker < len(c.workers) && c.workers[worker].gate.closedNow()
}

// Stats summarizes one Run.
type Stats struct {
	MapAttempts    int // map executions launched (>= len(Inputs))
	ReduceAttempts int // reduce executions launched (>= Reduces)
	MapReexecs     int // maps re-executed because their output was lost
	BackupCopies   int // speculative copies issued for frozen tasks
	FetchFailures  int // intermediate fetches that timed out or missed
}

// Run executes the job and returns the reduce outputs keyed by reduce
// output key. It is safe to run jobs sequentially on one cluster; one Run
// at a time.
func (c *Cluster) Run(ctx context.Context, job Job) (map[string]string, Stats, error) {
	if len(job.Inputs) == 0 || job.Map == nil || job.Reduce == nil || job.Reduces < 1 {
		return nil, Stats{}, errors.New("engine: job needs inputs, Map, Reduce and Reduces >= 1")
	}
	m := newMaster(c, job)
	return m.run(ctx)
}

// partitionOf routes a key to a reduce partition.
func partitionOf(key string, reduces int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reduces))
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys[M ~map[string][]string](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
