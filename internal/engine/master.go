package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/transport"
)

// liveJob is the master's record of one submitted job — the engine's
// implementation of the shared scheduling core's Job view, so the same
// policies that arbitrate the simulator's TaskTracker slots arbitrate the
// live worker pool.
type liveJob struct {
	// id scopes the job's intermediate-store keys; unique for the
	// cluster's lifetime.
	id   int
	spec Job

	maps    []*taskState
	reduces []*taskState

	results map[string]string
	stats   Stats

	// attempts is the shared live-attempt accounting: Live counts the
	// job's outstanding attempts (maintained at launch/retire), Inactive
	// the subset on silent workers (refreshed before each scheduling
	// pass). Fair-share ranks jobs by the active difference.
	attempts sched.Attempts

	submittedAt time.Time
	launchedAt  time.Time
	launched    bool
	finished    bool
	cleared     bool

	handle *JobHandle

	// Per-job gauges, scoped by job name (nil without a collector).
	mQueueWait *metrics.Gauge
	mMakespan  *metrics.Gauge
}

func (j *liveJob) Name() string        { return j.spec.Name }
func (j *liveJob) Done() bool          { return j.finished }
func (j *liveJob) ActiveAttempts() int { return j.attempts.Active() }
func (j *liveJob) Priority() int       { return j.spec.Priority }

func (j *liveJob) allMapsDone() bool {
	for _, t := range j.maps {
		if !t.done {
			return false
		}
	}
	return true
}

func (j *liveJob) allReducesDone() bool {
	for _, t := range j.reduces {
		if !t.done {
			return false
		}
	}
	return true
}

// masterEvent is one worker event resolved against master state.
type masterEvent struct {
	kind    eventKind
	job     *liveJob
	taskID  int // map or reduce index
	attempt int
	worker  int
	holders []int             // mapDone: workers holding the output
	output  map[string]string // reduceDone: final key→value pairs
	missing []int             // reduceStuck: map IDs with no reachable output
}

type eventKind int

const (
	evMapDone eventKind = iota
	evReduceDone
	evReduceStuck
)

// attemptRef tracks one outstanding attempt, pinned to the session it was
// assigned under: if that session dies, the attempt's result can never be
// accepted and the ref is force-retired.
type attemptRef struct {
	attempt int
	worker  int
	session uint64
	started time.Time
}

// taskState is the master's record of one map or reduce task.
type taskState struct {
	id          int
	isReduce    bool
	done        bool
	winAttempt  int
	holders     []int
	outstanding []attemptRef
	nextAttempt int
}

// session is the master's side of one worker epoch: the connection, the
// lease clock, the unacked assignments awaiting resend, and the dedup
// state that commits each result event at most once. Only the master
// goroutine touches its fields; the read/write loops own just the conn,
// outbox and done channel.
type session struct {
	worker int
	id     uint64
	conn   transport.Conn
	outbox chan any
	done   chan struct{}

	alive    bool
	lastBeat time.Time
	// leaseLapsed latches the lease-expiry metric per silence episode (a
	// fresh heartbeat re-arms it).
	leaseLapsed bool

	seenEvents   map[uint64]bool
	nextAssignID uint64
	pending      map[uint64]*pendingAssign
}

// pendingAssign is one assignment awaiting its ack.
type pendingAssign struct {
	msg     msgAssign
	sentAt  time.Time
	resends int
}

// inMsg is one message (or connection-death notice) routed into the
// master loop. sess is nil only for the hello of a brand-new connection.
type inMsg struct {
	sess *session
	conn transport.Conn
	m    any
}

// connDead is the in-band notice that a session's connection failed.
type connDead struct{}

// master coordinates the cluster's whole job stream: it owns the shared
// scheduling queue, assigns idle workers to jobs in policy order, detects
// frozen tasks, and completes job handles. It is the only goroutine that
// touches scheduling state, session state and the metrics collector.
type master struct {
	c     *Cluster
	queue *sched.Queue[*liveJob]

	link transport.LinkConfig
	lis  transport.Listener
	msgs chan inMsg

	sessions    map[int]*session
	nextSession uint64
	jobsByID    map[int]*liveJob

	nextJobID int

	// drainWaiters are Drain callers blocked until every job finished and
	// every attempt retired.
	drainWaiters []chan struct{}

	// Instrument handles (nil without a collector); series buckets are
	// wall-clock seconds since the master started.
	start         time.Time
	mMapAttempts  *metrics.Counter
	mRedAttempts  *metrics.Counter
	mBackups      *metrics.Counter
	mReexecs      *metrics.Counter
	mFetchFails   *metrics.Counter
	mFrozenChecks *metrics.Counter
	mRunningJobs  *metrics.Series
	mMapDur       *metrics.Histogram
	mReduceDur    *metrics.Histogram
	mLeaseExp     *metrics.Counter
	mSessResets   *metrics.Counter
	mDupDiscards  *metrics.Counter
	mRetries      *metrics.Counter
}

// elapsed returns wall-clock seconds since the master started, the
// engine's series time base.
func (m *master) elapsed() float64 { return time.Since(m.start).Seconds() }

func newMaster(c *Cluster, lis transport.Listener) *master {
	m := &master{
		c:        c,
		link:     c.link,
		lis:      lis,
		msgs:     make(chan inMsg, 4*len(c.workers)+16),
		sessions: make(map[int]*session),
		jobsByID: make(map[int]*liveJob),
		start:    time.Now(),
	}
	m.queue = sched.NewQueue(c.cfg.policy(), nil)
	if mc := c.cfg.Metrics; mc != nil {
		m.mMapAttempts = mc.TimedCounter(metrics.LayerEngine, "map_attempts", "")
		m.mRedAttempts = mc.TimedCounter(metrics.LayerEngine, "reduce_attempts", "")
		m.mBackups = mc.TimedCounter(metrics.LayerEngine, "backup_copies", "")
		m.mReexecs = mc.TimedCounter(metrics.LayerEngine, "map_reexecs", "")
		m.mFetchFails = mc.TimedCounter(metrics.LayerEngine, "fetch_failures", "")
		m.mFrozenChecks = mc.Counter(metrics.LayerEngine, "frozen_tasks_detected", "")
		m.mRunningJobs = mc.SampleSeries(metrics.LayerEngine, "running_jobs", "")
		m.mMapDur = mc.Histogram(metrics.LayerEngine, "task_duration_seconds", "map")
		m.mReduceDur = mc.Histogram(metrics.LayerEngine, "task_duration_seconds", "reduce")
		m.mLeaseExp = mc.TimedCounter(metrics.LayerTransport, "lease_expiries", "")
		m.mSessResets = mc.TimedCounter(metrics.LayerTransport, "session_resets", "")
		m.mDupDiscards = mc.TimedCounter(metrics.LayerTransport, "duplicate_result_discards", "")
		m.mRetries = mc.TimedCounter(metrics.LayerTransport, "retries", "")
	}
	return m
}

// run is the persistent master loop: it serves submissions, worker
// messages and the maintenance tick until the cluster closes, then fails
// every unfinished handle.
func (m *master) run() {
	defer close(m.c.masterDone)
	defer m.shutdown()
	go m.acceptLoop()
	check := time.NewTicker(m.c.cfg.SuspensionTimeout / 2)
	defer check.Stop()

	for {
		select {
		case <-m.c.closed:
			m.failUnfinished(errors.New("engine: cluster closed"))
			return
		case req := <-m.c.submits:
			req.reply <- m.submit(req.job)
			m.schedule()
		case reply := <-m.c.drains:
			m.drainWaiters = append(m.drainWaiters, reply)
			m.notifyDrained()
		case im := <-m.msgs:
			m.handleMsg(im)
			m.schedule()
			m.notifyDrained()
		case <-check.C:
			m.expireSessions()
			m.resendPending()
			m.checkFrozen()
			m.schedule()
			m.notifyDrained()
		}
	}
}

// acceptLoop admits inbound worker connections; each one's hello is read
// off-loop so a stalled handshake cannot block new arrivals.
func (m *master) acceptLoop() {
	for {
		conn, err := m.lis.Accept(50 * time.Millisecond)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				if isClosed(m.c.closed) {
					return
				}
				continue
			}
			return // listener closed
		}
		go m.greet(conn)
	}
}

func (m *master) greet(conn transport.Conn) {
	msg, err := conn.Recv(m.link.ConnectTimeout)
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := msg.(msgHello)
	if !ok {
		conn.Close()
		return
	}
	m.report(inMsg{conn: conn, m: hello})
}

// report routes one message into the master loop, giving up at closure.
func (m *master) report(im inMsg) {
	select {
	case m.msgs <- im:
	case <-m.c.closed:
		if im.conn != nil {
			im.conn.Close()
		}
	}
}

// handleMsg integrates one routed message.
func (m *master) handleMsg(im inMsg) {
	switch msg := im.m.(type) {
	case msgHello:
		// A hello is a handshake on a fresh connection; one arriving over
		// an established session is a fault-injected duplicate — ignore it.
		if im.sess == nil && im.conn != nil {
			m.admit(im.conn, msg.worker)
		}
	case msgHeartbeat:
		if s := im.sess; s != nil && s.alive && msg.session == s.id {
			s.lastBeat = time.Now()
			s.leaseLapsed = false
		}
	case msgAck:
		if s := im.sess; s != nil && s.alive {
			delete(s.pending, msg.id)
		}
	case msgEvent:
		m.handleEvent(im.sess, msg)
	case connDead:
		if s := im.sess; s != nil && s.alive {
			m.killSession(s, true)
		}
	}
}

// admit opens a new session for a joining worker, evicting any previous
// one (a rejoin after a connection loss must not leave a zombie epoch able
// to commit results).
func (m *master) admit(conn transport.Conn, workerID int) {
	if workerID < 0 || workerID >= len(m.c.workers) {
		conn.Close()
		return
	}
	if old := m.sessions[workerID]; old != nil && old.alive {
		m.killSession(old, true)
	}
	m.nextSession++
	s := &session{
		worker:     workerID,
		id:         m.nextSession,
		conn:       conn,
		outbox:     make(chan any, 128),
		done:       make(chan struct{}),
		alive:      true,
		lastBeat:   time.Now(),
		seenEvents: make(map[uint64]bool),
		pending:    make(map[uint64]*pendingAssign),
	}
	m.sessions[workerID] = s
	go m.writeLoop(s)
	go m.readLoop(s)
	s.outbox <- msgWelcome{session: s.id}
}

// killSession ends one worker epoch: close the connection, retire every
// attempt assigned under it (their results can no longer be accepted), and
// count the reset unless this is cluster shutdown.
func (m *master) killSession(s *session, countReset bool) {
	if !s.alive {
		return
	}
	s.alive = false
	close(s.done)
	s.conn.Close()
	if m.sessions[s.worker] == s {
		delete(m.sessions, s.worker)
	}
	if countReset {
		m.mSessResets.IncAt(m.elapsed())
	}
	m.forceRetire(s)
}

// forceRetire drops every outstanding attempt pinned to a dead session
// from the accounting, so abandoned work is rescheduled instead of
// wedging Drain.
func (m *master) forceRetire(s *session) {
	clear(s.pending)
	for _, j := range m.queue.Jobs() {
		if j.cleared {
			continue
		}
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				kept := t.outstanding[:0]
				for _, ref := range t.outstanding {
					if ref.worker == s.worker && ref.session == s.id {
						j.attempts.Live--
						continue
					}
					kept = append(kept, ref)
				}
				t.outstanding = kept
			}
		}
		if j.finished && j.attempts.Live == 0 {
			m.clearJob(j)
		}
	}
}

// writeLoop drains one session's outbox onto its connection, retrying
// transient send timeouts; a fatal error reports the connection dead.
func (m *master) writeLoop(s *session) {
	for {
		select {
		case <-s.done:
			return
		case msg := <-s.outbox:
			err := s.conn.Send(msg, m.link.SendTimeout)
			for r := 0; errors.Is(err, transport.ErrTimeout) && r < m.link.MaxRetries; r++ {
				m.c.retries.Add(1)
				err = s.conn.Send(msg, m.link.SendTimeout)
			}
			if err != nil && !errors.Is(err, transport.ErrTimeout) {
				m.report(inMsg{sess: s, m: connDead{}})
				return
			}
		}
	}
}

// readLoop pumps one session's inbound messages into the master loop.
func (m *master) readLoop(s *session) {
	for {
		msg, err := s.conn.Recv(time.Second)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				if isClosed(s.done) || isClosed(m.c.closed) {
					return
				}
				continue
			}
			m.report(inMsg{sess: s, m: connDead{}})
			return
		}
		m.report(inMsg{sess: s, m: msg})
	}
}

// enqueue places one message on a session's outbox; a full outbox means
// the link is hopeless (the worker stopped draining long ago) and kills
// the session.
func (m *master) enqueue(s *session, msg any) {
	select {
	case s.outbox <- msg:
	default:
		m.killSession(s, true)
	}
}

// expireSessions ages every lease on the maintenance tick: a silent
// volatile worker first lapses its lease (counted once per silence
// episode — this is what gates scheduling and triggers the existing
// suspension handling), and past SessionExpiry its whole session is
// evicted so a zombie epoch cannot linger forever.
func (m *master) expireSessions() {
	now := time.Now()
	for _, s := range m.sessions {
		if !s.alive || m.c.workers[s.worker].dedicated {
			continue
		}
		silence := now.Sub(s.lastBeat)
		if silence >= m.link.LeaseDuration && !s.leaseLapsed {
			s.leaseLapsed = true
			m.mLeaseExp.IncAt(m.elapsed())
		}
		if m.link.SessionExpiry > 0 && silence >= m.link.SessionExpiry {
			m.enqueue(s, msgExpired{}) // best-effort eviction notice
			m.killSession(s, true)
		}
	}
}

// resendPending re-sends unacked assignments with linear backoff and
// retires the ones that exhausted their retries — the worker plainly is
// not receiving, so the attempt is abandoned and rescheduled elsewhere.
func (m *master) resendPending() {
	now := time.Now()
	for _, s := range m.sessions {
		if !s.alive {
			continue
		}
		for id, p := range s.pending {
			wait := m.link.SendTimeout + time.Duration(p.resends)*m.link.RetryBackoff
			if now.Sub(p.sentAt) < wait {
				continue
			}
			if p.resends >= m.link.MaxRetries {
				delete(s.pending, id)
				m.retireLost(p)
				continue
			}
			p.resends++
			p.sentAt = now
			m.mRetries.IncAt(m.elapsed())
			m.enqueue(s, p.msg)
			if !s.alive {
				break // enqueue killed the session; pending is gone
			}
		}
	}
}

// retireLost retires the attempt of an assignment the worker never
// acknowledged.
func (m *master) retireLost(p *pendingAssign) {
	a := p.msg.task
	j := m.jobsByID[a.jobID]
	if j == nil || j.cleared {
		return
	}
	t := j.maps
	if a.isReduce {
		t = j.reduces
	}
	m.retire(j, t[a.taskID], a.attempt)
}

// handleEvent commits one worker result event — exactly once, and only
// from the worker's current living session. Everything else (an expired
// epoch's leftovers, a resend of an already-committed event, a
// fault-injected duplicate) is discarded and counted.
func (m *master) handleEvent(s *session, me msgEvent) {
	if s == nil || !s.alive || me.session != s.id {
		m.mDupDiscards.IncAt(m.elapsed())
		return
	}
	if s.seenEvents[me.id] {
		m.enqueue(s, msgAck{id: me.id}) // the previous ack was lost
		m.mDupDiscards.IncAt(m.elapsed())
		return
	}
	s.seenEvents[me.id] = true
	m.enqueue(s, msgAck{id: me.id})
	if !s.alive {
		return // the ack found the outbox wedged; session died
	}
	j := m.jobsByID[me.ev.jobID]
	if j == nil || j.cleared {
		return // a stale attempt of an already-swept job
	}
	m.handle(masterEvent{
		kind:    me.ev.kind,
		job:     j,
		taskID:  me.ev.taskID,
		attempt: me.ev.attempt,
		worker:  me.ev.worker,
		holders: me.ev.holders,
		output:  me.ev.output,
		missing: me.ev.missing,
	})
}

// notifyDrained releases Drain callers once every job has finished and
// retired its last attempt.
func (m *master) notifyDrained() {
	if len(m.drainWaiters) == 0 {
		return
	}
	for _, j := range m.queue.Jobs() {
		if !j.finished || j.attempts.Live != 0 {
			return
		}
	}
	for _, reply := range m.drainWaiters {
		close(reply)
	}
	m.drainWaiters = nil
}

// submit enqueues one job (duplicate live names rejected by the shared
// queue) and returns its handle.
func (m *master) submit(job Job) submitResp {
	j := &liveJob{
		id:          m.nextJobID,
		spec:        job,
		results:     make(map[string]string),
		submittedAt: time.Now(),
		handle:      &JobHandle{id: m.nextJobID, name: job.Name, done: make(chan struct{})},
	}
	for i := range job.Inputs {
		j.maps = append(j.maps, &taskState{id: i})
	}
	for i := 0; i < job.Reduces; i++ {
		j.reduces = append(j.reduces, &taskState{id: i, isReduce: true})
	}
	if err := m.queue.Submit(j); err != nil {
		return submitResp{err: fmt.Errorf("engine: %w", err)}
	}
	m.nextJobID++
	m.jobsByID[j.id] = j
	if mc := m.c.cfg.Metrics; mc != nil {
		j.mQueueWait = mc.Gauge(metrics.LayerEngine, "queue_wait_seconds", job.Name)
		j.mMakespan = mc.Gauge(metrics.LayerEngine, "makespan_seconds", job.Name)
	}
	m.mRunningJobs.Observe(m.elapsed(), float64(m.queue.Running()))
	m.publishStatus(j)
	return submitResp{h: j.handle}
}

// publishStatus freezes the job's current progress into its handle for
// lock-free Status reads. Call on every visible transition, and always
// before clearJob releases the task slices.
func (m *master) publishStatus(j *liveJob) {
	st := &JobStatus{
		ID: j.id, Job: j.spec.Name, Priority: j.spec.Priority,
		MapsTotal: len(j.maps), ReducesTotal: len(j.reduces),
		Stats: j.stats,
	}
	for _, t := range j.maps {
		if t.done {
			st.MapsDone++
		}
	}
	for _, t := range j.reduces {
		if t.done {
			st.ReducesDone++
		}
	}
	switch {
	case j.finished && j.handle.err != nil:
		st.State = JobFailed
		st.Err = j.handle.err.Error()
	case j.finished:
		st.State = JobDone
	case j.launched:
		st.State = JobRunning
	default:
		st.State = JobQueued
	}
	if j.launched {
		st.QueueWait = j.launchedAt.Sub(j.submittedAt)
	}
	if j.finished {
		st.Makespan = j.handle.profile.Makespan
	}
	j.handle.status.Store(st)
}

// failUnfinished completes every unfinished handle with err (cluster
// closure).
func (m *master) failUnfinished(err error) {
	for _, j := range m.queue.Jobs() {
		if j.finished {
			continue
		}
		j.finished = true
		j.handle.err = err
		m.publishStatus(j)
		close(j.handle.done)
	}
}

// shutdown tears the fabric down after the master loop exits: close the
// listener and every session, then fold the transport's own counters into
// the collector (safe here — the loop no longer touches it, and Close
// waits for this before returning).
func (m *master) shutdown() {
	m.lis.Close()
	for _, s := range m.sessions {
		if !s.alive {
			continue
		}
		s.alive = false
		close(s.done)
		s.conn.Close()
	}
	if mc := m.c.cfg.Metrics; mc != nil {
		st := m.c.tr.Stats()
		mc.Counter(metrics.LayerTransport, "dials", "").Add(float64(st.Dials))
		mc.Counter(metrics.LayerTransport, "sends", "").Add(float64(st.Sends))
		mc.Counter(metrics.LayerTransport, "drops", "").Add(float64(st.Drops))
		mc.Counter(metrics.LayerTransport, "dup_deliveries", "").Add(float64(st.Dups))
		mc.Counter(metrics.LayerTransport, "delayed_deliveries", "").Add(float64(st.Delays))
		mc.Counter(metrics.LayerTransport, "conn_resets", "").Add(float64(st.Resets))
		m.mRetries.Add(float64(m.c.retries.Load()))
	}
}

// live reports whether a worker holds a living session with a fresh lease
// (dedicated workers never churn, so their session alone is trusted).
func (m *master) live(worker int) bool {
	s := m.sessions[worker]
	if s == nil || !s.alive {
		return false
	}
	if m.c.workers[worker].dedicated {
		return true
	}
	return time.Since(s.lastBeat) < m.link.LeaseDuration
}

// refreshInactive recounts, per running job, the outstanding attempts
// sitting on silent workers — the shared accounting's Inactive side, so
// fair-share ranks by *active* attempts only (a churn-stalled job is not
// deprioritized for the backups that would unfreeze it). Live is
// maintained incrementally at launch/retire.
func (m *master) refreshInactive() {
	// Finished jobs are recounted too: their outstanding lists drain as
	// late events arrive, and the count must drain with them so the
	// accounting ends balanced.
	for _, j := range m.queue.Jobs() {
		inactive := 0
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				for _, ref := range t.outstanding {
					if !m.live(ref.worker) {
						inactive++
					}
				}
			}
		}
		j.attempts.Inactive = inactive
	}
}

// idleWorkers returns live workers with no outstanding attempt of any
// job — finished jobs included: a straggler copy of an already-decided
// task still occupies its worker until it retires, and booking new work
// behind it would invisibly stall that work for the straggler's whole
// remaining runtime. Dedicated workers sort last so original copies
// prefer the volatile pool (dedicated capacity is reserved for backups,
// the MOON hybrid policy).
func (m *master) idleWorkers() []int {
	busy := make(map[int]bool)
	for _, j := range m.queue.Jobs() {
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				for _, ref := range t.outstanding {
					busy[ref.worker] = true
				}
			}
		}
	}
	var vol, ded []int
	for i := range m.c.workers {
		if busy[i] || !m.live(i) {
			continue
		}
		if m.c.workers[i].dedicated {
			ded = append(ded, i)
		} else {
			vol = append(vol, i)
		}
	}
	return append(vol, ded...)
}

// schedule offers every idle worker to the jobs in policy order: pending
// maps first (any job), then pending reduces of jobs whose map phase is
// complete. The order is recomputed per offer — a launch changes the live
// counts fair-share ranks by, exactly like the simulator's per-offer
// reordering.
func (m *master) schedule() {
	m.refreshInactive()
	for _, w := range m.idleWorkers() {
		if !m.offer(w) {
			return // nothing pending anywhere; later workers see the same
		}
	}
}

// offer hands one idle worker to the first job in policy order with an
// eligible task — that job's pending maps first, its reduces once every
// map is done. Policy rank dominates across phases: a high-ranked job's
// reduces are not starved by a lower-ranked job's map backlog (FIFO
// serializes whole jobs, strict priority really owns every offer). A job
// whose maps are all in flight but not done cannot use the slot and
// passes it down the order, so arbitration stays work-conserving.
func (m *master) offer(w int) bool {
	for _, j := range m.queue.Order() {
		for _, t := range j.maps {
			if !t.done && len(t.outstanding) == 0 {
				m.launchMap(j, t, w)
				return true
			}
		}
		if !j.allMapsDone() {
			continue
		}
		for _, t := range j.reduces {
			if !t.done && len(t.outstanding) == 0 {
				m.launchReduce(j, t, w)
				return true
			}
		}
	}
	return false
}

// checkFrozen issues backup copies for tasks whose every outstanding
// attempt sits on a silent worker, across all running jobs in policy
// order (frozen tasks of a high-ranked job win the spare workers first).
func (m *master) checkFrozen() {
	m.refreshInactive()
	for _, j := range m.queue.Order() {
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				if t.done || len(t.outstanding) == 0 {
					continue
				}
				anyLive := false
				for _, ref := range t.outstanding {
					if m.live(ref.worker) {
						anyLive = true
						break
					}
				}
				if anyLive {
					continue
				}
				// Frozen: place a backup, preferring dedicated workers.
				idle := m.idleWorkers()
				if len(idle) == 0 {
					return
				}
				target := idle[len(idle)-1] // dedicated sort last in idleWorkers
				j.stats.BackupCopies++
				m.mBackups.IncAt(m.elapsed())
				m.mFrozenChecks.Inc()
				if t.isReduce {
					m.launchReduce(j, t, target)
				} else {
					m.launchMap(j, t, target)
				}
			}
		}
	}
}

// noteLaunch updates the job's accounting for one new attempt; the first
// launch of the whole job ends its queue wait.
func (m *master) noteLaunch(j *liveJob) {
	j.attempts.Live++
	if !j.launched {
		j.launched = true
		j.launchedAt = time.Now()
		j.mQueueWait.Set(j.launchedAt.Sub(j.submittedAt).Seconds())
	}
	m.publishStatus(j)
}

// launchMap assigns a map attempt to a worker's current session.
func (m *master) launchMap(j *liveJob, t *taskState, workerID int) {
	s := m.sessions[workerID] // non-nil: the caller picked a live worker
	attempt := t.nextAttempt
	t.nextAttempt++
	t.outstanding = append(t.outstanding, attemptRef{attempt: attempt, worker: workerID, session: s.id, started: time.Now()})
	m.noteLaunch(j)
	j.stats.MapAttempts++
	m.mMapAttempts.IncAt(m.elapsed())
	replicateTo := -1
	if m.c.cfg.ReplicateToDedicated {
		for _, w := range m.c.workers {
			if w.dedicated {
				replicateTo = w.id
				break
			}
		}
	}
	m.assign(s, assignment{
		jobID:       j.id,
		taskID:      t.id,
		attempt:     attempt,
		reduces:     j.spec.Reduces,
		input:       j.spec.Inputs[t.id],
		mapFn:       j.spec.Map,
		replicateTo: replicateTo,
	})
}

// launchReduce assigns a reduce attempt with a snapshot of the job's
// winning map attempts and their holders.
func (m *master) launchReduce(j *liveJob, t *taskState, workerID int) {
	s := m.sessions[workerID]
	attempt := t.nextAttempt
	t.nextAttempt++
	t.outstanding = append(t.outstanding, attemptRef{attempt: attempt, worker: workerID, session: s.id, started: time.Now()})
	m.noteLaunch(j)
	j.stats.ReduceAttempts++
	m.mRedAttempts.IncAt(m.elapsed())

	sources := make([]reduceSource, 0, len(j.maps))
	for _, mt := range j.maps {
		sources = append(sources, reduceSource{mapID: mt.id, attempt: mt.winAttempt, holders: append([]int(nil), mt.holders...)})
	}
	m.assign(s, assignment{
		jobID:       j.id,
		taskID:      t.id,
		attempt:     attempt,
		isReduce:    true,
		reduces:     j.spec.Reduces,
		reduceFn:    j.spec.Reduce,
		sources:     sources,
		replicateTo: -1,
	})
}

// assign registers one assignment as pending and sends it.
func (m *master) assign(s *session, a assignment) {
	s.nextAssignID++
	msg := msgAssign{id: s.nextAssignID, session: s.id, task: a}
	s.pending[msg.id] = &pendingAssign{msg: msg, sentAt: time.Now()}
	m.enqueue(s, msg)
}

// handle integrates one worker event.
func (m *master) handle(ev masterEvent) {
	j := ev.job
	if j.cleared {
		// handleEvent filters cleared jobs, and clearing waits for the
		// last accounted attempt — but a cleared job's task slices are
		// released, so never index into them.
		return
	}
	switch ev.kind {
	case evMapDone:
		t := j.maps[ev.taskID]
		ref, ok := m.retire(j, t, ev.attempt)
		if t.done || j.finished {
			return // a sibling already won, or the job completed elsewhere
		}
		t.done = true
		t.winAttempt = ev.attempt
		t.holders = ev.holders
		if ok {
			m.mMapDur.Observe(time.Since(ref.started).Seconds())
		}
		m.publishStatus(j)
	case evReduceDone:
		t := j.reduces[ev.taskID]
		ref, ok := m.retire(j, t, ev.attempt)
		if t.done || j.finished {
			return
		}
		t.done = true
		for k, v := range ev.output {
			j.results[k] = v
		}
		if ok {
			m.mReduceDur.Observe(time.Since(ref.started).Seconds())
		}
		if j.allReducesDone() {
			m.finishJob(j)
		} else {
			m.publishStatus(j)
		}
	case evReduceStuck:
		t := j.reduces[ev.taskID]
		m.retire(j, t, ev.attempt)
		j.stats.FetchFailures += len(ev.missing)
		m.mFetchFails.AddAt(m.elapsed(), float64(len(ev.missing)))
		if t.done || j.finished {
			return
		}
		// Re-execute the unreachable maps, then let scheduling relaunch
		// the reduce.
		for _, mapID := range ev.missing {
			mt := j.maps[mapID]
			if mt.done {
				mt.done = false
				mt.holders = nil
				j.stats.MapReexecs++
				m.mReexecs.IncAt(m.elapsed())
			}
		}
		m.publishStatus(j)
	}
}

// retire removes one outstanding attempt and balances the job's live
// count; once a finished job's last attempt drains, its intermediate
// stores are released.
func (m *master) retire(j *liveJob, t *taskState, attempt int) (attemptRef, bool) {
	ref, ok := t.removeOutstanding(attempt)
	if ok {
		j.attempts.Live--
		if j.finished && j.attempts.Live == 0 {
			m.clearJob(j)
		}
	}
	return ref, ok
}

// finishJob completes a job: profile, per-job gauges, handle, and — once
// no attempt is still in flight — intermediate-store cleanup.
func (m *master) finishJob(j *liveJob) {
	j.finished = true
	now := time.Now()
	prof := JobProfile{
		Job:       j.spec.Name,
		Priority:  j.spec.Priority,
		QueueWait: j.launchedAt.Sub(j.submittedAt),
		Makespan:  now.Sub(j.submittedAt),
		Stats:     j.stats,
	}
	j.mQueueWait.Set(prof.QueueWait.Seconds())
	j.mMakespan.Set(prof.Makespan.Seconds())
	m.mRunningJobs.Observe(m.elapsed(), float64(m.queue.Running()))
	h := j.handle
	h.results = j.results
	h.profile = prof
	m.publishStatus(j)
	close(h.done)
	if j.attempts.Live == 0 {
		m.clearJob(j)
	}
}

// clearJob drops the job's intermediate data from every worker store and
// releases its heavy master-side state: the results map lives on the
// handle, and with no attempt in flight (Live == 0) the task records are
// dead. The cluster is long-lived, so without this every finished job
// would pin its task states and results for the cluster's lifetime. The
// liveJob shell itself stays queued — Jobs() remains the audit surface
// and duplicate-name checks skip terminal jobs anyway. Marking the job in
// the cleared set first fences stale attempts still executing: their
// late putPartition writes are refused, so the sweep is final.
func (m *master) clearJob(j *liveJob) {
	if j.cleared {
		return
	}
	j.cleared = true
	delete(m.jobsByID, j.id)
	m.c.cleared.mark(j.id)
	for _, w := range m.c.workers {
		w.clearJob(j.id)
	}
	j.results = nil
	j.maps = nil
	j.reduces = nil
	// The spec's Inputs corpus and user closures are the heaviest state of
	// all; only Name (duplicate-name scans) and Priority (profile) stay.
	j.spec.Inputs = nil
	j.spec.Map = nil
	j.spec.Reduce = nil
}

func (t *taskState) removeOutstanding(attempt int) (attemptRef, bool) {
	for i, ref := range t.outstanding {
		if ref.attempt == attempt {
			t.outstanding = append(t.outstanding[:i], t.outstanding[i+1:]...)
			return ref, true
		}
	}
	return attemptRef{}, false
}
