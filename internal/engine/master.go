package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// liveJob is the master's record of one submitted job — the engine's
// implementation of the shared scheduling core's Job view, so the same
// policies that arbitrate the simulator's TaskTracker slots arbitrate the
// live worker pool.
type liveJob struct {
	// id scopes the job's intermediate-store keys; unique for the
	// cluster's lifetime.
	id   int
	spec Job

	maps    []*taskState
	reduces []*taskState

	results map[string]string
	stats   Stats

	// attempts is the shared live-attempt accounting: Live counts the
	// job's outstanding attempts (maintained at launch/retire), Inactive
	// the subset on silent workers (refreshed before each scheduling
	// pass). Fair-share ranks jobs by the active difference.
	attempts sched.Attempts

	submittedAt time.Time
	launchedAt  time.Time
	launched    bool
	finished    bool
	cleared     bool

	handle *JobHandle

	// Per-job gauges, scoped by job name (nil without a collector).
	mQueueWait *metrics.Gauge
	mMakespan  *metrics.Gauge
}

func (j *liveJob) Name() string        { return j.spec.Name }
func (j *liveJob) Done() bool          { return j.finished }
func (j *liveJob) ActiveAttempts() int { return j.attempts.Active() }
func (j *liveJob) Priority() int       { return j.spec.Priority }

func (j *liveJob) allMapsDone() bool {
	for _, t := range j.maps {
		if !t.done {
			return false
		}
	}
	return true
}

func (j *liveJob) allReducesDone() bool {
	for _, t := range j.reduces {
		if !t.done {
			return false
		}
	}
	return true
}

// masterEvent is anything a worker reports back.
type masterEvent struct {
	kind    eventKind
	job     *liveJob
	taskID  int // map or reduce index
	attempt int
	worker  int
	holders []int             // mapDone: workers holding the output
	output  map[string]string // reduceDone: final key→value pairs
	missing []int             // reduceStuck: map IDs with no reachable output
}

type eventKind int

const (
	evMapDone eventKind = iota
	evReduceDone
	evReduceStuck
)

// attemptRef tracks one outstanding attempt.
type attemptRef struct {
	attempt int
	worker  int
	started time.Time
}

// taskState is the master's record of one map or reduce task.
type taskState struct {
	id          int
	isReduce    bool
	done        bool
	winAttempt  int
	holders     []int
	outstanding []attemptRef
	nextAttempt int
}

// master coordinates the cluster's whole job stream: it owns the shared
// scheduling queue, assigns idle workers to jobs in policy order, detects
// frozen tasks, and completes job handles. It is the only goroutine that
// touches scheduling state and the metrics collector.
type master struct {
	c     *Cluster
	queue *sched.Queue[*liveJob]

	events chan masterEvent
	hb     chan int

	lastBeat  []time.Time
	nextJobID int

	// drainWaiters are Drain callers blocked until every job finished and
	// every attempt retired.
	drainWaiters []chan struct{}

	// Instrument handles (nil without a collector); series buckets are
	// wall-clock seconds since the master started.
	start         time.Time
	mMapAttempts  *metrics.Counter
	mRedAttempts  *metrics.Counter
	mBackups      *metrics.Counter
	mReexecs      *metrics.Counter
	mFetchFails   *metrics.Counter
	mFrozenChecks *metrics.Counter
	mRunningJobs  *metrics.Series
	mMapDur       *metrics.Histogram
	mReduceDur    *metrics.Histogram
}

// elapsed returns wall-clock seconds since the master started, the
// engine's series time base.
func (m *master) elapsed() float64 { return time.Since(m.start).Seconds() }

func newMaster(c *Cluster) *master {
	m := &master{
		c:        c,
		events:   make(chan masterEvent, 4*len(c.workers)+16),
		hb:       make(chan int, 4*len(c.workers)+16),
		lastBeat: make([]time.Time, len(c.workers)),
		start:    time.Now(),
	}
	m.queue = sched.NewQueue(c.cfg.policy(), nil)
	if mc := c.cfg.Metrics; mc != nil {
		m.mMapAttempts = mc.TimedCounter(metrics.LayerEngine, "map_attempts", "")
		m.mRedAttempts = mc.TimedCounter(metrics.LayerEngine, "reduce_attempts", "")
		m.mBackups = mc.TimedCounter(metrics.LayerEngine, "backup_copies", "")
		m.mReexecs = mc.TimedCounter(metrics.LayerEngine, "map_reexecs", "")
		m.mFetchFails = mc.TimedCounter(metrics.LayerEngine, "fetch_failures", "")
		m.mFrozenChecks = mc.Counter(metrics.LayerEngine, "frozen_tasks_detected", "")
		m.mRunningJobs = mc.SampleSeries(metrics.LayerEngine, "running_jobs", "")
		m.mMapDur = mc.Histogram(metrics.LayerEngine, "task_duration_seconds", "map")
		m.mReduceDur = mc.Histogram(metrics.LayerEngine, "task_duration_seconds", "reduce")
	}
	return m
}

// run is the persistent master loop: it serves submissions, worker events
// and heartbeats until the cluster closes, then fails every unfinished
// handle.
func (m *master) run() {
	defer close(m.c.masterDone)
	now := time.Now()
	for i, w := range m.c.workers {
		m.lastBeat[i] = now
		w.attachHeartbeat(m.hb)
	}
	check := time.NewTicker(m.c.cfg.SuspensionTimeout / 2)
	defer check.Stop()

	for {
		select {
		case <-m.c.closed:
			m.failUnfinished(errors.New("engine: cluster closed"))
			return
		case req := <-m.c.submits:
			req.reply <- m.submit(req.job)
			m.schedule()
		case reply := <-m.c.drains:
			m.drainWaiters = append(m.drainWaiters, reply)
			m.notifyDrained()
		case id := <-m.hb:
			m.lastBeat[id] = time.Now()
		case ev := <-m.events:
			m.handle(ev)
			m.schedule()
			m.notifyDrained()
		case <-check.C:
			m.checkFrozen()
			m.schedule()
		}
	}
}

// notifyDrained releases Drain callers once every job has finished and
// retired its last attempt.
func (m *master) notifyDrained() {
	if len(m.drainWaiters) == 0 {
		return
	}
	for _, j := range m.queue.Jobs() {
		if !j.finished || j.attempts.Live != 0 {
			return
		}
	}
	for _, reply := range m.drainWaiters {
		close(reply)
	}
	m.drainWaiters = nil
}

// submit enqueues one job (duplicate live names rejected by the shared
// queue) and returns its handle.
func (m *master) submit(job Job) submitResp {
	j := &liveJob{
		id:          m.nextJobID,
		spec:        job,
		results:     make(map[string]string),
		submittedAt: time.Now(),
		handle:      &JobHandle{name: job.Name, done: make(chan struct{})},
	}
	for i := range job.Inputs {
		j.maps = append(j.maps, &taskState{id: i})
	}
	for i := 0; i < job.Reduces; i++ {
		j.reduces = append(j.reduces, &taskState{id: i, isReduce: true})
	}
	if err := m.queue.Submit(j); err != nil {
		return submitResp{err: fmt.Errorf("engine: %w", err)}
	}
	m.nextJobID++
	if mc := m.c.cfg.Metrics; mc != nil {
		j.mQueueWait = mc.Gauge(metrics.LayerEngine, "queue_wait_seconds", job.Name)
		j.mMakespan = mc.Gauge(metrics.LayerEngine, "makespan_seconds", job.Name)
	}
	m.mRunningJobs.Observe(m.elapsed(), float64(m.queue.Running()))
	return submitResp{h: j.handle}
}

// failUnfinished completes every unfinished handle with err (cluster
// closure).
func (m *master) failUnfinished(err error) {
	for _, j := range m.queue.Jobs() {
		if j.finished {
			continue
		}
		j.finished = true
		j.handle.err = err
		close(j.handle.done)
	}
}

// live reports whether a worker heartbeated recently (dedicated workers are
// always trusted).
func (m *master) live(worker int) bool {
	if m.c.workers[worker].dedicated {
		return true
	}
	return time.Since(m.lastBeat[worker]) < m.c.cfg.SuspensionTimeout
}

// refreshInactive recounts, per running job, the outstanding attempts
// sitting on silent workers — the shared accounting's Inactive side, so
// fair-share ranks by *active* attempts only (a churn-stalled job is not
// deprioritized for the backups that would unfreeze it). Live is
// maintained incrementally at launch/retire.
func (m *master) refreshInactive() {
	// Finished jobs are recounted too: their outstanding lists drain as
	// late events arrive, and the count must drain with them so the
	// accounting ends balanced.
	for _, j := range m.queue.Jobs() {
		inactive := 0
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				for _, ref := range t.outstanding {
					if !m.live(ref.worker) {
						inactive++
					}
				}
			}
		}
		j.attempts.Inactive = inactive
	}
}

// idleWorkers returns live workers with no outstanding attempt of any
// job — finished jobs included: a straggler copy of an already-decided
// task still occupies its worker until it retires, and booking new work
// behind it would invisibly stall that work for the straggler's whole
// remaining runtime. Dedicated workers sort last so original copies
// prefer the volatile pool (dedicated capacity is reserved for backups,
// the MOON hybrid policy).
func (m *master) idleWorkers() []int {
	busy := make(map[int]bool)
	for _, j := range m.queue.Jobs() {
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				for _, ref := range t.outstanding {
					busy[ref.worker] = true
				}
			}
		}
	}
	var vol, ded []int
	for i := range m.c.workers {
		if busy[i] || !m.live(i) {
			continue
		}
		if m.c.workers[i].dedicated {
			ded = append(ded, i)
		} else {
			vol = append(vol, i)
		}
	}
	return append(vol, ded...)
}

// schedule offers every idle worker to the jobs in policy order: pending
// maps first (any job), then pending reduces of jobs whose map phase is
// complete. The order is recomputed per offer — a launch changes the live
// counts fair-share ranks by, exactly like the simulator's per-offer
// reordering.
func (m *master) schedule() {
	m.refreshInactive()
	for _, w := range m.idleWorkers() {
		if !m.offer(w) {
			return // nothing pending anywhere; later workers see the same
		}
	}
}

// offer hands one idle worker to the first job in policy order with an
// eligible task — that job's pending maps first, its reduces once every
// map is done. Policy rank dominates across phases: a high-ranked job's
// reduces are not starved by a lower-ranked job's map backlog (FIFO
// serializes whole jobs, strict priority really owns every offer). A job
// whose maps are all in flight but not done cannot use the slot and
// passes it down the order, so arbitration stays work-conserving.
func (m *master) offer(w int) bool {
	for _, j := range m.queue.Order() {
		for _, t := range j.maps {
			if !t.done && len(t.outstanding) == 0 {
				m.launchMap(j, t, w)
				return true
			}
		}
		if !j.allMapsDone() {
			continue
		}
		for _, t := range j.reduces {
			if !t.done && len(t.outstanding) == 0 {
				m.launchReduce(j, t, w)
				return true
			}
		}
	}
	return false
}

// checkFrozen issues backup copies for tasks whose every outstanding
// attempt sits on a silent worker, across all running jobs in policy
// order (frozen tasks of a high-ranked job win the spare workers first).
func (m *master) checkFrozen() {
	m.refreshInactive()
	for _, j := range m.queue.Order() {
		for _, tasks := range [2][]*taskState{j.maps, j.reduces} {
			for _, t := range tasks {
				if t.done || len(t.outstanding) == 0 {
					continue
				}
				anyLive := false
				for _, ref := range t.outstanding {
					if m.live(ref.worker) {
						anyLive = true
						break
					}
				}
				if anyLive {
					continue
				}
				// Frozen: place a backup, preferring dedicated workers.
				idle := m.idleWorkers()
				if len(idle) == 0 {
					return
				}
				target := idle[len(idle)-1] // dedicated sort last in idleWorkers
				j.stats.BackupCopies++
				m.mBackups.IncAt(m.elapsed())
				m.mFrozenChecks.Inc()
				if t.isReduce {
					m.launchReduce(j, t, target)
				} else {
					m.launchMap(j, t, target)
				}
			}
		}
	}
}

// noteLaunch updates the job's accounting for one new attempt; the first
// launch of the whole job ends its queue wait.
func (m *master) noteLaunch(j *liveJob) {
	j.attempts.Live++
	if !j.launched {
		j.launched = true
		j.launchedAt = time.Now()
		j.mQueueWait.Set(j.launchedAt.Sub(j.submittedAt).Seconds())
	}
}

// launchMap sends a map attempt to a worker.
func (m *master) launchMap(j *liveJob, t *taskState, workerID int) {
	attempt := t.nextAttempt
	t.nextAttempt++
	t.outstanding = append(t.outstanding, attemptRef{attempt: attempt, worker: workerID, started: time.Now()})
	m.noteLaunch(j)
	j.stats.MapAttempts++
	m.mMapAttempts.IncAt(m.elapsed())
	input := j.spec.Inputs[t.id]
	job := j.spec
	cfg := m.c.cfg
	var dedicatedStore *worker
	if cfg.ReplicateToDedicated {
		for _, w := range m.c.workers {
			if w.dedicated {
				dedicatedStore = w
				break
			}
		}
	}
	events := m.events
	closed := m.c.closed
	lj := j
	jobID := j.id
	mapID := t.id
	m.c.workers[workerID].tasks <- task{run: func(w *worker) {
		parts := make([]map[string][]string, job.Reduces)
		for p := range parts {
			parts[p] = make(map[string][]string)
		}
		job.Map(input, func(key, value string) {
			w.gate.wait() // suspension checkpoint at emission granularity
			p := partitionOf(key, job.Reduces)
			parts[p][key] = append(parts[p][key], value)
		})
		w.gate.wait()
		holders := []int{w.id}
		for p, data := range parts {
			w.putPartition(jobID, mapID, attempt, p, data)
			if dedicatedStore != nil && dedicatedStore != w {
				dedicatedStore.putPartition(jobID, mapID, attempt, p, data)
			}
		}
		if dedicatedStore != nil && dedicatedStore.id != w.id {
			holders = append(holders, dedicatedStore.id)
		}
		select {
		case events <- masterEvent{kind: evMapDone, job: lj, taskID: mapID, attempt: attempt, worker: w.id, holders: holders}:
		case <-closed:
		}
	}}
}

// launchReduce sends a reduce attempt with a snapshot of the job's winning
// map attempts and their holders.
func (m *master) launchReduce(j *liveJob, t *taskState, workerID int) {
	attempt := t.nextAttempt
	t.nextAttempt++
	t.outstanding = append(t.outstanding, attemptRef{attempt: attempt, worker: workerID, started: time.Now()})
	m.noteLaunch(j)
	j.stats.ReduceAttempts++
	m.mRedAttempts.IncAt(m.elapsed())

	type source struct {
		mapID, attempt int
		holders        []int
	}
	plan := make([]source, 0, len(j.maps))
	for _, mt := range j.maps {
		plan = append(plan, source{mapID: mt.id, attempt: mt.winAttempt, holders: append([]int(nil), mt.holders...)})
	}
	job := j.spec
	cfg := m.c.cfg
	events := m.events
	closed := m.c.closed
	workers := m.c.workers
	lj := j
	jobID := j.id
	partition := t.id
	reduceID := t.id
	m.c.workers[workerID].tasks <- task{run: func(w *worker) {
		merged := make(map[string][]string)
		var missing []int
		for _, src := range plan {
			w.gate.wait()
			var data map[string][]string
			got := false
			for _, h := range src.holders {
				if h == w.id {
					w.storeMu.Lock()
					d, ok := w.store[storeKey{jobID, src.mapID, src.attempt, partition}]
					w.storeMu.Unlock()
					if ok {
						data, got = d, true
						break
					}
					continue
				}
				reply := make(chan fetchResp, 1)
				select {
				case workers[h].fetches <- fetchReq{job: jobID, mapID: src.mapID, attempt: src.attempt, partition: partition, reply: reply}:
				default:
					continue // holder's queue jammed; try next
				}
				select {
				case resp := <-reply:
					if resp.ok {
						data, got = resp.data, true
					}
				case <-time.After(cfg.FetchTimeout):
				}
				if got {
					break
				}
			}
			if !got {
				missing = append(missing, src.mapID)
				continue
			}
			for k, vs := range data {
				merged[k] = append(merged[k], vs...)
			}
		}
		if len(missing) > 0 {
			select {
			case events <- masterEvent{kind: evReduceStuck, job: lj, taskID: reduceID, attempt: attempt, worker: w.id, missing: missing}:
			case <-closed:
			}
			return
		}
		out := make(map[string]string, len(merged))
		for _, k := range sortedKeys(merged) {
			w.gate.wait()
			out[k] = job.Reduce(k, merged[k])
		}
		select {
		case events <- masterEvent{kind: evReduceDone, job: lj, taskID: reduceID, attempt: attempt, worker: w.id, output: out}:
		case <-closed:
		}
	}}
}

// handle integrates one worker event.
func (m *master) handle(ev masterEvent) {
	j := ev.job
	if j.cleared {
		// Every launched attempt reports exactly once and clearing waits
		// for the last retire, so this cannot fire — but a cleared job's
		// task slices are released, so never index into them.
		return
	}
	switch ev.kind {
	case evMapDone:
		t := j.maps[ev.taskID]
		ref, ok := m.retire(j, t, ev.attempt)
		if t.done || j.finished {
			return // a sibling already won, or the job completed elsewhere
		}
		t.done = true
		t.winAttempt = ev.attempt
		t.holders = ev.holders
		if ok {
			m.mMapDur.Observe(time.Since(ref.started).Seconds())
		}
	case evReduceDone:
		t := j.reduces[ev.taskID]
		ref, ok := m.retire(j, t, ev.attempt)
		if t.done || j.finished {
			return
		}
		t.done = true
		for k, v := range ev.output {
			j.results[k] = v
		}
		if ok {
			m.mReduceDur.Observe(time.Since(ref.started).Seconds())
		}
		if j.allReducesDone() {
			m.finishJob(j)
		}
	case evReduceStuck:
		t := j.reduces[ev.taskID]
		m.retire(j, t, ev.attempt)
		j.stats.FetchFailures += len(ev.missing)
		m.mFetchFails.AddAt(m.elapsed(), float64(len(ev.missing)))
		if t.done || j.finished {
			return
		}
		// Re-execute the unreachable maps, then let scheduling relaunch
		// the reduce.
		for _, mapID := range ev.missing {
			mt := j.maps[mapID]
			if mt.done {
				mt.done = false
				mt.holders = nil
				j.stats.MapReexecs++
				m.mReexecs.IncAt(m.elapsed())
			}
		}
	}
}

// retire removes one outstanding attempt and balances the job's live
// count; once a finished job's last attempt drains, its intermediate
// stores are released.
func (m *master) retire(j *liveJob, t *taskState, attempt int) (attemptRef, bool) {
	ref, ok := t.removeOutstanding(attempt)
	if ok {
		j.attempts.Live--
		if j.finished && j.attempts.Live == 0 {
			m.clearJob(j)
		}
	}
	return ref, ok
}

// finishJob completes a job: profile, per-job gauges, handle, and — once
// no attempt is still in flight — intermediate-store cleanup.
func (m *master) finishJob(j *liveJob) {
	j.finished = true
	now := time.Now()
	prof := JobProfile{
		Job:       j.spec.Name,
		Priority:  j.spec.Priority,
		QueueWait: j.launchedAt.Sub(j.submittedAt),
		Makespan:  now.Sub(j.submittedAt),
		Stats:     j.stats,
	}
	j.mQueueWait.Set(prof.QueueWait.Seconds())
	j.mMakespan.Set(prof.Makespan.Seconds())
	m.mRunningJobs.Observe(m.elapsed(), float64(m.queue.Running()))
	h := j.handle
	h.results = j.results
	h.profile = prof
	close(h.done)
	if j.attempts.Live == 0 {
		m.clearJob(j)
	}
}

// clearJob drops the job's intermediate data from every worker store and
// releases its heavy master-side state: the results map lives on the
// handle, and with no attempt in flight (Live == 0) the task records are
// dead. The cluster is long-lived, so without this every finished job
// would pin its task states and results for the cluster's lifetime. The
// liveJob shell itself stays queued — Jobs() remains the audit surface
// and duplicate-name checks skip terminal jobs anyway.
func (m *master) clearJob(j *liveJob) {
	if j.cleared {
		return
	}
	j.cleared = true
	for _, w := range m.c.workers {
		w.clearJob(j.id)
	}
	j.results = nil
	j.maps = nil
	j.reduces = nil
	// The spec's Inputs corpus and user closures are the heaviest state of
	// all; only Name (duplicate-name scans) and Priority (profile) stay.
	j.spec.Inputs = nil
	j.spec.Map = nil
	j.spec.Reduce = nil
}

func (t *taskState) removeOutstanding(attempt int) (attemptRef, bool) {
	for i, ref := range t.outstanding {
		if ref.attempt == attempt {
			t.outstanding = append(t.outstanding[:i], t.outstanding[i+1:]...)
			return ref, true
		}
	}
	return attemptRef{}, false
}
