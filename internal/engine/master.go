package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
)

// masterEvent is anything a worker reports back.
type masterEvent struct {
	kind    eventKind
	taskID  int // map or reduce index
	attempt int
	worker  int
	holders []int             // mapDone: workers holding the output
	output  map[string]string // reduceDone: final key→value pairs
	missing []int             // reduceStuck: map IDs with no reachable output
}

type eventKind int

const (
	evMapDone eventKind = iota
	evReduceDone
	evReduceStuck
)

// attemptRef tracks one outstanding attempt.
type attemptRef struct {
	attempt int
	worker  int
}

// taskState is the master's record of one map or reduce task.
type taskState struct {
	id          int
	isReduce    bool
	done        bool
	winAttempt  int
	holders     []int
	outstanding []attemptRef
	nextAttempt int
}

// master coordinates one job run.
type master struct {
	c   *Cluster
	job Job

	maps    []*taskState
	reduces []*taskState

	events chan masterEvent
	hb     chan int

	lastBeat []time.Time

	results map[string]string
	stats   Stats

	// Instrument handles (nil without a collector); series buckets are
	// wall-clock seconds since run start.
	start         time.Time
	mMapAttempts  *metrics.Counter
	mRedAttempts  *metrics.Counter
	mBackups      *metrics.Counter
	mReexecs      *metrics.Counter
	mFetchFails   *metrics.Counter
	mFrozenChecks *metrics.Counter
}

// elapsed returns wall-clock seconds since the run started, the engine's
// series time base.
func (m *master) elapsed() float64 { return time.Since(m.start).Seconds() }

func newMaster(c *Cluster, job Job) *master {
	m := &master{
		c:        c,
		job:      job,
		events:   make(chan masterEvent, 4*len(c.workers)+16),
		hb:       make(chan int, 4*len(c.workers)+16),
		lastBeat: make([]time.Time, len(c.workers)),
		results:  make(map[string]string),
	}
	for i := range job.Inputs {
		m.maps = append(m.maps, &taskState{id: i})
	}
	for i := 0; i < job.Reduces; i++ {
		m.reduces = append(m.reduces, &taskState{id: i, isReduce: true})
	}
	if mc := c.cfg.Metrics; mc != nil {
		m.mMapAttempts = mc.TimedCounter(metrics.LayerEngine, "map_attempts", "")
		m.mRedAttempts = mc.TimedCounter(metrics.LayerEngine, "reduce_attempts", "")
		m.mBackups = mc.TimedCounter(metrics.LayerEngine, "backup_copies", "")
		m.mReexecs = mc.TimedCounter(metrics.LayerEngine, "map_reexecs", "")
		m.mFetchFails = mc.TimedCounter(metrics.LayerEngine, "fetch_failures", "")
		m.mFrozenChecks = mc.Counter(metrics.LayerEngine, "frozen_tasks_detected", "")
	}
	return m
}

func (m *master) run(ctx context.Context) (map[string]string, Stats, error) {
	now := time.Now()
	m.start = now
	for i, w := range m.c.workers {
		m.lastBeat[i] = now
		w.clearStore()
		w.attachHeartbeat(m.hb)
	}
	defer func() {
		for _, w := range m.c.workers {
			w.attachHeartbeat(nil)
		}
	}()

	check := time.NewTicker(m.c.cfg.SuspensionTimeout / 2)
	defer check.Stop()

	m.schedule()
	for {
		select {
		case <-ctx.Done():
			return nil, m.stats, ctx.Err()
		case <-m.c.closed:
			return nil, m.stats, fmt.Errorf("engine: cluster closed")
		case id := <-m.hb:
			m.lastBeat[id] = time.Now()
		case ev := <-m.events:
			m.handle(ev)
			if m.finished() {
				return m.results, m.stats, nil
			}
			m.schedule()
		case <-check.C:
			m.checkFrozen()
			m.schedule()
		}
	}
}

func (m *master) finished() bool {
	for _, t := range m.reduces {
		if !t.done {
			return false
		}
	}
	return true
}

// live reports whether a worker heartbeated recently (dedicated workers are
// always trusted).
func (m *master) live(worker int) bool {
	if m.c.workers[worker].dedicated {
		return true
	}
	return time.Since(m.lastBeat[worker]) < m.c.cfg.SuspensionTimeout
}

// idleWorkers returns live workers with no outstanding attempt, dedicated
// last so original copies prefer the volatile pool (dedicated capacity is
// reserved for backups, the MOON hybrid policy).
func (m *master) idleWorkers() []int {
	busy := make(map[int]bool)
	for _, t := range append(append([]*taskState(nil), m.maps...), m.reduces...) {
		for _, ref := range t.outstanding {
			busy[ref.worker] = true
		}
	}
	var vol, ded []int
	for i := range m.c.workers {
		if busy[i] || !m.live(i) {
			continue
		}
		if m.c.workers[i].dedicated {
			ded = append(ded, i)
		} else {
			vol = append(vol, i)
		}
	}
	return append(vol, ded...)
}

// schedule assigns pending tasks to idle workers: maps first, then (once
// all maps are done) reduces.
func (m *master) schedule() {
	idle := m.idleWorkers()
	next := 0
	take := func() (int, bool) {
		if next >= len(idle) {
			return 0, false
		}
		w := idle[next]
		next++
		return w, true
	}
	for _, t := range m.maps {
		if t.done || len(t.outstanding) > 0 {
			continue
		}
		w, ok := take()
		if !ok {
			return
		}
		m.launchMap(t, w)
	}
	if !m.allMapsDone() {
		return
	}
	for _, t := range m.reduces {
		if t.done || len(t.outstanding) > 0 {
			continue
		}
		w, ok := take()
		if !ok {
			return
		}
		m.launchReduce(t, w)
	}
}

func (m *master) allMapsDone() bool {
	for _, t := range m.maps {
		if !t.done {
			return false
		}
	}
	return true
}

// checkFrozen issues backup copies for tasks whose every outstanding
// attempt sits on a silent worker.
func (m *master) checkFrozen() {
	for _, t := range append(append([]*taskState(nil), m.maps...), m.reduces...) {
		if t.done || len(t.outstanding) == 0 {
			continue
		}
		anyLive := false
		for _, ref := range t.outstanding {
			if m.live(ref.worker) {
				anyLive = true
				break
			}
		}
		if anyLive {
			continue
		}
		// Frozen: place a backup, preferring dedicated workers.
		idle := m.idleWorkers()
		if len(idle) == 0 {
			continue
		}
		target := idle[len(idle)-1] // dedicated sort last in idleWorkers
		m.stats.BackupCopies++
		m.mBackups.IncAt(m.elapsed())
		m.mFrozenChecks.Inc()
		if t.isReduce {
			m.launchReduce(t, target)
		} else {
			m.launchMap(t, target)
		}
	}
}

// launchMap sends a map attempt to a worker.
func (m *master) launchMap(t *taskState, workerID int) {
	attempt := t.nextAttempt
	t.nextAttempt++
	t.outstanding = append(t.outstanding, attemptRef{attempt: attempt, worker: workerID})
	m.stats.MapAttempts++
	m.mMapAttempts.IncAt(m.elapsed())
	input := m.job.Inputs[t.id]
	job := m.job
	cfg := m.c.cfg
	var dedicatedStore *worker
	if cfg.ReplicateToDedicated {
		for _, w := range m.c.workers {
			if w.dedicated {
				dedicatedStore = w
				break
			}
		}
	}
	events := m.events
	mapID := t.id
	m.c.workers[workerID].tasks <- task{run: func(w *worker) {
		parts := make([]map[string][]string, job.Reduces)
		for p := range parts {
			parts[p] = make(map[string][]string)
		}
		job.Map(input, func(key, value string) {
			w.gate.wait() // suspension checkpoint at emission granularity
			p := partitionOf(key, job.Reduces)
			parts[p][key] = append(parts[p][key], value)
		})
		w.gate.wait()
		holders := []int{w.id}
		for p, data := range parts {
			w.putPartition(mapID, attempt, p, data)
			if dedicatedStore != nil && dedicatedStore != w {
				dedicatedStore.putPartition(mapID, attempt, p, data)
			}
		}
		if dedicatedStore != nil && dedicatedStore.id != w.id {
			holders = append(holders, dedicatedStore.id)
		}
		events <- masterEvent{kind: evMapDone, taskID: mapID, attempt: attempt, worker: w.id, holders: holders}
	}}
}

// launchReduce sends a reduce attempt with a snapshot of the winning map
// attempts and their holders.
func (m *master) launchReduce(t *taskState, workerID int) {
	attempt := t.nextAttempt
	t.nextAttempt++
	t.outstanding = append(t.outstanding, attemptRef{attempt: attempt, worker: workerID})
	m.stats.ReduceAttempts++
	m.mRedAttempts.IncAt(m.elapsed())

	type source struct {
		mapID, attempt int
		holders        []int
	}
	plan := make([]source, 0, len(m.maps))
	for _, mt := range m.maps {
		plan = append(plan, source{mapID: mt.id, attempt: mt.winAttempt, holders: append([]int(nil), mt.holders...)})
	}
	job := m.job
	cfg := m.c.cfg
	events := m.events
	workers := m.c.workers
	partition := t.id
	reduceID := t.id
	m.c.workers[workerID].tasks <- task{run: func(w *worker) {
		merged := make(map[string][]string)
		var missing []int
		for _, src := range plan {
			w.gate.wait()
			var data map[string][]string
			got := false
			for _, h := range src.holders {
				if h == w.id {
					w.storeMu.Lock()
					d, ok := w.store[storeKey{src.mapID, src.attempt, partition}]
					w.storeMu.Unlock()
					if ok {
						data, got = d, true
						break
					}
					continue
				}
				reply := make(chan fetchResp, 1)
				select {
				case workers[h].fetches <- fetchReq{mapID: src.mapID, attempt: src.attempt, partition: partition, reply: reply}:
				default:
					continue // holder's queue jammed; try next
				}
				select {
				case resp := <-reply:
					if resp.ok {
						data, got = resp.data, true
					}
				case <-time.After(cfg.FetchTimeout):
				}
				if got {
					break
				}
			}
			if !got {
				missing = append(missing, src.mapID)
				continue
			}
			for k, vs := range data {
				merged[k] = append(merged[k], vs...)
			}
		}
		if len(missing) > 0 {
			events <- masterEvent{kind: evReduceStuck, taskID: reduceID, attempt: attempt, worker: w.id, missing: missing}
			return
		}
		out := make(map[string]string, len(merged))
		for _, k := range sortedKeys(merged) {
			w.gate.wait()
			out[k] = job.Reduce(k, merged[k])
		}
		events <- masterEvent{kind: evReduceDone, taskID: reduceID, attempt: attempt, worker: w.id, output: out}
	}}
}

// handle integrates one worker event.
func (m *master) handle(ev masterEvent) {
	switch ev.kind {
	case evMapDone:
		t := m.maps[ev.taskID]
		t.removeOutstanding(ev.attempt)
		if t.done {
			return // a sibling already won
		}
		t.done = true
		t.winAttempt = ev.attempt
		t.holders = ev.holders
	case evReduceDone:
		t := m.reduces[ev.taskID]
		t.removeOutstanding(ev.attempt)
		if t.done {
			return
		}
		t.done = true
		for k, v := range ev.output {
			m.results[k] = v
		}
	case evReduceStuck:
		t := m.reduces[ev.taskID]
		t.removeOutstanding(ev.attempt)
		m.stats.FetchFailures += len(ev.missing)
		m.mFetchFails.AddAt(m.elapsed(), float64(len(ev.missing)))
		if t.done {
			return
		}
		// Re-execute the unreachable maps, then let scheduling relaunch
		// the reduce.
		for _, mapID := range ev.missing {
			mt := m.maps[mapID]
			if mt.done {
				mt.done = false
				mt.holders = nil
				m.stats.MapReexecs++
				m.mReexecs.IncAt(m.elapsed())
			}
		}
	}
}

func (t *taskState) removeOutstanding(attempt int) {
	for i, ref := range t.outstanding {
		if ref.attempt == attempt {
			t.outstanding = append(t.outstanding[:i], t.outstanding[i+1:]...)
			return
		}
	}
}
