package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// transportCounter digs one transport-layer counter out of a snapshot.
func transportCounter(t *testing.T, snap metrics.Snapshot, name string) float64 {
	t.Helper()
	for _, p := range snap.Counters {
		if p.Layer == string(metrics.LayerTransport) && p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("transport counter %s missing from snapshot", name)
	return 0
}

// chaosConfig is the shared chaos fixture: a hybrid pool on a flaky fabric
// with drops, duplicates, delays, rare connection resets and one timed
// partition window, plus a session-expiry clock short enough for a test
// suspension to trip it.
func chaosConfig(seed uint64, col *metrics.Collector) Config {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 4
	cfg.DedicatedWorkers = 2
	cfg.JobPolicy = "fair"
	cfg.Metrics = col
	cfg.Link.SessionExpiry = 150 * time.Millisecond
	cfg.Faults = &transport.FaultConfig{
		Seed:      seed,
		DropRate:  0.03,
		DupRate:   0.03,
		DelayRate: 0.03,
		Delay:     time.Millisecond,
		ResetRate: 0.002,
		Partitions: []transport.Partition{
			{Start: 100 * time.Millisecond, Duration: 80 * time.Millisecond, Addrs: []string{WorkerAddr(1)}},
		},
	}
	return cfg
}

// runChaosJobs submits n concurrent jobs and suspends worker 0 long enough
// to lapse its lease and expire its session, returning each job's results.
func runChaosJobs(t *testing.T, c *Cluster, n int) []map[string]string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type sub struct {
		h    *JobHandle
		want map[string]string
	}
	var subs []sub
	for i := 0; i < n; i++ {
		job, want := wordCountJob(6+i, 200, 2)
		job.Name = fmt.Sprintf("chaos-job-%d", i)
		h, err := c.Submit(job)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		subs = append(subs, sub{h: h, want: want})
	}

	// Hold worker 0 silent past SessionExpiry: its lease must lapse and
	// its session must be evicted and re-established.
	if err := c.Suspend(0); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		_ = c.Resume(0)
	}()

	results := make([]map[string]string, n)
	for i, s := range subs {
		got, _, err := s.h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		checkResults(t, got, s.want)
		results[i] = got
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return results
}

// TestConfigValidate pins the configuration gate: the default is valid,
// and each protocol-breaking setting — a heartbeat that cannot fit inside
// the suspension timeout, malformed link clocks, out-of-range fault rates
// — is rejected before any goroutine starts.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"no workers", func(c *Config) { c.VolatileWorkers, c.DedicatedWorkers = 0, 0 }},
		{"heartbeat at suspension timeout", func(c *Config) { c.HeartbeatInterval = c.SuspensionTimeout }},
		{"heartbeat past suspension timeout", func(c *Config) { c.HeartbeatInterval = 2 * c.SuspensionTimeout }},
		{"unknown policy", func(c *Config) { c.JobPolicy = "lottery" }},
		{"link heartbeat at lease", func(c *Config) {
			c.Link.HeartbeatInterval = 30 * time.Millisecond
			c.Link.LeaseDuration = 30 * time.Millisecond
		}},
		{"session expiry below lease", func(c *Config) { c.Link.SessionExpiry = 10 * time.Millisecond }},
		{"negative link retries", func(c *Config) { c.Link.MaxRetries = -1 }},
		{"drop rate above one", func(c *Config) { c.Faults = &transport.FaultConfig{DropRate: 2} }},
		{"delay rate without delay", func(c *Config) { c.Faults = &transport.FaultConfig{DelayRate: 0.5} }},
		{"zero-duration partition", func(c *Config) {
			c.Faults = &transport.FaultConfig{Partitions: []transport.Partition{{Start: time.Second}}}
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.edit(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted it", tc.name)
		}
	}
}

// TestChaosExactResultsUnderFaults is the failure-handling acceptance
// test (run with -race in CI): concurrent jobs over a fabric injecting
// drops, duplicates, delays, connection resets, a partition window and a
// session-expiring suspension still produce exact results, leak no
// attempt accounting or intermediate stores, and the protocol metrics
// show the lease and session machinery actually engaged.
func TestChaosExactResultsUnderFaults(t *testing.T) {
	col := metrics.New(1)
	c, err := New(chaosConfig(42, col))
	if err != nil {
		t.Fatal(err)
	}
	runChaosJobs(t, c, 3)
	c.Close()

	for _, j := range c.master.queue.Jobs() {
		if !j.finished {
			t.Errorf("job %s not finished", j.Name())
		}
		if !j.attempts.Balanced() {
			t.Errorf("job %s leaked attempts %+v", j.Name(), j.attempts)
		}
	}
	for _, w := range c.workers {
		w.storeMu.Lock()
		n := len(w.store)
		w.storeMu.Unlock()
		if n != 0 {
			t.Errorf("worker %d retains %d store entries after drain", w.id, n)
		}
	}

	snap := col.Snapshot()
	if v := transportCounter(t, snap, "lease_expiries"); v < 1 {
		t.Errorf("lease_expiries %v, want >= 1 (worker 0 was silent past its lease)", v)
	}
	if v := transportCounter(t, snap, "session_resets"); v < 1 {
		t.Errorf("session_resets %v, want >= 1 (worker 0 was silent past SessionExpiry)", v)
	}
	if v := transportCounter(t, snap, "sends"); v <= 0 {
		t.Errorf("sends %v, want > 0", v)
	}
	if v := transportCounter(t, snap, "drops"); v <= 0 {
		t.Errorf("drops %v, want > 0 (partition window plus drop rate)", v)
	}
}

// TestChaosSameSeedSameResults: the fault schedule is a pure function of
// the seed, and the protocol commits exactly-once under it — so two runs
// of the identical chaos workload produce identical job results.
func TestChaosSameSeedSameResults(t *testing.T) {
	run := func() []map[string]string {
		c, err := New(chaosConfig(7, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		return runChaosJobs(t, c, 3)
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("job %d: %d keys vs %d keys across runs", i, len(a[i]), len(b[i]))
		}
		for k, v := range a[i] {
			if b[i][k] != v {
				t.Fatalf("job %d key %q: %q vs %q across runs", i, k, v, b[i][k])
			}
		}
	}
}

// TestDrainDuringPartitionFailsWithTimeout: with every link inside a
// permanent partition window nothing can finish — Drain must surface the
// caller's timeout rather than hang, and Close must still return.
func TestDrainDuringPartitionFailsWithTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &transport.FaultConfig{
		Seed:       1,
		Partitions: []transport.Partition{{Start: 0, Duration: time.Hour}},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, _ := wordCountJob(2, 50, 1)
	if _, err := c.Submit(job); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain under total partition: %v, want %v", err, context.DeadlineExceeded)
	}
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung during an active partition window")
	}
}

// TestLoopbackGoldenQuietCluster pins the default (loopback, no faults)
// path to the pre-transport engine's behavior: a quiet concurrent
// workload launches exactly one attempt per task, triggers none of the
// recovery machinery, and moves every message with zero transport faults.
func TestLoopbackGoldenQuietCluster(t *testing.T) {
	col := metrics.New(1)
	cfg := DefaultConfig()
	cfg.JobPolicy = "fair"
	cfg.Metrics = col
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const jobs = 3
	splits, reduces := 0, 0
	var handles []*JobHandle
	var wants []map[string]string
	for i := 0; i < jobs; i++ {
		job, want := wordCountJob(4+i, 150, 2)
		job.Name = fmt.Sprintf("quiet-job-%d", i)
		splits += 4 + i
		reduces += 2
		h, err := c.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		wants = append(wants, want)
	}
	var maps, reds, backups, reexecs int
	for i, h := range handles {
		got, prof, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		checkResults(t, got, wants[i])
		maps += prof.Stats.MapAttempts
		reds += prof.Stats.ReduceAttempts
		backups += prof.Stats.BackupCopies
		reexecs += prof.Stats.MapReexecs
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	c.Close()

	if maps != splits || reds != reduces {
		t.Errorf("quiet loopback attempts: %d maps (want %d), %d reduces (want %d)", maps, splits, reds, reduces)
	}
	if backups != 0 || reexecs != 0 {
		t.Errorf("quiet loopback recovered from nothing: %d backups, %d reexecs", backups, reexecs)
	}
	snap := col.Snapshot()
	for _, name := range []string{"drops", "dup_deliveries", "delayed_deliveries", "conn_resets"} {
		if v := transportCounter(t, snap, name); v != 0 {
			t.Errorf("loopback counted %s = %v, want 0", name, v)
		}
	}
	for _, name := range []string{"lease_expiries", "session_resets", "duplicate_result_discards"} {
		if v := transportCounter(t, snap, name); v != 0 {
			t.Errorf("quiet cluster counted %s = %v, want 0", name, v)
		}
	}
	if v := transportCounter(t, snap, "sends"); v <= 0 {
		t.Errorf("sends %v, want > 0 (the protocol does run over the fabric)", v)
	}
}
