package engine

import (
	"context"
	"testing"
	"time"
)

// BenchmarkLiveWordCount measures end-to-end live-engine throughput on a
// quiet pool (8 splits × 200 words, 3 reducers).
func BenchmarkLiveWordCount(b *testing.B) {
	c, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	job, _ := wordCountJob(8, 200, 3)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Run(ctx, job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveWordCountUnderChurn measures the same job with one worker
// suspension mid-run.
func BenchmarkLiveWordCountUnderChurn(b *testing.B) {
	cfg := DefaultConfig()
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	job, _ := wordCountJob(8, 200, 3)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := i % cfg.VolatileWorkers
		_ = c.Suspend(w)
		go func(w int) {
			time.Sleep(20 * time.Millisecond)
			_ = c.Resume(w)
		}(w)
		if _, _, err := c.Run(ctx, job); err != nil {
			b.Fatal(err)
		}
		_ = c.Resume(w)
	}
}
