package engine

import (
	"context"
	"time"

	"repro/internal/trace"
)

// ChurnRunner drives a cluster's Suspend/Resume calls from availability
// traces, compressing simulated seconds into wall-clock milliseconds — the
// live-engine equivalent of the simulator's trace-driven node model.
type ChurnRunner struct {
	c *Cluster
	// Compression maps one simulated second to this wall duration.
	Compression time.Duration
}

// NewChurnRunner builds a runner with the given time compression (e.g.
// time.Millisecond turns the paper's 8-hour traces into ~29 s of wall
// time; tests use smaller horizons).
func NewChurnRunner(c *Cluster, compression time.Duration) *ChurnRunner {
	return &ChurnRunner{c: c, Compression: compression}
}

// Play replays one trace against one volatile worker until the context
// ends or the trace horizon passes. It blocks; run it in a goroutine per
// worker.
func (r *ChurnRunner) Play(ctx context.Context, worker int, tr trace.Trace) error {
	start := time.Now()
	for _, iv := range tr.Outages {
		if err := sleepUntil(ctx, start.Add(scaleDur(iv.Start, r.Compression))); err != nil {
			return err
		}
		if err := r.c.Suspend(worker); err != nil {
			return err
		}
		if err := sleepUntil(ctx, start.Add(scaleDur(iv.End, r.Compression))); err != nil {
			_ = r.c.Resume(worker) // leave the worker usable
			return err
		}
		if err := r.c.Resume(worker); err != nil {
			return err
		}
	}
	return nil
}

// PlayFleet replays one trace per volatile worker concurrently and returns
// when all traces finish or ctx ends.
func (r *ChurnRunner) PlayFleet(ctx context.Context, traces []trace.Trace) {
	done := make(chan struct{}, len(traces))
	n := 0
	for w := 0; w < r.c.cfg.VolatileWorkers && w < len(traces); w++ {
		n++
		go func(w int) {
			defer func() { done <- struct{}{} }()
			_ = r.Play(ctx, w, traces[w])
		}(w)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// scaleDur converts simulated seconds to wall time at the given
// compression.
func scaleDur(simSeconds float64, perSimSecond time.Duration) time.Duration {
	return time.Duration(simSeconds * float64(perSimSecond))
}

// sleepUntil waits until the deadline or context end.
func sleepUntil(ctx context.Context, deadline time.Time) error {
	d := time.Until(deadline)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
