package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// wordCountJob builds a word-count job over deterministic synthetic text
// and the exact expected counts.
func wordCountJob(splits, wordsPerSplit, reduces int) (Job, map[string]string) {
	vocab := []string{"moon", "map", "reduce", "volunteer", "hadoop", "churn", "node", "data"}
	want := map[string]int{}
	inputs := make([]string, splits)
	for s := 0; s < splits; s++ {
		var b strings.Builder
		for i := 0; i < wordsPerSplit; i++ {
			w := vocab[(s*31+i*7)%len(vocab)]
			b.WriteString(w)
			b.WriteByte(' ')
			want[w]++
		}
		inputs[s] = b.String()
	}
	expect := make(map[string]string, len(want))
	for k, v := range want {
		expect[k] = strconv.Itoa(v)
	}
	job := Job{
		Name:    "wc",
		Inputs:  inputs,
		Reduces: reduces,
		Map: func(input string, emit func(k, v string)) {
			for _, w := range strings.Fields(input) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string) string {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return strconv.Itoa(sum)
		},
	}
	return job, expect
}

func mustRun(t *testing.T, c *Cluster, job Job, timeout time.Duration) (map[string]string, Stats) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	got, stats, err := c.Run(ctx, job)
	if err != nil {
		t.Fatalf("Run: %v (stats %+v)", err, stats)
	}
	return got, stats
}

func checkResults(t *testing.T, got, want map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestWordCountQuietCluster(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job, want := wordCountJob(8, 200, 3)
	got, stats := mustRun(t, c, job, 10*time.Second)
	checkResults(t, got, want)
	if stats.MapAttempts != 8 || stats.ReduceAttempts != 3 {
		t.Fatalf("quiet cluster over-attempted: %+v", stats)
	}
	if stats.MapReexecs != 0 || stats.BackupCopies != 0 {
		t.Fatalf("quiet cluster recovered from nothing: %+v", stats)
	}
}

func TestSequentialJobsOnOneCluster(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		job, want := wordCountJob(4+i, 100, 2)
		got, _ := mustRun(t, c, job, 10*time.Second)
		checkResults(t, got, want)
	}
}

func TestExactResultsUnderChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 4
	cfg.DedicatedWorkers = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, want := wordCountJob(20, 500, 4)
	// Churn injector: cycle suspensions across volatile workers while the
	// job runs.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
				w := i % cfg.VolatileWorkers
				_ = c.Suspend(w)
				go func(w int) {
					time.Sleep(60 * time.Millisecond)
					_ = c.Resume(w)
				}(w)
				i++
			}
		}
	}()
	got, stats := mustRun(t, c, job, 30*time.Second)
	checkResults(t, got, want)
	t.Logf("churn stats: %+v", stats)
}

func TestSuspendedSoleWorkerJobStillFinishesViaDedicated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 1
	cfg.DedicatedWorkers = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, want := wordCountJob(4, 100, 2)
	if err := c.Suspend(0); err != nil {
		t.Fatal(err)
	}
	got, stats := mustRun(t, c, job, 15*time.Second)
	checkResults(t, got, want)
	if stats.BackupCopies == 0 && stats.MapAttempts <= len(job.Inputs) {
		// Either frozen-task backups fired, or everything ran dedicated
		// from the start; both are acceptable, but the job must finish.
		t.Logf("stats: %+v", stats)
	}
	_ = c.Resume(0)
}

func TestMapReexecutionWithoutDedicatedReplicas(t *testing.T) {
	// Without dedicated intermediate copies, suspending a map's worker
	// between map completion and shuffle forces re-execution.
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 2
	cfg.DedicatedWorkers = 1
	cfg.ReplicateToDedicated = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, want := wordCountJob(6, 300, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Suspend both volatile workers shortly after maps start; their
		// outputs become unreachable during shuffle.
		time.Sleep(20 * time.Millisecond)
		_ = c.Suspend(0)
		_ = c.Suspend(1)
		time.Sleep(300 * time.Millisecond)
		_ = c.Resume(0)
		_ = c.Resume(1)
	}()
	got, stats := mustRun(t, c, job, 30*time.Second)
	<-done
	checkResults(t, got, want)
	t.Logf("no-replication stats: %+v", stats)
}

func TestSuspendValidation(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Suspend(-1); err == nil {
		t.Fatal("suspended worker -1")
	}
	if err := c.Suspend(c.Workers()); err == nil {
		t.Fatal("suspended out-of-range worker")
	}
	// Last worker is dedicated under DefaultConfig.
	if err := c.Suspend(c.Workers() - 1); err == nil {
		t.Fatal("suspended a dedicated worker")
	}
	if err := c.Suspend(0); err != nil {
		t.Fatal(err)
	}
	if !c.Suspended(0) {
		t.Fatal("worker 0 not reported suspended")
	}
	if err := c.Resume(0); err != nil {
		t.Fatal(err)
	}
	if c.Suspended(0) {
		t.Fatal("worker 0 still reported suspended")
	}
}

func TestJobValidation(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, _, err := c.Run(ctx, Job{}); err == nil {
		t.Fatal("empty job accepted")
	}
	job, _ := wordCountJob(2, 10, 1)
	job.Reduces = 0
	if _, _, err := c.Run(ctx, job); err == nil {
		t.Fatal("zero reduces accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.VolatileWorkers, bad.DedicatedWorkers = 0, 0
	if _, err := New(bad); err == nil {
		t.Fatal("empty pool accepted")
	}
	bad = DefaultConfig()
	bad.FetchTimeout = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero fetch timeout accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 1
	cfg.DedicatedWorkers = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Suspend the only worker so the job cannot proceed, then cancel.
	if err := c.Suspend(0); err != nil {
		t.Fatal(err)
	}
	job, _ := wordCountJob(2, 10, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err = c.Run(ctx, job)
	if err == nil {
		t.Fatal("run succeeded with the only worker suspended")
	}
	_ = c.Resume(0)
}

func TestClosedClusterFailsRuns(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	job, _ := wordCountJob(2, 10, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := c.Run(ctx, job); err == nil {
		t.Fatal("run succeeded on closed cluster")
	}
}

func TestPartitionOfStableAndInRange(t *testing.T) {
	for _, r := range []int{1, 2, 7} {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key-%d", i)
			p := partitionOf(k, r)
			if p < 0 || p >= r {
				t.Fatalf("partitionOf(%q,%d) = %d", k, r, p)
			}
			if p != partitionOf(k, r) {
				t.Fatal("partitionOf not deterministic")
			}
		}
	}
}

func TestChurnRunnerTraceDriven(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 3
	cfg.DedicatedWorkers = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Traces in "simulated seconds"; compression 1 ms/s keeps this test
	// around 300 ms of wall time.
	traces := []trace.Trace{
		{Duration: 300, Outages: []trace.Interval{{Start: 20, End: 90}, {Start: 150, End: 230}}},
		{Duration: 300, Outages: []trace.Interval{{Start: 50, End: 140}}},
		{Duration: 300, Outages: []trace.Interval{{Start: 10, End: 60}, {Start: 200, End: 280}}},
	}
	runner := NewChurnRunner(c, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	churnDone := make(chan struct{})
	go func() {
		runner.PlayFleet(ctx, traces)
		close(churnDone)
	}()

	job, want := wordCountJob(12, 400, 3)
	got, stats := mustRun(t, c, job, 20*time.Second)
	checkResults(t, got, want)
	<-churnDone
	// Every worker must be resumed after the traces end.
	for w := 0; w < cfg.VolatileWorkers; w++ {
		if c.Suspended(w) {
			t.Fatalf("worker %d left suspended after trace replay", w)
		}
	}
	t.Logf("trace-driven churn stats: %+v", stats)
}

func TestScaleDur(t *testing.T) {
	if scaleDur(2.5, time.Millisecond) != 2500*time.Microsecond {
		t.Fatal("scaleDur arithmetic")
	}
	if scaleDur(0, time.Second) != 0 {
		t.Fatal("scaleDur zero")
	}
}

// TestEngineMetricsCollection: a collector attached via Config.Metrics
// records the run's attempt counters in agreement with Stats, and a nil
// collector changes nothing.
func TestEngineMetricsCollection(t *testing.T) {
	cfg := DefaultConfig()
	col := metrics.New(1)
	cfg.Metrics = col
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, expect := wordCountJob(6, 40, 2)
	got, stats := mustRun(t, c, job, 10*time.Second)
	for k, v := range expect {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}

	snap := col.Snapshot()
	find := func(name string) float64 {
		for _, p := range snap.Counters {
			if p.Layer == string(metrics.LayerEngine) && p.Name == name {
				return p.Value
			}
		}
		t.Fatalf("counter %s missing from snapshot", name)
		return 0
	}
	if got, want := find("map_attempts"), float64(stats.MapAttempts); got != want {
		t.Errorf("map_attempts counter %v, want %v (Stats)", got, want)
	}
	if got, want := find("reduce_attempts"), float64(stats.ReduceAttempts); got != want {
		t.Errorf("reduce_attempts counter %v, want %v (Stats)", got, want)
	}
	if got, want := find("backup_copies"), float64(stats.BackupCopies); got != want {
		t.Errorf("backup_copies counter %v, want %v (Stats)", got, want)
	}
}
