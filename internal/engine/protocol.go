package engine

import "fmt"

// The master↔worker protocol. Everything the master and workers exchange
// travels over the cluster's transport as one of the message types below;
// there are no shared channels left between them (the hybrid replication
// write and the store audit are the two documented exceptions — the
// intermediate store models node-local disk, not the network).
//
// Reliability is split by message class. Heartbeats are fire-and-forget:
// losing one only ages the lease. Assignments (master→worker) and events
// (worker→master) are acknowledged by id and resent with exponential
// backoff up to LinkConfig.MaxRetries; receivers deduplicate by id, so a
// resend or a fault-injected duplicate applies once. A message abandoned
// after the last retry ends the attempt, not the job: the master
// force-retires and reschedules, the worker reconnects under a fresh
// session.
//
// Sessions make worker identity epoch-scoped: a worker joins with hello,
// is welcomed with a new session id, and every later message carries it.
// The master accepts events only from the worker's current, alive
// session — results of an expired or replaced session are discarded
// (counted as duplicate_result_discards), never committed.

// masterAddr is the master's listen address on the cluster transport.
const masterAddr = "master"

// WorkerAddr returns worker i's transport address: its dial identity and
// its intermediate-data listener. Fault-injection partition windows match
// these addresses, so scenarios can cut specific workers off.
func WorkerAddr(i int) string { return fmt.Sprintf("worker-%d", i) }

// msgHello opens a session: a worker introduces itself after dialing.
type msgHello struct {
	worker int
}

// msgWelcome answers hello with the worker's new session id.
type msgWelcome struct {
	session uint64
}

// msgExpired tells a worker its session was evicted; it must redial.
type msgExpired struct{}

// msgHeartbeat refreshes the worker's lease (fire-and-forget).
type msgHeartbeat struct {
	session uint64
}

// msgAck acknowledges one assignment or event by id.
type msgAck struct {
	id uint64
}

// msgAssign carries one task attempt to a worker (acked, resent, deduped).
type msgAssign struct {
	id      uint64
	session uint64
	task    assignment
}

// msgEvent carries one worker event to the master (acked, resent, deduped).
type msgEvent struct {
	id      uint64
	session uint64
	ev      workerEvent
}

// msgFetchReq asks a worker for one map output partition of one job.
type msgFetchReq struct {
	job, mapID, attempt, partition int
}

// msgFetchResp answers a fetch request.
type msgFetchResp struct {
	ok   bool
	data map[string][]string
}

// assignment is the self-contained description of one task attempt; the
// worker needs nothing else to execute it.
type assignment struct {
	jobID    int
	taskID   int
	attempt  int
	isReduce bool
	reduces  int

	// Map attempts.
	input string
	mapFn MapFunc
	// replicateTo is the dedicated worker holding the hybrid replica of
	// this map's output (-1: no replication).
	replicateTo int

	// Reduce attempts: the snapshot of winning map attempts to shuffle.
	reduceFn ReduceFunc
	sources  []reduceSource
}

// reduceSource locates one map output: the winning attempt and the workers
// holding it.
type reduceSource struct {
	mapID, attempt int
	holders        []int
}

// workerEvent is anything a worker reports back (the payload of msgEvent).
type workerEvent struct {
	kind    eventKind
	jobID   int
	taskID  int
	attempt int
	worker  int
	holders []int             // mapDone: workers holding the output
	output  map[string]string // reduceDone: final key→value pairs
	missing []int             // reduceStuck: map IDs with no reachable output
}
