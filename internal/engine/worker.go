package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// gate is a suspend/resume barrier. Open = the worker runs; closed = every
// checkpoint blocks until reopened. The zero value is open.
type gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gate) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
}

func (g *gate) open() {
	g.mu.Lock()
	g.closed = false
	g.mu.Unlock()
	g.cond.Broadcast()
}

// wait blocks while the gate is closed (a suspension checkpoint).
func (g *gate) wait() {
	g.mu.Lock()
	for g.closed {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *gate) closedNow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// clearedSet records jobs whose intermediate data has been released, so a
// stale attempt that outlived its session (or sat undelivered through a
// suspension) cannot repopulate a cleared store after the fact.
type clearedSet struct {
	mu sync.Mutex
	m  map[int]bool
}

func newClearedSet() *clearedSet { return &clearedSet{m: make(map[int]bool)} }

func (s *clearedSet) mark(job int) {
	s.mu.Lock()
	s.m[job] = true
	s.mu.Unlock()
}

func (s *clearedSet) has(job int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[job]
}

// worker is one goroutine executing assigned tasks. All its traffic —
// joining the master, heartbeats, assignments, results, intermediate-data
// fetches — crosses the cluster transport, and everything passes through
// the gate so a suspended worker is completely silent. Two deliberate
// exceptions stay off the fabric because they model node-local disk, not
// the network: the hybrid replication write into a dedicated peer's store,
// and the master's end-of-job store sweep.
type worker struct {
	id        int
	dedicated bool
	cfg       Config
	link      transport.LinkConfig
	tr        transport.Transport
	gate      *gate

	// peers indexes every worker in the cluster (read-only after New);
	// the hybrid replication path writes a dedicated peer's store directly.
	peers []*worker

	// fetchLis serves this worker's intermediate data at WorkerAddr(id).
	fetchLis transport.Listener

	// retries counts this worker's protocol retries into the cluster-wide
	// total (transferred to the metrics collector at shutdown).
	retries *atomic.Int64

	// cleared guards putPartition against writes for already-swept jobs.
	cleared *clearedSet

	// store holds map outputs: (job, mapID, attempt, partition) →
	// key→values — job-scoped so concurrent jobs never collide. Guarded
	// by storeMu: peers write replicas and the master sweeps finished jobs
	// from other goroutines.
	storeMu sync.Mutex
	store   map[storeKey]map[string][]string
}

type storeKey struct {
	job, mapID, attempt, partition int
}

func newWorker(id int, dedicated bool, cfg Config, link transport.LinkConfig, tr transport.Transport, retries *atomic.Int64, cleared *clearedSet) *worker {
	return &worker{
		id:        id,
		dedicated: dedicated,
		cfg:       cfg,
		link:      link,
		tr:        tr,
		gate:      newGate(),
		retries:   retries,
		cleared:   cleared,
		store:     make(map[storeKey]map[string][]string),
	}
}

// run is the worker's main loop: join the master, serve one session until
// it dies, reconnect under a fresh session. A companion goroutine serves
// intermediate-data fetches so a worker busy computing still serves data
// (as a TaskTracker's HTTP server does). Both loops are gated by
// suspension.
func (w *worker) run(closed chan struct{}) {
	go w.serveFetches(closed)
	backoff := w.link.RetryBackoff
	for {
		if isClosed(closed) {
			return
		}
		w.gate.wait()
		conn, sess, ok := w.connect(closed, &backoff)
		if !ok {
			continue
		}
		backoff = w.link.RetryBackoff
		s := &workerSession{
			w:      w,
			conn:   conn,
			id:     sess,
			seen:   make(map[uint64]bool),
			closed: closed,
		}
		s.loop()
		conn.Close()
	}
}

// connect performs one join handshake: dial, hello, welcome. On any
// failure it backs off (doubling, capped) so a partitioned worker does not
// spin; the backoff resets once a session is established.
func (w *worker) connect(closed chan struct{}, backoff *time.Duration) (transport.Conn, uint64, bool) {
	conn, err := w.tr.Dial(WorkerAddr(w.id), masterAddr, w.link.ConnectTimeout)
	if err == nil {
		if err = conn.Send(msgHello{worker: w.id}, w.link.SendTimeout); err == nil {
			var m any
			if m, err = conn.Recv(w.link.RecvTimeout); err == nil {
				if wel, ok := m.(msgWelcome); ok {
					return conn, wel.session, true
				}
				err = errors.New("engine: unexpected handshake reply")
			}
		}
		conn.Close()
	}
	w.retries.Add(1)
	sleepOrClosed(closed, *backoff)
	if *backoff < time.Second {
		*backoff *= 2
	}
	return nil, 0, false
}

// workerSession is one epoch of a worker's attachment to the master: its
// connection, the session id every message carries, and the dedup state
// that makes resent or fault-duplicated assignments apply once.
type workerSession struct {
	w      *worker
	conn   transport.Conn
	id     uint64
	closed chan struct{}

	seen        map[uint64]bool // assignment ids already queued (dedup)
	queue       []msgAssign     // accepted, not yet executed
	nextEventID uint64
}

// loop serves the session: execute queued assignments, heartbeat on
// schedule, receive in between. Heartbeats pause while a task executes —
// exactly like the pre-transport engine, where a busy worker's loop could
// not beat — so a long task still looks frozen to the master and draws
// backups. Any fatal connection error ends the session; the caller
// reconnects under a new one.
func (s *workerSession) loop() {
	w := s.w
	nextBeat := time.Now()
	for {
		if isClosed(s.closed) {
			return
		}
		w.gate.wait()
		if len(s.queue) > 0 {
			a := s.queue[0]
			s.queue = s.queue[1:]
			if !s.execute(a) {
				return
			}
			continue
		}
		now := time.Now()
		if !now.Before(nextBeat) {
			err := s.conn.Send(msgHeartbeat{session: s.id}, w.link.SendTimeout)
			if err != nil && !errors.Is(err, transport.ErrTimeout) {
				return // reset or closed: redial
			}
			nextBeat = now.Add(w.link.HeartbeatInterval)
		}
		m, err := s.conn.Recv(time.Until(nextBeat))
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return
		}
		if !s.handleMsg(m) {
			return
		}
	}
}

// handleMsg integrates one inbound message; false means the session must
// end. Assignments are acked immediately (even duplicates — the earlier
// ack may have been lost) and executed in arrival order.
func (s *workerSession) handleMsg(m any) bool {
	switch msg := m.(type) {
	case msgAssign:
		if msg.session != s.id {
			return true // stale epoch; ignore
		}
		if !s.seen[msg.id] {
			s.seen[msg.id] = true
			s.queue = append(s.queue, msg)
		}
		err := s.conn.Send(msgAck{id: msg.id}, s.w.link.SendTimeout)
		if err != nil && !errors.Is(err, transport.ErrTimeout) {
			return false
		}
	case msgExpired:
		return false // evicted: rejoin under a fresh session
	case msgAck:
		// A late duplicate ack for an already-confirmed event; ignore.
	}
	return true
}

// execute runs one assignment and reliably reports its result.
func (s *workerSession) execute(a msgAssign) bool {
	var ev workerEvent
	if a.task.isReduce {
		ev = s.w.runReduce(a.task)
	} else {
		ev = s.w.runMap(a.task)
	}
	return s.sendEvent(ev)
}

// sendEvent delivers one result event with bounded retries: send, await
// the master's ack, back off and resend on silence. Assignments arriving
// during the ack wait are queued through handleMsg, so a busy link never
// deadlocks the dialogue. Exhausting the retries ends the session — the
// result is abandoned (the master force-retires the attempt) rather than
// committed twice.
func (s *workerSession) sendEvent(ev workerEvent) bool {
	w := s.w
	s.nextEventID++
	msg := msgEvent{id: s.nextEventID, session: s.id, ev: ev}
	backoff := w.link.RetryBackoff
	for try := 0; ; try++ {
		if isClosed(s.closed) {
			return false
		}
		w.gate.wait()
		err := s.conn.Send(msg, w.link.SendTimeout)
		if err != nil && !errors.Is(err, transport.ErrTimeout) {
			return false
		}
		if err == nil {
			deadline := time.Now().Add(w.link.RecvTimeout)
			for {
				m, rerr := s.conn.Recv(time.Until(deadline))
				if rerr != nil {
					if errors.Is(rerr, transport.ErrTimeout) {
						break // no ack in time: resend
					}
					return false
				}
				if ack, ok := m.(msgAck); ok && ack.id == msg.id {
					return true
				}
				if !s.handleMsg(m) {
					return false
				}
			}
		}
		if try >= w.link.MaxRetries {
			return false
		}
		w.retries.Add(1)
		sleepOrClosed(s.closed, backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// runMap executes one map attempt: partition the emissions, store them
// locally (plus the hybrid dedicated replica), report the holders.
func (w *worker) runMap(a assignment) workerEvent {
	parts := make([]map[string][]string, a.reduces)
	for p := range parts {
		parts[p] = make(map[string][]string)
	}
	a.mapFn(a.input, func(key, value string) {
		w.gate.wait() // suspension checkpoint at emission granularity
		p := partitionOf(key, a.reduces)
		parts[p][key] = append(parts[p][key], value)
	})
	w.gate.wait()
	var replica *worker
	if a.replicateTo >= 0 && a.replicateTo != w.id {
		replica = w.peers[a.replicateTo]
	}
	for p, data := range parts {
		w.putPartition(a.jobID, a.taskID, a.attempt, p, data)
		if replica != nil {
			replica.putPartition(a.jobID, a.taskID, a.attempt, p, data)
		}
	}
	holders := []int{w.id}
	if replica != nil {
		holders = append(holders, replica.id)
	}
	return workerEvent{kind: evMapDone, jobID: a.jobID, taskID: a.taskID, attempt: a.attempt, worker: w.id, holders: holders}
}

// runReduce executes one reduce attempt: shuffle every source partition
// from its holders (local store first, then fetches over the transport),
// merge, reduce in sorted key order. Unreachable map outputs produce a
// reduceStuck event listing them.
func (w *worker) runReduce(a assignment) workerEvent {
	merged := make(map[string][]string)
	var missing []int
	for _, src := range a.sources {
		w.gate.wait()
		var data map[string][]string
		got := false
		for _, h := range src.holders {
			if h == w.id {
				w.storeMu.Lock()
				d, ok := w.store[storeKey{a.jobID, src.mapID, src.attempt, a.taskID}]
				w.storeMu.Unlock()
				if ok {
					data, got = d, true
					break
				}
				continue
			}
			if d, ok := w.fetch(h, a.jobID, src.mapID, src.attempt, a.taskID); ok {
				data, got = d, true
				break
			}
		}
		if !got {
			missing = append(missing, src.mapID)
			continue
		}
		for k, vs := range data {
			merged[k] = append(merged[k], vs...)
		}
	}
	if len(missing) > 0 {
		return workerEvent{kind: evReduceStuck, jobID: a.jobID, taskID: a.taskID, attempt: a.attempt, worker: w.id, missing: missing}
	}
	out := make(map[string]string, len(merged))
	for _, k := range sortedKeys(merged) {
		w.gate.wait()
		out[k] = a.reduceFn(k, merged[k])
	}
	return workerEvent{kind: evReduceDone, jobID: a.jobID, taskID: a.taskID, attempt: a.attempt, worker: w.id, output: out}
}

// fetch requests one map output partition from a holder over the
// transport. Any failure — dial, partition-swallowed request, timed-out
// reply — reads as a miss; the caller falls through to the next holder or
// reports the map unreachable.
func (w *worker) fetch(holder, job, mapID, attempt, partition int) (map[string][]string, bool) {
	conn, err := w.tr.Dial(WorkerAddr(w.id), WorkerAddr(holder), w.link.ConnectTimeout)
	if err != nil {
		return nil, false
	}
	defer conn.Close()
	if err := conn.Send(msgFetchReq{job: job, mapID: mapID, attempt: attempt, partition: partition}, w.cfg.FetchTimeout); err != nil {
		return nil, false
	}
	m, err := conn.Recv(w.cfg.FetchTimeout)
	if err != nil {
		return nil, false
	}
	resp, ok := m.(msgFetchResp)
	if !ok || !resp.ok {
		return nil, false
	}
	return resp.data, true
}

// serveFetches answers intermediate-data requests — one request per
// accepted connection — while the worker is not suspended.
func (w *worker) serveFetches(closed chan struct{}) {
	defer w.fetchLis.Close()
	for {
		if isClosed(closed) {
			return
		}
		w.gate.wait()
		conn, err := w.fetchLis.Accept(w.link.RecvTimeout)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return
		}
		w.gate.wait() // suspended workers serve nothing
		if m, err := conn.Recv(w.link.RecvTimeout); err == nil {
			if req, ok := m.(msgFetchReq); ok {
				w.storeMu.Lock()
				data, found := w.store[storeKey{req.job, req.mapID, req.attempt, req.partition}]
				w.storeMu.Unlock()
				_ = conn.Send(msgFetchResp{ok: found, data: data}, w.link.SendTimeout)
			}
		}
		conn.Close()
	}
}

// putPartition stores one partition of a map attempt's output — unless the
// job was already swept, which happens when a stale attempt (undelivered
// through a suspension, or orphaned by a dead session) completes after the
// job retired its last accounted attempt.
func (w *worker) putPartition(job, mapID, attempt, partition int, data map[string][]string) {
	w.storeMu.Lock()
	if !w.cleared.has(job) {
		w.store[storeKey{job, mapID, attempt, partition}] = data
	}
	w.storeMu.Unlock()
}

// clearJob drops one finished job's intermediate data (concurrent jobs
// keep theirs: the store is job-scoped).
func (w *worker) clearJob(job int) {
	w.storeMu.Lock()
	for k := range w.store {
		if k.job == job {
			delete(w.store, k)
		}
	}
	w.storeMu.Unlock()
}

// isClosed polls a close-only channel.
func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// sleepOrClosed sleeps d, waking early if ch closes.
func sleepOrClosed(ch chan struct{}, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
	case <-timer.C:
	}
}
