package engine

import (
	"sync"
	"time"
)

// gate is a suspend/resume barrier. Open = the worker runs; closed = every
// checkpoint blocks until reopened. The zero value is open.
type gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gate) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
}

func (g *gate) open() {
	g.mu.Lock()
	g.closed = false
	g.mu.Unlock()
	g.cond.Broadcast()
}

// wait blocks while the gate is closed (a suspension checkpoint).
func (g *gate) wait() {
	g.mu.Lock()
	for g.closed {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *gate) closedNow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// task is one unit of work sent to a worker.
type task struct {
	run func(w *worker)
}

// fetchReq asks a worker for one map output partition of one job.
type fetchReq struct {
	job       int
	mapID     int
	attempt   int
	partition int
	reply     chan fetchResp
}

type fetchResp struct {
	ok   bool
	data map[string][]string
}

// worker is one goroutine executing tasks and serving its local
// intermediate store. All channel operations pass through the gate so a
// suspended worker is completely silent.
type worker struct {
	id        int
	dedicated bool
	cfg       Config
	gate      *gate

	tasks   chan task
	fetches chan fetchReq

	// store holds map outputs: (job, mapID, attempt, partition) →
	// key→values — job-scoped so concurrent jobs never collide. Guarded
	// by storeMu: the master's replication path writes dedicated copies
	// from other goroutines.
	storeMu sync.Mutex
	store   map[storeKey]map[string][]string

	// heartbeat outputs the worker's liveness; nil until a master
	// attaches.
	hbMu sync.Mutex
	hb   chan int
}

type storeKey struct {
	job, mapID, attempt, partition int
}

func newWorker(id int, dedicated bool, cfg Config) *worker {
	return &worker{
		id:        id,
		dedicated: dedicated,
		cfg:       cfg,
		gate:      newGate(),
		tasks:     make(chan task, 64),
		fetches:   make(chan fetchReq, 64),
		store:     make(map[storeKey]map[string][]string),
	}
}

// attachHeartbeat points the worker's heartbeats at a master.
func (w *worker) attachHeartbeat(hb chan int) {
	w.hbMu.Lock()
	w.hb = hb
	w.hbMu.Unlock()
}

func (w *worker) heartbeatTarget() chan int {
	w.hbMu.Lock()
	defer w.hbMu.Unlock()
	return w.hb
}

// run is the worker's task/heartbeat loop; a companion goroutine serves
// intermediate-data fetches so a worker busy computing still serves data
// (as a TaskTracker's HTTP server does). Both loops are gated by
// suspension.
func (w *worker) run(closed chan struct{}) {
	go w.serveFetches(closed)
	ticker := time.NewTicker(w.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		w.gate.wait()
		select {
		case <-closed:
			return
		case t := <-w.tasks:
			t.run(w)
		case <-ticker.C:
			if hb := w.heartbeatTarget(); hb != nil {
				select {
				case hb <- w.id:
				default:
				}
			}
		}
	}
}

// serveFetches answers intermediate-data requests while the worker is not
// suspended.
func (w *worker) serveFetches(closed chan struct{}) {
	for {
		w.gate.wait()
		select {
		case <-closed:
			return
		case req := <-w.fetches:
			w.gate.wait() // suspended workers serve nothing
			w.storeMu.Lock()
			data, ok := w.store[storeKey{req.job, req.mapID, req.attempt, req.partition}]
			w.storeMu.Unlock()
			select {
			case req.reply <- fetchResp{ok: ok, data: data}:
			default:
			}
		}
	}
}

// putPartition stores one partition of a map attempt's output.
func (w *worker) putPartition(job, mapID, attempt, partition int, data map[string][]string) {
	w.storeMu.Lock()
	w.store[storeKey{job, mapID, attempt, partition}] = data
	w.storeMu.Unlock()
}

// clearJob drops one finished job's intermediate data (concurrent jobs
// keep theirs: the store is job-scoped).
func (w *worker) clearJob(job int) {
	w.storeMu.Lock()
	for k := range w.store {
		if k.job == job {
			delete(w.store, k)
		}
	}
	w.storeMu.Unlock()
}
