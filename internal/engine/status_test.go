package engine

import (
	"context"
	"testing"
	"time"
)

func TestJobStatusLifecycle(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, want := wordCountJob(4, 200, 2)
	h, err := c.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != 0 {
		t.Fatalf("first job ID = %d, want 0", h.ID())
	}
	st := h.Status()
	if st.State != JobQueued && st.State != JobRunning && st.State != JobDone {
		t.Fatalf("fresh status state = %q", st.State)
	}
	if st.MapsTotal != 4 || st.ReducesTotal != 2 {
		t.Fatalf("totals = %d/%d maps, %d/%d reduces", st.MapsDone, st.MapsTotal, st.ReducesDone, st.ReducesTotal)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, prof, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got, want)

	fin := h.Status()
	if fin.State != JobDone {
		t.Fatalf("final state = %q, want done", fin.State)
	}
	if fin.MapsDone != 4 || fin.ReducesDone != 2 {
		t.Fatalf("final progress = %d/%d maps, %d/%d reduces", fin.MapsDone, fin.MapsTotal, fin.ReducesDone, fin.ReducesTotal)
	}
	if fin.Makespan != prof.Makespan {
		t.Fatalf("status makespan %v != profile makespan %v", fin.Makespan, prof.Makespan)
	}
	if fin.ID != 0 || fin.Job != "wc" {
		t.Fatalf("identity = %d %q", fin.ID, fin.Job)
	}

	// A second submission gets the next ID.
	job2 := job
	job2.Name = "wc2"
	h2, err := c.Submit(job2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID() != 1 {
		t.Fatalf("second job ID = %d, want 1", h2.ID())
	}
	if _, _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestJobStatusFailedOnClose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolatileWorkers = 1
	cfg.DedicatedWorkers = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Suspend the only worker so the job can never finish.
	if err := c.Suspend(0); err != nil {
		t.Fatal(err)
	}
	job, _ := wordCountJob(2, 50, 1)
	h, err := c.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-h.Done()
	st := h.Status()
	if st.State != JobFailed || st.Err == "" {
		t.Fatalf("status after close = %+v, want failed with error", st)
	}
	if !st.State.Terminal() {
		t.Fatal("failed state must be terminal")
	}
}
