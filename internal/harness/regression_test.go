package harness

import (
	"math"
	"testing"
)

// TestSingleJobRunStatsUnchanged pins the single-job scheduling sweep to
// bit-exact golden values captured before the JobTracker became
// multi-tenant (the job-queue + SchedPolicy refactor). A single submitted
// job under the default FIFO arbitration must reproduce the historical
// one-job-at-a-time scheduler exactly — any drift here means the refactor
// changed single-job behavior.
func TestSingleJobRunStatsUnchanged(t *testing.T) {
	golden := []struct {
		variant    string
		rate       float64
		makespan   uint64 // math.Float64bits
		avgMapTime uint64
		duplicated uint64
		killedMaps float64
		capped     bool
	}{
		{"Hadoop1Min", 0.1, 0x4068800116b9b003, 0x4045000c069c759f, 0x3ff5555555555555, 0.6666666666666666, false},
		{"Hadoop1Min", 0.5, 0x407110004ff155eb, 0x4045000ae7d2370e, 0x401aaaaaaaaaaaab, 2, false},
		{"MOON", 0.1, 0x4060a00242fa7329, 0x404500167ab02703, 0x403f000000000000, 24, false},
		{"MOON", 0.5, 0x4072d3ec78c1fdf3, 0x4045001424bd3789, 0x4041d55555555555, 24, false},
		{"MOON-Hybrid", 0.1, 0x4060a00140c06f4c, 0x40450009e100dfb5, 0x403f000000000000, 24, false},
		{"MOON-Hybrid", 0.5, 0x4060a0014e5cdd50, 0x4045000b11bb6054, 0x403f000000000000, 24, false},
	}

	cfg := Config{Seeds: []uint64{1, 2, 3}, Scale: 16, Rates: []float64{0.1, 0.5}}
	sw, err := cfg.RunSweep("golden", SchedulingVariants("sort")[2:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golden {
		st := sw.Get(g.variant, g.rate)
		if got := math.Float64bits(st.Makespan); got != g.makespan {
			t.Errorf("%s/%v makespan %v (bits %#x), want bits %#x",
				g.variant, g.rate, st.Makespan, got, g.makespan)
		}
		if got := math.Float64bits(st.AvgMapTime); got != g.avgMapTime {
			t.Errorf("%s/%v avg map time %v (bits %#x), want bits %#x",
				g.variant, g.rate, st.AvgMapTime, got, g.avgMapTime)
		}
		if got := math.Float64bits(st.Duplicated); got != g.duplicated {
			t.Errorf("%s/%v duplicated %v (bits %#x), want bits %#x",
				g.variant, g.rate, st.Duplicated, got, g.duplicated)
		}
		if st.KilledMaps != g.killedMaps {
			t.Errorf("%s/%v killed maps %v, want %v", g.variant, g.rate, st.KilledMaps, g.killedMaps)
		}
		if st.Capped != g.capped {
			t.Errorf("%s/%v capped %v, want %v", g.variant, g.rate, st.Capped, g.capped)
		}
	}
}
