package harness

import (
	"math"
	"testing"

	"repro/internal/mapred"
	"repro/internal/metrics"
)

// TestSingleJobRunStatsUnchanged pins the single-job scheduling sweep to
// bit-exact golden values captured before the JobTracker became
// multi-tenant (the job-queue + SchedPolicy refactor). A single submitted
// job under the default FIFO arbitration must reproduce the historical
// one-job-at-a-time scheduler exactly — any drift here means the refactor
// changed single-job behavior.
func TestSingleJobRunStatsUnchanged(t *testing.T) {
	golden := []struct {
		variant    string
		rate       float64
		makespan   uint64 // math.Float64bits
		avgMapTime uint64
		duplicated uint64
		killedMaps float64
		capped     bool
	}{
		{"Hadoop1Min", 0.1, 0x4068800116b9b003, 0x4045000c069c759f, 0x3ff5555555555555, 0.6666666666666666, false},
		{"Hadoop1Min", 0.5, 0x407110004ff155eb, 0x4045000ae7d2370e, 0x401aaaaaaaaaaaab, 2, false},
		{"MOON", 0.1, 0x4060a00242fa7329, 0x404500167ab02703, 0x403f000000000000, 24, false},
		{"MOON", 0.5, 0x4072d3ec78c1fdf3, 0x4045001424bd3789, 0x4041d55555555555, 24, false},
		{"MOON-Hybrid", 0.1, 0x4060a00140c06f4c, 0x40450009e100dfb5, 0x403f000000000000, 24, false},
		{"MOON-Hybrid", 0.5, 0x4060a0014e5cdd50, 0x4045000b11bb6054, 0x403f000000000000, 24, false},
	}

	cfg := Config{Seeds: []uint64{1, 2, 3}, Scale: 16, Rates: []float64{0.1, 0.5}}
	sw, err := cfg.RunSweep("golden", SchedulingVariants("sort")[2:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golden {
		st := sw.Get(g.variant, g.rate)
		if got := math.Float64bits(st.Makespan); got != g.makespan {
			t.Errorf("%s/%v makespan %v (bits %#x), want bits %#x",
				g.variant, g.rate, st.Makespan, got, g.makespan)
		}
		if got := math.Float64bits(st.AvgMapTime); got != g.avgMapTime {
			t.Errorf("%s/%v avg map time %v (bits %#x), want bits %#x",
				g.variant, g.rate, st.AvgMapTime, got, g.avgMapTime)
		}
		if got := math.Float64bits(st.Duplicated); got != g.duplicated {
			t.Errorf("%s/%v duplicated %v (bits %#x), want bits %#x",
				g.variant, g.rate, st.Duplicated, got, g.duplicated)
		}
		if st.KilledMaps != g.killedMaps {
			t.Errorf("%s/%v killed maps %v, want %v", g.variant, g.rate, st.KilledMaps, g.killedMaps)
		}
		if st.Capped != g.capped {
			t.Errorf("%s/%v capped %v, want %v", g.variant, g.rate, st.Capped, g.capped)
		}
	}
}

// TestMultiJobPolicySweepUnchanged pins the multi-job sweep to bit-exact
// golden values captured before the scheduling core was extracted into
// internal/sched (the JobTracker delegating queueing and slot arbitration
// to the shared package). FIFO, fair-share and weighted-fair must each
// reproduce the pre-refactor scheduler exactly — any drift here means the
// extraction changed arbitration decisions, not just their packaging. The
// configuration (4 jobs, zero stagger, scale 8) saturates the cluster so
// the three policies genuinely diverge: a vacuous pin that passes under
// any ordering would not guard the refactor.
func TestMultiJobPolicySweepUnchanged(t *testing.T) {
	golden := []struct {
		variant    string
		rate       float64
		span       uint64 // math.Float64bits
		throughput uint64
		makespans  []uint64
		capped     bool
	}{
		{"MOON-fifo", 0.3, 0x40704800aaa32088, 0x404c395900eddc6e, []uint64{0x406370022a02282a, 0x406d9003f83afb92, 0x4068e004568c5e2f, 0x406de002217bfa2b}, false},
		{"MOON-fair", 0.3, 0x4072cf98a9dc52e1, 0x4047ee8e844e9eea, []uint64{0x4072cf98a9dc52e1, 0x406b5003fab3241c, 0x406e2004311791c7, 0x406de001f5d3d38c}, false},
		{"MOON-weighted", 0.3, 0x40760000541fe1bf, 0x4044f2911a38aeda, []uint64{0x40637002495e75bb, 0x406d9003f8758fa4, 0x4072280223ad3f98, 0x406de001f0b4c94a}, false},
	}

	cfg := Config{Seeds: []uint64{1, 2}, Scale: 8, Rates: []float64{0.3}}
	sw, err := cfg.RunMultiSweep("golden-multi", MultiVariants("sort", 4, 0,
		mapred.FIFO(), mapred.FairShare(), mapred.WeightedFair(map[string]float64{"sleep-sort-j0": 4})))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golden {
		st := sw.Get(g.variant, g.rate)
		if got := math.Float64bits(st.Span); got != g.span {
			t.Errorf("%s/%v span %v (bits %#x), want bits %#x", g.variant, g.rate, st.Span, got, g.span)
		}
		if got := math.Float64bits(st.Throughput); got != g.throughput {
			t.Errorf("%s/%v throughput %v (bits %#x), want bits %#x", g.variant, g.rate, st.Throughput, got, g.throughput)
		}
		if len(st.JobMakespans) != len(g.makespans) {
			t.Fatalf("%s/%v has %d job makespans, want %d", g.variant, g.rate, len(st.JobMakespans), len(g.makespans))
		}
		for i, mk := range st.JobMakespans {
			if got := math.Float64bits(mk); got != g.makespans[i] {
				t.Errorf("%s/%v job %d makespan %v (bits %#x), want bits %#x", g.variant, g.rate, i, mk, got, g.makespans[i])
			}
		}
		if st.Capped != g.capped {
			t.Errorf("%s/%v capped %v, want %v", g.variant, g.rate, st.Capped, g.capped)
		}
	}
}

// sameBits compares two RunStats field-by-field at the bit level: metrics
// collection must not shift a single ulp anywhere.
func sameBits(t *testing.T, label string, a, b RunStats) {
	t.Helper()
	cmp := func(name string, x, y float64) {
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Errorf("%s: %s differs with metrics on: %v (bits %#x) vs %v (bits %#x)",
				label, name, x, math.Float64bits(x), y, math.Float64bits(y))
		}
	}
	cmp("makespan", a.Makespan, b.Makespan)
	cmp("avgMapTime", a.AvgMapTime, b.AvgMapTime)
	cmp("avgShuffleTime", a.AvgShuffleTime, b.AvgShuffleTime)
	cmp("avgReduceTime", a.AvgReduceTime, b.AvgReduceTime)
	cmp("killedMaps", a.KilledMaps, b.KilledMaps)
	cmp("killedReduces", a.KilledReduces, b.KilledReduces)
	cmp("duplicated", a.Duplicated, b.Duplicated)
	cmp("invalidations", a.Invalidations, b.Invalidations)
	cmp("replicationBytes", a.ReplicationBytes, b.ReplicationBytes)
	if a.Capped != b.Capped || a.Runs != b.Runs {
		t.Errorf("%s: capped/runs differ with metrics on: %v/%d vs %v/%d",
			label, a.Capped, a.Runs, b.Capped, b.Runs)
	}
}

// TestMetricsCollectionDoesNotPerturbRuns pins the tentpole invariant of
// the metrics subsystem: attaching a collector to every run of a sweep must
// leave every cell's RunStats byte-identical to the uninstrumented sweep —
// collection is observation, never interference. It also asserts the
// collected reports actually carry non-zero series from the sim, cluster,
// dfs and mapred layers, so the invariant is not vacuously met by an idle
// collector.
func TestMetricsCollectionDoesNotPerturbRuns(t *testing.T) {
	variants := SchedulingVariants("sort")[3:5] // MOON, MOON-Hybrid
	cfg := Config{Seeds: []uint64{1, 2}, Scale: 16, Rates: []float64{0.5}}
	plain, err := cfg.RunSweep("plain", variants)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Fatal("uninstrumented sweep grew a metrics report")
	}

	cfg.MetricsBucket = 600
	inst, err := cfg.RunSweep("instrumented", variants)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plain.Variants {
		for _, rate := range plain.Rates {
			sameBits(t, v, plain.Get(v, rate), inst.Get(v, rate))
		}
	}

	if inst.Metrics == nil {
		t.Fatal("instrumented sweep has no metrics report")
	}
	snap := inst.Metrics["MOON"][0.5]
	nonZero := map[string]bool{}
	for _, sd := range snap.Series {
		for _, pt := range sd.Points {
			if pt.Value != 0 {
				nonZero[sd.Layer] = true
				break
			}
		}
	}
	for _, layer := range []string{"sim", "cluster", "dfs", "mapred"} {
		if !nonZero[layer] {
			t.Errorf("no non-zero series collected from layer %q", layer)
		}
	}
	if snap.Bucket != 600 {
		t.Errorf("snapshot bucket %v, want 600", snap.Bucket)
	}
	// The merged cell must carry the per-job gauges too.
	var sawMakespan bool
	for _, g := range snap.Gauges {
		if g.Layer == string(metrics.LayerMapred) && g.Name == "makespan_seconds" {
			sawMakespan = g.Value > 0
		}
	}
	if !sawMakespan {
		t.Error("per-job makespan gauge missing from merged snapshot")
	}
}
