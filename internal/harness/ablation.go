package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Ablations isolate the design choices DESIGN.md calls out: each variant
// switches one MOON mechanism off (or re-parameterizes it) while holding
// everything else at the paper's settings, on the sleep-sort workload at
// the main 60V+6D testbed.

// AblationHomestretch sweeps the two-phase scheduler's (H, R) parameters,
// including off (H=0). The paper reports H=20, R=2 "yields generally good
// results".
func AblationHomestretch() []Variant {
	mk := func(label string, h float64, r int) Variant {
		return Variant{Label: label, Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.MOONPreset(baseCluster(cs), true)
			opts.Sched.HomestretchH = h
			opts.Sched.HomestretchR = r
			return opts, workload.SleepApp(appSpec("sort"))
		}}
	}
	return []Variant{
		mk("off", 0, 0),
		mk("H10-R2", 10, 2),
		mk("H20-R2", 20, 2), // paper setting
		mk("H20-R3", 20, 3),
		mk("H40-R2", 40, 2),
	}
}

// AblationSpecCap sweeps the global speculative budget (fraction of
// available slots; paper: 20%).
func AblationSpecCap() []Variant {
	mk := func(label string, frac float64) Variant {
		return Variant{Label: label, Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.MOONPreset(baseCluster(cs), true)
			opts.Sched.SpecSlotFraction = frac
			return opts, workload.SleepApp(appSpec("sort"))
		}}
	}
	return []Variant{
		mk("cap5%", 0.05),
		mk("cap20%", 0.20), // paper setting
		mk("cap50%", 0.50),
		mk("uncapped", 10),
	}
}

// AblationHibernate compares the hibernate interval, including effectively
// disabling the state (interval just below expiry) so every outage is
// either invisible or fatal, as in stock HDFS.
func AblationHibernate(app string) []Variant {
	mk := func(label string, interval float64) Variant {
		return Variant{Label: label, Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.MOONPreset(baseCluster(cs), true)
			opts.DFS.NodeHibernateInterval = interval
			w := appSpec(app)
			w.Job.IntermediateFactor = dfs.Factor{D: 1, V: 1}
			return opts, w
		}}
	}
	return []Variant{
		mk("hib30s", 30),
		mk("hib60s", 60), // default
		mk("hib300s", 300),
		mk("hib1799s", 1799), // effectively disabled (expiry is 1800)
	}
}

// AblationAdaptiveV compares the adaptive volatile degree against pinned
// degrees by sweeping the availability target (0 disables adaptation in
// practice because v'=1 always satisfies it).
func AblationAdaptiveV(app string) []Variant {
	mk := func(label string, target float64) Variant {
		return Variant{Label: label, Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.MOONPreset(baseCluster(cs), true)
			opts.DFS.AvailabilityTarget = target
			w := appSpec(app)
			w.Job.IntermediateFactor = dfs.Factor{D: 1, V: 1}
			return opts, w
		}}
	}
	return []Variant{
		mk("target0.5", 0.5),
		mk("target0.9", 0.9), // paper example
		mk("target0.99", 0.99),
	}
}

// AblationNames lists the named ablation sweeps AblationVariants accepts.
var AblationNames = []string{"homestretch", "speccap", "hibernate", "adaptive"}

// AblationVariants resolves a named ablation to its variant lines.
func AblationVariants(name, app string) ([]Variant, error) {
	switch name {
	case "homestretch":
		return AblationHomestretch(), nil
	case "speccap":
		return AblationSpecCap(), nil
	case "hibernate":
		return AblationHibernate(app), nil
	case "adaptive":
		return AblationAdaptiveV(app), nil
	}
	return nil, fmt.Errorf("harness: unknown ablation %q (homestretch|speccap|hibernate|adaptive)", name)
}

// AblationTitle names an ablation sweep.
func AblationTitle(name, app string) string {
	return fmt.Sprintf("Ablation %s (%s)", name, app)
}

// RunAblation dispatches a named ablation sweep.
func (c Config) RunAblation(name, app string) (*Sweep, error) {
	vs, err := AblationVariants(name, app)
	if err != nil {
		return nil, err
	}
	return c.RunSweep(AblationTitle(name, app), vs)
}

// CorrelatedVariants exercises the paper's Section III scenario — whole
// lab groups disappearing together on top of independent churn — on the
// sleep-sort workload. The sweep's unavailability rate drives the
// *independent* component; the correlated sessions stay fixed at the
// default lab model, so peak simultaneous unavailability far exceeds the
// nominal rate.
func CorrelatedVariants(app string) []Variant {
	sleep := func() workload.Spec { return workload.SleepApp(appSpec(app)) }
	withCorr := func(cs core.ClusterSpec) core.ClusterSpec {
		cc := trace.DefaultCorrelatedConfig()
		cc.Base = trace.DefaultOutageConfig(cs.UnavailabilityRate)
		cs.Correlated = &cc
		return baseCluster(cs)
	}
	return []Variant{
		{Label: "Hadoop1Min", Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.HadoopPreset(withCorr(cs), 60)
			opts.DFS = dfs.DefaultConfig(dfs.ModeMOON)
			return opts, sleep()
		}},
		{Label: "MOON", Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			return core.MOONPreset(withCorr(cs), false), sleep()
		}},
		{Label: "MOON-Hybrid", Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			return core.MOONPreset(withCorr(cs), true), sleep()
		}},
	}
}

// CorrelatedTitle names the correlated-churn sweep.
func CorrelatedTitle(app string) string {
	return fmt.Sprintf("Correlated lab-session churn (%s)", app)
}

// RunCorrelated sweeps the correlated-churn comparison.
func (c Config) RunCorrelated(app string) (*Sweep, error) {
	return c.RunSweep(CorrelatedTitle(app), CorrelatedVariants(app))
}
