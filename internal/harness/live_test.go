package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestRunLiveSweepEndToEnd drives the live goroutine engine through the
// shared sweep harness: (policy × rate × seed) cells on the fanOut pool,
// trace-compressed churn per cell, per-job profiles aggregated into
// LiveStats, and engine-layer metrics merged per cell.
func TestRunLiveSweepEndToEnd(t *testing.T) {
	lc := DefaultLiveConfig()
	lc.HorizonSeconds = 60
	lc.Jobs = 3
	lc.SplitsPerJob = 5
	lc.WordsPerSplit = 120
	lc.ReducesPerJob = 2
	lc.Timeout = 45 * time.Second

	cfg := Config{Seeds: []uint64{1, 2}, Rates: []float64{0.3}, MetricsBucket: 1}
	var lines []string
	cfg.Progress = func(s string) { lines = append(lines, s) }

	sw, err := cfg.RunLiveSweep("live smoke", lc, LiveVariants([]string{"fifo", "fair"}, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Variants) != 2 || sw.Variants[0] != "live-fifo" || sw.Variants[1] != "live-fair" {
		t.Fatalf("variants %v", sw.Variants)
	}
	for _, v := range sw.Variants {
		st := sw.Get(v, 0.3)
		if st.Runs != 2 {
			t.Fatalf("%s merged %d runs, want 2", v, st.Runs)
		}
		if st.Completed != float64(lc.Jobs) {
			t.Fatalf("%s completed %v of %d jobs", v, st.Completed, lc.Jobs)
		}
		if len(st.JobMakespans) != lc.Jobs || len(st.JobQueueWaits) != lc.Jobs {
			t.Fatalf("%s per-job profiles: %d makespans, %d waits", v, len(st.JobMakespans), len(st.JobQueueWaits))
		}
		for i, mk := range st.JobMakespans {
			if mk <= 0 {
				t.Errorf("%s job %d makespan %v", v, i, mk)
			}
			if st.JobQueueWaits[i] < 0 || st.JobQueueWaits[i] > mk {
				t.Errorf("%s job %d queue wait %v vs makespan %v", v, i, st.JobQueueWaits[i], mk)
			}
		}
		if st.MapAttempts < float64(lc.Jobs*lc.SplitsPerJob) {
			t.Errorf("%s map attempts %v below input count", v, st.MapAttempts)
		}

		// Engine-layer metrics merged per cell: fleet counters, per-job
		// gauges, and the task-duration histogram.
		snap := sw.Metrics[v][0.3]
		var sawAttempts, sawGauge, sawHist bool
		for _, c := range snap.Counters {
			if c.Layer == string(metrics.LayerEngine) && c.Name == "map_attempts" && c.Value > 0 {
				sawAttempts = true
			}
		}
		for _, g := range snap.Gauges {
			if g.Layer == string(metrics.LayerEngine) && g.Name == "makespan_seconds" {
				sawGauge = true
			}
		}
		for _, h := range snap.Histograms {
			if h.Layer == string(metrics.LayerEngine) && h.Name == "task_duration_seconds" && h.Count > 0 {
				sawHist = true
			}
		}
		if !sawAttempts || !sawGauge || !sawHist {
			t.Errorf("%s metrics incomplete: counters=%v gauges=%v histograms=%v", v, sawAttempts, sawGauge, sawHist)
		}
	}
	// Progress lines arrive in serial cell order.
	if len(lines) != 4 {
		t.Fatalf("progress lines %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "live-fifo") || !strings.HasPrefix(lines[2], "live-fair") {
		t.Fatalf("progress order: %v", lines)
	}

	// Render produces the matrix without error.
	var sb strings.Builder
	if err := sw.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live-fifo") || !strings.Contains(sb.String(), "per-job makespan") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

// TestLiveVariantsDefaultsAndSelectors: the default comparison is
// fifo vs fair; weights and priorities attach only to their policies.
func TestLiveVariantsDefaultsAndSelectors(t *testing.T) {
	def := LiveVariants(nil, nil, nil)
	if len(def) != 2 || def[0].Policy != "fifo" || def[1].Policy != "fair" {
		t.Fatalf("default variants %+v", def)
	}
	w := map[string]float64{"live-j0": 3}
	p := map[string]int{"live-j1": 9}
	vs := LiveVariants([]string{"weighted", "priority", "fifo"}, w, p)
	if vs[0].Weights == nil || vs[0].Priorities != nil {
		t.Fatalf("weighted variant %+v", vs[0])
	}
	if vs[1].Priorities == nil || vs[1].Weights != nil {
		t.Fatalf("priority variant %+v", vs[1])
	}
	if vs[2].Weights != nil || vs[2].Priorities != nil {
		t.Fatalf("fifo variant %+v", vs[2])
	}

	// Alias spellings canonicalize and still carry their selectors — a
	// "strict-priority" line must not silently run with everyone at rank 0.
	alias := LiveVariants([]string{"weighted-fair", "strict-priority"}, w, p)
	if alias[0].Policy != "weighted" || alias[0].Weights == nil {
		t.Fatalf("weighted alias dropped weights: %+v", alias[0])
	}
	if alias[1].Policy != "priority" || alias[1].Priorities == nil {
		t.Fatalf("priority alias dropped priorities: %+v", alias[1])
	}
	if alias[1].Label != "live-priority" {
		t.Fatalf("alias label %q", alias[1].Label)
	}
}

func TestLiveArrivalOffsets(t *testing.T) {
	lc := DefaultLiveConfig()
	lc.Jobs = 4

	// Default: every job submitted together.
	for i, off := range lc.arrivalOffsets() {
		if off != 0 {
			t.Fatalf("default offset %d = %v, want 0", i, off)
		}
	}

	lc.Arrivals = "staggered"
	lc.ArrivalInterval = 15
	got := lc.arrivalOffsets()
	for i, off := range got {
		if off != float64(i)*15 {
			t.Fatalf("staggered offsets %v", got)
		}
	}

	lc.Arrivals = "poisson"
	lc.ArrivalSeed = 9
	a := lc.arrivalOffsets()
	b := lc.arrivalOffsets()
	if a[0] != 0 {
		t.Fatalf("poisson first offset %v, want 0", a[0])
	}
	prev := -1.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("poisson offsets not deterministic: %v vs %v", a, b)
		}
		if a[i] < prev {
			t.Fatalf("poisson offsets decrease: %v", a)
		}
		prev = a[i]
	}
	if a[1] == 15 && a[2] == 30 {
		t.Fatalf("poisson offsets look staggered: %v", a)
	}

	lc.Arrivals = "burst"
	if err := lc.Validate(); err == nil {
		t.Fatal("unknown arrival process validated")
	}
	lc.Arrivals = "staggered"
	lc.ArrivalInterval = -1
	if err := lc.Validate(); err == nil {
		t.Fatal("negative arrival interval validated")
	}
}

func TestLiveSweepWithArrivalOffsets(t *testing.T) {
	lc := DefaultLiveConfig()
	lc.HorizonSeconds = 60
	lc.Jobs = 3
	lc.SplitsPerJob = 4
	lc.WordsPerSplit = 80
	lc.ReducesPerJob = 2
	lc.Timeout = 45 * time.Second
	lc.Arrivals = "staggered"
	lc.ArrivalInterval = 20 // 20 ms of wall clock at 1 ms compression

	cfg := Config{Seeds: []uint64{1}, Rates: []float64{0.2}}
	sw, err := cfg.RunLiveSweep("live arrivals", lc, LiveVariants([]string{"fifo"}, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	st := sw.Get("live-fifo", 0.2)
	if st.Completed != 3 {
		t.Fatalf("completed %v of 3", st.Completed)
	}
	// The span covers at least the last arrival offset: 40 ms.
	if st.Span < 0.040 {
		t.Fatalf("span %v shorter than the last arrival offset", st.Span)
	}
}
