package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/rng"
	"repro/internal/trace"
)

// RenderTimes prints a sweep's execution-time matrix (rates × variants),
// the layout of Figures 4, 6 and 7. Capped cells (job did not finish
// before the trace horizon) are prefixed with '>'.
func (sw *Sweep) RenderTimes(w io.Writer) error {
	return sw.render(w, "execution time (s)", func(st RunStats) string {
		if st.Capped {
			return fmt.Sprintf(">%.0f", st.Makespan)
		}
		return fmt.Sprintf("%.0f", st.Makespan)
	})
}

// RenderDuplicates prints the duplicated-task matrix (Figure 5).
func (sw *Sweep) RenderDuplicates(w io.Writer) error {
	return sw.render(w, "duplicated tasks", func(st RunStats) string {
		return fmt.Sprintf("%.0f", st.Duplicated)
	})
}

func (sw *Sweep) render(w io.Writer, what string, cell func(RunStats) string) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", sw.Title, what); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "unavail")
	for _, v := range sw.Variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, rate := range sw.Rates {
		fmt.Fprintf(tw, "%.1f", rate)
		for _, v := range sw.Variants {
			fmt.Fprintf(tw, "\t%s", cell(sw.Cells[v][rate]))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderTable2 prints the execution profile at the 0.5 unavailability rate
// in the layout of the paper's Table II.
func RenderTable2(w io.Writer, app string, sw *Sweep) error {
	rate := sw.Rates[len(sw.Rates)-1]
	if _, err := fmt.Fprintf(w, "Table II (%s) — execution profile at %.1f unavailability\n", app, rate); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "metric")
	for _, p := range Table2Policies {
		fmt.Fprintf(tw, "\t%s", p)
	}
	fmt.Fprintln(tw)
	row := func(name string, get func(RunStats) string) {
		fmt.Fprint(tw, name)
		for _, p := range Table2Policies {
			fmt.Fprintf(tw, "\t%s", get(sw.Cells[p][rate]))
		}
		fmt.Fprintln(tw)
	}
	row("Avg Map Time (s)", func(st RunStats) string { return fmt.Sprintf("%.1f", st.AvgMapTime) })
	row("Avg Shuffle Time (s)", func(st RunStats) string { return fmt.Sprintf("%.1f", st.AvgShuffleTime) })
	row("Avg Reduce Time (s)", func(st RunStats) string { return fmt.Sprintf("%.1f", st.AvgReduceTime) })
	row("Avg #Killed Maps", func(st RunStats) string { return fmt.Sprintf("%.1f", st.KilledMaps) })
	row("Avg #Killed Reduces", func(st RunStats) string { return fmt.Sprintf("%.1f", st.KilledReduces) })
	return tw.Flush()
}

// Fig1 generates and renders the availability trace study of Figure 1:
// per-day percentage of unavailable resources, sampled every 10 minutes
// over a 9AM-5PM window.
func Fig1(w io.Writer, seed uint64) error {
	days := trace.GenerateFig1(rng.New(seed), trace.DefaultFig1Config())
	fmt.Fprintln(w, "Fig 1: percentage of unavailable resources (10-minute samples, 9AM-5PM)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "time")
	for _, d := range days {
		fmt.Fprintf(tw, "\tDAY%d", d.Day)
	}
	fmt.Fprintln(tw)
	if len(days) == 0 {
		return tw.Flush()
	}
	sum, n := 0.0, 0
	for i := range days[0].Series {
		hour := 9 + float64(i)*600/3600
		fmt.Fprintf(tw, "%02d:%02d", int(hour), int(hour*60)%60)
		for _, d := range days {
			fmt.Fprintf(tw, "\t%.0f%%", d.Series[i]*100)
			sum += d.Series[i]
			n++
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "average unavailability: %.2f (paper: ~0.4)\n", sum/float64(n))
	return err
}
