package harness

import (
	"math"
	"strings"
	"testing"
)

// TestConfigValidateRejections covers every class of garbage sweep input
// Config.Validate guards against; each case must fail with a descriptive
// error instead of silently sweeping nonsense.
func TestConfigValidateRejections(t *testing.T) {
	base := func() Config {
		return Config{Seeds: []uint64{1, 2}, Scale: 1, Rates: []float64{0.1, 0.5}}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"nan rate", func(c *Config) { c.Rates = []float64{math.NaN()} }, "rate"},
		{"negative rate", func(c *Config) { c.Rates = []float64{-0.1} }, "rate"},
		{"rate at one", func(c *Config) { c.Rates = []float64{1} }, "rate"},
		{"zero seed", func(c *Config) { c.Seeds = []uint64{0} }, "seed 0"},
		{"duplicate seed", func(c *Config) { c.Seeds = []uint64{3, 3} }, "duplicate seed"},
		{"negative scale", func(c *Config) { c.Scale = -2 }, "scale"},
		{"nan metrics bucket", func(c *Config) { c.MetricsBucket = math.NaN() }, "metrics bucket"},
		{"negative metrics bucket", func(c *Config) { c.MetricsBucket = -600 }, "metrics bucket"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestRunSweepEnforcesValidate pins that both sweep entry points actually
// call Validate (after defaulting, so the zero Config still runs).
func TestRunSweepEnforcesValidate(t *testing.T) {
	bad := Config{Seeds: []uint64{7, 7}, Rates: []float64{0.1}}
	if _, err := bad.RunSweep("bad", SchedulingVariants("sort")[:1]); err == nil {
		t.Error("RunSweep accepted duplicate seeds")
	}
	if _, err := bad.RunMultiSweep("bad", MultiVariants("sort", 2, 60)); err == nil {
		t.Error("RunMultiSweep accepted duplicate seeds")
	}
	bad = Config{Scale: -1}
	if _, err := bad.RunSweep("bad", nil); err == nil {
		t.Error("RunSweep accepted negative scale")
	}
	// The defaulted zero config stays valid: an empty variant list must
	// return an empty sweep, not an error.
	if _, err := (Config{}).RunSweep("empty", nil); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
