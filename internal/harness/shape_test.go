package harness

import "testing"

// TestPaperShapesHold is the reproduction's regression guard: at reduced
// scale and the highest churn rate, the paper's qualitative claims must
// hold. Skipped under -short (it runs a dozen full simulations).
func TestPaperShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation shape check")
	}
	cfg := Config{Seeds: []uint64{1, 2}, Scale: 4, Rates: []float64{0.5}}

	t.Run("Fig4_MOONHybridBeatsHadoop", func(t *testing.T) {
		sw, err := cfg.Fig4("sort")
		if err != nil {
			t.Fatal(err)
		}
		hybrid := sw.Get("MOON-Hybrid", 0.5).Makespan
		for _, h := range []string{"Hadoop10Min", "Hadoop5Min"} {
			if got := sw.Get(h, 0.5).Makespan; hybrid >= got {
				t.Errorf("MOON-Hybrid (%.0f) not faster than %s (%.0f) at 0.5", hybrid, h, got)
			}
		}
		// Fig 5 from the same sweep: MOON must not out-duplicate the most
		// kill-happy Hadoop setting by more than its homestretch budget
		// (at 1/4 scale the proactive tail copies weigh more than at the
		// paper's full scale, where MOON is strictly below Hadoop1Min).
		if m, h := sw.Get("MOON", 0.5).Duplicated, sw.Get("Hadoop1Min", 0.5).Duplicated; m > 1.5*h {
			t.Errorf("MOON duplicates %.0f far exceed Hadoop1Min's %.0f", m, h)
		}
	})

	t.Run("Fig6_HABeatsVO1", func(t *testing.T) {
		// Only the two endpoints of the comparison, to bound runtime.
		vs := ReplicationVariants("sort")
		var subset []Variant
		for _, v := range vs {
			if v.Label == "VO-V1" || v.Label == "HA-V1" {
				subset = append(subset, v)
			}
		}
		sw, err := cfg.RunSweep("fig6 endpoints", subset)
		if err != nil {
			t.Fatal(err)
		}
		vo := sw.Get("VO-V1", 0.5)
		ha := sw.Get("HA-V1", 0.5)
		if ha.Makespan >= vo.Makespan {
			t.Errorf("HA-V1 (%.0f) not faster than VO-V1 (%.0f) at 0.5", ha.Makespan, vo.Makespan)
		}
		if ha.KilledMaps >= vo.KilledMaps {
			t.Errorf("HA-V1 killed maps (%.0f) not below VO-V1's (%.0f)", ha.KilledMaps, vo.KilledMaps)
		}
	})

	t.Run("Fig7_MOONBeatsHadoopVO", func(t *testing.T) {
		vs := OverallVariants("sort", 3)
		var subset []Variant
		for _, v := range vs {
			if v.Label == "Hadoop-VO" || v.Label == "MOON-HybridD6" {
				subset = append(subset, v)
			}
		}
		sw, err := cfg.RunSweep("fig7 endpoints", subset)
		if err != nil {
			t.Fatal(err)
		}
		moon := sw.Get("MOON-HybridD6", 0.5).Makespan
		hvo := sw.Get("Hadoop-VO", 0.5).Makespan
		if moon >= hvo {
			t.Errorf("MOON-HybridD6 (%.0f) not faster than Hadoop-VO (%.0f) at 0.5", moon, hvo)
		}
	})
}
