package harness

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// multiTestConfig keeps the multi-job sweep fast: heavily scaled jobs, two
// rates, two seeds.
func multiTestConfig() Config {
	return Config{Seeds: []uint64{1, 2}, Scale: 16, Rates: []float64{0.1, 0.5}}
}

// TestMultiSweepCompletes: the canonical multi-job experiment completes
// all jobs under both policies and reports coherent per-job makespans.
func TestMultiSweepCompletes(t *testing.T) {
	cfg := multiTestConfig()
	sw, err := cfg.Multi("sort", 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Variants) != 2 {
		t.Fatalf("variants %v", sw.Variants)
	}
	for _, v := range sw.Variants {
		for _, rate := range sw.Rates {
			st := sw.Get(v, rate)
			if st.Capped {
				t.Errorf("%s/%v capped", v, rate)
			}
			if st.Completed != 3 {
				t.Errorf("%s/%v completed %v, want 3", v, rate, st.Completed)
			}
			if len(st.JobMakespans) != 3 {
				t.Fatalf("%s/%v job makespans %v", v, rate, st.JobMakespans)
			}
			for i, mk := range st.JobMakespans {
				if mk <= 0 {
					t.Errorf("%s/%v job %d makespan %v", v, rate, i, mk)
				}
			}
			if st.Span <= 0 || st.Throughput <= 0 {
				t.Errorf("%s/%v span %v throughput %v", v, rate, st.Span, st.Throughput)
			}
		}
	}
}

// TestParallelMultiSweepMatchesSerial is the determinism guard for the
// multi-job experiment on the shared worker pool: identical cells,
// identical rendered tables, identically ordered progress lines at
// Parallelism 1 and 8.
func TestParallelMultiSweepMatchesSerial(t *testing.T) {
	base := multiTestConfig()
	variants := MultiVariants("sort", 3, 60)

	run := func(parallelism int) (*MultiSweep, []string) {
		cfg := base
		cfg.Parallelism = parallelism
		var progress []string
		cfg.Progress = func(s string) { progress = append(progress, s) }
		sw, err := cfg.RunMultiSweep("determinism", variants)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return sw, progress
	}

	serial, serialLines := run(1)
	parallel, parallelLines := run(8)

	for _, v := range serial.Variants {
		for _, r := range serial.Rates {
			a, b := serial.Get(v, r), parallel.Get(v, r)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("cell %s/%v differs:\nserial:   %+v\nparallel: %+v", v, r, a, b)
			}
		}
	}

	var bufA, bufB bytes.Buffer
	if err := serial.Render(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Render(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("rendered tables differ:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}

	if len(serialLines) != len(parallelLines) {
		t.Fatalf("progress line count: serial %d, parallel %d", len(serialLines), len(parallelLines))
	}
	for i := range serialLines {
		if serialLines[i] != parallelLines[i] {
			t.Errorf("progress line %d differs:\nserial:   %s\nparallel: %s", i, serialLines[i], parallelLines[i])
		}
	}
}

// TestFIFOFavorsEarlyJobsFairShareBalances: in the same staggered stream,
// FIFO gives the first job at least as good a makespan as fair-share does
// (it never shares slots away from the head of the queue). A cheap sanity
// check that the policy knob actually reaches the scheduler through every
// layer of the harness.
func TestFIFOFavorsEarlyJobsFairShareBalances(t *testing.T) {
	cfg := Config{Seeds: []uint64{1}, Scale: 16, Rates: []float64{0.3}}
	sw, err := cfg.Multi("sort", 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	fifo := sw.Get("MOON-fifo", 0.3)
	fair := sw.Get("MOON-fair", 0.3)
	if fifo.JobMakespans[0] > fair.JobMakespans[0]+1e-9 {
		t.Errorf("FIFO first-job makespan %v worse than fair-share %v",
			fifo.JobMakespans[0], fair.JobMakespans[0])
	}
	if math.IsNaN(fair.Throughput) || fair.Throughput <= 0 {
		t.Errorf("fair throughput %v", fair.Throughput)
	}
}
