package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/workload"
)

// baseCluster is the paper's main testbed: 60 volatile + 6 dedicated nodes
// (10:1 V-to-D ratio).
func baseCluster(cs core.ClusterSpec) core.ClusterSpec {
	cs.VolatileNodes = 60
	cs.DedicatedNodes = 6
	return cs
}

// appSpec returns the Table I workload by name ("sort" or "wordcount");
// reduce slots assume the 66-node fleet with 2 reduce slots per node.
func appSpec(app string) workload.Spec {
	switch app {
	case "sort":
		return workload.Sort(2 * 66)
	case "wordcount":
		return workload.WordCount()
	default:
		panic(fmt.Sprintf("harness: unknown app %q", app))
	}
}

// --- Figures 4 & 5: scheduling policies on the sleep app --------------------

// SchedulingVariants are the five lines of Figures 4 and 5: Hadoop with
// 10/5/1-minute TrackerExpiryIntervals, MOON without hybrid awareness, and
// MOON-Hybrid. All share the MOON data layer with intermediate data stored
// reliable {1,1}, isolating scheduling effects exactly as the paper does.
func SchedulingVariants(app string) []Variant {
	sleep := func() workload.Spec { return workload.SleepApp(appSpec(app)) }
	hadoop := func(expiry float64) func(core.ClusterSpec) (core.Options, workload.Spec) {
		return func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.HadoopPreset(baseCluster(cs), expiry)
			opts.DFS = dfs.DefaultConfig(dfs.ModeMOON) // shared data layer
			return opts, sleep()
		}
	}
	moon := func(hybrid bool) func(core.ClusterSpec) (core.Options, workload.Spec) {
		return func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			return core.MOONPreset(baseCluster(cs), hybrid), sleep()
		}
	}
	return []Variant{
		{Label: "Hadoop10Min", Build: hadoop(600)},
		{Label: "Hadoop5Min", Build: hadoop(300)},
		{Label: "Hadoop1Min", Build: hadoop(60)},
		{Label: "MOON", Build: moon(false)},
		{Label: "MOON-Hybrid", Build: moon(true)},
	}
}

// Fig4Title names the scheduling sweep; the scenario compiler uses the
// same string so file-driven runs render identically to flag runs.
func Fig4Title(app string) string {
	return fmt.Sprintf("Fig 4/5 (%s): scheduling policies", app)
}

// Fig4 sweeps the scheduling policies and reports execution time; the same
// sweep's duplicated-task counts are Figure 5.
func (c Config) Fig4(app string) (*Sweep, error) {
	return c.RunSweep(Fig4Title(app), SchedulingVariants(app))
}

// --- Figure 6 & Table II: intermediate-data replication ----------------------

// ReplicationVariants are the eight lines of Figure 6: volatile-only
// replication VO-V1..V5 and hybrid-aware HA-V1..V3. Scheduling is fixed at
// MOON-Hybrid; input/output replication is fixed at {1,3}.
func ReplicationVariants(app string) []Variant {
	mk := func(label string, factor dfs.Factor) Variant {
		return Variant{Label: label, Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts := core.MOONPreset(baseCluster(cs), true)
			w := appSpec(app)
			w.InputFactor = dfs.Factor{D: 1, V: 3}
			w.Job.IntermediateClass = dfs.Opportunistic
			w.Job.IntermediateFactor = factor
			w.Job.OutputFactor = dfs.Factor{D: 1, V: 3}
			return opts, w
		}}
	}
	var vs []Variant
	for v := 1; v <= 5; v++ {
		vs = append(vs, mk(fmt.Sprintf("VO-V%d", v), dfs.Factor{V: v}))
	}
	for v := 1; v <= 3; v++ {
		vs = append(vs, mk(fmt.Sprintf("HA-V%d", v), dfs.Factor{D: 1, V: v}))
	}
	return vs
}

// Fig6Title names the replication sweep (shared with Table II).
func Fig6Title(app string) string {
	return fmt.Sprintf("Fig 6 (%s): intermediate replication", app)
}

// Fig6 sweeps intermediate replication policies; Table II is read from the
// same sweep at the 0.5 unavailability rate.
func (c Config) Fig6(app string) (*Sweep, error) {
	return c.RunSweep(Fig6Title(app), ReplicationVariants(app))
}

// Table2Policies are the profile columns the paper prints.
var Table2Policies = []string{"VO-V1", "VO-V3", "VO-V5", "HA-V1"}

// --- Figure 7: overall MOON vs augmented Hadoop ------------------------------

// OverallVariants are Figure 7's lines: Hadoop-VO (all 66 machines treated
// volatile, 6 input/output replicas, volatile-only intermediate
// replication) against MOON-Hybrid with 3, 4 and 6 dedicated nodes
// ({1,3} input/output, HA {1,1} intermediate).
//
// hadoopVOIntermediate selects the VO degree for the baseline; the paper
// uses the best-performing VO configuration per test (VO-V3 is the
// consistent winner at high churn; see Fig 6).
func OverallVariants(app string, hadoopVOIntermediate int) []Variant {
	vs := []Variant{{
		Label: "Hadoop-VO",
		Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			cs = baseCluster(cs)
			cs.TreatAllVolatile = true
			// "Hadoop-VO" is the paper's *augmented* Hadoop: it reuses
			// the MOON data layer (that is what replicates intermediate
			// data and carries the §VI-B fetch-failure remedy — stock
			// Hadoop livelocks for hours at high churn) but treats every
			// machine as volatile and schedules with default Hadoop
			// policies (10-minute TrackerExpiry; the short expiry that
			// helps the sleep app kills long data-heavy reduces).
			opts := core.HadoopPreset(cs, 600)
			opts.DFS = dfs.DefaultConfig(dfs.ModeMOON)
			opts.Sched.FastFetchReaction = true
			w := appSpec(app)
			w.InputFactor = dfs.Factor{V: 6}
			w.Job.IntermediateFactor = dfs.Factor{V: hadoopVOIntermediate}
			w.Job.OutputFactor = dfs.Factor{V: 6}
			return opts, w
		},
	}}
	for _, d := range []int{3, 4, 6} {
		d := d
		vs = append(vs, Variant{
			Label: fmt.Sprintf("MOON-HybridD%d", d),
			Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
				cs.VolatileNodes = 60
				cs.DedicatedNodes = d
				opts := core.MOONPreset(cs, true)
				w := appSpec(app)
				w.InputFactor = dfs.Factor{D: 1, V: 3}
				w.Job.IntermediateFactor = dfs.Factor{D: 1, V: 1}
				w.Job.OutputFactor = dfs.Factor{D: 1, V: 3}
				return opts, w
			},
		})
	}
	return vs
}

// Fig7Title names the overall comparison sweep.
func Fig7Title(app string) string {
	return fmt.Sprintf("Fig 7 (%s): MOON vs Hadoop-VO", app)
}

// Fig7 sweeps the overall comparison.
func (c Config) Fig7(app string) (*Sweep, error) {
	return c.RunSweep(Fig7Title(app), OverallVariants(app, 3))
}
