package harness

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestParallelSweepMatchesSerial is the determinism guard for the worker
// pool: a multi-seed Fig4-style sweep must produce identical RunStats,
// identical rendered tables, and identically ordered progress lines at
// Parallelism 1 and 8.
func TestParallelSweepMatchesSerial(t *testing.T) {
	base := Config{Seeds: []uint64{1, 2, 3}, Scale: 16, Rates: []float64{0.1, 0.5}}
	variants := SchedulingVariants("sort")[2:4] // Hadoop1Min, MOON

	run := func(parallelism int) (*Sweep, []string) {
		cfg := base
		cfg.Parallelism = parallelism
		var progress []string
		cfg.Progress = func(s string) { progress = append(progress, s) }
		sw, err := cfg.RunSweep("determinism", variants)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return sw, progress
	}

	serial, serialLines := run(1)
	parallel, parallelLines := run(8)

	for _, v := range serial.Variants {
		for _, r := range serial.Rates {
			a, b := serial.Get(v, r), parallel.Get(v, r)
			if a != b {
				t.Errorf("cell %s/%v differs:\nserial:   %+v\nparallel: %+v", v, r, a, b)
			}
		}
	}

	var bufA, bufB bytes.Buffer
	if err := serial.RenderTimes(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := parallel.RenderTimes(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("rendered tables differ:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}

	if len(serialLines) != len(parallelLines) {
		t.Fatalf("progress line count: serial %d, parallel %d", len(serialLines), len(parallelLines))
	}
	for i := range serialLines {
		if serialLines[i] != parallelLines[i] {
			t.Errorf("progress line %d differs:\nserial:   %s\nparallel: %s", i, serialLines[i], parallelLines[i])
		}
	}
}

// TestSeedRepeatability: the same seed must give a bit-identical makespan
// across repeated (and concurrent) sweeps.
func TestSeedRepeatability(t *testing.T) {
	cfg := Config{Seeds: []uint64{7}, Scale: 16, Rates: []float64{0.3}, Parallelism: 4}
	variants := SchedulingVariants("sort")[3:4] // MOON

	first, err := cfg.RunSweep("repeat-a", variants)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cfg.RunSweep("repeat-b", variants)
	if err != nil {
		t.Fatal(err)
	}
	a := first.Get("MOON", 0.3).Makespan
	b := second.Get("MOON", 0.3).Makespan
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("same seed produced different makespans: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("makespan %v, want > 0", a)
	}
}

// TestEmptySweep: no variants means an empty, error-free sweep at any
// parallelism.
func TestEmptySweep(t *testing.T) {
	cfg := Config{Seeds: []uint64{1}, Scale: 16, Rates: []float64{0.1}, Parallelism: 8}
	sw, err := cfg.RunSweep("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Variants) != 0 {
		t.Fatalf("variants %v, want none", sw.Variants)
	}
}

// TestSweepErrorSelection: the reported error is the first failing cell in
// serial order, independent of worker scheduling.
func TestSweepErrorSelection(t *testing.T) {
	bad := func(label string) Variant {
		v := SchedulingVariants("sort")[3]
		v.Label = label
		build := v.Build
		v.Build = func(cs core.ClusterSpec) (core.Options, workload.Spec) {
			opts, w := build(cs)
			w.Job.MapCPU = -1 // fails job validation inside the run
			return opts, w
		}
		return v
	}
	cfg := Config{Seeds: []uint64{1, 2}, Scale: 16, Rates: []float64{0.1}, Parallelism: 8}
	_, err := cfg.RunSweep("errors", []Variant{bad("BAD-A"), bad("BAD-B")})
	if err == nil {
		t.Fatal("sweep with invalid workload did not fail")
	}
	want := "BAD-A rate=0.1 seed=1"
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("error %q does not name the first failing cell %q", got, want)
	}
}
