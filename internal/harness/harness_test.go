package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast: 1 seed, 1/16-scale workloads, two
// churn rates.
func tinyConfig() Config {
	return Config{Seeds: []uint64{1}, Scale: 16, Rates: []float64{0.1, 0.5}}
}

func TestSchedulingVariantsComplete(t *testing.T) {
	vs := SchedulingVariants("sort")
	if len(vs) != 5 {
		t.Fatalf("got %d scheduling variants", len(vs))
	}
	labels := map[string]bool{}
	for _, v := range vs {
		labels[v.Label] = true
	}
	for _, want := range []string{"Hadoop10Min", "Hadoop5Min", "Hadoop1Min", "MOON", "MOON-Hybrid"} {
		if !labels[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
}

func TestReplicationVariantsComplete(t *testing.T) {
	vs := ReplicationVariants("wordcount")
	if len(vs) != 8 {
		t.Fatalf("got %d replication variants, want 8 (VO-V1..5, HA-V1..3)", len(vs))
	}
}

func TestOverallVariantsComplete(t *testing.T) {
	vs := OverallVariants("sort", 3)
	if len(vs) != 4 {
		t.Fatalf("got %d overall variants", len(vs))
	}
	if vs[0].Label != "Hadoop-VO" {
		t.Fatalf("first variant %s, want Hadoop-VO", vs[0].Label)
	}
}

func TestUnknownAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown app did not panic")
		}
	}()
	appSpec("nosuch")
}

func TestRunSweepAndRender(t *testing.T) {
	cfg := tinyConfig()
	var progress []string
	cfg.Progress = func(s string) { progress = append(progress, s) }
	sw, err := cfg.RunSweep("test sweep", SchedulingVariants("sort")[2:4]) // Hadoop1Min, MOON
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Variants) != 2 || len(sw.Rates) != 2 {
		t.Fatalf("sweep shape %dx%d", len(sw.Variants), len(sw.Rates))
	}
	if len(progress) != 4 {
		t.Fatalf("progress lines %d, want 4", len(progress))
	}
	for _, v := range sw.Variants {
		for _, r := range sw.Rates {
			st := sw.Get(v, r)
			if st.Runs != 1 || st.Makespan <= 0 {
				t.Fatalf("cell %s/%v = %+v", v, r, st)
			}
		}
	}
	var buf bytes.Buffer
	if err := sw.RenderTimes(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Hadoop1Min") || !strings.Contains(out, "0.5") {
		t.Fatalf("times table malformed:\n%s", out)
	}
	buf.Reset()
	if err := sw.RenderDuplicates(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "duplicated tasks") {
		t.Fatal("duplicates table missing header")
	}
}

func TestSweepBest(t *testing.T) {
	sw := &Sweep{
		Variants: []string{"VO-V1", "VO-V2", "HA-V1"},
		Rates:    []float64{0.5},
		Cells: map[string]map[float64]RunStats{
			"VO-V1": {0.5: {Makespan: 300}},
			"VO-V2": {0.5: {Makespan: 200}},
			"HA-V1": {0.5: {Makespan: 100}},
		},
	}
	label, st := sw.Best("VO", 0.5)
	if label != "VO-V2" || st.Makespan != 200 {
		t.Fatalf("Best(VO) = %s/%v", label, st.Makespan)
	}
	label, _ = sw.Best("HA", 0.5)
	if label != "HA-V1" {
		t.Fatalf("Best(HA) = %s", label)
	}
	if label, _ := sw.Best("ZZ", 0.5); label != "" {
		t.Fatalf("Best(ZZ) = %q, want empty", label)
	}
}

func TestRenderTable2(t *testing.T) {
	sw := &Sweep{
		Variants: Table2Policies,
		Rates:    []float64{0.5},
		Cells:    map[string]map[float64]RunStats{},
	}
	for i, p := range Table2Policies {
		sw.Cells[p] = map[float64]RunStats{0.5: {
			AvgMapTime: float64(20 + i), AvgShuffleTime: 100, AvgReduceTime: 50,
			KilledMaps: float64(10 * i), KilledReduces: 1,
		}}
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, "sort", sw); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Avg Map Time", "Avg Shuffle Time", "Avg #Killed Maps", "VO-V1", "HA-V1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DAY1", "DAY7", "09:00", "average unavailability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig1 output missing %q", want)
		}
	}
}

func TestCappedRendering(t *testing.T) {
	sw := &Sweep{
		Variants: []string{"X"},
		Rates:    []float64{0.5},
		Cells:    map[string]map[float64]RunStats{"X": {0.5: {Makespan: 28800, Capped: true}}},
	}
	var buf bytes.Buffer
	if err := sw.RenderTimes(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ">28800") {
		t.Fatalf("capped cell not marked: %s", buf.String())
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Rates) != 3 || cfg.Scale != 1 || len(cfg.Seeds) != 1 {
		t.Fatalf("default config %+v", cfg)
	}
	var zero Config
	z := zero.withDefaults()
	if len(z.Rates) == 0 || z.Scale == 0 || len(z.Seeds) == 0 {
		t.Fatalf("withDefaults left zeros: %+v", z)
	}
}
