package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/engine"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// LiveConfig shapes a live-engine sweep cell: the goroutine worker pool,
// the trace-compressed churn replay, and the job stream each cell
// executes for real (actual word counting, not a resource model). The
// sweep axes — rates, seeds, parallelism, metrics — come from the shared
// harness Config, so live sweeps fan out over the same worker pool as the
// simulated ones.
type LiveConfig struct {
	// VolatileWorkers can be suspended by the churn traces;
	// DedicatedWorkers never churn.
	VolatileWorkers  int
	DedicatedWorkers int
	// NoDedicatedReplication disables MOON's hybrid-aware intermediate
	// replication (the inverted spelling keeps the zero LiveConfig on the
	// documented default: map outputs are replicated to a dedicated
	// worker, so churn recovers from the copy instead of re-executing).
	NoDedicatedReplication bool

	// HorizonSeconds is the churn-trace length in simulated seconds; the
	// sweep's rate drives each trace's unavailable fraction exactly like
	// the simulator's cluster layer.
	HorizonSeconds float64
	// Compression maps one simulated trace second to this much wall time
	// (e.g. time.Millisecond turns a 120 s trace into 120 ms of churn).
	Compression time.Duration

	// Jobs is the number of concurrently submitted jobs per cell; each is
	// a real word-count over deterministic synthetic text.
	Jobs int
	// SplitsPerJob / WordsPerSplit / ReducesPerJob size each job.
	SplitsPerJob  int
	WordsPerSplit int
	ReducesPerJob int

	// Arrivals selects the cell's submission process: "" submits every
	// job together (the historical default), "staggered" spaces
	// submissions ArrivalInterval simulated seconds apart, "poisson"
	// draws exponential inter-arrivals with mean ArrivalInterval from
	// ArrivalSeed (first job at t=0, like workload.PoissonArrivals).
	// Offsets are simulated seconds, wall-clock compressed by
	// Compression exactly like the churn traces.
	Arrivals        string
	ArrivalInterval float64
	ArrivalSeed     uint64

	// Timeout bounds one cell's wall-clock execution.
	Timeout time.Duration

	// ShardWorkers bounds the worker pool each cell's churn-trace
	// generation fans across (the live engine itself is already one
	// goroutine per worker). 0 uses one worker per CPU, 1 forces serial;
	// the generated traces are byte-identical at any setting.
	ShardWorkers int

	// Link tunes the engine's failure-handling protocol (per-operation
	// timeouts, retries, lease and session clocks); zero fields inherit
	// the engine defaults.
	Link transport.LinkConfig
	// Faults, when non-nil, runs every cell's cluster over a
	// fault-injecting transport (seeded drops, duplicates, delays,
	// connection resets, timed partitions). Nil keeps the lossless
	// loopback fabric.
	Faults *transport.FaultConfig
}

// DefaultLiveConfig returns a small hybrid pool replaying 120 simulated
// seconds of churn per millisecond-compressed cell, three concurrent jobs.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{
		VolatileWorkers:  4,
		DedicatedWorkers: 1,
		HorizonSeconds:   120,
		Compression:      time.Millisecond,
		Jobs:             3,
		SplitsPerJob:     8,
		WordsPerSplit:    400,
		ReducesPerJob:    3,
		Timeout:          2 * time.Minute,
	}
}

// Validate builds the engine configuration exactly as a cell would and
// runs its validation, so link/fault mistakes (heartbeat not shorter than
// the suspension timeout, malformed rates or partition windows) surface at
// compile time rather than mid-sweep.
func (lc LiveConfig) Validate() error {
	lc = lc.withDefaults()
	switch lc.Arrivals {
	case "", "staggered", "poisson":
	default:
		return fmt.Errorf("harness: unknown live arrival process %q (want staggered or poisson)", lc.Arrivals)
	}
	if lc.Arrivals != "" && lc.ArrivalInterval < 0 {
		return fmt.Errorf("harness: live arrival interval %v must be >= 0", lc.ArrivalInterval)
	}
	ecfg := engine.DefaultConfig()
	ecfg.VolatileWorkers = lc.VolatileWorkers
	ecfg.DedicatedWorkers = lc.DedicatedWorkers
	ecfg.ReplicateToDedicated = !lc.NoDedicatedReplication
	ecfg.Link = lc.Link
	ecfg.Faults = lc.Faults
	return ecfg.Validate()
}

func (lc LiveConfig) withDefaults() LiveConfig {
	d := DefaultLiveConfig()
	if lc.VolatileWorkers == 0 && lc.DedicatedWorkers == 0 {
		lc.VolatileWorkers, lc.DedicatedWorkers = d.VolatileWorkers, d.DedicatedWorkers
	}
	if lc.HorizonSeconds == 0 {
		lc.HorizonSeconds = d.HorizonSeconds
	}
	if lc.Compression == 0 {
		lc.Compression = d.Compression
	}
	if lc.Jobs == 0 {
		lc.Jobs = d.Jobs
	}
	if lc.SplitsPerJob == 0 {
		lc.SplitsPerJob = d.SplitsPerJob
	}
	if lc.WordsPerSplit == 0 {
		lc.WordsPerSplit = d.WordsPerSplit
	}
	if lc.ReducesPerJob == 0 {
		lc.ReducesPerJob = d.ReducesPerJob
	}
	if lc.Timeout == 0 {
		lc.Timeout = d.Timeout
	}
	return lc
}

// LiveVariant is one policy line of a live sweep: the arbitration policy
// every cell of the line runs under, with optional per-job weights
// ("weighted") or priorities ("priority"). Job names are live-j0 ..
// live-j<n-1>, the keys Weights and Priorities use.
type LiveVariant struct {
	Label      string
	Policy     string
	Weights    map[string]float64
	Priorities map[string]int
}

// LiveVariants builds one variant line per policy name (default when
// empty: fifo vs fair, mirroring the simulator's multi-job default).
// Names are canonicalized first, so alias spellings ("weighted-fair",
// "strict-priority") still carry their weights/priorities; a name that
// does not resolve passes through and fails hard in the engine's config
// validation at run time.
func LiveVariants(policies []string, weights map[string]float64, priorities map[string]int) []LiveVariant {
	if len(policies) == 0 {
		policies = []string{"fifo", "fair"}
	}
	var out []LiveVariant
	for _, p := range policies {
		if pol, err := mapred.JobPolicyByName(p); err == nil {
			p = pol.Name()
		}
		v := LiveVariant{Label: "live-" + p, Policy: p}
		if p == "weighted" {
			v.Weights = weights
		}
		if p == "priority" {
			v.Priorities = priorities
		}
		out = append(out, v)
	}
	return out
}

// LiveStats is a seed-averaged live cell outcome. Times are wall-clock
// seconds (the engine executes for real), so unlike simulated cells the
// numbers carry scheduling jitter; the shape — FIFO serializing, fair
// interleaving, backups under churn — is what the sweep demonstrates.
type LiveStats struct {
	// JobMakespans and JobQueueWaits hold each job's seed-averaged
	// submission→completion and submission→first-launch times, in
	// submission order.
	JobMakespans  []float64
	JobQueueWaits []float64
	// Span is first submission → last completion; Completed counts
	// finished jobs (all of them, unless a cell timed out).
	Span      float64
	Completed float64
	// Attempt totals across the cell's jobs.
	MapAttempts    float64
	ReduceAttempts float64
	BackupCopies   float64
	MapReexecs     float64
	FetchFailures  float64
	Runs           int
}

// LiveSweep is a complete live-engine experiment: variant × rate → stats.
type LiveSweep struct {
	Title    string
	Variants []string
	Rates    []float64
	Cells    map[string]map[float64]LiveStats
	// Metrics holds one seed-averaged snapshot per cell when the sweep
	// ran with Config.MetricsBucket > 0 (nil otherwise).
	Metrics map[string]map[float64]metrics.Snapshot
}

// Get returns the stats for a variant/rate cell.
func (sw *LiveSweep) Get(label string, rate float64) LiveStats { return sw.Cells[label][rate] }

// AppendMetrics adds the sweep's collected cell reports to an Export, one
// Experiment entry per (variant, rate) in sweep order.
func (sw *LiveSweep) AppendMetrics(e *metrics.Export, runs int) {
	appendCellMetrics(e, sw.Title, sw.Variants, sw.Rates, sw.Metrics, runs)
}

// liveOutcome is one live cell's result plus its metrics snapshot.
type liveOutcome struct {
	stats LiveStats
	snap  metrics.Snapshot
}

// liveWordCountJob builds job i of a live cell: a real word count over
// deterministic synthetic text (seeded per job, so every seed and backend
// reruns the identical corpus).
func liveWordCountJob(i int, lc LiveConfig) engine.Job {
	vocab := []string{"moon", "map", "reduce", "volunteer", "hadoop", "churn", "node", "data",
		"shuffle", "backup", "hybrid", "dedicated"}
	inputs := make([]string, lc.SplitsPerJob)
	for s := range inputs {
		var b strings.Builder
		for w := 0; w < lc.WordsPerSplit; w++ {
			b.WriteString(vocab[(i*17+s*31+w*7)%len(vocab)])
			b.WriteByte(' ')
		}
		inputs[s] = b.String()
	}
	return engine.Job{
		Name:    fmt.Sprintf("live-j%d", i),
		Inputs:  inputs,
		Reduces: lc.ReducesPerJob,
		Map: func(input string, emit func(k, v string)) {
			for _, w := range strings.Fields(input) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string) string {
			return fmt.Sprintf("%d", len(values))
		},
	}
}

// arrivalOffsets returns each job's submission offset in simulated
// seconds under the configured arrival process (all zero when jobs are
// submitted together). Poisson offsets mirror workload.PoissonArrivals:
// first job at t=0, seeded exponential inter-arrivals after it.
func (lc LiveConfig) arrivalOffsets() []float64 {
	off := make([]float64, lc.Jobs)
	switch lc.Arrivals {
	case "staggered":
		for i := range off {
			off[i] = float64(i) * lc.ArrivalInterval
		}
	case "poisson":
		if lc.ArrivalInterval <= 0 {
			break
		}
		r := rng.New(lc.ArrivalSeed)
		t := 0.0
		for i := range off {
			if i > 0 {
				t += r.Exponential(lc.ArrivalInterval)
			}
			off[i] = t
		}
	}
	return off
}

// runLiveSeed executes one live sweep cell: its own engine cluster, its
// own churn traces (seeded like the simulator's cluster layer), its own
// collector — cells share nothing, so the fanOut pool runs them
// concurrently like any simulated cell.
func (c Config) runLiveSeed(lc LiveConfig, v LiveVariant, rate float64, seed uint64) (liveOutcome, string, error) {
	fail := func(err error) (liveOutcome, string, error) {
		return liveOutcome{}, "", fmt.Errorf("%s rate=%.1f seed=%d: %w", v.Label, rate, seed, err)
	}
	traces, err := trace.GenerateFleetOn(sim.NewShardPool(lc.ShardWorkers),
		rng.New(seed), trace.DefaultOutageConfig(rate), lc.HorizonSeconds, lc.VolatileWorkers)
	if err != nil {
		return fail(err)
	}

	ecfg := engine.DefaultConfig()
	ecfg.VolatileWorkers = lc.VolatileWorkers
	ecfg.DedicatedWorkers = lc.DedicatedWorkers
	ecfg.ReplicateToDedicated = !lc.NoDedicatedReplication
	ecfg.JobPolicy = v.Policy
	ecfg.JobWeights = v.Weights
	ecfg.Link = lc.Link
	ecfg.Faults = lc.Faults
	var col *metrics.Collector
	if c.MetricsBucket > 0 {
		col = metrics.New(c.MetricsBucket)
		col.SetSink(c.MetricsSink)
		ecfg.Metrics = col
	}
	cl, err := engine.New(ecfg)
	if err != nil {
		return fail(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), lc.Timeout)
	defer cancel()

	churnDone := make(chan struct{})
	go func() {
		engine.NewChurnRunner(cl, lc.Compression).PlayFleet(ctx, traces)
		close(churnDone)
	}()

	start := time.Now()
	offsets := lc.arrivalOffsets()
	handles := make([]*engine.JobHandle, lc.Jobs)
	submitted := make([]time.Time, lc.Jobs)
	for i := 0; i < lc.Jobs; i++ {
		// Hold each submission to its arrival offset, wall-clock
		// compressed like the churn replay.
		at := time.Duration(offsets[i] * float64(lc.Compression))
		if wait := at - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return fail(ctx.Err())
			}
		}
		job := liveWordCountJob(i, lc)
		job.Priority = v.Priorities[job.Name]
		submitted[i] = time.Now()
		if handles[i], err = cl.Submit(job); err != nil {
			return fail(err)
		}
	}

	st := LiveStats{Runs: 1}
	var last time.Time
	for i, h := range handles {
		_, prof, err := h.Wait(ctx)
		if err != nil {
			return fail(fmt.Errorf("job %d: %w", i, err))
		}
		st.JobMakespans = append(st.JobMakespans, prof.Makespan.Seconds())
		st.JobQueueWaits = append(st.JobQueueWaits, prof.QueueWait.Seconds())
		st.Completed++
		st.MapAttempts += float64(prof.Stats.MapAttempts)
		st.ReduceAttempts += float64(prof.Stats.ReduceAttempts)
		st.BackupCopies += float64(prof.Stats.BackupCopies)
		st.MapReexecs += float64(prof.Stats.MapReexecs)
		st.FetchFailures += float64(prof.Stats.FetchFailures)
		// Span is first submission → last completion: each job's end is
		// anchored to its own (possibly offset) submission time.
		if end := submitted[i].Add(prof.Makespan); end.After(last) {
			last = end
		}
	}
	st.Span = last.Sub(start).Seconds()
	cancel() // stop churn replay; workers resume
	<-churnDone

	out := liveOutcome{stats: st}
	if col != nil {
		// Retire in-flight backup attempts, then stop the master so the
		// collector is safe to snapshot.
		drainCtx, drainCancel := context.WithTimeout(context.Background(), lc.Timeout)
		_ = cl.Drain(drainCtx)
		drainCancel()
		cl.Close()
		out.snap = col.Snapshot()
	}
	progress := ""
	if c.Progress != nil {
		progress = fmt.Sprintf("%-14s rate=%.1f seed=%d span=%.3fs done=%d/%d backups=%.0f reexecs=%.0f",
			v.Label, rate, seed, st.Span, int(st.Completed), lc.Jobs, st.BackupCopies, st.MapReexecs)
	}
	return out, progress, nil
}

// mergeLiveSeeds folds per-seed live runs into the averaged cell, in seed
// order.
func mergeLiveSeeds(runs []LiveStats) LiveStats {
	var st LiveStats
	for _, r := range runs {
		if st.JobMakespans == nil {
			st.JobMakespans = make([]float64, len(r.JobMakespans))
			st.JobQueueWaits = make([]float64, len(r.JobQueueWaits))
		}
		for i := range r.JobMakespans {
			st.JobMakespans[i] += r.JobMakespans[i]
			st.JobQueueWaits[i] += r.JobQueueWaits[i]
		}
		st.Span += r.Span
		st.Completed += r.Completed
		st.MapAttempts += r.MapAttempts
		st.ReduceAttempts += r.ReduceAttempts
		st.BackupCopies += r.BackupCopies
		st.MapReexecs += r.MapReexecs
		st.FetchFailures += r.FetchFailures
		st.Runs += r.Runs
	}
	n := float64(st.Runs)
	for i := range st.JobMakespans {
		st.JobMakespans[i] /= n
		st.JobQueueWaits[i] /= n
	}
	st.Span /= n
	st.Completed /= n
	st.MapAttempts /= n
	st.ReduceAttempts /= n
	st.BackupCopies /= n
	st.MapReexecs /= n
	st.FetchFailures /= n
	return st
}

// RunLiveSweep evaluates every live variant at every churn rate across
// every seed on the shared fanOut pool: the live-engine counterpart of
// RunSweep/RunMultiSweep. Every cell owns a fresh engine cluster and
// replays its own trace-compressed churn, so cells are independent;
// because the engine executes in wall-clock time, cell *statistics* are
// not byte-reproducible — only the sweep structure (cells, ordering,
// fail-fast error selection) matches the simulated sweeps.
func (c Config) RunLiveSweep(title string, lc LiveConfig, variants []LiveVariant) (*LiveSweep, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	lc = lc.withDefaults()
	sw := &LiveSweep{Title: title, Rates: c.Rates, Cells: make(map[string]map[float64]LiveStats)}
	for _, v := range variants {
		sw.Variants = append(sw.Variants, v.Label)
		sw.Cells[v.Label] = make(map[float64]LiveStats)
	}
	cells := c.sweepCells(len(variants))
	if len(cells) == 0 {
		return sw, nil
	}

	results, err := fanOut(c, len(cells), func(i int) (liveOutcome, string, error) {
		cell := cells[i]
		return c.runLiveSeed(lc, variants[cell.variant], cell.rate, cell.seed)
	})
	if err != nil {
		return nil, err
	}

	sw.Cells, sw.Metrics = assembleCells(c, sw.Variants, results,
		func(o liveOutcome) (LiveStats, metrics.Snapshot) { return o.stats, o.snap }, mergeLiveSeeds)
	return sw, nil
}

// Render prints the live matrix: one row per (rate, variant) with span,
// completions, attempt totals and each job's makespan (queue wait in
// parentheses), wall-clock seconds.
func (sw *LiveSweep) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — wall-clock span / per-job makespan (queue wait), seconds\n", sw.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "unavail\tpolicy\tspan\tdone\tmaps\tbackups\treexecs\tper-job makespan (wait)")
	for _, rate := range sw.Rates {
		for _, v := range sw.Variants {
			st := sw.Cells[v][rate]
			fmt.Fprintf(tw, "%.1f\t%s\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f",
				rate, v, st.Span, st.Completed, st.MapAttempts, st.BackupCopies, st.MapReexecs)
			for i, mk := range st.JobMakespans {
				sep := "\t"
				if i > 0 {
					sep = " "
				}
				fmt.Fprintf(tw, "%s%.3f(%.3f)", sep, mk, st.JobQueueWaits[i])
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}
