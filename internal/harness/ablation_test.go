package harness

import (
	"strings"
	"testing"
)

func TestAblationVariantCatalogs(t *testing.T) {
	if got := len(AblationHomestretch()); got != 5 {
		t.Fatalf("homestretch variants %d, want 5", got)
	}
	if got := len(AblationSpecCap()); got != 4 {
		t.Fatalf("speccap variants %d, want 4", got)
	}
	if got := len(AblationHibernate("sort")); got != 4 {
		t.Fatalf("hibernate variants %d, want 4", got)
	}
	if got := len(AblationAdaptiveV("wordcount")); got != 3 {
		t.Fatalf("adaptive variants %d, want 3", got)
	}
	if got := len(CorrelatedVariants("sort")); got != 3 {
		t.Fatalf("correlated variants %d, want 3", got)
	}
}

func TestRunAblationUnknownName(t *testing.T) {
	_, err := DefaultConfig().RunAblation("nosuch", "sort")
	if err == nil || !strings.Contains(err.Error(), "unknown ablation") {
		t.Fatalf("err = %v", err)
	}
}

func TestAblationSweepTiny(t *testing.T) {
	// One homestretch variant at tiny scale proves the Build functions
	// produce runnable stacks.
	cfg := Config{Seeds: []uint64{1}, Scale: 16, Rates: []float64{0.3}}
	sw, err := cfg.RunSweep("tiny", AblationHomestretch()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sw.Variants {
		if sw.Get(v, 0.3).Makespan <= 0 {
			t.Fatalf("variant %s produced no makespan", v)
		}
	}
}

func TestCorrelatedSweepTiny(t *testing.T) {
	cfg := Config{Seeds: []uint64{1}, Scale: 16, Rates: []float64{0.1}}
	sw, err := cfg.RunCorrelated("sort")
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Variants) != 3 {
		t.Fatalf("variants %v", sw.Variants)
	}
	for _, v := range sw.Variants {
		st := sw.Get(v, 0.1)
		if st.Makespan <= 0 {
			t.Fatalf("variant %s produced no makespan", v)
		}
	}
}
