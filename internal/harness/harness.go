// Package harness defines and runs the paper's experiments: every figure
// and table of the evaluation section (Figures 1, 4, 5, 6, 7 and Table II)
// maps to one experiment that sweeps the same configurations the authors
// swept and prints the same rows/series they report.
//
// Sweeps are embarrassingly parallel: every (variant, rate, seed) cell is an
// independent single-threaded simulation sharing no state with its siblings,
// so RunSweep fans the cells out over a bounded worker pool and reassembles
// the results in the serial order. Output — cell statistics, progress lines,
// and error selection — is byte-identical at every Parallelism setting.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Config controls experiment execution.
type Config struct {
	// Seeds lists the churn realizations to average over.
	Seeds []uint64
	// Scale divides workload size (maps, reduces, input) for quick runs;
	// 1 reproduces the paper's full Table I sizes.
	Scale int
	// Rates are the machine-unavailability rates to sweep.
	Rates []float64
	// Parallelism bounds how many simulations run concurrently in a
	// sweep: 0 (the default) uses runtime.GOMAXPROCS(0), 1 runs serially.
	// Results are deterministic at any setting.
	Parallelism int
	// ShardWorkers bounds the worker pool *inside* each simulation: the
	// parallel phases (trace generation, netmodel settle sweeps, heartbeat
	// slot scans) fan across it. 0 uses one worker per CPU, 1 forces
	// serial; results are byte-identical at any setting. Sweeps of many
	// small runs should leave this at 1 (set by the sweep CLIs) and spend
	// the cores on Parallelism instead; single big runs want the reverse.
	ShardWorkers int
	// Progress, when non-nil, receives one line per completed run, in the
	// serial (variant, rate, seed) order regardless of Parallelism. It may
	// be invoked from worker goroutines, but never concurrently.
	Progress func(string)
	// MetricsBucket, when > 0, attaches a metrics.Collector with this
	// series bucket width (seconds) to every run; the per-seed snapshots
	// are merged into one seed-averaged report per (variant, rate) cell
	// on Sweep.Metrics / MultiSweep.Metrics. Collection never perturbs a
	// run: cell statistics are byte-identical with metrics on or off
	// (pinned in regression_test.go).
	MetricsBucket float64
	// MetricsSink, when non-nil (and MetricsBucket > 0), receives every
	// cell collector's instrument writes as they happen — the live
	// streaming feed the service's /v1/events endpoint fans out. Cells
	// run concurrently, so the sink must be safe for concurrent pushes
	// (metrics.StreamSink is). Streaming never changes what a collector
	// records.
	MetricsSink metrics.Sink
}

// DefaultConfig mirrors the paper's sweep with a single seed.
func DefaultConfig() Config {
	return Config{Seeds: []uint64{1}, Scale: 1, Rates: []float64{0.1, 0.3, 0.5}}
}

func (c Config) withDefaults() Config {
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.1, 0.3, 0.5}
	}
	return c
}

// Validate rejects sweep configurations that would silently produce garbage
// instead of the paper's matrices: NaN or out-of-range unavailability
// rates, zero or duplicate churn seeds (a duplicate seed double-counts one
// realization in every averaged cell), a negative scale divisor, and a
// non-finite metrics bucket. RunSweep and RunMultiSweep enforce it after
// defaulting, so the zero Config stays valid.
func (c Config) Validate() error {
	for _, r := range c.Rates {
		if math.IsNaN(r) || r < 0 || r >= 1 {
			return fmt.Errorf("harness: unavailability rate %v outside [0,1)", r)
		}
	}
	seen := make(map[uint64]bool, len(c.Seeds))
	for _, s := range c.Seeds {
		if s == 0 {
			return fmt.Errorf("harness: seed 0 (seeds must be >= 1)")
		}
		if seen[s] {
			return fmt.Errorf("harness: duplicate seed %d", s)
		}
		seen[s] = true
	}
	if c.Scale < 1 {
		return fmt.Errorf("harness: scale %d (want >= 1)", c.Scale)
	}
	if math.IsNaN(c.MetricsBucket) || c.MetricsBucket < 0 {
		return fmt.Errorf("harness: metrics bucket %v (want >= 0)", c.MetricsBucket)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("harness: shard workers %d (want >= 0)", c.ShardWorkers)
	}
	return nil
}

// workers returns the effective pool size for n jobs.
func (c Config) workers(n int) int {
	p := c.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// RunStats is a seed-averaged run outcome.
type RunStats struct {
	Makespan float64
	// Capped marks runs that hit the simulation horizon before the job
	// finished (the paper's "could not complete" cases); Makespan is
	// then the horizon.
	Capped bool

	AvgMapTime     float64
	AvgShuffleTime float64
	AvgReduceTime  float64
	KilledMaps     float64
	KilledReduces  float64
	Duplicated     float64
	Invalidations  float64

	ReplicationBytes float64
	Runs             int
}

// Variant is one configuration line in a figure (e.g. "Hadoop1Min" or
// "HA-V1"). Build returns the stack options and workload for a given
// cluster spec; the harness fills in churn rate and seed.
type Variant struct {
	Label string
	Build func(cs core.ClusterSpec) (core.Options, workload.Spec)
}

// runOne executes a single simulation.
func runOne(opts core.Options, w workload.Spec) (core.Result, error) {
	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		return core.Result{}, err
	}
	return s.RunWorkload(w)
}

// seedOutcome is one sweep cell's result: the run statistics plus the
// run's metrics snapshot (zero when collection is off).
type seedOutcome struct {
	stats RunStats
	snap  metrics.Snapshot
}

// runSeed executes the simulation for one sweep cell, returning the cell's
// stats and its formatted progress line ("" when Progress is nil). It is
// safe to call from multiple goroutines: every simulation owns its clock,
// rng, cluster, runtime and metrics collector, and shares nothing.
func (c Config) runSeed(v Variant, rate float64, seed uint64) (seedOutcome, string, error) {
	cs := core.ClusterSpec{UnavailabilityRate: rate, Seed: seed}
	opts, w := v.Build(cs)
	opts.ShardWorkers = c.ShardWorkers
	w = workload.Scale(w, c.Scale)
	var col *metrics.Collector
	if c.MetricsBucket > 0 {
		col = metrics.New(c.MetricsBucket)
		col.SetSink(c.MetricsSink)
		opts.Metrics = col
	}
	res, err := runOne(opts, w)
	if err != nil {
		return seedOutcome{}, "", fmt.Errorf("%s rate=%.1f seed=%d: %w", v.Label, rate, seed, err)
	}
	p := res.Profile
	st := RunStats{
		Makespan:         p.Makespan,
		AvgMapTime:       p.AvgMapTime,
		AvgShuffleTime:   p.AvgShuffleTime,
		AvgReduceTime:    p.AvgReduceTime,
		KilledMaps:       float64(p.KilledMaps),
		KilledReduces:    float64(p.KilledReduces),
		Duplicated:       float64(p.DuplicatedTasks),
		Invalidations:    float64(p.MapInvalidations),
		ReplicationBytes: res.DFS.ReplicationBytes,
		Runs:             1,
	}
	if res.HitHorizon || p.State != mapred.JobSucceeded {
		st.Capped = true
	}
	out := seedOutcome{stats: st, snap: col.Snapshot()}
	progress := ""
	if c.Progress != nil {
		progress = fmt.Sprintf("%-14s rate=%.1f seed=%d makespan=%.0fs dup=%d killedM=%d capped=%v "+
			"map=%.0fs shuffle=%.0fs reduce=%.0fs declines=%d raises=%d repGB=%.1f stalls=%d",
			v.Label, rate, seed, p.Makespan, p.DuplicatedTasks, p.KilledMaps, res.HitHorizon,
			p.AvgMapTime, p.AvgShuffleTime, p.AvgReduceTime,
			res.DFS.DedicatedDeclines, res.DFS.AdaptiveRaises, res.DFS.ReplicationBytes/1e9,
			res.DFS.ReadStalls)
	}
	return out, progress, nil
}

// mergeSeeds folds per-seed runs into the averaged cell statistics. The
// accumulation order is the seed order, so the floating-point result is
// bit-identical to a serial sweep.
func mergeSeeds(runs []RunStats) RunStats {
	var st RunStats
	for _, r := range runs {
		st.Makespan += r.Makespan
		st.AvgMapTime += r.AvgMapTime
		st.AvgShuffleTime += r.AvgShuffleTime
		st.AvgReduceTime += r.AvgReduceTime
		st.KilledMaps += r.KilledMaps
		st.KilledReduces += r.KilledReduces
		st.Duplicated += r.Duplicated
		st.Invalidations += r.Invalidations
		st.ReplicationBytes += r.ReplicationBytes
		if r.Capped {
			st.Capped = true
		}
		st.Runs += r.Runs
	}
	n := float64(st.Runs)
	st.Makespan /= n
	st.AvgMapTime /= n
	st.AvgShuffleTime /= n
	st.AvgReduceTime /= n
	st.KilledMaps /= n
	st.KilledReduces /= n
	st.Duplicated /= n
	st.Invalidations /= n
	st.ReplicationBytes /= n
	return st
}

// orderedProgress re-serializes progress lines from concurrent workers into
// the deterministic job order, emitting each line as soon as every earlier
// job has reported.
type orderedProgress struct {
	emit func(string)
	mu   sync.Mutex
	next int
	buf  map[int]string
}

func newOrderedProgress(emit func(string)) *orderedProgress {
	return &orderedProgress{emit: emit, buf: make(map[int]string)}
}

func (p *orderedProgress) done(i int, line string) {
	if p == nil || p.emit == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf[i] = line
	for {
		l, ok := p.buf[p.next]
		if !ok {
			return
		}
		delete(p.buf, p.next)
		p.next++
		if l != "" {
			p.emit(l)
		}
	}
}

// Sweep is a complete figure's data: variant × rate → stats.
type Sweep struct {
	Title    string
	Variants []string
	Rates    []float64
	Cells    map[string]map[float64]RunStats
	// Metrics holds one seed-averaged metrics snapshot per cell when the
	// sweep ran with Config.MetricsBucket > 0 (nil otherwise).
	Metrics map[string]map[float64]metrics.Snapshot
}

// AppendMetrics adds the sweep's collected cell reports to an Export, one
// Experiment entry per (variant, rate) in sweep order. A sweep run without
// metrics contributes nothing.
func (sw *Sweep) AppendMetrics(e *metrics.Export, runs int) {
	appendCellMetrics(e, sw.Title, sw.Variants, sw.Rates, sw.Metrics, runs)
}

// appendCellMetrics is the shared AppendMetrics body of Sweep and
// MultiSweep: one Experiment entry per (variant, rate) cell, in sweep
// order; a nil metrics map contributes nothing.
func appendCellMetrics(e *metrics.Export, title string, variants []string, rates []float64,
	cells map[string]map[float64]metrics.Snapshot, runs int) {
	if cells == nil {
		return
	}
	for _, v := range variants {
		for _, rate := range rates {
			e.Add(title, v, rate, runs, cells[v][rate])
		}
	}
}

// assembleCells folds per-seed sweep outcomes into per-cell aggregates in
// serial (variant, rate, seed) order — the deterministic assembly shared
// by RunSweep and RunMultiSweep, so statistics and metrics merging cannot
// drift between the two sweep kinds. split extracts one outcome's stats
// and snapshot; merge folds the seeds of one cell. The metrics map is nil
// unless the sweep collected metrics.
func assembleCells[S, O any](c Config, labels []string, results []O,
	split func(O) (S, metrics.Snapshot), merge func([]S) S,
) (map[string]map[float64]S, map[string]map[float64]metrics.Snapshot) {
	cells := make(map[string]map[float64]S)
	var mcells map[string]map[float64]metrics.Snapshot
	if c.MetricsBucket > 0 {
		mcells = make(map[string]map[float64]metrics.Snapshot)
	}
	stats := make([]S, len(c.Seeds))
	snaps := make([]metrics.Snapshot, len(c.Seeds))
	k := 0
	for _, label := range labels {
		cells[label] = make(map[float64]S)
		if mcells != nil {
			mcells[label] = make(map[float64]metrics.Snapshot)
		}
		for _, rate := range c.Rates {
			for i, out := range results[k : k+len(c.Seeds)] {
				stats[i], snaps[i] = split(out)
			}
			cells[label][rate] = merge(stats)
			if mcells != nil {
				mcells[label][rate] = metrics.Merge(snaps)
			}
			k += len(c.Seeds)
		}
	}
	return cells, mcells
}

// fanOut runs n independent cells on a worker pool of c.workers(n)
// goroutines and returns the per-cell results in serial order. Each cell
// returns its result plus a pre-formatted progress line, emitted in serial
// order through c.Progress. On failure the error of the lowest-indexed
// failing cell is returned and no cell after the first failure starts
// (in-flight cells finish) — exactly the serial fail-fast behavior.
func fanOut[T any](c Config, n int, run func(int) (T, string, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	progress := newOrderedProgress(c.Progress)

	if par := c.workers(n); par == 1 {
		for i := 0; i < n; i++ {
			var line string
			results[i], line, errs[i] = run(i)
			if errs[i] != nil {
				break // fail fast, like the serial sweep always did
			}
			progress.done(i, line)
		}
	} else {
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					// Check before claiming: a claimed index always runs,
					// so every cell below the first failure is recorded and
					// the minimum-index error matches a serial sweep.
					if failed.Load() {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					var line string
					results[i], line, errs[i] = run(i)
					if errs[i] != nil {
						// Fail fast: in-flight cells finish, but no new
						// ones start.
						failed.Store(true)
						return
					}
					progress.done(i, line)
				}
			}()
		}
		wg.Wait()
	}

	// A serial sweep stops at the first failing cell; report the same one.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// sweepCells enumerates a sweep's (variant, rate, seed) cells in serial
// order.
type sweepCell struct {
	variant int
	rate    float64
	seed    uint64
}

func (c Config) sweepCells(nVariants int) []sweepCell {
	var cells []sweepCell
	for v := 0; v < nVariants; v++ {
		for _, rate := range c.Rates {
			for _, seed := range c.Seeds {
				cells = append(cells, sweepCell{variant: v, rate: rate, seed: seed})
			}
		}
	}
	return cells
}

// RunSweep evaluates every variant at every rate across every seed, running
// the independent cells on a worker pool of Config.Parallelism goroutines.
// Cell statistics, progress ordering and error selection are identical to a
// serial sweep.
func (c Config) RunSweep(title string, variants []Variant) (*Sweep, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sw := &Sweep{Title: title, Rates: c.Rates, Cells: make(map[string]map[float64]RunStats)}
	for _, v := range variants {
		sw.Variants = append(sw.Variants, v.Label)
		sw.Cells[v.Label] = make(map[float64]RunStats)
	}
	cells := c.sweepCells(len(variants))
	if len(cells) == 0 {
		return sw, nil
	}

	results, err := fanOut(c, len(cells), func(i int) (seedOutcome, string, error) {
		cell := cells[i]
		return c.runSeed(variants[cell.variant], cell.rate, cell.seed)
	})
	if err != nil {
		return nil, err
	}

	// Deterministic assembly: fold seeds per cell in serial order.
	sw.Cells, sw.Metrics = assembleCells(c, sw.Variants, results,
		func(o seedOutcome) (RunStats, metrics.Snapshot) { return o.stats, o.snap }, mergeSeeds)
	return sw, nil
}

// Get returns the stats for a variant/rate cell.
func (sw *Sweep) Get(label string, rate float64) RunStats { return sw.Cells[label][rate] }

// Best returns the variant with the lowest makespan at a rate, restricted
// to labels with the given prefix (e.g. the paper's "best VO
// configuration").
func (sw *Sweep) Best(prefix string, rate float64) (string, RunStats) {
	bestLabel, best := "", RunStats{Makespan: -1}
	var labels []string
	labels = append(labels, sw.Variants...)
	sort.Strings(labels)
	for _, l := range labels {
		if len(l) < len(prefix) || l[:len(prefix)] != prefix {
			continue
		}
		st := sw.Cells[l][rate]
		if best.Makespan < 0 || st.Makespan < best.Makespan {
			bestLabel, best = l, st
		}
	}
	return bestLabel, best
}
