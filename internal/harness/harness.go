// Package harness defines and runs the paper's experiments: every figure
// and table of the evaluation section (Figures 1, 4, 5, 6, 7 and Table II)
// maps to one experiment that sweeps the same configurations the authors
// swept and prints the same rows/series they report.
package harness

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/workload"
)

// Config controls experiment execution.
type Config struct {
	// Seeds lists the churn realizations to average over.
	Seeds []uint64
	// Scale divides workload size (maps, reduces, input) for quick runs;
	// 1 reproduces the paper's full Table I sizes.
	Scale int
	// Rates are the machine-unavailability rates to sweep.
	Rates []float64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

// DefaultConfig mirrors the paper's sweep with a single seed.
func DefaultConfig() Config {
	return Config{Seeds: []uint64{1}, Scale: 1, Rates: []float64{0.1, 0.3, 0.5}}
}

func (c Config) withDefaults() Config {
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.1, 0.3, 0.5}
	}
	return c
}

// RunStats is a seed-averaged run outcome.
type RunStats struct {
	Makespan float64
	// Capped marks runs that hit the simulation horizon before the job
	// finished (the paper's "could not complete" cases); Makespan is
	// then the horizon.
	Capped bool

	AvgMapTime     float64
	AvgShuffleTime float64
	AvgReduceTime  float64
	KilledMaps     float64
	KilledReduces  float64
	Duplicated     float64
	Invalidations  float64

	ReplicationBytes float64
	Runs             int
}

// Variant is one configuration line in a figure (e.g. "Hadoop1Min" or
// "HA-V1"). Build returns the stack options and workload for a given
// cluster spec; the harness fills in churn rate and seed.
type Variant struct {
	Label string
	Build func(cs core.ClusterSpec) (core.Options, workload.Spec)
}

// runOne executes a single simulation.
func runOne(opts core.Options, w workload.Spec) (core.Result, error) {
	s, err := core.NewForWorkload(opts, w)
	if err != nil {
		return core.Result{}, err
	}
	return s.RunWorkload(w)
}

// runAveraged runs a variant at one rate across all seeds and averages.
func (c Config) runAveraged(v Variant, rate float64) (RunStats, error) {
	var st RunStats
	for _, seed := range c.Seeds {
		cs := core.ClusterSpec{UnavailabilityRate: rate, Seed: seed}
		opts, w := v.Build(cs)
		w = workload.Scale(w, c.Scale)
		res, err := runOne(opts, w)
		if err != nil {
			return RunStats{}, fmt.Errorf("%s rate=%.1f seed=%d: %w", v.Label, rate, seed, err)
		}
		p := res.Profile
		st.Makespan += p.Makespan
		st.AvgMapTime += p.AvgMapTime
		st.AvgShuffleTime += p.AvgShuffleTime
		st.AvgReduceTime += p.AvgReduceTime
		st.KilledMaps += float64(p.KilledMaps)
		st.KilledReduces += float64(p.KilledReduces)
		st.Duplicated += float64(p.DuplicatedTasks)
		st.Invalidations += float64(p.MapInvalidations)
		st.ReplicationBytes += res.DFS.ReplicationBytes
		if res.HitHorizon || p.State != mapred.JobSucceeded {
			st.Capped = true
		}
		st.Runs++
		if c.Progress != nil {
			c.Progress(fmt.Sprintf("%-14s rate=%.1f seed=%d makespan=%.0fs dup=%d killedM=%d capped=%v "+
				"map=%.0fs shuffle=%.0fs reduce=%.0fs declines=%d raises=%d repGB=%.1f stalls=%d",
				v.Label, rate, seed, p.Makespan, p.DuplicatedTasks, p.KilledMaps, res.HitHorizon,
				p.AvgMapTime, p.AvgShuffleTime, p.AvgReduceTime,
				res.DFS.DedicatedDeclines, res.DFS.AdaptiveRaises, res.DFS.ReplicationBytes/1e9,
				res.DFS.ReadStalls))
		}
	}
	n := float64(st.Runs)
	st.Makespan /= n
	st.AvgMapTime /= n
	st.AvgShuffleTime /= n
	st.AvgReduceTime /= n
	st.KilledMaps /= n
	st.KilledReduces /= n
	st.Duplicated /= n
	st.Invalidations /= n
	st.ReplicationBytes /= n
	return st, nil
}

// Sweep is a complete figure's data: variant × rate → stats.
type Sweep struct {
	Title    string
	Variants []string
	Rates    []float64
	Cells    map[string]map[float64]RunStats
}

// RunSweep evaluates every variant at every rate.
func (c Config) RunSweep(title string, variants []Variant) (*Sweep, error) {
	c = c.withDefaults()
	sw := &Sweep{Title: title, Rates: c.Rates, Cells: make(map[string]map[float64]RunStats)}
	for _, v := range variants {
		sw.Variants = append(sw.Variants, v.Label)
		sw.Cells[v.Label] = make(map[float64]RunStats)
		for _, rate := range c.Rates {
			st, err := c.runAveraged(v, rate)
			if err != nil {
				return nil, err
			}
			sw.Cells[v.Label][rate] = st
		}
	}
	return sw, nil
}

// Get returns the stats for a variant/rate cell.
func (sw *Sweep) Get(label string, rate float64) RunStats { return sw.Cells[label][rate] }

// Best returns the variant with the lowest makespan at a rate, restricted
// to labels with the given prefix (e.g. the paper's "best VO
// configuration").
func (sw *Sweep) Best(prefix string, rate float64) (string, RunStats) {
	bestLabel, best := "", RunStats{Makespan: -1}
	var labels []string
	labels = append(labels, sw.Variants...)
	sort.Strings(labels)
	for _, l := range labels {
		if len(l) < len(prefix) || l[:len(prefix)] != prefix {
			continue
		}
		st := sw.Cells[l][rate]
		if best.Makespan < 0 || st.Makespan < best.Makespan {
			bestLabel, best = l, st
		}
	}
	return bestLabel, best
}
