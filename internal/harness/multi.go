package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// MultiVariant is one configuration line of a multi-job sweep: it builds
// the stack options plus a multi-job workload for a cluster spec.
type MultiVariant struct {
	Label string
	Build func(cs core.ClusterSpec) (core.Options, workload.MultiSpec)
}

// MultiStats is a seed-averaged multi-job cell outcome.
type MultiStats struct {
	// JobMakespans holds each job's seed-averaged makespan in submission
	// order (for capped jobs: submission → horizon).
	JobMakespans []float64
	// Span is run start → last completion; Throughput is completed jobs
	// per hour of span.
	Span       float64
	Throughput float64
	Completed  float64
	// Capped marks cells where some seed left a job unfinished at the
	// horizon.
	Capped bool
	Runs   int
}

// MultiSweep is a complete multi-job experiment: variant × rate → stats.
type MultiSweep struct {
	Title    string
	Variants []string
	Rates    []float64
	Cells    map[string]map[float64]MultiStats
	// Metrics holds one seed-averaged metrics snapshot per cell when the
	// sweep ran with Config.MetricsBucket > 0 (nil otherwise).
	Metrics map[string]map[float64]metrics.Snapshot
}

// Get returns the stats for a variant/rate cell.
func (sw *MultiSweep) Get(label string, rate float64) MultiStats { return sw.Cells[label][rate] }

// AppendMetrics adds the sweep's collected cell reports to an Export, one
// Experiment entry per (variant, rate) in sweep order.
func (sw *MultiSweep) AppendMetrics(e *metrics.Export, runs int) {
	appendCellMetrics(e, sw.Title, sw.Variants, sw.Rates, sw.Metrics, runs)
}

// multiOutcome is one multi-job cell's result plus its metrics snapshot.
type multiOutcome struct {
	stats MultiStats
	snap  metrics.Snapshot
}

// runMultiSeed executes one multi-job sweep cell (shares nothing; safe for
// the worker pool).
func (c Config) runMultiSeed(v MultiVariant, rate float64, seed uint64) (multiOutcome, string, error) {
	cs := core.ClusterSpec{UnavailabilityRate: rate, Seed: seed}
	opts, m := v.Build(cs)
	opts.ShardWorkers = c.ShardWorkers
	m = workload.ScaleMulti(m, c.Scale)
	var col *metrics.Collector
	if c.MetricsBucket > 0 {
		col = metrics.New(c.MetricsBucket)
		col.SetSink(c.MetricsSink)
		opts.Metrics = col
	}
	s, err := core.NewForMultiWorkload(opts, m)
	if err != nil {
		return multiOutcome{}, "", fmt.Errorf("%s rate=%.1f seed=%d: %w", v.Label, rate, seed, err)
	}
	res, err := s.RunMultiWorkload(m)
	if err != nil {
		return multiOutcome{}, "", fmt.Errorf("%s rate=%.1f seed=%d: %w", v.Label, rate, seed, err)
	}
	st := MultiStats{
		Span:       res.Span,
		Throughput: res.Throughput,
		Completed:  float64(res.Completed),
		Runs:       1,
	}
	for _, jr := range res.Jobs {
		st.JobMakespans = append(st.JobMakespans, jr.Profile.Makespan)
		if jr.HitHorizon {
			st.Capped = true
		}
	}
	progress := ""
	if c.Progress != nil {
		progress = fmt.Sprintf("%-14s rate=%.1f seed=%d span=%.0fs done=%d/%d tput=%.2f/h capped=%v",
			v.Label, rate, seed, res.Span, res.Completed, len(res.Jobs), res.Throughput, st.Capped)
	}
	return multiOutcome{stats: st, snap: col.Snapshot()}, progress, nil
}

// mergeMultiSeeds folds per-seed multi-job runs into the averaged cell, in
// seed order (bit-identical to a serial sweep).
func mergeMultiSeeds(runs []MultiStats) MultiStats {
	var st MultiStats
	for _, r := range runs {
		if st.JobMakespans == nil {
			st.JobMakespans = make([]float64, len(r.JobMakespans))
		}
		for i, mk := range r.JobMakespans {
			st.JobMakespans[i] += mk
		}
		st.Span += r.Span
		st.Throughput += r.Throughput
		st.Completed += r.Completed
		if r.Capped {
			st.Capped = true
		}
		st.Runs += r.Runs
	}
	n := float64(st.Runs)
	for i := range st.JobMakespans {
		st.JobMakespans[i] /= n
	}
	st.Span /= n
	st.Throughput /= n
	st.Completed /= n
	return st
}

// RunMultiSweep evaluates every multi-job variant at every rate across
// every seed on the shared worker pool. Like RunSweep, cell statistics,
// progress ordering and error selection are byte-identical to a serial
// sweep at any Parallelism.
func (c Config) RunMultiSweep(title string, variants []MultiVariant) (*MultiSweep, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sw := &MultiSweep{Title: title, Rates: c.Rates, Cells: make(map[string]map[float64]MultiStats)}
	for _, v := range variants {
		sw.Variants = append(sw.Variants, v.Label)
		sw.Cells[v.Label] = make(map[float64]MultiStats)
	}
	cells := c.sweepCells(len(variants))
	if len(cells) == 0 {
		return sw, nil
	}

	results, err := fanOut(c, len(cells), func(i int) (multiOutcome, string, error) {
		cell := cells[i]
		return c.runMultiSeed(variants[cell.variant], cell.rate, cell.seed)
	})
	if err != nil {
		return nil, err
	}

	sw.Cells, sw.Metrics = assembleCells(c, sw.Variants, results,
		func(o multiOutcome) (MultiStats, metrics.Snapshot) { return o.stats, o.snap }, mergeMultiSeeds)
	return sw, nil
}

// Render prints the multi-job matrix: one row per (rate, variant) with the
// run span, throughput, completions, and each job's makespan in submission
// order. Capped cells are prefixed with '>'.
func (sw *MultiSweep) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — span / throughput / per-job makespan (s)\n", sw.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "unavail\tpolicy\tspan\tjobs/h\tdone\tper-job makespans")
	for _, rate := range sw.Rates {
		for _, v := range sw.Variants {
			st := sw.Cells[v][rate]
			span := fmt.Sprintf("%.0f", st.Span)
			if st.Capped {
				span = ">" + span
			}
			fmt.Fprintf(tw, "%.1f\t%s\t%s\t%.2f\t%.1f", rate, v, span, st.Throughput, st.Completed)
			for i, mk := range st.JobMakespans {
				if i == 0 {
					fmt.Fprintf(tw, "\t%.0f", mk)
				} else {
					fmt.Fprintf(tw, " %.0f", mk)
				}
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// ArrivalSpec selects the submission process of the multi-job experiment.
type ArrivalSpec struct {
	// Process is "staggered" (fixed gaps) or "poisson" (exponential
	// inter-arrivals).
	Process string
	// Interval is the stagger gap or the mean inter-arrival time, seconds.
	Interval float64
	// Seed drives the Poisson offset draws (independent of churn seeds).
	Seed uint64
	// Priorities are per-job-name strict-priority ranks applied to the
	// derived stream (read by the "priority" arbitration policy only).
	Priorities map[string]int
}

// Stream derives the n-job workload for the arrival process.
func (a ArrivalSpec) Stream(base workload.Spec, n int) workload.MultiSpec {
	var m workload.MultiSpec
	switch a.Process {
	case "", "staggered":
		m = workload.Staggered(base, n, a.Interval)
	case "poisson":
		m = workload.PoissonArrivals(base, n, a.Interval, a.Seed)
	default:
		panic(fmt.Sprintf("harness: unknown arrival process %q", a.Process))
	}
	return workload.WithPriorities(m, a.Priorities)
}

// MultiVariants are the lines of the multi-job experiment: one identical
// staggered stream of sleep jobs (scheduling-isolated, like Figures 4/5)
// on the MOON-Hybrid stack, one line per arbitration policy. With no
// policies given it compares FIFO against fair-share.
func MultiVariants(app string, jobs int, stagger float64, policies ...mapred.SchedPolicy) []MultiVariant {
	return MultiArrivalVariants(app, jobs, ArrivalSpec{Process: "staggered", Interval: stagger}, policies...)
}

// MultiArrivalVariants generalizes MultiVariants to any arrival process
// (staggered gaps or a seeded Poisson stream).
func MultiArrivalVariants(app string, jobs int, arr ArrivalSpec, policies ...mapred.SchedPolicy) []MultiVariant {
	if len(policies) == 0 {
		policies = []mapred.SchedPolicy{mapred.FIFO(), mapred.FairShare()}
	}
	var vs []MultiVariant
	for _, pol := range policies {
		pol := pol
		vs = append(vs, MultiVariant{
			Label: "MOON-" + pol.Name(),
			Build: func(cs core.ClusterSpec) (core.Options, workload.MultiSpec) {
				opts := core.MOONPreset(baseCluster(cs), true)
				opts.Sched.JobPolicy = pol
				return opts, arr.Stream(workload.SleepApp(appSpec(app)), jobs)
			},
		})
	}
	return vs
}

// Multi sweeps the multi-job experiment: policy × churn rate × seed,
// reporting per-job makespan and total throughput.
func (c Config) Multi(app string, jobs int, stagger float64) (*MultiSweep, error) {
	return c.RunMultiSweep(
		fmt.Sprintf("Multi-job (%s): %d jobs staggered %.0fs, FIFO vs fair-share", app, jobs, stagger),
		MultiVariants(app, jobs, stagger))
}
