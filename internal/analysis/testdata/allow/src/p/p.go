// Package p is the suppression-directive fixture for the framework
// tests: the dummy analyzer flags every function whose name starts with
// "Bad", and the directives below exercise every directive shape.
package p

func BadInline() {} //moonvet:allow dummy inline directives cover their own line

//moonvet:allow dummy standalone directives cover the next line
func BadStandalone() {}

func BadUnsuppressed() {}

func BadMissingReason() {} //moonvet:allow dummy

//moonvet:allow nosuch this analyzer does not exist
func BadUnknownAnalyzer() {}

//moonvet:allow dummy this directive suppresses nothing
func fine() {}

func alsoFine() {}
