package lockatomic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockatomic"
)

// TestLockAtomic pins both rules: lock-bearing channel payloads (element
// types and sends, transitively through structs and arrays) and mixed
// atomic/plain access to one field, with the pointer-payload and
// typed-atomic idioms staying unflagged.
func TestLockAtomic(t *testing.T) {
	analysistest.Run(t, "testdata", lockatomic.Analyzer, "a")
}
