// Package lockatomic guards the live engine's concurrency invariants:
// no lock-bearing values through channels, no mixed atomic/plain access
// to the same field.
//
// The engine's master↔worker plumbing is message-passing over channels,
// and its JobStatus snapshots are published through atomic.Pointer and
// read lock-free by the HTTP service. Both patterns have a silent
// failure mode the race detector only catches if a test happens to
// interleave just right: sending a struct that embeds a sync.Mutex (or
// any sync/atomic value) copies the lock, decoupling sender and
// receiver; and reading a field directly when some other code path
// accesses it through sync/atomic functions is a data race even when
// every write is atomic. This analyzer flags both statically:
//
//   - any channel element type, or sent value, whose type transitively
//     contains a sync or sync/atomic value by value (pointers are fine);
//   - any plain selector access to a field that is elsewhere in the same
//     package passed by address to a sync/atomic function.
package lockatomic

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockatomic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockatomic",
	Doc: "flag locks copied through channel payloads and non-atomic access to fields elsewhere " +
		"accessed via sync/atomic (the lock-free snapshot pattern only works when every access " +
		"agrees on atomicity)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkChannels(pass)
	checkMixedAtomics(pass)
	return nil
}

// --- rule 1: locks through channels ---

func checkChannels(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ChanType:
				if t := pass.TypesInfo.TypeOf(s.Value); t != nil {
					if path := lockPath(t, nil); path != "" {
						pass.Reportf(s.Pos(),
							"channel element type carries %s by value: sends copy the lock, decoupling sender and receiver (pass a pointer)",
							path)
					}
				}
			case *ast.SendStmt:
				if t := pass.TypesInfo.TypeOf(s.Value); t != nil {
					if path := lockPath(t, nil); path != "" {
						pass.Reportf(s.Pos(),
							"send copies %s by value through a channel (pass a pointer)", path)
					}
				}
			}
			return true
		})
	}
}

// lockPath returns a human-readable path to a by-value sync or
// sync/atomic component of t ("" when t carries none). Pointers,
// slices, maps, channels and interfaces stop the walk: sharing by
// reference is exactly the correct way to move a lock.
func lockPath(t types.Type, seen []types.Type) string {
	for _, s := range seen {
		if s == t {
			return ""
		}
	}
	seen = append(seen, t)
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
			p := obj.Pkg().Path()
			if p == "sync" || p == "sync/atomic" {
				if _, isIface := u.Underlying().(*types.Interface); !isIface {
					return p + "." + obj.Name()
				}
				return ""
			}
		}
		return lockPath(u.Underlying(), seen)
	case *types.Alias:
		return lockPath(types.Unalias(t), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if sub := lockPath(f.Type(), seen); sub != "" {
				return sub
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}

// --- rule 2: mixed atomic and plain field access ---

func checkMixedAtomics(pass *analysis.Pass) {
	atomicFields := make(map[types.Object]bool)
	atomicUses := make(map[token.Pos]bool)

	// Pass 1: find fields passed by address to sync/atomic functions
	// anywhere in the package.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(pass, sel); obj != nil {
					atomicFields[obj] = true
					atomicUses[sel.Sel.Pos()] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other touch of those fields must also be atomic.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel.Sel.Pos()] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj != nil && atomicFields[obj] {
				pass.Reportf(sel.Pos(),
					"non-atomic access to field %s, which is accessed via sync/atomic elsewhere in this package (a race even if every write is atomic)",
					obj.Name())
			}
			return true
		})
	}
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldObject resolves sel to the struct field it selects, or nil when
// sel is not a field selection (package-qualified names, methods).
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}
