// Package a is the lockatomic fixture: locks moving through channels by
// value and mixed atomic/plain field access are flagged; pointer
// payloads and consistently-atomic fields are not.
package a

import (
	"sync"
	"sync/atomic"
)

// guarded embeds a mutex by value, so channel payloads of it copy the
// lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapped embeds guarded a level down; the walk is transitive.
type wrapped struct {
	inner guarded
}

func badChannels(g guarded) {
	ch := make(chan guarded, 1) // want `channel element type carries sync.Mutex by value`
	ch <- g                     // want `send copies sync.Mutex by value`

	var deep chan [2]wrapped // want `channel element type carries sync.Mutex by value`
	_ = deep
}

type counters struct {
	hits  int64
	total int64
}

func badMixed(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	return c.hits // want `non-atomic access to field hits`
}

// --- allowed patterns ---

// goodChannels shares the lock by pointer: the correct idiom.
func goodChannels(g *guarded) {
	ch := make(chan *guarded, 1)
	ch <- g
	done := make(chan struct{})
	close(done)
}

// goodAtomic touches hits atomically everywhere and total plainly
// everywhere; neither mixes, so neither is flagged.
func goodAtomic(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	c.total++
	return atomic.LoadInt64(&c.hits) + c.total
}

// typedAtomics cannot be misread — the typed API forces atomic access —
// and moving them by pointer is fine.
type status struct {
	snap atomic.Pointer[counters]
}

func goodTyped(s *status) *counters {
	s.snap.Store(&counters{})
	ch := make(chan *status, 1)
	ch <- s
	return s.snap.Load()
}
