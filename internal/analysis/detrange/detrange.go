// Package detrange flags map iteration whose body is order-sensitive.
//
// Go randomizes map iteration order per run, so a `range` over a map
// that appends to a slice, builds output, schedules events, accumulates
// floats or strings, or returns a value derived from the iteration
// variables produces run-to-run-varying results — exactly the class of
// bug that breaks this repo's byte-identical goldens one seed at a time.
// The fix is the sorted-keys idiom (collect keys, sort, range the
// slice — which this analyzer does not flag) or an ordered slice of
// pairs instead of a map.
//
// Order-insensitive bodies stay allowed: counting into ints, writing
// into another map, membership tests returning constants, deletes.
// Integer accumulation commutes exactly; float accumulation does not
// (rounding makes += order-dependent), which is why only floats,
// complexes and strings are flagged.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag range-over-map bodies that are iteration-order-sensitive (appends, output, " +
		"event scheduling, float/string accumulation, returns of loop-derived values); " +
		"sort the keys or use an ordered slice",
	Run: run,
}

// orderSensitiveCalls are callee names whose invocation order is
// observable: event scheduling, job submission, queue mutation and
// output writing.
var orderSensitiveCalls = map[string]bool{
	"Schedule":    true,
	"ScheduleAt":  true,
	"Submit":      true,
	"Enqueue":     true,
	"Push":        true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		sorted := sortedSlices(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rng) {
				return true
			}
			checkBody(pass, rng, sorted)
			return true
		})
	}
	return nil
}

// sortedSlices collects the objects passed to sort.* or slices.Sort*
// calls anywhere in the file: appending map keys into a slice that is
// subsequently sorted is the canonical deterministic idiom and must not
// be flagged.
func sortedSlices(pass *analysis.Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// loopVars returns the objects bound to the range's key/value variables.
func loopVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			vars[obj] = true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	vars := loopVars(pass, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is analyzed on its own; descending
			// would double-report its body against the outer loop.
			if s != rng && isMapRange(pass, s) {
				return false
			}
		case *ast.AssignStmt:
			checkAssign(pass, rng, s, vars, sorted)
		case *ast.ReturnStmt:
			checkReturn(pass, rng, s, vars)
		case *ast.CallExpr:
			if name := calleeName(s); orderSensitiveCalls[name] {
				pass.Reportf(s.Pos(),
					"%s called in map-iteration order inside range over map (order is randomized per run; sort the keys first)",
					name)
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, s *ast.AssignStmt, vars, sorted map[types.Object]bool) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range s.Lhs {
			if !declaredOutside(pass, rng, lhs) || keyedByLoopVar(pass, lhs, vars) {
				continue
			}
			if t := pass.TypesInfo.TypeOf(lhs); t != nil && orderSensitiveAccum(t) {
				pass.Reportf(s.Pos(),
					"%s accumulation into %s in map-iteration order is not associative-stable (sort the keys first)",
					t.String(), exprName(lhs))
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || calleeName(call) != "append" || i >= len(s.Lhs) {
				continue
			}
			lhs := s.Lhs[i]
			if !isBuiltinAppend(pass, call) || !declaredOutside(pass, rng, lhs) {
				continue
			}
			// Two deterministic idioms are allowed: appending into a
			// map entry indexed by the loop key (group-by-key — each
			// key's slice sees one ordered append), and collecting
			// keys into a slice that is sorted afterwards.
			if keyedByLoopVar(pass, lhs, vars) || appendsSortedLater(pass, lhs, sorted) {
				continue
			}
			pass.Reportf(s.Pos(),
				"append to %s in map-iteration order (order is randomized per run; sort the keys first)",
				exprName(lhs))
		}
	}
}

// keyedByLoopVar reports whether expr indexes a container by a loop
// variable (m[k], m[k].f, ...): per-key state is touched once per key,
// so iteration order cannot be observed.
func keyedByLoopVar(pass *analysis.Pass, expr ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && vars[pass.TypesInfo.Uses[id]] {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// appendsSortedLater reports whether the appended-to slice is passed to
// a sort.* or slices.* call somewhere in the file.
func appendsSortedLater(pass *analysis.Pass, lhs ast.Expr, sorted map[types.Object]bool) bool {
	id := rootIdent(lhs)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && sorted[obj]
}

func checkReturn(pass *analysis.Pass, rng *ast.RangeStmt, s *ast.ReturnStmt, vars map[types.Object]bool) {
	// Returning from inside a map range is only order-sensitive when
	// the returned value depends on *which* key triggered it; constant
	// returns (membership tests) commute.
	for _, res := range s.Results {
		found := false
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && vars[pass.TypesInfo.Uses[id]] {
				found = true
				return false
			}
			return true
		})
		if found {
			pass.Reportf(s.Pos(),
				"return of a map-iteration variable: which key wins depends on randomized map order (sort the keys first)")
			return
		}
	}
}

// declaredOutside reports whether the root variable of expr was declared
// outside the range statement (so cross-iteration state escapes the
// loop in iteration order).
func declaredOutside(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	// Package-level and closed-over variables have positions outside
	// this range statement's span.
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// rootIdent unwraps selectors, indexes and parens to the base identifier
// (x for x.f[i].g), or nil when the base is not an identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// orderSensitiveAccum reports whether += into this type depends on
// operand order: floats and complexes (rounding), strings
// (concatenation).
func orderSensitiveAccum(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

func exprName(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "variable"
}
