// Package a is the detrange fixture: order-sensitive map-range bodies
// are flagged, the deterministic idioms are not.
package a

import (
	"fmt"
	"sort"
)

// --- flagged patterns ---

func appendKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map-iteration order`
	}
	return keys
}

func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float64 accumulation into total in map-iteration order`
	}
	return total
}

func stringConcat(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v // want `string accumulation into out in map-iteration order`
	}
	return out
}

func firstError(m map[string]float64) error {
	for name, v := range m {
		if v < 0 {
			return fmt.Errorf("bad %s: %v", name, v) // want `return of a map-iteration variable`
		}
	}
	return nil
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `Printf called in map-iteration order`
	}
}

type queue struct{ items []int }

func (q *queue) Push(v int) { q.items = append(q.items, v) }

func scheduleAll(q *queue, m map[string]int) {
	for _, v := range m {
		q.Push(v) // want `Push called in map-iteration order`
	}
}

// --- allowed patterns ---

// sortedKeys is the canonical fix: collect, sort, then iterate the
// slice. The append feeds a sort, and the second loop ranges a slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printSorted(m map[string]int) {
	for _, k := range sortedKeys(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// intCount commutes exactly; integer accumulation is order-insensitive.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes into another map: keyed state, no observable order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// groupBy appends into a map entry indexed by the loop key: each key's
// slice sees one ordered append, so iteration order is unobservable.
func groupBy(dst map[string][]int, src map[string][]int) {
	for k, vs := range src {
		dst[k] = append(dst[k], vs...)
	}
}

// contains returns a constant: membership tests commute.
func contains(m map[string]int, want string) bool {
	for k := range m {
		if k == want {
			return true
		}
	}
	return false
}

// localAppend builds and consumes its slice inside one iteration; no
// cross-iteration state escapes in map order.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}
