package detrange_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrange"
)

// TestDetRange pins both halves of the analyzer: the order-sensitive
// map-range bodies (appends, float/string accumulation, early returns of
// loop variables, output and scheduling calls) and the deterministic
// idioms that must stay unflagged (sorted-keys, group-by-key, integer
// counting, map-to-map writes, membership tests, loop-local slices).
func TestDetRange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer, "a")
}
