// Package shardsafe flags shared-state mutation inside parallel-phase
// callbacks.
//
// A shard-pool phase (sim.ShardPool.Run / SumInt and anything with the
// same shape) is a pure "map" step: the callback may read any frozen
// model state but must write only per-index result slots and the arena
// of the worker running it, with all shared-state mutation applied
// serially by the caller after the phase returns. That contract is what
// makes every worker count byte-identical — and it is invisible to the
// race detector when the violation is merely order-sensitive rather
// than racy (two workers scheduling events consume (at, seq) numbers in
// nondeterministic order without ever touching the same word).
//
// The analyzer finds function literals passed as the trailing argument
// of a .Run(n, fn) call taking func(worker, lo, hi int) — or a
// .SumInt(n, fn) taking func(lo, hi int) — and reports, inside the
// literal:
//
//   - calls whose invocation order is observable (event scheduling,
//     queue mutation, metric observation, RNG stream splitting, output);
//   - writes to variables declared outside the literal unless the
//     written lvalue is indexed by a variable bound inside it (the
//     per-index slot / per-worker arena idioms, out[i] = v and
//     partials[worker].V += x);
//   - append to an outside slice (growth order is scheduling order).
//
// Locals declared inside the literal are free; so is anything indexed
// by the span or worker variables, which is exactly the state the merge
// step folds in deterministic order afterwards.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shardsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "flag order-sensitive mutation inside shard-pool phase callbacks (event scheduling, " +
		"metric observation, un-indexed writes to captured state); phases must write only " +
		"per-index slots and per-worker arenas, merging serially after Run returns",
	Run: run,
}

// phaseMethods maps the pool's fan-out method names to the number of
// int parameters their callback takes: Run(n, func(worker, lo, hi
// int)), SumInt(n, func(lo, hi int) int). Matching on shape rather than
// on the concrete *sim.ShardPool type keeps the analyzer working on any
// Runner-shaped pool (internal/trace's interface included).
var phaseMethods = map[string]int{
	"Run":    3,
	"SumInt": 2,
}

// orderSensitiveCalls are callee names whose invocation order is
// observable even when every call is individually race-free: event
// scheduling consumes (at, seq) numbers, queues and metrics record
// arrival order, RNG splits consume stream draws, output interleaves.
var orderSensitiveCalls = map[string]bool{
	"Schedule":    true,
	"ScheduleAt":  true,
	"After":       true,
	"Submit":      true,
	"Enqueue":     true,
	"Push":        true,
	"Observe":     true,
	"Add":         true,
	"Inc":         true,
	"IncAt":       true,
	"Split":       true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			want, ok := phaseMethods[sel.Sel.Name]
			if !ok {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok || !hasIntParams(pass, lit, want) {
				return true
			}
			checkPhase(pass, lit)
			return true
		})
	}
	return nil
}

// hasIntParams reports whether the literal's parameters are exactly
// `want` ints — the span-callback shape.
func hasIntParams(pass *analysis.Pass, lit *ast.FuncLit, want int) bool {
	n := 0
	for _, field := range lit.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		n += names
	}
	return n == want
}

func checkPhase(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A nested literal runs on the same worker; its body is
			// bound by the same contract, so keep descending.
			return true
		case *ast.CallExpr:
			if name := calleeName(s); orderSensitiveCalls[name] {
				pass.Reportf(s.Pos(),
					"%s called inside a parallel phase callback: invocation order depends on worker interleaving (apply results serially after Run returns)",
					name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, lit, s)
		case *ast.IncDecStmt:
			if escapesPhase(pass, lit, s.X) {
				pass.Reportf(s.Pos(),
					"%s of shared %s inside a parallel phase callback (write per-index slots or a per-worker arena instead)",
					incDecName(s.Tok), exprName(s.X))
			}
		}
		return true
	})
}

// checkAssign flags writes that leave the phase's private state: any
// assignment whose target is declared outside the literal and is not
// indexed by a variable bound inside it.
func checkAssign(pass *analysis.Pass, lit *ast.FuncLit, s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // new locals are phase-private by construction
	}
	for i, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if !escapesPhase(pass, lit, lhs) {
			continue
		}
		// append to captured state is the clearest order dependence:
		// element order is worker-scheduling order.
		if i < len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				pass.Reportf(s.Pos(),
					"append to shared %s inside a parallel phase callback: element order depends on worker interleaving",
					exprName(lhs))
				continue
			}
		}
		if s.Tok == token.ASSIGN {
			pass.Reportf(s.Pos(),
				"write to shared %s inside a parallel phase callback is not index-scoped (write per-index slots or a per-worker arena instead)",
				exprName(lhs))
		} else {
			pass.Reportf(s.Pos(),
				"compound assignment to shared %s inside a parallel phase callback (fold per-worker partials serially after Run returns)",
				exprName(lhs))
		}
	}
}

// escapesPhase reports whether writing expr mutates state shared across
// workers: its root variable is declared outside the literal and no
// index in the access path is bound inside the literal (an inner-bound
// index — the span variable or the worker id — scopes the write to a
// private slot).
func escapesPhase(pass *analysis.Pass, lit *ast.FuncLit, expr ast.Expr) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil || declaredInside(lit, obj) {
		return false
	}
	return !indexedByInner(pass, lit, expr)
}

// declaredInside reports whether obj's declaration lies within the
// literal's span (parameters included).
func declaredInside(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// indexedByInner reports whether any index expression in the access
// path uses a variable declared inside the literal.
func indexedByInner(pass *analysis.Pass, lit *ast.FuncLit, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj != nil && declaredInside(lit, obj) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// rootIdent unwraps selectors, indexes and parens to the base
// identifier (x for x.f[i].g), or nil when the base is not an
// identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func incDecName(tok token.Token) string {
	if tok == token.INC {
		return "increment"
	}
	return "decrement"
}

func exprName(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "variable"
}
