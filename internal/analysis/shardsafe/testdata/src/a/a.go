// Package a is the shardsafe fixture: order-sensitive mutation inside
// shard-pool phase callbacks is flagged, the per-index-slot and
// per-worker-arena idioms are not.
package a

// ShardPool mirrors the sim pool's fan-out shape; shardsafe matches on
// the method name + callback signature, not the concrete type.
type ShardPool struct{}

func (p *ShardPool) Workers() int                              { return 1 }
func (p *ShardPool) Run(n int, fn func(worker, lo, hi int))    { fn(0, 0, n) }
func (p *ShardPool) SumInt(n int, fn func(lo, hi int) int) int { return fn(0, n) }

type padded struct {
	V int
	_ [56]byte
}

type simulation struct{}

func (s *simulation) Schedule(at float64, label string, fn func()) {}

type series struct{}

func (c *series) Observe(at, v float64) {}

type stream struct{}

func (r *stream) Split() *stream { return &stream{} }

// --- flagged patterns ---

func scheduleInPhase(p *ShardPool, s *simulation, n int) {
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.Schedule(float64(i), "x", func() {}) // want `Schedule called inside a parallel phase callback`
		}
	})
}

func observeInPhase(p *ShardPool, c *series, n int) {
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.Observe(float64(i), 1) // want `Observe called inside a parallel phase callback`
		}
	})
}

func splitInPhase(p *ShardPool, r *stream, n int) {
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = r.Split() // want `Split called inside a parallel phase callback`
		}
	})
}

func floatAccumShared(p *ShardPool, n int) float64 {
	total := 0.0
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += float64(i) // want `compound assignment to shared total inside a parallel phase callback`
		}
	})
	return total
}

func intAccumShared(p *ShardPool, n int) int {
	count := 0
	p.Run(n, func(worker, lo, hi int) {
		count += hi - lo // want `compound assignment to shared count inside a parallel phase callback`
	})
	return count
}

func appendShared(p *ShardPool, n int) []int {
	var hits []int
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits = append(hits, i) // want `append to shared hits inside a parallel phase callback`
		}
	})
	return hits
}

func plainWriteShared(p *ShardPool, n int) int {
	last := 0
	p.Run(n, func(worker, lo, hi int) {
		last = hi // want `write to shared last inside a parallel phase callback is not index-scoped`
	})
	return last
}

type tally struct{ launched int }

func fieldWriteShared(p *ShardPool, t *tally, n int) {
	p.Run(n, func(worker, lo, hi int) {
		t.launched++ // want `increment of shared t inside a parallel phase callback`
	})
}

func sumIntSharedWrite(p *ShardPool, n int) int {
	seen := 0
	return p.SumInt(n, func(lo, hi int) int {
		seen++ // want `increment of shared seen inside a parallel phase callback`
		return hi - lo
	})
}

// --- allowed idioms ---

func perIndexSlots(p *ShardPool, n int) []int {
	out := make([]int, n)
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i // per-index slot: a pure function of the index
		}
	})
	return out
}

func perWorkerArena(p *ShardPool, n int) int {
	partials := make([]padded, p.Workers())
	p.Run(n, func(worker, lo, hi int) {
		sum := 0 // locals are phase-private
		for i := lo; i < hi; i++ {
			sum += i
		}
		partials[worker].V += sum // worker-indexed arena slot
	})
	total := 0
	for i := range partials {
		total += partials[i].V // the serial fold is outside the phase
	}
	return total
}

func sumIntPure(p *ShardPool, vals []int) int {
	return p.SumInt(len(vals), func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	})
}

// Run with a non-span callback shape is some other API, not a phase.
func notAPhase(n int) {
	r := runner{}
	total := 0.0
	r.Run(n, func(x float64) { total += x })
}

type runner struct{}

func (runner) Run(n int, fn func(float64)) { fn(float64(n)) }
