package shardsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shardsafe"
)

// TestShardSafe pins both halves of the analyzer: order-sensitive
// mutation inside phase callbacks (scheduling, metric observation, RNG
// splits, shared accumulation/appends/writes) and the deterministic
// idioms that must stay unflagged (per-index slots, per-worker arenas,
// phase-local state, span reductions returning locals, non-phase Run
// methods).
func TestShardSafe(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "a")
}
