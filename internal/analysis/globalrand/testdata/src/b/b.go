// Package b pins the math/rand/v2 half of the globalrand surface: v2 is
// always randomly seeded, so the import itself is the violation.
package b

import "math/rand/v2" // want `import of math/rand/v2`

func bad() int {
	return rand.IntN(10) // want `global rand.IntN draws from shared hidden state`
}
