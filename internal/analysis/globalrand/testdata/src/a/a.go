// Package a is the globalrand fixture: any touch of math/rand is
// flagged (the import, plus each package-level function use), while
// project-style explicit generator state is not.
package a

import "math/rand" // want `import of math/rand`

func bad() int {
	n := rand.Intn(10)       // want `global rand.Intn draws from shared hidden state`
	rand.Seed(42)            // want `global rand.Seed draws from shared hidden state`
	f := rand.Float64()      // want `global rand.Float64 draws from shared hidden state`
	src := rand.NewSource(1) // want `global rand.NewSource draws from shared hidden state`
	r := rand.New(src)       // want `global rand.New draws from shared hidden state`
	return n + int(f) + r.Intn(3)
}

// xorshift is the kind of explicit, threaded generator state the repo's
// internal/rng provides; nothing here may be flagged.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

func good() uint64 {
	s := xorshift(1)
	return s.next()
}
