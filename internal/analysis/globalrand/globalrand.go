// Package globalrand forbids math/rand everywhere in the module.
//
// The repo's determinism story needs randomness that is bit-stable
// across Go versions and splittable across subsystems; internal/rng
// (xoshiro256** seeded via splitmix64) provides exactly that. math/rand
// gives neither: its top-level functions share hidden global state that
// Go seeds randomly since 1.20, math/rand/v2 is always randomly seeded,
// and even explicitly-seeded v1 sources are documented as free to change
// their sequences between releases. Any import of math/rand or
// math/rand/v2 is therefore flagged, with an extra diagnostic on each
// use of a package-level function (the global, unseeded state).
package globalrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the globalrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand and math/rand/v2 (global state, randomly seeded, sequences unstable " +
		"across Go releases); use the deterministic splittable internal/rng instead",
	Run: run,
}

func randPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && randPath(p) {
				pass.Reportf(imp.Pos(), "import of %s (use internal/rng: deterministic, splittable, stable across Go versions)", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || !randPath(obj.Pkg().Path()) {
				return true
			}
			// Package-level functions are the global (unseeded or
			// shared-state) surface; methods on an explicit *rand.Rand
			// are already covered by the import diagnostic.
			if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
				pass.Reportf(sel.Pos(), "global %s.%s draws from shared hidden state (use internal/rng and thread a *rng.Rand)",
					obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
	return nil
}
