package globalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalrand"
)

// TestV1 pins the math/rand surface: the import and every package-level
// function use are flagged; explicit threaded generator state is not.
func TestV1(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer, "a")
}

// TestV2 pins math/rand/v2, which is always randomly seeded.
func TestV2(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer, "b")
}
