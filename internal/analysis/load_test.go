package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestLoadTree pins the loader basics on the allow fixture: packages
// are parsed, type-checked and carry their directives.
func TestLoadTree(t *testing.T) {
	pkgs, err := analysis.LoadTree("testdata/allow/src", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "p" {
		t.Errorf("package path %q, want %q", p.Path, "p")
	}
	if p.Types == nil || p.Info == nil {
		t.Fatal("package not type-checked")
	}
	if p.Types.Name() != "p" {
		t.Errorf("type-checked name %q, want %q", p.Types.Name(), "p")
	}
	if len(p.Directives) != 5 {
		t.Errorf("found %d directives, want 5", len(p.Directives))
	}
	malformed := 0
	for _, d := range p.Directives {
		if d.Err != "" {
			malformed++
		}
	}
	if malformed != 1 {
		t.Errorf("found %d malformed directives, want 1 (the reasonless one)", malformed)
	}
}

// TestLoadModule loads this repo's own module and spot-checks that the
// prefix is applied, test files are excluded and testdata is skipped.
func TestLoadModule(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*analysis.Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, want := range []string{"repro/internal/sim", "repro/internal/analysis", "repro/cmd/moonvet", "repro/scripts/bench2json"} {
		if byPath[want] == nil {
			t.Errorf("module load missed package %s", want)
		}
	}
	for path := range byPath {
		if filepath.Base(path) == "testdata" {
			t.Errorf("loaded a testdata package: %s", path)
		}
	}
	sim := byPath["repro/internal/sim"]
	if sim == nil {
		t.Fatal("no sim package")
	}
	for _, f := range sim.Files {
		name := sim.Fset.Position(f.Pos()).Filename
		if filepath.Base(name) == "sim_test.go" {
			t.Errorf("loader picked up test file %s", name)
		}
	}

	// Filter: exact, recursive, and failing patterns.
	got, err := analysis.Filter(pkgs, root, []string{"./internal/sim"})
	if err != nil || len(got) != 1 || got[0] != sim {
		t.Errorf("Filter exact = %v pkgs, err %v", len(got), err)
	}
	got, err = analysis.Filter(pkgs, root, []string{"./internal/..."})
	if err != nil || len(got) < 10 {
		t.Errorf("Filter recursive = %v pkgs, err %v", len(got), err)
	}
	if _, err := analysis.Filter(pkgs, root, []string{"./nonexistent/..."}); err == nil {
		t.Error("Filter accepted a pattern matching nothing")
	}
}
