// Package analysis is a self-contained static-analysis framework modeled
// on golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser and go/types so the repo stays dependency-free.
//
// It exists to machine-check the determinism and concurrency invariants
// everything in this reproduction rests on — byte-identical goldens,
// seed-pinned fault schedules, metrics-off bit-identity — which otherwise
// live only in reviewers' heads and in golden tests that catch violations
// after they ship. The project-specific analyzers live in subpackages
// (wallclock, globalrand, detrange, nilmetrics, lockatomic); cmd/moonvet
// is the multichecker driver that runs the whole suite over the module.
//
// The API mirrors go/analysis deliberately: an Analyzer owns a Run
// function over a Pass (one analyzer × one type-checked package), and
// reports Diagnostics at token positions. Should the x/tools dependency
// ever become available, the analyzers port over nearly verbatim.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //moonvet:allow directives. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description of the invariant enforced,
	// shown by `moonvet -list`.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Report/Reportf. A non-nil error aborts the whole run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Filled in by the runner.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name (filled by the runner).
	Analyzer string
}

// Finding is a positioned diagnostic resolved against the file set,
// ready for printing and for suppression matching.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Run applies each analyzer to each package and returns all findings
// sorted by file position. Suppression directives are not applied here —
// that is the multichecker's job (see Check) — so tests can assert on the
// raw findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Position: pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
