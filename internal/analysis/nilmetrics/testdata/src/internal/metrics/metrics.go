// Package metrics is the nilmetrics fixture: a miniature of the real
// instrument-handle surface. Exported methods on handle types must
// open with a nil-receiver guard or delegate to a method on the same
// receiver; value receivers are flagged outright.
package metrics

// Counter mirrors the real handle type of the same name.
type Counter struct {
	total  float64
	series *Series
}

// Add guards correctly: allowed.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.total += v
}

// Inc delegates to Add, which owns the guard: allowed.
func (c *Counter) Inc() { c.Add(1) }

// Value guards with the operands swapped: allowed.
func (c *Counter) Value() float64 {
	if nil == c {
		return 0
	}
	return c.total
}

// Total is missing the guard: flagged.
func (c *Counter) Total() float64 { // want `exported method Counter.Total must begin with`
	return c.total
}

// Reset guards too late — the receiver is dereferenced first: flagged.
func (c *Counter) Reset() { // want `exported method Counter.Reset must begin with`
	c.total = 0
	if c == nil {
		return
	}
}

// unexportedPeek has no guard but is unexported: the contract binds the
// exported surface, so this is allowed.
func (c *Counter) unexportedPeek() float64 {
	return c.total
}

// Gauge mirrors the real handle type of the same name.
type Gauge struct {
	v float64
}

// Snapshot has a value receiver: calling it on a nil *Gauge
// dereferences before any guard could run, so it is flagged.
func (g Gauge) Snapshot() float64 { // want `method Gauge.Snapshot has a value receiver`
	return g.v
}

// Series mirrors the real handle type of the same name.
type Series struct {
	points []float64
}

// Observe discards its receiver, so it cannot guard: flagged.
func (*Series) Observe(v float64) { // want `discards its receiver`
	_ = v
}

// report is not a handle type: its methods are unconstrained.
type report struct {
	n int
}

func (r *report) Count() int { return r.n }
