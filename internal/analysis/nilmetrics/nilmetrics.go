// Package nilmetrics enforces the nil-handle contract of the metrics
// bus.
//
// internal/metrics promises that a nil Collector hands out nil
// instrument handles and that every method on a nil handle is a no-op:
// that single trick is why instrumented hot paths run bit-identically
// and at 0 allocs/op with collection off — there are no "metrics
// enabled" branches anywhere in model code. The contract is load-bearing
// and trivially easy to break by adding one method without the guard, so
// this analyzer requires every exported method on a handle type to
// either open with a nil-receiver guard or consist solely of a
// delegation to another method on the same receiver (which then owns the
// guard). Value receivers are flagged outright: calling one on a nil
// pointer dereferences it before the body can check anything.
package nilmetrics

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// PackageSuffix selects the package held to the nil-handle contract.
var PackageSuffix = "internal/metrics"

// HandleTypes are the nil-safe handle types: a nil value of any of
// these must be a valid "collection off" no-op.
var HandleTypes = map[string]bool{
	"Collector":  true,
	"Counter":    true,
	"Gauge":      true,
	"Series":     true,
	"Histogram":  true,
	"StreamSink": true,
}

// Analyzer is the nilmetrics analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nilmetrics",
	Doc: "every exported method on internal/metrics handle types must begin with a nil-receiver " +
		"guard (or delegate to a method that does); nil handles are the metrics-off fast path " +
		"behind bit-identical, 0 allocs/op instrumented code",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path != PackageSuffix && !strings.HasSuffix(path, "/"+PackageSuffix) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			tname, ptr := recvType(recv.Type)
			if !HandleTypes[tname] {
				continue
			}
			if !ptr {
				pass.Reportf(fd.Pos(),
					"method %s.%s has a value receiver: calling it on a nil *%s dereferences before any guard can run (use a pointer receiver)",
					tname, fd.Name.Name, tname)
				continue
			}
			if fd.Body == nil {
				continue
			}
			recvName := ""
			if len(recv.Names) == 1 {
				recvName = recv.Names[0].Name
			}
			if recvName == "" || recvName == "_" {
				pass.Reportf(fd.Pos(),
					"method %s.%s discards its receiver so it cannot nil-guard (name the receiver and guard it)",
					tname, fd.Name.Name)
				continue
			}
			if beginsWithNilGuard(fd.Body, recvName) || delegatesToReceiver(fd.Body, recvName) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"exported method %s.%s must begin with `if %s == nil { return ... }` (nil handles are the metrics-off no-op path)",
				tname, fd.Name.Name, recvName)
		}
	}
	return nil
}

// recvType unwraps a method receiver type to (type name, is-pointer).
func recvType(e ast.Expr) (string, bool) {
	ptr := false
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			ptr = true
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = t.X
		case *ast.Ident:
			return t.Name, ptr
		default:
			return "", ptr
		}
	}
}

// beginsWithNilGuard reports whether the body's first statement is
// `if <recv> == nil { return ... }` (the guard's body must do nothing
// but return).
func beginsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	if !isNilCompare(cond.X, cond.Y, recvName) && !isNilCompare(cond.Y, cond.X, recvName) {
		return false
	}
	if len(ifs.Body.List) != 1 {
		return false
	}
	_, isReturn := ifs.Body.List[0].(*ast.ReturnStmt)
	return isReturn
}

func isNilCompare(a, b ast.Expr, recvName string) bool {
	id, ok := a.(*ast.Ident)
	if !ok || id.Name != recvName {
		return false
	}
	nb, ok := b.(*ast.Ident)
	return ok && nb.Name == "nil"
}

// delegatesToReceiver reports whether the body is a single statement
// whose sole action is calling another method on the receiver, e.g.
// `func (c *Counter) Inc() { c.Add(1) }` — the callee then owns the nil
// guard (and is itself checked if exported).
func delegatesToReceiver(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) != 1 {
		return false
	}
	var call ast.Expr
	switch s := body.List[0].(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	ce, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recvName
}
