package nilmetrics_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nilmetrics"
)

// TestNilGuards pins the nil-handle contract: exported methods on
// handle types must guard or delegate; value receivers and discarded
// receivers are flagged; unexported methods and non-handle types are
// unconstrained.
func TestNilGuards(t *testing.T) {
	analysistest.Run(t, "testdata", nilmetrics.Analyzer, "internal/metrics")
}
