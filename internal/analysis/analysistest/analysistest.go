// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixtures live under <testdata>/src/<importpath>/. A line that should
// be flagged carries a trailing comment of the form
//
//	code() // want "regexp" "second regexp"
//
// with one quoted or backquoted regexp per expected diagnostic on that
// line. The test fails on any unmatched expectation and on any
// unexpected diagnostic, so fixtures pin both the flagged and the
// allowed patterns.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one // want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the fixture tree at testdata/src, runs the analyzer over
// the packages with the given import paths, and reports mismatches
// between diagnostics and // want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadTree(filepath.Join(testdata, "src"), "")
	if err != nil {
		t.Fatalf("loading %s: %v", testdata, err)
	}
	byPath := make(map[string]*analysis.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var selected []*analysis.Package
	for _, path := range paths {
		p := byPath[path]
		if p == nil {
			t.Fatalf("fixture package %q not found under %s/src", path, testdata)
		}
		selected = append(selected, p)
	}

	findings, err := analysis.Run(selected, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, p := range selected {
		for _, f := range p.Files {
			ws, err := fileExpectations(p.Fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.met || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// fileExpectations parses the // want comments of one file.
func fileExpectations(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			specs := wantRE.FindAllString(text, -1)
			if len(specs) == 0 {
				return nil, fmt.Errorf("%s: want comment with no quoted regexp", pos)
			}
			for _, spec := range specs {
				var pat string
				if strings.HasPrefix(spec, "`") {
					pat = strings.Trim(spec, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(spec)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, spec, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out, nil
}
