package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectivePrefix introduces a suppression comment:
//
//	//moonvet:allow <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory — every suppression must say why the invariant
// does not apply — and is surfaced in the multichecker's summary so
// suppression growth stays visible PR over PR. A directive written at
// the end of a line suppresses matching diagnostics reported on that
// line; a directive on a line of its own suppresses them on the next
// line. A directive that suppresses nothing is itself an error, so stale
// suppressions cannot linger after the code they excused is gone.
const DirectivePrefix = "//moonvet:allow"

// Directive is one parsed //moonvet:allow comment.
type Directive struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
	// Line is the source line the directive suppresses diagnostics on.
	Line int
	// Err describes a malformed directive (missing reason, empty
	// analyzer list). Malformed directives are always reported.
	Err string

	used bool
}

// parseDirectives extracts the //moonvet:allow directives of one file.
// src is the file's source, used to decide whether a directive stands
// alone on its line (covering the next line) or trails code (covering
// its own line).
func parseDirectives(fset *token.FileSet, f *ast.File, src []byte) []*Directive {
	var out []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &Directive{Pos: pos, Line: pos.Line}
			if standaloneComment(fset, c, src) {
				d.Line = pos.Line + 1
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.Err = "missing analyzer list and reason"
			case len(fields) == 1:
				d.Analyzers = splitList(fields[0])
				d.Err = "missing reason (write //moonvet:allow <analyzer> <reason>)"
			default:
				d.Analyzers = splitList(fields[0])
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// standaloneComment reports whether nothing but whitespace precedes c on
// its source line.
func standaloneComment(fset *token.FileSet, c *ast.Comment, src []byte) bool {
	tf := fset.File(c.Pos())
	if tf == nil || src == nil {
		return fset.Position(c.Pos()).Column == 1
	}
	start := tf.Offset(tf.LineStart(fset.Position(c.Pos()).Line))
	end := tf.Offset(c.Pos())
	if start < 0 || end > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:end])) == ""
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// Suppression records one applied directive for the summary.
type Suppression struct {
	Position token.Position
	Analyzer string
	Reason   string
}

// Result is the outcome of a Check run.
type Result struct {
	// Findings are the surviving (unsuppressed) diagnostics plus any
	// directive errors, sorted by position.
	Findings []Finding
	// Suppressed records each diagnostic silenced by a directive.
	Suppressed []Suppression
}

// Ok reports whether the checked code is clean.
func (r *Result) Ok() bool { return len(r.Findings) == 0 }

// Summary renders the suppression count summary, one line per analyzer,
// for the CI job summary. Empty string when nothing is suppressed.
func (r *Result) Summary() string {
	if len(r.Suppressed) == 0 {
		return ""
	}
	byAnalyzer := make(map[string]int)
	for _, s := range r.Suppressed {
		byAnalyzer[s.Analyzer]++
	}
	names := make([]string, 0, len(byAnalyzer))
	for n := range byAnalyzer {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%d suppression(s):\n", len(r.Suppressed))
	for _, n := range names {
		fmt.Fprintf(&b, "  %s: %d\n", n, byAnalyzer[n])
	}
	for _, s := range r.Suppressed {
		fmt.Fprintf(&b, "  %s: %s: %s\n", s.Position, s.Analyzer, s.Reason)
	}
	return b.String()
}

// Check runs the analyzers over the packages and applies the packages'
// //moonvet:allow directives: a diagnostic is suppressed when a
// well-formed directive naming its analyzer covers its line in its file.
// Malformed directives, unknown analyzer names in directives, and
// directives that suppress nothing are reported as findings under the
// pseudo-analyzer "moonvet".
func Check(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	findings, err := Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	res := &Result{}
	var directives []*Directive
	for _, pkg := range pkgs {
		for _, d := range pkg.Directives {
			if d.Err != "" {
				res.Findings = append(res.Findings, Finding{
					Position: d.Pos, Analyzer: "moonvet",
					Message: "malformed directive: " + d.Err,
				})
				continue
			}
			bad := false
			for _, a := range d.Analyzers {
				if !known[a] {
					res.Findings = append(res.Findings, Finding{
						Position: d.Pos, Analyzer: "moonvet",
						Message: fmt.Sprintf("directive names unknown analyzer %q", a),
					})
					bad = true
				}
			}
			if !bad {
				directives = append(directives, d)
			}
		}
	}

	covers := func(d *Directive, f Finding) bool {
		if d.Pos.Filename != f.Position.Filename || d.Line != f.Position.Line {
			return false
		}
		for _, a := range d.Analyzers {
			if a == f.Analyzer {
				return true
			}
		}
		return false
	}
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if covers(d, f) {
				d.used = true
				suppressed = true
				res.Suppressed = append(res.Suppressed, Suppression{
					Position: f.Position, Analyzer: f.Analyzer, Reason: d.Reason,
				})
				break
			}
		}
		if !suppressed {
			res.Findings = append(res.Findings, f)
		}
	}
	for _, d := range directives {
		if !d.used {
			res.Findings = append(res.Findings, Finding{
				Position: d.Pos, Analyzer: "moonvet",
				Message: fmt.Sprintf("directive suppresses nothing (analyzers %s have no finding on line %d)",
					strings.Join(d.Analyzers, ","), d.Line),
			})
		}
	}
	sortFindings(res.Findings)
	return res, nil
}
