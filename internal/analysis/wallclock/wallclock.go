// Package wallclock forbids reading the wall clock in the deterministic
// half of the codebase.
//
// Every golden test, scenario hash and metrics-off bit-identity claim in
// this repo assumes that a simulation's output is a pure function of its
// inputs and seeds. One stray time.Now in the simulator, the network
// model, the schedulers or the metrics snapshot path silently breaks all
// of them. The live engine, the transport fabric, the HTTP service and
// the harness's live half legitimately live on real time and are not
// swept.
package wallclock

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// DeterministicPaths lists the import-path suffixes of packages whose
// output must be a pure function of inputs and seeds. A package is swept
// when its path equals, or ends with "/" + one of these entries.
var DeterministicPaths = []string{
	"internal/sim",
	"internal/netmodel",
	"internal/dfs",
	"internal/mapred",
	"internal/cluster",
	"internal/core",
	"internal/sched",
	"internal/scenario",
	"internal/metrics",
	"internal/trace",
	"internal/workload",
	"internal/rng",
}

// forbidden are the package-level time functions that read or wait on
// the wall clock. Pure conversions and constructors (time.Duration,
// time.Unix, time.Date, time.ParseDuration, ...) are deterministic and
// stay allowed.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer is the wallclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep/timers) in deterministic packages; " +
		"simulation output must be a pure function of inputs and seeds",
	Run: run,
}

// Deterministic reports whether the package at path is held to the
// no-wall-clock invariant.
func Deterministic(path string) bool {
	for _, p := range DeterministicPaths {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s in deterministic package %s (runs must be a pure function of inputs and seeds; use the simulation clock)",
					obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
