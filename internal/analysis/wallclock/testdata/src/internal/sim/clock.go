// Package sim is a wallclock fixture standing in for a deterministic
// package: every wall-clock read must be flagged, pure time arithmetic
// must not.
package sim

import "time"

func bad() time.Duration {
	start := time.Now()                     // want `time.Now in deterministic package`
	time.Sleep(time.Millisecond)            // want `time.Sleep in deterministic package`
	defer time.NewTimer(time.Second).Stop() // want `time.NewTimer in deterministic package`
	<-time.After(time.Second)               // want `time.After in deterministic package`
	return time.Since(start)                // want `time.Since in deterministic package`
}

// good exercises the deterministic parts of package time, which stay
// allowed: conversions, constants and parsing do not read the clock.
func good() time.Duration {
	d, _ := time.ParseDuration("3s")
	u := time.Unix(0, 0)
	_ = u
	return d + 2*time.Second
}
