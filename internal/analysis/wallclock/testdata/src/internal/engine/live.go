// Package engine is a wallclock fixture standing in for the live half
// of the codebase, which legitimately runs on real time: nothing here
// may be flagged.
package engine

import "time"

func heartbeat() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
