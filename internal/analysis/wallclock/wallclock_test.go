package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclock"
)

// TestDeterministicPackage pins the flagged surface: every wall-clock
// read in a deterministic package is a diagnostic, pure time arithmetic
// is not.
func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "internal/sim")
}

// TestLivePackageAllowed pins the allowlist: the live engine may read
// the wall clock freely.
func TestLivePackageAllowed(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "internal/engine")
}

func TestDeterministic(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sim":      true,
		"internal/sim":            true,
		"repro/internal/engine":   false,
		"repro/internal/simulate": false,
		"repro/cmd/moonbench":     false,
	} {
		if got := wallclock.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
