package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package, plus the suppression
// directives found in its files.
type Package struct {
	// Path is the import path ("repro/internal/sim", or for fixture
	// trees the path relative to the tree root, e.g. "internal/sim").
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Directives are the //moonvet:allow comments found in the
	// package's files (including malformed ones; see Directive.Err).
	Directives []*Directive
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (the directory containing go.mod). Directories
// named testdata or vendor, and hidden or underscore-prefixed
// directories, are skipped — the same pruning the go tool applies.
//
// Standard-library imports are resolved by compiling their source from
// GOROOT (importer "source"), so loading works offline; the module's own
// packages are type-checked in dependency order and resolved against
// each other. The module must have no external dependencies — this repo
// is deliberately dependency-free, and the loader enforces it by failing
// on any import that is neither std nor module-local.
func LoadModule(root string) ([]*Package, error) {
	modfile := filepath.Join(root, "go.mod")
	data, err := os.ReadFile(modfile)
	if err != nil {
		return nil, fmt.Errorf("analysis: no module at %s: %w", root, err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: %s has no module directive", modfile)
	}
	return LoadTree(root, module)
}

// LoadTree parses and type-checks every package in the directory tree at
// root. A package's import path is prefix + "/" + its path relative to
// root (or prefix alone at the root). This is the engine behind both
// LoadModule (prefix = module path) and analysistest fixture trees
// (root = testdata/src, prefix = "").
func LoadTree(root, prefix string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		byPath: make(map[string]*Package),
	}

	// Pass 1: find and parse every package directory.
	var paths []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := l.parseDir(root, prefix, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			l.byPath[pkg.Path] = pkg
			paths = append(paths, pkg.Path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	// Pass 2: type-check in dependency order.
	var out []*Package
	for _, p := range paths {
		pkg, err := l.check(p, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type loader struct {
	fset   *token.FileSet
	std    types.ImporterFrom
	byPath map[string]*Package
}

// parseDir parses the non-test .go files of dir into a Package, or
// returns (nil, nil) if the directory holds no Go source.
func (l *loader) parseDir(root, prefix, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var srcs [][]byte
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		fname := filepath.Join(dir, name)
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fname, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
		srcs = append(srcs, src)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := prefix
	if rel != "." {
		if path != "" {
			path += "/"
		}
		path += filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	for i, f := range files {
		pkg.Directives = append(pkg.Directives, parseDirectives(l.fset, f, srcs[i])...)
	}
	return pkg, nil
}

// check type-checks path (and, recursively, its module-local imports
// first). stack detects import cycles.
func (l *loader) check(path string, stack []string) (*Package, error) {
	pkg := l.byPath[path]
	if pkg == nil {
		return nil, fmt.Errorf("analysis: import %q is neither standard library nor module-local (external dependencies are not supported)", path)
	}
	if pkg.Types != nil {
		return pkg, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
	}
	stack = append(stack, path)

	// Type-check dependencies first so our importer can hand them out.
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, ok := l.byPath[p]; ok {
				if _, err := l.check(p, stack); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if terr == nil {
				terr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, info)
	if terr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, terr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// Import implements types.Importer for the type-checker: module-local
// packages come from the loader's cache, everything else from the
// standard library's source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %q imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// Filter returns the packages matching the given go-tool-style patterns,
// resolved against the module root: "./..." keeps everything, "./x/..."
// keeps x and its subpackages, "./x" keeps x exactly. With no patterns
// everything is kept.
func Filter(pkgs []*Package, root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	keep := make(map[*Package]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "./" {
			pat = ""
		} else {
			pat = strings.TrimPrefix(pat, "./")
		}
		dir := filepath.Join(root, filepath.FromSlash(pat))
		matched := false
		for _, p := range pkgs {
			switch {
			case p.Dir == dir:
				keep[p] = true
				matched = true
			case recursive && strings.HasPrefix(p.Dir, dir+string(filepath.Separator)):
				keep[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("analysis: pattern %q matched no packages", pat+map[bool]string{true: "/...", false: ""}[recursive])
		}
	}
	var out []*Package
	for _, p := range pkgs {
		if keep[p] {
			out = append(out, p)
		}
	}
	return out, nil
}
