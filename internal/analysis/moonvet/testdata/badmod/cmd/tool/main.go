// Command tool violates globalrand so the driver tests prove cmd/
// trees are swept like everything else.
package main

import "math/rand"

func main() {
	_ = rand.Intn(6)
}
