// Package sim violates the wallclock invariant (it is named like a
// deterministic package) and shows a correctly suppressed detrange
// finding; the moonvet driver tests assert on both.
package sim

import (
	"time"

	"badmod/internal/util"
)

// Tick reads the wall clock in a deterministic package: flagged.
func Tick() time.Time {
	return time.Now()
}

// Keys collects map keys without sorting, excused with a reason.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		//moonvet:allow detrange fixture exercises a documented suppression
		keys = append(keys, k)
	}
	return util.Identity(keys)
}
