// Package util is clean: it exists so the fixture module exercises
// module-local imports and a zero-finding package for pattern filtering.
package util

// Identity returns its argument.
func Identity[T any](v T) T { return v }
