package moonvet_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/moonvet"
)

// TestBadModule drives the multichecker end to end over the fixture
// module: wallclock and globalrand findings fail the run, the
// documented detrange suppression is applied and summarized, and cmd/
// trees are swept like internal ones.
func TestBadModule(t *testing.T) {
	var out, summary strings.Builder
	code := moonvet.Main("testdata/badmod", []string{"./..."}, &out, &summary)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nout:\n%s", code, out.String())
	}
	for _, want := range []string{
		"internal/sim/sim.go", "wallclock", "time.Now in deterministic package",
		"cmd/tool/main.go", "globalrand", "import of math/rand",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "detrange") {
		t.Errorf("suppressed detrange finding leaked into output:\n%s", out.String())
	}
	for _, want := range []string{"1 suppression(s)", "detrange: 1", "fixture exercises a documented suppression"} {
		if !strings.Contains(summary.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, summary.String())
		}
	}
}

// TestPatternRestriction proves patterns narrow the sweep: the clean
// util package alone passes even though the module as a whole fails.
func TestPatternRestriction(t *testing.T) {
	var out, summary strings.Builder
	if code := moonvet.Main("testdata/badmod", []string{"./internal/util"}, &out, &summary); code != 0 {
		t.Fatalf("exit code %d for clean package, want 0\nout:\n%s", code, out.String())
	}
	if !strings.Contains(summary.String(), "0 suppressions") {
		t.Errorf("summary for clean run should count 0 suppressions, got:\n%s", summary.String())
	}
}

// TestSuiteComplete pins the suite composition CI relies on.
func TestSuiteComplete(t *testing.T) {
	want := map[string]bool{
		"wallclock": false, "globalrand": false, "detrange": false,
		"nilmetrics": false, "lockatomic": false, "shardsafe": false,
	}
	suite := moonvet.Suite()
	for _, a := range suite {
		if _, ok := want[a.Name]; !ok {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		want[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
	if len(suite) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(suite), len(want))
	}
}

// TestRepoIsClean is the acceptance criterion as a test: the repo's own
// module must pass the full suite (suppressions allowed, each carrying
// its reason).
func TestRepoIsClean(t *testing.T) {
	root, err := moonvet.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, summary strings.Builder
	if code := moonvet.Main(root, []string{"./..."}, &out, &summary); code != 0 {
		t.Fatalf("moonvet fails on this repo (exit %d):\n%s", code, out.String())
	}
}
