// Package moonvet assembles the project's analyzer suite and implements
// the multichecker driver behind cmd/moonvet: load the module, run every
// analyzer, apply //moonvet:allow suppressions, print findings and the
// suppression summary.
//
// It sits between the framework (internal/analysis) and the concrete
// analyzers so the dependency arrow stays one-way:
// framework <- analyzers <- moonvet <- cmd/moonvet.
package moonvet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/lockatomic"
	"repro/internal/analysis/nilmetrics"
	"repro/internal/analysis/shardsafe"
	"repro/internal/analysis/wallclock"
)

// Suite returns the full moonvet analyzer suite.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		globalrand.Analyzer,
		detrange.Analyzer,
		nilmetrics.Analyzer,
		lockatomic.Analyzer,
		shardsafe.Analyzer,
	}
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("moonvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Main runs the suite over the module containing dir, restricted to the
// go-tool-style package patterns (all packages when none are given), and
// writes findings to out and the suppression summary to summary (either
// may be nil). It returns the process exit code: 0 clean, 1 findings,
// 2 usage or load failure.
func Main(dir string, patterns []string, out, summary io.Writer) int {
	if out == nil {
		out = io.Discard
	}
	if summary == nil {
		summary = io.Discard
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	pkgs, err = analysis.Filter(pkgs, root, patterns)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	res, err := analysis.Check(pkgs, Suite())
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	for _, f := range res.Findings {
		fmt.Fprintln(out, f)
	}
	if s := res.Summary(); s != "" {
		fmt.Fprint(summary, s)
	} else {
		fmt.Fprintln(summary, "0 suppressions")
	}
	if !res.Ok() {
		return 1
	}
	return 0
}
