package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// dummy flags every function whose name starts with "Bad".
var dummy = &analysis.Analyzer{
	Name: "dummy",
	Doc:  "flags functions named Bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func loadAllowFixture(t *testing.T) []*analysis.Package {
	t.Helper()
	pkgs, err := analysis.LoadTree("testdata/allow/src", "")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestAllowDirectives pins the whole suppression surface: inline and
// standalone directives suppress (and are counted with their reasons),
// while unsuppressed findings, reasonless directives, unknown analyzer
// names and directives that suppress nothing all fail the check.
func TestAllowDirectives(t *testing.T) {
	res, err := analysis.Check(loadAllowFixture(t), []*analysis.Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed %d findings, want 2: %+v", len(res.Suppressed), res.Suppressed)
	}
	wantReasons := map[string]bool{
		"inline directives cover their own line":    false,
		"standalone directives cover the next line": false,
	}
	for _, s := range res.Suppressed {
		if _, ok := wantReasons[s.Reason]; !ok {
			t.Errorf("unexpected suppression reason %q", s.Reason)
		}
		wantReasons[s.Reason] = true
	}
	for r, seen := range wantReasons {
		if !seen {
			t.Errorf("no suppression with reason %q", r)
		}
	}

	if res.Ok() {
		t.Fatal("Check passed; want findings for the unsuppressed and malformed cases")
	}
	var got []string
	for _, f := range res.Findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	wantSubstrings := []string{
		"dummy: function BadUnsuppressed is bad",
		"moonvet: malformed directive: missing reason",
		// The reasonless directive does not suppress, so its finding
		// survives too.
		"dummy: function BadMissingReason is bad",
		`moonvet: directive names unknown analyzer "nosuch"`,
		"dummy: function BadUnknownAnalyzer is bad",
		"moonvet: directive suppresses nothing",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding containing %q in:\n%s", want, strings.Join(got, "\n"))
		}
	}
	if len(res.Findings) != len(wantSubstrings) {
		t.Errorf("got %d findings, want %d:\n%s", len(res.Findings), len(wantSubstrings), strings.Join(got, "\n"))
	}
}

// TestMissingReasonFails pins the satellite requirement on its own: a
// //moonvet:allow with no reason must fail the run even though the
// directive names the right analyzer on the right line.
func TestMissingReasonFails(t *testing.T) {
	res, err := analysis.Check(loadAllowFixture(t), []*analysis.Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	foundMalformed := false
	foundSurviving := false
	for _, f := range res.Findings {
		if f.Analyzer == "moonvet" && strings.Contains(f.Message, "missing reason") {
			foundMalformed = true
		}
		if f.Analyzer == "dummy" && strings.Contains(f.Message, "BadMissingReason") {
			foundSurviving = true
		}
	}
	if !foundMalformed {
		t.Error("reasonless directive was not reported as malformed")
	}
	if !foundSurviving {
		t.Error("reasonless directive still suppressed its finding")
	}
}

// TestRunWithoutDirectives checks the raw Run path used by
// analysistest: suppressions are not applied there.
func TestRunWithoutDirectives(t *testing.T) {
	findings, err := analysis.Run(loadAllowFixture(t), []*analysis.Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 5 {
		t.Errorf("Run returned %d findings, want all 5 Bad* functions: %+v", len(findings), findings)
	}
}
