package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroSeedNonZeroState(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitDecorrelates(t *testing.T) {
	a := New(7)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams matched %d/1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(19)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(5, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v, want ~4", variance)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		x := r.TruncNormal(409, 200, 30, 3600)
		if x < 30 || x > 3600 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestTruncNormalDegenerateRangeClamps(t *testing.T) {
	r := New(31)
	// Mean far outside [lo,hi]: resampling fails, clamping must kick in.
	for i := 0; i < 100; i++ {
		x := r.TruncNormal(1000, 1, 0, 10)
		if x != 10 {
			t.Fatalf("expected clamp to hi=10, got %v", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(409)
	}
	mean := sum / n
	if math.Abs(mean-409)/409 > 0.02 {
		t.Fatalf("exponential mean = %v, want ~409", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(41)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(43)
	if r.Poisson(0) != 0 || r.Poisson(-5) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// Property: Intn always lands in range and Perm is always a permutation.
func TestQuickProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := New(seed)
		v := r.Intn(n)
		if v < 0 || v >= n {
			return false
		}
		p := r.Perm(n % 100)
		seen := make(map[int]bool, len(p))
		for _, x := range p {
			if x < 0 || x >= len(p) || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
