// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used by the MOON simulator.
//
// The simulator must produce bit-identical runs for a given seed regardless
// of Go version, so rng implements its own generator (xoshiro256** seeded
// via splitmix64) instead of relying on math/rand. Streams can be split so
// that independent subsystems (trace generation, workload service times,
// scheduling jitter) draw from decorrelated sequences without sharing state.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; split one stream per goroutine instead.
type Rand struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is used to seed and split xoshiro256** states.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give
// decorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed yields one
	// with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is decorrelated from r's.
// r itself advances by one draw.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, debiased.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller with caching).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// TruncNormal returns a normal variate clamped to [lo, hi] by resampling
// (up to a bounded number of attempts, then clamping). Used for outage
// durations which must be positive.
func (r *Rand) TruncNormal(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := r.Normal(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	x := r.Normal(mean, stddev)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponential variate with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return mean * r.ExpFloat64()
}

// Poisson returns a Poisson variate with the given mean lambda.
// For small lambda it uses Knuth's product method; for large lambda the
// normal approximation with continuity correction.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	x := r.Normal(lambda, math.Sqrt(lambda))
	if x < 0 {
		return 0
	}
	return int(x + 0.5)
}
