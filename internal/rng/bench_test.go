package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(409, 200)
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
