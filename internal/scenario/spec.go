// Package scenario is the declarative experiment API of the reproduction:
// one versioned, JSON-serializable Spec fully describes an experiment —
// cluster and churn (including correlated lab-session outages), stack
// deltas over the Hadoop/MOON presets (net, dfs, sched), workload (single
// or multi-job with staggered or Poisson arrivals and weighted shares),
// sweep axes (rates, seeds, scale, parallelism) and metrics settings.
//
// Specs decode strictly (unknown fields are rejected), validate, default,
// and round-trip losslessly: Parse(WriteJSON(spec)) == spec, byte for byte
// on re-export. Compile lowers a Spec to a harness.Config plus a Plan of
// sweeps; Execute runs the plan. The moonbench flag surface is implemented
// on top of this package (FromFlags builds a Spec), so a flag invocation
// and the equivalent scenario file produce byte-identical output — there
// is exactly one source of truth for experiment assembly.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"

	"repro/internal/harness"
	"repro/internal/mapred"
	"repro/internal/metrics"
)

// Schema is the versioned identifier of the scenario JSON format. Bump the
// suffix on breaking changes to the Spec layout.
const Schema = "moon-scenario/v1"

// Vocabulary of the flag-compatible enumerations; `moonbench -list` prints
// these.
var (
	// Experiments are the valid built-in experiment selectors. "live"
	// runs the goroutine engine (execution "live") and is not part of
	// "all", which covers the simulated paper evaluation.
	Experiments = []string{
		"fig1", "fig4", "fig5", "fig6", "table2", "fig7", "multi", "ablation", "correlated", "all", "live",
	}
	// Apps are the paper's Table I applications.
	Apps = []string{"sort", "wordcount"}
	// ArrivalProcesses are the supported multi-job submission processes.
	ArrivalProcesses = []string{"staggered", "poisson"}
	// Presets are the stack presets custom variants build on.
	Presets = []string{"hadoop", "moon", "moon-hybrid"}
	// Renders are the output tables an experiment can print.
	Renders = []string{"times", "duplicates", "table2", "multi"}
)

// Spec is one complete, serializable experiment definition.
type Spec struct {
	// Schema must be "moon-scenario/v1".
	Schema string `json:"schema"`
	// Name identifies the scenario; it is stamped (with the spec hash)
	// into exported metrics reports.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Execution selects the backend: "sim" (the default when empty) runs
	// the event-driven simulator; "live" runs the goroutine engine —
	// real Map/Reduce code on a churning worker pool, every experiment a
	// multi-job policy sweep with trace-compressed churn per cell.
	Execution string `json:"execution,omitempty"`
	// Live configures the live engine; only valid with execution "live".
	Live *LiveSpec `json:"live,omitempty"`
	// Sweep sets the shared sweep axes of every experiment in the spec.
	Sweep SweepSpec `json:"sweep,omitzero"`
	// Metrics configures collection for runs that export a report.
	Metrics MetricsSpec `json:"metrics,omitzero"`
	// Experiments run in order; each is one figure, ablation, correlated
	// study, multi-job sweep or fully custom sweep.
	Experiments []Experiment `json:"experiments"`
}

// SweepSpec sets the sweep axes shared by a spec's experiments.
type SweepSpec struct {
	// Seeds lists the churn realizations to average over (default: [1]).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Rates are the machine-unavailability rates to sweep
	// (default: [0.1, 0.3, 0.5], the paper's axis).
	Rates []float64 `json:"rates,omitempty"`
	// Scale divides workload size for quick runs (default 1 = paper
	// scale).
	Scale int `json:"scale,omitempty"`
	// Parallelism bounds concurrent simulations (0 = all cores,
	// 1 = serial); results are identical at any setting.
	Parallelism int `json:"parallelism,omitempty"`
	// ShardWorkers bounds the worker pool *inside* each simulation, which
	// the intra-run parallel phases (trace generation, netmodel settle
	// sweeps, heartbeat slot scans) fan across (0 = all cores,
	// 1 = serial). Results are byte-identical at any setting; big
	// single-run scenarios want this high and Parallelism at 1, sweeps of
	// many small runs the reverse.
	ShardWorkers int `json:"shard_workers,omitempty"`
}

// LiveSpec shapes the live goroutine engine of an "execution": "live"
// scenario: the worker pool, the churn-trace compression, and the real
// word-count workload each cell executes. Zero fields keep the harness
// defaults (4 volatile + 1 dedicated workers, 120 s traces at 1 ms per
// simulated second, 8×400-word splits, 3 reducers per job).
type LiveSpec struct {
	// VolatileWorkers can be suspended by churn traces;
	// DedicatedWorkers never churn.
	VolatileWorkers  int `json:"volatile_workers,omitempty"`
	DedicatedWorkers int `json:"dedicated_workers,omitempty"`
	// NoDedicatedReplication disables MOON's hybrid-aware intermediate
	// replication (map outputs then live only on their worker, so churn
	// forces re-execution).
	NoDedicatedReplication bool `json:"no_dedicated_replication,omitempty"`
	// HorizonSeconds is the churn-trace length in simulated seconds; the
	// sweep's rates drive each trace's unavailable fraction.
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`
	// CompressionMS maps one simulated trace second to this many
	// wall-clock milliseconds.
	CompressionMS float64 `json:"compression_ms,omitempty"`
	// SplitsPerJob / WordsPerSplit / ReducesPerJob size each word-count
	// job.
	SplitsPerJob  int `json:"splits_per_job,omitempty"`
	WordsPerSplit int `json:"words_per_split,omitempty"`
	ReducesPerJob int `json:"reduces_per_job,omitempty"`
	// TimeoutSeconds bounds one cell's wall-clock execution.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Link tunes the engine's failure-handling protocol (per-operation
	// deadlines, retries, heartbeat lease and session clocks). Zero
	// fields keep the engine defaults.
	Link *LinkSpec `json:"link,omitempty"`
	// Faults runs every cell over the fault-injecting transport (seeded
	// drops, duplicates, delays, connection resets, timed partitions).
	// Only valid with execution "live": the simulator models churn, not
	// a lossy message fabric.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// LinkSpec is the failure-handling protocol's knob block, in milliseconds.
// Zero fields inherit the engine defaults (50 ms operation deadlines,
// heartbeat/lease from the engine's churn clocks, 3 retries backing off
// from 2 ms, sessions that never expire on silence).
type LinkSpec struct {
	// ConnectTimeoutMS bounds one dial including its handshake.
	ConnectTimeoutMS float64 `json:"connect_timeout_ms,omitempty"`
	// SendTimeoutMS / RecvTimeoutMS bound one message operation.
	SendTimeoutMS float64 `json:"send_timeout_ms,omitempty"`
	RecvTimeoutMS float64 `json:"recv_timeout_ms,omitempty"`
	// HeartbeatIntervalMS is the worker's lease-refresh period; it must
	// stay below LeaseDurationMS.
	HeartbeatIntervalMS float64 `json:"heartbeat_interval_ms,omitempty"`
	// LeaseDurationMS is how long a heartbeat keeps a volatile worker's
	// lease fresh; silence beyond it marks the worker suspended.
	LeaseDurationMS float64 `json:"lease_duration_ms,omitempty"`
	// MaxRetries bounds the resends of one unacknowledged message.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMS is the initial resend backoff; it doubles per retry.
	RetryBackoffMS float64 `json:"retry_backoff_ms,omitempty"`
	// SessionExpiryMS evicts a session silent this long; the worker must
	// rejoin under a new session and its stale results are discarded.
	// Zero never expires sessions.
	SessionExpiryMS float64 `json:"session_expiry_ms,omitempty"`
}

// FaultSpec parameterizes the deterministic fault injector: every
// per-message decision is a pure function of (seed, connection, sequence
// number), so one seed pins one reproducible fault schedule.
type FaultSpec struct {
	// Seed selects the fault schedule.
	Seed uint64 `json:"seed,omitempty"`
	// DropRate / DupRate / DelayRate / ResetRate are per-message
	// probabilities in [0, 1].
	DropRate  float64 `json:"drop_rate,omitempty"`
	DupRate   float64 `json:"dup_rate,omitempty"`
	DelayRate float64 `json:"delay_rate,omitempty"`
	// DelayMS is how late a delay-selected message arrives.
	DelayMS   float64 `json:"delay_ms,omitempty"`
	ResetRate float64 `json:"reset_rate,omitempty"`
	// Partitions are timed windows during which matching links drop
	// every message, both directions.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
}

// PartitionSpec is one timed partition window, relative to cluster start.
type PartitionSpec struct {
	StartMS float64 `json:"start_ms,omitempty"`
	// DurationMS must be positive.
	DurationMS float64 `json:"duration_ms"`
	// Workers lists the cut workers by index; empty cuts every link
	// (the master included).
	Workers []int `json:"workers,omitempty"`
}

// MetricsSpec configures cross-layer metrics collection.
type MetricsSpec struct {
	// BucketSeconds is the time-series bucket width (default 600). The
	// CLI only collects when an output path is given (-metrics); the
	// spec fixes how, not whether.
	BucketSeconds float64 `json:"bucket_seconds,omitempty"`
}

// Experiment is one entry of a spec: exactly one of Figure, Ablation,
// Correlated, Multi or Custom selects the kind.
type Experiment struct {
	// Figure selects a paper figure sweep: fig1, fig4, fig5, fig6,
	// table2 or fig7 (fig4/fig5 share the scheduling sweep; fig6/table2
	// share the replication sweep).
	Figure string `json:"figure,omitempty"`
	// Ablation selects a named ablation sweep (homestretch, speccap,
	// hibernate, adaptive).
	Ablation string `json:"ablation,omitempty"`
	// Correlated selects the correlated lab-session churn comparison.
	Correlated bool `json:"correlated,omitempty"`
	// App is the workload ("sort" or "wordcount") for figure (except
	// fig1), ablation, correlated and multi experiments; custom
	// experiments carry their app inside the workload.
	App string `json:"app,omitempty"`
	// Renders overrides the tables printed from the sweep ("times",
	// "duplicates", "table2", "multi"); empty selects the kind's
	// default.
	Renders []string `json:"renders,omitempty"`
	// Multi is the policy-comparison multi-job sweep (the moonbench
	// -experiment multi surface).
	Multi *MultiExperiment `json:"multi,omitempty"`
	// Custom is a fully declarative sweep: explicit workload and
	// variant lines with stack deltas over the presets.
	Custom *CustomExperiment `json:"custom,omitempty"`
}

// MultiExperiment sweeps job-arbitration policies over one identical
// stream of sleep jobs (scheduling-isolated, like Figures 4/5).
type MultiExperiment struct {
	// Jobs is the number of jobs per run.
	Jobs int `json:"jobs"`
	// Arrivals is "staggered" (default) or "poisson".
	Arrivals string `json:"arrivals,omitempty"`
	// IntervalSeconds is the stagger gap or the Poisson mean
	// inter-arrival time.
	IntervalSeconds float64 `json:"interval_seconds,omitempty"`
	// LambdaPerHour is the Poisson arrival rate in jobs/hour, an
	// alternative to IntervalSeconds (exactly one of the two for
	// poisson).
	LambdaPerHour float64 `json:"lambda_per_hour,omitempty"`
	// ArrivalSeed drives the Poisson offset draws, independent of the
	// churn seeds.
	ArrivalSeed uint64 `json:"arrival_seed,omitempty"`
	// Policies lists the arbitration policies to compare, one variant
	// line each (default: fifo and fair).
	Policies []string `json:"policies,omitempty"`
	// Weights are per-job-name weights for the weighted policy (jobs of
	// an n-job stream are named <base>-j0 .. <base>-j<n-1>; live jobs
	// live-j0 .. live-j<n-1>).
	Weights map[string]float64 `json:"weights,omitempty"`
	// Priorities are per-job-name strict-priority ranks for the priority
	// policy (higher wins; absent jobs rank 0).
	Priorities map[string]int `json:"priorities,omitempty"`
}

// CustomExperiment is a declarative sweep: a workload plus variant lines,
// each a stack preset with deltas.
type CustomExperiment struct {
	Title string `json:"title"`
	// Cluster overrides the paper testbed (60 volatile + 6 dedicated)
	// for every variant; a variant's own Cluster replaces it entirely.
	Cluster  *ClusterSpec  `json:"cluster,omitempty"`
	Workload WorkloadSpec  `json:"workload"`
	Variants []VariantSpec `json:"variants"`
}

// WorkloadSpec describes a custom experiment's workload.
type WorkloadSpec struct {
	// App is "sort" or "wordcount" (Table I models).
	App string `json:"app"`
	// Sleep replays the app's task counts and measured durations with
	// negligible data movement (the paper's scheduling-isolation app).
	Sleep bool `json:"sleep,omitempty"`
	// ReduceSlots fixes the slot count sort's reduce fan-out is derived
	// from (NumReduces = 0.9 x slots) instead of the variant's fleet at
	// 2 per node. Scale scenarios need it: without the pin, a 100k-node
	// fleet turns every sort into a 180k-reduce job, and the point of a
	// huge-fleet line is a fixed workload (the paper's 66-node testbed
	// is reduce_slots 132). Sort only — wordcount's fan-out is fixed.
	ReduceSlots *int `json:"reduce_slots,omitempty"`

	// Jobs > 1 turns the workload into a multi-job stream; the fields
	// below shape the arrival process.
	Jobs int `json:"jobs,omitempty"`
	// Arrivals is "staggered" (default) or "poisson".
	Arrivals string `json:"arrivals,omitempty"`
	// IntervalSeconds is the stagger gap or Poisson mean inter-arrival.
	IntervalSeconds float64 `json:"interval_seconds,omitempty"`
	// ArrivalSeed drives Poisson offset draws.
	ArrivalSeed uint64 `json:"arrival_seed,omitempty"`
	// MixScale > 1 alternates full-size jobs with copies scaled down by
	// this factor (staggered arrivals only) — the heterogeneous mix
	// where small jobs queue behind or overtake large ones.
	MixScale int `json:"mix_scale,omitempty"`

	// Replication overrides applied to the base app spec.
	InputFactor        *FactorSpec `json:"input_factor,omitempty"`
	IntermediateFactor *FactorSpec `json:"intermediate_factor,omitempty"`
	// IntermediateClass is "opportunistic" or "reliable".
	IntermediateClass string      `json:"intermediate_class,omitempty"`
	OutputFactor      *FactorSpec `json:"output_factor,omitempty"`
}

// FactorSpec is MOON's two-dimensional replication factor {d,v}.
type FactorSpec struct {
	D int `json:"d"`
	V int `json:"v"`
}

// VariantSpec is one configuration line of a custom sweep: a preset plus
// deltas.
type VariantSpec struct {
	Label string `json:"label"`
	// Preset is "hadoop" (stock, 10-min tracker expiry), "moon" or
	// "moon-hybrid".
	Preset string `json:"preset"`
	// Cluster replaces the experiment-level cluster for this variant.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	Sched   *SchedDelta  `json:"sched,omitempty"`
	DFS     *DFSDelta    `json:"dfs,omitempty"`
	Net     *NetDelta    `json:"net,omitempty"`
	// IntermediateFactor overrides the workload's intermediate
	// replication for this line (the Figure 6 axis).
	IntermediateFactor *FactorSpec `json:"intermediate_factor,omitempty"`
	// Policy arbitrates slots between the jobs of a multi-job workload
	// ("fifo", "fair", "weighted", "priority"; empty = fifo).
	Policy string `json:"policy,omitempty"`
	// Weights are per-job-name weights; they require Policy "weighted".
	Weights map[string]float64 `json:"weights,omitempty"`
	// Priorities are per-job-name strict-priority ranks; they require
	// Policy "priority".
	Priorities map[string]int `json:"priorities,omitempty"`
}

// ClusterSpec describes the emulated fleet and its churn. Volatile and
// Dedicated are pointers so that an explicit zero ("no dedicated nodes")
// is distinguishable from "use the paper testbed" (60 volatile + 6
// dedicated).
type ClusterSpec struct {
	Volatile  *int `json:"volatile,omitempty"`
	Dedicated *int `json:"dedicated,omitempty"`
	// AllVolatile churns the dedicated nodes too (the Hadoop baseline,
	// which cannot tell the classes apart).
	AllVolatile bool `json:"all_volatile,omitempty"`
	// HorizonSeconds is the trace length (default 8 hours).
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`
	// Outage overrides the paper's mean-409 s truncated-normal outage
	// model; the sweep's rate always drives the unavailable fraction.
	Outage *OutageSpec `json:"outage,omitempty"`
	// Correlated layers group-correlated lab-session outages on top of
	// the independent churn.
	Correlated *CorrelatedSpec `json:"correlated,omitempty"`
}

// OutageSpec overrides the synthetic outage model; zero fields keep the
// paper's values (mean 409 s, stddev 200 s, clamp [30 s, 3600 s]).
type OutageSpec struct {
	MeanSeconds   float64 `json:"mean_seconds,omitempty"`
	StddevSeconds float64 `json:"stddev_seconds,omitempty"`
	MinSeconds    float64 `json:"min_seconds,omitempty"`
	MaxSeconds    float64 `json:"max_seconds,omitempty"`
}

// CorrelatedSpec overrides the lab-session model; zero fields keep the
// defaults (10-node groups, 2 sessions, hour-long, 90% participation).
type CorrelatedSpec struct {
	GroupSize            int     `json:"group_size,omitempty"`
	SessionsPerGroup     int     `json:"sessions_per_group,omitempty"`
	SessionMeanSeconds   float64 `json:"session_mean_seconds,omitempty"`
	SessionStddevSeconds float64 `json:"session_stddev_seconds,omitempty"`
	Participation        float64 `json:"participation,omitempty"`
}

// SchedDelta overrides scheduler parameters over the preset; nil fields
// keep the preset's value.
type SchedDelta struct {
	TrackerExpirySeconds      *float64 `json:"tracker_expiry_seconds,omitempty"`
	SuspensionIntervalSeconds *float64 `json:"suspension_interval_seconds,omitempty"`
	HeartbeatIntervalSeconds  *float64 `json:"heartbeat_interval_seconds,omitempty"`
	SpeculativeCap            *int     `json:"speculative_cap,omitempty"`
	SpecSlotFraction          *float64 `json:"spec_slot_fraction,omitempty"`
	HomestretchH              *float64 `json:"homestretch_h,omitempty"`
	HomestretchR              *int     `json:"homestretch_r,omitempty"`
	FastFetchReaction         *bool    `json:"fast_fetch_reaction,omitempty"`
	MapSlotsPerNode           *int     `json:"map_slots_per_node,omitempty"`
	ReduceSlotsPerNode        *int     `json:"reduce_slots_per_node,omitempty"`
}

// DFSDelta overrides data-layer parameters over the preset.
type DFSDelta struct {
	// Mode replaces the preset's data layer wholesale ("hadoop" or
	// "moon") before the other deltas apply — e.g. Hadoop scheduling on
	// the MOON storage layer, the paper's augmented baseline.
	Mode                     *string  `json:"mode,omitempty"`
	HibernateIntervalSeconds *float64 `json:"hibernate_interval_seconds,omitempty"`
	ExpiryIntervalSeconds    *float64 `json:"expiry_interval_seconds,omitempty"`
	AvailabilityTarget       *float64 `json:"availability_target,omitempty"`
	MaxAdaptiveV             *int     `json:"max_adaptive_v,omitempty"`
	MaxReplicationStreams    *int     `json:"max_replication_streams,omitempty"`
}

// NetDelta overrides fabric capacities over the defaults (1 GbE NICs,
// commodity disks).
type NetDelta struct {
	NodeBandwidthBytes  *float64 `json:"node_bandwidth_bytes,omitempty"`
	DiskBandwidthBytes  *float64 `json:"disk_bandwidth_bytes,omitempty"`
	StallTimeoutSeconds *float64 `json:"stall_timeout_seconds,omitempty"`
}

// Parse decodes a spec strictly: unknown fields are an error (a typo'd
// field must not silently vanish), and the schema line must match.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("scenario: schema %q (this build reads %q)", s.Schema, Schema)
	}
	return &s, nil
}

// WriteJSON writes the spec in its canonical form: indented JSON, fields
// in declaration order. Parsing the output and re-exporting reproduces the
// bytes exactly.
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Hash returns a short content hash of the spec's canonical encoding, for
// provenance stamps in exported reports.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable kinds; keep the signature
		// error-free.
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// withDefaults returns a copy with the sweep and metrics defaults filled
// in. The stored spec is never mutated: defaults apply at validation and
// compile time, so round-tripping a sparse spec stays lossless.
func (s *Spec) withDefaults() Spec {
	out := *s
	if out.Schema == "" {
		out.Schema = Schema
	}
	if len(out.Sweep.Seeds) == 0 {
		out.Sweep.Seeds = []uint64{1}
	}
	if len(out.Sweep.Rates) == 0 {
		out.Sweep.Rates = []float64{0.1, 0.3, 0.5}
	}
	if out.Sweep.Scale == 0 {
		out.Sweep.Scale = 1
	}
	if out.Metrics.BucketSeconds == 0 {
		out.Metrics.BucketSeconds = metrics.DefaultBucket
	}
	return out
}

// harnessConfig lowers the sweep axes to a harness.Config.
func (s *Spec) harnessConfig() harness.Config {
	d := s.withDefaults()
	return harness.Config{
		Seeds:         d.Sweep.Seeds,
		Scale:         d.Sweep.Scale,
		Rates:         d.Sweep.Rates,
		Parallelism:   d.Sweep.Parallelism,
		ShardWorkers:  d.Sweep.ShardWorkers,
		MetricsBucket: d.Metrics.BucketSeconds,
	}
}

// Validate checks the whole spec statically: schema, sweep axes (via
// harness.Config.Validate), and every experiment's vocabulary and shape.
// A valid spec always compiles.
func (s *Spec) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("scenario: schema %q (want %q)", s.Schema, Schema)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if err := s.harnessConfig().Validate(); err != nil {
		return err
	}
	if s.Sweep.Scale < 0 || s.Sweep.Parallelism < 0 || s.Sweep.ShardWorkers < 0 {
		return fmt.Errorf("scenario: negative sweep scale/parallelism/shard_workers")
	}
	if s.Metrics.BucketSeconds < 0 || math.IsNaN(s.Metrics.BucketSeconds) {
		return fmt.Errorf("scenario: metrics bucket %v", s.Metrics.BucketSeconds)
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("scenario: %q has no experiments", s.Name)
	}
	live := false
	switch s.Execution {
	case "", "sim":
		if s.Live != nil && s.Live.Faults != nil {
			// Name the sharper mistake first: fault injection exercises
			// the live engine's transport; the simulator has no message
			// fabric to make flaky.
			return fmt.Errorf("scenario: %q has a faults block but execution %q (fault injection needs \"execution\": \"live\")", s.Name, s.Execution)
		}
		if s.Live != nil {
			return fmt.Errorf("scenario: %q has live settings but execution %q (want \"live\")", s.Name, s.Execution)
		}
	case "live":
		live = true
		if err := s.Live.validate(); err != nil {
			return fmt.Errorf("scenario: %q: %w", s.Name, err)
		}
	default:
		return fmt.Errorf("scenario: %q execution %q (want sim or live)", s.Name, s.Execution)
	}
	for i := range s.Experiments {
		var err error
		if live {
			err = s.Experiments[i].validateLive()
		} else {
			err = s.Experiments[i].validate()
		}
		if err != nil {
			return fmt.Errorf("scenario: %q experiment %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func (l *LiveSpec) validate() error {
	if l == nil {
		return nil
	}
	if l.VolatileWorkers < 0 || l.DedicatedWorkers < 0 {
		return fmt.Errorf("live worker counts (%d volatile, %d dedicated)", l.VolatileWorkers, l.DedicatedWorkers)
	}
	for _, f := range []namedFloat{
		{"horizon_seconds", l.HorizonSeconds},
		{"compression_ms", l.CompressionMS},
		{"timeout_seconds", l.TimeoutSeconds},
	} {
		if f.v < 0 || math.IsNaN(f.v) {
			return fmt.Errorf("live %s %v", f.name, f.v)
		}
	}
	if l.SplitsPerJob < 0 || l.WordsPerSplit < 0 || l.ReducesPerJob < 0 {
		return fmt.Errorf("live job sizing must be >= 0")
	}
	if lk := l.Link; lk != nil {
		for _, f := range []namedFloat{
			{"connect_timeout_ms", lk.ConnectTimeoutMS},
			{"send_timeout_ms", lk.SendTimeoutMS},
			{"recv_timeout_ms", lk.RecvTimeoutMS},
			{"heartbeat_interval_ms", lk.HeartbeatIntervalMS},
			{"lease_duration_ms", lk.LeaseDurationMS},
			{"retry_backoff_ms", lk.RetryBackoffMS},
			{"session_expiry_ms", lk.SessionExpiryMS},
		} {
			if f.v < 0 || math.IsNaN(f.v) {
				return fmt.Errorf("live link %s %v (want >= 0)", f.name, f.v)
			}
		}
		if lk.MaxRetries < 0 {
			return fmt.Errorf("live link max_retries %d (want >= 0)", lk.MaxRetries)
		}
	}
	if f := l.Faults; f != nil {
		if math.IsNaN(f.DelayMS) || f.DelayMS < 0 {
			return fmt.Errorf("live faults delay_ms %v (want >= 0)", f.DelayMS)
		}
		for i, p := range f.Partitions {
			if math.IsNaN(p.StartMS) || math.IsNaN(p.DurationMS) {
				return fmt.Errorf("live faults partition %d has a NaN window", i)
			}
			for _, w := range p.Workers {
				if w < 0 {
					return fmt.Errorf("live faults partition %d worker index %d (want >= 0)", i, w)
				}
			}
		}
	}
	// Deep check: lower to the engine configuration a cell would run and
	// validate it, so clock mistakes (heartbeat at or past the lease,
	// out-of-range fault rates, malformed partition windows) fail at
	// compile time, not mid-sweep.
	if err := l.liveConfig().Validate(); err != nil {
		return err
	}
	return nil
}

// validateLive checks an experiment under execution "live": only multi-job
// policy sweeps apply (the engine executes real word counts — figures,
// ablations and custom stack deltas are simulator concepts) and renders
// are fixed. An explicit arrival process staggers submissions in
// compressed wall-clock time; with none, jobs are submitted together (the
// historical live default).
func (e *Experiment) validateLive() error {
	if e.Multi == nil {
		return fmt.Errorf("live execution runs multi-job experiments only (figure/ablation/correlated/custom are simulator sweeps)")
	}
	if e.Figure != "" || e.Ablation != "" || e.Correlated || e.Custom != nil {
		return fmt.Errorf("live execution runs multi-job experiments only")
	}
	if e.App != "" && e.App != "wordcount" {
		return fmt.Errorf("live app %q (the engine executes real word counts; want wordcount or empty)", e.App)
	}
	if len(e.Renders) > 0 {
		return fmt.Errorf("renders do not apply to live execution")
	}
	m := e.Multi
	if m.Jobs < 1 {
		return fmt.Errorf("live multi needs jobs >= 1 (got %d)", m.Jobs)
	}
	if m.Arrivals == "" {
		if m.IntervalSeconds != 0 || m.LambdaPerHour != 0 || m.ArrivalSeed != 0 {
			return fmt.Errorf("live arrival fields need an explicit arrivals process (\"staggered\" or \"poisson\"; empty submits every job together)")
		}
	} else if err := validateArrivals(m.Arrivals, m.IntervalSeconds, m.LambdaPerHour); err != nil {
		return err
	}
	return m.validatePolicies()
}

func (e *Experiment) validate() error {
	kinds := 0
	for _, set := range []bool{e.Figure != "", e.Ablation != "", e.Correlated, e.Multi != nil, e.Custom != nil} {
		if set {
			kinds++
		}
	}
	if kinds != 1 {
		return fmt.Errorf("want exactly one of figure, ablation, correlated, multi or custom (got %d)", kinds)
	}

	needApp := e.Figure != "" && e.Figure != "fig1" || e.Ablation != "" || e.Correlated || e.Multi != nil
	if needApp && !slices.Contains(Apps, e.App) {
		return fmt.Errorf("app %q (want sort or wordcount)", e.App)
	}
	if !needApp && e.App != "" {
		return fmt.Errorf("app %q is set but unused here (custom experiments name the app in their workload; fig1 has none)", e.App)
	}

	multi := e.Multi != nil || e.Custom != nil && e.Custom.Workload.Jobs > 1
	for _, r := range e.Renders {
		if !slices.Contains(Renders, r) {
			return fmt.Errorf("unknown render %q (want %s)", r, joinOr(Renders))
		}
		if e.Figure == "fig1" {
			return fmt.Errorf("fig1 renders nothing but the trace table")
		}
		if (r == "multi") != multi {
			return fmt.Errorf("render %q does not apply to this experiment kind", r)
		}
		// Table II reads the replication sweep's VO-*/HA-* columns; on any
		// other sweep it would print a silently all-zero table.
		if r == "table2" && e.Figure != "fig6" && e.Figure != "table2" {
			return fmt.Errorf("render \"table2\" only applies to the fig6/table2 replication sweep")
		}
	}

	switch {
	case e.Figure != "":
		switch e.Figure {
		case "fig1", "fig4", "fig5", "fig6", "table2", "fig7":
		default:
			return fmt.Errorf("unknown figure %q (want fig1, fig4, fig5, fig6, table2 or fig7)", e.Figure)
		}
	case e.Ablation != "":
		if !slices.Contains(harness.AblationNames, e.Ablation) {
			return fmt.Errorf("unknown ablation %q (want %s)", e.Ablation, joinOr(harness.AblationNames))
		}
	case e.Multi != nil:
		return e.Multi.validate()
	case e.Custom != nil:
		return e.Custom.validate()
	}
	return nil
}

func (m *MultiExperiment) validate() error {
	if m.Jobs < 1 {
		return fmt.Errorf("multi needs jobs >= 1 (got %d)", m.Jobs)
	}
	if err := validateArrivals(m.Arrivals, m.IntervalSeconds, m.LambdaPerHour); err != nil {
		return err
	}
	return m.validatePolicies()
}

// validatePolicies checks the policy list (every name must resolve — a
// typo is a hard error, never a silent FIFO) and that weights/priorities
// only appear alongside the policy that reads them. Policy names are
// canonicalized, so alias spellings ("weighted-fair", "strict-priority")
// carry their weights/priorities too.
func (m *MultiExperiment) validatePolicies() error {
	canonical := make([]string, 0, len(m.Policies))
	for _, p := range m.Policies {
		pol, err := mapred.JobPolicyByName(p)
		if err != nil {
			return err
		}
		if slices.Contains(canonical, pol.Name()) {
			// Variant lines are labeled (and sweep cells keyed) by the
			// canonical policy name; a duplicate would silently clobber
			// the first line's results.
			return fmt.Errorf("policy %q duplicates %q", p, pol.Name())
		}
		canonical = append(canonical, pol.Name())
	}
	if len(m.Weights) > 0 && !slices.Contains(canonical, "weighted") {
		return fmt.Errorf("weights need the \"weighted\" policy in policies")
	}
	if len(m.Priorities) > 0 && !slices.Contains(canonical, "priority") {
		return fmt.Errorf("priorities need the \"priority\" policy in policies")
	}
	return validateWeights(m.Weights)
}

func (c *CustomExperiment) validate() error {
	if c.Title == "" {
		return fmt.Errorf("custom needs a title")
	}
	if err := c.Cluster.validate(); err != nil {
		return err
	}
	if err := c.Workload.validate(); err != nil {
		return err
	}
	if len(c.Variants) == 0 {
		return fmt.Errorf("custom %q has no variants", c.Title)
	}
	labels := make(map[string]bool, len(c.Variants))
	for i := range c.Variants {
		v := &c.Variants[i]
		if v.Label == "" {
			return fmt.Errorf("custom %q variant %d has no label", c.Title, i)
		}
		if labels[v.Label] {
			return fmt.Errorf("custom %q duplicates variant label %q", c.Title, v.Label)
		}
		labels[v.Label] = true
		if err := v.validate(c.Workload.Jobs > 1); err != nil {
			return fmt.Errorf("variant %q: %w", v.Label, err)
		}
	}
	return nil
}

func (w *WorkloadSpec) validate() error {
	if !slices.Contains(Apps, w.App) {
		return fmt.Errorf("workload app %q (want sort or wordcount)", w.App)
	}
	if w.Jobs < 0 {
		return fmt.Errorf("workload jobs %d", w.Jobs)
	}
	if w.Jobs > 1 {
		if err := validateArrivals(w.Arrivals, w.IntervalSeconds, 0); err != nil {
			return err
		}
		if w.MixScale < 0 || w.MixScale == 1 {
			return fmt.Errorf("mix_scale %d (want 0 or >= 2)", w.MixScale)
		}
		if w.MixScale > 1 && w.Arrivals == "poisson" {
			return fmt.Errorf("mix_scale requires staggered arrivals")
		}
	} else if w.Arrivals != "" || w.IntervalSeconds != 0 || w.MixScale != 0 || w.ArrivalSeed != 0 {
		return fmt.Errorf("arrival fields need jobs > 1")
	}
	if w.ReduceSlots != nil {
		if *w.ReduceSlots <= 0 {
			return fmt.Errorf("reduce_slots %d (want > 0)", *w.ReduceSlots)
		}
		if w.App != "sort" {
			return fmt.Errorf("reduce_slots applies to sort only (app %q has fixed reduces)", w.App)
		}
	}
	switch w.IntermediateClass {
	case "", "opportunistic", "reliable":
	default:
		return fmt.Errorf("intermediate_class %q (want opportunistic or reliable)", w.IntermediateClass)
	}
	for _, f := range []*FactorSpec{w.InputFactor, w.IntermediateFactor, w.OutputFactor} {
		if err := f.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (f *FactorSpec) validate() error {
	if f == nil {
		return nil
	}
	if f.D < 0 || f.V < 0 || f.D+f.V == 0 {
		return fmt.Errorf("replication factor {%d,%d} (want d,v >= 0, d+v > 0)", f.D, f.V)
	}
	return nil
}

func (v *VariantSpec) validate(multi bool) error {
	if !slices.Contains(Presets, v.Preset) {
		return fmt.Errorf("preset %q (want %s)", v.Preset, joinOr(Presets))
	}
	if err := v.Cluster.validate(); err != nil {
		return err
	}
	if err := v.IntermediateFactor.validate(); err != nil {
		return err
	}
	policyName := ""
	if v.Policy != "" {
		if !multi {
			return fmt.Errorf("policy %q needs a multi-job workload", v.Policy)
		}
		pol, err := mapred.JobPolicyByName(v.Policy)
		if err != nil {
			return err
		}
		policyName = pol.Name()
	}
	if len(v.Weights) > 0 && policyName != "weighted" {
		return fmt.Errorf("weights need policy \"weighted\"")
	}
	if len(v.Priorities) > 0 && policyName != "priority" {
		return fmt.Errorf("priorities need policy \"priority\"")
	}
	if err := validateWeights(v.Weights); err != nil {
		return err
	}
	if v.Sched != nil {
		s := v.Sched
		for _, f := range []namedFloatPtr{
			{"tracker_expiry_seconds", s.TrackerExpirySeconds},
			{"heartbeat_interval_seconds", s.HeartbeatIntervalSeconds},
			{"suspension_interval_seconds", s.SuspensionIntervalSeconds},
			{"spec_slot_fraction", s.SpecSlotFraction},
			{"homestretch_h", s.HomestretchH},
		} {
			if f.p != nil && (*f.p < 0 || math.IsNaN(*f.p)) {
				return fmt.Errorf("sched %s %v", f.name, *f.p)
			}
		}
		if s.SpeculativeCap != nil && *s.SpeculativeCap < 0 {
			return fmt.Errorf("sched speculative_cap %d", *s.SpeculativeCap)
		}
		if s.MapSlotsPerNode != nil && *s.MapSlotsPerNode < 1 ||
			s.ReduceSlotsPerNode != nil && *s.ReduceSlotsPerNode < 1 {
			return fmt.Errorf("sched slots per node must be >= 1")
		}
	}
	if v.DFS != nil {
		d := v.DFS
		if d.Mode != nil && *d.Mode != "hadoop" && *d.Mode != "moon" {
			return fmt.Errorf("dfs mode %q (want hadoop or moon)", *d.Mode)
		}
		if d.AvailabilityTarget != nil && (*d.AvailabilityTarget < 0 || *d.AvailabilityTarget >= 1) {
			return fmt.Errorf("dfs availability_target %v outside [0,1)", *d.AvailabilityTarget)
		}
	}
	if v.Net != nil {
		n := v.Net
		for _, f := range []namedFloatPtr{
			{"node_bandwidth_bytes", n.NodeBandwidthBytes},
			{"disk_bandwidth_bytes", n.DiskBandwidthBytes},
			{"stall_timeout_seconds", n.StallTimeoutSeconds},
		} {
			if f.p != nil && (*f.p <= 0 || math.IsNaN(*f.p)) {
				return fmt.Errorf("net %s %v (want > 0)", f.name, *f.p)
			}
		}
	}
	return nil
}

func (c *ClusterSpec) validate() error {
	if c == nil {
		return nil
	}
	vol, ded := 60, 6
	if c.Volatile != nil {
		vol = *c.Volatile
	}
	if c.Dedicated != nil {
		ded = *c.Dedicated
	}
	if vol < 0 || ded < 0 || vol+ded == 0 {
		return fmt.Errorf("cluster needs nodes (got %d volatile, %d dedicated)", vol, ded)
	}
	if c.HorizonSeconds < 0 {
		return fmt.Errorf("cluster horizon %v", c.HorizonSeconds)
	}
	if o := c.Outage; o != nil {
		if o.MeanSeconds < 0 || o.StddevSeconds < 0 || o.MinSeconds < 0 ||
			o.MaxSeconds < 0 || o.MaxSeconds > 0 && o.MaxSeconds < o.MinSeconds {
			return fmt.Errorf("outage model [%v,%v] mean %v stddev %v",
				o.MinSeconds, o.MaxSeconds, o.MeanSeconds, o.StddevSeconds)
		}
	}
	if cc := c.Correlated; cc != nil {
		if cc.GroupSize < 0 || cc.SessionsPerGroup < 0 || cc.SessionMeanSeconds < 0 ||
			cc.SessionStddevSeconds < 0 || cc.Participation < 0 || cc.Participation > 1 {
			return fmt.Errorf("correlated model: negative field or participation outside [0,1]")
		}
	}
	return nil
}

func validateArrivals(process string, interval, lambda float64) error {
	if math.IsNaN(interval) || math.IsNaN(lambda) {
		return fmt.Errorf("NaN arrival interval/lambda")
	}
	switch process {
	case "", "staggered":
		if lambda != 0 {
			return fmt.Errorf("lambda_per_hour needs poisson arrivals")
		}
		if interval < 0 {
			return fmt.Errorf("interval_seconds %v", interval)
		}
	case "poisson":
		if (interval > 0) == (lambda > 0) {
			return fmt.Errorf("poisson arrivals need exactly one of interval_seconds or lambda_per_hour > 0")
		}
		if interval < 0 || lambda < 0 {
			return fmt.Errorf("negative arrival interval/lambda")
		}
	default:
		return fmt.Errorf("unknown arrival process %q (want staggered or poisson)", process)
	}
	return nil
}

func validateWeights(w map[string]float64) error {
	// Sorted keys so the reported weight is deterministic when several
	// are invalid (detrange-pinned).
	names := make([]string, 0, len(w))
	for name := range w {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		if wt := w[name]; wt <= 0 || math.IsNaN(wt) {
			return fmt.Errorf("weight %v for job %q (want > 0)", wt, name)
		}
	}
	return nil
}

// namedFloat and namedFloatPtr order the field tables the validators
// iterate: ranging a map literal here would make which invalid field
// gets reported depend on randomized map order.
type namedFloat struct {
	name string
	v    float64
}

type namedFloatPtr struct {
	name string
	p    *float64
}

// joinOr renders a vocabulary list for error messages: "a, b or c".
func joinOr(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	}
	out := ""
	for i, n := range names[:len(names)-1] {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out + " or " + names[len(names)-1]
}
