package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"schema":"moon-scenario/v1","name":"x","typo_field":1}`))
	if err == nil || !strings.Contains(err.Error(), "typo_field") {
		t.Fatalf("unknown field accepted: %v", err)
	}
	_, err = Parse(strings.NewReader(`{"schema":"moon-scenario/v1","name":"x","experiments":[{"figure":"fig4","apps":"sort"}]}`))
	if err == nil {
		t.Fatal("nested unknown field accepted")
	}
}

func TestParseRejectsWrongSchema(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"schema":"moon-scenario/v2","name":"x"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

// TestRoundTripLossless: parse → export → parse → export must be
// byte-identical, for a sparse spec and for every builtin.
func TestRoundTripLossless(t *testing.T) {
	sparse := `{"schema":"moon-scenario/v1","name":"sparse","experiments":[{"figure":"fig4","app":"sort"}]}`
	specs := []*Spec{mustParse(t, sparse)}
	specs = append(specs, Builtins()...)
	for _, s := range specs {
		var first bytes.Buffer
		if err := s.WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		reparsed, err := Parse(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: re-parse: %v", s.Name, err)
		}
		var second bytes.Buffer
		if err := reparsed.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: round trip not byte-identical:\n%s\nvs\n%s", s.Name, first.String(), second.String())
		}
		if s.Hash() != reparsed.Hash() {
			t.Errorf("%s: hash changed across round trip", s.Name)
		}
	}
}

// TestDefaultsDoNotLeakIntoExport: validation/compilation applies
// defaults, but the stored spec must stay sparse so round trips are
// lossless.
func TestDefaultsDoNotLeakIntoExport(t *testing.T) {
	s := mustParse(t, `{"schema":"moon-scenario/v1","name":"sparse","experiments":[{"figure":"fig4","app":"sort"}]}`)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"sweep", "seeds", "rates", "metrics"} {
		if strings.Contains(buf.String(), `"`+leak+`"`) {
			t.Errorf("defaulted field %q leaked into the export:\n%s", leak, buf.String())
		}
	}
}

func TestHashChangesWithContent(t *testing.T) {
	a := mustParse(t, `{"schema":"moon-scenario/v1","name":"a","experiments":[{"figure":"fig4","app":"sort"}]}`)
	b := mustParse(t, `{"schema":"moon-scenario/v1","name":"a","experiments":[{"figure":"fig4","app":"wordcount"}]}`)
	if a.Hash() == b.Hash() {
		t.Error("different specs share a hash")
	}
}

// TestValidateRejections sweeps the static checks: every malformed spec
// must name its problem.
func TestValidateRejections(t *testing.T) {
	valid := func() *Spec {
		return mustParse(t, `{"schema":"moon-scenario/v1","name":"v","experiments":[{"figure":"fig4","app":"sort"}]}`)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "name"},
		{"no experiments", func(s *Spec) { s.Experiments = nil }, "experiments"},
		{"bad rate", func(s *Spec) { s.Sweep.Rates = []float64{1.5} }, "rate"},
		{"zero seed", func(s *Spec) { s.Sweep.Seeds = []uint64{0} }, "seed"},
		{"dup seed", func(s *Spec) { s.Sweep.Seeds = []uint64{2, 2} }, "seed"},
		{"negative scale", func(s *Spec) { s.Sweep.Scale = -1 }, "scale"},
		{"two kinds", func(s *Spec) { s.Experiments[0].Ablation = "speccap" }, "exactly one"},
		{"no kind", func(s *Spec) { s.Experiments[0].Figure = "" }, "exactly one"},
		{"bad figure", func(s *Spec) { s.Experiments[0].Figure = "fig9" }, "figure"},
		{"bad app", func(s *Spec) { s.Experiments[0].App = "grep" }, "app"},
		{"missing app", func(s *Spec) { s.Experiments[0].App = "" }, "app"},
		{"app on fig1", func(s *Spec) { s.Experiments[0].Figure = "fig1" }, "app"},
		{"bad render", func(s *Spec) { s.Experiments[0].Renders = []string{"pie"} }, "render"},
		{"multi render on single", func(s *Spec) { s.Experiments[0].Renders = []string{"multi"} }, "render"},
		{"table2 render off the replication sweep", func(s *Spec) { s.Experiments[0].Renders = []string{"table2"} }, "table2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("malformed spec validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateMultiAndCustom(t *testing.T) {
	multi := func(body string) string {
		return `{"schema":"moon-scenario/v1","name":"m","experiments":[{"app":"sort","multi":` + body + `}]}`
	}
	custom := func(body string) string {
		return `{"schema":"moon-scenario/v1","name":"c","experiments":[{"custom":` + body + `}]}`
	}
	bad := []struct {
		name, src, want string
	}{
		{"multi no jobs", multi(`{"jobs":0}`), "jobs"},
		{"multi bad policy", multi(`{"jobs":2,"policies":["lifo"]}`), "policy"},
		{"multi bad arrivals", multi(`{"jobs":2,"arrivals":"uniform"}`), "arrival"},
		{"multi poisson both intervals", multi(`{"jobs":2,"arrivals":"poisson","interval_seconds":10,"lambda_per_hour":30}`), "poisson"},
		{"multi poisson neither interval", multi(`{"jobs":2,"arrivals":"poisson"}`), "poisson"},
		{"multi lambda without poisson", multi(`{"jobs":2,"lambda_per_hour":30}`), "poisson"},
		{"multi bad weight", multi(`{"jobs":2,"policies":["weighted"],"weights":{"a-j0":-1}}`), "weight"},
		{"multi weights without weighted policy", multi(`{"jobs":2,"policies":["fifo"],"weights":{"a-j0":2}}`), "weighted"},
		{"multi weights with default policies", multi(`{"jobs":2,"weights":{"a-j0":2}}`), "weighted"},
		{"custom no title", custom(`{"workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon"}]}`), "title"},
		{"custom no variants", custom(`{"title":"t","workload":{"app":"sort"},"variants":[]}`), "variants"},
		{"custom dup label", custom(`{"title":"t","workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon"},{"label":"a","preset":"moon"}]}`), "label"},
		{"custom bad preset", custom(`{"title":"t","workload":{"app":"sort"},"variants":[{"label":"a","preset":"spark"}]}`), "preset"},
		{"custom bad factor", custom(`{"title":"t","workload":{"app":"sort","intermediate_factor":{"d":0,"v":0}},"variants":[{"label":"a","preset":"moon"}]}`), "factor"},
		{"custom arrivals without jobs", custom(`{"title":"t","workload":{"app":"sort","interval_seconds":30},"variants":[{"label":"a","preset":"moon"}]}`), "jobs"},
		{"custom mix with poisson", custom(`{"title":"t","workload":{"app":"sort","jobs":4,"arrivals":"poisson","interval_seconds":30,"mix_scale":4},"variants":[{"label":"a","preset":"moon"}]}`), "mix_scale"},
		{"custom policy on single job", custom(`{"title":"t","workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon","policy":"fair"}]}`), "policy"},
		{"custom weights without weighted policy", custom(`{"title":"t","workload":{"app":"sort","jobs":2,"interval_seconds":30},"variants":[{"label":"a","preset":"moon","policy":"fair","weights":{"sort-j0":2}}]}`), "weighted"},
		{"custom weights on single job", custom(`{"title":"t","workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon","weights":{"sort-j0":2}}]}`), "weighted"},
		{"custom bad dfs mode", custom(`{"title":"t","workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon","dfs":{"mode":"gfs"}}]}`), "mode"},
		{"custom empty cluster", custom(`{"title":"t","cluster":{"volatile":0,"dedicated":0},"workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon"}]}`), "nodes"},
		{"custom bad availability", custom(`{"title":"t","workload":{"app":"sort"},"variants":[{"label":"a","preset":"moon","dfs":{"availability_target":1.5}}]}`), "availability"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			s := mustParse(t, tc.src)
			err := s.Validate()
			if err == nil {
				t.Fatal("malformed spec validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
