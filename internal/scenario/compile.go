package scenario

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

// RenderKind selects one output table of a compiled run.
type RenderKind int

const (
	RenderTimes RenderKind = iota
	RenderDuplicates
	RenderTable2
	RenderMulti
)

// Render is one table to print from a run's sweep; Blank appends an empty
// line after it (the CLI's inter-table spacing).
type Render struct {
	Kind  RenderKind
	Blank bool
}

// LivePlan is one compiled live-engine sweep: the engine/churn shape plus
// the policy variant lines. Executing it runs real Map/Reduce code.
type LivePlan struct {
	Config   harness.LiveConfig
	Variants []harness.LiveVariant
}

// PlanRun is one compiled experiment: the Figure 1 trace table, a
// single-job sweep (Variants), a multi-job sweep (Multi) or a live-engine
// sweep (Live), plus the tables to render from it (live sweeps render
// their own matrix).
type PlanRun struct {
	// Fig1 runs the availability-trace figure instead of a sweep.
	Fig1 bool
	// Title is the sweep's display title.
	Title string
	// App labels Table II renders.
	App      string
	Variants []harness.Variant
	Multi    []harness.MultiVariant
	Live     *LivePlan
	Renders  []Render
}

// Plan is a compiled scenario: the lowered sweep configuration plus the
// runs in execution order. Presentation concerns (progress lines, whether
// metrics are exported) stay on Config for the caller to set.
type Plan struct {
	Config harness.Config
	Runs   []PlanRun
}

// Compile validates a spec and lowers it to a Plan. The compiled plan is
// self-contained: executing it does not read the spec again.
func Compile(s *Spec) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := s.withDefaults()
	p := &Plan{Config: s.harnessConfig()}
	for i := range d.Experiments {
		var run PlanRun
		var err error
		if d.Execution == "live" {
			run, err = compileLive(&d.Experiments[i], d.Live)
			if err == nil {
				// The sweep-level shard knob also bounds each live cell's
				// trace-generation pool.
				run.Live.Config.ShardWorkers = d.Sweep.ShardWorkers
			}
		} else {
			run, err = compileExperiment(&d.Experiments[i], &d)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: %q experiment %d: %w", d.Name, i, err)
		}
		p.Runs = append(p.Runs, run)
	}
	return p, nil
}

// liveConfig lowers the LiveSpec to the harness.LiveConfig every cell of
// a live sweep runs (zero fields keep the harness defaults); compileLive
// fills in the job count. Validation reuses this lowering, so a spec that
// validates is exactly a spec whose lowered engine configuration does.
func (l *LiveSpec) liveConfig() harness.LiveConfig {
	lc := harness.DefaultLiveConfig()
	if l == nil {
		return lc
	}
	if l.VolatileWorkers > 0 || l.DedicatedWorkers > 0 {
		lc.VolatileWorkers, lc.DedicatedWorkers = l.VolatileWorkers, l.DedicatedWorkers
	}
	lc.NoDedicatedReplication = l.NoDedicatedReplication
	if l.HorizonSeconds > 0 {
		lc.HorizonSeconds = l.HorizonSeconds
	}
	if l.CompressionMS > 0 {
		lc.Compression = millis(l.CompressionMS)
	}
	if l.SplitsPerJob > 0 {
		lc.SplitsPerJob = l.SplitsPerJob
	}
	if l.WordsPerSplit > 0 {
		lc.WordsPerSplit = l.WordsPerSplit
	}
	if l.ReducesPerJob > 0 {
		lc.ReducesPerJob = l.ReducesPerJob
	}
	if l.TimeoutSeconds > 0 {
		lc.Timeout = time.Duration(l.TimeoutSeconds * float64(time.Second))
	}
	if lk := l.Link; lk != nil {
		lc.Link = transport.LinkConfig{
			ConnectTimeout:    millis(lk.ConnectTimeoutMS),
			SendTimeout:       millis(lk.SendTimeoutMS),
			RecvTimeout:       millis(lk.RecvTimeoutMS),
			HeartbeatInterval: millis(lk.HeartbeatIntervalMS),
			LeaseDuration:     millis(lk.LeaseDurationMS),
			MaxRetries:        lk.MaxRetries,
			RetryBackoff:      millis(lk.RetryBackoffMS),
			SessionExpiry:     millis(lk.SessionExpiryMS),
		}
	}
	if f := l.Faults; f != nil {
		fc := &transport.FaultConfig{
			Seed:      f.Seed,
			DropRate:  f.DropRate,
			DupRate:   f.DupRate,
			DelayRate: f.DelayRate,
			Delay:     millis(f.DelayMS),
			ResetRate: f.ResetRate,
		}
		for _, p := range f.Partitions {
			tp := transport.Partition{Start: millis(p.StartMS), Duration: millis(p.DurationMS)}
			for _, w := range p.Workers {
				tp.Addrs = append(tp.Addrs, engine.WorkerAddr(w))
			}
			fc.Partitions = append(fc.Partitions, tp)
		}
		lc.Faults = fc
	}
	return lc
}

func millis(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// compileLive lowers one live multi-job experiment: the LiveSpec becomes a
// harness.LiveConfig (zero fields keep the harness defaults) and the
// policy list becomes live variant lines.
func compileLive(e *Experiment, l *LiveSpec) (PlanRun, error) {
	m := e.Multi
	lc := l.liveConfig()
	lc.Jobs = m.Jobs
	// An explicit arrival process lowers to compressed wall-clock
	// submission offsets; none keeps the submit-together default.
	if m.Arrivals != "" {
		lc.Arrivals = m.Arrivals
		lc.ArrivalInterval = m.IntervalSeconds
		lc.ArrivalSeed = m.ArrivalSeed
		if m.LambdaPerHour > 0 {
			lc.ArrivalInterval = 3600 / m.LambdaPerHour
		}
	}
	// Validate() already resolved every policy name; LiveVariants attaches
	// weights/priorities to the policies that read them.
	return PlanRun{
		Title: fmt.Sprintf("Live engine: %d concurrent word-count jobs, %dv+%dd workers",
			lc.Jobs, lc.VolatileWorkers, lc.DedicatedWorkers),
		App:  "wordcount",
		Live: &LivePlan{Config: lc, Variants: harness.LiveVariants(m.Policies, m.Weights, m.Priorities)},
	}, nil
}

// Execute runs every compiled run in order, appending each sweep's
// collected metrics to report (when non-nil) and printing the renders to
// stdout. Output is byte-identical to the historical moonbench flag path.
func (p *Plan) Execute(stdout io.Writer, report *metrics.Export) error {
	cfg := p.Config
	if report == nil {
		cfg.MetricsBucket = 0
	}
	for _, run := range p.Runs {
		switch {
		case run.Live != nil:
			sw, err := cfg.RunLiveSweep(run.Title, run.Live.Config, run.Live.Variants)
			if err != nil {
				return err
			}
			if report != nil {
				sw.AppendMetrics(report, len(cfg.Seeds))
			}
			if err := sw.Render(stdout); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(stdout); err != nil {
				return err
			}
		case run.Fig1:
			if err := harness.Fig1(stdout, cfg.Seeds[0]); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(stdout); err != nil {
				return err
			}
		case run.Multi != nil:
			sw, err := cfg.RunMultiSweep(run.Title, run.Multi)
			if err != nil {
				return err
			}
			if report != nil {
				sw.AppendMetrics(report, len(cfg.Seeds))
			}
			for _, r := range run.Renders {
				if err := renderMulti(stdout, sw, r); err != nil {
					return err
				}
			}
		default:
			sw, err := cfg.RunSweep(run.Title, run.Variants)
			if err != nil {
				return err
			}
			if report != nil {
				sw.AppendMetrics(report, len(cfg.Seeds))
			}
			for _, r := range run.Renders {
				if err := renderSingle(stdout, sw, run.App, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func renderSingle(w io.Writer, sw *harness.Sweep, app string, r Render) error {
	var err error
	switch r.Kind {
	case RenderTimes:
		err = sw.RenderTimes(w)
	case RenderDuplicates:
		err = sw.RenderDuplicates(w)
	case RenderTable2:
		err = harness.RenderTable2(w, app, sw)
	default:
		err = fmt.Errorf("scenario: render kind %d does not apply to a single-job sweep", r.Kind)
	}
	if err == nil && r.Blank {
		_, err = fmt.Fprintln(w)
	}
	return err
}

func renderMulti(w io.Writer, sw *harness.MultiSweep, r Render) error {
	if r.Kind != RenderMulti {
		return fmt.Errorf("scenario: render kind %d does not apply to a multi-job sweep", r.Kind)
	}
	if err := sw.Render(w); err != nil {
		return err
	}
	if r.Blank {
		_, err := fmt.Fprintln(w)
		return err
	}
	return nil
}

func compileExperiment(e *Experiment, s *Spec) (PlanRun, error) {
	switch {
	case e.Figure == "fig1":
		return PlanRun{Fig1: true}, nil
	case e.Figure != "":
		return compileFigure(e)
	case e.Ablation != "":
		vs, err := harness.AblationVariants(e.Ablation, e.App)
		if err != nil {
			return PlanRun{}, err
		}
		renders := e.Renders
		if len(renders) == 0 {
			renders = []string{"times"}
			if e.Ablation == "homestretch" || e.Ablation == "speccap" {
				renders = append(renders, "duplicates")
			}
		}
		return PlanRun{
			Title:    harness.AblationTitle(e.Ablation, e.App),
			App:      e.App,
			Variants: vs,
			// The ablation tables group as one block: blank after the
			// last render only (the historical CLI layout).
			Renders: lowerRenders(renders, false),
		}, nil
	case e.Correlated:
		return PlanRun{
			Title:    harness.CorrelatedTitle(e.App),
			App:      e.App,
			Variants: harness.CorrelatedVariants(e.App),
			Renders:  lowerRenders(defaultRenders(e.Renders, "times"), true),
		}, nil
	case e.Multi != nil:
		return compileMulti(e)
	default:
		return compileCustom(e, s)
	}
}

func compileFigure(e *Experiment) (PlanRun, error) {
	run := PlanRun{App: e.App}
	var def string
	switch e.Figure {
	case "fig4":
		run.Title, run.Variants, def = harness.Fig4Title(e.App), harness.SchedulingVariants(e.App), "times"
	case "fig5":
		run.Title, run.Variants, def = harness.Fig4Title(e.App), harness.SchedulingVariants(e.App), "duplicates"
	case "fig6":
		run.Title, run.Variants, def = harness.Fig6Title(e.App), harness.ReplicationVariants(e.App), "times"
	case "table2":
		run.Title, run.Variants, def = harness.Fig6Title(e.App), harness.ReplicationVariants(e.App), "table2"
	case "fig7":
		run.Title, run.Variants, def = harness.Fig7Title(e.App), harness.OverallVariants(e.App, 3), "times"
	default:
		return PlanRun{}, fmt.Errorf("unknown figure %q", e.Figure)
	}
	run.Renders = lowerRenders(defaultRenders(e.Renders, def), true)
	return run, nil
}

// defaultRenders substitutes the kind's default when the spec names none.
func defaultRenders(renders []string, def ...string) []string {
	if len(renders) > 0 {
		return renders
	}
	return def
}

// lowerRenders resolves render names; blankEach controls whether every
// table is followed by a blank line (figures) or only the last one
// (ablation blocks).
func lowerRenders(names []string, blankEach bool) []Render {
	kinds := map[string]RenderKind{
		"times": RenderTimes, "duplicates": RenderDuplicates,
		"table2": RenderTable2, "multi": RenderMulti,
	}
	out := make([]Render, len(names))
	for i, n := range names {
		out[i] = Render{Kind: kinds[n], Blank: blankEach || i == len(names)-1}
	}
	return out
}

func compileMulti(e *Experiment) (PlanRun, error) {
	m := e.Multi
	arr := harness.ArrivalSpec{
		Process:    m.Arrivals,
		Interval:   m.IntervalSeconds,
		Seed:       m.ArrivalSeed,
		Priorities: m.Priorities,
	}
	if arr.Process == "" {
		arr.Process = "staggered"
	}
	if m.LambdaPerHour > 0 {
		arr.Interval = 3600 / m.LambdaPerHour
	}
	policies, err := resolvePolicies(m.Policies, m.Weights)
	if err != nil {
		return PlanRun{}, err
	}
	return PlanRun{
		Title: fmt.Sprintf("Multi-job (%s): %d jobs, %s arrivals every ~%.0fs",
			e.App, m.Jobs, arr.Process, arr.Interval),
		App:     e.App,
		Multi:   harness.MultiArrivalVariants(e.App, m.Jobs, arr, policies...),
		Renders: lowerRenders(defaultRenders(e.Renders, "multi"), true),
	}, nil
}

// resolvePolicies lowers policy names; an empty list keeps
// MultiArrivalVariants' default comparison (FIFO vs fair-share). Weights
// only shape the weighted policy.
func resolvePolicies(names []string, weights map[string]float64) ([]mapred.SchedPolicy, error) {
	var out []mapred.SchedPolicy
	for _, n := range names {
		pol, err := resolvePolicy(n, weights)
		if err != nil {
			return nil, err
		}
		out = append(out, pol)
	}
	return out, nil
}

func resolvePolicy(name string, weights map[string]float64) (mapred.SchedPolicy, error) {
	// Resolve first, then attach weights by *canonical* name: the alias
	// spellings ("wfair", "weighted-fair") must not silently drop the
	// configured weights, and an unknown name is a hard error on every
	// path.
	pol, err := mapred.JobPolicyByName(name)
	if err != nil {
		return nil, err
	}
	if pol.Name() == "weighted" && len(weights) > 0 {
		return mapred.WeightedFair(weights), nil
	}
	return pol, nil
}

func compileCustom(e *Experiment, s *Spec) (PlanRun, error) {
	c := e.Custom
	run := PlanRun{Title: c.Title, App: c.Workload.App}
	multi := c.Workload.Jobs > 1
	def := "times"
	if multi {
		def = "multi"
	}
	run.Renders = lowerRenders(defaultRenders(e.Renders, def), true)

	for i := range c.Variants {
		v := &c.Variants[i]
		cl := v.Cluster
		if cl == nil {
			cl = c.Cluster
		}
		w, err := buildWorkload(&c.Workload, v, cl)
		if err != nil {
			return PlanRun{}, fmt.Errorf("variant %q: %w", v.Label, err)
		}
		if multi {
			mv, err := buildMultiVariant(v, cl, &c.Workload, w)
			if err != nil {
				return PlanRun{}, fmt.Errorf("variant %q: %w", v.Label, err)
			}
			run.Multi = append(run.Multi, mv)
		} else {
			run.Variants = append(run.Variants, buildSingleVariant(v, cl, w))
		}
	}
	return run, nil
}

// buildSingleVariant lowers a variant spec to a harness.Variant whose
// Build closure applies the cluster spec and stack deltas per sweep cell.
func buildSingleVariant(v *VariantSpec, cl *ClusterSpec, w workload.Spec) harness.Variant {
	v2, cl2 := *v, cloneCluster(cl) // closures outlive the spec
	return harness.Variant{Label: v.Label, Build: func(cs core.ClusterSpec) (core.Options, workload.Spec) {
		return buildOptions(&v2, cl2, cs), w
	}}
}

func buildMultiVariant(v *VariantSpec, cl *ClusterSpec, ws *WorkloadSpec, base workload.Spec) (harness.MultiVariant, error) {
	pol, err := variantPolicy(v)
	if err != nil {
		return harness.MultiVariant{}, err
	}
	var m workload.MultiSpec
	if ws.MixScale > 1 {
		m = workload.MixedSizes(base, ws.Jobs, ws.IntervalSeconds, ws.MixScale)
	} else {
		arr := harness.ArrivalSpec{Process: ws.Arrivals, Interval: ws.IntervalSeconds, Seed: ws.ArrivalSeed}
		m = arr.Stream(base, ws.Jobs)
	}
	m = workload.WithPriorities(m, v.Priorities)
	v2, cl2 := *v, cloneCluster(cl)
	return harness.MultiVariant{Label: v.Label, Build: func(cs core.ClusterSpec) (core.Options, workload.MultiSpec) {
		opts := buildOptions(&v2, cl2, cs)
		opts.Sched.JobPolicy = pol
		return opts, m
	}}, nil
}

// variantPolicy resolves a variant's job-arbitration policy (nil = the
// tracker's FIFO default; weights require the explicit "weighted" policy,
// enforced by Validate).
func variantPolicy(v *VariantSpec) (mapred.SchedPolicy, error) {
	if v.Policy == "" {
		return nil, nil
	}
	return resolvePolicy(v.Policy, v.Weights)
}

func cloneCluster(cl *ClusterSpec) *ClusterSpec {
	if cl == nil {
		return nil
	}
	out := *cl
	return &out
}

// nodeCounts resolves a cluster spec's fleet size (default: the paper's
// 60 volatile + 6 dedicated testbed).
func nodeCounts(cl *ClusterSpec) (volatiles, dedicated int) {
	volatiles, dedicated = 60, 6
	if cl != nil && cl.Volatile != nil {
		volatiles = *cl.Volatile
	}
	if cl != nil && cl.Dedicated != nil {
		dedicated = *cl.Dedicated
	}
	return volatiles, dedicated
}

// buildOptions assembles the full stack options for one sweep cell: the
// cluster spec (churn models included), the preset, then the deltas.
func buildOptions(v *VariantSpec, cl *ClusterSpec, cs core.ClusterSpec) core.Options {
	cs.VolatileNodes, cs.DedicatedNodes = nodeCounts(cl)
	if cl != nil {
		cs.TreatAllVolatile = cl.AllVolatile
		cs.Horizon = cl.HorizonSeconds
		ocfg := trace.DefaultOutageConfig(cs.UnavailabilityRate)
		if o := cl.Outage; o != nil {
			if o.MeanSeconds > 0 {
				ocfg.MeanOutage = o.MeanSeconds
			}
			if o.StddevSeconds > 0 {
				ocfg.StddevOutage = o.StddevSeconds
			}
			if o.MinSeconds > 0 {
				ocfg.MinOutage = o.MinSeconds
			}
			if o.MaxSeconds > 0 {
				ocfg.MaxOutage = o.MaxSeconds
			}
			cs.Outage = &ocfg
		}
		if cc := cl.Correlated; cc != nil {
			corr := trace.DefaultCorrelatedConfig()
			// The sweep's rate drives the independent component (with
			// any outage overrides); the session model layers on top.
			corr.Base = ocfg
			if cc.GroupSize > 0 {
				corr.GroupSize = cc.GroupSize
			}
			if cc.SessionsPerGroup > 0 {
				corr.SessionsPerGroup = cc.SessionsPerGroup
			}
			if cc.SessionMeanSeconds > 0 {
				corr.SessionMean = cc.SessionMeanSeconds
			}
			if cc.SessionStddevSeconds > 0 {
				corr.SessionStddev = cc.SessionStddevSeconds
			}
			if cc.Participation > 0 {
				corr.Participation = cc.Participation
			}
			cs.Correlated = &corr
		}
	}

	var opts core.Options
	switch v.Preset {
	case "hadoop":
		opts = core.HadoopPreset(cs, 600)
	case "moon":
		opts = core.MOONPreset(cs, false)
	default: // "moon-hybrid"; Validate rejected everything else
		opts = core.MOONPreset(cs, true)
	}

	if d := v.DFS; d != nil {
		if d.Mode != nil {
			mode := dfs.ModeHadoop
			if *d.Mode == "moon" {
				mode = dfs.ModeMOON
			}
			opts.DFS = dfs.DefaultConfig(mode)
		}
		setF(&opts.DFS.NodeHibernateInterval, d.HibernateIntervalSeconds)
		setF(&opts.DFS.NodeExpiryInterval, d.ExpiryIntervalSeconds)
		setF(&opts.DFS.AvailabilityTarget, d.AvailabilityTarget)
		setI(&opts.DFS.MaxAdaptiveV, d.MaxAdaptiveV)
		setI(&opts.DFS.MaxReplicationStreams, d.MaxReplicationStreams)
	}
	if s := v.Sched; s != nil {
		setF(&opts.Sched.TrackerExpiry, s.TrackerExpirySeconds)
		setF(&opts.Sched.SuspensionInterval, s.SuspensionIntervalSeconds)
		setF(&opts.Sched.HeartbeatInterval, s.HeartbeatIntervalSeconds)
		setI(&opts.Sched.SpeculativeCap, s.SpeculativeCap)
		setF(&opts.Sched.SpecSlotFraction, s.SpecSlotFraction)
		setF(&opts.Sched.HomestretchH, s.HomestretchH)
		setI(&opts.Sched.HomestretchR, s.HomestretchR)
		if s.FastFetchReaction != nil {
			opts.Sched.FastFetchReaction = *s.FastFetchReaction
		}
		setI(&opts.Sched.MapSlotsPerNode, s.MapSlotsPerNode)
		setI(&opts.Sched.ReduceSlotsPerNode, s.ReduceSlotsPerNode)
	}
	if n := v.Net; n != nil {
		setF(&opts.Net.NodeBandwidth, n.NodeBandwidthBytes)
		setF(&opts.Net.DiskBandwidth, n.DiskBandwidthBytes)
		setF(&opts.Net.StallTimeout, n.StallTimeoutSeconds)
	}
	return opts
}

func setF(dst *float64, src *float64) {
	if src != nil {
		*dst = *src
	}
}

func setI(dst *int, src *int) {
	if src != nil {
		*dst = *src
	}
}

// buildWorkload assembles a custom experiment's base job spec: the Table I
// app (reduce slots derived from the variant's fleet at the paper's 2 per
// node), the optional sleep wrapper, then the replication overrides
// (workload-level, then the variant's intermediate factor).
func buildWorkload(ws *WorkloadSpec, v *VariantSpec, cl *ClusterSpec) (workload.Spec, error) {
	volatiles, dedicated := nodeCounts(cl)
	var w workload.Spec
	switch ws.App {
	case "sort":
		slots := 2 * (volatiles + dedicated)
		if ws.ReduceSlots != nil {
			slots = *ws.ReduceSlots
		}
		w = workload.Sort(slots)
	case "wordcount":
		w = workload.WordCount()
	default:
		return workload.Spec{}, fmt.Errorf("unknown app %q", ws.App)
	}
	if ws.Sleep {
		w = workload.SleepApp(w)
	}
	if f := ws.InputFactor; f != nil {
		w.InputFactor = dfs.Factor{D: f.D, V: f.V}
	}
	if f := ws.IntermediateFactor; f != nil {
		w.Job.IntermediateFactor = dfs.Factor{D: f.D, V: f.V}
	}
	switch ws.IntermediateClass {
	case "opportunistic":
		w.Job.IntermediateClass = dfs.Opportunistic
	case "reliable":
		w.Job.IntermediateClass = dfs.Reliable
	}
	if f := ws.OutputFactor; f != nil {
		w.Job.OutputFactor = dfs.Factor{D: f.D, V: f.V}
	}
	if f := v.IntermediateFactor; f != nil {
		w.Job.IntermediateFactor = dfs.Factor{D: f.D, V: f.V}
	}
	return w, nil
}
