package scenario

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/harness"
	"repro/internal/mapred"
)

// Flags mirrors the legacy moonbench flag surface. FromFlags lowers it to
// a Spec — the flag path and the scenario-file path share every line of
// experiment assembly, so the two are byte-identical by construction.
type Flags struct {
	Experiment    string // fig1|fig4|fig5|fig6|table2|fig7|multi|ablation|correlated|all
	App           string // sort|wordcount|both
	Seeds         []uint64
	Scale         int
	Rates         []float64
	Parallel      int
	ShardWorkers  int    // intra-run worker pool (0 = all cores, 1 = serial)
	Ablation      string // homestretch|speccap|hibernate|adaptive
	Policy        string // fifo|fair|weighted|both
	Jobs          int
	Stagger       float64 // staggered arrivals: gap seconds
	Arrivals      string  // staggered|poisson
	Lambda        float64 // poisson arrivals: jobs per hour
	ArrivalSeed   uint64
	MetricsBucket float64
	// ExplicitArrivals marks the arrival flags as explicitly set on the
	// command line. The live experiment defaults to submitting every job
	// together, so only an explicit request becomes a live arrival
	// process; the multi experiment ignores this (its arrivals always
	// apply).
	ExplicitArrivals bool
}

// FromFlags validates a flag set the way the legacy CLI did (a typo'd
// -policy fails loudly even when the multi experiment is not selected) and
// assembles the equivalent Spec, experiments in the historical run order:
// fig1 first, then per app the scheduling, replication, overall and
// multi-job sweeps.
func FromFlags(f Flags) (*Spec, error) {
	if !slices.Contains(Experiments, f.Experiment) {
		return nil, fmt.Errorf("unknown experiment %q (want %s)", f.Experiment, strings.Join(Experiments, "|"))
	}

	apps := Apps
	switch f.App {
	case "both":
	case "sort", "wordcount":
		apps = []string{f.App}
	default:
		return nil, fmt.Errorf("unknown app %q", f.App)
	}

	// The live experiment runs the goroutine engine: real word counts
	// under churn. Jobs are submitted together unless arrival flags were
	// explicitly given, which stagger submissions in compressed
	// wall-clock time.
	if f.Experiment == "live" {
		if f.App == "sort" {
			return nil, fmt.Errorf("-experiment live executes real word counts (-app wordcount)")
		}
		policies, err := livePolicies(f.Policy)
		if err != nil {
			return nil, err
		}
		liveMulti := &MultiExperiment{Jobs: f.Jobs, Policies: policies}
		if f.ExplicitArrivals {
			liveMulti.Arrivals = f.Arrivals
			switch f.Arrivals {
			case "staggered":
				liveMulti.IntervalSeconds = f.Stagger
			case "poisson":
				if f.Lambda <= 0 {
					return nil, fmt.Errorf("poisson arrivals need -lambda > 0 (got %v)", f.Lambda)
				}
				liveMulti.IntervalSeconds = 3600 / f.Lambda
				liveMulti.ArrivalSeed = f.ArrivalSeed
			default:
				return nil, fmt.Errorf("unknown arrival process %q (want staggered or poisson)", f.Arrivals)
			}
		}
		return &Spec{
			Schema:      Schema,
			Name:        "moonbench-live",
			Description: "Assembled from moonbench flags.",
			Execution:   "live",
			Sweep: SweepSpec{
				Seeds:        f.Seeds,
				Rates:        f.Rates,
				Scale:        f.Scale,
				Parallelism:  f.Parallel,
				ShardWorkers: f.ShardWorkers,
			},
			Metrics: MetricsSpec{BucketSeconds: f.MetricsBucket},
			Experiments: []Experiment{{
				App:   "wordcount",
				Multi: liveMulti,
			}},
		}, nil
	}

	// Validate the policy flag up front, like the legacy CLI: a typo must
	// fail loudly even when the multi experiment is not selected this run.
	var policies []string
	if f.Policy != "both" {
		if _, err := mapred.JobPolicyByName(f.Policy); err != nil {
			return nil, err
		}
		policies = []string{f.Policy}
	}
	multi := MultiExperiment{
		Jobs:        f.Jobs,
		Arrivals:    f.Arrivals,
		ArrivalSeed: f.ArrivalSeed,
		Policies:    policies,
	}
	switch f.Arrivals {
	case "staggered":
		multi.IntervalSeconds = f.Stagger
	case "poisson":
		if f.Lambda <= 0 {
			return nil, fmt.Errorf("poisson arrivals need -lambda > 0 (got %v)", f.Lambda)
		}
		multi.IntervalSeconds = 3600 / f.Lambda
	default:
		return nil, fmt.Errorf("unknown arrival process %q (want staggered or poisson)", f.Arrivals)
	}

	if f.Experiment == "ablation" && !slices.Contains(harness.AblationNames, f.Ablation) {
		return nil, fmt.Errorf("unknown ablation %q (want %s)", f.Ablation, strings.Join(harness.AblationNames, "|"))
	}

	name := "moonbench-" + f.Experiment
	if f.Experiment == "ablation" {
		name += "-" + f.Ablation
	}
	if f.App != "both" {
		name += "-" + f.App
	}
	s := &Spec{
		Schema:      Schema,
		Name:        name,
		Description: "Assembled from moonbench flags.",
		Sweep: SweepSpec{
			Seeds:        f.Seeds,
			Rates:        f.Rates,
			Scale:        f.Scale,
			Parallelism:  f.Parallel,
			ShardWorkers: f.ShardWorkers,
		},
		Metrics: MetricsSpec{BucketSeconds: f.MetricsBucket},
	}

	run := func(name string) bool { return f.Experiment == name || f.Experiment == "all" }
	if run("fig1") {
		s.Experiments = append(s.Experiments, Experiment{Figure: "fig1"})
	}
	for _, app := range apps {
		switch {
		case f.Experiment == "all":
			s.Experiments = append(s.Experiments,
				Experiment{Figure: "fig4", App: app, Renders: []string{"times", "duplicates"}})
		case f.Experiment == "fig4", f.Experiment == "fig5":
			s.Experiments = append(s.Experiments, Experiment{Figure: f.Experiment, App: app})
		}
		switch {
		case f.Experiment == "all":
			s.Experiments = append(s.Experiments,
				Experiment{Figure: "fig6", App: app, Renders: []string{"times", "table2"}})
		case f.Experiment == "fig6", f.Experiment == "table2":
			s.Experiments = append(s.Experiments, Experiment{Figure: f.Experiment, App: app})
		}
		if run("fig7") {
			s.Experiments = append(s.Experiments, Experiment{Figure: "fig7", App: app})
		}
		if run("multi") {
			m := multi
			s.Experiments = append(s.Experiments, Experiment{App: app, Multi: &m})
		}
		if f.Experiment == "ablation" {
			s.Experiments = append(s.Experiments, Experiment{Ablation: f.Ablation, App: app})
		}
		if f.Experiment == "correlated" {
			s.Experiments = append(s.Experiments, Experiment{Correlated: true, App: app})
		}
	}
	return s, nil
}

// livePolicies lowers the -policy flag for the live experiment: "both"
// keeps the engine's default fifo-vs-fair comparison, anything else must
// resolve (hard error on a typo, like every policy entry point).
func livePolicies(policy string) ([]string, error) {
	if policy == "both" {
		return nil, nil
	}
	if _, err := mapred.JobPolicyByName(policy); err != nil {
		return nil, err
	}
	return []string{policy}, nil
}
