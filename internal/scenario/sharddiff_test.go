package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// shardDiffWorkers are the pool widths the differential suite compares.
// Widths above GOMAXPROCS still spawn real goroutines, so a single-core
// runner exercises the fanned merge path too.
var shardDiffWorkers = []int{1, 2, 4, 8}

// shardDiffSeeds: three independent churn seeds per scenario, so a
// divergence that depends on the event mix (not just one lucky schedule)
// cannot hide.
var shardDiffSeeds = []uint64{1, 2, 3}

// TestShardWorkersDifferential is the tentpole's acceptance gate: every
// shipped simulator scenario, run at every shard-pool width, must produce
// stdout byte-identical to the serial (workers=1) run — for each of three
// seeds. Live scenarios are excluded (they run wall-clock goroutines; the
// only sharded stage there, churn-trace generation, is pinned by the
// equivalent differential test in internal/trace).
func TestShardWorkersDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations at several worker counts")
	}
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenario files under %s", scenariosDir)
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		probe, err := Parse(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if probe.Execution == "live" {
			continue
		}
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) string {
				// Re-parse per run: Compile and Execute must never see a
				// spec another width's run has touched.
				spec, err := Parse(bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				spec.Sweep.Seeds = shardDiffSeeds
				if spec.Sweep.Scale < 32 {
					spec.Sweep.Scale = 32 // bound the workload; scale is part of the compared bytes either way
				}
				spec.Sweep.ShardWorkers = workers
				shrinkForDiff(spec)
				plan, err := Compile(spec)
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				if err := plan.Execute(&out, nil); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return out.String()
			}
			serial := run(1)
			if serial == "" {
				t.Fatal("serial run produced no output")
			}
			for _, w := range shardDiffWorkers[1:] {
				if got := run(w); got != serial {
					t.Errorf("workers=%d diverged from serial:\n%s", w,
						firstDiff(serial, got))
				}
			}
		})
	}
}

// shrinkForDiff bounds the day-long 100k-node showcase to test size while
// keeping it ABOVE every shard gate (heartbeat fans at >= 2048 trackers,
// fleet generation at >= 256 nodes), so the differential compares the
// genuinely fanned paths, not their serial fallbacks. CI runs the full
// scenario separately for the wall-clock cell in BENCH_10.json.
func shrinkForDiff(spec *Spec) {
	if spec.Name != "scale-100k" {
		return
	}
	c := spec.Experiments[0].Custom
	c.Cluster.Volatile = intp(4000)
	c.Cluster.Dedicated = intp(100)
	c.Cluster.HorizonSeconds = 2 * 3600
	c.Workload.Jobs = 2
	c.Workload.IntervalSeconds = 600
}

// firstDiff renders the first line where two outputs diverge.
func firstDiff(a, b string) string {
	al, bl := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  serial:  %s\n  sharded: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: %d vs %d lines", len(al), len(bl))
}
