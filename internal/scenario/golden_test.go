package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const scenariosDir = "../../scenarios"

// TestShippedScenarioFiles is the schema's golden gate: every shipped
// scenarios/*.json must parse strictly, validate, compile, and survive a
// parse → export → parse round trip byte-identically.
func TestShippedScenarioFiles(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenario files under %s", scenariosDir)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			plan, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Runs) == 0 {
				t.Fatal("compiled to an empty plan")
			}

			var exported bytes.Buffer
			if err := spec.WriteJSON(&exported); err != nil {
				t.Fatal(err)
			}
			reparsed, err := Parse(bytes.NewReader(exported.Bytes()))
			if err != nil {
				t.Fatalf("re-parse of export: %v", err)
			}
			var again bytes.Buffer
			if err := reparsed.WriteJSON(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(exported.Bytes(), again.Bytes()) {
				t.Error("parse → export → parse is not byte-identical")
			}
			// The shipped file itself is canonical: its bytes equal its
			// own export, so hashes computed from either agree.
			if !bytes.Equal(raw, exported.Bytes()) {
				t.Error("file is not in canonical form; regenerate with `go run ./scripts/genscenarios`")
			}
		})
	}
}

// TestScenarioDirMatchesBuiltins pins the shipped directory to the code
// registry in both directions: every builtin has its canonical file, and
// every file is a builtin export (scripts/genscenarios keeps them in
// sync).
func TestScenarioDirMatchesBuiltins(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, p := range paths {
		onDisk[filepath.Base(p)] = true
	}
	for _, s := range Builtins() {
		file := s.Name + ".json"
		if !onDisk[file] {
			t.Errorf("builtin %q has no shipped file; run `go run ./scripts/genscenarios`", s.Name)
			continue
		}
		delete(onDisk, file)
		raw, err := os.ReadFile(filepath.Join(scenariosDir, file))
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := s.WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want.Bytes()) {
			t.Errorf("%s drifted from the builtin; run `go run ./scripts/genscenarios`", file)
		}
	}
	for extra := range onDisk {
		t.Errorf("%s is not a builtin export (builtins own scenarios/; put ad-hoc specs elsewhere)", extra)
	}
}
