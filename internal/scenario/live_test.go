package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func liveSpec() *Spec {
	s, ok := Lookup("live-mix")
	if !ok {
		panic("live-mix builtin missing")
	}
	return s
}

func TestLiveSpecValidatesAndRoundTrips(t *testing.T) {
	s := liveSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	parsed, err := Parse(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := parsed.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Fatal("live spec round-trip not lossless")
	}
	if parsed.Execution != "live" || parsed.Live == nil || parsed.Live.CompressionMS != 1 {
		t.Fatalf("live fields lost: %+v", parsed)
	}
}

func TestLiveSpecValidationRejections(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
	}{
		{"unknown execution", func(s *Spec) { s.Execution = "turbo" }},
		{"live settings without live execution", func(s *Spec) { s.Execution = "" }},
		{"figure experiment", func(s *Spec) { s.Experiments[0] = Experiment{Figure: "fig4", App: "sort"} }},
		{"custom experiment", func(s *Spec) {
			s.Experiments[0] = Experiment{Custom: &CustomExperiment{
				Title: "x", Workload: WorkloadSpec{App: "sort"},
				Variants: []VariantSpec{{Label: "a", Preset: "moon"}},
			}}
		}},
		{"sort app", func(s *Spec) { s.Experiments[0].App = "sort" }},
		{"renders", func(s *Spec) { s.Experiments[0].Renders = []string{"multi"} }},
		{"arrival fields without a process", func(s *Spec) {
			s.Experiments[0].Multi.Arrivals = ""
			s.Experiments[0].Multi.LambdaPerHour = 10
			s.Experiments[0].Multi.IntervalSeconds = 0
		}},
		{"unknown arrival process", func(s *Spec) { s.Experiments[0].Multi.Arrivals = "burst" }},
		{"poisson without interval or lambda", func(s *Spec) {
			s.Experiments[0].Multi.Arrivals = "poisson"
			s.Experiments[0].Multi.IntervalSeconds = 0
		}},
		{"staggered with lambda", func(s *Spec) { s.Experiments[0].Multi.LambdaPerHour = 10 }},
		{"zero jobs", func(s *Spec) { s.Experiments[0].Multi.Jobs = 0 }},
		{"unknown policy", func(s *Spec) { s.Experiments[0].Multi.Policies = []string{"lottery"} }},
		{"duplicate canonical policy", func(s *Spec) {
			s.Experiments[0].Multi.Policies = []string{"fair", "fair-share", "priority"}
		}},
		{"priorities without priority policy", func(s *Spec) { s.Experiments[0].Multi.Policies = []string{"fifo"} }},
		{"negative live horizon", func(s *Spec) { s.Live.HorizonSeconds = -1 }},
		{"negative live workers", func(s *Spec) { s.Live.VolatileWorkers = -2 }},
		{"drop rate above one", func(s *Spec) { s.Live.Faults = &FaultSpec{DropRate: 1.5} }},
		{"negative reset rate", func(s *Spec) { s.Live.Faults = &FaultSpec{ResetRate: -0.1} }},
		{"delay rate without delay", func(s *Spec) { s.Live.Faults = &FaultSpec{DelayRate: 0.1} }},
		{"zero-duration partition", func(s *Spec) {
			s.Live.Faults = &FaultSpec{Partitions: []PartitionSpec{{StartMS: 10}}}
		}},
		{"negative partition worker", func(s *Spec) {
			s.Live.Faults = &FaultSpec{Partitions: []PartitionSpec{{DurationMS: 10, Workers: []int{-1}}}}
		}},
		{"heartbeat at the lease", func(s *Spec) {
			s.Live.Link = &LinkSpec{HeartbeatIntervalMS: 50, LeaseDurationMS: 50}
		}},
		{"session expiry below the lease", func(s *Spec) {
			s.Live.Link = &LinkSpec{LeaseDurationMS: 50, SessionExpiryMS: 20}
		}},
		{"negative link retries", func(s *Spec) { s.Live.Link = &LinkSpec{MaxRetries: -1} }},
		{"negative link timeout", func(s *Spec) { s.Live.Link = &LinkSpec{SendTimeoutMS: -5} }},
	}
	for _, tc := range cases {
		s := liveSpec()
		tc.edit(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

func TestLiveSpecAliasPoliciesCarryPrioritiesAndWeights(t *testing.T) {
	// Canonicalized alias spellings must satisfy the weights/priorities
	// policy requirement (the silent-fall-through fix).
	s := liveSpec()
	s.Experiments[0].Multi.Policies = []string{"strict-priority"}
	if err := s.Validate(); err != nil {
		t.Fatalf("alias strict-priority rejected: %v", err)
	}
	s = liveSpec()
	s.Experiments[0].Multi.Policies = []string{"weighted-fair"}
	s.Experiments[0].Multi.Priorities = nil
	s.Experiments[0].Multi.Weights = map[string]float64{"live-j0": 2}
	if err := s.Validate(); err != nil {
		t.Fatalf("alias weighted-fair rejected: %v", err)
	}
}

func TestCompileLiveLowersPlan(t *testing.T) {
	plan, err := Compile(liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 1 {
		t.Fatalf("runs %d", len(plan.Runs))
	}
	run := plan.Runs[0]
	if run.Live == nil || run.Variants != nil || run.Multi != nil || run.Fig1 {
		t.Fatalf("live plan shape: %+v", run)
	}
	lc := run.Live.Config
	if lc.Jobs != 3 || lc.VolatileWorkers != 4 || lc.DedicatedWorkers != 1 {
		t.Fatalf("live config %+v", lc)
	}
	if lc.Compression != time.Millisecond || lc.HorizonSeconds != 120 {
		t.Fatalf("live churn shape %+v", lc)
	}
	if lc.NoDedicatedReplication {
		t.Fatal("dedicated replication off by default")
	}
	if lc.Arrivals != "staggered" || lc.ArrivalInterval != 10 {
		t.Fatalf("arrivals not lowered: %+v", lc)
	}
	vs := run.Live.Variants
	if len(vs) != 3 || vs[0].Policy != "fifo" || vs[1].Policy != "fair" || vs[2].Policy != "priority" {
		t.Fatalf("live variants %+v", vs)
	}
	if vs[2].Priorities["live-j2"] != 5 {
		t.Fatalf("priority variant lost its ranks: %+v", vs[2])
	}
	if vs[0].Priorities != nil || vs[1].Priorities != nil {
		t.Fatal("priorities leaked onto non-priority variants")
	}
}

// TestFaultsRequireLiveExecution: a faults block under the simulator is a
// category error (the simulator has no message fabric), called out by name
// rather than folded into the generic live-settings rejection.
func TestFaultsRequireLiveExecution(t *testing.T) {
	s := liveSpec()
	s.Execution = "sim"
	s.Experiments[0].Multi.Priorities = nil
	s.Live.Faults = &FaultSpec{Seed: 1, DropRate: 0.1}
	err := s.Validate()
	if err == nil {
		t.Fatal("faults block under sim execution validated")
	}
	if !strings.Contains(err.Error(), "faults") {
		t.Fatalf("error does not name the faults block: %v", err)
	}
}

// TestCompileChaosLiveLowersFaults pins the chaos-live builtin's lowering:
// the faults block becomes a transport.FaultConfig on the cell config, with
// partition worker indices resolved to transport addresses, and the link
// block carries the session-expiry clock.
func TestCompileChaosLiveLowersFaults(t *testing.T) {
	s, ok := Lookup("chaos-live")
	if !ok {
		t.Fatal("chaos-live builtin missing")
	}
	plan, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 1 || plan.Runs[0].Live == nil {
		t.Fatalf("chaos-live plan shape: %+v", plan.Runs)
	}
	lc := plan.Runs[0].Live.Config
	if lc.Link.SessionExpiry != 150*time.Millisecond {
		t.Fatalf("session expiry %v, want 150ms", lc.Link.SessionExpiry)
	}
	f := lc.Faults
	if f == nil {
		t.Fatal("faults block lost in lowering")
	}
	if f.Seed != 42 || f.DropRate != 0.03 || f.Delay != time.Millisecond {
		t.Fatalf("fault config %+v", f)
	}
	if len(f.Partitions) != 1 {
		t.Fatalf("partitions %+v", f.Partitions)
	}
	p := f.Partitions[0]
	if p.Start != 100*time.Millisecond || p.Duration != 80*time.Millisecond {
		t.Fatalf("partition window %+v", p)
	}
	if len(p.Addrs) != 1 || p.Addrs[0] != engine.WorkerAddr(1) {
		t.Fatalf("partition addrs %v, want [%s]", p.Addrs, engine.WorkerAddr(1))
	}
	if err := lc.Validate(); err != nil {
		t.Fatalf("lowered chaos config invalid: %v", err)
	}
}

func TestFromFlagsLive(t *testing.T) {
	s, err := FromFlags(Flags{
		Experiment: "live", App: "both", Policy: "both",
		Jobs: 4, Stagger: 60, Arrivals: "staggered",
		Seeds: []uint64{1}, Rates: []float64{0.3}, Scale: 1,
		MetricsBucket: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Execution != "live" || len(s.Experiments) != 1 || s.Experiments[0].Multi.Jobs != 4 {
		t.Fatalf("live flag spec: %+v", s)
	}
	if _, err := Compile(s); err != nil {
		t.Fatal(err)
	}

	// A single policy flag narrows the comparison; sort is rejected.
	s, err = FromFlags(Flags{Experiment: "live", App: "wordcount", Policy: "priority",
		Jobs: 2, Stagger: 60, Arrivals: "staggered", MetricsBucket: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Experiments[0].Multi.Policies; len(got) != 1 || got[0] != "priority" {
		t.Fatalf("policies %v", got)
	}
	if _, err := FromFlags(Flags{Experiment: "live", App: "sort", Policy: "both",
		Jobs: 2, Stagger: 60, Arrivals: "staggered"}); err == nil {
		t.Fatal("live sort accepted")
	}
	if _, err := FromFlags(Flags{Experiment: "live", App: "both", Policy: "lottery",
		Jobs: 2, Stagger: 60, Arrivals: "staggered"}); err == nil {
		t.Fatal("live unknown policy accepted")
	}
}
