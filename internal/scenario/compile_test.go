package scenario

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/metrics"
)

// TestFromFlagsAllShape pins the compiled shape of the legacy default
// invocation (-experiment all): fig1 first, then per app the shared
// scheduling sweep (times + duplicates), the shared replication sweep
// (times + table2), the overall sweep and the multi-job sweep.
func TestFromFlagsAllShape(t *testing.T) {
	spec, err := FromFlags(Flags{
		Experiment: "all", App: "both", Policy: "both",
		Jobs: 3, Stagger: 60, Arrivals: "staggered", ArrivalSeed: 1,
		MetricsBucket: metrics.DefaultBucket,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 9 { // fig1 + 4 runs x 2 apps
		t.Fatalf("runs %d, want 9", len(plan.Runs))
	}
	if !plan.Runs[0].Fig1 {
		t.Error("first run is not fig1")
	}
	wantTitles := []string{
		"Fig 4/5 (sort): scheduling policies",
		"Fig 6 (sort): intermediate replication",
		"Fig 7 (sort): MOON vs Hadoop-VO",
		"Multi-job (sort): 3 jobs, staggered arrivals every ~60s",
	}
	for i, want := range wantTitles {
		if got := plan.Runs[1+i].Title; got != want {
			t.Errorf("run %d title %q, want %q", 1+i, got, want)
		}
	}
	sched := plan.Runs[1]
	if len(sched.Variants) != 5 || len(sched.Renders) != 2 {
		t.Errorf("scheduling run: %d variants, %d renders (want 5, 2)", len(sched.Variants), len(sched.Renders))
	}
	if sched.Renders[0].Kind != RenderTimes || sched.Renders[1].Kind != RenderDuplicates {
		t.Errorf("scheduling renders %+v", sched.Renders)
	}
	repl := plan.Runs[2]
	if repl.Renders[1].Kind != RenderTable2 || repl.App != "sort" {
		t.Errorf("replication run renders %+v app %q", repl.Renders, repl.App)
	}
	multi := plan.Runs[4]
	if len(multi.Multi) != 2 { // both => fifo + fair
		t.Errorf("multi run variants %d, want 2", len(multi.Multi))
	}
	// The config carries the sweep axes with defaults applied.
	if got := plan.Config.MetricsBucket; got != metrics.DefaultBucket {
		t.Errorf("metrics bucket %v", got)
	}
	if len(plan.Config.Seeds) != 1 || plan.Config.Seeds[0] != 1 {
		t.Errorf("seeds %v", plan.Config.Seeds)
	}
}

// TestFromFlagsValidatesEagerly mirrors the legacy CLI contract: a typo'd
// policy or arrival process fails even when the multi experiment is not
// selected.
func TestFromFlagsValidatesEagerly(t *testing.T) {
	base := Flags{Experiment: "fig4", App: "sort", Policy: "both", Arrivals: "staggered", Jobs: 3, Ablation: "homestretch"}
	bad := []struct {
		mut  func(*Flags)
		want string
	}{
		{func(f *Flags) { f.Experiment = "fig9" }, "experiment"},
		{func(f *Flags) { f.App = "grep" }, "app"},
		{func(f *Flags) { f.Policy = "lifo" }, "policy"},
		{func(f *Flags) { f.Arrivals = "uniform" }, "arrival"},
		{func(f *Flags) { f.Arrivals = "poisson"; f.Lambda = 0 }, "lambda"},
		{func(f *Flags) { f.Experiment = "ablation"; f.Ablation = "nope" }, "ablation"},
	}
	for _, tc := range bad {
		f := base
		tc.mut(&f)
		if _, err := FromFlags(f); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("FromFlags(%+v) error %v, want mention of %q", f, err, tc.want)
		}
	}

	// A NaN stagger slips through flag parsing (ParseFloat accepts "NaN")
	// but must die at Validate instead of feeding NaN submission offsets
	// into the event heap.
	f := base
	f.Experiment, f.Stagger = "multi", math.NaN()
	spec, err := FromFlags(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN stagger validated: %v", err)
	}
}

// TestCompileCustomAppliesDeltas builds a delta-heavy custom variant and
// checks the lowered core.Options cell by cell — the declarative surface
// must reach every layer.
func TestCompileCustomAppliesDeltas(t *testing.T) {
	src := `{
  "schema": "moon-scenario/v1",
  "name": "deltas",
  "experiments": [{
    "custom": {
      "title": "deltas",
      "cluster": {
        "volatile": 30,
        "dedicated": 2,
        "horizon_seconds": 7200,
        "outage": {"mean_seconds": 600},
        "correlated": {"group_size": 5, "participation": 0.5}
      },
      "workload": {
        "app": "sort",
        "input_factor": {"d": 0, "v": 4},
        "intermediate_factor": {"d": 1, "v": 2},
        "intermediate_class": "reliable",
        "output_factor": {"d": 2, "v": 1}
      },
      "variants": [{
        "label": "tweaked",
        "preset": "hadoop",
        "sched": {
          "tracker_expiry_seconds": 120,
          "spec_slot_fraction": 0.5,
          "fast_fetch_reaction": true
        },
        "dfs": {"mode": "moon", "availability_target": 0.99},
        "net": {"node_bandwidth_bytes": 5e7},
        "intermediate_factor": {"d": 0, "v": 5}
      }]
    }
  }]
}`
	spec := mustParse(t, src)
	plan, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 1 || len(plan.Runs[0].Variants) != 1 {
		t.Fatalf("plan shape %+v", plan.Runs)
	}
	v := plan.Runs[0].Variants[0]
	if v.Label != "tweaked" {
		t.Fatalf("label %q", v.Label)
	}
	opts, w := v.Build(core.ClusterSpec{UnavailabilityRate: 0.3, Seed: 7})

	cs := opts.Cluster
	if cs.VolatileNodes != 30 || cs.DedicatedNodes != 2 || cs.Horizon != 7200 {
		t.Errorf("cluster %+v", cs)
	}
	if cs.UnavailabilityRate != 0.3 || cs.Seed != 7 {
		t.Errorf("sweep cell fields lost: %+v", cs)
	}
	if cs.Outage == nil || cs.Outage.MeanOutage != 600 || cs.Outage.TargetRate != 0.3 {
		t.Errorf("outage %+v", cs.Outage)
	}
	if cs.Correlated == nil || cs.Correlated.GroupSize != 5 || cs.Correlated.Participation != 0.5 {
		t.Errorf("correlated %+v", cs.Correlated)
	}
	if cs.Correlated.Base.MeanOutage != 600 {
		t.Errorf("correlated base outage did not inherit the override: %+v", cs.Correlated.Base)
	}
	if cs.Correlated.SessionsPerGroup != 2 {
		t.Errorf("correlated defaults lost: %+v", cs.Correlated)
	}

	if opts.Sched.TrackerExpiry != 120 || opts.Sched.SpecSlotFraction != 0.5 || !opts.Sched.FastFetchReaction {
		t.Errorf("sched deltas %+v", opts.Sched)
	}
	if opts.Sched.Policy.String() != "hadoop" {
		t.Errorf("preset policy %v", opts.Sched.Policy)
	}
	if opts.DFS.Mode != dfs.ModeMOON || opts.DFS.AvailabilityTarget != 0.99 {
		t.Errorf("dfs deltas %+v", opts.DFS)
	}
	if opts.Net.NodeBandwidth != 5e7 {
		t.Errorf("net deltas %+v", opts.Net)
	}

	if w.InputFactor != (dfs.Factor{D: 0, V: 4}) {
		t.Errorf("input factor %v", w.InputFactor)
	}
	// Variant-level intermediate factor wins over the workload-level one.
	if w.Job.IntermediateFactor != (dfs.Factor{D: 0, V: 5}) {
		t.Errorf("intermediate factor %v", w.Job.IntermediateFactor)
	}
	if w.Job.IntermediateClass != dfs.Reliable {
		t.Errorf("intermediate class %v", w.Job.IntermediateClass)
	}
	if w.Job.OutputFactor != (dfs.Factor{D: 2, V: 1}) {
		t.Errorf("output factor %v", w.Job.OutputFactor)
	}
	// Reduce slots follow the custom fleet: 0.9 x 2 x (30+2) = 57.
	if w.Job.NumReduces != 57 {
		t.Errorf("reduces %d, want 57", w.Job.NumReduces)
	}
}

// TestCompileScaleSweep pins the scale-sweep builtin's fleet axis: four
// sleep-sort variants whose per-variant clusters double from the paper
// testbed to 8x, with a single-cell sweep (one seed, one rate).
func TestCompileScaleSweep(t *testing.T) {
	spec, ok := Lookup("scale-sweep")
	if !ok {
		t.Fatal("scale-sweep builtin missing")
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 1 {
		t.Fatalf("plan has %d runs, want 1", len(plan.Runs))
	}
	if got := plan.Config.Seeds; len(got) != 1 || got[0] != 1 {
		t.Errorf("seeds %v, want [1]", got)
	}
	if got := plan.Config.Rates; len(got) != 1 || got[0] != 0.3 {
		t.Errorf("rates %v, want [0.3]", got)
	}
	want := []struct {
		label    string
		vol, ded int
	}{
		{"66-nodes", 60, 6},
		{"132-nodes", 120, 12},
		{"264-nodes", 240, 24},
		{"528-nodes", 480, 48},
	}
	vs := plan.Runs[0].Variants
	if len(vs) != len(want) {
		t.Fatalf("%d variants, want %d", len(vs), len(want))
	}
	for i, w := range want {
		v := vs[i]
		if v.Label != w.label {
			t.Errorf("variant %d label %q, want %q", i, v.Label, w.label)
			continue
		}
		opts, wl := v.Build(core.ClusterSpec{UnavailabilityRate: 0.3, Seed: 1})
		cs := opts.Cluster
		if cs.VolatileNodes != w.vol || cs.DedicatedNodes != w.ded {
			t.Errorf("%s: fleet %dV+%dD, want %dV+%dD",
				w.label, cs.VolatileNodes, cs.DedicatedNodes, w.vol, w.ded)
		}
		if !strings.HasPrefix(wl.Job.Name, "sleep-") {
			t.Errorf("%s: workload %q is not the sleep proxy", w.label, wl.Job.Name)
		}
	}
}

// TestCompileCustomMulti lowers a weighted multi-job custom experiment.
func TestCompileCustomMulti(t *testing.T) {
	spec, ok := Lookup("weighted-skew")
	if !ok {
		t.Fatal("weighted-skew builtin missing")
	}
	plan, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := plan.Runs[0]
	if len(run.Multi) != 2 || run.Multi[0].Label != "fair" || run.Multi[1].Label != "weighted-j0x3" {
		t.Fatalf("multi variants %+v", run.Multi)
	}
	if run.Renders[0].Kind != RenderMulti {
		t.Errorf("renders %+v", run.Renders)
	}
	opts, m := run.Multi[1].Build(core.ClusterSpec{UnavailabilityRate: 0.1, Seed: 1})
	if opts.Sched.JobPolicy == nil || opts.Sched.JobPolicy.Name() != "weighted" {
		t.Errorf("job policy %v", opts.Sched.JobPolicy)
	}
	if len(m.Jobs) != 3 || m.Jobs[1].Offset != 60 || m.Jobs[0].Spec.Job.Name != "sleep-sort-j0" {
		t.Errorf("multi spec %+v", m.Jobs)
	}
}

// TestBuiltinsValidateAndCompile: every registry entry must be runnable.
func TestBuiltinsValidateAndCompile(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Builtins() {
		if seen[s.Name] {
			t.Errorf("duplicate builtin name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if _, err := Compile(s); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if _, ok := Lookup("paper-figures"); !ok {
		t.Error("Lookup(paper-figures) failed")
	}
	if _, ok := Lookup("scale-sweep"); !ok {
		t.Error("Lookup(scale-sweep) failed")
	}
	if _, err := Load("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "list-scenarios") {
		t.Errorf("Load of unknown name: %v", err)
	}
}
