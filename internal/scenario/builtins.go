package scenario

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/metrics"
)

// Builtins returns the named scenario registry, in listing order. Each
// call constructs fresh specs, so callers may mutate (e.g. apply flag
// overrides) freely. The shipped scenarios/ directory holds the canonical
// JSON export of every builtin (scripts/genscenarios regenerates it, and
// the golden tests pin file == builtin).
func Builtins() []*Spec {
	return []*Spec{
		paperFigures(),
		poissonMix(),
		correlatedSort(),
		weightedSkew(),
		expirySweep(),
		scaleSweep(),
		scale100k(),
		liveMix(),
		chaosLive(),
	}
}

// Lookup resolves a builtin scenario by name.
func Lookup(name string) (*Spec, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Load resolves a -scenario argument: a path to a spec file if one exists
// there, otherwise a builtin name.
func Load(arg string) (*Spec, error) {
	if f, err := os.Open(arg); err == nil {
		defer f.Close()
		s, err := Parse(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return s, nil
	}
	if s, ok := Lookup(arg); ok {
		return s, nil
	}
	return nil, fmt.Errorf("unknown scenario %q: no such file, and not a built-in (-list-scenarios prints the built-ins)", arg)
}

// List prints the builtin registry, one line per scenario.
func List(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\thash\tdescription")
	for _, s := range Builtins() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", s.Name, s.Hash(), s.Description)
	}
	return tw.Flush()
}

// floatp/strp/intp build the pointer fields of sparse specs.
func floatp(v float64) *float64 { return &v }
func strp(v string) *string     { return &v }
func intp(v int) *int           { return &v }

// paperFigures reproduces the full `-experiment all` evaluation: every
// figure and table of the paper on both Table I applications.
func paperFigures() *Spec {
	s, err := FromFlags(Flags{
		Experiment: "all", App: "both", Policy: "both",
		Jobs: 3, Stagger: 60, Arrivals: "staggered", ArrivalSeed: 1,
		MetricsBucket: metrics.DefaultBucket,
	})
	if err != nil {
		panic(err) // static flags; cannot fail
	}
	s.Name = "paper-figures"
	s.Description = "Every figure and table of the paper's evaluation (Figs 1/4/5/6/7, Table II, multi-job) on both apps."
	return s
}

// poissonMix is the multi-tenant job stream a shared opportunistic cluster
// actually sees: a bursty Poisson arrival process, compared across all
// three arbitration policies.
func poissonMix() *Spec {
	return &Spec{
		Schema:      Schema,
		Name:        "poisson-mix",
		Description: "Multi-tenant mix: 5 sleep-sort jobs arriving Poisson (20/h) under fifo vs fair vs weighted arbitration.",
		Metrics:     MetricsSpec{BucketSeconds: metrics.DefaultBucket},
		Experiments: []Experiment{{
			App: "sort",
			Multi: &MultiExperiment{
				Jobs:          5,
				Arrivals:      "poisson",
				LambdaPerHour: 20,
				ArrivalSeed:   1,
				Policies:      []string{"fifo", "fair", "weighted"},
				Weights:       map[string]float64{"sleep-sort-j2": 3},
			},
		}},
	}
}

// correlatedSort runs the real sort application (full data movement, not
// the sleep proxy) under lab-session churn: whole 10-node groups leave
// together on top of the swept independent churn.
func correlatedSort() *Spec {
	corr := &ClusterSpec{Correlated: &CorrelatedSpec{}}
	return &Spec{
		Schema:      Schema,
		Name:        "correlated-sort",
		Description: "Real sort (full I/O) under correlated lab-session outages: Hadoop-1min vs MOON vs MOON-Hybrid.",
		Experiments: []Experiment{{
			Custom: &CustomExperiment{
				Title:    "Correlated lab sessions, real sort",
				Cluster:  corr,
				Workload: WorkloadSpec{App: "sort"},
				Variants: []VariantSpec{
					{
						Label:  "Hadoop1Min",
						Preset: "hadoop",
						Sched:  &SchedDelta{TrackerExpirySeconds: floatp(60)},
						DFS:    &DFSDelta{Mode: strp("moon")},
					},
					{Label: "MOON", Preset: "moon"},
					{Label: "MOON-Hybrid", Preset: "moon-hybrid"},
				},
			},
		}},
	}
}

// weightedSkew demonstrates weighted shares: three identical staggered
// jobs where the first holds a 3x weight, against plain fair-share.
func weightedSkew() *Spec {
	return &Spec{
		Schema:      Schema,
		Name:        "weighted-skew",
		Description: "Weighted-fair skew: 3 staggered sleep-sort jobs, job 0 at weight 3, vs plain fair-share.",
		Experiments: []Experiment{{
			Custom: &CustomExperiment{
				Title: "Weighted shares (sleep-sort x3, 60s stagger)",
				Workload: WorkloadSpec{
					App: "sort", Sleep: true,
					Jobs: 3, Arrivals: "staggered", IntervalSeconds: 60,
				},
				Variants: []VariantSpec{
					{Label: "fair", Preset: "moon-hybrid", Policy: "fair"},
					{
						Label:   "weighted-j0x3",
						Preset:  "moon-hybrid",
						Policy:  "weighted",
						Weights: map[string]float64{"sleep-sort-j0": 3},
					},
				},
			},
		}},
	}
}

// scaleSweep is the raw-speed axis: one sleep-sort job on fleets doubling
// from the paper testbed (60V+6D) to 8x (480V+48D), all under MOON-Hybrid.
// Scheduling behavior is size-invariant here by design, so the sweep
// isolates simulator cost: event-queue pressure and netmodel settling grow
// with the fleet while the workload stays fixed. CI smokes the largest line
// at -scale; the profiles behind BENCH_*.json come from running it whole.
func scaleSweep() *Spec {
	mk := func(label string, volatile, dedicated int) VariantSpec {
		return VariantSpec{
			Label:   label,
			Preset:  "moon-hybrid",
			Cluster: &ClusterSpec{Volatile: intp(volatile), Dedicated: intp(dedicated)},
		}
	}
	return &Spec{
		Schema:      Schema,
		Name:        "scale-sweep",
		Description: "Fleet-size axis for raw simulator speed: sleep-sort on 66 to 528 nodes (1x-8x the paper testbed), MOON-Hybrid.",
		Sweep:       SweepSpec{Seeds: []uint64{1}, Rates: []float64{0.3}},
		Experiments: []Experiment{{
			Custom: &CustomExperiment{
				Title:    "Fleet-size sweep (sleep-sort, MOON-Hybrid)",
				Workload: WorkloadSpec{App: "sort", Sleep: true},
				Variants: []VariantSpec{
					mk("66-nodes", 60, 6),
					mk("132-nodes", 120, 12),
					mk("264-nodes", 240, 24),
					mk("528-nodes", 480, 48),
				},
			},
		}},
	}
}

// scale100k is the intra-run sharding showcase: ONE simulation spanning a
// 100,000-node fleet through 24 hours of churn (≈2 million outages), with
// an hourly stream of sleep-sort jobs keeping the scheduler under load the
// whole day. Parallelism stays at 1 — this is a single big run, so the
// shard pool (shard_workers 0 = every core) is where the cores go, the
// inverse of the many-small-runs sweeps. Any worker count is
// byte-identical; the knob only moves wall-clock. BENCH_10.json records
// the measured wall-clock of this scenario on the CI runner.
func scale100k() *Spec {
	return &Spec{
		Schema:      Schema,
		Name:        "scale-100k",
		Description: "One sharded run: 100k-node fleet, 24h of churn, hourly sleep-sort stream, MOON-Hybrid (shard pool machine-wide).",
		Sweep: SweepSpec{
			Seeds:       []uint64{1},
			Rates:       []float64{0.1},
			Parallelism: 1,
		},
		Experiments: []Experiment{{
			Custom: &CustomExperiment{
				Title: "100k nodes x 24h (sleep-sort hourly, MOON-Hybrid)",
				Cluster: &ClusterSpec{
					Volatile:       intp(99000),
					Dedicated:      intp(1000),
					HorizonSeconds: 24 * 3600,
				},
				Workload: WorkloadSpec{
					App: "sort", Sleep: true,
					// The paper's 66-node testbed shape (118 reduces),
					// pinned so the fleet scales while the workload
					// doesn't — unpinned, sort's fleet-derived fan-out
					// would make every job a 180k-reduce monster.
					ReduceSlots: intp(132),
					Jobs:        24, Arrivals: "staggered", IntervalSeconds: 3600,
				},
				Variants: []VariantSpec{
					{Label: "100k-nodes", Preset: "moon-hybrid"},
				},
			},
		}},
	}
}

// liveMix runs the goroutine engine for real: three concurrent word-count
// jobs on a churning 4+1 worker pool, compared across fifo, fair and
// strict-priority arbitration (job 2 promoted), with per-job profiles and
// engine metrics — the live counterpart of poisson-mix.
func liveMix() *Spec {
	return &Spec{
		Schema:      Schema,
		Name:        "live-mix",
		Description: "Live engine: 3 real word counts arriving staggered under trace-compressed churn, fifo vs fair vs priority (job 2 promoted).",
		Execution:   "live",
		Live: &LiveSpec{
			VolatileWorkers:  4,
			DedicatedWorkers: 1,
			HorizonSeconds:   120,
			CompressionMS:    1,
			SplitsPerJob:     8,
			WordsPerSplit:    400,
			ReducesPerJob:    3,
		},
		Metrics: MetricsSpec{BucketSeconds: 1},
		Experiments: []Experiment{{
			App: "wordcount",
			Multi: &MultiExperiment{
				Jobs: 3,
				// 10 simulated seconds between submissions — 10 ms of
				// wall clock at the 1 ms compression, so later jobs
				// genuinely arrive while earlier ones run.
				Arrivals:        "staggered",
				IntervalSeconds: 10,
				Policies:        []string{"fifo", "fair", "priority"},
				Priorities:      map[string]int{"live-j2": 5},
			},
		}},
	}
}

// chaosLive is live-mix on a hostile fabric: the same concurrent word
// counts, but every master↔worker message rides the fault-injecting
// transport — seeded drops, duplicates, delays, rare connection resets and
// a timed partition cutting worker 1 — with sessions that expire on
// silence. Results must still be exact; the transport metrics show the
// retry/lease/session machinery earning its keep.
func chaosLive() *Spec {
	return &Spec{
		Schema:      Schema,
		Name:        "chaos-live",
		Description: "Live engine under injected faults: drops, dups, delays, resets and a partition window; exact results required.",
		Execution:   "live",
		Live: &LiveSpec{
			VolatileWorkers:  4,
			DedicatedWorkers: 2,
			HorizonSeconds:   120,
			CompressionMS:    1,
			SplitsPerJob:     6,
			WordsPerSplit:    200,
			ReducesPerJob:    2,
			Link: &LinkSpec{
				SessionExpiryMS: 150,
			},
			Faults: &FaultSpec{
				Seed:      42,
				DropRate:  0.03,
				DupRate:   0.03,
				DelayRate: 0.03,
				DelayMS:   1,
				ResetRate: 0.002,
				Partitions: []PartitionSpec{
					{StartMS: 100, DurationMS: 80, Workers: []int{1}},
				},
			},
		},
		Metrics: MetricsSpec{BucketSeconds: 1},
		Experiments: []Experiment{{
			App: "wordcount",
			Multi: &MultiExperiment{
				Jobs: 3,
				// Seeded Poisson arrivals (mean 10 simulated seconds)
				// land submissions inside the fault windows.
				Arrivals:        "poisson",
				IntervalSeconds: 10,
				ArrivalSeed:     7,
				Policies:        []string{"fair"},
			},
		}},
	}
}

// expirySweep sweeps Hadoop's TrackerExpiryInterval beyond the paper's
// three points — a pure stack-delta scenario the flag surface cannot
// express.
func expirySweep() *Spec {
	mk := func(label string, expiry float64) VariantSpec {
		return VariantSpec{
			Label:  label,
			Preset: "hadoop",
			Sched:  &SchedDelta{TrackerExpirySeconds: floatp(expiry)},
			DFS:    &DFSDelta{Mode: strp("moon")}, // shared data layer, like Fig 4
		}
	}
	return &Spec{
		Schema:      Schema,
		Name:        "hadoop-expiry-sweep",
		Description: "Hadoop TrackerExpiryInterval swept 30s-20min on sleep-sort (extends Fig 4's three points).",
		Experiments: []Experiment{{
			Custom: &CustomExperiment{
				Title:    "Hadoop tracker-expiry sweep (sleep-sort)",
				Workload: WorkloadSpec{App: "sort", Sleep: true},
				Variants: []VariantSpec{
					mk("Hadoop30s", 30),
					mk("Hadoop1Min", 60),
					mk("Hadoop5Min", 300),
					mk("Hadoop10Min", 600),
					mk("Hadoop20Min", 1200),
				},
			},
		}},
	}
}
