package dfs

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchFS builds a 66-node file system holding nfiles staged files.
func benchFS(b *testing.B, nfiles int) *FileSystem {
	b.Helper()
	s := sim.New()
	traces := make([]trace.Trace, 60)
	for i := range traces {
		traces[i] = trace.Trace{Duration: 1e12}
	}
	c := cluster.New(s, cluster.Config{VolatileTraces: traces, DedicatedNodes: 6})
	net := netmodel.New(s, c, netmodel.DefaultConfig())
	fs, err := New(s, c, net, DefaultConfig(ModeMOON))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nfiles; i++ {
		if _, err := fs.CreateStaged(fmt.Sprintf("f%d", i), 62.5e6, Opportunistic, Factor{D: 1, V: 1}); err != nil {
			b.Fatal(err)
		}
	}
	return fs
}

// BenchmarkReplicationScan measures the NameNode's periodic scan over a
// sort-sized block population (384 intermediate files).
func BenchmarkReplicationScan(b *testing.B) {
	fs := benchFS(b, 384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.replicationScan()
	}
}

// BenchmarkHasReplicaOn measures the scheduler's per-tick locality test.
func BenchmarkHasReplicaOn(b *testing.B) {
	fs := benchFS(b, 64)
	id := BlockID{File: "f7", Index: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fs.HasReplicaOn(id, i%66)
	}
}

// BenchmarkAdaptiveV measures the availability-math hot path.
func BenchmarkAdaptiveV(b *testing.B) {
	fs := benchFS(b, 1)
	for i := range fs.pSamples {
		fs.pSamples[i] = 0.43
	}
	fs.pCount = len(fs.pSamples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fs.AdaptiveV()
	}
}
