package dfs

import (
	"testing"
	"testing/quick"
)

// throttleRig gives direct access to Algorithm 1's state machine.
func throttleRig(t *testing.T) (*FileSystem, *dnView) {
	t.Helper()
	r := newRig(t, ModeMOON, nil)
	return r.fs, r.fs.dn[4] // dedicated node
}

// feed pushes a bandwidth sample through Algorithm 1.
func feed(fs *FileSystem, v *dnView, bw float64) { fs.throttleStep(v, bw) }

func TestThrottleEntersOnPlateauAtSaturation(t *testing.T) {
	fs, v := throttleRig(t)
	fs.cfg.ThrottleFloor = 50
	// Ramp up past the floor, then plateau: rising but within (1+Tb) of
	// the window average -> saturated.
	for _, bw := range []float64{10, 20, 40, 60, 80, 100} {
		feed(fs, v, bw)
	}
	if v.throttled {
		t.Fatal("throttled during steep ramp")
	}
	// Window avg of the last 6 samples ≈ 51.7; a sample of 55 is rising
	// (> avg) but within 15%: plateau at saturation.
	feed(fs, v, 55)
	if !v.throttled {
		t.Fatal("plateau at saturation not throttled")
	}
}

func TestThrottleReleasesOnFall(t *testing.T) {
	fs, v := throttleRig(t)
	fs.cfg.ThrottleFloor = 50
	for _, bw := range []float64{10, 20, 40, 60, 80, 100} {
		feed(fs, v, bw)
	}
	feed(fs, v, 55) // throttle
	if !v.throttled {
		t.Fatal("setup failed")
	}
	// A sharp fall below (1-Tb)·avg releases.
	feed(fs, v, 1)
	if v.throttled {
		t.Fatal("sharp fall did not release the throttle")
	}
}

func TestThrottleFloorPreventsIdleFlapping(t *testing.T) {
	fs, v := throttleRig(t)
	fs.cfg.ThrottleFloor = 1000 // far above any sample below
	// Low, noisy traffic: plateaus everywhere, but below the floor.
	for _, bw := range []float64{5, 6, 5, 7, 6, 5, 6, 6, 5, 7, 6, 6} {
		feed(fs, v, bw)
		if v.throttled {
			t.Fatal("idle-load noise triggered the throttle")
		}
	}
}

func TestThrottleHysteresis(t *testing.T) {
	fs, v := throttleRig(t)
	fs.cfg.ThrottleFloor = 0.5
	// Stabilize around 100 then oscillate mildly within ±Tb: once
	// throttled, mild oscillation must not release.
	for i := 0; i < 8; i++ {
		feed(fs, v, 100)
	}
	feed(fs, v, 101)
	if !v.throttled {
		t.Fatal("plateau not detected")
	}
	for _, bw := range []float64{99, 101, 100, 98, 102} {
		feed(fs, v, bw)
		if !v.throttled {
			t.Fatalf("mild oscillation (bw=%v) released the throttle", bw)
		}
	}
}

func TestThrottleWindowBounded(t *testing.T) {
	fs, v := throttleRig(t)
	for i := 0; i < 10000; i++ {
		feed(fs, v, float64(i%37))
	}
	if len(v.bwWindow) > 4*fs.cfg.ThrottleWindow {
		t.Fatalf("window grew unbounded: %d", len(v.bwWindow))
	}
}

// Property: the adaptive degree always satisfies the availability bound or
// hits the clamp, and is monotone in p.
func TestQuickAdaptiveV(t *testing.T) {
	r := newRig(t, ModeMOON, nil)
	fs := r.fs
	set := func(p float64) {
		for i := range fs.pSamples {
			fs.pSamples[i] = p
		}
		fs.pCount = len(fs.pSamples)
	}
	check := func(pPct uint8) bool {
		p := float64(pPct%100) / 100
		set(p)
		v := fs.AdaptiveV()
		if v < 1 || v > fs.cfg.MaxAdaptiveV {
			return false
		}
		if p > 0 && v < fs.cfg.MaxAdaptiveV {
			if 1-pow(p, v) <= fs.cfg.AvailabilityTarget {
				return false
			}
		}
		// Monotonicity: higher p never needs fewer replicas.
		set(p / 2)
		return fs.AdaptiveV() <= v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func pow(p float64, v int) float64 {
	out := 1.0
	for i := 0; i < v; i++ {
		out *= p
	}
	return out
}

// Property: staged files always meet their factor immediately, for any
// sane factor the 4V+2D test cluster can host.
func TestQuickStagedPlacement(t *testing.T) {
	check := func(cursor uint8, d8, v8 uint8) bool {
		d := int(d8 % 3)   // 0..2 dedicated copies
		v := int(v8%4) + 1 // 1..4 volatile copies
		r := newRig(t, ModeMOON, nil)
		r.fs.cursorV = int(cursor) % 6 // vary placement start
		r.fs.cursorD = int(cursor) % 6
		f, err := r.fs.CreateStaged("f", 1000, Reliable, Factor{D: d, V: v})
		if err != nil {
			return false
		}
		gd, gv := r.fs.countLive(f.Blocks[0])
		return gd == d && gv == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
