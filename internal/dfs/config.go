package dfs

import "fmt"

// Mode selects the stock-Hadoop policies or the MOON extensions.
type Mode int

const (
	// ModeHadoop reproduces HDFS 0.17 behaviour: one-dimensional
	// replication (Factor.V total copies on any nodes), no hibernate
	// state, no throttling, no read prioritization, no adaptive degree.
	ModeHadoop Mode = iota
	// ModeMOON enables every extension from the paper.
	ModeMOON
)

func (m Mode) String() string {
	if m == ModeMOON {
		return "moon"
	}
	return "hadoop"
}

// Config parameterizes the file system. Zero values are filled from
// DefaultConfig by New.
type Config struct {
	Mode Mode

	// BlockSize is the fixed block size in bytes (Hadoop 0.17: 64 MB).
	BlockSize float64

	// HeartbeatInterval is the DataNode heartbeat period in seconds.
	HeartbeatInterval float64

	// NodeExpiryInterval: a DataNode silent this long is declared dead
	// and its replicas are deregistered and re-replicated.
	NodeExpiryInterval float64

	// NodeHibernateInterval (MOON): a DataNode silent this long enters
	// hibernate — much shorter than NodeExpiryInterval.
	NodeHibernateInterval float64

	// ReplicationScanInterval is the NameNode's under-replication scan
	// period.
	ReplicationScanInterval float64

	// MaxReplicationStreams caps concurrent re-replication transfers.
	MaxReplicationStreams int

	// AvailabilityTarget is the user-defined QoS level for opportunistic
	// files without dedicated copies (paper example: 0.9): the adaptive
	// volatile degree v' satisfies 1 - p^v' > AvailabilityTarget.
	AvailabilityTarget float64

	// MaxAdaptiveV clamps the adaptive degree (replication storms guard).
	MaxAdaptiveV int

	// PSampleInterval is how often the NameNode samples the fraction of
	// unavailable volatile DataNodes; PWindow is how many samples form
	// the estimate of p (the "past interval I" of the paper).
	PSampleInterval float64
	PWindow         int

	// Throttling (Algorithm 1) of dedicated DataNodes.
	ThrottleSampleInterval float64 // bandwidth sampling period (seconds)
	ThrottleWindow         int     // W: window size in samples
	ThrottleThreshold      float64 // Tb: relative margin
	// ThrottleFloor (bytes/s): a node is only eligible for the throttled
	// state while its measured bandwidth exceeds this floor. Algorithm 1
	// compares a sample against the window average, which at light load
	// would flag any small plateau as saturation; the floor restricts
	// the detector to the saturation regime the paper designed it for.
	ThrottleFloor float64

	// WriteRetries bounds per-block placement retries before a write
	// fails.
	WriteRetries int

	// WriteRetryBackoff is the pause before retrying a failed block
	// write, seconds.
	WriteRetryBackoff float64
}

// DefaultConfig returns the parameters used throughout the paper's
// evaluation for the given mode.
func DefaultConfig(mode Mode) Config {
	cfg := Config{
		Mode:                    mode,
		BlockSize:               64e6,
		HeartbeatInterval:       3,
		NodeExpiryInterval:      600,
		NodeHibernateInterval:   60,
		ReplicationScanInterval: 3,
		MaxReplicationStreams:   8,
		AvailabilityTarget:      0.9,
		MaxAdaptiveV:            6,
		PSampleInterval:         30,
		PWindow:                 20,
		ThrottleSampleInterval:  10,
		ThrottleWindow:          6,
		ThrottleThreshold:       0.15,
		ThrottleFloor:           58e6, // half a 1 GbE NIC's payload rate
		WriteRetries:            20,
		WriteRetryBackoff:       5,
	}
	if mode == ModeHadoop {
		cfg.NodeHibernateInterval = 0 // no hibernate state
	} else {
		// MOON pairs the short hibernate interval with a long expiry:
		// hibernate already suppresses I/O to silent nodes, so declaring
		// them dead can wait until the outage is clearly not transient
		// (mirroring MOON's 30-minute TrackerExpiryInterval). A short
		// expiry would re-replicate every block of every node whose
		// owner steps away for ten minutes — the replication thrashing
		// the hibernate state exists to avoid.
		cfg.NodeExpiryInterval = 1800
	}
	return cfg
}

// fillDefaults replaces zero values with defaults so callers can override
// selectively.
func (c Config) fillDefaults() Config {
	d := DefaultConfig(c.Mode)
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	if c.NodeExpiryInterval == 0 {
		c.NodeExpiryInterval = d.NodeExpiryInterval
	}
	if c.NodeHibernateInterval == 0 && c.Mode == ModeMOON {
		c.NodeHibernateInterval = d.NodeHibernateInterval
	}
	if c.ReplicationScanInterval == 0 {
		c.ReplicationScanInterval = d.ReplicationScanInterval
	}
	if c.MaxReplicationStreams == 0 {
		c.MaxReplicationStreams = d.MaxReplicationStreams
	}
	if c.AvailabilityTarget == 0 {
		c.AvailabilityTarget = d.AvailabilityTarget
	}
	if c.MaxAdaptiveV == 0 {
		c.MaxAdaptiveV = d.MaxAdaptiveV
	}
	if c.PSampleInterval == 0 {
		c.PSampleInterval = d.PSampleInterval
	}
	if c.PWindow == 0 {
		c.PWindow = d.PWindow
	}
	if c.ThrottleSampleInterval == 0 {
		c.ThrottleSampleInterval = d.ThrottleSampleInterval
	}
	if c.ThrottleWindow == 0 {
		c.ThrottleWindow = d.ThrottleWindow
	}
	if c.ThrottleThreshold == 0 {
		c.ThrottleThreshold = d.ThrottleThreshold
	}
	if c.ThrottleFloor == 0 {
		c.ThrottleFloor = d.ThrottleFloor
	}
	if c.WriteRetries == 0 {
		c.WriteRetries = d.WriteRetries
	}
	if c.WriteRetryBackoff == 0 {
		c.WriteRetryBackoff = d.WriteRetryBackoff
	}
	return c
}

// Validate rejects incoherent configurations.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("dfs: block size %v", c.BlockSize)
	}
	if c.Mode == ModeMOON && c.NodeHibernateInterval >= c.NodeExpiryInterval {
		return fmt.Errorf("dfs: hibernate interval %v must be < expiry interval %v",
			c.NodeHibernateInterval, c.NodeExpiryInterval)
	}
	if c.AvailabilityTarget < 0 || c.AvailabilityTarget >= 1 {
		return fmt.Errorf("dfs: availability target %v outside [0,1)", c.AvailabilityTarget)
	}
	if c.ThrottleWindow < 1 {
		return fmt.Errorf("dfs: throttle window %d", c.ThrottleWindow)
	}
	return nil
}
