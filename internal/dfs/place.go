package dfs

// Placement: target selection for writes and re-replication. Selection is
// deterministic — rotating cursors spread load; candidates are nodes the
// NameNode believes live (its view can lag reality, in which case the
// transfer stalls exactly as the paper describes for I/O sent to nodes not
// yet identified as dead).
//
// The choose functions append into a caller-supplied buffer (which may be
// nil) instead of allocating: the write pipeline and the replication scan
// run on every event tick, so placement must not churn the heap. Nodes
// already present in dst are never chosen again, which lets callers build a
// relay plan incrementally in one buffer.

// chooseVolatile appends up to k distinct volatile DataNodes believed live,
// excluding the given holders and anything already in dst, rotating a
// cursor for spread.
func (fs *FileSystem) chooseVolatile(dst []int, k int, exclude []int) []int {
	return fs.choose(dst, k, exclude, func(v *dnView) bool {
		return !v.node.IsDedicated()
	}, &fs.cursorV)
}

// chooseDedicated appends up to k distinct dedicated DataNodes believed
// live.
func (fs *FileSystem) chooseDedicated(dst []int, k int, exclude []int) []int {
	return fs.choose(dst, k, exclude, func(v *dnView) bool {
		return v.node.IsDedicated()
	}, &fs.cursorD)
}

// chooseAny appends nodes of any type (stock-Hadoop placement).
func (fs *FileSystem) chooseAny(dst []int, k int, exclude []int) []int {
	return fs.choose(dst, k, exclude, func(*dnView) bool { return true }, &fs.cursorV)
}

func (fs *FileSystem) choose(dst []int, k int, exclude []int, eligible func(*dnView) bool, cursor *int) []int {
	if k <= 0 {
		return dst
	}
	n := len(fs.dn)
	chosen := 0
	for probe := 0; probe < n && chosen < k; probe++ {
		id := (*cursor + probe) % n
		v := fs.dn[id]
		if v.state != DNLive || !eligible(v) {
			continue
		}
		if containsInt(exclude, id) || containsInt(dst, id) {
			continue
		}
		dst = append(dst, id)
		chosen++
	}
	*cursor = (*cursor + 1) % n
	return dst
}

// allDedicatedThrottled reports whether every live dedicated DataNode is
// currently throttled — the condition under which MOON declines dedicated
// copies for opportunistic data (Figure 3's decision process). A tier with
// no live dedicated node at all also declines.
func (fs *FileSystem) allDedicatedThrottled() bool {
	for _, v := range fs.dn {
		if v.node.IsDedicated() && v.state == DNLive && !v.throttled {
			return false
		}
	}
	return true
}

// pickUnthrottledDedicated returns a live, unthrottled dedicated node for an
// opportunistic write, or -1 when the whole tier is saturated. Nodes in
// either exclusion list are skipped.
func (fs *FileSystem) pickUnthrottledDedicated(exclude, alsoExclude []int) int {
	n := len(fs.dn)
	for probe := 0; probe < n; probe++ {
		id := (fs.cursorD + probe) % n
		v := fs.dn[id]
		if v.node.IsDedicated() && v.state == DNLive && !v.throttled &&
			!containsInt(exclude, id) && !containsInt(alsoExclude, id) {
			fs.cursorD = (fs.cursorD + 1) % n
			return id
		}
	}
	fs.cursorD = (fs.cursorD + 1) % n
	return -1
}

// sampleThrottle runs Algorithm 1 on every dedicated DataNode: compare the
// freshly measured I/O bandwidth against the window average; a rise that
// stays within the Tb margin means the node has plateaued (saturated), a
// fall below the margin releases it.
func (fs *FileSystem) sampleThrottle() {
	for _, v := range fs.dn {
		if !v.node.IsDedicated() {
			continue
		}
		consumed := fs.net.Consumed(v.node.ID)
		bw := (consumed - v.lastConsumed) / fs.cfg.ThrottleSampleInterval
		v.lastConsumed = consumed
		fs.throttleStep(v, bw)
	}
}

// throttleStep is Algorithm 1 from the paper: compare the new bandwidth
// sample bw against the average of the past W samples. Rising but within
// the (1+Tb) margin of the average means the node has plateaued: throttle.
// Falling below the (1-Tb) margin releases it. The avg > 0 guard keeps an
// idle node from being declared saturated by zero-vs-zero comparisons.
func (fs *FileSystem) throttleStep(v *dnView, bw float64) {
	W := fs.cfg.ThrottleWindow
	if len(v.bwWindow) >= W {
		avg := 0.0
		for _, x := range v.bwWindow[len(v.bwWindow)-W:] {
			avg += x
		}
		avg /= float64(W)
		Tb := fs.cfg.ThrottleThreshold
		if bw > avg && avg > 0 && bw >= fs.cfg.ThrottleFloor {
			if !v.throttled && bw < avg*(1+Tb) {
				v.throttled = true
			}
		}
		if bw < avg {
			if v.throttled && bw < avg*(1-Tb) {
				v.throttled = false
			}
		}
	}
	v.bwWindow = append(v.bwWindow, bw)
	if len(v.bwWindow) > 4*W { // bound memory
		v.bwWindow = append(v.bwWindow[:0], v.bwWindow[len(v.bwWindow)-W:]...)
	}
}
