package dfs

import (
	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// WriteOp is an in-flight file write: blocks are written in order, and each
// block's replicas are written as a sequential relay pipeline (writer →
// first holder → second holder → …), so higher replication degrees lengthen
// the producing task exactly as in the paper's Table II.
type WriteOp struct {
	fs   *FileSystem
	file *File
	from *cluster.Node
	done func(error)

	blockIdx int
	attempts int
	failed   []int // nodes that failed a stage for the current block

	// avoid and targets are reusable buffers for plan(): the relay plan is
	// recomputed after every replica write, so it must not allocate.
	avoid   []int
	targets []int

	curFlow *netmodel.Flow
	backoff sim.Event
	stopped bool
}

// Write creates the file and starts writing it from the given node.
// done fires exactly once: nil on success, ErrWriteFailed when placement
// retries are exhausted, or netmodel.ErrCanceled after Cancel.
func (fs *FileSystem) Write(from *cluster.Node, name string, size float64, class FileClass, factor Factor, done func(error)) (*WriteOp, error) {
	f, err := fs.createFile(name, size, class, factor)
	if err != nil {
		return nil, err
	}
	f.underConstruction = true
	op := &WriteOp{fs: fs, file: f, from: from, done: done}
	op.startBlock()
	return op, nil
}

// Cancel aborts the write; already-written replicas remain until the file
// is deleted. done receives netmodel.ErrCanceled.
func (op *WriteOp) Cancel() {
	if op.stopped {
		return
	}
	op.finish(netmodel.ErrCanceled)
}

func (op *WriteOp) finish(err error) {
	if op.stopped {
		return
	}
	op.stopped = true
	op.file.underConstruction = false
	if op.curFlow != nil {
		f := op.curFlow
		op.curFlow = nil
		op.fs.net.Cancel(f)
	}
	op.fs.sim.Cancel(op.backoff)
	op.backoff = sim.Event{}
	if op.done != nil {
		op.done(err)
	}
}

func (op *WriteOp) startBlock() {
	if op.stopped {
		return
	}
	if op.blockIdx >= len(op.file.Blocks) {
		op.finish(nil)
		return
	}
	op.attempts = 0
	op.failed = nil
	op.writeStage()
}

// plan returns the remaining targets for the current block, excluding
// holders and failed nodes. The returned slice aliases op.targets and is
// valid until the next plan() call; the relay order is local copy first,
// then dedicated (anchor the copy early), then the remaining volatile
// holders.
func (op *WriteOp) plan() []int {
	fs := op.fs
	b := op.file.Blocks[op.blockIdx]
	// Holders plus nodes that failed a stage of this block, copied into a
	// reusable buffer so the append never aliases b.replicas.
	op.avoid = append(op.avoid[:0], b.replicas...)
	avoid := append(op.avoid, op.failed...)
	op.avoid = avoid

	// The writer's local copy always comes first (it is the task's own
	// disk) unless the node already holds the block or failed. The choose
	// helpers skip anything already in the plan, so targets doubles as its
	// own exclusion list.
	targets := op.targets[:0]
	localD, localV := 0, 0
	if !containsInt(avoid, op.from.ID) {
		targets = append(targets, op.from.ID)
		if op.from.IsDedicated() {
			localD++
		} else {
			localV++
		}
	}

	if fs.cfg.Mode == ModeHadoop {
		total := op.file.Factor.D + op.file.Factor.V
		have := len(b.replicas) + len(targets)
		targets = fs.chooseAny(targets, total-have, avoid)
		op.targets = targets
		return targets
	}

	// Existing replica counts (live view) plus the planned local copy.
	d, v := fs.countLive(b)
	d += localD
	v += localV

	needD := op.file.Factor.D
	needV := op.file.Factor.V

	// Dedicated copies: reliable writes are always satisfied on dedicated
	// nodes; opportunistic writes are declined while the tier is
	// saturated, and the volatile degree adapts to compensate.
	if op.file.Class == Reliable {
		targets = fs.chooseDedicated(targets, needD-d, avoid)
	} else {
		for i := 0; i < needD-d; i++ {
			id := fs.pickUnthrottledDedicated(avoid, targets)
			if id < 0 {
				fs.Metrics.DedicatedDeclines++
				fs.inst.declines.IncAt(fs.sim.Now())
				if av := fs.AdaptiveV(); av > needV {
					needV = av
					fs.Metrics.AdaptiveRaises++
					fs.inst.raises.Inc()
				}
				break
			}
			targets = append(targets, id)
		}
	}

	targets = fs.chooseVolatile(targets, needV-v, avoid)
	op.targets = targets
	return targets
}

// writeStage writes the next replica of the current block, relaying from
// the most recently written holder.
func (op *WriteOp) writeStage() {
	if op.stopped {
		return
	}
	fs := op.fs
	b := op.file.Blocks[op.blockIdx]
	targets := op.plan()
	if len(targets) == 0 {
		// Nothing left to place: the block met its factor (or no
		// eligible nodes exist — the replication scan will finish the
		// job). Move on.
		op.blockIdx++
		op.startBlock()
		return
	}
	dst := fs.dn[targets[0]].node

	// Relay source: the last holder written for this block, else the
	// writer itself.
	src := op.from
	if n := len(b.replicas); n > 0 {
		last := b.replicas[n-1]
		if fs.dn[last].state == DNLive {
			src = fs.dn[last].node
		}
	}

	op.curFlow = fs.net.Transfer(src, dst, b.Size, func(err error) {
		op.curFlow = nil
		if op.stopped {
			return
		}
		if err != nil {
			op.stageFailed(dst.ID)
			return
		}
		fs.registerReplica(b, dst.ID)
		fs.inst.writeBytes.AddAt(fs.sim.Now(), b.Size)
		// More replicas of this block, or next block.
		if len(op.plan()) > 0 {
			op.writeStage()
		} else {
			op.blockIdx++
			op.startBlock()
		}
	})
}

// stageFailed retries the block after a backoff, excluding the failed
// target.
func (op *WriteOp) stageFailed(failedNode int) {
	fs := op.fs
	fs.Metrics.WriteRetries++
	fs.inst.writeRetries.IncAt(fs.sim.Now())
	op.attempts++
	if op.attempts > fs.cfg.WriteRetries {
		op.finish(ErrWriteFailed)
		return
	}
	if !containsInt(op.failed, failedNode) {
		op.failed = append(op.failed, failedNode)
	}
	op.backoff = fs.sim.After(fs.cfg.WriteRetryBackoff, "dfs.writeRetry", func() {
		op.backoff = sim.Event{}
		op.writeStage()
	})
}
