package dfs

import (
	"repro/internal/cluster"
	"repro/internal/netmodel"
)

// ReadBlock transfers bytes of the block to the reading node from the best
// live replica. bytes <= 0 reads the whole block (shuffle fetches read only
// the reducer's partition, a fraction of the block).
//
// Replica choice implements MOON's read prioritization: a local replica is
// free-est, and a volatile reader prefers volatile replicas, touching
// dedicated DataNodes only when no volatile copy is believed live. exclude
// lists replica holders the caller already failed against (fetch retry
// state).
//
// The NameNode's view can lag reality; a read directed at a node that is
// actually down stalls and eventually fails with netmodel.ErrStalled, which
// the caller sees via done. If no candidate exists at all, ReadBlock
// returns ErrNoReplica synchronously and done never fires.
func (fs *FileSystem) ReadBlock(from *cluster.Node, id BlockID, bytes float64, exclude []int, done func(src int, err error)) (*netmodel.Flow, error) {
	b := fs.lookupBlock(id)
	if b == nil {
		return nil, ErrUnknownFile
	}
	if bytes <= 0 || bytes > b.Size {
		bytes = b.Size
	}
	src := fs.pickReadSource(from, b, exclude)
	if src < 0 {
		fs.Metrics.FetchFailures++
		fs.inst.fetchFailures.IncAt(fs.sim.Now())
		return nil, ErrNoReplica
	}
	flow := fs.net.Transfer(fs.dn[src].node, from, bytes, func(err error) {
		if err == netmodel.ErrStalled {
			fs.Metrics.ReadStalls++
			fs.inst.readStalls.IncAt(fs.sim.Now())
		}
		if err == nil {
			fs.inst.readBytes.AddAt(fs.sim.Now(), bytes)
		}
		done(src, err)
	})
	return flow, nil
}

// pickReadSource returns the chosen replica holder, or -1. It iterates the
// block's replica list directly — this runs for every shuffle fetch and
// input read, so it must not allocate a candidate slice per call.
func (fs *FileSystem) pickReadSource(from *cluster.Node, b *Block, exclude []int) int {
	// Local fast path.
	for _, id := range b.replicas {
		if id == from.ID && fs.dn[id].state == DNLive && !containsInt(exclude, id) {
			return id
		}
	}
	best, bestTier, bestLoad := -1, 1<<30, 1<<30
	for _, id := range b.replicas {
		if fs.dn[id].state != DNLive || containsInt(exclude, id) {
			continue
		}
		tier := 0
		if fs.cfg.Mode == ModeMOON && !from.IsDedicated() && fs.dn[id].node.IsDedicated() {
			// Volatile readers spare the dedicated tier.
			tier = 1
		}
		load := fs.net.ActiveFlows(id)
		if tier < bestTier || (tier == bestTier && (load < bestLoad || (load == bestLoad && id < best))) {
			best, bestTier, bestLoad = id, tier, load
		}
	}
	return best
}

// ReadFile reads every block of the file to the node sequentially; done
// fires once with the first error or nil after the last block. Convenience
// for clients that consume whole files (e.g. output validation).
func (fs *FileSystem) ReadFile(from *cluster.Node, name string, done func(error)) error {
	f := fs.files[name]
	if f == nil {
		return ErrUnknownFile
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(f.Blocks) {
			done(nil)
			return
		}
		_, err := fs.ReadBlock(from, f.Blocks[i].ID, 0, nil, func(_ int, err error) {
			if err != nil {
				done(err)
				return
			}
			step(i + 1)
		})
		if err != nil {
			done(err)
		}
	}
	step(0)
	return nil
}
